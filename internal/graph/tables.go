package graph

import "math"

// Tables caches the derived cost quantities every list scheduler keeps
// recomputing from an Instance: inverse node speeds, the link-strength
// matrix in an edge-sparse default-plus-exceptions layout, per-task
// average execution times, per-edge average communication times
// (aligned with both the successor and predecessor adjacency lists),
// and the deterministic topological order. Build populates them reusing
// the receiver's storage (the per-edge averages lazily, via
// EnsureAvgComm), so a per-worker Tables rebuilt once per instance
// makes the scheduling hot path allocation-free.
//
// The averages are accumulated with exactly the same floating-point
// operation order as Instance.AvgExecTime and Instance.AvgCommTime, so
// schedulers reading the tables produce bit-identical schedules to ones
// calling the Instance methods directly.
//
// Storage discipline (ARCHITECTURE.md invariant 10): Tables holds no
// |V|²-sized array. The link matrix is stored as one modal default
// strength plus a CSR-indexed exception list, sized O(|V|+|E|) where
// |E| counts the node pairs whose strength differs from the mode; the
// remaining tables are O(|T|·|V|) (exec) and O(|D|) (edge averages).
// The previous dense implementation survives verbatim as DenseTables,
// the bit-identity reference sparse_test.go proves this one against.
//
// Tables is a snapshot: it does not observe later mutations of the
// instance. Callers that perturb weights or structure must either call
// Build again before the next use, or patch the affected entries
// through the incremental maintenance methods below (the PISA annealer
// does the latter once per in-place perturbation — see the staleness
// contract at UpdateNodeSpeed).
type Tables struct {
	// NTasks and NNodes record the shape the tables were built for.
	NTasks, NNodes int

	// Generation is the monotonically increasing stamp of the tables'
	// logical state: Build and every mutating maintenance method
	// (Update*/AddDep/RemoveDep/SetAvgComm/RestoreAvgComm) increment it,
	// and it is never reset — not even when Build points the tables at a
	// different instance. Anything derived from the tables (the rank
	// vectors scheduler.EvalCache memoizes) is therefore safe to reuse
	// exactly when (instance pointer, Generation) both match the values
	// recorded at computation time: a stale read would require a mutation
	// that did not bump the stamp, which the staleness contract forbids
	// and TestTablesGenerationBumps pins down. Lazy fills (EnsureAvgComm)
	// do not bump it — they change no logical state, only materialize
	// values the current generation already determines.
	Generation uint64

	// InvSpeed[v] is 1/s(v).
	InvSpeed []float64
	// AvgExec[t] equals Instance.AvgExecTime(t).
	AvgExec []float64
	// Exec is the dense row-major |T|×|V| execution-time matrix:
	// Exec[t*NNodes+v] = c(t)/s(v), each entry the one division
	// Instance.ExecTime performs, so reads are bit-identical.
	Exec []float64
	// execPrefix mirrors Exec with left-to-right partial row sums:
	// execPrefix[t*NNodes+v] is the sum of Exec[t*NNodes : t*NNodes+v+1]
	// accumulated in Build's exact order, so execPrefix[t*NNodes+NNodes-1]
	// is the numerator of AvgExec[t] bit for bit. UpdateNodeSpeed resumes
	// the running sum at the patched column instead of re-summing the
	// whole row — identical floating-point operation sequence, half the
	// work on average.
	execPrefix []float64
	// Topo is the deterministic topological order of the task graph
	// (equal to TaskGraph.TopoOrder); TopoErr records the cycle error if
	// the graph has one, in which case Topo is invalid.
	Topo    []int
	TopoErr error

	// Edge-sparse link storage. Off-diagonal strengths equal to
	// linkDefault (the modal off-diagonal value at Build time, smallest
	// value on a frequency tie) are implicit; every other off-diagonal
	// entry lives in a row-indexed CSR exception list: linkOff has
	// NNodes+1 row offsets into linkCol/linkVal/linkInv, columns sorted
	// ascending within a row, with both symmetric copies stored.
	// invDefault and linkInv mirror the 1/s(u,v) convention of the old
	// dense InvLink: 0 exactly when the strength is +Inf, so "inverse is
	// zero" still means "communication is free". The diagonal is never
	// stored: Link(u, u) is +Inf and CommFree(u, u) is true by fiat,
	// matching the self-link convention Network.Validate enforces. The
	// default is chosen once per Build and never migrates — incremental
	// link updates that set an entry to a non-default value insert an
	// exception, and updates back to the default value overwrite the
	// existing exception in place (a stored exception whose value equals
	// the default is legal and harmless).
	linkDefault float64
	invDefault  float64
	linkOff     []int
	linkCol     []int
	linkVal     []float64
	linkInv     []float64
	// defCount is Build's scratch for the modal-strength election,
	// cleared (buckets retained) each Build.
	defCount map[float64]int

	// avgComm holds AvgCommTime for every edge twice: first aligned with
	// the concatenated successor lists, then with the predecessor lists.
	// succOff/predOff are the per-task offsets into it. It is the one
	// expensive table (O(|D|·|V|²) pair loops), so Build defers it:
	// EnsureAvgComm fills it on first use per Build, and scheduler pairs
	// that never read edge averages (MCT, MinMin, WBA, ...) skip the
	// cost entirely.
	avgComm      []float64
	succOff      []int
	predOff      []int
	avgCommBuilt bool
	src          *Instance // instance of the last Build, for EnsureAvgComm

	// topoPos is the inverse permutation of Topo (topoPos[Topo[i]] == i),
	// maintained so the structural patches can decide in O(1) (AddDep) or
	// O(affected window) (RemoveDep) whether the cached canonical order
	// survives an edge change without re-running Kahn.
	topoPos []int

	indeg    []int // Kahn scratch
	frontier []int
}

// AvgCommSucc returns the average communication time of the i-th
// successor edge of task t (the edge g.Succ[t][i]); it equals
// Instance.AvgCommTime(t, g.Succ[t][i].To). Call EnsureAvgComm once
// before a read loop.
func (tb *Tables) AvgCommSucc(t, i int) float64 {
	return tb.avgComm[tb.succOff[t]+i]
}

// AvgCommPred returns the average communication time of the i-th
// predecessor edge of task t (the edge (g.Pred[t][i].To, t)). Call
// EnsureAvgComm once before a read loop.
func (tb *Tables) AvgCommPred(t, i int) float64 {
	return tb.avgComm[tb.predOff[t]+i]
}

// EnsureAvgComm fills the per-edge average-communication table for the
// instance of the last Build, at most once per Build. The rank
// computations call it at entry; consumers that never read edge
// averages never pay for the pair loops.
func (tb *Tables) EnsureAvgComm() {
	if tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	nT := g.NumTasks()
	nD := g.NumDeps()
	tb.avgComm = growF64(tb.avgComm, 2*nD)
	tb.succOff = growInt(tb.succOff, nT+1)
	tb.predOff = growInt(tb.predOff, nT+1)
	off := 0
	for t := 0; t < nT; t++ {
		tb.succOff[t] = off
		for i, d := range g.Succ[t] {
			tb.avgComm[off+i] = tb.avgCommTimeFlat(d.Cost)
		}
		off += len(g.Succ[t])
	}
	tb.succOff[nT] = off
	for t := 0; t < nT; t++ {
		tb.predOff[t] = off
		for i, d := range g.Pred[t] {
			// Same edge (d.To, t): look the value up from the successor
			// half instead of recomputing the pair loop.
			u := d.To
			tb.avgComm[off+i] = tb.avgComm[tb.succOff[u]+succIndex(g, u, t)]
		}
		off += len(g.Pred[t])
	}
	tb.predOff[nT] = off
	tb.avgCommBuilt = true
}

// Link returns the link strength s(u, v). The diagonal is +Inf by the
// self-link convention; off-diagonal reads resolve through the
// exception list, falling back to the Build-time default.
func (tb *Tables) Link(u, v int) float64 {
	if u == v {
		return math.Inf(1)
	}
	if k, ok := tb.linkIdx(u, v); ok {
		return tb.linkVal[k]
	}
	return tb.linkDefault
}

// CommFree reports whether sending data from u to v costs nothing
// (same node or an infinitely strong link).
func (tb *Tables) CommFree(u, v int) bool {
	if u == v {
		return true
	}
	if k, ok := tb.linkIdx(u, v); ok {
		return tb.linkInv[k] == 0
	}
	return tb.invDefault == 0
}

// ExecRow returns task t's row of the execution-time matrix,
// Exec[t*NNodes : (t+1)*NNodes], as a shared (not copied) slice.
func (tb *Tables) ExecRow(t int) []float64 {
	return tb.Exec[t*tb.NNodes : (t+1)*tb.NNodes]
}

// LinkExceptions returns the number of stored link-exception entries
// (both symmetric copies counted) — the |E| in the O(|V|+|E|) link
// storage bound. Exposed for the scale-tier memory assertions.
func (tb *Tables) LinkExceptions() int { return len(tb.linkCol) }

// MemoryBytes reports the bytes referenced by every table the receiver
// currently holds (slice lengths × element size; capacity slack and the
// modal-election scratch map are not counted). The scale benchmark gate
// asserts this stays O(|V|+|E|+|D|+|T|·|V|) — in particular that no
// |V|² term reappears.
func (tb *Tables) MemoryBytes() int {
	const w = 8 // float64 and int are both 8 bytes on 64-bit hosts
	f := len(tb.InvSpeed) + len(tb.AvgExec) + len(tb.Exec) + len(tb.execPrefix) +
		len(tb.avgComm) + len(tb.linkVal) + len(tb.linkInv)
	i := len(tb.Topo) + len(tb.topoPos) + len(tb.indeg) + cap(tb.frontier) +
		len(tb.succOff) + len(tb.predOff) + len(tb.linkOff) + len(tb.linkCol)
	return w * (f + i)
}

// linkIdx locates the exception entry for the off-diagonal pair (u, v):
// it returns the entry's index and true when one is stored, or the
// would-be insertion position within row u (columns sorted ascending)
// and false when the pair takes the default.
func (tb *Tables) linkIdx(u, v int) (int, bool) {
	lo, hi := tb.linkOff[u], tb.linkOff[u+1]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tb.linkCol[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < tb.linkOff[u+1] && tb.linkCol[lo] == v {
		return lo, true
	}
	return lo, false
}

// growF64 returns s resized to n, reusing capacity.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt returns s resized to n, reusing capacity.
func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Build (re)computes every table for the instance, reusing the
// receiver's storage. It is safe to call on a zero Tables.
func (tb *Tables) Build(inst *Instance) {
	g, net := inst.Graph, inst.Net
	nT, nV := g.NumTasks(), net.NumNodes()
	tb.NTasks, tb.NNodes = nT, nV
	tb.Generation++

	tb.InvSpeed = growF64(tb.InvSpeed, nV)
	for v, s := range net.Speeds {
		tb.InvSpeed[v] = 1 / s
	}

	tb.buildLinks(net)

	// Per-task execution times and their average, with AvgExecTime's
	// exact summation order.
	tb.AvgExec = growF64(tb.AvgExec, nT)
	tb.Exec = growF64(tb.Exec, nT*nV)
	tb.execPrefix = growF64(tb.execPrefix, nT*nV)
	for t := 0; t < nT; t++ {
		cost := g.Tasks[t].Cost
		sum := 0.0
		for v := 0; v < nV; v++ {
			e := cost / net.Speeds[v]
			tb.Exec[t*nV+v] = e
			sum += e
			tb.execPrefix[t*nV+v] = sum
		}
		tb.AvgExec[t] = sum / float64(nV)
	}

	// The per-edge average-communication table (AvgCommTime's exact pair
	// loop) is deferred to EnsureAvgComm: only the rank computations
	// read it, and many scheduler pairs never do.
	tb.avgCommBuilt = false
	tb.src = inst

	tb.buildTopo(g)
}

// buildLinks elects the modal off-diagonal strength as the implicit
// default and stores every other off-diagonal entry in the CSR
// exception list. For a homogeneous network (one strength everywhere,
// the common case at scale) the list is empty; for a fully
// heterogeneous small network every pair becomes an exception and the
// layout degenerates gracefully to a dense-equivalent edge list.
func (tb *Tables) buildLinks(net *Network) {
	nV := tb.NNodes
	if tb.defCount == nil {
		tb.defCount = make(map[float64]int)
	}
	clear(tb.defCount)
	for u := 0; u < nV; u++ {
		row := net.Links[u]
		for v := u + 1; v < nV; v++ {
			tb.defCount[row[v]]++
		}
	}
	// Deterministic election: highest pair count wins, ties go to the
	// smallest strength (map iteration order cannot leak through a total
	// order on (count, value)).
	def, defN := math.Inf(1), 0
	for w, n := range tb.defCount {
		if n > defN || (n == defN && w < def) {
			def, defN = w, n
		}
	}
	tb.linkDefault = def
	if math.IsInf(def, 1) {
		tb.invDefault = 0
	} else {
		tb.invDefault = 1 / def
	}

	tb.linkOff = growInt(tb.linkOff, nV+1)
	tb.linkCol = tb.linkCol[:0]
	tb.linkVal = tb.linkVal[:0]
	tb.linkInv = tb.linkInv[:0]
	for u := 0; u < nV; u++ {
		tb.linkOff[u] = len(tb.linkCol)
		row := net.Links[u]
		for v := 0; v < nV; v++ {
			if v == u {
				continue
			}
			w := row[v]
			if w == def {
				continue
			}
			inv := 0.0
			if !math.IsInf(w, 1) {
				inv = 1 / w
			}
			tb.linkCol = append(tb.linkCol, v)
			tb.linkVal = append(tb.linkVal, w)
			tb.linkInv = append(tb.linkInv, inv)
		}
	}
	tb.linkOff[nV] = len(tb.linkCol)
}

// succIndex returns the position of edge (u, v) in g.Succ[u]; it panics
// if the adjacency lists are inconsistent (Validate catches that first).
func succIndex(g *TaskGraph, u, v int) int {
	for i, d := range g.Succ[u] {
		if d.To == v {
			return i
		}
	}
	panic("graph: predecessor list references missing successor edge")
}

// predIndex returns the position of edge (u, v) in g.Pred[v]; it panics
// if the adjacency lists are inconsistent.
func predIndex(g *TaskGraph, v, u int) int {
	for i, d := range g.Pred[v] {
		if d.To == u {
			return i
		}
	}
	panic("graph: successor list references missing predecessor edge")
}

// Incremental maintenance.
//
// The Update* methods below patch a built Tables in place after a
// single in-place mutation of the source instance (the one passed to
// the last Build), instead of rebuilding every table. Each method
// reproduces Build's floating-point operations for the affected entries
// in Build's exact order, so a patched Tables is bit-identical to a
// freshly built one — the property the PISA annealer's incremental
// inner loop (internal/core) relies on and incremental_test.go pins
// down. (Bit-identical here means every accessor returns identical
// values; the Build-time default election is never re-run, so the
// internal exception list may differ from a fresh Build's while every
// read agrees — sparse_test.go checks through the accessors.)
//
// Staleness contract — after mutating the built instance, call:
//
//	Net.Speeds[v] changed        → UpdateNodeSpeed(v)
//	Net.SetLink(u, v, w)         → UpdateLinkSpeed(u, v)
//	Graph.Tasks[t].Cost changed  → UpdateTaskWeight(t)
//	Graph.SetDepCost(u, v, w)    → UpdateDepWeight(u, v)
//	dependency (u, v) added      → AddDep(u, v)
//	dependency (u, v) removed    → RemoveDep(u, v)
//
// Any other mutation — adding or removing tasks or nodes, bulk
// rewrites, pointing at a different instance — still requires a full
// Build (scheduler.Scratch.Prepare). The methods panic or corrupt
// silently if called on a Tables that was never built.
//
// Every method below bumps Generation unconditionally at entry — even
// the ones whose early-return paths touch no table storage (a
// dep-weight patch against an unbuilt average table, a diagonal link) —
// because the *instance* mutation that triggered the call has already
// invalidated anything memoized against the previous generation.

// UpdateNodeSpeed patches the tables after Net.Speeds[v] changed in
// place: the inverse speed, node v's column of the dense exec-time
// matrix, and every per-task average. The average is NOT re-summed from
// column zero: columns left of v are untouched by the mutation, so
// their stored prefix sum execPrefix[t*nV+v-1] is exactly the running
// total a full left-to-right pass would carry into column v. Resuming
// there and re-accumulating columns v..|V|-1 performs the identical
// floating-point additions in the identical order — bit-identical to a
// rebuild, at half the additions on average. Link and communication
// tables are untouched — speeds never enter them. O(|T|·(|V|−v)).
func (tb *Tables) UpdateNodeSpeed(v int) {
	tb.Generation++
	g, net := tb.src.Graph, tb.src.Net
	nV := tb.NNodes
	tb.InvSpeed[v] = 1 / net.Speeds[v]
	for t := 0; t < tb.NTasks; t++ {
		row := t * nV
		sum := 0.0
		if v > 0 {
			sum = tb.execPrefix[row+v-1]
		}
		e := g.Tasks[t].Cost / net.Speeds[v]
		tb.Exec[row+v] = e
		sum += e
		tb.execPrefix[row+v] = sum
		for u := v + 1; u < nV; u++ {
			sum += tb.Exec[row+u]
			tb.execPrefix[row+u] = sum
		}
		tb.AvgExec[t] = sum / float64(nV)
	}
}

// UpdateLinkSpeed patches the tables after Net.SetLink(u, v, ·): both
// symmetric copies of the pair's entry in the sparse link storage. A
// pair whose new strength differs from the Build-time default gets an
// exception inserted (or its existing exception overwritten); a pair
// reverting to the default value keeps its exception slot with the
// default stored in it — reads cannot tell the difference, and the slot
// is reused when the annealer perturbs the same pair again, so the
// steady-state accept/reject cycle stays allocation-free once the
// touched pairs' slots exist. The per-edge average-communication table
// is invalidated rather than patched — every edge's average sums over
// all node pairs, so one link change touches all of it; the next
// EnsureAvgComm rebuilds it lazily (reusing storage) only if a
// scheduler actually reads it. O(log deg) per read, O(row shift) on
// first-time insertion.
func (tb *Tables) UpdateLinkSpeed(u, v int) {
	tb.Generation++
	if u == v {
		return
	}
	w := tb.src.Net.Links[u][v]
	inv := 0.0
	if !math.IsInf(w, 1) {
		inv = 1 / w
	}
	tb.setLinkEntry(u, v, w, inv)
	tb.setLinkEntry(v, u, w, inv)
	tb.avgCommBuilt = false
}

// setLinkEntry writes one directed copy of a link exception, inserting
// a new sorted CSR entry if the pair currently rides the default and
// the new value does not.
func (tb *Tables) setLinkEntry(u, v int, w, inv float64) {
	k, found := tb.linkIdx(u, v)
	if found {
		tb.linkVal[k] = w
		tb.linkInv[k] = inv
		return
	}
	if w == tb.linkDefault {
		return
	}
	n := len(tb.linkCol)
	tb.linkCol = append(tb.linkCol, 0)
	tb.linkVal = append(tb.linkVal, 0)
	tb.linkInv = append(tb.linkInv, 0)
	copy(tb.linkCol[k+1:], tb.linkCol[k:n])
	copy(tb.linkVal[k+1:], tb.linkVal[k:n])
	copy(tb.linkInv[k+1:], tb.linkInv[k:n])
	tb.linkCol[k] = v
	tb.linkVal[k] = w
	tb.linkInv[k] = inv
	for r := u + 1; r <= tb.NNodes; r++ {
		tb.linkOff[r]++
	}
}

// UpdateTaskWeight patches the tables after Graph.Tasks[t].Cost changed
// in place: task t's row of the dense exec-time matrix and its average,
// recomputed with Build's exact division-and-sum order. Communication
// tables are untouched — task costs never enter them. O(|V|).
func (tb *Tables) UpdateTaskWeight(t int) {
	tb.Generation++
	g, net := tb.src.Graph, tb.src.Net
	nV := tb.NNodes
	cost := g.Tasks[t].Cost
	sum := 0.0
	for v := 0; v < nV; v++ {
		e := cost / net.Speeds[v]
		tb.Exec[t*nV+v] = e
		sum += e
		tb.execPrefix[t*nV+v] = sum
	}
	tb.AvgExec[t] = sum / float64(nV)
}

// UpdateDepWeight patches the tables after Graph.SetDepCost(u, v, ·):
// the edge's two aligned entries (successor- and predecessor-ordered) of
// the per-edge average-communication table, if it is currently built.
// An unbuilt table needs nothing — the lazy EnsureAvgComm reads the
// live instance. O(|V|²) for the one edge's pair loop, versus the full
// table's O(|D|·|V|²).
func (tb *Tables) UpdateDepWeight(u, v int) {
	tb.Generation++
	if !tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	cost, _ := g.DepCost(u, v)
	a := tb.avgCommTimeFlat(cost)
	tb.avgComm[tb.succOff[u]+succIndex(g, u, v)] = a
	tb.avgComm[tb.predOff[v]+predIndex(g, v, u)] = a
}

// AvgCommOf returns edge (u, v)'s entry of the per-edge average table
// and whether the table is currently built. The annealer reads it
// before an UpdateDepWeight patch so a rejected dep-weight candidate
// can restore the old value in O(1) (SetAvgComm) instead of re-running
// the O(|V|²) pair loop.
func (tb *Tables) AvgCommOf(u, v int) (float64, bool) {
	if !tb.avgCommBuilt {
		return 0, false
	}
	g := tb.src.Graph
	return tb.avgComm[tb.succOff[u]+succIndex(g, u, v)], true
}

// SetAvgComm writes a known average-communication value into both
// aligned entries of edge (u, v) — the O(1) undo of an UpdateDepWeight
// patch. The value must be one AvgCommOf returned for the identical
// link state; anything else desynchronizes the table.
func (tb *Tables) SetAvgComm(u, v int, a float64) {
	tb.Generation++
	if !tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	tb.avgComm[tb.succOff[u]+succIndex(g, u, v)] = a
	tb.avgComm[tb.predOff[v]+predIndex(g, v, u)] = a
}

// SnapshotAvgComm copies the built per-edge average table into dst
// (reusing its capacity) and reports whether a snapshot was taken —
// false when the table is not currently built, in which case there is
// nothing to preserve. Taken before an UpdateLinkSpeed invalidation, it
// lets a rejected link-weight candidate restore the table in O(|D|)
// (RestoreAvgComm) instead of re-running the O(|D|·|V|²) rebuild.
func (tb *Tables) SnapshotAvgComm(dst []float64) ([]float64, bool) {
	if !tb.avgCommBuilt {
		return dst[:0], false
	}
	return append(dst[:0], tb.avgComm...), true
}

// RestoreAvgComm reinstates a SnapshotAvgComm snapshot and marks the
// table built. Only valid when the instance's links and adjacency are
// back in the exact state the snapshot was taken under (the offsets are
// not saved, so no structural change may intervene).
func (tb *Tables) RestoreAvgComm(snap []float64) {
	tb.Generation++
	tb.avgComm = append(tb.avgComm[:0], snap...)
	tb.avgCommBuilt = true
}

// AddDep patches the tables after dependency (u, v) was added to the
// source graph: the per-edge average table is invalidated (its offsets
// are aligned with the adjacency lists that just shifted) and the
// cached topological order incrementally repaired. Weight tables are
// untouched; edges never enter them.
//
// The repair exploits that Topo is the lexicographically smallest
// topological order (Kahn, lowest index first): adding a constraint the
// current order already satisfies — u placed before v — shrinks the
// feasible set without excluding the incumbent, and the minimum of a
// subset containing the old minimum is the old minimum. So when
// topoPos[u] < topoPos[v] the order is provably unchanged and the patch
// is O(1); only an order-violating edge re-runs Kahn (with reused
// buffers). Note the keep path also certifies acyclicity for free: a
// path v→u would force v before u in every topological order.
func (tb *Tables) AddDep(u, v int) {
	tb.Generation++
	tb.avgCommBuilt = false
	if tb.TopoErr == nil && tb.topoPos[u] < tb.topoPos[v] {
		return
	}
	tb.buildTopo(tb.src.Graph)
}

// RemoveDep patches the tables after dependency (u, v) was removed from
// the source graph: the per-edge average table is invalidated and the
// cached topological order incrementally repaired.
//
// Removing (u, v) only relaxes when v may be scheduled, so a greedy
// Kahn replay diverges from the cached order at most where v newly
// joins the frontier: from the step after v's last remaining
// predecessor was popped up to v's old position. If every task the old
// order popped in that window has a smaller index than v, the greedy
// choice never changes and the order stands (the usual annealer case —
// O(window) with no Kahn re-run); the first larger index means v would
// now win that pick, so Kahn re-runs.
func (tb *Tables) RemoveDep(u, v int) {
	tb.Generation++
	tb.avgCommBuilt = false
	if tb.TopoErr != nil {
		// The removal may have broken the cycle; recompute from scratch.
		tb.buildTopo(tb.src.Graph)
		return
	}
	g := tb.src.Graph
	ready := 0
	for _, d := range g.Pred[v] {
		if p := tb.topoPos[d.To] + 1; p > ready {
			ready = p
		}
	}
	for i := ready; i < tb.topoPos[v]; i++ {
		if v < tb.Topo[i] {
			tb.buildTopo(g)
			return
		}
	}
}

// avgCommTimeFlat is avgCommTime against the sparse link storage: the
// identical divisions in the identical (a, b) pair order as the dense
// reference (DenseTables.avgCommTimeFlat), so results are bit-identical.
// Default pairs contribute cost/linkDefault, computed once — dividing
// the same two bit patterns always yields the same bits, so one shared
// quotient added per default pair reproduces the dense per-pair
// division stream exactly. When the default strength is +Inf (free
// communication, e.g. the Chameleon networks) default pairs contribute
// nothing and the loop degenerates to a walk over the exception list
// with a closed-form pair count — O(|E|) instead of O(|V|²).
func (tb *Tables) avgCommTimeFlat(cost float64) float64 {
	if cost == 0 {
		return 0
	}
	nV := tb.NNodes
	if nV < 2 {
		return 0
	}
	sum := 0.0
	count := nV * (nV - 1) / 2
	if tb.invDefault == 0 {
		// Only exceptions can contribute; walk upper-triangle entries in
		// (row, col) order — exactly the order the dense pair loop visits
		// the contributing pairs.
		for a := 0; a < nV; a++ {
			for k := tb.linkOff[a]; k < tb.linkOff[a+1]; k++ {
				if tb.linkCol[k] > a && tb.linkInv[k] != 0 {
					sum += cost / tb.linkVal[k]
				}
			}
		}
		return sum / float64(count)
	}
	qd := cost / tb.linkDefault
	for a := 0; a < nV; a++ {
		k, end := tb.linkOff[a], tb.linkOff[a+1]
		for k < end && tb.linkCol[k] <= a {
			k++
		}
		for b := a + 1; b < nV; b++ {
			if k < end && tb.linkCol[k] == b {
				if tb.linkInv[k] != 0 {
					sum += cost / tb.linkVal[k]
				}
				k++
			} else {
				sum += qd
			}
		}
	}
	return sum / float64(count)
}

// avgCommTime mirrors Instance.AvgCommTime for a known edge cost.
func avgCommTime(net *Network, cost float64) float64 {
	if cost == 0 {
		return 0
	}
	nodes := net.NumNodes()
	if nodes < 2 {
		return 0
	}
	sum := 0.0
	count := 0
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if !math.IsInf(net.Links[a][b], 1) {
				sum += cost / net.Links[a][b]
			}
			count++
		}
	}
	return sum / float64(count)
}

// buildTopo mirrors TaskGraph.TopoOrder (Kahn, lowest index first) with
// reused buffers.
func (tb *Tables) buildTopo(g *TaskGraph) {
	n := g.NumTasks()
	tb.Topo = growInt(tb.Topo, n)[:0]
	tb.indeg = growInt(tb.indeg, n)
	tb.frontier = tb.frontier[:0]
	tb.TopoErr = nil
	for t := 0; t < n; t++ {
		tb.indeg[t] = len(g.Pred[t])
		if tb.indeg[t] == 0 {
			tb.frontier = append(tb.frontier, t)
		}
	}
	for len(tb.frontier) > 0 {
		best := 0
		for i := 1; i < len(tb.frontier); i++ {
			if tb.frontier[i] < tb.frontier[best] {
				best = i
			}
		}
		t := tb.frontier[best]
		tb.frontier = append(tb.frontier[:best], tb.frontier[best+1:]...)
		tb.Topo = append(tb.Topo, t)
		for _, d := range g.Succ[t] {
			tb.indeg[d.To]--
			if tb.indeg[d.To] == 0 {
				tb.frontier = append(tb.frontier, d.To)
			}
		}
	}
	if len(tb.Topo) != n {
		tb.TopoErr = cycleError(len(tb.Topo), n)
		return
	}
	tb.topoPos = growInt(tb.topoPos, n)
	for i, t := range tb.Topo {
		tb.topoPos[t] = i
	}
}
