package graph

import "math"

// Tables caches the derived cost quantities every list scheduler keeps
// recomputing from an Instance: inverse node speeds, the flattened dense
// link-strength matrix and its inverse, per-task average execution
// times, per-edge average communication times (aligned with both the
// successor and predecessor adjacency lists), and the deterministic
// topological order. Build populates them reusing the receiver's
// storage (the per-edge averages lazily, via EnsureAvgComm), so a
// per-worker Tables rebuilt once per instance makes the scheduling hot
// path allocation-free.
//
// The averages are accumulated with exactly the same floating-point
// operation order as Instance.AvgExecTime and Instance.AvgCommTime, so
// schedulers reading the tables produce bit-identical schedules to ones
// calling the Instance methods directly.
//
// Tables is a snapshot: it does not observe later mutations of the
// instance. Callers that perturb weights or structure must call Build
// again before the next use (package core does so once per annealing
// candidate).
type Tables struct {
	// NTasks and NNodes record the shape the tables were built for.
	NTasks, NNodes int

	// InvSpeed[v] is 1/s(v).
	InvSpeed []float64
	// LinkFlat is the dense row-major |V|×|V| link-strength matrix:
	// LinkFlat[u*NNodes+v] = s(u, v), +Inf on the diagonal. Hot paths
	// divide by these raw strengths (never multiply by the inverse) so
	// results stay bit-identical to Instance.CommTime.
	LinkFlat []float64
	// InvLink is the matching inverse matrix: 1/s(u, v), with 0 for the
	// diagonal and for infinitely strong links. An entry of 0 therefore
	// means "communication between this pair is free".
	InvLink []float64
	// AvgExec[t] equals Instance.AvgExecTime(t).
	AvgExec []float64
	// Exec is the dense row-major |T|×|V| execution-time matrix:
	// Exec[t*NNodes+v] = c(t)/s(v), each entry the one division
	// Instance.ExecTime performs, so reads are bit-identical.
	Exec []float64
	// Topo is the deterministic topological order of the task graph
	// (equal to TaskGraph.TopoOrder); TopoErr records the cycle error if
	// the graph has one, in which case Topo is invalid.
	Topo    []int
	TopoErr error

	// avgComm holds AvgCommTime for every edge twice: first aligned with
	// the concatenated successor lists, then with the predecessor lists.
	// succOff/predOff are the per-task offsets into it. It is the one
	// expensive table (O(|D|·|V|²) pair loops), so Build defers it:
	// EnsureAvgComm fills it on first use per Build, and scheduler pairs
	// that never read edge averages (MCT, MinMin, WBA, ...) skip the
	// cost entirely.
	avgComm      []float64
	succOff      []int
	predOff      []int
	avgCommBuilt bool
	src          *Instance // instance of the last Build, for EnsureAvgComm

	indeg    []int // Kahn scratch
	frontier []int
}

// AvgCommSucc returns the average communication time of the i-th
// successor edge of task t (the edge g.Succ[t][i]); it equals
// Instance.AvgCommTime(t, g.Succ[t][i].To). Call EnsureAvgComm once
// before a read loop.
func (tb *Tables) AvgCommSucc(t, i int) float64 {
	return tb.avgComm[tb.succOff[t]+i]
}

// AvgCommPred returns the average communication time of the i-th
// predecessor edge of task t (the edge (g.Pred[t][i].To, t)). Call
// EnsureAvgComm once before a read loop.
func (tb *Tables) AvgCommPred(t, i int) float64 {
	return tb.avgComm[tb.predOff[t]+i]
}

// EnsureAvgComm fills the per-edge average-communication table for the
// instance of the last Build, at most once per Build. The rank
// computations call it at entry; consumers that never read edge
// averages never pay for the pair loops.
func (tb *Tables) EnsureAvgComm() {
	if tb.avgCommBuilt {
		return
	}
	g, net := tb.src.Graph, tb.src.Net
	nT := g.NumTasks()
	nD := g.NumDeps()
	tb.avgComm = growF64(tb.avgComm, 2*nD)
	tb.succOff = growInt(tb.succOff, nT+1)
	tb.predOff = growInt(tb.predOff, nT+1)
	off := 0
	for t := 0; t < nT; t++ {
		tb.succOff[t] = off
		for i, d := range g.Succ[t] {
			tb.avgComm[off+i] = avgCommTime(net, d.Cost)
		}
		off += len(g.Succ[t])
	}
	tb.succOff[nT] = off
	for t := 0; t < nT; t++ {
		tb.predOff[t] = off
		for i, d := range g.Pred[t] {
			// Same edge (d.To, t): look the value up from the successor
			// half instead of recomputing the pair loop.
			u := d.To
			tb.avgComm[off+i] = tb.avgComm[tb.succOff[u]+succIndex(g, u, t)]
		}
		off += len(g.Pred[t])
	}
	tb.predOff[nT] = off
	tb.avgCommBuilt = true
}

// Link returns the link strength s(u, v) from the flattened matrix.
func (tb *Tables) Link(u, v int) float64 { return tb.LinkFlat[u*tb.NNodes+v] }

// CommFree reports whether sending data from u to v costs nothing
// (same node or an infinitely strong link).
func (tb *Tables) CommFree(u, v int) bool { return tb.InvLink[u*tb.NNodes+v] == 0 }

// growF64 returns s resized to n, reusing capacity.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt returns s resized to n, reusing capacity.
func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Build (re)computes every table for the instance, reusing the
// receiver's storage. It is safe to call on a zero Tables.
func (tb *Tables) Build(inst *Instance) {
	g, net := inst.Graph, inst.Net
	nT, nV := g.NumTasks(), net.NumNodes()
	tb.NTasks, tb.NNodes = nT, nV

	tb.InvSpeed = growF64(tb.InvSpeed, nV)
	for v, s := range net.Speeds {
		tb.InvSpeed[v] = 1 / s
	}

	tb.LinkFlat = growF64(tb.LinkFlat, nV*nV)
	tb.InvLink = growF64(tb.InvLink, nV*nV)
	for u := 0; u < nV; u++ {
		row := net.Links[u]
		for v := 0; v < nV; v++ {
			w := row[v]
			tb.LinkFlat[u*nV+v] = w
			if u == v || math.IsInf(w, 1) {
				tb.InvLink[u*nV+v] = 0
			} else {
				tb.InvLink[u*nV+v] = 1 / w
			}
		}
	}

	// Per-task execution times and their average, with AvgExecTime's
	// exact summation order.
	tb.AvgExec = growF64(tb.AvgExec, nT)
	tb.Exec = growF64(tb.Exec, nT*nV)
	for t := 0; t < nT; t++ {
		cost := g.Tasks[t].Cost
		sum := 0.0
		for v := 0; v < nV; v++ {
			e := cost / net.Speeds[v]
			tb.Exec[t*nV+v] = e
			sum += e
		}
		tb.AvgExec[t] = sum / float64(nV)
	}

	// The per-edge average-communication table (AvgCommTime's exact pair
	// loop) is deferred to EnsureAvgComm: only the rank computations
	// read it, and many scheduler pairs never do.
	tb.avgCommBuilt = false
	tb.src = inst

	tb.buildTopo(g)
}

// succIndex returns the position of edge (u, v) in g.Succ[u]; it panics
// if the adjacency lists are inconsistent (Validate catches that first).
func succIndex(g *TaskGraph, u, v int) int {
	for i, d := range g.Succ[u] {
		if d.To == v {
			return i
		}
	}
	panic("graph: predecessor list references missing successor edge")
}

// avgCommTime mirrors Instance.AvgCommTime for a known edge cost.
func avgCommTime(net *Network, cost float64) float64 {
	if cost == 0 {
		return 0
	}
	nodes := net.NumNodes()
	if nodes < 2 {
		return 0
	}
	sum := 0.0
	count := 0
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if !math.IsInf(net.Links[a][b], 1) {
				sum += cost / net.Links[a][b]
			}
			count++
		}
	}
	return sum / float64(count)
}

// buildTopo mirrors TaskGraph.TopoOrder (Kahn, lowest index first) with
// reused buffers.
func (tb *Tables) buildTopo(g *TaskGraph) {
	n := g.NumTasks()
	tb.Topo = growInt(tb.Topo, n)[:0]
	tb.indeg = growInt(tb.indeg, n)
	tb.frontier = tb.frontier[:0]
	tb.TopoErr = nil
	for t := 0; t < n; t++ {
		tb.indeg[t] = len(g.Pred[t])
		if tb.indeg[t] == 0 {
			tb.frontier = append(tb.frontier, t)
		}
	}
	for len(tb.frontier) > 0 {
		best := 0
		for i := 1; i < len(tb.frontier); i++ {
			if tb.frontier[i] < tb.frontier[best] {
				best = i
			}
		}
		t := tb.frontier[best]
		tb.frontier = append(tb.frontier[:best], tb.frontier[best+1:]...)
		tb.Topo = append(tb.Topo, t)
		for _, d := range g.Succ[t] {
			tb.indeg[d.To]--
			if tb.indeg[d.To] == 0 {
				tb.frontier = append(tb.frontier, d.To)
			}
		}
	}
	if len(tb.Topo) != n {
		tb.TopoErr = cycleError(len(tb.Topo), n)
	}
}
