package graph

import "math"

// Tables caches the derived cost quantities every list scheduler keeps
// recomputing from an Instance: inverse node speeds, the flattened dense
// link-strength matrix and its inverse, per-task average execution
// times, per-edge average communication times (aligned with both the
// successor and predecessor adjacency lists), and the deterministic
// topological order. Build populates them reusing the receiver's
// storage (the per-edge averages lazily, via EnsureAvgComm), so a
// per-worker Tables rebuilt once per instance makes the scheduling hot
// path allocation-free.
//
// The averages are accumulated with exactly the same floating-point
// operation order as Instance.AvgExecTime and Instance.AvgCommTime, so
// schedulers reading the tables produce bit-identical schedules to ones
// calling the Instance methods directly.
//
// Tables is a snapshot: it does not observe later mutations of the
// instance. Callers that perturb weights or structure must either call
// Build again before the next use, or patch the affected entries
// through the incremental maintenance methods below (the PISA annealer
// does the latter once per in-place perturbation — see the staleness
// contract at UpdateNodeSpeed).
type Tables struct {
	// NTasks and NNodes record the shape the tables were built for.
	NTasks, NNodes int

	// Generation is the monotonically increasing stamp of the tables'
	// logical state: Build and every mutating maintenance method
	// (Update*/AddDep/RemoveDep/SetAvgComm/RestoreAvgComm) increment it,
	// and it is never reset — not even when Build points the tables at a
	// different instance. Anything derived from the tables (the rank
	// vectors scheduler.EvalCache memoizes) is therefore safe to reuse
	// exactly when (instance pointer, Generation) both match the values
	// recorded at computation time: a stale read would require a mutation
	// that did not bump the stamp, which the staleness contract forbids
	// and TestTablesGenerationBumps pins down. Lazy fills (EnsureAvgComm)
	// do not bump it — they change no logical state, only materialize
	// values the current generation already determines.
	Generation uint64

	// InvSpeed[v] is 1/s(v).
	InvSpeed []float64
	// LinkFlat is the dense row-major |V|×|V| link-strength matrix:
	// LinkFlat[u*NNodes+v] = s(u, v), +Inf on the diagonal. Hot paths
	// divide by these raw strengths (never multiply by the inverse) so
	// results stay bit-identical to Instance.CommTime.
	LinkFlat []float64
	// InvLink is the matching inverse matrix: 1/s(u, v), with 0 for the
	// diagonal and for infinitely strong links. An entry of 0 therefore
	// means "communication between this pair is free".
	InvLink []float64
	// AvgExec[t] equals Instance.AvgExecTime(t).
	AvgExec []float64
	// Exec is the dense row-major |T|×|V| execution-time matrix:
	// Exec[t*NNodes+v] = c(t)/s(v), each entry the one division
	// Instance.ExecTime performs, so reads are bit-identical.
	Exec []float64
	// execPrefix mirrors Exec with left-to-right partial row sums:
	// execPrefix[t*NNodes+v] is the sum of Exec[t*NNodes : t*NNodes+v+1]
	// accumulated in Build's exact order, so execPrefix[t*NNodes+NNodes-1]
	// is the numerator of AvgExec[t] bit for bit. UpdateNodeSpeed resumes
	// the running sum at the patched column instead of re-summing the
	// whole row — identical floating-point operation sequence, half the
	// work on average.
	execPrefix []float64
	// Topo is the deterministic topological order of the task graph
	// (equal to TaskGraph.TopoOrder); TopoErr records the cycle error if
	// the graph has one, in which case Topo is invalid.
	Topo    []int
	TopoErr error

	// avgComm holds AvgCommTime for every edge twice: first aligned with
	// the concatenated successor lists, then with the predecessor lists.
	// succOff/predOff are the per-task offsets into it. It is the one
	// expensive table (O(|D|·|V|²) pair loops), so Build defers it:
	// EnsureAvgComm fills it on first use per Build, and scheduler pairs
	// that never read edge averages (MCT, MinMin, WBA, ...) skip the
	// cost entirely.
	avgComm      []float64
	succOff      []int
	predOff      []int
	avgCommBuilt bool
	src          *Instance // instance of the last Build, for EnsureAvgComm

	// topoPos is the inverse permutation of Topo (topoPos[Topo[i]] == i),
	// maintained so the structural patches can decide in O(1) (AddDep) or
	// O(affected window) (RemoveDep) whether the cached canonical order
	// survives an edge change without re-running Kahn.
	topoPos []int

	indeg    []int // Kahn scratch
	frontier []int
}

// AvgCommSucc returns the average communication time of the i-th
// successor edge of task t (the edge g.Succ[t][i]); it equals
// Instance.AvgCommTime(t, g.Succ[t][i].To). Call EnsureAvgComm once
// before a read loop.
func (tb *Tables) AvgCommSucc(t, i int) float64 {
	return tb.avgComm[tb.succOff[t]+i]
}

// AvgCommPred returns the average communication time of the i-th
// predecessor edge of task t (the edge (g.Pred[t][i].To, t)). Call
// EnsureAvgComm once before a read loop.
func (tb *Tables) AvgCommPred(t, i int) float64 {
	return tb.avgComm[tb.predOff[t]+i]
}

// EnsureAvgComm fills the per-edge average-communication table for the
// instance of the last Build, at most once per Build. The rank
// computations call it at entry; consumers that never read edge
// averages never pay for the pair loops.
func (tb *Tables) EnsureAvgComm() {
	if tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	nT := g.NumTasks()
	nD := g.NumDeps()
	tb.avgComm = growF64(tb.avgComm, 2*nD)
	tb.succOff = growInt(tb.succOff, nT+1)
	tb.predOff = growInt(tb.predOff, nT+1)
	off := 0
	for t := 0; t < nT; t++ {
		tb.succOff[t] = off
		for i, d := range g.Succ[t] {
			tb.avgComm[off+i] = tb.avgCommTimeFlat(d.Cost)
		}
		off += len(g.Succ[t])
	}
	tb.succOff[nT] = off
	for t := 0; t < nT; t++ {
		tb.predOff[t] = off
		for i, d := range g.Pred[t] {
			// Same edge (d.To, t): look the value up from the successor
			// half instead of recomputing the pair loop.
			u := d.To
			tb.avgComm[off+i] = tb.avgComm[tb.succOff[u]+succIndex(g, u, t)]
		}
		off += len(g.Pred[t])
	}
	tb.predOff[nT] = off
	tb.avgCommBuilt = true
}

// Link returns the link strength s(u, v) from the flattened matrix.
func (tb *Tables) Link(u, v int) float64 { return tb.LinkFlat[u*tb.NNodes+v] }

// CommFree reports whether sending data from u to v costs nothing
// (same node or an infinitely strong link).
func (tb *Tables) CommFree(u, v int) bool { return tb.InvLink[u*tb.NNodes+v] == 0 }

// growF64 returns s resized to n, reusing capacity.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt returns s resized to n, reusing capacity.
func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Build (re)computes every table for the instance, reusing the
// receiver's storage. It is safe to call on a zero Tables.
func (tb *Tables) Build(inst *Instance) {
	g, net := inst.Graph, inst.Net
	nT, nV := g.NumTasks(), net.NumNodes()
	tb.NTasks, tb.NNodes = nT, nV
	tb.Generation++

	tb.InvSpeed = growF64(tb.InvSpeed, nV)
	for v, s := range net.Speeds {
		tb.InvSpeed[v] = 1 / s
	}

	tb.LinkFlat = growF64(tb.LinkFlat, nV*nV)
	tb.InvLink = growF64(tb.InvLink, nV*nV)
	for u := 0; u < nV; u++ {
		row := net.Links[u]
		for v := 0; v < nV; v++ {
			w := row[v]
			tb.LinkFlat[u*nV+v] = w
			if u == v || math.IsInf(w, 1) {
				tb.InvLink[u*nV+v] = 0
			} else {
				tb.InvLink[u*nV+v] = 1 / w
			}
		}
	}

	// Per-task execution times and their average, with AvgExecTime's
	// exact summation order.
	tb.AvgExec = growF64(tb.AvgExec, nT)
	tb.Exec = growF64(tb.Exec, nT*nV)
	tb.execPrefix = growF64(tb.execPrefix, nT*nV)
	for t := 0; t < nT; t++ {
		cost := g.Tasks[t].Cost
		sum := 0.0
		for v := 0; v < nV; v++ {
			e := cost / net.Speeds[v]
			tb.Exec[t*nV+v] = e
			sum += e
			tb.execPrefix[t*nV+v] = sum
		}
		tb.AvgExec[t] = sum / float64(nV)
	}

	// The per-edge average-communication table (AvgCommTime's exact pair
	// loop) is deferred to EnsureAvgComm: only the rank computations
	// read it, and many scheduler pairs never do.
	tb.avgCommBuilt = false
	tb.src = inst

	tb.buildTopo(g)
}

// succIndex returns the position of edge (u, v) in g.Succ[u]; it panics
// if the adjacency lists are inconsistent (Validate catches that first).
func succIndex(g *TaskGraph, u, v int) int {
	for i, d := range g.Succ[u] {
		if d.To == v {
			return i
		}
	}
	panic("graph: predecessor list references missing successor edge")
}

// predIndex returns the position of edge (u, v) in g.Pred[v]; it panics
// if the adjacency lists are inconsistent.
func predIndex(g *TaskGraph, v, u int) int {
	for i, d := range g.Pred[v] {
		if d.To == u {
			return i
		}
	}
	panic("graph: successor list references missing predecessor edge")
}

// Incremental maintenance.
//
// The Update* methods below patch a built Tables in place after a
// single in-place mutation of the source instance (the one passed to
// the last Build), instead of rebuilding every table. Each method
// reproduces Build's floating-point operations for the affected entries
// in Build's exact order, so a patched Tables is bit-identical to a
// freshly built one — the property the PISA annealer's incremental
// inner loop (internal/core) relies on and incremental_test.go pins
// down.
//
// Staleness contract — after mutating the built instance, call:
//
//	Net.Speeds[v] changed        → UpdateNodeSpeed(v)
//	Net.SetLink(u, v, w)         → UpdateLinkSpeed(u, v)
//	Graph.Tasks[t].Cost changed  → UpdateTaskWeight(t)
//	Graph.SetDepCost(u, v, w)    → UpdateDepWeight(u, v)
//	dependency (u, v) added      → AddDep(u, v)
//	dependency (u, v) removed    → RemoveDep(u, v)
//
// Any other mutation — adding or removing tasks or nodes, bulk
// rewrites, pointing at a different instance — still requires a full
// Build (scheduler.Scratch.Prepare). The methods panic or corrupt
// silently if called on a Tables that was never built.
//
// Every method below bumps Generation unconditionally at entry — even
// the ones whose early-return paths touch no table storage (a
// dep-weight patch against an unbuilt average table, a diagonal link) —
// because the *instance* mutation that triggered the call has already
// invalidated anything memoized against the previous generation.

// UpdateNodeSpeed patches the tables after Net.Speeds[v] changed in
// place: the inverse speed, node v's column of the dense exec-time
// matrix, and every per-task average. The average is NOT re-summed from
// column zero: columns left of v are untouched by the mutation, so
// their stored prefix sum execPrefix[t*nV+v-1] is exactly the running
// total a full left-to-right pass would carry into column v. Resuming
// there and re-accumulating columns v..|V|-1 performs the identical
// floating-point additions in the identical order — bit-identical to a
// rebuild, at half the additions on average. Link and communication
// tables are untouched — speeds never enter them. O(|T|·(|V|−v)).
func (tb *Tables) UpdateNodeSpeed(v int) {
	tb.Generation++
	g, net := tb.src.Graph, tb.src.Net
	nV := tb.NNodes
	tb.InvSpeed[v] = 1 / net.Speeds[v]
	for t := 0; t < tb.NTasks; t++ {
		row := t * nV
		sum := 0.0
		if v > 0 {
			sum = tb.execPrefix[row+v-1]
		}
		e := g.Tasks[t].Cost / net.Speeds[v]
		tb.Exec[row+v] = e
		sum += e
		tb.execPrefix[row+v] = sum
		for u := v + 1; u < nV; u++ {
			sum += tb.Exec[row+u]
			tb.execPrefix[row+u] = sum
		}
		tb.AvgExec[t] = sum / float64(nV)
	}
}

// UpdateLinkSpeed patches the tables after Net.SetLink(u, v, ·): both
// symmetric entries of the flattened link matrix and its inverse. The
// per-edge average-communication table is invalidated rather than
// patched — every edge's average sums over all node pairs, so one link
// change touches all of it; the next EnsureAvgComm rebuilds it lazily
// (reusing storage) only if a scheduler actually reads it. O(1).
func (tb *Tables) UpdateLinkSpeed(u, v int) {
	tb.Generation++
	if u == v {
		return
	}
	net := tb.src.Net
	nV := tb.NNodes
	for _, e := range [2][2]int{{u, v}, {v, u}} {
		w := net.Links[e[0]][e[1]]
		tb.LinkFlat[e[0]*nV+e[1]] = w
		if math.IsInf(w, 1) {
			tb.InvLink[e[0]*nV+e[1]] = 0
		} else {
			tb.InvLink[e[0]*nV+e[1]] = 1 / w
		}
	}
	tb.avgCommBuilt = false
}

// UpdateTaskWeight patches the tables after Graph.Tasks[t].Cost changed
// in place: task t's row of the dense exec-time matrix and its average,
// recomputed with Build's exact division-and-sum order. Communication
// tables are untouched — task costs never enter them. O(|V|).
func (tb *Tables) UpdateTaskWeight(t int) {
	tb.Generation++
	g, net := tb.src.Graph, tb.src.Net
	nV := tb.NNodes
	cost := g.Tasks[t].Cost
	sum := 0.0
	for v := 0; v < nV; v++ {
		e := cost / net.Speeds[v]
		tb.Exec[t*nV+v] = e
		sum += e
		tb.execPrefix[t*nV+v] = sum
	}
	tb.AvgExec[t] = sum / float64(nV)
}

// UpdateDepWeight patches the tables after Graph.SetDepCost(u, v, ·):
// the edge's two aligned entries (successor- and predecessor-ordered) of
// the per-edge average-communication table, if it is currently built.
// An unbuilt table needs nothing — the lazy EnsureAvgComm reads the
// live instance. O(|V|²) for the one edge's pair loop, versus the full
// table's O(|D|·|V|²).
func (tb *Tables) UpdateDepWeight(u, v int) {
	tb.Generation++
	if !tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	cost, _ := g.DepCost(u, v)
	a := tb.avgCommTimeFlat(cost)
	tb.avgComm[tb.succOff[u]+succIndex(g, u, v)] = a
	tb.avgComm[tb.predOff[v]+predIndex(g, v, u)] = a
}

// AvgCommOf returns edge (u, v)'s entry of the per-edge average table
// and whether the table is currently built. The annealer reads it
// before an UpdateDepWeight patch so a rejected dep-weight candidate
// can restore the old value in O(1) (SetAvgComm) instead of re-running
// the O(|V|²) pair loop.
func (tb *Tables) AvgCommOf(u, v int) (float64, bool) {
	if !tb.avgCommBuilt {
		return 0, false
	}
	g := tb.src.Graph
	return tb.avgComm[tb.succOff[u]+succIndex(g, u, v)], true
}

// SetAvgComm writes a known average-communication value into both
// aligned entries of edge (u, v) — the O(1) undo of an UpdateDepWeight
// patch. The value must be one AvgCommOf returned for the identical
// link state; anything else desynchronizes the table.
func (tb *Tables) SetAvgComm(u, v int, a float64) {
	tb.Generation++
	if !tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	tb.avgComm[tb.succOff[u]+succIndex(g, u, v)] = a
	tb.avgComm[tb.predOff[v]+predIndex(g, v, u)] = a
}

// SnapshotAvgComm copies the built per-edge average table into dst
// (reusing its capacity) and reports whether a snapshot was taken —
// false when the table is not currently built, in which case there is
// nothing to preserve. Taken before an UpdateLinkSpeed invalidation, it
// lets a rejected link-weight candidate restore the table in O(|D|)
// (RestoreAvgComm) instead of re-running the O(|D|·|V|²) rebuild.
func (tb *Tables) SnapshotAvgComm(dst []float64) ([]float64, bool) {
	if !tb.avgCommBuilt {
		return dst[:0], false
	}
	return append(dst[:0], tb.avgComm...), true
}

// RestoreAvgComm reinstates a SnapshotAvgComm snapshot and marks the
// table built. Only valid when the instance's links and adjacency are
// back in the exact state the snapshot was taken under (the offsets are
// not saved, so no structural change may intervene).
func (tb *Tables) RestoreAvgComm(snap []float64) {
	tb.Generation++
	tb.avgComm = append(tb.avgComm[:0], snap...)
	tb.avgCommBuilt = true
}

// AddDep patches the tables after dependency (u, v) was added to the
// source graph: the per-edge average table is invalidated (its offsets
// are aligned with the adjacency lists that just shifted) and the
// cached topological order incrementally repaired. Weight tables are
// untouched; edges never enter them.
//
// The repair exploits that Topo is the lexicographically smallest
// topological order (Kahn, lowest index first): adding a constraint the
// current order already satisfies — u placed before v — shrinks the
// feasible set without excluding the incumbent, and the minimum of a
// subset containing the old minimum is the old minimum. So when
// topoPos[u] < topoPos[v] the order is provably unchanged and the patch
// is O(1); only an order-violating edge re-runs Kahn (with reused
// buffers). Note the keep path also certifies acyclicity for free: a
// path v→u would force v before u in every topological order.
func (tb *Tables) AddDep(u, v int) {
	tb.Generation++
	tb.avgCommBuilt = false
	if tb.TopoErr == nil && tb.topoPos[u] < tb.topoPos[v] {
		return
	}
	tb.buildTopo(tb.src.Graph)
}

// RemoveDep patches the tables after dependency (u, v) was removed from
// the source graph: the per-edge average table is invalidated and the
// cached topological order incrementally repaired.
//
// Removing (u, v) only relaxes when v may be scheduled, so a greedy
// Kahn replay diverges from the cached order at most where v newly
// joins the frontier: from the step after v's last remaining
// predecessor was popped up to v's old position. If every task the old
// order popped in that window has a smaller index than v, the greedy
// choice never changes and the order stands (the usual annealer case —
// O(window) with no Kahn re-run); the first larger index means v would
// now win that pick, so Kahn re-runs.
func (tb *Tables) RemoveDep(u, v int) {
	tb.Generation++
	tb.avgCommBuilt = false
	if tb.TopoErr != nil {
		// The removal may have broken the cycle; recompute from scratch.
		tb.buildTopo(tb.src.Graph)
		return
	}
	g := tb.src.Graph
	ready := 0
	for _, d := range g.Pred[v] {
		if p := tb.topoPos[d.To] + 1; p > ready {
			ready = p
		}
	}
	for i := ready; i < tb.topoPos[v]; i++ {
		if v < tb.Topo[i] {
			tb.buildTopo(g)
			return
		}
	}
}

// avgCommTimeFlat is avgCommTime against the flattened link tables:
// the identical divisions in the identical pair order (InvLink == 0 off
// the diagonal exactly when the link is infinitely strong), so results
// are bit-identical — just without the nested-slice loads and IsInf
// calls of the Instance pair loop. This is the hot form: EnsureAvgComm
// and UpdateDepWeight sit on the PISA inner loop's rebuild path.
func (tb *Tables) avgCommTimeFlat(cost float64) float64 {
	if cost == 0 {
		return 0
	}
	nV := tb.NNodes
	if nV < 2 {
		return 0
	}
	sum := 0.0
	count := 0
	for a := 0; a < nV; a++ {
		row := tb.LinkFlat[a*nV : a*nV+nV]
		inv := tb.InvLink[a*nV : a*nV+nV]
		for b := a + 1; b < nV; b++ {
			if inv[b] != 0 {
				sum += cost / row[b]
			}
			count++
		}
	}
	return sum / float64(count)
}

// avgCommTime mirrors Instance.AvgCommTime for a known edge cost.
func avgCommTime(net *Network, cost float64) float64 {
	if cost == 0 {
		return 0
	}
	nodes := net.NumNodes()
	if nodes < 2 {
		return 0
	}
	sum := 0.0
	count := 0
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if !math.IsInf(net.Links[a][b], 1) {
				sum += cost / net.Links[a][b]
			}
			count++
		}
	}
	return sum / float64(count)
}

// buildTopo mirrors TaskGraph.TopoOrder (Kahn, lowest index first) with
// reused buffers.
func (tb *Tables) buildTopo(g *TaskGraph) {
	n := g.NumTasks()
	tb.Topo = growInt(tb.Topo, n)[:0]
	tb.indeg = growInt(tb.indeg, n)
	tb.frontier = tb.frontier[:0]
	tb.TopoErr = nil
	for t := 0; t < n; t++ {
		tb.indeg[t] = len(g.Pred[t])
		if tb.indeg[t] == 0 {
			tb.frontier = append(tb.frontier, t)
		}
	}
	for len(tb.frontier) > 0 {
		best := 0
		for i := 1; i < len(tb.frontier); i++ {
			if tb.frontier[i] < tb.frontier[best] {
				best = i
			}
		}
		t := tb.frontier[best]
		tb.frontier = append(tb.frontier[:best], tb.frontier[best+1:]...)
		tb.Topo = append(tb.Topo, t)
		for _, d := range g.Succ[t] {
			tb.indeg[d.To]--
			if tb.indeg[d.To] == 0 {
				tb.frontier = append(tb.frontier, d.To)
			}
		}
	}
	if len(tb.Topo) != n {
		tb.TopoErr = cycleError(len(tb.Topo), n)
		return
	}
	tb.topoPos = growInt(tb.topoPos, n)
	for i, t := range tb.Topo {
		tb.topoPos[t] = i
	}
}
