package graph

import (
	"math"
	"testing"
)

// tablesTestInstance builds a small heterogeneous instance with a
// diamond DAG, a zero-cost edge, and an infinite self-link row.
func tablesTestInstance() *Instance {
	g := NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 3)
	c := g.AddTask("c", 0.5)
	d := g.AddTask("d", 1.25)
	g.MustAddDep(a, b, 4)
	g.MustAddDep(a, c, 0) // zero data size: always free
	g.MustAddDep(b, d, 1.5)
	g.MustAddDep(c, d, 2.25)
	net := NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 1, 2, 0.5
	net.SetLink(0, 1, 3)
	net.SetLink(0, 2, 0.25)
	net.SetLink(1, 2, 7)
	return NewInstance(g, net)
}

// TestTablesMatchInstanceMethods pins the tentpole's bit-compatibility
// contract: every table entry equals (==) the Instance method it
// replaces.
func TestTablesMatchInstanceMethods(t *testing.T) {
	inst := tablesTestInstance()
	var tb Tables
	tb.Build(inst)
	tb.EnsureAvgComm()

	nV := inst.Net.NumNodes()
	for v := 0; v < nV; v++ {
		if tb.InvSpeed[v] != 1/inst.Net.Speeds[v] {
			t.Errorf("InvSpeed[%d] = %v", v, tb.InvSpeed[v])
		}
		for u := 0; u < nV; u++ {
			if tb.Link(u, v) != inst.Net.Links[u][v] {
				t.Errorf("Link(%d,%d) = %v, want %v", u, v, tb.Link(u, v), inst.Net.Links[u][v])
			}
			wantFree := u == v || math.IsInf(inst.Net.Links[u][v], 1)
			if tb.CommFree(u, v) != wantFree {
				t.Errorf("CommFree(%d,%d) = %v", u, v, tb.CommFree(u, v))
			}
		}
	}
	for tk := 0; tk < inst.Graph.NumTasks(); tk++ {
		if tb.AvgExec[tk] != inst.AvgExecTime(tk) {
			t.Errorf("AvgExec[%d] = %v, want %v", tk, tb.AvgExec[tk], inst.AvgExecTime(tk))
		}
		for v := 0; v < nV; v++ {
			if tb.Exec[tk*nV+v] != inst.ExecTime(tk, v) {
				t.Errorf("Exec[%d,%d] = %v, want %v", tk, v, tb.Exec[tk*nV+v], inst.ExecTime(tk, v))
			}
		}
		for i, d := range inst.Graph.Succ[tk] {
			if tb.AvgCommSucc(tk, i) != inst.AvgCommTime(tk, d.To) {
				t.Errorf("AvgCommSucc(%d,%d) = %v, want %v", tk, i, tb.AvgCommSucc(tk, i), inst.AvgCommTime(tk, d.To))
			}
		}
		for i, d := range inst.Graph.Pred[tk] {
			if tb.AvgCommPred(tk, i) != inst.AvgCommTime(d.To, tk) {
				t.Errorf("AvgCommPred(%d,%d) = %v, want %v", tk, i, tb.AvgCommPred(tk, i), inst.AvgCommTime(d.To, tk))
			}
		}
	}
	order, err := inst.Graph.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Topo) != len(order) {
		t.Fatalf("Topo has %d tasks, want %d", len(tb.Topo), len(order))
	}
	for i := range order {
		if tb.Topo[i] != order[i] {
			t.Fatalf("Topo[%d] = %d, want %d", i, tb.Topo[i], order[i])
		}
	}
}

// TestTablesRebuildReusesStorage asserts the warm-rebuild contract
// behind the zero-allocation hot path: Build on a same-shape instance
// allocates nothing.
func TestTablesRebuildReusesStorage(t *testing.T) {
	inst := tablesTestInstance()
	var tb Tables
	tb.Build(inst)
	tb.EnsureAvgComm()
	inst.Graph.Tasks[0].Cost = 7 // mutate weights, keep the shape
	inst.Net.Speeds[1] = 0.75
	allocs := testing.AllocsPerRun(50, func() { tb.Build(inst); tb.EnsureAvgComm() })
	if allocs != 0 {
		t.Fatalf("warm Tables.Build allocated %v times, want 0", allocs)
	}
	if tb.AvgExec[0] != inst.AvgExecTime(0) {
		t.Fatalf("rebuild stale: AvgExec[0] = %v, want %v", tb.AvgExec[0], inst.AvgExecTime(0))
	}
	for i, d := range inst.Graph.Succ[0] {
		if tb.AvgCommSucc(0, i) != inst.AvgCommTime(0, d.To) {
			t.Fatalf("rebuild stale: AvgCommSucc(0,%d) = %v, want %v",
				i, tb.AvgCommSucc(0, i), inst.AvgCommTime(0, d.To))
		}
	}
}

// TestInstanceCopyFromMatchesClone checks the hot-loop copy against the
// allocating reference, including after structural edits, and that a
// warm copy of a same-shape instance allocates nothing.
func TestInstanceCopyFromMatchesClone(t *testing.T) {
	src := tablesTestInstance()
	dst := &Instance{}
	dst.CopyFrom(src)
	assertInstanceEqual(t, "fresh copy", dst, src)

	// Structural churn: remove an edge, add another, change weights, then
	// copy again into the same buffers.
	src.Graph.RemoveDep(0, 1)
	src.Graph.MustAddDep(1, 2, 9)
	src.Graph.Tasks[2].Cost = 11
	src.Net.SetLink(0, 1, 13)
	dst.CopyFrom(src)
	assertInstanceEqual(t, "after structural churn", dst, src)

	// Mutating the copy must not leak into the source (deep copy).
	dst.Graph.Tasks[0].Cost = 999
	dst.Net.Speeds[0] = 999
	dst.Graph.SetDepCost(1, 2, 999)
	if src.Graph.Tasks[0].Cost == 999 || src.Net.Speeds[0] == 999 {
		t.Fatal("CopyFrom aliased source storage")
	}
	if c, _ := src.Graph.DepCost(1, 2); c == 999 {
		t.Fatal("CopyFrom aliased adjacency storage")
	}

	dst.CopyFrom(src)
	allocs := testing.AllocsPerRun(50, func() { dst.CopyFrom(src) })
	if allocs != 0 {
		t.Fatalf("warm CopyFrom allocated %v times, want 0", allocs)
	}
}

func assertInstanceEqual(t *testing.T, label string, got, want *Instance) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: invalid copy: %v", label, err)
	}
	if got.Graph.NumTasks() != want.Graph.NumTasks() || got.Net.NumNodes() != want.Net.NumNodes() {
		t.Fatalf("%s: shape mismatch", label)
	}
	for i, task := range want.Graph.Tasks {
		if got.Graph.Tasks[i] != task {
			t.Fatalf("%s: task %d = %+v, want %+v", label, i, got.Graph.Tasks[i], task)
		}
	}
	for u := range want.Graph.Succ {
		if len(got.Graph.Succ[u]) != len(want.Graph.Succ[u]) {
			t.Fatalf("%s: Succ[%d] length mismatch", label, u)
		}
		for i, d := range want.Graph.Succ[u] {
			if got.Graph.Succ[u][i] != d {
				t.Fatalf("%s: Succ[%d][%d] mismatch", label, u, i)
			}
		}
	}
	for v, s := range want.Net.Speeds {
		if got.Net.Speeds[v] != s {
			t.Fatalf("%s: speed %d mismatch", label, v)
		}
		for u, w := range want.Net.Links[v] {
			if got.Net.Links[v][u] != w {
				t.Fatalf("%s: link (%d,%d) mismatch", label, v, u)
			}
		}
	}
}
