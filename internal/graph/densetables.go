package graph

import "math"

// DenseTables is the original node-squared Tables implementation, kept
// verbatim as the bit-identity reference for the edge-sparse Tables that
// replaced it. It stores the full |V|×|V| link-strength matrix and its
// inverse, so its memory is O(|V|²) — exactly the layout the scale tier
// cannot afford — but every derived quantity is computed with the same
// floating-point operations in the same order as Instance.AvgExecTime /
// Instance.AvgCommTime, which makes it the ground truth the sparse
// implementation is proven against (sparse_test.go drives both through
// Build, every incremental op, and the undo paths, comparing the whole
// accessor surface bit for bit).
//
// Production code uses Tables; DenseTables exists for tests and for the
// scale-tier benchmark gate, which schedules one instance through each
// and requires byte-identical schedules.
type DenseTables struct {
	NTasks, NNodes int

	Generation uint64

	// InvSpeed[v] is 1/s(v).
	InvSpeed []float64
	// LinkFlat is the dense row-major |V|×|V| link-strength matrix:
	// LinkFlat[u*NNodes+v] = s(u, v), +Inf on the diagonal.
	LinkFlat []float64
	// InvLink is the matching inverse matrix: 1/s(u, v), with 0 for the
	// diagonal and for infinitely strong links.
	InvLink []float64
	// AvgExec[t] equals Instance.AvgExecTime(t).
	AvgExec []float64
	// Exec is the dense row-major |T|×|V| execution-time matrix.
	Exec []float64
	// execPrefix mirrors Exec with left-to-right partial row sums.
	execPrefix []float64
	Topo       []int
	TopoErr    error

	avgComm      []float64
	succOff      []int
	predOff      []int
	avgCommBuilt bool
	src          *Instance

	topoPos []int

	indeg    []int
	frontier []int
}

// AvgCommSucc returns the average communication time of the i-th
// successor edge of task t.
func (tb *DenseTables) AvgCommSucc(t, i int) float64 {
	return tb.avgComm[tb.succOff[t]+i]
}

// AvgCommPred returns the average communication time of the i-th
// predecessor edge of task t.
func (tb *DenseTables) AvgCommPred(t, i int) float64 {
	return tb.avgComm[tb.predOff[t]+i]
}

// EnsureAvgComm fills the per-edge average-communication table for the
// instance of the last Build, at most once per Build.
func (tb *DenseTables) EnsureAvgComm() {
	if tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	nT := g.NumTasks()
	nD := g.NumDeps()
	tb.avgComm = growF64(tb.avgComm, 2*nD)
	tb.succOff = growInt(tb.succOff, nT+1)
	tb.predOff = growInt(tb.predOff, nT+1)
	off := 0
	for t := 0; t < nT; t++ {
		tb.succOff[t] = off
		for i, d := range g.Succ[t] {
			tb.avgComm[off+i] = tb.avgCommTimeFlat(d.Cost)
		}
		off += len(g.Succ[t])
	}
	tb.succOff[nT] = off
	for t := 0; t < nT; t++ {
		tb.predOff[t] = off
		for i, d := range g.Pred[t] {
			u := d.To
			tb.avgComm[off+i] = tb.avgComm[tb.succOff[u]+succIndex(g, u, t)]
		}
		off += len(g.Pred[t])
	}
	tb.predOff[nT] = off
	tb.avgCommBuilt = true
}

// Link returns the link strength s(u, v) from the flattened matrix.
func (tb *DenseTables) Link(u, v int) float64 { return tb.LinkFlat[u*tb.NNodes+v] }

// CommFree reports whether sending data from u to v costs nothing.
func (tb *DenseTables) CommFree(u, v int) bool { return tb.InvLink[u*tb.NNodes+v] == 0 }

// Build (re)computes every table for the instance, reusing the
// receiver's storage.
func (tb *DenseTables) Build(inst *Instance) {
	g, net := inst.Graph, inst.Net
	nT, nV := g.NumTasks(), net.NumNodes()
	tb.NTasks, tb.NNodes = nT, nV
	tb.Generation++

	tb.InvSpeed = growF64(tb.InvSpeed, nV)
	for v, s := range net.Speeds {
		tb.InvSpeed[v] = 1 / s
	}

	tb.LinkFlat = growF64(tb.LinkFlat, nV*nV)
	tb.InvLink = growF64(tb.InvLink, nV*nV)
	for u := 0; u < nV; u++ {
		row := net.Links[u]
		for v := 0; v < nV; v++ {
			w := row[v]
			tb.LinkFlat[u*nV+v] = w
			if u == v || math.IsInf(w, 1) {
				tb.InvLink[u*nV+v] = 0
			} else {
				tb.InvLink[u*nV+v] = 1 / w
			}
		}
	}

	tb.AvgExec = growF64(tb.AvgExec, nT)
	tb.Exec = growF64(tb.Exec, nT*nV)
	tb.execPrefix = growF64(tb.execPrefix, nT*nV)
	for t := 0; t < nT; t++ {
		cost := g.Tasks[t].Cost
		sum := 0.0
		for v := 0; v < nV; v++ {
			e := cost / net.Speeds[v]
			tb.Exec[t*nV+v] = e
			sum += e
			tb.execPrefix[t*nV+v] = sum
		}
		tb.AvgExec[t] = sum / float64(nV)
	}

	tb.avgCommBuilt = false
	tb.src = inst

	tb.buildTopo(g)
}

// UpdateNodeSpeed patches the tables after Net.Speeds[v] changed in
// place (see Tables.UpdateNodeSpeed for the prefix-resume argument).
func (tb *DenseTables) UpdateNodeSpeed(v int) {
	tb.Generation++
	g, net := tb.src.Graph, tb.src.Net
	nV := tb.NNodes
	tb.InvSpeed[v] = 1 / net.Speeds[v]
	for t := 0; t < tb.NTasks; t++ {
		row := t * nV
		sum := 0.0
		if v > 0 {
			sum = tb.execPrefix[row+v-1]
		}
		e := g.Tasks[t].Cost / net.Speeds[v]
		tb.Exec[row+v] = e
		sum += e
		tb.execPrefix[row+v] = sum
		for u := v + 1; u < nV; u++ {
			sum += tb.Exec[row+u]
			tb.execPrefix[row+u] = sum
		}
		tb.AvgExec[t] = sum / float64(nV)
	}
}

// UpdateLinkSpeed patches the tables after Net.SetLink(u, v, ·).
func (tb *DenseTables) UpdateLinkSpeed(u, v int) {
	tb.Generation++
	if u == v {
		return
	}
	net := tb.src.Net
	nV := tb.NNodes
	for _, e := range [2][2]int{{u, v}, {v, u}} {
		w := net.Links[e[0]][e[1]]
		tb.LinkFlat[e[0]*nV+e[1]] = w
		if math.IsInf(w, 1) {
			tb.InvLink[e[0]*nV+e[1]] = 0
		} else {
			tb.InvLink[e[0]*nV+e[1]] = 1 / w
		}
	}
	tb.avgCommBuilt = false
}

// UpdateTaskWeight patches the tables after Graph.Tasks[t].Cost changed.
func (tb *DenseTables) UpdateTaskWeight(t int) {
	tb.Generation++
	g, net := tb.src.Graph, tb.src.Net
	nV := tb.NNodes
	cost := g.Tasks[t].Cost
	sum := 0.0
	for v := 0; v < nV; v++ {
		e := cost / net.Speeds[v]
		tb.Exec[t*nV+v] = e
		sum += e
		tb.execPrefix[t*nV+v] = sum
	}
	tb.AvgExec[t] = sum / float64(nV)
}

// UpdateDepWeight patches the tables after Graph.SetDepCost(u, v, ·).
func (tb *DenseTables) UpdateDepWeight(u, v int) {
	tb.Generation++
	if !tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	cost, _ := g.DepCost(u, v)
	a := tb.avgCommTimeFlat(cost)
	tb.avgComm[tb.succOff[u]+succIndex(g, u, v)] = a
	tb.avgComm[tb.predOff[v]+predIndex(g, v, u)] = a
}

// AvgCommOf returns edge (u, v)'s entry of the per-edge average table
// and whether the table is currently built.
func (tb *DenseTables) AvgCommOf(u, v int) (float64, bool) {
	if !tb.avgCommBuilt {
		return 0, false
	}
	g := tb.src.Graph
	return tb.avgComm[tb.succOff[u]+succIndex(g, u, v)], true
}

// SetAvgComm writes a known average-communication value into both
// aligned entries of edge (u, v).
func (tb *DenseTables) SetAvgComm(u, v int, a float64) {
	tb.Generation++
	if !tb.avgCommBuilt {
		return
	}
	g := tb.src.Graph
	tb.avgComm[tb.succOff[u]+succIndex(g, u, v)] = a
	tb.avgComm[tb.predOff[v]+predIndex(g, v, u)] = a
}

// SnapshotAvgComm copies the built per-edge average table into dst.
func (tb *DenseTables) SnapshotAvgComm(dst []float64) ([]float64, bool) {
	if !tb.avgCommBuilt {
		return dst[:0], false
	}
	return append(dst[:0], tb.avgComm...), true
}

// RestoreAvgComm reinstates a SnapshotAvgComm snapshot.
func (tb *DenseTables) RestoreAvgComm(snap []float64) {
	tb.Generation++
	tb.avgComm = append(tb.avgComm[:0], snap...)
	tb.avgCommBuilt = true
}

// AddDep patches the tables after dependency (u, v) was added.
func (tb *DenseTables) AddDep(u, v int) {
	tb.Generation++
	tb.avgCommBuilt = false
	if tb.TopoErr == nil && tb.topoPos[u] < tb.topoPos[v] {
		return
	}
	tb.buildTopo(tb.src.Graph)
}

// RemoveDep patches the tables after dependency (u, v) was removed.
func (tb *DenseTables) RemoveDep(u, v int) {
	tb.Generation++
	tb.avgCommBuilt = false
	if tb.TopoErr != nil {
		tb.buildTopo(tb.src.Graph)
		return
	}
	g := tb.src.Graph
	ready := 0
	for _, d := range g.Pred[v] {
		if p := tb.topoPos[d.To] + 1; p > ready {
			ready = p
		}
	}
	for i := ready; i < tb.topoPos[v]; i++ {
		if v < tb.Topo[i] {
			tb.buildTopo(g)
			return
		}
	}
}

// avgCommTimeFlat is avgCommTime against the dense flattened tables —
// the canonical pair loop the sparse implementation must reproduce bit
// for bit.
func (tb *DenseTables) avgCommTimeFlat(cost float64) float64 {
	if cost == 0 {
		return 0
	}
	nV := tb.NNodes
	if nV < 2 {
		return 0
	}
	sum := 0.0
	count := 0
	for a := 0; a < nV; a++ {
		row := tb.LinkFlat[a*nV : a*nV+nV]
		inv := tb.InvLink[a*nV : a*nV+nV]
		for b := a + 1; b < nV; b++ {
			if inv[b] != 0 {
				sum += cost / row[b]
			}
			count++
		}
	}
	return sum / float64(count)
}

// buildTopo mirrors TaskGraph.TopoOrder with reused buffers.
func (tb *DenseTables) buildTopo(g *TaskGraph) {
	n := g.NumTasks()
	tb.Topo = growInt(tb.Topo, n)[:0]
	tb.indeg = growInt(tb.indeg, n)
	tb.frontier = tb.frontier[:0]
	tb.TopoErr = nil
	for t := 0; t < n; t++ {
		tb.indeg[t] = len(g.Pred[t])
		if tb.indeg[t] == 0 {
			tb.frontier = append(tb.frontier, t)
		}
	}
	for len(tb.frontier) > 0 {
		best := 0
		for i := 1; i < len(tb.frontier); i++ {
			if tb.frontier[i] < tb.frontier[best] {
				best = i
			}
		}
		t := tb.frontier[best]
		tb.frontier = append(tb.frontier[:best], tb.frontier[best+1:]...)
		tb.Topo = append(tb.Topo, t)
		for _, d := range g.Succ[t] {
			tb.indeg[d.To]--
			if tb.indeg[d.To] == 0 {
				tb.frontier = append(tb.frontier, d.To)
			}
		}
	}
	if len(tb.Topo) != n {
		tb.TopoErr = cycleError(len(tb.Topo), n)
		return
	}
	tb.topoPos = growInt(tb.topoPos, n)
	for i, t := range tb.Topo {
		tb.topoPos[t] = i
	}
}
