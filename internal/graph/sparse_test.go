package graph

import (
	"math"
	"testing"

	"saga/internal/rng"
)

// This file proves the edge-sparse Tables against DenseTables, the
// retained dense reference: Build, every incremental maintenance op,
// and the undo paths must agree bit for bit through the whole accessor
// surface, across randomized instances up to 1k tasks with link
// patterns from fully homogeneous to fully heterogeneous.

// sparseRandInstance builds a random DAG over a network whose link
// pattern is chosen by mode:
//
//	0 — homogeneous: every pair shares one strength (empty exception list)
//	1 — clustered: a handful of distinct strengths (small exception list)
//	2 — heterogeneous: every pair distinct (dense-in-CSR degenerate case)
//	3 — free: every pair +Inf (invDefault == 0 fast path)
//	4 — mixed: mostly +Inf with scattered finite links
func sparseRandInstance(r *rng.RNG, nT, nV, mode int) *Instance {
	g := NewTaskGraph()
	for t := 0; t < nT; t++ {
		g.AddTask("", 0.5+4*r.Float64())
	}
	for v := 1; v < nT; v++ {
		// Every task gets at least one predecessor so the DAG is connected,
		// plus a few extra forward edges.
		u := r.Intn(v)
		g.MustAddDep(u, v, r.Float64()*8)
		for k := 0; k < 2; k++ {
			if w := r.Intn(nT); w < v && !g.HasDep(w, v) {
				g.MustAddDep(w, v, r.Float64()*8)
			}
		}
	}
	net := NewNetwork(nV)
	for v := range net.Speeds {
		net.Speeds[v] = 0.5 + 2*r.Float64()
	}
	base := 0.3 + r.Float64()
	for u := 0; u < nV; u++ {
		for v := u + 1; v < nV; v++ {
			var w float64
			switch mode {
			case 0:
				w = base
			case 1:
				w = base * float64(1+r.Intn(3))
			case 2:
				w = 0.1 + r.Float64()
			case 3:
				w = math.Inf(1)
			default:
				w = math.Inf(1)
				if r.Intn(4) == 0 {
					w = 0.2 + r.Float64()
				}
			}
			net.SetLink(u, v, w)
		}
	}
	return NewInstance(g, net)
}

// assertSparseMatchesDense compares the sparse tables with the dense
// reference through every accessor, bit for bit.
func assertSparseMatchesDense(t *testing.T, sp *Tables, dn *DenseTables, g *TaskGraph) {
	t.Helper()
	if sp.NTasks != dn.NTasks || sp.NNodes != dn.NNodes {
		t.Fatalf("shape diverged: (%d,%d) vs (%d,%d)", sp.NTasks, sp.NNodes, dn.NTasks, dn.NNodes)
	}
	eq := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	eq("InvSpeed", sp.InvSpeed, dn.InvSpeed)
	eq("AvgExec", sp.AvgExec, dn.AvgExec)
	eq("Exec", sp.Exec, dn.Exec)
	eq("execPrefix", sp.execPrefix, dn.execPrefix)
	for u := 0; u < sp.NNodes; u++ {
		for v := 0; v < sp.NNodes; v++ {
			if sp.Link(u, v) != dn.Link(u, v) {
				t.Fatalf("Link(%d,%d): %v vs %v", u, v, sp.Link(u, v), dn.Link(u, v))
			}
			if sp.CommFree(u, v) != dn.CommFree(u, v) {
				t.Fatalf("CommFree(%d,%d): %v vs %v", u, v, sp.CommFree(u, v), dn.CommFree(u, v))
			}
		}
	}
	for i := range sp.Topo {
		if sp.Topo[i] != dn.Topo[i] {
			t.Fatalf("Topo[%d]: %d vs %d", i, sp.Topo[i], dn.Topo[i])
		}
	}
	if (sp.TopoErr == nil) != (dn.TopoErr == nil) {
		t.Fatalf("TopoErr: %v vs %v", sp.TopoErr, dn.TopoErr)
	}
	sp.EnsureAvgComm()
	dn.EnsureAvgComm()
	for u := 0; u < g.NumTasks(); u++ {
		for i := range g.Succ[u] {
			if sp.AvgCommSucc(u, i) != dn.AvgCommSucc(u, i) {
				t.Fatalf("AvgCommSucc(%d,%d): %v vs %v", u, i, sp.AvgCommSucc(u, i), dn.AvgCommSucc(u, i))
			}
		}
		for i := range g.Pred[u] {
			if sp.AvgCommPred(u, i) != dn.AvgCommPred(u, i) {
				t.Fatalf("AvgCommPred(%d,%d): %v vs %v", u, i, sp.AvgCommPred(u, i), dn.AvgCommPred(u, i))
			}
		}
	}
}

// TestSparseTablesBuildMatchesDense checks Build alone across sizes and
// link patterns.
func TestSparseTablesBuildMatchesDense(t *testing.T) {
	r := rng.New(0x5babb1e)
	for _, nT := range []int{2, 17, 128, 1000} {
		for _, nV := range []int{2, 5, 23, 48} {
			for mode := 0; mode < 5; mode++ {
				inst := sparseRandInstance(r.Split(), nT, nV, mode)
				var sp Tables
				var dn DenseTables
				sp.Build(inst)
				dn.Build(inst)
				assertSparseMatchesDense(t, &sp, &dn, inst.Graph)
			}
		}
	}
}

// TestSparseTablesNoSquareStorage pins the memory bound: for a
// homogeneous 48-node network the exception list must be empty, and for
// the clustered pattern it must stay well under the |V|² pair count.
func TestSparseTablesNoSquareStorage(t *testing.T) {
	r := rng.New(0x10ca1)
	inst := sparseRandInstance(r.Split(), 64, 48, 0)
	var tb Tables
	tb.Build(inst)
	if n := tb.LinkExceptions(); n != 0 {
		t.Fatalf("homogeneous network stored %d link exceptions, want 0", n)
	}
	if got, cap := tb.MemoryBytes(), 48*48*8; got >= cap+64*48*2*8 {
		t.Fatalf("MemoryBytes %d suspiciously large for 64 tasks x 48 nodes", got)
	}
}

// TestSparseTablesIncrementalMatchesDense is the randomized property
// suite: both implementations track the same instance through long
// random sequences of every incremental op — including the O(1) undo
// paths (AvgCommOf/SetAvgComm, SnapshotAvgComm/RestoreAvgComm) and
// full perturb-then-revert cycles — and must agree bit for bit at
// every checkpoint.
func TestSparseTablesIncrementalMatchesDense(t *testing.T) {
	r := rng.New(0xfeedface)
	sizes := []struct{ nT, nV, ops int }{
		{6, 3, 400},
		{40, 8, 400},
		{200, 16, 200},
		{1000, 32, 60},
	}
	for _, sz := range sizes {
		for mode := 0; mode < 5; mode++ {
			rr := r.Split()
			inst := sparseRandInstance(rr, sz.nT, sz.nV, mode)
			g, net := inst.Graph, inst.Net
			var sp Tables
			var dn DenseTables
			sp.Build(inst)
			dn.Build(inst)
			var spSnap, dnSnap []float64
			for i := 0; i < sz.ops; i++ {
				switch op := rr.Intn(8); op {
				case 0: // node speed
					v := rr.Intn(sz.nV)
					old := net.Speeds[v]
					net.Speeds[v] = 0.5 + 2*rr.Float64()
					sp.UpdateNodeSpeed(v)
					dn.UpdateNodeSpeed(v)
					if rr.Intn(2) == 0 { // revert
						net.Speeds[v] = old
						sp.UpdateNodeSpeed(v)
						dn.UpdateNodeSpeed(v)
					}
				case 1: // link speed, snapshot/restore undo half the time
					u, v := rr.Intn(sz.nV), rr.Intn(sz.nV)
					old := net.Links[u][v]
					undo := rr.Intn(2) == 0
					var spOK, dnOK bool
					if undo {
						spSnap, spOK = sp.SnapshotAvgComm(spSnap)
						dnSnap, dnOK = dn.SnapshotAvgComm(dnSnap)
						if spOK != dnOK {
							t.Fatalf("snapshot availability diverged: %v vs %v", spOK, dnOK)
						}
					}
					w := 0.1 + rr.Float64()
					if rr.Intn(5) == 0 {
						w = math.Inf(1)
					}
					net.SetLink(u, v, w)
					sp.UpdateLinkSpeed(u, v)
					dn.UpdateLinkSpeed(u, v)
					if undo {
						net.SetLink(u, v, old)
						sp.UpdateLinkSpeed(u, v)
						dn.UpdateLinkSpeed(u, v)
						if spOK {
							sp.RestoreAvgComm(spSnap)
							dn.RestoreAvgComm(dnSnap)
						}
					}
				case 2: // task weight
					tk := rr.Intn(sz.nT)
					g.Tasks[tk].Cost = 0.5 + 4*rr.Float64()
					sp.UpdateTaskWeight(tk)
					dn.UpdateTaskWeight(tk)
				case 3: // dep weight, O(1) undo half the time
					if g.NumDeps() == 0 {
						continue
					}
					u, v := g.DepAt(rr.Intn(g.NumDeps()))
					spOld, spOK := sp.AvgCommOf(u, v)
					dnOld, dnOK := dn.AvgCommOf(u, v)
					if spOK != dnOK || (spOK && spOld != dnOld) {
						t.Fatalf("AvgCommOf(%d,%d) diverged: (%v,%v) vs (%v,%v)", u, v, spOld, spOK, dnOld, dnOK)
					}
					old, _ := g.DepCost(u, v)
					g.SetDepCost(u, v, rr.Float64()*8)
					sp.UpdateDepWeight(u, v)
					dn.UpdateDepWeight(u, v)
					if spOK && rr.Intn(2) == 0 {
						g.SetDepCost(u, v, old)
						sp.SetAvgComm(u, v, spOld)
						dn.SetAvgComm(u, v, dnOld)
					}
				case 4: // add dep (forward edge keeps it acyclic)
					u, v := rr.Intn(sz.nT), rr.Intn(sz.nT)
					if u >= v || g.HasDep(u, v) {
						continue
					}
					g.AddDepUnchecked(u, v, rr.Float64()*8)
					sp.AddDep(u, v)
					dn.AddDep(u, v)
				case 5: // remove a random dep
					if g.NumDeps() < 2 {
						continue
					}
					u, v := g.DepAt(rr.Intn(g.NumDeps()))
					g.RemoveDep(u, v)
					sp.RemoveDep(u, v)
					dn.RemoveDep(u, v)
				case 6: // force the lazy fill so patched-while-built paths run
					sp.EnsureAvgComm()
					dn.EnsureAvgComm()
				case 7: // full rebuild mid-sequence
					sp.Build(inst)
					dn.Build(inst)
				}
				if sp.Generation != dn.Generation {
					t.Fatalf("Generation diverged after op %d: %d vs %d", i, sp.Generation, dn.Generation)
				}
				if i%20 == 19 {
					assertSparseMatchesDense(t, &sp, &dn, g)
				}
			}
			assertSparseMatchesDense(t, &sp, &dn, g)
		}
	}
}

// TestTablesChain10000 is the deep-graph regression: a 10k-task
// dependency chain must build, topo-sort, and maintain incrementally
// without recursion-depth trouble (all graph traversals are iterative),
// and the sparse tables must still match the dense reference at that
// depth.
func TestTablesChain10000(t *testing.T) {
	const n = 10000
	g := NewTaskGraph()
	for i := 0; i < n; i++ {
		g.AddTask("", 1+float64(i%7))
	}
	for i := 1; i < n; i++ {
		g.MustAddDep(i-1, i, float64(i%13))
	}
	net := NewNetwork(4)
	for v := range net.Speeds {
		net.Speeds[v] = 1 + 0.5*float64(v)
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			net.SetLink(u, v, 2.0)
		}
	}
	inst := NewInstance(g, net)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.Depth(); d != n {
		t.Fatalf("Depth = %d, want %d", d, n)
	}
	if !g.Reaches(0, n-1) {
		t.Fatal("Reaches(0, n-1) = false on a chain")
	}
	var sp Tables
	var dn DenseTables
	sp.Build(inst)
	dn.Build(inst)
	if sp.TopoErr != nil {
		t.Fatal(sp.TopoErr)
	}
	for i, tk := range sp.Topo {
		if tk != i {
			t.Fatalf("Topo[%d] = %d on a chain", i, tk)
		}
	}
	// A mid-chain removal and re-add exercises the incremental topo
	// repair at depth.
	mid := n / 2
	g.RemoveDep(mid-1, mid)
	sp.RemoveDep(mid-1, mid)
	dn.RemoveDep(mid-1, mid)
	g.AddDepUnchecked(mid-1, mid, 3)
	sp.AddDep(mid-1, mid)
	dn.AddDep(mid-1, mid)
	assertSparseMatchesDense(t, &sp, &dn, g)
}
