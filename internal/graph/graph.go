// Package graph defines the task-graph and network model from Section II
// of the PISA paper.
//
// A problem instance is a pair (N, G): G = (T, D) is a directed acyclic
// task graph whose tasks carry compute costs c(t) and whose dependencies
// carry data sizes c(t, t'); N = (V, E) is a complete undirected network
// whose nodes carry compute speeds s(v) and whose edges carry
// communication strengths s(v, v'). Under the related-machines model the
// execution time of t on v is c(t)/s(v) and the communication time of a
// dependency (t, t') sent from v to v' is c(t, t')/s(v, v').
package graph

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for floating-point schedule comparisons
// throughout the repository.
const Eps = 1e-9

// ApproxLE reports whether a <= b within Eps.
func ApproxLE(a, b float64) bool { return a <= b+Eps }

// ApproxEq reports whether a == b within Eps.
func ApproxEq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Task is a single task: a name (for rendering and serialization) and a
// compute cost c(t) > 0.
type Task struct {
	Name string
	Cost float64
}

// Dep is a weighted dependency endpoint. In TaskGraph.Succ[u], To is the
// dependent task; in TaskGraph.Pred[v], To is the prerequisite task. Cost
// is the data size c(t, t').
type Dep struct {
	To   int
	Cost float64
}

// TaskGraph is a weighted DAG of tasks. Tasks are addressed by dense
// integer index into Tasks; adjacency is kept in both directions.
type TaskGraph struct {
	Tasks []Task
	Succ  [][]Dep
	Pred  [][]Dep
}

// NewTaskGraph returns an empty task graph.
func NewTaskGraph() *TaskGraph {
	return &TaskGraph{}
}

// AddTask appends a task and returns its index.
func (g *TaskGraph) AddTask(name string, cost float64) int {
	g.Tasks = append(g.Tasks, Task{Name: name, Cost: cost})
	g.Succ = append(g.Succ, nil)
	g.Pred = append(g.Pred, nil)
	return len(g.Tasks) - 1
}

// NumTasks returns |T|.
func (g *TaskGraph) NumTasks() int { return len(g.Tasks) }

// NumDeps returns |D|.
func (g *TaskGraph) NumDeps() int {
	n := 0
	for _, s := range g.Succ {
		n += len(s)
	}
	return n
}

// HasDep reports whether the dependency (u, v) exists.
func (g *TaskGraph) HasDep(u, v int) bool {
	for _, d := range g.Succ[u] {
		if d.To == v {
			return true
		}
	}
	return false
}

// DepCost returns the data size of dependency (u, v) and whether it
// exists.
func (g *TaskGraph) DepCost(u, v int) (float64, bool) {
	for _, d := range g.Succ[u] {
		if d.To == v {
			return d.Cost, true
		}
	}
	return 0, false
}

// AddDep inserts the dependency (u, v) with the given data size. It
// rejects self-loops, duplicate edges, out-of-range indices, and edges
// that would create a cycle.
func (g *TaskGraph) AddDep(u, v int, cost float64) error {
	if u < 0 || u >= len(g.Tasks) || v < 0 || v >= len(g.Tasks) {
		return fmt.Errorf("graph: dependency (%d, %d) out of range", u, v)
	}
	if u == v {
		return fmt.Errorf("graph: self-dependency on task %d", u)
	}
	if g.HasDep(u, v) {
		return fmt.Errorf("graph: duplicate dependency (%d, %d)", u, v)
	}
	if g.Reaches(v, u) {
		return fmt.Errorf("graph: dependency (%d, %d) would create a cycle", u, v)
	}
	g.Succ[u] = append(g.Succ[u], Dep{To: v, Cost: cost})
	g.Pred[v] = append(g.Pred[v], Dep{To: u, Cost: cost})
	return nil
}

// MustAddDep is AddDep that panics on error; intended for generators and
// tests building known-good structures.
func (g *TaskGraph) MustAddDep(u, v int, cost float64) {
	if err := g.AddDep(u, v, cost); err != nil {
		panic(err)
	}
}

// RemoveDep deletes the dependency (u, v). It reports whether the edge
// existed.
func (g *TaskGraph) RemoveDep(u, v int) bool {
	found := false
	for i, d := range g.Succ[u] {
		if d.To == v {
			g.Succ[u] = append(g.Succ[u][:i], g.Succ[u][i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for i, d := range g.Pred[v] {
		if d.To == u {
			g.Pred[v] = append(g.Pred[v][:i], g.Pred[v][i+1:]...)
			break
		}
	}
	return true
}

// SetDepCost updates the data size of dependency (u, v). It reports
// whether the edge existed.
func (g *TaskGraph) SetDepCost(u, v int, cost float64) bool {
	found := false
	for i, d := range g.Succ[u] {
		if d.To == v {
			g.Succ[u][i].Cost = cost
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for i, d := range g.Pred[v] {
		if d.To == u {
			g.Pred[v][i].Cost = cost
			break
		}
	}
	return true
}

// AddDepUnchecked appends dependency (u, v) without AddDep's validity
// checks. The caller must guarantee the edge is in range, new, not a
// self-loop, and acyclic — the PISA hot loop performs those checks
// itself with reusable buffers (ReachScratch) before calling. The edge
// lands at the tail of both adjacency lists, so a following
// RemoveDep(u, v) undoes the call byte-identically.
func (g *TaskGraph) AddDepUnchecked(u, v int, cost float64) {
	g.Succ[u] = append(g.Succ[u], Dep{To: v, Cost: cost})
	g.Pred[v] = append(g.Pred[v], Dep{To: u, Cost: cost})
}

// TakeDep removes dependency (u, v) like RemoveDep but also returns its
// cost and its positions in the two adjacency lists so RestoreDep can
// reinsert it exactly where it was. Adjacency order is part of an
// instance's identity — it determines Deps/DepAt indexing, the
// serialization byte stream, and the annealer's RNG-driven edge picks —
// so an undo must restore position, not merely membership.
func (g *TaskGraph) TakeDep(u, v int) (cost float64, si, pi int, ok bool) {
	si = -1
	for i, d := range g.Succ[u] {
		if d.To == v {
			si, cost = i, d.Cost
			break
		}
	}
	if si < 0 {
		return 0, 0, 0, false
	}
	pi = -1
	for i, d := range g.Pred[v] {
		if d.To == u {
			pi = i
			break
		}
	}
	if pi < 0 {
		return 0, 0, 0, false
	}
	g.Succ[u] = append(g.Succ[u][:si], g.Succ[u][si+1:]...)
	g.Pred[v] = append(g.Pred[v][:pi], g.Pred[v][pi+1:]...)
	return cost, si, pi, true
}

// RestoreDep reinserts dependency (u, v) at the adjacency positions a
// TakeDep returned, undoing the removal byte-identically. Called
// immediately after the matching TakeDep, the slices still hold the
// capacity the removal freed, so the insertion does not allocate.
func (g *TaskGraph) RestoreDep(u, v int, cost float64, si, pi int) {
	g.Succ[u] = insertDep(g.Succ[u], si, Dep{To: v, Cost: cost})
	g.Pred[v] = insertDep(g.Pred[v], pi, Dep{To: u, Cost: cost})
}

func insertDep(s []Dep, i int, d Dep) []Dep {
	s = append(s, Dep{})
	copy(s[i+1:], s[i:])
	s[i] = d
	return s
}

// DepAt returns the k-th dependency in successor-list order — the same
// indexing as Deps()[k] — without allocating. It panics if k is out of
// range.
func (g *TaskGraph) DepAt(k int) (u, v int) {
	for t, succ := range g.Succ {
		if k < len(succ) {
			return t, succ[k].To
		}
		k -= len(succ)
	}
	panic("graph: dependency index out of range")
}

// Deps returns every dependency as a (from, to) pair in successor-list
// order. The slice is freshly allocated.
func (g *TaskGraph) Deps() [][2]int {
	out := make([][2]int, 0, g.NumDeps())
	for u, succ := range g.Succ {
		for _, d := range succ {
			out = append(out, [2]int{u, d.To})
		}
	}
	return out
}

// Reaches reports whether there is a directed path from u to v (including
// u == v).
func (g *TaskGraph) Reaches(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(g.Tasks))
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.Succ[x] {
			if d.To == v {
				return true
			}
			if !seen[d.To] {
				seen[d.To] = true
				stack = append(stack, d.To)
			}
		}
	}
	return false
}

// ReachScratch is the allocation-free counterpart of Reaches: the
// visited set and DFS stack are reused across calls. A scratch is not
// safe for concurrent use; the PISA hot loop keeps one per worker
// (inside scheduler.Scratch's extension state).
type ReachScratch struct {
	seen  []bool
	stack []int
}

// Reaches reports whether there is a directed path from u to v in g
// (including u == v). It visits the same nodes in the same order as
// TaskGraph.Reaches, only with reused buffers.
func (rs *ReachScratch) Reaches(g *TaskGraph, u, v int) bool {
	if u == v {
		return true
	}
	n := len(g.Tasks)
	if cap(rs.seen) < n {
		rs.seen = make([]bool, n)
	}
	rs.seen = rs.seen[:n]
	for i := range rs.seen {
		rs.seen[i] = false
	}
	rs.stack = append(rs.stack[:0], u)
	rs.seen[u] = true
	for len(rs.stack) > 0 {
		x := rs.stack[len(rs.stack)-1]
		rs.stack = rs.stack[:len(rs.stack)-1]
		for _, d := range g.Succ[x] {
			if d.To == v {
				return true
			}
			if !rs.seen[d.To] {
				rs.seen[d.To] = true
				rs.stack = append(rs.stack, d.To)
			}
		}
	}
	return false
}

// Sources returns the tasks with no prerequisites.
func (g *TaskGraph) Sources() []int {
	var out []int
	for t := range g.Tasks {
		if len(g.Pred[t]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Sinks returns the tasks with no dependents.
func (g *TaskGraph) Sinks() []int {
	var out []int
	for t := range g.Tasks {
		if len(g.Succ[t]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// TopoOrder returns a deterministic topological order (Kahn's algorithm,
// lowest index first). It returns an error if the graph contains a cycle.
func (g *TaskGraph) TopoOrder() ([]int, error) {
	n := len(g.Tasks)
	indeg := make([]int, n)
	for t := 0; t < n; t++ {
		indeg[t] = len(g.Pred[t])
	}
	// A simple ordered frontier keeps the result deterministic.
	var frontier []int
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			frontier = append(frontier, t)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		// Pop the smallest index.
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i] < frontier[best] {
				best = i
			}
		}
		t := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		order = append(order, t)
		for _, d := range g.Succ[t] {
			indeg[d.To]--
			if indeg[d.To] == 0 {
				frontier = append(frontier, d.To)
			}
		}
	}
	if len(order) != n {
		return nil, cycleError(len(order), n)
	}
	return order, nil
}

// cycleError is the shared cycle diagnostic of TopoOrder and
// Tables.Build.
func cycleError(ordered, n int) error {
	return fmt.Errorf("graph: cycle detected (%d of %d tasks ordered)", ordered, n)
}

// Validate checks structural invariants: positive costs, mirrored
// adjacency, no self-loops, acyclicity.
func (g *TaskGraph) Validate() error {
	for t, task := range g.Tasks {
		if task.Cost < 0 || math.IsNaN(task.Cost) || math.IsInf(task.Cost, 0) {
			return fmt.Errorf("graph: task %d has invalid cost %v", t, task.Cost)
		}
	}
	for u, succ := range g.Succ {
		seen := map[int]bool{}
		for _, d := range succ {
			if d.To == u {
				return fmt.Errorf("graph: self-dependency on task %d", u)
			}
			if seen[d.To] {
				return fmt.Errorf("graph: duplicate dependency (%d, %d)", u, d.To)
			}
			seen[d.To] = true
			if d.Cost < 0 || math.IsNaN(d.Cost) {
				return fmt.Errorf("graph: dependency (%d, %d) has invalid cost %v", u, d.To, d.Cost)
			}
			c, ok := findDep(g.Pred[d.To], u)
			if !ok || c != d.Cost {
				return fmt.Errorf("graph: adjacency mismatch for dependency (%d, %d)", u, d.To)
			}
		}
	}
	for v, pred := range g.Pred {
		for _, d := range pred {
			if _, ok := g.DepCost(d.To, v); !ok {
				return fmt.Errorf("graph: predecessor list of %d references missing edge (%d, %d)", v, d.To, v)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func findDep(deps []Dep, to int) (float64, bool) {
	for _, d := range deps {
		if d.To == to {
			return d.Cost, true
		}
	}
	return 0, false
}

// CopyFrom makes g a deep copy of src, reusing g's existing slice
// storage where capacity allows. It is the allocation-free counterpart
// of Clone for hot loops (PISA reuses one candidate instance per
// annealing chain instead of cloning every iteration).
func (g *TaskGraph) CopyFrom(src *TaskGraph) {
	g.Tasks = append(g.Tasks[:0], src.Tasks...)
	g.Succ = copyAdjacency(g.Succ, src.Succ)
	g.Pred = copyAdjacency(g.Pred, src.Pred)
}

// copyAdjacency deep-copies src into dst reusing row capacity.
func copyAdjacency(dst, src [][]Dep) [][]Dep {
	if cap(dst) < len(src) {
		grown := make([][]Dep, len(src))
		copy(grown, dst[:cap(dst)])
		dst = grown
	} else {
		dst = dst[:len(src)]
	}
	for i, row := range src {
		dst[i] = append(dst[i][:0], row...)
	}
	return dst
}

// Clone returns a deep copy.
func (g *TaskGraph) Clone() *TaskGraph {
	c := &TaskGraph{
		Tasks: append([]Task(nil), g.Tasks...),
		Succ:  make([][]Dep, len(g.Succ)),
		Pred:  make([][]Dep, len(g.Pred)),
	}
	for i, s := range g.Succ {
		c.Succ[i] = append([]Dep(nil), s...)
	}
	for i, p := range g.Pred {
		c.Pred[i] = append([]Dep(nil), p...)
	}
	return c
}

// MeanTaskCost returns the average task compute cost, or 0 for an empty
// graph.
func (g *TaskGraph) MeanTaskCost() float64 {
	if len(g.Tasks) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range g.Tasks {
		sum += t.Cost
	}
	return sum / float64(len(g.Tasks))
}

// MeanDepCost returns the average dependency data size, or 0 if there are
// no dependencies.
func (g *TaskGraph) MeanDepCost() float64 {
	n, sum := 0, 0.0
	for _, succ := range g.Succ {
		for _, d := range succ {
			sum += d.Cost
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
