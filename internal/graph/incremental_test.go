package graph

import (
	"testing"

	"saga/internal/rng"
)

// incInstance builds a small heterogeneous instance exercising every
// table: 5 tasks in a diamond-plus-tail DAG over 4 nodes.
func incInstance() *Instance {
	g := NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 3)
	c := g.AddTask("c", 5)
	d := g.AddTask("d", 7)
	e := g.AddTask("e", 11)
	g.MustAddDep(a, b, 1.5)
	g.MustAddDep(a, c, 2.5)
	g.MustAddDep(b, d, 3.5)
	g.MustAddDep(c, d, 4.5)
	g.MustAddDep(d, e, 5.5)
	net := NewNetwork(4)
	for v := range net.Speeds {
		net.Speeds[v] = 0.5 + 0.3*float64(v)
		for u := v + 1; u < net.NumNodes(); u++ {
			net.SetLink(v, u, 0.4+0.2*float64(u+v))
		}
	}
	return NewInstance(g, net)
}

// assertTablesEqual compares every field of two built tables bit for
// bit, including the lazily built per-edge averages.
func assertTablesEqual(t *testing.T, got, want *Tables, g *TaskGraph) {
	t.Helper()
	got.EnsureAvgComm()
	want.EnsureAvgComm()
	if got.NTasks != want.NTasks || got.NNodes != want.NNodes {
		t.Fatalf("shape diverged: (%d,%d) vs (%d,%d)", got.NTasks, got.NNodes, want.NTasks, want.NNodes)
	}
	eq := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	eq("InvSpeed", got.InvSpeed, want.InvSpeed)
	for u := 0; u < got.NNodes; u++ {
		for v := 0; v < got.NNodes; v++ {
			if got.Link(u, v) != want.Link(u, v) {
				t.Fatalf("Link(%d,%d): %v vs %v", u, v, got.Link(u, v), want.Link(u, v))
			}
			if got.CommFree(u, v) != want.CommFree(u, v) {
				t.Fatalf("CommFree(%d,%d): %v vs %v", u, v, got.CommFree(u, v), want.CommFree(u, v))
			}
		}
	}
	eq("AvgExec", got.AvgExec, want.AvgExec)
	eq("Exec", got.Exec, want.Exec)
	eq("execPrefix", got.execPrefix, want.execPrefix)
	eq("avgComm", got.avgComm, want.avgComm)
	if len(got.Topo) != len(want.Topo) {
		t.Fatalf("Topo length %d vs %d", len(got.Topo), len(want.Topo))
	}
	for i := range got.Topo {
		if got.Topo[i] != want.Topo[i] {
			t.Fatalf("Topo[%d]: %d vs %d", i, got.Topo[i], want.Topo[i])
		}
	}
	if (got.TopoErr == nil) != (want.TopoErr == nil) {
		t.Fatalf("TopoErr: %v vs %v", got.TopoErr, want.TopoErr)
	}
}

// TestTablesIncrementalUpdates drives each Update* method through a
// mutation and checks the patched tables against a fresh Build, bit
// for bit — the delta updates' core guarantee.
func TestTablesIncrementalUpdates(t *testing.T) {
	steps := []struct {
		name   string
		mutate func(inst *Instance, tb *Tables)
	}{
		{"NodeSpeed", func(inst *Instance, tb *Tables) {
			inst.Net.Speeds[2] = 1.9
			tb.UpdateNodeSpeed(2)
		}},
		{"LinkSpeed", func(inst *Instance, tb *Tables) {
			inst.Net.SetLink(1, 3, 0.05)
			tb.UpdateLinkSpeed(1, 3)
		}},
		{"TaskWeight", func(inst *Instance, tb *Tables) {
			inst.Graph.Tasks[3].Cost = 0.125
			tb.UpdateTaskWeight(3)
		}},
		{"DepWeight", func(inst *Instance, tb *Tables) {
			inst.Graph.SetDepCost(2, 3, 9.5)
			tb.UpdateDepWeight(2, 3)
		}},
		{"AddDep", func(inst *Instance, tb *Tables) {
			inst.Graph.AddDepUnchecked(1, 4, 0.75)
			tb.AddDep(1, 4)
		}},
		{"RemoveDep", func(inst *Instance, tb *Tables) {
			inst.Graph.RemoveDep(0, 2)
			tb.RemoveDep(0, 2)
		}},
	}
	// Cumulative: each step mutates the same instance, so later patches
	// must hold on states earlier patches produced. Run once with the
	// avgComm table pre-built (patch path) and once without (lazy path).
	for _, prebuild := range []bool{true, false} {
		inst := incInstance()
		var tb Tables
		tb.Build(inst)
		if prebuild {
			tb.EnsureAvgComm()
		}
		for _, s := range steps {
			s.mutate(inst, &tb)
			var fresh Tables
			fresh.Build(inst)
			assertTablesEqual(t, &tb, &fresh, inst.Graph)
		}
	}
}

// TestUpdateNodeSpeedPrefixResume hammers the prefix-sum resume path of
// UpdateNodeSpeed: a long random walk of speed changes hitting every
// column (first, middle, last), each patch compared bit for bit against
// a from-scratch Build. The patch re-accumulates the row only from the
// changed column, so any divergence between the stored prefix and a
// full left-to-right pass would surface here.
func TestUpdateNodeSpeedPrefixResume(t *testing.T) {
	r := rng.New(0x5eed)
	inst := incInstance()
	var tb Tables
	tb.Build(inst)
	nV := inst.Net.NumNodes()
	for step := 0; step < 200; step++ {
		v := step % nV // cycle deterministically so edges columns 0 and nV-1 recur
		inst.Net.Speeds[v] = 0.2 + r.Float64()
		tb.UpdateNodeSpeed(v)
		var fresh Tables
		fresh.Build(inst)
		assertTablesEqual(t, &tb, &fresh, inst.Graph)
	}
}

// TestTablesUpdateDiagonalLinkIgnored mirrors Network.SetLink's
// self-link semantics.
func TestTablesUpdateDiagonalLinkIgnored(t *testing.T) {
	inst := incInstance()
	var tb Tables
	tb.Build(inst)
	tb.UpdateLinkSpeed(2, 2) // must be a no-op, not a corruption
	var fresh Tables
	fresh.Build(inst)
	assertTablesEqual(t, &tb, &fresh, inst.Graph)
}

func TestTakeRestoreDepPreservesOrder(t *testing.T) {
	inst := incInstance()
	g := inst.Graph
	wantDeps := g.Deps()
	cost, si, pi, ok := g.TakeDep(0, 2) // middle of a's successor list
	if !ok || cost != 2.5 {
		t.Fatalf("TakeDep = (%v, ok=%v), want (2.5, true)", cost, ok)
	}
	if g.HasDep(0, 2) {
		t.Fatal("edge still present after TakeDep")
	}
	g.RestoreDep(0, 2, cost, si, pi)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	gotDeps := g.Deps()
	if len(gotDeps) != len(wantDeps) {
		t.Fatalf("dep count %d, want %d", len(gotDeps), len(wantDeps))
	}
	for i := range wantDeps {
		if gotDeps[i] != wantDeps[i] {
			t.Fatalf("Deps()[%d] = %v, want %v (order not restored)", i, gotDeps[i], wantDeps[i])
		}
	}
	if _, _, _, ok := g.TakeDep(4, 0); ok {
		t.Fatal("TakeDep invented a missing edge")
	}
}

func TestDepAtMatchesDeps(t *testing.T) {
	g := incInstance().Graph
	deps := g.Deps()
	for k, d := range deps {
		u, v := g.DepAt(k)
		if u != d[0] || v != d[1] {
			t.Fatalf("DepAt(%d) = (%d,%d), want %v", k, u, v, d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DepAt out of range did not panic")
		}
	}()
	g.DepAt(len(deps))
}

func TestReachScratchMatchesReaches(t *testing.T) {
	g := incInstance().Graph
	var rs ReachScratch
	for u := 0; u < g.NumTasks(); u++ {
		for v := 0; v < g.NumTasks(); v++ {
			if got, want := rs.Reaches(g, u, v), g.Reaches(u, v); got != want {
				t.Fatalf("ReachScratch.Reaches(%d,%d) = %v, Reaches = %v", u, v, got, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		rs.Reaches(g, 0, 4)
	})
	if allocs != 0 {
		t.Fatalf("warm ReachScratch.Reaches allocates %.1f/op", allocs)
	}
}

// TestTablesGenerationBumps pins the cache-invalidation contract behind
// scheduler.EvalCache: Build and every mutating maintenance method must
// strictly increase Generation, so anything memoized against an older
// stamp can never be served for newer table state. Lazy materialization
// (EnsureAvgComm) and read-only accessors must leave it alone.
func TestTablesGenerationBumps(t *testing.T) {
	inst := incInstance()
	var tb Tables
	last := tb.Generation
	expectBump := func(name string, mutate func()) {
		t.Helper()
		mutate()
		if tb.Generation <= last {
			t.Fatalf("%s did not bump Generation (%d -> %d)", name, last, tb.Generation)
		}
		last = tb.Generation
	}
	expectNoBump := func(name string, op func()) {
		t.Helper()
		op()
		if tb.Generation != last {
			t.Fatalf("%s changed Generation (%d -> %d); it mutates no logical state", name, last, tb.Generation)
		}
	}

	expectBump("Build", func() { tb.Build(inst) })
	expectNoBump("EnsureAvgComm", tb.EnsureAvgComm)
	expectNoBump("AvgCommSucc", func() { tb.AvgCommSucc(0, 0) })
	expectBump("UpdateNodeSpeed", func() {
		inst.Net.Speeds[1] = 2.25
		tb.UpdateNodeSpeed(1)
	})
	expectBump("UpdateLinkSpeed", func() {
		inst.Net.SetLink(0, 3, 0.75)
		tb.UpdateLinkSpeed(0, 3)
	})
	expectBump("UpdateLinkSpeed(diagonal)", func() { tb.UpdateLinkSpeed(2, 2) })
	expectBump("UpdateTaskWeight", func() {
		inst.Graph.Tasks[2].Cost = 4.5
		tb.UpdateTaskWeight(2)
	})
	expectBump("UpdateDepWeight(unbuilt avgComm)", func() {
		// The link update above invalidated the average table, so this
		// exercises the early-return path — the instance still changed.
		inst.Graph.SetDepCost(0, 1, 1.75)
		tb.UpdateDepWeight(0, 1)
	})
	tb.EnsureAvgComm()
	last = tb.Generation
	expectBump("UpdateDepWeight(built avgComm)", func() {
		inst.Graph.SetDepCost(0, 1, 1.25)
		tb.UpdateDepWeight(0, 1)
	})
	a, ok := tb.AvgCommOf(0, 1)
	if !ok {
		t.Fatal("AvgCommOf on a built table reported unbuilt")
	}
	expectBump("SetAvgComm", func() { tb.SetAvgComm(0, 1, a) })
	snap, ok := tb.SnapshotAvgComm(nil)
	if !ok {
		t.Fatal("SnapshotAvgComm on a built table reported unbuilt")
	}
	expectNoBump("SnapshotAvgComm", func() { tb.SnapshotAvgComm(snap) })
	expectBump("RestoreAvgComm", func() { tb.RestoreAvgComm(snap) })
	expectBump("AddDep", func() {
		inst.Graph.AddDepUnchecked(1, 4, 0.5)
		tb.AddDep(1, 4)
	})
	expectBump("RemoveDep", func() {
		inst.Graph.RemoveDep(1, 4)
		tb.RemoveDep(1, 4)
	})
	expectBump("Build(rebuild)", func() { tb.Build(inst) })
}

// TestTablesTopoIncrementalRepair drives the structural patches through
// long randomized add/remove walks on random DAGs and checks, after
// every single edge change, that the incrementally repaired order is
// bit-identical to a fresh Kahn run — both on the cheap keep paths
// (order provably unchanged) and across the re-run fallback.
func TestTablesTopoIncrementalRepair(t *testing.T) {
	r := rng.New(0x70b0)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(12)
		g := NewTaskGraph()
		for i := 0; i < n; i++ {
			g.AddTask("t", 1)
		}
		// Seed with a random acyclic edge set.
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasDep(u, v) && !g.Reaches(v, u) {
				g.MustAddDep(u, v, 1)
			}
		}
		net := NewNetwork(3)
		inst := NewInstance(g, net)
		var tb Tables
		tb.Build(inst)

		for step := 0; step < 200; step++ {
			if r.Float64() < 0.5 && g.NumDeps() > 0 {
				u, v := g.DepAt(r.Intn(g.NumDeps()))
				g.RemoveDep(u, v)
				tb.RemoveDep(u, v)
			} else {
				u, v := r.Intn(n), r.Intn(n)
				if u == v || g.HasDep(u, v) || g.Reaches(v, u) {
					continue
				}
				g.AddDepUnchecked(u, v, 1)
				tb.AddDep(u, v)
			}
			var fresh Tables
			fresh.Build(inst)
			if len(tb.Topo) != len(fresh.Topo) {
				t.Fatalf("trial %d step %d: Topo length %d vs %d", trial, step, len(tb.Topo), len(fresh.Topo))
			}
			for i := range tb.Topo {
				if tb.Topo[i] != fresh.Topo[i] {
					t.Fatalf("trial %d step %d: Topo[%d] = %d, want %d (incremental repair drifted from canonical Kahn)",
						trial, step, i, tb.Topo[i], fresh.Topo[i])
				}
			}
		}
	}
}

func TestAddDepUncheckedTailUndo(t *testing.T) {
	g := incInstance().Graph
	before := g.Deps()
	g.AddDepUnchecked(1, 2, 0.33)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveDep(1, 2) {
		t.Fatal("added edge missing")
	}
	after := g.Deps()
	if len(after) != len(before) {
		t.Fatalf("dep count %d, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("Deps()[%d] = %v, want %v", i, after[i], before[i])
		}
	}
}
