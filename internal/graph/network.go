package graph

import (
	"fmt"
	"math"
)

// Network is a complete undirected compute network: Speeds[v] is the
// compute speed s(v) of node v and Links[u][v] is the communication
// strength s(u, v). Self-links are infinitely strong (a node sends data
// to itself for free), matching the paper's convention.
type Network struct {
	Speeds []float64
	Links  [][]float64
}

// NewNetwork returns a network of n nodes with all speeds 1 and all link
// strengths 1 (self-links infinite).
func NewNetwork(n int) *Network {
	net := &Network{
		Speeds: make([]float64, n),
		Links:  make([][]float64, n),
	}
	for v := 0; v < n; v++ {
		net.Speeds[v] = 1
		net.Links[v] = make([]float64, n)
		for u := 0; u < n; u++ {
			if u == v {
				net.Links[v][u] = math.Inf(1)
			} else {
				net.Links[v][u] = 1
			}
		}
	}
	return net
}

// NumNodes returns |V|.
func (n *Network) NumNodes() int { return len(n.Speeds) }

// SetLink sets the strength of the (u, v) link symmetrically. Self-links
// are ignored (they stay infinite).
func (n *Network) SetLink(u, v int, strength float64) {
	if u == v {
		return
	}
	n.Links[u][v] = strength
	n.Links[v][u] = strength
}

// FastestNode returns the index of the node with the highest compute
// speed (lowest index on ties).
func (n *Network) FastestNode() int {
	best := 0
	for v := 1; v < len(n.Speeds); v++ {
		if n.Speeds[v] > n.Speeds[best] {
			best = v
		}
	}
	return best
}

// MeanSpeed returns the average node speed.
func (n *Network) MeanSpeed() float64 {
	if len(n.Speeds) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range n.Speeds {
		sum += s
	}
	return sum / float64(len(n.Speeds))
}

// MeanLinkStrength returns the average strength over distinct node pairs
// (self-links excluded). Infinite links are excluded from the average; if
// every link is infinite the result is +Inf. For a single-node network it
// returns +Inf (all communication is local).
func (n *Network) MeanLinkStrength() float64 {
	count, sum := 0, 0.0
	anyPair := false
	for u := 0; u < len(n.Speeds); u++ {
		for v := u + 1; v < len(n.Speeds); v++ {
			anyPair = true
			if math.IsInf(n.Links[u][v], 1) {
				continue
			}
			sum += n.Links[u][v]
			count++
		}
	}
	if !anyPair || count == 0 {
		return math.Inf(1)
	}
	return sum / float64(count)
}

// Validate checks that speeds are positive and finite, links are positive
// (possibly infinite) and symmetric, and self-links are infinite.
func (n *Network) Validate() error {
	if len(n.Speeds) == 0 {
		return fmt.Errorf("graph: empty network")
	}
	if len(n.Links) != len(n.Speeds) {
		return fmt.Errorf("graph: link matrix has %d rows for %d nodes", len(n.Links), len(n.Speeds))
	}
	for v, s := range n.Speeds {
		if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
			return fmt.Errorf("graph: node %d has invalid speed %v", v, s)
		}
	}
	for u := range n.Links {
		if len(n.Links[u]) != len(n.Speeds) {
			return fmt.Errorf("graph: link row %d has %d entries for %d nodes", u, len(n.Links[u]), len(n.Speeds))
		}
		for v, w := range n.Links[u] {
			if u == v {
				if !math.IsInf(w, 1) {
					return fmt.Errorf("graph: self-link of node %d must be +Inf, got %v", u, w)
				}
				continue
			}
			if !(w > 0) || math.IsNaN(w) {
				return fmt.Errorf("graph: link (%d, %d) has invalid strength %v", u, v, w)
			}
			if n.Links[v][u] != w {
				return fmt.Errorf("graph: link (%d, %d) asymmetric: %v vs %v", u, v, w, n.Links[v][u])
			}
		}
	}
	return nil
}

// CopyFrom makes n a deep copy of src, reusing n's slice storage where
// capacity allows (the hot-loop counterpart of Clone).
func (n *Network) CopyFrom(src *Network) {
	n.Speeds = append(n.Speeds[:0], src.Speeds...)
	if cap(n.Links) < len(src.Links) {
		grown := make([][]float64, len(src.Links))
		copy(grown, n.Links[:cap(n.Links)])
		n.Links = grown
	} else {
		n.Links = n.Links[:len(src.Links)]
	}
	for i, row := range src.Links {
		n.Links[i] = append(n.Links[i][:0], row...)
	}
}

// Clone returns a deep copy.
func (n *Network) Clone() *Network {
	c := &Network{
		Speeds: append([]float64(nil), n.Speeds...),
		Links:  make([][]float64, len(n.Links)),
	}
	for i, row := range n.Links {
		c.Links[i] = append([]float64(nil), row...)
	}
	return c
}

// Instance is a problem instance: a network/task-graph pair (N, G).
type Instance struct {
	Graph *TaskGraph
	Net   *Network
}

// NewInstance bundles a task graph and network.
func NewInstance(g *TaskGraph, n *Network) *Instance {
	return &Instance{Graph: g, Net: n}
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{Graph: in.Graph.Clone(), Net: in.Net.Clone()}
}

// CopyFrom makes in a deep copy of src, reusing in's storage where
// capacity allows. PISA's annealing chains use it to recycle one
// candidate/incumbent instance pair instead of cloning per iteration.
func (in *Instance) CopyFrom(src *Instance) {
	if in.Graph == nil {
		in.Graph = NewTaskGraph()
	}
	if in.Net == nil {
		in.Net = &Network{}
	}
	in.Graph.CopyFrom(src.Graph)
	in.Net.CopyFrom(src.Net)
}

// Validate checks both halves of the instance.
func (in *Instance) Validate() error {
	if in.Graph == nil || in.Net == nil {
		return fmt.Errorf("graph: instance missing graph or network")
	}
	if err := in.Graph.Validate(); err != nil {
		return err
	}
	return in.Net.Validate()
}

// ExecTime returns the execution time of task t on node v: c(t)/s(v).
func (in *Instance) ExecTime(t, v int) float64 {
	return in.Graph.Tasks[t].Cost / in.Net.Speeds[v]
}

// CommTime returns the communication time of dependency (u, t) when u
// runs on node from and t on node to: c(u, t)/s(from, to). It is zero
// when both tasks share a node or the data size is zero.
func (in *Instance) CommTime(u, t, from, to int) float64 {
	if from == to {
		return 0
	}
	cost, ok := in.Graph.DepCost(u, t)
	if !ok {
		return 0
	}
	if cost == 0 {
		return 0
	}
	return cost / in.Net.Links[from][to]
}

// AvgExecTime returns the average execution time of task t over all
// nodes, the quantity used by HEFT-style rank computations.
func (in *Instance) AvgExecTime(t int) float64 {
	sum := 0.0
	for v := range in.Net.Speeds {
		sum += in.ExecTime(t, v)
	}
	return sum / float64(len(in.Net.Speeds))
}

// AvgCommTime returns the average communication time of dependency
// (u, t) over all distinct node pairs. Infinite-strength links contribute
// zero time. For a single-node network it returns 0.
func (in *Instance) AvgCommTime(u, t int) float64 {
	cost, ok := in.Graph.DepCost(u, t)
	if !ok || cost == 0 {
		return 0
	}
	nodes := len(in.Net.Speeds)
	if nodes < 2 {
		return 0
	}
	sum := 0.0
	count := 0
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if !math.IsInf(in.Net.Links[a][b], 1) {
				sum += cost / in.Net.Links[a][b]
			}
			count++
		}
	}
	return sum / float64(count)
}

// CCR returns the communication-to-computation ratio of the instance:
// average communication time over average execution time (Section IV-A's
// definition). It returns 0 for graphs with no dependencies.
func (in *Instance) CCR() float64 {
	comm, count := 0.0, 0
	for u, succ := range in.Graph.Succ {
		for _, d := range succ {
			comm += in.AvgCommTime(u, d.To)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	comm /= float64(count)
	comp := 0.0
	for t := range in.Graph.Tasks {
		comp += in.AvgExecTime(t)
	}
	comp /= float64(len(in.Graph.Tasks))
	if comp == 0 {
		return 0
	}
	return comm / comp
}
