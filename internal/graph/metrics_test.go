package graph

import "testing"

func TestDepthAndWidth(t *testing.T) {
	g := diamond() // a → {b, c} → d
	if d := g.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	if w := g.Width(); w != 2 {
		t.Fatalf("Width = %d, want 2", w)
	}
	sizes := g.LevelSizes()
	want := []int{1, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("LevelSizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("LevelSizes = %v, want %v", sizes, want)
		}
	}
	if p := g.Parallelism(); !ApproxEq(p, 4.0/3) {
		t.Fatalf("Parallelism = %v, want 4/3", p)
	}
}

func TestMetricsDegenerateCases(t *testing.T) {
	empty := NewTaskGraph()
	if empty.Depth() != 0 || empty.Width() != 0 || empty.Parallelism() != 0 {
		t.Fatal("empty graph metrics should be 0")
	}
	if empty.LevelSizes() != nil {
		t.Fatal("empty graph level sizes should be nil")
	}
	single := NewTaskGraph()
	single.AddTask("a", 1)
	if single.Depth() != 1 || single.Width() != 1 {
		t.Fatal("single-task metrics wrong")
	}
	// Independent tasks: depth 1, width = n.
	ind := NewTaskGraph()
	for i := 0; i < 5; i++ {
		ind.AddTask("t", 1)
	}
	if ind.Depth() != 1 || ind.Width() != 5 || !ApproxEq(ind.Parallelism(), 5) {
		t.Fatalf("independent metrics: depth %d, width %d", ind.Depth(), ind.Width())
	}
	// Chain: depth n, width 1.
	chain := NewTaskGraph()
	prev := -1
	for i := 0; i < 4; i++ {
		tk := chain.AddTask("t", 1)
		if prev >= 0 {
			chain.MustAddDep(prev, tk, 0)
		}
		prev = tk
	}
	if chain.Depth() != 4 || chain.Width() != 1 || !ApproxEq(chain.Parallelism(), 1) {
		t.Fatalf("chain metrics: depth %d, width %d", chain.Depth(), chain.Width())
	}
}
