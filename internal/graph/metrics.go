package graph

// Structural metrics of task graphs, used by the dataset description
// tooling and useful when characterizing the instances PISA discovers
// (e.g. "does the adversarial search drive graphs wide or deep?").

// Depth returns the number of tasks on the longest path (1 for a
// dependency-free graph, 0 for an empty one).
func (g *TaskGraph) Depth() int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	if len(order) == 0 {
		return 0
	}
	depth := make([]int, g.NumTasks())
	max := 0
	for _, t := range order {
		depth[t] = 1
		for _, d := range g.Pred[t] {
			if depth[d.To]+1 > depth[t] {
				depth[t] = depth[d.To] + 1
			}
		}
		if depth[t] > max {
			max = depth[t]
		}
	}
	return max
}

// LevelSizes returns how many tasks sit at each precedence level (level
// = longest hop-path from an entry task, starting at 0).
func (g *TaskGraph) LevelSizes() []int {
	order, err := g.TopoOrder()
	if err != nil || len(order) == 0 {
		return nil
	}
	level := make([]int, g.NumTasks())
	max := 0
	for _, t := range order {
		for _, d := range g.Pred[t] {
			if level[d.To]+1 > level[t] {
				level[t] = level[d.To] + 1
			}
		}
		if level[t] > max {
			max = level[t]
		}
	}
	sizes := make([]int, max+1)
	for _, l := range level {
		sizes[l]++
	}
	return sizes
}

// Width returns the size of the largest precedence level — a cheap lower
// bound on the graph's maximum degree of parallelism.
func (g *TaskGraph) Width() int {
	max := 0
	for _, s := range g.LevelSizes() {
		if s > max {
			max = s
		}
	}
	return max
}

// Parallelism returns |T| divided by the depth: the average number of
// tasks available per sequential step, 0 for empty graphs.
func (g *TaskGraph) Parallelism() float64 {
	d := g.Depth()
	if d == 0 {
		return 0
	}
	return float64(g.NumTasks()) / float64(d)
}
