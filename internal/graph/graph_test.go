package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func diamond() *TaskGraph {
	g := NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 2)
	c := g.AddTask("c", 3)
	d := g.AddTask("d", 4)
	g.MustAddDep(a, b, 1)
	g.MustAddDep(a, c, 2)
	g.MustAddDep(b, d, 3)
	g.MustAddDep(c, d, 4)
	return g
}

func TestAddTaskAndCounts(t *testing.T) {
	g := diamond()
	if g.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d, want 4", g.NumTasks())
	}
	if g.NumDeps() != 4 {
		t.Fatalf("NumDeps = %d, want 4", g.NumDeps())
	}
}

func TestAddDepRejectsSelfLoop(t *testing.T) {
	g := NewTaskGraph()
	a := g.AddTask("a", 1)
	if err := g.AddDep(a, a, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddDepRejectsDuplicate(t *testing.T) {
	g := diamond()
	if err := g.AddDep(0, 1, 5); err == nil {
		t.Fatal("duplicate dependency accepted")
	}
}

func TestAddDepRejectsCycle(t *testing.T) {
	g := diamond()
	if err := g.AddDep(3, 0, 1); err == nil {
		t.Fatal("cycle-creating dependency accepted")
	}
	// The rejected edge must not corrupt the graph.
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddDepRejectsOutOfRange(t *testing.T) {
	g := diamond()
	if err := g.AddDep(0, 99, 1); err == nil {
		t.Fatal("out-of-range dependency accepted")
	}
	if err := g.AddDep(-1, 0, 1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestRemoveDep(t *testing.T) {
	g := diamond()
	if !g.RemoveDep(0, 1) {
		t.Fatal("RemoveDep(0,1) = false, edge exists")
	}
	if g.HasDep(0, 1) {
		t.Fatal("edge (0,1) still present after removal")
	}
	if g.RemoveDep(0, 1) {
		t.Fatal("RemoveDep on missing edge reported success")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumDeps() != 3 {
		t.Fatalf("NumDeps = %d after removal, want 3", g.NumDeps())
	}
}

func TestSetDepCost(t *testing.T) {
	g := diamond()
	if !g.SetDepCost(0, 1, 9.5) {
		t.Fatal("SetDepCost on existing edge failed")
	}
	if c, _ := g.DepCost(0, 1); c != 9.5 {
		t.Fatalf("DepCost = %v, want 9.5", c)
	}
	if g.SetDepCost(1, 0, 1) {
		t.Fatal("SetDepCost on missing edge reported success")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err) // both adjacency directions must be updated
	}
}

func TestReaches(t *testing.T) {
	g := diamond()
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 3, true}, {0, 0, true}, {1, 2, false}, {3, 0, false}, {1, 3, true},
	}
	for _, c := range cases {
		if got := g.Reaches(c.u, c.v); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond()
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks = %v, want [3]", s)
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumTasks())
	for i, task := range order {
		pos[task] = i
	}
	for _, d := range g.Deps() {
		if pos[d[0]] >= pos[d[1]] {
			t.Fatalf("topological violation: %d before %d", d[1], d[0])
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := diamond()
	a, _ := g.TopoOrder()
	b, _ := g.TopoOrder()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopoOrder not deterministic")
		}
	}
}

func TestValidateCatchesAdjacencyMismatch(t *testing.T) {
	g := diamond()
	// Corrupt one direction directly.
	g.Succ[0][0].Cost = 42
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed an adjacency cost mismatch")
	}
}

func TestValidateCatchesNegativeCost(t *testing.T) {
	g := diamond()
	g.Tasks[0].Cost = -1
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed a negative task cost")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.Tasks[0].Cost = 99
	c.SetDepCost(0, 1, 77)
	c.RemoveDep(2, 3)
	if g.Tasks[0].Cost != 1 {
		t.Fatal("clone mutation leaked into original tasks")
	}
	if cost, _ := g.DepCost(0, 1); cost != 1 {
		t.Fatal("clone mutation leaked into original deps")
	}
	if !g.HasDep(2, 3) {
		t.Fatal("clone removal leaked into original")
	}
}

func TestMeanCosts(t *testing.T) {
	g := diamond()
	if m := g.MeanTaskCost(); !ApproxEq(m, 2.5) {
		t.Fatalf("MeanTaskCost = %v, want 2.5", m)
	}
	if m := g.MeanDepCost(); !ApproxEq(m, 2.5) {
		t.Fatalf("MeanDepCost = %v, want 2.5", m)
	}
	empty := NewTaskGraph()
	if empty.MeanTaskCost() != 0 || empty.MeanDepCost() != 0 {
		t.Fatal("means of empty graph should be 0")
	}
}

func TestNetworkBasics(t *testing.T) {
	n := NewNetwork(3)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	n.Speeds[2] = 5
	if n.FastestNode() != 2 {
		t.Fatalf("FastestNode = %d, want 2", n.FastestNode())
	}
	n.SetLink(0, 1, 2.5)
	if n.Links[1][0] != 2.5 {
		t.Fatal("SetLink not symmetric")
	}
	n.SetLink(1, 1, 3) // ignored
	if !math.IsInf(n.Links[1][1], 1) {
		t.Fatal("self-link changed")
	}
}

func TestNetworkValidateErrors(t *testing.T) {
	n := NewNetwork(2)
	n.Speeds[0] = 0
	if err := n.Validate(); err == nil {
		t.Fatal("zero speed accepted")
	}
	n = NewNetwork(2)
	n.Links[0][1] = 1
	n.Links[1][0] = 2
	if err := n.Validate(); err == nil {
		t.Fatal("asymmetric link accepted")
	}
	n = NewNetwork(2)
	n.Links[0][0] = 1
	if err := n.Validate(); err == nil {
		t.Fatal("finite self-link accepted")
	}
	if err := (&Network{}).Validate(); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestMeanLinkStrength(t *testing.T) {
	n := NewNetwork(3)
	n.SetLink(0, 1, 2)
	n.SetLink(0, 2, 4)
	n.SetLink(1, 2, 6)
	if m := n.MeanLinkStrength(); !ApproxEq(m, 4) {
		t.Fatalf("MeanLinkStrength = %v, want 4", m)
	}
	inf := NewNetwork(2)
	inf.SetLink(0, 1, math.Inf(1))
	if !math.IsInf(inf.MeanLinkStrength(), 1) {
		t.Fatal("all-infinite network should report +Inf strength")
	}
}

func instance() *Instance {
	g := diamond()
	n := NewNetwork(2)
	n.Speeds[0], n.Speeds[1] = 1, 2
	n.SetLink(0, 1, 0.5)
	return NewInstance(g, n)
}

func TestExecTime(t *testing.T) {
	in := instance()
	if e := in.ExecTime(2, 1); !ApproxEq(e, 1.5) {
		t.Fatalf("ExecTime(c, fast) = %v, want 1.5", e)
	}
	if e := in.ExecTime(2, 0); !ApproxEq(e, 3) {
		t.Fatalf("ExecTime(c, slow) = %v, want 3", e)
	}
}

func TestCommTime(t *testing.T) {
	in := instance()
	if c := in.CommTime(0, 1, 0, 1); !ApproxEq(c, 2) { // cost 1 / strength 0.5
		t.Fatalf("CommTime across = %v, want 2", c)
	}
	if c := in.CommTime(0, 1, 1, 1); c != 0 {
		t.Fatalf("CommTime same node = %v, want 0", c)
	}
	if c := in.CommTime(1, 2, 0, 1); c != 0 {
		t.Fatalf("CommTime missing edge = %v, want 0", c)
	}
}

func TestAvgExecTime(t *testing.T) {
	in := instance()
	// Task c cost 3: (3/1 + 3/2)/2 = 2.25.
	if a := in.AvgExecTime(2); !ApproxEq(a, 2.25) {
		t.Fatalf("AvgExecTime = %v, want 2.25", a)
	}
}

func TestAvgCommTime(t *testing.T) {
	in := instance()
	// Edge (0,1) cost 1, single pair with strength 0.5 → 2.
	if a := in.AvgCommTime(0, 1); !ApproxEq(a, 2) {
		t.Fatalf("AvgCommTime = %v, want 2", a)
	}
	if a := in.AvgCommTime(1, 0); a != 0 {
		t.Fatalf("AvgCommTime of missing edge = %v, want 0", a)
	}
}

func TestAvgCommTimeInfiniteLinksContributeZero(t *testing.T) {
	g := NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddDep(a, b, 10)
	n := NewNetwork(3)
	n.SetLink(0, 1, math.Inf(1))
	n.SetLink(0, 2, math.Inf(1))
	n.SetLink(1, 2, 5)
	in := NewInstance(g, n)
	// Pairs: (0,1) inf → 0, (0,2) inf → 0, (1,2) → 2. Average = 2/3.
	if got := in.AvgCommTime(0, 1); !ApproxEq(got, 2.0/3) {
		t.Fatalf("AvgCommTime = %v, want 2/3", got)
	}
}

func TestCCR(t *testing.T) {
	g := NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 2)
	g.MustAddDep(a, b, 4)
	n := NewNetwork(2) // speeds 1, link 1
	in := NewInstance(g, n)
	// Avg exec = 2, avg comm = 4 → CCR 2.
	if c := in.CCR(); !ApproxEq(c, 2) {
		t.Fatalf("CCR = %v, want 2", c)
	}
}

func TestCCRNoDeps(t *testing.T) {
	g := NewTaskGraph()
	g.AddTask("a", 1)
	in := NewInstance(g, NewNetwork(2))
	if c := in.CCR(); c != 0 {
		t.Fatalf("CCR without deps = %v, want 0", c)
	}
}

func TestInstanceCloneAndValidate(t *testing.T) {
	in := instance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	c := in.Clone()
	c.Net.Speeds[0] = 42
	c.Graph.Tasks[0].Cost = 42
	if in.Net.Speeds[0] == 42 || in.Graph.Tasks[0].Cost == 42 {
		t.Fatal("instance clone shares state")
	}
	bad := &Instance{}
	if err := bad.Validate(); err == nil {
		t.Fatal("nil-parts instance accepted")
	}
}

// TestTopoOrderQuick generates random DAGs (edges only from lower to
// higher index, then relabeled by a permutation) and checks TopoOrder
// always yields a valid order.
func TestTopoOrderQuick(t *testing.T) {
	check := func(seed int64) bool {
		// Simple deterministic LCG so the property is self-contained.
		s := uint64(seed)
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		n := next(12) + 2
		g := NewTaskGraph()
		for i := 0; i < n; i++ {
			g.AddTask("t", float64(next(10)+1))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if next(3) == 0 {
					g.MustAddDep(i, j, float64(next(5)))
				}
			}
		}
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, task := range order {
			pos[task] = i
		}
		for _, d := range g.Deps() {
			if pos[d[0]] >= pos[d[1]] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
