package experiments

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/scheduler"
)

func TestSelectPortfolioHandPicked(t *testing.T) {
	// Three schedulers; A is terrible against base 2, B against base 0,
	// C mediocre everywhere. Best pair must be {A, B}: each covers the
	// other's weakness.
	names := []string{"A", "B", "C"}
	ratios := [][]float64{
		{-1, 10, 3},
		{1.2, -1, 3},
		{10, 1.1, -1},
	}
	res, err := SelectPortfolio(names, ratios, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 2 || res.Members[0] != "A" || res.Members[1] != "B" {
		t.Fatalf("portfolio = %v, want [A B]", res.Members)
	}
	// Worst ratio: base0 → min(-1→1 for A, 10 for B)=1; base1 → min(1.2, -1→1)=1;
	// base2 → min(10, 1.1) = 1.1.
	if !graph.ApproxEq(res.WorstRatio, 1.1) {
		t.Fatalf("WorstRatio = %v, want 1.1", res.WorstRatio)
	}
}

func TestSelectPortfolioFullSetIsBest(t *testing.T) {
	names := []string{"A", "B"}
	ratios := [][]float64{{-1, 2}, {3, -1}}
	res, err := SelectPortfolio(names, ratios, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With every scheduler included, each base is covered by itself.
	if !graph.ApproxEq(res.WorstRatio, 1) {
		t.Fatalf("full portfolio worst ratio = %v, want 1", res.WorstRatio)
	}
}

func TestSelectPortfolioMonotonicInK(t *testing.T) {
	// Larger portfolios can only improve the combined worst ratio.
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"),
		mustSched(t, "MinMin"), mustSched(t, "FastestNode"),
	}
	res, err := PairwisePISA(scheds, PairwiseOptions{Anneal: smallAnneal(60)})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for k := 1; k <= len(scheds); k++ {
		p, err := SelectPortfolio(res.Schedulers, res.Ratios, k)
		if err != nil {
			t.Fatal(err)
		}
		if p.WorstRatio > prev+graph.Eps {
			t.Fatalf("k=%d worsened the portfolio: %v > %v", k, p.WorstRatio, prev)
		}
		prev = p.WorstRatio
		if len(p.Members) != k {
			t.Fatalf("portfolio size %d, want %d", len(p.Members), k)
		}
	}
}

func TestSelectPortfolioErrors(t *testing.T) {
	if _, err := SelectPortfolio([]string{"A"}, [][]float64{{-1}}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectPortfolio([]string{"A"}, [][]float64{{-1}}, 2); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := SelectPortfolio([]string{"A", "B"}, [][]float64{{-1, 1}}, 1); err == nil {
		t.Fatal("ragged grid accepted")
	}
}
