package experiments

import (
	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/scheduler"
)

// MethodComparison reports how the two adversarial search meta-heuristics
// — the paper's simulated annealing and the future-work genetic
// algorithm — perform on the same scheduler pair at (approximately)
// equal evaluation budgets.
type MethodComparison struct {
	Target, Base  string
	SARatio       float64
	SAEvaluations int
	GARatio       float64
	GAEvaluations int
}

// CompareSearchMethods runs PISA's annealer and the GA for the pair with
// budgets matched to roughly `budget` candidate evaluations each, and
// returns both best ratios. It backs the ablation of the search strategy
// (DESIGN.md extensions).
func CompareSearchMethods(target, base scheduler.Scheduler, budget int, seed uint64) (*MethodComparison, error) {
	if budget < 20 {
		budget = 20
	}
	res := &MethodComparison{Target: target.Name(), Base: base.Name()}

	// SA: the paper's 5 restarts; iterations sized to the budget. The
	// cooling schedule caps effective iterations at ~459 per restart, so
	// cap there too.
	restarts := 5
	iters := budget / restarts
	if iters < 1 {
		iters = 1
	}
	sa := core.DefaultOptions()
	sa.MaxIters = iters
	sa.Restarts = restarts
	sa.Seed = seed
	sa.InitialInstance = datasets.InitialPISAInstance
	saRes, err := core.Run(target, base, sa)
	if err != nil {
		return nil, err
	}
	res.SARatio, res.SAEvaluations = saRes.BestRatio, saRes.Evaluations

	// GA: population 20, generations sized to the remaining budget.
	ga := core.DefaultGAOptions()
	ga.Seed = seed
	ga.InitialInstance = datasets.InitialPISAInstance
	ga.Generations = budget / ga.PopulationSize
	if ga.Generations < 1 {
		ga.Generations = 1
	}
	gaRes, err := core.RunGA(target, base, ga)
	if err != nil {
		return nil, err
	}
	res.GARatio, res.GAEvaluations = gaRes.BestRatio, gaRes.Evaluations
	return res, nil
}
