package experiments

import (
	"fmt"
	"math"
	"sort"
)

// PortfolioResult is the outcome of the Section VII portfolio-selection
// procedure the paper sketches for Workflow Management System designers:
// "run PISA and choose the three algorithms with the combined minimum
// maximum makespan ratio".
type PortfolioResult struct {
	// Members are the selected scheduler names, in roster order.
	Members []string
	// WorstRatio is the portfolio's combined worst-case makespan ratio:
	// the maximum over base schedulers of the minimum over members of
	// the PISA cell (a portfolio runs all members and keeps the best
	// schedule, so per base it pays the best member's ratio).
	WorstRatio float64
}

// SelectPortfolio chooses the size-k subset of schedulers minimizing the
// combined maximum makespan ratio against every base scheduler, given a
// PISA grid (ratios[i][j] = worst-case ratio of scheduler j against base
// i; diagonal and unknown cells < 0 are treated as ratio 1, since a
// scheduler never loses to itself).
//
// The scheduler count is small (15 in the paper), so exhaustive subset
// enumeration is exact and cheap: C(15,3) = 455 candidates. It is the
// sequential reference for SelectPortfolioParallel.
func SelectPortfolio(schedulers []string, ratios [][]float64, k int) (*PortfolioResult, error) {
	n := len(schedulers)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("experiments: portfolio size %d outside [1, %d]", k, n)
	}
	if len(ratios) != n {
		return nil, fmt.Errorf("experiments: ratio grid has %d rows for %d schedulers", len(ratios), n)
	}

	best := &PortfolioResult{WorstRatio: math.Inf(1)}
	subset := make([]int, k)
	var recurse func(start, depth int)
	recurse = func(start, depth int) {
		if depth == k {
			if worst := subsetWorstRatio(ratios, subset); worst < best.WorstRatio {
				members := make([]string, k)
				for i, j := range subset {
					members[i] = schedulers[j]
				}
				best.Members, best.WorstRatio = members, worst
			}
			return
		}
		for j := start; j <= n-(k-depth); j++ {
			subset[depth] = j
			recurse(j+1, depth+1)
		}
	}
	recurse(0, 0)
	sort.Strings(best.Members)
	return best, nil
}

// subsetWorstRatio scores one candidate portfolio: the maximum over base
// schedulers of the minimum member ratio. Diagonal and unknown cells
// (< 0) count as ratio 1, since a scheduler never loses to itself.
func subsetWorstRatio(ratios [][]float64, subset []int) float64 {
	worst := 0.0
	for base := range ratios {
		cell := math.Inf(1)
		for _, j := range subset {
			r := ratios[base][j]
			if r < 0 {
				r = 1 // self or unknown: no loss
			}
			if r < cell {
				cell = r
			}
		}
		if cell > worst {
			worst = cell
		}
	}
	return worst
}
