package experiments

import (
	"math"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// AppSpecificOptions configures a Section VII experiment for one
// scientific workflow at one CCR.
type AppSpecificOptions struct {
	// Workflow is one of datasets.WorkflowNames.
	Workflow string
	// CCR is the target average communication-to-computation ratio; the
	// paper runs {0.2, 0.5, 1, 2, 5}.
	CCR float64
	// BenchmarkInstances is the benchmarking dataset size (paper: 100).
	BenchmarkInstances int
	// Anneal carries the annealing parameters; InitialInstance and
	// Perturb are managed by the driver.
	Anneal core.Options
}

// AppSpecificResult mirrors one block of Figs 10-19: a benchmarking row
// (max makespan ratio against the best scheduler per instance) and a
// PISA grid (worst-case ratio of each column scheduler against each row
// base scheduler).
type AppSpecificResult struct {
	Workflow   string
	CCR        float64
	Schedulers []string
	Benchmark  []float64   // per scheduler, max ratio over the dataset
	Ratios     [][]float64 // [base][target], diagonal -1
	Instances  [][]*graph.Instance
}

// CCRLevels are the five CCR settings of Section VII.
var CCRLevels = []float64{0.2, 0.5, 1.0, 2.0, 5.0}

// appInstance builds one Section VII problem instance: the workflow's
// recipe topology over a trace-inspired network whose finite homogeneous
// link strength is set so the instance's average CCR equals the target
// (Section VII-A).
func appInstance(workflow string, ccr float64, r *rng.RNG) *graph.Instance {
	g, err := datasets.WorkflowRecipe(workflow, r)
	if err != nil {
		panic(err)
	}
	n := r.IntBetween(4, 10)
	net := graph.NewNetwork(n)
	for v := 0; v < n; v++ {
		net.Speeds[v] = r.ClippedGaussian(1, 1.0/3, 0.2, 2)
	}
	inst := graph.NewInstance(g, net)
	datasets.SetHomogeneousCCR(inst, ccr)
	return inst
}

// AppSpecific reproduces one Section VII block: benchmark the schedulers
// on BenchmarkInstances in-family instances, then run the
// structure-preserving PISA variant for every scheduler pair. The
// perturbation space scales weights to the ranges observed in the
// benchmarking dataset (standing in for the paper's execution-trace
// ranges) and removes the structural and link perturbations, so every
// explored instance keeps the application's topology and CCR. It is the
// sequential reference for AppSpecificParallel.
func AppSpecific(scheds []scheduler.Scheduler, opts AppSpecificOptions) (*AppSpecificResult, error) {
	n := len(scheds)
	res := &AppSpecificResult{
		Workflow:  opts.Workflow,
		CCR:       opts.CCR,
		Benchmark: make([]float64, n),
		Ratios:    make([][]float64, n),
		Instances: make([][]*graph.Instance, n),
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	for i := range res.Ratios {
		res.Ratios[i] = make([]float64, n)
		res.Instances[i] = make([]*graph.Instance, n)
		for j := range res.Ratios[i] {
			res.Ratios[i][j] = -1
		}
	}

	// Benchmarking row + observed weight ranges for the perturb space.
	taskRange := [2]float64{math.Inf(1), math.Inf(-1)}
	depRange := [2]float64{math.Inf(1), math.Inf(-1)}
	speedRange := [2]float64{math.Inf(1), math.Inf(-1)}
	r := rng.New(opts.Anneal.Seed ^ 0xA99)
	nBench := opts.BenchmarkInstances
	if nBench <= 0 {
		nBench = 20
	}
	for i := 0; i < nBench; i++ {
		inst := appInstance(opts.Workflow, opts.CCR, r.Split())
		for _, t := range inst.Graph.Tasks {
			taskRange[0] = math.Min(taskRange[0], t.Cost)
			taskRange[1] = math.Max(taskRange[1], t.Cost)
		}
		for _, succ := range inst.Graph.Succ {
			for _, d := range succ {
				depRange[0] = math.Min(depRange[0], d.Cost)
				depRange[1] = math.Max(depRange[1], d.Cost)
			}
		}
		for _, s := range inst.Net.Speeds {
			speedRange[0] = math.Min(speedRange[0], s)
			speedRange[1] = math.Max(speedRange[1], s)
		}
		ratios, err := MakespanRatioAgainstBest(inst, scheds)
		if err != nil {
			return nil, err
		}
		for j, s := range scheds {
			if v := ratios[s.Name()]; v > res.Benchmark[j] {
				res.Benchmark[j] = v
			}
		}
	}

	// PISA grid with the application-specific PERTURB implementation.
	pairSeed := opts.Anneal.Seed
	for i, base := range scheds {
		for j, target := range scheds {
			if i == j {
				continue
			}
			pairSeed++
			ao := opts.Anneal
			ao.Seed = pairSeed
			ao.InitialInstance = func(rr *rng.RNG) *graph.Instance {
				return appInstance(opts.Workflow, opts.CCR, rr)
			}
			ao.Perturb = core.PerturbOptions{
				Step:              0.1,
				TaskCost:          taskRange,
				DepCost:           depRange,
				Speed:             speedRange,
				FixLinks:          true,
				FixStructure:      true,
				KeepPinnedWeights: true,
			}
			pr, err := core.Run(target, base, ao)
			if err != nil {
				return nil, err
			}
			res.Ratios[i][j] = pr.BestRatio
			res.Instances[i][j] = pr.Best
		}
	}
	return res, nil
}
