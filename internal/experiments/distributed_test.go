package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"saga/internal/datasets"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/serialize"
)

// shardStores runs the given driver once per shard, each shard writing
// its cells to its own checkpoint store under dir, and returns the store
// paths. The drivers' in-memory results are discarded — exactly how
// `saga worker` uses them.
func shardStores(t *testing.T, dir, fingerprint string, count int, run func(ro runner.Options) error) []string {
	t.Helper()
	paths := make([]string, count)
	for i := 0; i < count; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		ck := serialize.NewCheckpoint(paths[i])
		ck.SetFingerprint(fingerprint)
		ro := runner.Options{
			Workers:    2,
			Shard:      runner.ShardSpec{Index: i, Count: count},
			Checkpoint: ck,
		}
		if err := run(ro); err != nil {
			t.Fatalf("shard %d/%d: %v", i, count, err)
		}
	}
	return paths
}

// mergedResume merges the shard stores (verifying total coverage) and
// returns runner options that resume from the merged store, with a
// progress trace capturing how much was loaded versus recomputed.
func mergedResume(t *testing.T, dir, fingerprint string, total int, paths []string) (runner.Options, *[][2]int) {
	t.Helper()
	merged := filepath.Join(dir, "merged.json")
	n, err := serialize.MergeCheckpoints(merged, fingerprint, total, paths)
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("merge wrote %d cells, want %d", n, total)
	}
	ck := serialize.NewCheckpoint(merged)
	ck.SetFingerprint(fingerprint)
	calls := &[][2]int{}
	ro := runner.Options{Checkpoint: ck, Progress: func(done, total int) {
		*calls = append(*calls, [2]int{done, total})
	}}
	return ro, calls
}

// assertLoadedEverything fails unless the resumed sweep decoded every
// cell from the merged store and computed none: each phase makes exactly
// one progress call, at load time, already complete (a computed cell
// would add an intermediate done < total call).
func assertLoadedEverything(t *testing.T, label string, calls [][2]int) {
	t.Helper()
	if len(calls) == 0 {
		t.Fatalf("%s: merged store resumed nothing", label)
	}
	for _, c := range calls {
		if c[0] != c[1] {
			t.Fatalf("%s: merged store did not cover the sweep: progress %v", label, calls)
		}
	}
}

// TestShardedPairwiseMergeDeterminism is the distributed protocol end to
// end for the Fig 4 driver: shards computed in separate runner pools,
// stores merged with full-coverage verification, and the resumed run
// bit-identical to the sequential single-process reference.
func TestShardedPairwiseMergeDeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "MinMin"),
	}
	opts := PairwiseOptions{Anneal: smallAnneal(60)}
	seq, err := PairwisePISARun(scheds, opts, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const fp = "test-pairwise-sharded"
	totalCells := len(scheds) * (len(scheds) - 1)
	for _, count := range []int{2, 3, 5 /* more shards than some shards have cells */} {
		t.Run(fmt.Sprintf("shards=%d", count), func(t *testing.T) {
			dir := t.TempDir()
			paths := shardStores(t, dir, fp, count, func(ro runner.Options) error {
				_, err := PairwisePISARun(scheds, opts, ro)
				return err
			})
			ro, calls := mergedResume(t, dir, fp, totalCells, paths)
			par, err := PairwisePISARun(scheds, opts, ro)
			if err != nil {
				t.Fatal(err)
			}
			assertLoadedEverything(t, "pairwise", *calls)
			for i := range seq.Ratios {
				for j := range seq.Ratios[i] {
					if seq.Ratios[i][j] != par.Ratios[i][j] {
						t.Fatalf("cell (%d,%d): sequential %v, sharded %v", i, j, seq.Ratios[i][j], par.Ratios[i][j])
					}
					if i == j {
						continue
					}
					a, err := serialize.MarshalInstance(seq.Instances[i][j])
					if err != nil {
						t.Fatal(err)
					}
					b, err := serialize.MarshalInstance(par.Instances[i][j])
					if err != nil {
						t.Fatal(err)
					}
					if string(a) != string(b) {
						t.Fatalf("cell (%d,%d): adversarial instances differ", i, j)
					}
				}
			}
			for j := range seq.Worst {
				if seq.Worst[j] != par.Worst[j] {
					t.Fatalf("Worst[%d]: sequential %v, sharded %v", j, seq.Worst[j], par.Worst[j])
				}
			}
		})
	}
}

// TestShardedFamilyMergeDeterminism covers the second driver class
// (sampling loops rather than PISA grids): a sharded Fig 7 family study
// merges back to the sequential reference bit for bit.
func TestShardedFamilyMergeDeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "CPoP"), mustSched(t, "HEFT")}
	const n, seed = 40, 9
	seq, err := FamilyRun(datasets.Fig7Instance, scheds, n, seed, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const fp = "test-family-sharded"
	dir := t.TempDir()
	paths := shardStores(t, dir, fp, 4, func(ro runner.Options) error {
		_, err := FamilyRun(datasets.Fig7Instance, scheds, n, seed, ro)
		return err
	})
	ro, calls := mergedResume(t, dir, fp, n, paths)
	par, err := FamilyRun(datasets.Fig7Instance, scheds, n, seed, ro)
	if err != nil {
		t.Fatal(err)
	}
	assertLoadedEverything(t, "family", *calls)
	for _, name := range seq.Schedulers {
		if len(par.Makespans[name]) != n {
			t.Fatalf("%s: %d samples, want %d", name, len(par.Makespans[name]), n)
		}
		for i := range seq.Makespans[name] {
			if seq.Makespans[name][i] != par.Makespans[name][i] {
				t.Fatalf("%s sample %d: sequential %v, sharded %v",
					name, i, seq.Makespans[name][i], par.Makespans[name][i])
			}
		}
		if seq.Summaries[name] != par.Summaries[name] {
			t.Fatalf("%s summary: sequential %+v, sharded %+v", name, seq.Summaries[name], par.Summaries[name])
		}
	}
}

// TestShardedAppSpecificMergeDeterminism exercises the hardest store
// layout: two sweep phases multiplexed through OffsetCheckpoint windows,
// with the benchmarking window duplicated (identically) across every
// shard store and deduplicated by the merge.
func TestShardedAppSpecificMergeDeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "FastestNode"),
	}
	opts := AppSpecificOptions{
		Workflow:           "blast",
		CCR:                1.0,
		BenchmarkInstances: 4,
		Anneal:             smallAnneal(3),
	}
	opts.Anneal.MaxIters = 40
	seq, err := AppSpecificRun(scheds, opts, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const fp = "test-appspecific-sharded"
	total := opts.BenchmarkInstances + len(scheds)*(len(scheds)-1)
	dir := t.TempDir()
	paths := shardStores(t, dir, fp, 3, func(ro runner.Options) error {
		_, err := AppSpecificRun(scheds, opts, ro)
		return err
	})
	ro, calls := mergedResume(t, dir, fp, total, paths)
	par, err := AppSpecificRun(scheds, opts, ro)
	if err != nil {
		t.Fatal(err)
	}
	assertLoadedEverything(t, "appspecific", *calls)
	for j := range seq.Benchmark {
		if seq.Benchmark[j] != par.Benchmark[j] {
			t.Fatalf("Benchmark[%d]: sequential %v, sharded %v", j, seq.Benchmark[j], par.Benchmark[j])
		}
	}
	for i := range seq.Ratios {
		for j := range seq.Ratios[i] {
			if seq.Ratios[i][j] != par.Ratios[i][j] {
				t.Fatalf("cell (%d,%d): sequential %v, sharded %v", i, j, seq.Ratios[i][j], par.Ratios[i][j])
			}
		}
	}
}

// TestShardedRunReturnsPartialResult pins the documented contract of a
// sharded driver's in-memory return value: owned cells populated,
// foreign cells left at their zero/absent markers.
func TestShardedRunReturnsPartialResult(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "CPoP")}
	shard := runner.ShardSpec{Index: 0, Count: 2} // owns cell 0 of the 2 off-diagonal cells
	res, err := PairwisePISARun(scheds, PairwiseOptions{Anneal: smallAnneal(60)},
		runner.Options{Workers: 1, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	// Cell k=0 is (i,j) = (0,1); cell k=1 is (1,0) and belongs to shard 1.
	if res.Ratios[0][1] <= 0 || res.Instances[0][1] == nil {
		t.Fatalf("owned cell missing: %+v", res.Ratios)
	}
	if res.Ratios[1][0] != -1 || res.Instances[1][0] != nil {
		t.Fatalf("foreign cell populated: %+v", res.Ratios)
	}
}

func TestNewSweepRegistry(t *testing.T) {
	raw, err := serialize.MarshalInstance(datasets.Fig1Instance())
	if err != nil {
		t.Fatal(err)
	}
	p := SweepParams{
		N: 20, Iters: 250, Restarts: 3, Seed: 1, Workflow: "srasearch", CCR: 1.0,
		Scheduler: "HEFT", Sigma: 0.2, InstanceRaw: raw,
		Schedulers: []string{"HEFT", "CPoP"},
	}
	for _, name := range SweepNames {
		sw, err := NewSweep(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sw.Name != name || sw.Cells <= 0 || sw.Fingerprint == "" {
			t.Fatalf("%s: malformed sweep %+v", name, sw)
		}
		if !strings.HasPrefix(sw.Fingerprint, name+" ") {
			t.Fatalf("%s: fingerprint %q does not identify the sweep", name, sw.Fingerprint)
		}
	}
	// The fingerprint must pin the parameters: any change refuses a resume.
	a, _ := NewSweep("fig4", p)
	p2 := p
	p2.Iters = 251
	b, _ := NewSweep("fig4", p2)
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("fig4 fingerprint ignores iters")
	}
	if _, err := NewSweep("fig99", p); err == nil {
		t.Fatal("unknown sweep accepted")
	}
	bad := p
	bad.CCR = 0
	if _, err := NewSweep("appspecific", bad); err == nil {
		t.Fatal("appspecific sweep accepted without a CCR block")
	}
	bad = p
	bad.Scheduler = ""
	if _, err := NewSweep("robustness", bad); err == nil {
		t.Fatal("robustness sweep accepted without a scheduler")
	}
	bad = p
	bad.InstanceRaw = nil
	if _, err := NewSweep("robustness", bad); err == nil {
		t.Fatal("robustness sweep accepted without instance bytes")
	}
	bad = p
	bad.Schedulers = []string{"HEFT"}
	if _, err := NewSweep("pairwise", bad); err == nil {
		t.Fatal("pairwise sweep accepted with fewer than 2 schedulers")
	}
	bad = p
	bad.Schedulers = []string{"HEFT", "NoSuchScheduler"}
	if _, err := NewSweep("pairwise", bad); err == nil {
		t.Fatal("pairwise sweep accepted an unknown scheduler")
	}
	// ChainWorkers must NOT enter any fingerprint: results are
	// bit-identical at every worker count, so stores written at different
	// intra-cell parallelism are interchangeable.
	for _, name := range SweepNames {
		p2 := p
		p2.ChainWorkers = 7
		a, err := NewSweep(name, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSweep(name, p2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("%s: fingerprint depends on ChainWorkers", name)
		}
	}
}

// TestShardedRobustnessMergeDeterminism is satellite coverage for the
// robustness sweep joining the distributed protocol: shards run through
// the Sweep closure (the `saga worker` path), the merged store resumes
// through the direct RobustnessRun call (the `saga robustness` path),
// and the summaries match the sequential reference bit for bit.
func TestShardedRobustnessMergeDeterminism(t *testing.T) {
	inst := datasets.Fig1Instance()
	raw, err := serialize.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	p := SweepParams{N: 30, Seed: 11, Scheduler: "HEFT", Sigma: 0.3, InstanceRaw: raw}
	sw, err := NewSweep("robustness", p)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cells != p.N {
		t.Fatalf("robustness cells %d, want %d", sw.Cells, p.N)
	}
	seq, err := RobustnessRun(inst, mustSched(t, "HEFT"), p.Sigma, p.N, p.Seed, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := shardStores(t, dir, sw.Fingerprint, 3, sw.Run)
	ro, calls := mergedResume(t, dir, sw.Fingerprint, sw.Cells, paths)
	par, err := RobustnessRun(inst, mustSched(t, "HEFT"), p.Sigma, p.N, p.Seed, ro)
	if err != nil {
		t.Fatal(err)
	}
	assertLoadedEverything(t, "robustness", *calls)
	if seq.Nominal != par.Nominal || seq.Static != par.Static || seq.Adaptive != par.Adaptive {
		t.Fatalf("sharded union diverged:\nsequential %+v\nsharded    %+v", seq, par)
	}
}

// TestSweepRunMatchesDriverFingerprint runs one shard through the Sweep
// closure (the `saga worker` path) and resumes the merged store through
// the direct driver call (the `figures` path), proving the two CLIs
// interoperate on one store.
func TestSweepRunMatchesDriverFingerprint(t *testing.T) {
	p := SweepParams{N: 12, Seed: 9}
	sw, err := NewSweep("fig7", p)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cells != p.N {
		t.Fatalf("fig7 cells %d, want %d", sw.Cells, p.N)
	}
	dir := t.TempDir()
	paths := shardStores(t, dir, sw.Fingerprint, 2, sw.Run)
	ro, calls := mergedResume(t, dir, sw.Fingerprint, sw.Cells, paths)

	scheds := []scheduler.Scheduler{mustSched(t, "CPoP"), mustSched(t, "HEFT")}
	seq, err := FamilyRun(datasets.Fig7Instance, scheds, p.N, p.Seed, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FamilyRun(datasets.Fig7Instance, scheds, p.N, p.Seed, ro)
	if err != nil {
		t.Fatal(err)
	}
	assertLoadedEverything(t, "fig7 sweep", *calls)
	for _, name := range seq.Schedulers {
		for i := range seq.Makespans[name] {
			if seq.Makespans[name][i] != par.Makespans[name][i] {
				t.Fatalf("%s sample %d differs", name, i)
			}
		}
	}
}
