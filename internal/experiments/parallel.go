package experiments

import (
	"runtime"
	"sync"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/scheduler"
)

// The pairwise PISA grid and the benchmarking sweep are embarrassingly
// parallel: each (target, base) pair — and each dataset — is an
// independent computation with its own derived random seed. The parallel
// runners below fan the work out over a bounded worker pool and produce
// results bit-identical to the sequential drivers: seeds are assigned by
// cell position, never by completion order.

// PairwisePISAParallel computes the same grid as PairwisePISA using up
// to workers goroutines (0 = GOMAXPROCS). Results are deterministic and
// identical to the sequential driver for the same options.
func PairwisePISAParallel(scheds []scheduler.Scheduler, opts PairwiseOptions, workers int) (*PairwiseResult, error) {
	n := len(scheds)
	res := &PairwiseResult{
		Ratios:    make([][]float64, n),
		Worst:     make([]float64, n),
		Instances: make([][]*graph.Instance, n),
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	for i := range res.Ratios {
		res.Ratios[i] = make([]float64, n)
		res.Instances[i] = make([]*graph.Instance, n)
		for j := range res.Ratios[i] {
			res.Ratios[i][j] = -1
		}
	}

	type cell struct{ i, j int }
	var cells []cell
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				cells = append(cells, cell{i, j})
			}
		}
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Seed each cell by its sequential position so parallel and serial
	// runs agree. Schedulers may be stateful (WBA holds a seed but is
	// re-created per goroutine via the registry) — instantiate fresh
	// copies per worker to avoid sharing.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	baseSeed := opts.Anneal.Seed
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(cells) {
					mu.Unlock()
					return
				}
				k := next
				next++
				mu.Unlock()

				c := cells[k]
				target, err := scheduler.New(res.Schedulers[c.j])
				if err == nil {
					var base scheduler.Scheduler
					base, err = scheduler.New(res.Schedulers[c.i])
					if err == nil {
						ao := opts.Anneal
						ao.Seed = baseSeed + uint64(k) + 1
						ao.InitialInstance = datasets.InitialPISAInstance
						ao.Perturb = pairPerturb(target, base)
						var r *core.Result
						r, err = core.Run(target, base, ao)
						if err == nil {
							mu.Lock()
							res.Ratios[c.i][c.j] = r.BestRatio
							res.Instances[c.i][c.j] = r.Best
							mu.Unlock()
							continue
						}
					}
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i != j && res.Ratios[i][j] > res.Worst[j] {
				res.Worst[j] = res.Ratios[i][j]
			}
		}
	}
	return res, nil
}

// BenchmarkingParallel computes the same grid as Benchmarking with one
// worker per dataset (bounded by workers; 0 = GOMAXPROCS). Instance
// seeds derive from the dataset name position, so results match the
// sequential driver.
func BenchmarkingParallel(datasetNames []string, scheds []scheduler.Scheduler, n int, seed uint64, workers int) (*BenchmarkResult, error) {
	res := &BenchmarkResult{
		Datasets: datasetNames,
		Cells:    map[string]map[string]BenchmarkCell{},
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(datasetNames) {
		workers = len(datasetNames)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(datasetNames) {
					mu.Unlock()
					return
				}
				k := next
				next++
				mu.Unlock()

				ds := datasetNames[k]
				// Fresh scheduler instances per dataset worker.
				var local []scheduler.Scheduler
				var err error
				for _, name := range res.Schedulers {
					var s scheduler.Scheduler
					s, err = scheduler.New(name)
					if err != nil {
						break
					}
					local = append(local, s)
				}
				var sub *BenchmarkResult
				if err == nil {
					sub, err = Benchmarking([]string{ds}, local, n, seed)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				res.Cells[ds] = sub.Cells[ds]
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
