package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/serialize"
	"saga/internal/stats"
)

// Every experiment driver in this package is a grid or sampling loop of
// independent cells, so each has a parallel counterpart built on
// runner.Map: seeds derive from cell position (runner.CellSeed or
// pre-split rng sub-streams), results land by cell index, and schedulers
// are re-instantiated from the registry per cell so no state is shared
// between workers. The per-worker scheduler.Scratch threaded through
// runner.MapState carries everything PISA's incremental inner loop
// reuses — the patched cost tables, the undo log, the reachability
// buffers — so a worker's whole annealing chain runs allocation-free
// after warm-up without sharing a byte with its siblings. The parallel results are bit-identical to the
// sequential drivers for every worker count — the determinism suite in
// determinism_test.go asserts it for all six.
//
// The Run variants also accept runner.Options.Shard, splitting a sweep
// across processes: a sharded run computes only its own cells (the rest
// of the returned result stays zero-valued/absent) and persists them to
// its checkpoint store; serialize.MergeCheckpoints combines the shard
// stores into one an unsharded run resumes to the full, bit-identical
// result (distributed_test.go proves it). AppSpecificRun shards only its
// PISA phase — every shard recomputes the cheap benchmarking phase in
// full because the observed weight ranges it produces shape every PISA
// cell's perturbation space.

// freshSchedulers re-instantiates schedulers from the registry by name,
// giving each worker its own copies (WBA carries a construction seed;
// sharing one value is safe today, but fresh copies keep the drivers
// correct for any future stateful scheduler).
func freshSchedulers(names []string) ([]scheduler.Scheduler, error) {
	out := make([]scheduler.Scheduler, len(names))
	for i, n := range names {
		s, err := scheduler.New(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// splitStreams pre-derives the n per-cell sub-streams the sequential
// drivers draw lazily (one r.Split() per loop iteration), so parallel
// cells consume exactly the stream their sequential position would.
func splitStreams(seed uint64, n int) []*rng.RNG {
	r := rng.New(seed)
	subs := make([]*rng.RNG, n)
	for i := range subs {
		subs[i] = r.Split()
	}
	return subs
}

// pisaCell is one checkpointable unit of a PISA grid: the best ratio
// plus the adversarial instance, serialized through package serialize so
// infinite link strengths survive the JSON round trip.
type pisaCell struct {
	Ratio    float64         `json:"ratio"`
	Instance json.RawMessage `json:"instance"`
}

// BenchmarkingParallel computes the same grid as Benchmarking using up
// to workers goroutines (0 = GOMAXPROCS), one cell per dataset. Every
// dataset draws its instances from the same root seed in both drivers,
// so results are bit-identical to the sequential reference.
func BenchmarkingParallel(datasetNames []string, scheds []scheduler.Scheduler, n int, seed uint64, workers int) (*BenchmarkResult, error) {
	return BenchmarkingRun(datasetNames, scheds, n, seed, runner.Options{Workers: workers})
}

// BenchmarkingRun is BenchmarkingParallel with full runner control
// (progress callbacks, checkpointing).
func BenchmarkingRun(datasetNames []string, scheds []scheduler.Scheduler, n int, seed uint64, ro runner.Options) (*BenchmarkResult, error) {
	res := &BenchmarkResult{
		Datasets: datasetNames,
		Cells:    map[string]map[string]BenchmarkCell{},
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	cells, err := runner.Map(len(datasetNames), ro,
		func(k int) (map[string]BenchmarkCell, error) {
			local, err := freshSchedulers(res.Schedulers)
			if err != nil {
				return nil, err
			}
			sub, err := Benchmarking([]string{datasetNames[k]}, local, n, seed)
			if err != nil {
				return nil, err
			}
			return sub.Cells[datasetNames[k]], nil
		})
	if err != nil {
		return nil, err
	}
	for k, cell := range cells {
		res.Cells[datasetNames[k]] = cell
	}
	return res, nil
}

// PairwisePISAParallel computes the same grid as PairwisePISA using up
// to workers goroutines (0 = GOMAXPROCS). Each off-diagonal cell gets
// the seed its sequential position implies, so results are deterministic
// and identical to the sequential driver for the same options.
func PairwisePISAParallel(scheds []scheduler.Scheduler, opts PairwiseOptions, workers int) (*PairwiseResult, error) {
	return PairwisePISARun(scheds, opts, runner.Options{Workers: workers})
}

// PairwisePISARun is PairwisePISAParallel with full runner control:
// progress callbacks and — because each cell of the full 15×15 grid is
// an expensive annealing run — a checkpoint store for resumable sweeps
// (pass serialize.NewCheckpoint).
func PairwisePISARun(scheds []scheduler.Scheduler, opts PairwiseOptions, ro runner.Options) (*PairwiseResult, error) {
	n := len(scheds)
	res := &PairwiseResult{
		Ratios:    make([][]float64, n),
		Worst:     make([]float64, n),
		Instances: make([][]*graph.Instance, n),
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	for i := range res.Ratios {
		res.Ratios[i] = make([]float64, n)
		res.Instances[i] = make([]*graph.Instance, n)
		for j := range res.Ratios[i] {
			res.Ratios[i][j] = -1
		}
	}
	if n < 2 {
		return res, nil
	}

	baseSeed := opts.Anneal.Seed
	cells, err := runner.MapState(n*(n-1), ro, scheduler.NewScratch,
		func(k int, scr *scheduler.Scratch) (pisaCell, error) {
			i, j := runner.OffDiagonal(k, n)
			target, err := scheduler.New(res.Schedulers[j])
			if err != nil {
				return pisaCell{}, err
			}
			base, err := scheduler.New(res.Schedulers[i])
			if err != nil {
				return pisaCell{}, err
			}
			ao := opts.Anneal
			ao.Seed = runner.CellSeed(baseSeed, k)
			ao.InitialInstance = datasets.InitialPISAInstance
			ao.Perturb = pairPerturb(target, base)
			ao.Scratch = scr // per-worker buffers; results are scratch-independent
			r, err := core.Run(target, base, ao)
			if err != nil {
				return pisaCell{}, err
			}
			raw, err := serialize.MarshalInstance(r.Best)
			if err != nil {
				return pisaCell{}, err
			}
			return pisaCell{Ratio: r.BestRatio, Instance: raw}, nil
		})
	if err != nil {
		return nil, err
	}
	for k, c := range cells {
		if len(c.Instance) == 0 {
			// Legitimately absent: another shard's (or lease's) cell, or a
			// failure already routed through OnCellError.
			if ro.Owns(k) && ro.OnCellError == nil {
				return nil, fmt.Errorf("experiments: cell %d has no instance", k)
			}
			continue
		}
		i, j := runner.OffDiagonal(k, n)
		inst, err := serialize.UnmarshalInstance(c.Instance)
		if err != nil {
			return nil, fmt.Errorf("experiments: cell (%d,%d): %w", i, j, err)
		}
		res.Ratios[i][j] = c.Ratio
		res.Instances[i][j] = inst
		if c.Ratio > res.Worst[j] {
			res.Worst[j] = c.Ratio
		}
	}
	return res, nil
}

// FamilyParallel computes the same result as Family using up to workers
// goroutines (0 = GOMAXPROCS), one cell per sampled instance. The
// schedulers must be registry-instantiable (every Table I algorithm is),
// so each worker runs fresh copies.
func FamilyParallel(gen func(*rng.RNG) *graph.Instance, scheds []scheduler.Scheduler, n int, seed uint64, workers int) (*FamilyResult, error) {
	return FamilyRun(gen, scheds, n, seed, runner.Options{Workers: workers})
}

// FamilyRun is FamilyParallel with full runner control: progress
// callbacks and a checkpoint store for resumable sampling sweeps (each
// cell's per-scheduler makespan vector round-trips through JSON).
func FamilyRun(gen func(*rng.RNG) *graph.Instance, scheds []scheduler.Scheduler, n int, seed uint64, ro runner.Options) (*FamilyResult, error) {
	res := &FamilyResult{
		Makespans: map[string][]float64{},
		Summaries: map[string]stats.Summary{},
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	subs := splitStreams(seed, n)
	cells, err := runner.MapState(n, ro, scheduler.NewScratch,
		func(k int, scr *scheduler.Scratch) ([]float64, error) {
			local, err := freshSchedulers(res.Schedulers)
			if err != nil {
				return nil, err
			}
			inst := gen(subs[k])
			out := scr.AcquireSchedule()
			defer scr.ReleaseSchedule(out)
			ms := make([]float64, len(local))
			for i, s := range local {
				if err := scheduler.ScheduleInto(s, inst, scr, out); err != nil {
					return nil, err
				}
				ms[i] = out.Makespan()
			}
			return ms, nil
		})
	if err != nil {
		return nil, err
	}
	for _, ms := range cells {
		if ms == nil {
			continue // another shard's sample; a full run never skips
		}
		for i, name := range res.Schedulers {
			res.Makespans[name] = append(res.Makespans[name], ms[i])
		}
	}
	for _, name := range res.Schedulers {
		res.Summaries[name] = stats.Summarize(res.Makespans[name])
	}
	return res, nil
}

// robustCell is one jitter sample of a robustness sweep.
type robustCell struct {
	Static   float64 `json:"static"`
	Adaptive float64 `json:"adaptive"`
}

// RobustnessParallel computes the same result as Robustness using up to
// workers goroutines (0 = GOMAXPROCS), one cell per jitter sample. The
// scheduler must be registry-instantiable so each worker re-plans with
// its own copy.
func RobustnessParallel(inst *graph.Instance, s scheduler.Scheduler, sigma float64, n int, seed uint64, workers int) (*RobustnessResult, error) {
	return RobustnessRun(inst, s, sigma, n, seed, runner.Options{Workers: workers})
}

// RobustnessRun is RobustnessParallel with full runner control: progress
// callbacks and a checkpoint store for resumable jitter sweeps (each
// cell is a (static, adaptive) makespan pair).
func RobustnessRun(inst *graph.Instance, s scheduler.Scheduler, sigma float64, n int, seed uint64, ro runner.Options) (*RobustnessResult, error) {
	nominal, err := s.Schedule(inst)
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{Scheduler: s.Name(), Nominal: nominal.Makespan()}
	subs := splitStreams(seed, n)
	cells, err := runner.MapState(n, ro, scheduler.NewScratch,
		func(k int, scr *scheduler.Scratch) (robustCell, error) {
			local, err := scheduler.New(s.Name())
			if err != nil {
				return robustCell{}, err
			}
			j := Jitter(inst, sigma, subs[k])
			m, err := Replay(j, nominal)
			if err != nil {
				return robustCell{}, err
			}
			re := scr.AcquireSchedule()
			defer scr.ReleaseSchedule(re)
			if err := scheduler.ScheduleInto(local, j, scr, re); err != nil {
				return robustCell{}, err
			}
			return robustCell{Static: m, Adaptive: re.Makespan()}, nil
		})
	if err != nil {
		return nil, err
	}
	static := make([]float64, 0, n)
	adaptive := make([]float64, 0, n)
	for k, c := range cells {
		if !ro.Owns(k) {
			continue // summaries over this run's samples only
		}
		if ro.OnCellError != nil && c == (robustCell{}) {
			continue // the failure was reported; keep it out of the summary
		}
		static = append(static, c.Static)
		adaptive = append(adaptive, c.Adaptive)
	}
	res.Static = stats.Summarize(static)
	res.Adaptive = stats.Summarize(adaptive)
	return res, nil
}

// minmax folds values into a running (min, max) pair.
func minmax(lo, hi float64, vs ...float64) (float64, float64) {
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// appBenchCell is one benchmarking instance of an application-specific
// block: the per-scheduler ratios plus the observed weight ranges that
// shape the structure-preserving perturbation space.
type appBenchCell struct {
	Ratios                       []float64
	TaskLo, TaskHi, DepLo, DepHi float64
	SpeedLo, SpeedHi             float64
}

// AppSpecificParallel computes the same result as AppSpecific using up
// to workers goroutines (0 = GOMAXPROCS): the benchmarking instances and
// the PISA pairs are both fanned out. Range merging uses min/max only,
// so the assembled perturbation space — and with it every PISA cell — is
// bit-identical to the sequential driver.
func AppSpecificParallel(scheds []scheduler.Scheduler, opts AppSpecificOptions, workers int) (*AppSpecificResult, error) {
	return AppSpecificRun(scheds, opts, runner.Options{Workers: workers})
}

// AppSpecificRun is AppSpecificParallel with full runner control. The
// driver runs two sweeps — benchmarking, then PISA — against one
// checkpoint store by giving the PISA sweep a disjoint index window
// (runner.OffsetCheckpoint), so both phases of an interrupted block
// resume.
func AppSpecificRun(scheds []scheduler.Scheduler, opts AppSpecificOptions, ro runner.Options) (*AppSpecificResult, error) {
	n := len(scheds)
	res := &AppSpecificResult{
		Workflow:  opts.Workflow,
		CCR:       opts.CCR,
		Benchmark: make([]float64, n),
		Ratios:    make([][]float64, n),
		Instances: make([][]*graph.Instance, n),
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	for i := range res.Ratios {
		res.Ratios[i] = make([]float64, n)
		res.Instances[i] = make([]*graph.Instance, n)
		for j := range res.Ratios[i] {
			res.Ratios[i][j] = -1
		}
	}

	// Benchmarking row + observed weight ranges, one cell per instance.
	// This phase always runs unsharded and unleased: the merged min/max
	// ranges below parameterize every PISA cell's perturbation space, so
	// each shard (or coordinator worker) needs all of them to stay
	// bit-identical to the sequential reference. The cells are
	// deterministic, so the identical copies the shards store are
	// deduplicated by serialize.MergeCheckpoints (and by the
	// coordinator's commit dedup). A bench-cell failure is never routed
	// through OnCellError either — a missing range sample would silently
	// reshape every PISA cell, so it must abort this run instead.
	benchRO := ro
	benchRO.Shard = runner.ShardSpec{}
	benchRO.Include = nil
	benchRO.OnCellError = nil
	nBench := opts.BenchmarkInstances
	if nBench <= 0 {
		nBench = 20
	}
	subs := splitStreams(opts.Anneal.Seed^0xA99, nBench)
	benchCells, err := runner.Map(nBench, benchRO,
		func(k int) (appBenchCell, error) {
			local, err := freshSchedulers(res.Schedulers)
			if err != nil {
				return appBenchCell{}, err
			}
			inst := appInstance(opts.Workflow, opts.CCR, subs[k])
			c := appBenchCell{
				TaskLo: math.Inf(1), TaskHi: math.Inf(-1),
				DepLo: math.Inf(1), DepHi: math.Inf(-1),
				SpeedLo: math.Inf(1), SpeedHi: math.Inf(-1),
			}
			for _, t := range inst.Graph.Tasks {
				c.TaskLo, c.TaskHi = minmax(c.TaskLo, c.TaskHi, t.Cost)
			}
			for _, succ := range inst.Graph.Succ {
				for _, d := range succ {
					c.DepLo, c.DepHi = minmax(c.DepLo, c.DepHi, d.Cost)
				}
			}
			for _, sp := range inst.Net.Speeds {
				c.SpeedLo, c.SpeedHi = minmax(c.SpeedLo, c.SpeedHi, sp)
			}
			ratios, err := MakespanRatioAgainstBest(inst, local)
			if err != nil {
				return appBenchCell{}, err
			}
			c.Ratios = make([]float64, len(local))
			for i, s := range local {
				c.Ratios[i] = ratios[s.Name()]
			}
			return c, nil
		})
	if err != nil {
		return nil, err
	}
	taskRange := [2]float64{math.Inf(1), math.Inf(-1)}
	depRange := [2]float64{math.Inf(1), math.Inf(-1)}
	speedRange := [2]float64{math.Inf(1), math.Inf(-1)}
	for _, c := range benchCells {
		taskRange[0], taskRange[1] = minmax(taskRange[0], taskRange[1], c.TaskLo, c.TaskHi)
		depRange[0], depRange[1] = minmax(depRange[0], depRange[1], c.DepLo, c.DepHi)
		speedRange[0], speedRange[1] = minmax(speedRange[0], speedRange[1], c.SpeedLo, c.SpeedHi)
		for j, v := range c.Ratios {
			if v > res.Benchmark[j] {
				res.Benchmark[j] = v
			}
		}
	}

	// PISA grid with the application-specific PERTURB implementation.
	// Its checkpoint window starts past the benchmarking sweep's cells so
	// one store serves both phases.
	if n < 2 {
		return res, nil
	}
	pisaRO := ro
	if pisaRO.Checkpoint != nil {
		pisaRO.Checkpoint = runner.OffsetCheckpoint(ro.Checkpoint, nBench)
	}
	// Include and OnCellError address cells in *store* index space (the
	// space leases and shard stores share), so the PISA phase — whose
	// Map-local cell k lives at store index k+nBench — translates both,
	// exactly mirroring the OffsetCheckpoint window above.
	if ro.Include != nil {
		pisaRO.Include = func(k int) bool { return ro.Include(k + nBench) }
	}
	if ro.OnCellError != nil {
		pisaRO.OnCellError = func(k int, err error) { ro.OnCellError(k+nBench, err) }
	}
	baseSeed := opts.Anneal.Seed
	pisaCells, err := runner.MapState(n*(n-1), pisaRO, scheduler.NewScratch,
		func(k int, scr *scheduler.Scratch) (pisaCell, error) {
			i, j := runner.OffDiagonal(k, n)
			base, err := scheduler.New(res.Schedulers[i])
			if err != nil {
				return pisaCell{}, err
			}
			target, err := scheduler.New(res.Schedulers[j])
			if err != nil {
				return pisaCell{}, err
			}
			ao := opts.Anneal
			ao.Seed = runner.CellSeed(baseSeed, k)
			ao.InitialInstance = func(rr *rng.RNG) *graph.Instance {
				return appInstance(opts.Workflow, opts.CCR, rr)
			}
			ao.Perturb = core.PerturbOptions{
				Step:              0.1,
				TaskCost:          taskRange,
				DepCost:           depRange,
				Speed:             speedRange,
				FixLinks:          true,
				FixStructure:      true,
				KeepPinnedWeights: true,
			}
			ao.Scratch = scr
			pr, err := core.Run(target, base, ao)
			if err != nil {
				return pisaCell{}, err
			}
			raw, err := serialize.MarshalInstance(pr.Best)
			if err != nil {
				return pisaCell{}, err
			}
			return pisaCell{Ratio: pr.BestRatio, Instance: raw}, nil
		})
	if err != nil {
		return nil, err
	}
	for k, c := range pisaCells {
		if len(c.Instance) == 0 {
			if pisaRO.Owns(k) && ro.OnCellError == nil {
				return nil, fmt.Errorf("experiments: cell %d has no instance", k)
			}
			continue // another shard's/lease's cell, or a reported failure
		}
		i, j := runner.OffDiagonal(k, n)
		inst, err := serialize.UnmarshalInstance(c.Instance)
		if err != nil {
			return nil, fmt.Errorf("experiments: cell (%d,%d): %w", i, j, err)
		}
		res.Ratios[i][j] = c.Ratio
		res.Instances[i][j] = inst
	}
	return res, nil
}

// SelectPortfolioParallel computes the same result as SelectPortfolio
// using up to workers goroutines (0 = GOMAXPROCS), one cell per smallest
// portfolio member. Cells are merged in first-member order with the same
// strict-improvement rule the sequential enumeration applies, so ties
// resolve identically.
func SelectPortfolioParallel(schedulers []string, ratios [][]float64, k, workers int) (*PortfolioResult, error) {
	n := len(schedulers)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("experiments: portfolio size %d outside [1, %d]", k, n)
	}
	if len(ratios) != n {
		return nil, fmt.Errorf("experiments: ratio grid has %d rows for %d schedulers", len(ratios), n)
	}
	type candidate struct {
		Members []int
		Worst   float64
	}
	cells, err := runner.Map(n-k+1, runner.Options{Workers: workers}, func(j0 int) (candidate, error) {
		best := candidate{Worst: math.Inf(1)}
		subset := make([]int, k)
		subset[0] = j0
		var recurse func(start, depth int)
		recurse = func(start, depth int) {
			if depth == k {
				if worst := subsetWorstRatio(ratios, subset); worst < best.Worst {
					best.Members = append([]int(nil), subset...)
					best.Worst = worst
				}
				return
			}
			for j := start; j <= n-(k-depth); j++ {
				subset[depth] = j
				recurse(j+1, depth+1)
			}
		}
		recurse(j0+1, 1)
		return best, nil
	})
	if err != nil {
		return nil, err
	}
	best := candidate{Worst: math.Inf(1)}
	for _, c := range cells {
		if c.Worst < best.Worst {
			best = c
		}
	}
	res := &PortfolioResult{WorstRatio: best.Worst}
	res.Members = make([]string, k)
	for i, j := range best.Members {
		res.Members[i] = schedulers[j]
	}
	sort.Strings(res.Members)
	return res, nil
}
