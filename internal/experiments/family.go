package experiments

import (
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	"saga/internal/stats"
)

// FamilyResult holds the Fig 7b/8b data: every scheduler's makespan on
// each sampled instance of a task-graph family, plus five-number
// summaries (the paper shows these as box plots).
type FamilyResult struct {
	Schedulers []string
	Makespans  map[string][]float64
	Summaries  map[string]stats.Summary
}

// Family reproduces the Section VI-B family studies (Figs 7 and 8):
// sample n instances from the generator and record each scheduler's
// makespan on every instance. It is the sequential reference for
// FamilyParallel.
func Family(gen func(*rng.RNG) *graph.Instance, scheds []scheduler.Scheduler, n int, seed uint64) (*FamilyResult, error) {
	res := &FamilyResult{
		Makespans: map[string][]float64{},
		Summaries: map[string]stats.Summary{},
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		inst := gen(r.Split())
		for _, s := range scheds {
			sch, err := s.Schedule(inst)
			if err != nil {
				return nil, err
			}
			res.Makespans[s.Name()] = append(res.Makespans[s.Name()], sch.Makespan())
		}
	}
	for _, s := range scheds {
		res.Summaries[s.Name()] = stats.Summarize(res.Makespans[s.Name()])
	}
	return res, nil
}
