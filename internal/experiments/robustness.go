package experiments

import (
	"fmt"
	"slices"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
	"saga/internal/stats"
)

// Jitter returns a copy of the instance whose task costs and dependency
// data sizes are multiplied by independent clipped-gaussian factors
// ~N(1, sigma) clipped to [0.1, 1.9]. Network weights are left alone:
// this models run-time cost uncertainty for a fixed platform, the
// simplest form of the stochastic problem instances the paper's
// conclusion proposes.
func Jitter(inst *graph.Instance, sigma float64, r *rng.RNG) *graph.Instance {
	out := inst.Clone()
	for t := range out.Graph.Tasks {
		out.Graph.Tasks[t].Cost *= r.ClippedGaussian(1, sigma, 0.1, 1.9)
	}
	for _, d := range out.Graph.Deps() {
		c, _ := out.Graph.DepCost(d[0], d[1])
		out.Graph.SetDepCost(d[0], d[1], c*r.ClippedGaussian(1, sigma, 0.1, 1.9))
	}
	return out
}

// Replay evaluates a committed schedule under different costs: it keeps
// the nominal schedule's node assignments and per-node execution order
// and recomputes start times on the jittered instance (every task starts
// as soon as its inputs arrive and its node is free). This is how a
// static (compile-time) schedule actually behaves when run-time costs
// deviate from estimates. It returns the resulting makespan.
func Replay(jittered *graph.Instance, nominal *schedule.Schedule) (float64, error) {
	g := jittered.Graph
	if len(nominal.ByTask) != g.NumTasks() {
		return 0, fmt.Errorf("experiments: schedule covers %d tasks, instance has %d",
			len(nominal.ByTask), g.NumTasks())
	}
	// Per-node execution order from the nominal schedule.
	perNode := make([][]int, jittered.Net.NumNodes())
	type ta struct {
		task  int
		start float64
	}
	tmp := make([][]ta, jittered.Net.NumNodes())
	for t, a := range nominal.ByTask {
		if a.Node < 0 || a.Node >= jittered.Net.NumNodes() {
			return 0, fmt.Errorf("experiments: task %d assigned to invalid node %d", t, a.Node)
		}
		tmp[a.Node] = append(tmp[a.Node], ta{task: t, start: a.Start})
	}
	for v := range tmp {
		slices.SortFunc(tmp[v], func(a, b ta) int {
			switch {
			case a.start < b.start:
				return -1
			case a.start > b.start:
				return 1
			}
			return a.task - b.task
		})
		for _, x := range tmp[v] {
			perNode[v] = append(perNode[v], x.task)
		}
	}

	// Longest-path over the union of precedence edges and node-order
	// edges. Process tasks in an order satisfying both.
	finish := make([]float64, g.NumTasks())
	done := make([]bool, g.NumTasks())
	nodePos := make([]int, jittered.Net.NumNodes())
	nodeFree := make([]float64, jittered.Net.NumNodes())
	remaining := g.NumTasks()
	for remaining > 0 {
		progressed := false
		for v := range perNode {
			for nodePos[v] < len(perNode[v]) {
				t := perNode[v][nodePos[v]]
				ready := nodeFree[v]
				ok := true
				for _, d := range g.Pred[t] {
					u := d.To
					if !done[u] {
						ok = false
						break
					}
					arrive := finish[u] + jittered.CommTime(u, t, nominal.ByTask[u].Node, v)
					if arrive > ready {
						ready = arrive
					}
				}
				if !ok {
					break
				}
				finish[t] = ready + jittered.ExecTime(t, v)
				done[t] = true
				nodeFree[v] = finish[t]
				nodePos[v]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return 0, fmt.Errorf("experiments: replay deadlock (node order inconsistent with precedence)")
		}
	}
	m := 0.0
	for _, f := range finish {
		if f > m {
			m = f
		}
	}
	return m, nil
}

// RobustnessResult summarizes a scheduler's behaviour under cost jitter.
type RobustnessResult struct {
	Scheduler string
	// Nominal is the makespan on the unjittered instance.
	Nominal float64
	// Static summarizes replayed makespans of the nominal schedule on
	// jittered instances (the schedule is committed, costs move).
	Static stats.Summary
	// Adaptive summarizes makespans when the scheduler re-plans on each
	// jittered instance (a clairvoyant re-scheduling upper baseline).
	Adaptive stats.Summary
}

// Robustness samples n jittered variants of the instance and reports how
// the scheduler's committed schedule degrades (Static) versus full
// re-planning (Adaptive). It is the sequential reference for
// RobustnessParallel.
func Robustness(inst *graph.Instance, s scheduler.Scheduler, sigma float64, n int, seed uint64) (*RobustnessResult, error) {
	nominal, err := s.Schedule(inst)
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{Scheduler: s.Name(), Nominal: nominal.Makespan()}
	r := rng.New(seed)
	var static, adaptive []float64
	for i := 0; i < n; i++ {
		j := Jitter(inst, sigma, r.Split())
		m, err := Replay(j, nominal)
		if err != nil {
			return nil, err
		}
		static = append(static, m)
		re, err := s.Schedule(j)
		if err != nil {
			return nil, err
		}
		adaptive = append(adaptive, re.Makespan())
	}
	res.Static = stats.Summarize(static)
	res.Adaptive = stats.Summarize(adaptive)
	return res, nil
}
