package experiments

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/rng"
	"saga/internal/scheduler"
	"saga/internal/serialize"
)

// workerCounts is the grid every determinism test sweeps: strictly
// sequential, a fixed small pool, and whatever the host offers. Each
// parallel result must be bit-identical (float ==, no tolerance) to the
// sequential reference driver.
var workerCounts = []int{1, 4, 0 /* GOMAXPROCS */}

func workerLabel(w int) string {
	if w == 0 {
		return "gomaxprocs"
	}
	return string(rune('0' + w))
}

func TestBenchmarkingDeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "WBA"), mustSched(t, "FastestNode"),
	}
	names := []string{"chains", "in_trees", "out_trees", "etl", "cycles"}
	seq, err := Benchmarking(names, scheds, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		t.Run("workers="+workerLabel(w), func(t *testing.T) {
			par, err := BenchmarkingParallel(names, scheds, 4, 11, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, ds := range names {
				for _, s := range seq.Schedulers {
					a, b := seq.Cells[ds][s], par.Cells[ds][s]
					if a != b {
						t.Fatalf("%s/%s: sequential %+v, parallel %+v", ds, s, a, b)
					}
				}
			}
		})
	}
}

func TestPairwisePISADeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "MinMin"),
	}
	opts := PairwiseOptions{Anneal: smallAnneal(60)}
	seq, err := PairwisePISA(scheds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		t.Run("workers="+workerLabel(w), func(t *testing.T) {
			par, err := PairwisePISAParallel(scheds, opts, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq.Ratios {
				for j := range seq.Ratios[i] {
					if seq.Ratios[i][j] != par.Ratios[i][j] {
						t.Fatalf("cell (%d,%d): sequential %v, parallel %v",
							i, j, seq.Ratios[i][j], par.Ratios[i][j])
					}
					if i == j {
						continue
					}
					// The adversarial instances themselves must survive
					// the parallel path (and its serialize round trip)
					// bit-for-bit.
					a, err := serialize.MarshalInstance(seq.Instances[i][j])
					if err != nil {
						t.Fatal(err)
					}
					b, err := serialize.MarshalInstance(par.Instances[i][j])
					if err != nil {
						t.Fatal(err)
					}
					if string(a) != string(b) {
						t.Fatalf("cell (%d,%d): adversarial instances differ", i, j)
					}
				}
			}
			for j := range seq.Worst {
				if seq.Worst[j] != par.Worst[j] {
					t.Fatalf("Worst[%d]: sequential %v, parallel %v", j, seq.Worst[j], par.Worst[j])
				}
			}
		})
	}
}

func TestFamilyDeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "CPoP"), mustSched(t, "HEFT"), mustSched(t, "WBA")}
	seq, err := Family(datasets.Fig7Instance, scheds, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		t.Run("workers="+workerLabel(w), func(t *testing.T) {
			par, err := FamilyParallel(datasets.Fig7Instance, scheds, 40, 9, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range seq.Schedulers {
				if len(par.Makespans[name]) != len(seq.Makespans[name]) {
					t.Fatalf("%s: %d samples, want %d", name, len(par.Makespans[name]), len(seq.Makespans[name]))
				}
				for i := range seq.Makespans[name] {
					if seq.Makespans[name][i] != par.Makespans[name][i] {
						t.Fatalf("%s sample %d: sequential %v, parallel %v",
							name, i, seq.Makespans[name][i], par.Makespans[name][i])
					}
				}
				if seq.Summaries[name] != par.Summaries[name] {
					t.Fatalf("%s summary: sequential %+v, parallel %+v",
						name, seq.Summaries[name], par.Summaries[name])
				}
			}
		})
	}
}

func TestRobustnessDeterminism(t *testing.T) {
	inst := datasets.Fig1Instance()
	s := mustSched(t, "HEFT")
	seq, err := Robustness(inst, s, 0.2, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		t.Run("workers="+workerLabel(w), func(t *testing.T) {
			par, err := RobustnessParallel(inst, s, 0.2, 30, 5, w)
			if err != nil {
				t.Fatal(err)
			}
			if *seq != *par {
				t.Fatalf("sequential %+v, parallel %+v", seq, par)
			}
		})
	}
}

func TestAppSpecificDeterminism(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "FastestNode"),
	}
	opts := AppSpecificOptions{
		Workflow:           "blast",
		CCR:                1.0,
		BenchmarkInstances: 4,
		Anneal:             smallAnneal(3),
	}
	opts.Anneal.MaxIters = 40
	seq, err := AppSpecific(scheds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		t.Run("workers="+workerLabel(w), func(t *testing.T) {
			par, err := AppSpecificParallel(scheds, opts, w)
			if err != nil {
				t.Fatal(err)
			}
			for j := range seq.Benchmark {
				if seq.Benchmark[j] != par.Benchmark[j] {
					t.Fatalf("Benchmark[%d]: sequential %v, parallel %v",
						j, seq.Benchmark[j], par.Benchmark[j])
				}
			}
			for i := range seq.Ratios {
				for j := range seq.Ratios[i] {
					if seq.Ratios[i][j] != par.Ratios[i][j] {
						t.Fatalf("cell (%d,%d): sequential %v, parallel %v",
							i, j, seq.Ratios[i][j], par.Ratios[i][j])
					}
				}
			}
		})
	}
}

func TestSelectPortfolioDeterminism(t *testing.T) {
	// A synthetic 15×15 grid with deliberate near-ties exercises the
	// merge order of the parallel subset enumeration.
	n := 15
	names := make([]string, n)
	ratios := make([][]float64, n)
	r := rng.New(77)
	for i := range ratios {
		names[i] = string(rune('A' + i))
		ratios[i] = make([]float64, n)
		for j := range ratios[i] {
			if i == j {
				ratios[i][j] = -1
			} else {
				// Coarse quantization forces equal-score subsets.
				ratios[i][j] = 1 + float64(r.Intn(4))
			}
		}
	}
	seq, err := SelectPortfolio(names, ratios, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		t.Run("workers="+workerLabel(w), func(t *testing.T) {
			par, err := SelectPortfolioParallel(names, ratios, 3, w)
			if err != nil {
				t.Fatal(err)
			}
			if par.WorstRatio != seq.WorstRatio {
				t.Fatalf("worst ratio: sequential %v, parallel %v", seq.WorstRatio, par.WorstRatio)
			}
			if len(par.Members) != len(seq.Members) {
				t.Fatalf("members: sequential %v, parallel %v", seq.Members, par.Members)
			}
			for i := range seq.Members {
				if par.Members[i] != seq.Members[i] {
					t.Fatalf("members: sequential %v, parallel %v", seq.Members, par.Members)
				}
			}
		})
	}
}

func TestSelectPortfolioParallelValidation(t *testing.T) {
	if _, err := SelectPortfolioParallel([]string{"a"}, [][]float64{{-1}}, 2, 0); err == nil {
		t.Fatal("oversized portfolio accepted")
	}
	if _, err := SelectPortfolioParallel([]string{"a", "b"}, [][]float64{{-1, 1}}, 1, 0); err == nil {
		t.Fatal("ragged ratio grid accepted")
	}
}

func TestParallelDriversRequireRegistrySchedulers(t *testing.T) {
	custom := scheduler.Func{SchedName: "not-registered", Fn: nil}
	if _, err := FamilyParallel(datasets.Fig7Instance, []scheduler.Scheduler{custom}, 2, 1, 2); err == nil {
		t.Fatal("unregistered scheduler accepted by FamilyParallel")
	}
	if _, err := BenchmarkingParallel([]string{"chains"}, []scheduler.Scheduler{custom}, 1, 1, 2); err == nil {
		t.Fatal("unregistered scheduler accepted by BenchmarkingParallel")
	}
}
