// Package experiments implements the paper's evaluation drivers: the
// Fig 2 benchmarking grid, the Fig 4 pairwise PISA heatmap, the Fig 7/8
// family studies, and the Section VII application-specific
// benchmarking+PISA grids (Figs 10-19). Each driver returns plain data
// plus labels; package render turns them into the text figures.
//
// Every driver has a parallel counterpart built on runner.Map (see
// parallel.go) whose results are bit-identical to the sequential
// reference for any worker count, and the checkpointable sweeps are
// registered as distributed, shardable jobs in NewSweep (see
// distributed.go) — the shared identity behind `figures -shard`,
// `saga worker`, and `saga merge`.
package experiments

import (
	"fmt"
	"math"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/scheduler"
	"saga/internal/stats"
)

// BenchmarkCell summarizes one (dataset, scheduler) cell of Fig 2: the
// distribution of the scheduler's makespan ratios against the best of all
// schedulers over the dataset's instances.
type BenchmarkCell struct {
	Dataset   string
	Scheduler string
	// Max, Mean and P75 summarize the per-instance makespan ratios (the
	// paper's gradient cells show the distribution; its color scale tops
	// out at the max).
	Max, Mean, P75 float64
}

// BenchmarkResult is the Fig 2 grid.
type BenchmarkResult struct {
	Datasets   []string
	Schedulers []string
	Cells      map[string]map[string]BenchmarkCell // dataset → scheduler → cell
}

// MaxGrid returns the max-ratio matrix indexed [dataset][scheduler],
// ready for render.Grid.
func (r *BenchmarkResult) MaxGrid() [][]float64 {
	out := make([][]float64, len(r.Datasets))
	for i, d := range r.Datasets {
		out[i] = make([]float64, len(r.Schedulers))
		for j, s := range r.Schedulers {
			out[i][j] = r.Cells[d][s].Max
		}
	}
	return out
}

// Benchmarking reproduces Fig 2: run every scheduler on n instances of
// each named dataset and record, per instance, the scheduler's makespan
// ratio against the minimum makespan any scheduler achieved on that
// instance. It is the sequential reference for BenchmarkingParallel. Schedulers that fail on an instance (none of the 15
// experimental algorithms do) are skipped for that instance.
func Benchmarking(datasetNames []string, scheds []scheduler.Scheduler, n int, seed uint64) (*BenchmarkResult, error) {
	res := &BenchmarkResult{
		Datasets: datasetNames,
		Cells:    map[string]map[string]BenchmarkCell{},
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	for _, ds := range datasetNames {
		instances, err := datasets.Dataset(ds, n, seed)
		if err != nil {
			return nil, err
		}
		ratios := make(map[string][]float64, len(scheds))
		for _, inst := range instances {
			makespans := make([]float64, len(scheds))
			best := math.Inf(1)
			for i, s := range scheds {
				sch, err := s.Schedule(inst)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s on %s: %w", s.Name(), ds, err)
				}
				makespans[i] = sch.Makespan()
				if makespans[i] < best {
					best = makespans[i]
				}
			}
			if best == 0 {
				continue
			}
			for i, s := range scheds {
				ratios[s.Name()] = append(ratios[s.Name()], makespans[i]/best)
			}
		}
		res.Cells[ds] = map[string]BenchmarkCell{}
		for _, s := range scheds {
			rs := ratios[s.Name()]
			res.Cells[ds][s.Name()] = BenchmarkCell{
				Dataset:   ds,
				Scheduler: s.Name(),
				Max:       stats.Max(rs),
				Mean:      stats.Mean(rs),
				P75:       stats.Percentile(rs, 75),
			}
		}
	}
	return res, nil
}

// MakespanRatioAgainstBest returns the makespan ratio of each scheduler
// against the best scheduler on the single instance — the per-instance
// quantity Fig 2 aggregates.
func MakespanRatioAgainstBest(inst *graph.Instance, scheds []scheduler.Scheduler) (map[string]float64, error) {
	makespans := map[string]float64{}
	best := math.Inf(1)
	for _, s := range scheds {
		sch, err := s.Schedule(inst)
		if err != nil {
			return nil, err
		}
		makespans[s.Name()] = sch.Makespan()
		if m := sch.Makespan(); m < best {
			best = m
		}
	}
	out := map[string]float64{}
	for n, m := range makespans {
		if best == 0 {
			out[n] = 1
		} else {
			out[n] = m / best
		}
	}
	return out, nil
}
