// The coordinator extension of the distributed protocol lives in
// internal/coord, which imports this package for the sweep registry —
// so its determinism coverage here runs as an external test package.
package experiments_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"saga/internal/coord"
	"saga/internal/coord/faultinject"
	"saga/internal/experiments"
	"saga/internal/runner"
	"saga/internal/serialize"
)

// TestCoordinatedSweepRandomLeaseOrderBitIdentity is the dynamic-lease
// extension of the shard-union determinism tests above (satellite of
// the coordinator PR): the same registered sweep, run through the full
// coordinator protocol — randomized lease orders, several workers, one
// of them killed mid-lease — must land a checkpoint store byte-identical
// to the sequential single-process reference, for every shuffle seed.
func TestCoordinatedSweepRandomLeaseOrderBitIdentity(t *testing.T) {
	params := experiments.SweepParams{N: 16, Seed: 6}
	sw, err := experiments.NewSweep("fig7", params)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	refPath := filepath.Join(dir, "reference.ckpt")
	refCk := serialize.NewCheckpoint(refPath)
	refCk.SetFingerprint(sw.Fingerprint)
	if _, err := refCk.Load(); err != nil {
		t.Fatal(err)
	}
	refCk.SetFlushEvery(sw.Cells + 1)
	if err := sw.Run(runner.Options{Workers: 1, Checkpoint: refCk}); err != nil {
		t.Fatal(err)
	}
	if err := refCk.Flush(); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, shuffleSeed := range []uint64{0, 3, 17} {
		t.Run(fmt.Sprintf("shuffle=%d", shuffleSeed), func(t *testing.T) {
			storePath := filepath.Join(dir, fmt.Sprintf("coord-%d.ckpt", shuffleSeed))
			c, err := coord.New("fig7", params, serialize.NewCheckpoint(storePath), coord.Options{
				LeaseSize:   3,
				LeaseTTL:    300 * time.Millisecond,
				ShuffleSeed: shuffleSeed,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(c)
			defer srv.Close()

			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			plans := []faultinject.Plan{
				{KillAfterCells: 2}, // dies mid-lease; its cells get reclaimed
				{Seed: shuffleSeed + 1, MaxDelay: 10 * time.Millisecond},
				{},
			}
			var wg sync.WaitGroup
			for i, plan := range plans {
				wg.Add(1)
				go func(i int, plan faultinject.Plan) {
					defer wg.Done()
					err := coord.RunWorker(ctx, srv.URL, coord.WorkerOptions{
						Name:         fmt.Sprintf("w%d", i),
						Client:       &http.Client{Transport: plan.Transport(nil)},
						Workers:      1,
						PollInterval: 20 * time.Millisecond,
						OnCellStored: plan.Hook(),
					})
					if err != nil && plan.KillAfterCells <= 0 {
						t.Errorf("worker %d: %v", i, err)
					}
				}(i, plan)
			}
			if err := c.Wait(nil); err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			wg.Wait()
			got, err := os.ReadFile(storePath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("coordinated store diverged from the sequential reference (%d vs %d bytes)", len(got), len(ref))
			}
			// And the coordinated store is interchangeable with the static
			// protocol: a single-process resume loads every cell.
			ck := serialize.NewCheckpoint(storePath)
			ck.SetFingerprint(sw.Fingerprint)
			computed := false
			err = sw.Run(runner.Options{Checkpoint: ck, Progress: func(done, total int) {
				if done != total {
					computed = true
				}
			}})
			if err != nil {
				t.Fatal(err)
			}
			if computed {
				t.Fatal("resume from the coordinated store recomputed cells")
			}
		})
	}
}
