package experiments

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
	"saga/internal/serialize"
)

// This file is the registry behind the distributed sweep protocol: the
// named checkpointable sweeps a `saga worker` process can run one shard
// of, and that `saga merge` and `cmd/figures -checkpoint` address by the
// same fingerprint. Both CLIs build their sweep identity through NewSweep
// so a store written by one is always resumable by the other.

// SweepParams are the CLI-level inputs that identify a distributed
// sweep. They mirror the cmd/figures flags: N is -n (instances or
// samples), Iters/Restarts/Seed the annealing budget and root seed,
// Workflow and CCR the appspecific block. Fields a sweep does not use
// are ignored by it (and excluded from its fingerprint).
type SweepParams struct {
	N        int
	Iters    int
	Restarts int
	Seed     uint64
	Workflow string
	CCR      float64

	// Scheduler, Sigma and InstanceRaw parameterize the robustness sweep
	// (its -scheduler/-sigma flags and the exact bytes of its -in file).
	// InstanceRaw is hashed into the fingerprint, not embedded: resuming
	// after the instance file was regenerated in place must fail loudly
	// instead of mixing cells from two different instances.
	Scheduler   string
	Sigma       float64
	InstanceRaw []byte

	// Schedulers parameterizes the pairwise sweep: the roster whose
	// off-diagonal (target, base) grid it runs. Order matters — cell
	// indices map to pairs through it — so it is part of the
	// fingerprint verbatim.
	Schedulers []string

	// ChainWorkers bounds intra-cell parallelism (core.Options.Workers /
	// GAOptions.Workers) inside every annealing cell. It is deliberately
	// excluded from all fingerprints: results are bit-identical for every
	// value (the parallel chains merge canonically — see internal/core),
	// so stores written at different ChainWorkers are interchangeable.
	// Leave it 0 in sharded workers unless cells outnumber cores locally:
	// runner.Map already uses one goroutine per cell.
	ChainWorkers int
}

// DefaultSweepParams holds the CLI flag defaults both cmd/figures and
// cmd/saga draw from. Centralizing them here keeps the two CLIs'
// fingerprints aligned: if a default drifted, a worker and a figures
// run launched with bare flags would silently address different sweeps.
// (CCR stays 0 — the appspecific block must be chosen explicitly.)
func DefaultSweepParams() SweepParams {
	return SweepParams{N: 20, Iters: 250, Restarts: 3, Seed: 1, Workflow: "srasearch"}
}

// Anneal assembles the annealing options exactly as the single-process
// CLIs do, so a worker shard and a local `figures` run of the same
// parameters compute byte-identical cells.
func (p SweepParams) Anneal() core.Options {
	o := core.DefaultOptions()
	o.MaxIters = p.Iters
	o.Restarts = p.Restarts
	o.Seed = p.Seed
	o.Workers = p.ChainWorkers
	return o
}

// benchInstances resolves N the way AppSpecificRun does (<= 0 means 20),
// so fingerprints and cell counts agree with the driver.
func (p SweepParams) benchInstances() int {
	if p.N <= 0 {
		return 20
	}
	return p.N
}

// Sweep is one named checkpointable sweep. Fingerprint identifies the
// sweep's exact parameters (it deliberately excludes shard identity —
// every shard of one sweep shares it, which is what lets
// serialize.MergeCheckpoints verify the stores belong together and the
// merged store resume an unsharded run). Cells is the total number of
// checkpoint cells a complete store holds, the coverage bound for the
// merge. Run executes the sweep under the given runner options,
// discarding the partial in-memory result — a shard's output is its
// checkpoint store. Run honors ro.Include and ro.OnCellError in
// store-index space (the same global indices ShardSpec and the
// checkpoint key on), which is what lets the internal/coord lease
// protocol restrict a run to leased cells and report per-cell failures
// without any driver cooperation.
type Sweep struct {
	Name        string
	Fingerprint string
	Cells       int
	Run         func(ro runner.Options) error
}

// SweepNames lists the sweeps NewSweep accepts, in CLI help order.
var SweepNames = []string{"fig4", "fig7", "fig8", "appspecific", "robustness", "pairwise"}

// NewSweep resolves a sweep name (a checkpointable cmd/figures driver)
// and its parameters into the fingerprint, cell count, and runnable
// closure shared by `figures -shard`, `saga worker`, and `saga merge`.
func NewSweep(name string, p SweepParams) (*Sweep, error) {
	switch name {
	case "fig4":
		roster := schedulers.ExperimentalNames
		return &Sweep{
			Name: name,
			// The fingerprint covers flags AND roster, since cell indices
			// map to (target, base) pairs through the roster order.
			Fingerprint: fmt.Sprintf("fig4 seed=%d iters=%d restarts=%d schedulers=%s",
				p.Seed, p.Iters, p.Restarts, strings.Join(roster, ",")),
			Cells: len(roster) * (len(roster) - 1),
			Run: func(ro runner.Options) error {
				_, err := PairwisePISARun(schedulers.Experimental(), PairwiseOptions{Anneal: p.Anneal()}, ro)
				return err
			},
		}, nil
	case "fig7", "fig8":
		gen := datasets.Fig7Instance
		if name == "fig8" {
			gen = datasets.Fig8Instance
		}
		scheds, err := familySchedulers()
		if err != nil {
			return nil, err
		}
		return &Sweep{
			Name:        name,
			Fingerprint: fmt.Sprintf("%s seed=%d n=%d schedulers=CPoP,HEFT", name, p.Seed, p.N),
			Cells:       p.N,
			Run: func(ro runner.Options) error {
				_, err := FamilyRun(gen, scheds, p.N, p.Seed, ro)
				return err
			},
		}, nil
	case "appspecific":
		if p.Workflow == "" {
			return nil, fmt.Errorf("experiments: appspecific sweep needs a workflow")
		}
		if p.CCR <= 0 {
			return nil, fmt.Errorf("experiments: appspecific sweep needs a single CCR level > 0 (one store per block)")
		}
		roster := schedulers.AppSpecificNames
		nApp := len(roster)
		return &Sweep{
			Name: name,
			Fingerprint: fmt.Sprintf("appspecific workflow=%s ccr=%g seed=%d n=%d iters=%d restarts=%d schedulers=%s",
				p.Workflow, p.CCR, p.Seed, p.N, p.Iters, p.Restarts, strings.Join(roster, ",")),
			// Benchmarking cells first, then the PISA grid in its
			// disjoint OffsetCheckpoint window.
			Cells: p.benchInstances() + nApp*(nApp-1),
			Run: func(ro runner.Options) error {
				_, err := AppSpecificRun(schedulers.AppSpecific(), AppSpecificOptions{
					Workflow:           p.Workflow,
					CCR:                p.CCR,
					BenchmarkInstances: p.N,
					Anneal:             p.Anneal(),
				}, ro)
				return err
			},
		}, nil
	case "robustness":
		if p.Scheduler == "" {
			return nil, fmt.Errorf("experiments: robustness sweep needs a scheduler")
		}
		if len(p.InstanceRaw) == 0 {
			return nil, fmt.Errorf("experiments: robustness sweep needs the instance bytes (-in)")
		}
		inst, err := serialize.UnmarshalInstance(p.InstanceRaw)
		if err != nil {
			return nil, err
		}
		s, err := scheduler.New(p.Scheduler)
		if err != nil {
			return nil, err
		}
		return &Sweep{
			Name: name,
			// The exact format `saga robustness -checkpoint` has always
			// written: a sharded worker's store is resumable by the
			// single-process command and vice versa. The hash covers the
			// instance bytes, not the file path (see SweepParams).
			Fingerprint: fmt.Sprintf("robustness scheduler=%s in=%x sigma=%g n=%d seed=%d",
				p.Scheduler, sha256.Sum256(p.InstanceRaw), p.Sigma, p.N, p.Seed),
			Cells: p.N,
			Run: func(ro runner.Options) error {
				_, err := RobustnessRun(inst, s, p.Sigma, p.N, p.Seed, ro)
				return err
			},
		}, nil
	case "pairwise":
		// fig4 with a caller-chosen roster: the sweep behind dispatched
		// /v1/portfolio requests (internal/serve), where the client names
		// the schedulers. The fingerprint covers the roster verbatim, so
		// two requests share a sweep exactly when they would compute the
		// same grid.
		if len(p.Schedulers) < 2 {
			return nil, fmt.Errorf("experiments: pairwise sweep needs at least 2 schedulers")
		}
		scheds := make([]scheduler.Scheduler, len(p.Schedulers))
		for i, n := range p.Schedulers {
			s, err := scheduler.New(n)
			if err != nil {
				return nil, err
			}
			scheds[i] = s
		}
		return &Sweep{
			Name: name,
			Fingerprint: fmt.Sprintf("pairwise seed=%d iters=%d restarts=%d schedulers=%s",
				p.Seed, p.Iters, p.Restarts, strings.Join(p.Schedulers, ",")),
			Cells: len(scheds) * (len(scheds) - 1),
			Run: func(ro runner.Options) error {
				_, err := PairwisePISARun(scheds, PairwiseOptions{Anneal: p.Anneal()}, ro)
				return err
			},
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown sweep %q (want one of %s)", name, strings.Join(SweepNames, ", "))
}

// familySchedulers instantiates the fixed CPoP/HEFT pair of the Fig 7/8
// family studies.
func familySchedulers() ([]scheduler.Scheduler, error) {
	out := make([]scheduler.Scheduler, 2)
	for i, n := range []string{"CPoP", "HEFT"} {
		s, err := scheduler.New(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
