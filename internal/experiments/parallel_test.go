package experiments

import (
	"testing"

	"saga/internal/scheduler"
)

func TestPairwisePISAParallelMatchesSequential(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "MinMin"),
	}
	opts := PairwiseOptions{Anneal: smallAnneal(60)}
	seq, err := PairwisePISA(scheds, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := PairwisePISAParallel(scheds, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Ratios {
		for j := range seq.Ratios[i] {
			if seq.Ratios[i][j] != par.Ratios[i][j] {
				t.Fatalf("cell (%d,%d): sequential %v, parallel %v",
					i, j, seq.Ratios[i][j], par.Ratios[i][j])
			}
		}
	}
	for j := range seq.Worst {
		if seq.Worst[j] != par.Worst[j] {
			t.Fatalf("Worst[%d]: sequential %v, parallel %v", j, seq.Worst[j], par.Worst[j])
		}
	}
}

func TestPairwisePISAParallelWorkerCounts(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "FastestNode")}
	opts := PairwiseOptions{Anneal: smallAnneal(40)}
	a, err := PairwisePISAParallel(scheds, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PairwisePISAParallel(scheds, opts, 0) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratios[0][1] != b.Ratios[0][1] || a.Ratios[1][0] != b.Ratios[1][0] {
		t.Fatal("worker count changed results")
	}
}

func TestBenchmarkingParallelMatchesSequential(t *testing.T) {
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "FastestNode"),
	}
	names := []string{"chains", "in_trees", "out_trees", "etl"}
	seq, err := Benchmarking(names, scheds, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BenchmarkingParallel(names, scheds, 3, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range names {
		for _, s := range seq.Schedulers {
			a, b := seq.Cells[ds][s], par.Cells[ds][s]
			if a.Max != b.Max || a.Mean != b.Mean {
				t.Fatalf("%s/%s: sequential %+v, parallel %+v", ds, s, a, b)
			}
		}
	}
}

func TestBenchmarkingParallelPropagatesErrors(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT")}
	if _, err := BenchmarkingParallel([]string{"chains", "bogus"}, scheds, 1, 1, 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPairwisePISAParallelRace(t *testing.T) {
	// Exercised under -race in CI runs; functional assertion here is
	// just completion with a full grid.
	scheds := []scheduler.Scheduler{
		mustSched(t, "HEFT"), mustSched(t, "CPoP"),
		mustSched(t, "MaxMin"), mustSched(t, "OLB"),
	}
	res, err := PairwisePISAParallel(scheds, PairwiseOptions{Anneal: smallAnneal(25)}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ratios {
		for j := range res.Ratios[i] {
			if i != j && res.Ratios[i][j] < 0 {
				t.Fatalf("cell (%d,%d) never computed", i, j)
			}
		}
	}
}
