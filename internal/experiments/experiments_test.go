package experiments

import (
	"math"
	"testing"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
	"saga/internal/stats"
)

func mustSched(t *testing.T, name string) scheduler.Scheduler {
	t.Helper()
	s, err := scheduler.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallAnneal(seed uint64) core.Options {
	o := core.DefaultOptions()
	o.MaxIters = 80
	o.Restarts = 1
	o.Seed = seed
	return o
}

func TestBenchmarkingSmall(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "FastestNode")}
	res, err := Benchmarking([]string{"chains", "in_trees"}, scheds, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 || len(res.Schedulers) != 3 {
		t.Fatalf("grid shape %dx%d", len(res.Datasets), len(res.Schedulers))
	}
	grid := res.MaxGrid()
	for i, ds := range res.Datasets {
		for j, s := range res.Schedulers {
			v := grid[i][j]
			if v < 1-graph.Eps || math.IsNaN(v) {
				t.Fatalf("ratio %v < 1 for %s on %s", v, s, ds)
			}
			cell := res.Cells[ds][s]
			if cell.Mean > cell.Max+graph.Eps || cell.P75 > cell.Max+graph.Eps {
				t.Fatalf("summary inconsistency for %s/%s: %+v", ds, s, cell)
			}
		}
	}
}

func TestBenchmarkingBestSchedulerHasRatioOne(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "FastestNode")}
	inst := datasets.Fig1Instance()
	ratios, err := MakespanRatioAgainstBest(inst, scheds)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, v := range ratios {
		if v < best {
			best = v
		}
	}
	if !graph.ApproxEq(best, 1) {
		t.Fatalf("no scheduler achieved ratio 1: %v", ratios)
	}
}

func TestBenchmarkingUnknownDataset(t *testing.T) {
	if _, err := Benchmarking([]string{"nope"}, schedulers.Experimental(), 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPairwisePISAShape(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "FastestNode")}
	res, err := PairwisePISA(scheds, PairwiseOptions{Anneal: smallAnneal(1)})
	if err != nil {
		t.Fatal(err)
	}
	n := len(scheds)
	if len(res.Ratios) != n {
		t.Fatalf("rows = %d", len(res.Ratios))
	}
	for i := 0; i < n; i++ {
		if res.Ratios[i][i] != -1 {
			t.Fatalf("diagonal (%d,%d) = %v, want -1", i, i, res.Ratios[i][i])
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if res.Ratios[i][j] <= 0 {
				t.Fatalf("cell (%d,%d) = %v", i, j, res.Ratios[i][j])
			}
			if res.Instances[i][j] == nil {
				t.Fatalf("cell (%d,%d) missing instance", i, j)
			}
			if err := res.Instances[i][j].Validate(); err != nil {
				t.Fatalf("cell (%d,%d) instance invalid: %v", i, j, err)
			}
		}
	}
	// Worst row is the column max.
	for j := 0; j < n; j++ {
		max := 0.0
		for i := 0; i < n; i++ {
			if i != j && res.Ratios[i][j] > max {
				max = res.Ratios[i][j]
			}
		}
		if !graph.ApproxEq(res.Worst[j], max) {
			t.Fatalf("Worst[%d] = %v, want %v", j, res.Worst[j], max)
		}
	}
}

func TestPairwisePISARespectsConstraints(t *testing.T) {
	// Any pair involving FCP pins both speeds and links.
	scheds := []scheduler.Scheduler{mustSched(t, "FCP"), mustSched(t, "HEFT")}
	res, err := PairwisePISA(scheds, PairwiseOptions{Anneal: smallAnneal(5)})
	if err != nil {
		t.Fatal(err)
	}
	inst := res.Instances[1][0] // target FCP, base HEFT
	for _, s := range inst.Net.Speeds {
		if s != 1 {
			t.Fatalf("speed %v on FCP-pair instance, want 1", s)
		}
	}
	for u := 0; u < inst.Net.NumNodes(); u++ {
		for v := u + 1; v < inst.Net.NumNodes(); v++ {
			if inst.Net.Links[u][v] != 1 {
				t.Fatalf("link %v on FCP-pair instance, want 1", inst.Net.Links[u][v])
			}
		}
	}
}

func TestSinglePISADefaults(t *testing.T) {
	res, err := SinglePISA(mustSched(t, "HEFT"), mustSched(t, "FastestNode"), smallAnneal(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.BestRatio <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestFamilyFig7Direction(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "CPoP"), mustSched(t, "HEFT")}
	res, err := Family(datasets.Fig7Instance, scheds, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := stats.Mean(res.Makespans["CPoP"])
	h := stats.Mean(res.Makespans["HEFT"])
	if h <= c {
		t.Fatalf("Fig 7 family: HEFT mean %v should exceed CPoP mean %v", h, c)
	}
}

func TestFamilyFig8Direction(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "CPoP"), mustSched(t, "HEFT")}
	res, err := Family(datasets.Fig8Instance, scheds, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := stats.Mean(res.Makespans["CPoP"])
	h := stats.Mean(res.Makespans["HEFT"])
	if c <= h {
		t.Fatalf("Fig 8 family: CPoP mean %v should exceed HEFT mean %v", c, h)
	}
}

func TestFamilySummaries(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT")}
	res, err := Family(datasets.Fig7Instance, scheds, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summaries["HEFT"]
	if s.N != 50 || s.Min > s.Median || s.Median > s.Max {
		t.Fatalf("summary inconsistent: %+v", s)
	}
}

func TestFig3NetworkModification(t *testing.T) {
	heft, cpop := mustSched(t, "HEFT"), mustSched(t, "CPoP")
	orig := datasets.Fig3Instance(false)
	mod := datasets.Fig3Instance(true)
	ho, _ := heft.Schedule(orig)
	co, _ := cpop.Schedule(orig)
	hm, _ := heft.Schedule(mod)
	cm, _ := cpop.Schedule(mod)
	// Original network: HEFT at least as good as CPoP.
	if ho.Makespan() > co.Makespan()+graph.Eps {
		t.Fatalf("original: HEFT %v worse than CPoP %v", ho.Makespan(), co.Makespan())
	}
	// Modified network: HEFT strictly worse than CPoP — the paper's
	// point that a small network change flips the ordering.
	if hm.Makespan() <= cm.Makespan()+graph.Eps {
		t.Fatalf("modified: HEFT %v not worse than CPoP %v", hm.Makespan(), cm.Makespan())
	}
	// CPoP unaffected by the link change (it stays serial).
	if !graph.ApproxEq(co.Makespan(), cm.Makespan()) {
		t.Fatalf("CPoP changed: %v vs %v", co.Makespan(), cm.Makespan())
	}
}

func TestFig5CaseStudy(t *testing.T) {
	heft, cpop := mustSched(t, "HEFT"), mustSched(t, "CPoP")
	inst := datasets.Fig5Instance()
	h, _ := heft.Schedule(inst)
	c, _ := cpop.Schedule(inst)
	ratio := h.Makespan() / c.Makespan()
	// Paper: HEFT ≈ 1.55x worse than CPoP.
	if math.Abs(ratio-1.55) > 0.02 {
		t.Fatalf("Fig 5 ratio = %v, want ≈1.55", ratio)
	}
}

func TestFig6CaseStudy(t *testing.T) {
	heft, cpop := mustSched(t, "HEFT"), mustSched(t, "CPoP")
	inst := datasets.Fig6Instance()
	h, _ := heft.Schedule(inst)
	c, _ := cpop.Schedule(inst)
	ratio := c.Makespan() / h.Makespan()
	// Paper: CPoP ≈ 2.83x worse than HEFT.
	if math.Abs(ratio-2.83) > 0.02 {
		t.Fatalf("Fig 6 ratio = %v, want ≈2.83", ratio)
	}
}

func TestFig1Example(t *testing.T) {
	inst := datasets.Fig1Instance()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range schedulers.Experimental() {
		if _, err := s.Schedule(inst); err != nil {
			t.Fatalf("%s failed on Fig 1: %v", s.Name(), err)
		}
	}
}

func TestAppSpecificSmall(t *testing.T) {
	scheds := []scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "CPoP"), mustSched(t, "FastestNode")}
	ao := smallAnneal(3)
	ao.MaxIters = 40
	res, err := AppSpecific(scheds, AppSpecificOptions{
		Workflow:           "blast",
		CCR:                1.0,
		BenchmarkInstances: 3,
		Anneal:             ao,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmark) != 3 {
		t.Fatalf("benchmark row size %d", len(res.Benchmark))
	}
	foundOne := false
	for _, v := range res.Benchmark {
		if v < 1-graph.Eps {
			t.Fatalf("benchmark ratio %v < 1", v)
		}
		if graph.ApproxEq(v, 1) {
			foundOne = true
		}
	}
	if !foundOne {
		t.Fatal("no scheduler ever achieved the best makespan")
	}
	for i := range res.Ratios {
		for j := range res.Ratios[i] {
			if i == j {
				continue
			}
			inst := res.Instances[i][j]
			if inst == nil {
				t.Fatalf("missing instance at (%d,%d)", i, j)
			}
			if err := inst.Validate(); err != nil {
				t.Fatal(err)
			}
			// Structure-preserving: blast keeps its single source and
			// two sinks (Fig 9b).
			if len(inst.Graph.Sources()) != 1 || len(inst.Graph.Sinks()) != 2 {
				t.Fatalf("app-specific search broke blast's topology")
			}
			// CCR-pinned homogeneous links survive.
			l := inst.Net.Links[0][1]
			for u := 0; u < inst.Net.NumNodes(); u++ {
				for v := u + 1; v < inst.Net.NumNodes(); v++ {
					if inst.Net.Links[u][v] != l {
						t.Fatal("links no longer homogeneous after app-specific PISA")
					}
				}
			}
		}
	}
}

func TestAppSpecificUnknownWorkflow(t *testing.T) {
	defer func() { recover() }() // appInstance panics on bad recipes
	_, err := AppSpecific([]scheduler.Scheduler{mustSched(t, "HEFT"), mustSched(t, "CPoP")},
		AppSpecificOptions{Workflow: "bogus", CCR: 1, BenchmarkInstances: 1, Anneal: smallAnneal(1)})
	if err == nil {
		t.Fatal("unknown workflow accepted")
	}
}

func TestCCRLevelsMatchPaper(t *testing.T) {
	want := []float64{0.2, 0.5, 1, 2, 5}
	if len(CCRLevels) != len(want) {
		t.Fatal("CCR levels changed")
	}
	for i, v := range want {
		if CCRLevels[i] != v {
			t.Fatalf("CCRLevels[%d] = %v, want %v", i, CCRLevels[i], v)
		}
	}
}

func TestCompareSearchMethods(t *testing.T) {
	cmp, err := CompareSearchMethods(mustSched(t, "HEFT"), mustSched(t, "CPoP"), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SARatio <= 0 || cmp.GARatio <= 0 {
		t.Fatalf("ratios: %+v", cmp)
	}
	if cmp.SAEvaluations == 0 || cmp.GAEvaluations == 0 {
		t.Fatalf("evaluation counts missing: %+v", cmp)
	}
	if cmp.Target != "HEFT" || cmp.Base != "CPoP" {
		t.Fatalf("labels: %+v", cmp)
	}
	// Both meta-heuristics must find an instance where HEFT loses (this
	// pair is known to have them, Section VI-B).
	if cmp.SARatio <= 1 && cmp.GARatio <= 1 {
		t.Fatalf("neither search found an adversarial instance: %+v", cmp)
	}
}

func TestCompareSearchMethodsTinyBudget(t *testing.T) {
	if _, err := CompareSearchMethods(mustSched(t, "MCT"), mustSched(t, "HEFT"), 1, 1); err != nil {
		t.Fatal(err)
	}
}
