package experiments

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
)

func TestJitterPreservesStructureAndValidity(t *testing.T) {
	r := rng.New(301)
	inst := datasets.InitialPISAInstance(r.Split())
	j := Jitter(inst, 0.2, r.Split())
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Graph.NumTasks() != inst.Graph.NumTasks() || j.Graph.NumDeps() != inst.Graph.NumDeps() {
		t.Fatal("jitter changed the topology")
	}
	// Network untouched.
	for v := range inst.Net.Speeds {
		if j.Net.Speeds[v] != inst.Net.Speeds[v] {
			t.Fatal("jitter changed node speeds")
		}
	}
	// Original untouched.
	for tk := range inst.Graph.Tasks {
		if inst.Graph.Tasks[tk].Cost < 0 {
			t.Fatal("original corrupted")
		}
	}
}

func TestJitterZeroSigmaIsNearIdentity(t *testing.T) {
	r := rng.New(303)
	inst := datasets.Fig1Instance()
	j := Jitter(inst, 0, r)
	for tk := range inst.Graph.Tasks {
		if !graph.ApproxEq(j.Graph.Tasks[tk].Cost, inst.Graph.Tasks[tk].Cost) {
			t.Fatal("sigma=0 jitter moved a task cost")
		}
	}
}

func TestReplayReproducesNominalMakespan(t *testing.T) {
	// Replaying the nominal schedule on the unjittered instance must
	// reproduce its makespan exactly for every scheduler (start times
	// are all earliest-feasible given assignment and order... for
	// insertion-based schedules the replay is never worse than the
	// recorded makespan).
	for _, inst := range []*graph.Instance{
		datasets.Fig1Instance(),
		datasets.Fig3Instance(true),
		datasets.InitialPISAInstance(rng.New(7)),
	} {
		for _, name := range []string{"HEFT", "CPoP", "MinMin", "OLB", "FastestNode"} {
			s := mustSched(t, name)
			nominal, err := s.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Replay(inst, nominal)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if m > nominal.Makespan()+graph.Eps {
				t.Fatalf("%s: replay %v worse than nominal %v", name, m, nominal.Makespan())
			}
		}
	}
}

func TestReplayScalesWithCosts(t *testing.T) {
	// Doubling every task cost on a communication-free serial schedule
	// doubles the replayed makespan.
	inst := datasets.Fig1Instance()
	s := mustSched(t, "FastestNode")
	nominal, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	doubled := inst.Clone()
	for tk := range doubled.Graph.Tasks {
		doubled.Graph.Tasks[tk].Cost *= 2
	}
	m, err := Replay(doubled, nominal)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(m, 2*nominal.Makespan()) {
		t.Fatalf("replay = %v, want %v", m, 2*nominal.Makespan())
	}
}

func TestReplayRejectsMismatchedSchedule(t *testing.T) {
	inst := datasets.Fig1Instance()
	bad := &schedule.Schedule{NumNodes: 3}
	if _, err := Replay(inst, bad); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
}

func TestRobustnessSummary(t *testing.T) {
	inst := datasets.Fig1Instance()
	res, err := Robustness(inst, mustSched(t, "HEFT"), 0.2, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.N != 40 || res.Adaptive.N != 40 {
		t.Fatalf("sample counts: %d / %d", res.Static.N, res.Adaptive.N)
	}
	if res.Nominal <= 0 {
		t.Fatal("nominal makespan missing")
	}
	// Re-planning with full knowledge of the jittered costs can't be
	// worse on average than replaying the committed schedule.
	if res.Adaptive.Mean > res.Static.Mean+graph.Eps {
		t.Fatalf("adaptive mean %v worse than static mean %v",
			res.Adaptive.Mean, res.Static.Mean)
	}
}
