package experiments

import (
	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// PairwiseResult is the Fig 4 heatmap: Ratios[i][j] is the makespan
// ratio, on the worst-case instance PISA found, of scheduler j (column,
// the analyzed scheduler) against scheduler i (row, the base scheduler).
// The diagonal is -1 (rendered blank). Worst[j] is the maximum of column
// j over all base schedulers — the paper's extra "Worst" row.
type PairwiseResult struct {
	Schedulers []string
	Ratios     [][]float64
	Worst      []float64
	// Instances[i][j] is the adversarial instance behind Ratios[i][j].
	Instances [][]*graph.Instance
}

// PairwiseOptions configures the Fig 4 experiment.
type PairwiseOptions struct {
	// Anneal carries the annealing parameters (restarts, iterations,
	// cooling, seed). Its InitialInstance and Perturb fields are managed
	// per pair by the driver and may be left zero.
	Anneal core.Options
}

// PairwisePISA reproduces Fig 4: for every ordered pair (target A, base
// B) of schedulers, run PISA to find an instance maximizing M_A/M_B.
// Per Section VI, each run restarts from random chain instances, and the
// perturbation space is restricted to the homogeneity requirements of
// the pair: if either scheduler was designed for homogeneous node
// speeds (or links), those weights are pinned to 1. It is the
// sequential reference for PairwisePISAParallel.
func PairwisePISA(scheds []scheduler.Scheduler, opts PairwiseOptions) (*PairwiseResult, error) {
	n := len(scheds)
	res := &PairwiseResult{
		Ratios:    make([][]float64, n),
		Worst:     make([]float64, n),
		Instances: make([][]*graph.Instance, n),
	}
	for _, s := range scheds {
		res.Schedulers = append(res.Schedulers, s.Name())
	}
	for i := range res.Ratios {
		res.Ratios[i] = make([]float64, n)
		res.Instances[i] = make([]*graph.Instance, n)
		for j := range res.Ratios[i] {
			res.Ratios[i][j] = -1
		}
	}

	pairSeed := opts.Anneal.Seed
	for i, base := range scheds { // row: base scheduler
		for j, target := range scheds { // column: analyzed scheduler
			if i == j {
				continue
			}
			pairSeed++
			ao := opts.Anneal
			ao.Seed = pairSeed
			ao.InitialInstance = datasets.InitialPISAInstance
			ao.Perturb = pairPerturb(target, base)
			r, err := core.Run(target, base, ao)
			if err != nil {
				return nil, err
			}
			res.Ratios[i][j] = r.BestRatio
			res.Instances[i][j] = r.Best
			if r.BestRatio > res.Worst[j] {
				res.Worst[j] = r.BestRatio
			}
		}
	}
	return res, nil
}

// pairPerturb builds the Section VI perturbation configuration for a
// pair of schedulers: the union of their homogeneity requirements.
func pairPerturb(a, b scheduler.Scheduler) core.PerturbOptions {
	p := core.DefaultPerturb()
	ra, rb := scheduler.RequirementsOf(a), scheduler.RequirementsOf(b)
	p.FixSpeeds = ra.HomogeneousNodes || rb.HomogeneousNodes
	p.FixLinks = ra.HomogeneousLinks || rb.HomogeneousLinks
	return p
}

// SinglePISA runs PISA for one (target, base) pair with the Section VI
// setup and returns the result — the entry point behind the Fig 5/6 case
// studies and the CLI's pisa subcommand.
func SinglePISA(target, base scheduler.Scheduler, anneal core.Options) (*core.Result, error) {
	if anneal.InitialInstance == nil {
		anneal.InitialInstance = datasets.InitialPISAInstance
	}
	zero := core.PerturbOptions{}
	if anneal.Perturb == zero {
		anneal.Perturb = pairPerturb(target, base)
	}
	return core.Run(target, base, anneal)
}

// RandomChainInstance exposes the Section VI initial-instance generator
// for callers that need it directly.
func RandomChainInstance(r *rng.RNG) *graph.Instance {
	return datasets.InitialPISAInstance(r)
}
