// Package serialize saves and loads problem instances and schedules as
// JSON — the role SAGA's dataset save/load tools play (Section IV-B), so
// adversarial instances discovered by PISA can be published and re-run.
//
// Infinite link strengths (shared-filesystem networks, cloud-cloud
// links) are encoded as the string "inf" since JSON has no infinity
// literal.
//
// The package also owns sweep persistence: Checkpoint is the
// fingerprinted, atomically-rewritten per-cell store behind
// runner.Options.Checkpoint, and MergeCheckpoints combines the per-shard
// stores of a distributed sweep into one. The invariants: a store is
// bound to one sweep's exact parameters by its fingerprint and refuses
// any other; writes are atomic (write-to-temp, rename), so a killed
// sweep never leaves a truncated store; and a merged store is
// indistinguishable from one a single process wrote.
package serialize

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// jsonWeight wraps a float64 that may be +Inf.
type jsonWeight float64

// MarshalJSON implements json.Marshaler.
func (w jsonWeight) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(w), 1) {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(w))
}

// UnmarshalJSON implements json.Unmarshaler.
func (w *jsonWeight) UnmarshalJSON(b []byte) error {
	if string(b) == `"inf"` {
		*w = jsonWeight(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*w = jsonWeight(f)
	return nil
}

type jsonTask struct {
	Name string  `json:"name"`
	Cost float64 `json:"cost"`
}

type jsonDep struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Cost float64 `json:"cost"`
}

type jsonLink struct {
	U        int        `json:"u"`
	V        int        `json:"v"`
	Strength jsonWeight `json:"strength"`
}

type jsonInstance struct {
	Tasks  []jsonTask   `json:"tasks"`
	Deps   []jsonDep    `json:"deps"`
	Speeds []jsonWeight `json:"speeds"`
	Links  []jsonLink   `json:"links"`
}

// MarshalInstance encodes an instance as JSON.
func MarshalInstance(inst *graph.Instance) ([]byte, error) {
	ji := jsonInstance{}
	for _, t := range inst.Graph.Tasks {
		ji.Tasks = append(ji.Tasks, jsonTask{Name: t.Name, Cost: t.Cost})
	}
	for u, succ := range inst.Graph.Succ {
		for _, d := range succ {
			ji.Deps = append(ji.Deps, jsonDep{From: u, To: d.To, Cost: d.Cost})
		}
	}
	for _, s := range inst.Net.Speeds {
		ji.Speeds = append(ji.Speeds, jsonWeight(s))
	}
	for u := 0; u < inst.Net.NumNodes(); u++ {
		for v := u + 1; v < inst.Net.NumNodes(); v++ {
			ji.Links = append(ji.Links, jsonLink{U: u, V: v, Strength: jsonWeight(inst.Net.Links[u][v])})
		}
	}
	return json.MarshalIndent(ji, "", "  ")
}

// UnmarshalInstance decodes an instance from JSON and validates it.
func UnmarshalInstance(data []byte) (*graph.Instance, error) {
	var ji jsonInstance
	if err := json.Unmarshal(data, &ji); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	g := graph.NewTaskGraph()
	for _, t := range ji.Tasks {
		g.AddTask(t.Name, t.Cost)
	}
	for _, d := range ji.Deps {
		if err := g.AddDep(d.From, d.To, d.Cost); err != nil {
			return nil, fmt.Errorf("serialize: %w", err)
		}
	}
	net := graph.NewNetwork(len(ji.Speeds))
	for v, s := range ji.Speeds {
		net.Speeds[v] = float64(s)
	}
	for _, l := range ji.Links {
		if l.U < 0 || l.U >= net.NumNodes() || l.V < 0 || l.V >= net.NumNodes() {
			return nil, fmt.Errorf("serialize: link (%d, %d) out of range", l.U, l.V)
		}
		net.SetLink(l.U, l.V, float64(l.Strength))
	}
	inst := graph.NewInstance(g, net)
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	return inst, nil
}

// SaveInstance writes an instance to path as JSON.
func SaveInstance(path string, inst *graph.Instance) error {
	data, err := MarshalInstance(inst)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadInstance reads an instance from a JSON file.
func LoadInstance(path string) (*graph.Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalInstance(data)
}

type jsonAssignment struct {
	Task  int     `json:"task"`
	Node  int     `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

type jsonSchedule struct {
	NumNodes    int              `json:"num_nodes"`
	Assignments []jsonAssignment `json:"assignments"`
}

// MarshalSchedule encodes a schedule as JSON.
func MarshalSchedule(s *schedule.Schedule) ([]byte, error) {
	js := jsonSchedule{NumNodes: s.NumNodes}
	for _, a := range s.ByTask {
		js.Assignments = append(js.Assignments, jsonAssignment(a))
	}
	return json.MarshalIndent(js, "", "  ")
}

// UnmarshalSchedule decodes a schedule from JSON.
func UnmarshalSchedule(data []byte) (*schedule.Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	s := &schedule.Schedule{NumNodes: js.NumNodes}
	for _, a := range js.Assignments {
		s.ByTask = append(s.ByTask, schedule.Assignment(a))
	}
	return s, nil
}
