package serialize

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointLoadTruncationTorture truncates a real multi-cell
// fingerprinted store at every byte boundary and demands that Load
// either succeeds on the full file or fails with the per-file
// corruption diagnostic — never a panic, never a silently short store.
// This is the failure a coordinator sees when a worker dies while its
// store is being copied off the machine.
func TestCheckpointLoadTruncationTorture(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	const fp = "fig4 seed=1 iters=100"
	ck := NewCheckpoint(full)
	ck.SetFingerprint(fp)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	ck.SetFlushEvery(10)
	for k := 0; k < 8; k++ {
		cell := fmt.Sprintf(`{"makespan":%d.5,"sched":"heft-%d"}`, 100+k, k)
		if err := ck.Store(k, json.RawMessage(cell)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatalf("store implausibly small (%d bytes); torture would prove nothing", len(data))
	}

	trunc := filepath.Join(dir, "trunc.ckpt")
	for n := 0; n <= len(data); n++ {
		if err := os.WriteFile(trunc, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		c := NewCheckpoint(trunc)
		c.SetFingerprint(fp)
		cells, err := c.Load()
		if n == len(data) {
			if err != nil || len(cells) != 8 {
				t.Fatalf("full file failed to load: %d cells, %v", len(cells), err)
			}
			continue
		}
		if err == nil {
			// A strict prefix of a JSON object is never valid JSON, so any
			// clean load of truncated bytes means Load silently accepted a
			// short store.
			t.Fatalf("truncation to %d of %d bytes loaded cleanly (%d cells)", n, len(data), len(cells))
		}
		msg := err.Error()
		if !strings.Contains(msg, trunc) {
			t.Fatalf("truncation to %d bytes: error does not name the file: %v", n, err)
		}
		if !strings.Contains(msg, "corrupt or truncated") {
			t.Fatalf("truncation to %d bytes: error lacks the corruption diagnostic: %v", n, err)
		}
		if !strings.Contains(msg, fmt.Sprintf("(%d bytes)", n)) {
			t.Fatalf("truncation to %d bytes: error does not report the observed size: %v", n, err)
		}
	}
}

// TestPeekFingerprintMatchesLoadDiagnostics pins that the merge-path
// fingerprint probe reports corruption with the same per-file
// diagnostic Load gives, and reads fingerprints without mutating the
// store.
func TestPeekFingerprint(t *testing.T) {
	dir := t.TempDir()
	good := writeShard(t, dir, "good.json", "robustness seed=7", map[int]string{0: `1`})
	fp, err := PeekFingerprint(good)
	if err != nil || fp != "robustness seed=7" {
		t.Fatalf("peek: %q, %v", fp, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"cells":`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = PeekFingerprint(bad)
	if err == nil || !strings.Contains(err.Error(), bad) || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("peek of corrupt store: %v", err)
	}
	if _, err := PeekFingerprint(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("peek of absent store succeeded")
	}
}

// TestMergeCheckpointsFingerprintMismatchNamesBothSweeps pins the
// operator-facing diagnostic: when a foreign shard sneaks into a merge,
// the error must carry the offending path, both full fingerprint
// strings, and — once another shard has matched — the path of a store
// that agrees with the expected sweep, so the operator can tell at a
// glance which file is the odd one out.
func TestMergeCheckpointsFingerprintMismatchNamesBothSweeps(t *testing.T) {
	dir := t.TempDir()
	const want = "fig4 seed=1 iters=100 rho=0.5"
	const got = "fig4 seed=1 iters=500 rho=0.5"
	s0 := writeShard(t, dir, "s0.json", want, map[int]string{0: `1`})
	s1 := writeShard(t, dir, "s1.json", got, map[int]string{1: `2`})
	out := filepath.Join(dir, "merged.json")

	_, err := MergeCheckpoints(out, want, 2, []string{s0, s1})
	if err == nil {
		t.Fatal("foreign shard accepted")
	}
	msg := err.Error()
	for _, needle := range []string{s1, want, got, s0} {
		if !strings.Contains(msg, needle) {
			t.Fatalf("mismatch error missing %q:\n%v", needle, err)
		}
	}
	if strings.Contains(msg[:strings.Index(msg, "was written by")], s0) {
		t.Fatalf("error blames the matching shard, not the foreign one:\n%v", err)
	}

	// When the *first* shard mismatches, no store has vouched for the
	// expected fingerprint yet — the provenance must fall back to the
	// merge's own flags rather than naming a store that was never read.
	_, err = MergeCheckpoints(out, want, 2, []string{s1, s0})
	if err == nil {
		t.Fatal("foreign first shard accepted")
	}
	msg = err.Error()
	for _, needle := range []string{s1, want, got, "flags"} {
		if !strings.Contains(msg, needle) {
			t.Fatalf("first-shard mismatch error missing %q:\n%v", needle, err)
		}
	}
	if strings.Contains(msg, s0) {
		t.Fatalf("error names a shard that was never fingerprint-checked:\n%v", err)
	}
}

// TestStoreDedup pins the coordinator's commit primitive: identical
// duplicate completions are no-ops, disagreeing ones are refused with
// the committed value left untouched.
func TestStoreDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dedup.ckpt")
	ck := NewCheckpoint(path)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	stored, err := ck.StoreDedup(4, json.RawMessage(`{"v":1}`))
	if err != nil || !stored {
		t.Fatalf("first completion: stored=%v, %v", stored, err)
	}
	// A reclaimed lease re-delivering the same bytes must be silent.
	stored, err = ck.StoreDedup(4, json.RawMessage(`{"v":1}`))
	if err != nil || stored {
		t.Fatalf("identical duplicate: stored=%v, %v", stored, err)
	}
	// A disagreeing duplicate is a determinism violation, never an
	// overwrite.
	stored, err = ck.StoreDedup(4, json.RawMessage(`{"v":2}`))
	if err == nil || stored {
		t.Fatalf("conflicting duplicate accepted: stored=%v, %v", stored, err)
	}
	if !strings.Contains(err.Error(), "cell 4") || !strings.Contains(err.Error(), path) {
		t.Fatalf("conflict error lacks cell/path: %v", err)
	}
	cells, err := NewCheckpoint(path).Load()
	if err != nil || string(cells[4]) != `{"v":1}` {
		t.Fatalf("committed value disturbed: %v, %v", cells, err)
	}
}
