package serialize

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Streaming checkpoint store (the scale-tier format).
//
// The legacy JSON store holds every cell of a sweep in one object, so
// writing or merging a store means materializing all of it — fine at
// Table I sizes, not at 10k-cell scale tiers. The stream format is an
// append-only sequence of gzip members whose decompressed content is
// JSON values: first a header object carrying the fingerprint, then one
// record per committed cell. Appends never rewrite earlier bytes, each
// Flush closes a gzip member so everything before it is durable and
// self-delimiting, and readers decode record by record without ever
// holding the whole store.
//
// Format sniffing is by magic bytes: a store starting with 0x1f 0x8b is
// a gzip stream; anything else is the legacy JSON object. Checkpoint
// reads both transparently (Load/PeekFingerprint sniff), and writes the
// stream format whenever its path ends in ".gz" — the format choice
// rides on the path so every existing byte-identity harness that
// compares JSON stores is untouched.

// streamHeader is the first JSON value of a stream store.
type streamHeader struct {
	Fingerprint string `json:"fingerprint"`
}

// streamRecord is one committed cell.
type streamRecord struct {
	Index int             `json:"i"`
	Cell  json.RawMessage `json:"cell"`
}

// isGzip reports whether data begins with the gzip magic bytes.
func isGzip(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

// streamSuffix is the path suffix that opts a Checkpoint into writing
// the stream format.
const streamSuffix = ".gz"

// StoreWriter appends cells to a stream-format checkpoint store without
// holding prior contents. Creating one on a fresh path writes the
// fingerprint header; creating one on an existing stream store verifies
// the fingerprint and appends after the existing members. Append buffers
// into the current gzip member; Flush closes the member, making every
// cell appended so far durable and readable even if the process dies
// before Close. StoreWriter is not safe for concurrent use.
type StoreWriter struct {
	path string
	f    *os.File
	zw   *gzip.Writer
	enc  *json.Encoder
	n    int
}

// NewStoreWriter opens (or creates) the stream store at path for
// appending cells under the given fingerprint.
func NewStoreWriter(path, fingerprint string) (*StoreWriter, error) {
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if !isGzip(data) {
			return nil, fmt.Errorf("serialize: %s is a legacy JSON store — the streaming writer only appends to stream-format (.gz) stores; merge it into a fresh path instead", path)
		}
		got, err := PeekFingerprint(path)
		if err != nil {
			return nil, err
		}
		if got != fingerprint {
			return nil, fmt.Errorf("serialize: checkpoint %s was written by a different sweep (%q, want %q) — delete it or pass a fresh path",
				path, got, fingerprint)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &StoreWriter{path: path, f: f}, nil
	} else if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &StoreWriter{path: path, f: f}
	w.open()
	if err := w.enc.Encode(streamHeader{Fingerprint: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// open starts a fresh gzip member on the underlying file.
func (w *StoreWriter) open() {
	w.zw = gzip.NewWriter(w.f)
	w.enc = json.NewEncoder(w.zw)
}

// Append commits one cell to the store. The write lands in the current
// gzip member and becomes durable at the next Flush (or Close).
func (w *StoreWriter) Append(index int, cell json.RawMessage) error {
	if w.zw == nil {
		w.open()
	}
	w.n++
	return w.enc.Encode(streamRecord{Index: index, Cell: cell})
}

// Cells returns the number of cells appended through this writer.
func (w *StoreWriter) Cells() int { return w.n }

// Flush closes the current gzip member, so every cell appended so far
// survives a crash as a complete, readable store prefix. The next
// Append opens a new member (gzip readers concatenate members
// transparently).
func (w *StoreWriter) Flush() error {
	if w.zw == nil {
		return nil
	}
	err := w.zw.Close()
	w.zw, w.enc = nil, nil
	return err
}

// Close flushes the current member and closes the file.
func (w *StoreWriter) Close() error {
	err := w.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Iter streams the checkpoint store at path — either format — calling
// fn for every cell in on-disk order (ascending index for legacy JSON
// stores, append order for stream stores) and returning the store's
// fingerprint. A stream store is decoded record by record, so the
// store's full contents are never resident; fn's cell slice is only
// valid during the call. Iteration stops at fn's first error, which is
// returned verbatim. A truncated stream store (torn final member) fails
// with the same corrupt-store diagnostics Load gives.
func Iter(path string, fn func(index int, cell json.RawMessage) error) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err != nil || !isGzip(magic) {
		// Legacy JSON store: one object, necessarily materialized.
		data, err := io.ReadAll(br)
		if err != nil {
			return "", err
		}
		var cf checkpointFile
		if err := json.Unmarshal(data, &cf); err != nil {
			return "", corruptErr(path, int64(len(data)), err)
		}
		keys := make([]int, 0, len(cf.Cells))
		byKey := make(map[int]json.RawMessage, len(cf.Cells))
		for key, raw := range cf.Cells {
			k, err := strconv.Atoi(key)
			if err != nil {
				return "", fmt.Errorf("serialize: checkpoint %s: bad cell key %q", path, key)
			}
			keys = append(keys, k)
			byKey[k] = raw
		}
		sort.Ints(keys)
		for _, k := range keys {
			if err := fn(k, byKey[k]); err != nil {
				return cf.Fingerprint, err
			}
		}
		return cf.Fingerprint, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return "", corruptErr(path, fileSize(f), err)
	}
	defer zr.Close()
	dec := json.NewDecoder(zr)
	var hdr streamHeader
	if err := dec.Decode(&hdr); err != nil {
		return "", corruptErr(path, fileSize(f), err)
	}
	for {
		var rec streamRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return hdr.Fingerprint, nil
		} else if err != nil {
			return hdr.Fingerprint, corruptErr(path, fileSize(f), err)
		}
		if err := fn(rec.Index, rec.Cell); err != nil {
			return hdr.Fingerprint, err
		}
	}
}

// corruptErr is the shared diagnostic for unreadable stores in either
// format — the wording operators have learned from the JSON path.
func corruptErr(path string, size int64, err error) error {
	return fmt.Errorf("serialize: checkpoint %s is corrupt or truncated (%d bytes): %w — a crash mid-write? delete it (or restore it from the worker that wrote it) and re-run",
		path, size, err)
}

// fileSize best-effort stats an open file for diagnostics.
func fileSize(f *os.File) int64 {
	if fi, err := f.Stat(); err == nil {
		return fi.Size()
	}
	return -1
}

// loadStream reads a whole stream store into a cell map — the
// Checkpoint.Load path for .gz stores, which still needs the map
// resident for resume and dedup.
func loadStream(path, wantFP string) (map[int]json.RawMessage, error) {
	cells := map[int]json.RawMessage{}
	fp, err := Iter(path, func(index int, cell json.RawMessage) error {
		cells[index] = append(json.RawMessage(nil), cell...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if fp != wantFP {
		return nil, fmt.Errorf("serialize: checkpoint %s was written by a different sweep (%q, want %q) — delete it or pass a fresh path",
			path, fp, wantFP)
	}
	return cells, nil
}

// writeStreamLocked rewrites a whole store in stream format (one gzip
// member, cells ascending by index, temp+rename) — the Checkpoint
// write path for .gz paths. Output bytes are deterministic for a given
// cell set and fingerprint.
func writeStreamLocked(path, fingerprint string, cells map[int]json.RawMessage) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(tmp)
	enc := json.NewEncoder(zw)
	werr := enc.Encode(streamHeader{Fingerprint: fingerprint})
	if werr == nil {
		keys := make([]int, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if werr = enc.Encode(streamRecord{Index: k, Cell: cells[k]}); werr != nil {
				break
			}
		}
	}
	if cerr := zw.Close(); werr == nil {
		werr = cerr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
