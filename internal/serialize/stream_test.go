package serialize

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func iterAll(t *testing.T, path string) (string, map[int]string, []int) {
	t.Helper()
	cells := map[int]string{}
	var order []int
	fp, err := Iter(path, func(k int, raw json.RawMessage) error {
		cells[k] = string(raw)
		order = append(order, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fp, cells, order
}

func TestStoreWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.gz")
	const fp = "sweep seed=7"
	w, err := NewStoreWriter(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := w.Append(k, json.RawMessage(fmt.Sprintf(`{"v":%d}`, k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil { // first member boundary
		t.Fatal(err)
	}
	if err := w.Append(3, json.RawMessage(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	gotFP, cells, order := iterAll(t, path)
	if gotFP != fp {
		t.Fatalf("fingerprint %q, want %q", gotFP, fp)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %v", cells)
	}
	for k := 0; k < 4; k++ {
		if cells[k] != fmt.Sprintf(`{"v":%d}`, k) {
			t.Fatalf("cell %d = %s", k, cells[k])
		}
		if order[k] != k {
			t.Fatalf("iteration order %v, want append order", order)
		}
	}
}

func TestStoreWriterAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.gz")
	const fp = "sweep seed=9"
	w, err := NewStoreWriter(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, json.RawMessage(`"a"`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and append more — the existing members must survive.
	w, err = NewStoreWriter(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, json.RawMessage(`"b"`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, cells, _ := iterAll(t, path)
	if len(cells) != 2 || cells[0] != `"a"` || cells[1] != `"b"` {
		t.Fatalf("cells after reopen = %v", cells)
	}
	// A different sweep's fingerprint is refused on reopen.
	if _, err := NewStoreWriter(path, "sweep seed=10"); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("fingerprint mismatch on reopen: %v", err)
	}
}

func TestStoreWriterRefusesJSONStore(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "legacy.json", "fp", map[int]string{0: `1`})
	if _, err := NewStoreWriter(path, "fp"); err == nil || !strings.Contains(err.Error(), "legacy JSON store") {
		t.Fatalf("want legacy-store refusal, got %v", err)
	}
}

func TestStoreWriterFlushedPrefixSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.gz")
	const fp = "sweep torn"
	w, err := NewStoreWriter(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := w.Append(k, json.RawMessage(`0`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A flushed store read back intact: fine.
	if _, cells, _ := iterAll(t, path); len(cells) != 3 {
		t.Fatalf("cells = %v", cells)
	}
	// Tear the final member mid-way: the store must fail loudly with the
	// corrupt-store diagnostic, not return silently partial data.
	if err := os.WriteFile(path, whole[:len(whole)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Iter(path, func(int, json.RawMessage) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("torn tail error = %v", err)
	}
}

func TestIterReadsLegacyJSONStore(t *testing.T) {
	dir := t.TempDir()
	path := writeShard(t, dir, "legacy.json", "fp legacy", map[int]string{2: `20`, 0: `0`, 1: `10`})
	fp, cells, order := iterAll(t, path)
	if fp != "fp legacy" {
		t.Fatalf("fingerprint %q", fp)
	}
	if len(cells) != 3 || cells[2] != `20` {
		t.Fatalf("cells = %v", cells)
	}
	for i, k := range order {
		if i != k {
			t.Fatalf("legacy iteration order %v, want ascending", order)
		}
	}
}

func TestCheckpointStreamFormatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json.gz")
	const fp = "sweep gz"
	ck := NewCheckpoint(path)
	ck.SetFingerprint(fp)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if err := ck.Store(k, json.RawMessage(fmt.Sprintf(`%d`, k*k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !isGzip(data) {
		t.Fatal("a .gz checkpoint path wrote a non-gzip store")
	}
	if got, err := PeekFingerprint(path); err != nil || got != fp {
		t.Fatalf("PeekFingerprint = %q, %v", got, err)
	}
	// Fresh Checkpoint loads it back.
	ck2 := NewCheckpoint(path)
	ck2.SetFingerprint(fp)
	cells, err := ck2.Load()
	if err != nil || len(cells) != 5 {
		t.Fatalf("reload: %v, %v", cells, err)
	}
	for k := 0; k < 5; k++ {
		if string(cells[k]) != fmt.Sprintf(`%d`, k*k) {
			t.Fatalf("cell %d = %s", k, cells[k])
		}
	}
	// Wrong fingerprint refused, same contract as the JSON format.
	ck3 := NewCheckpoint(path)
	ck3.SetFingerprint("other sweep")
	if _, err := ck3.Load(); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
}

func TestCheckpointStreamWritesDeterministic(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) []byte {
		path := filepath.Join(dir, name)
		ck := NewCheckpoint(path)
		ck.SetFingerprint("fp det")
		ck.SetFlushEvery(100)
		for k := 9; k >= 0; k-- { // insertion order must not leak
			if err := ck.Store(k, json.RawMessage(fmt.Sprintf(`[%d]`, k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ck.Flush(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := write("a.gz")
	b := write("b.gz")
	if !bytes.Equal(a, b) {
		t.Fatal("two identical .gz stores wrote different bytes")
	}
}

func TestMergeCheckpointsMixedFormats(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep mixed"
	// Shard 0 legacy JSON, shard 1 stream format.
	jsonShard := writeShard(t, dir, "s0.json", fp, map[int]string{0: `10`, 2: `12`})
	gzShard := filepath.Join(dir, "s1.gz")
	w, err := NewStoreWriter(gzShard, fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]int{{1, 11}, {3, 13}, {2, 12}} { // 2 duplicates s0, identical
		if err := w.Append(kv[0], json.RawMessage(fmt.Sprintf(`%d`, kv[1]))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, out := range []string{"merged.json", "merged.json.gz"} {
		outPath := filepath.Join(dir, out)
		n, err := MergeCheckpoints(outPath, fp, 4, []string{jsonShard, gzShard})
		if err != nil || n != 4 {
			t.Fatalf("merge to %s: %d, %v", out, n, err)
		}
		_, cells, _ := iterAll(t, outPath)
		if len(cells) != 4 {
			t.Fatalf("%s cells = %v", out, cells)
		}
		for k := 0; k < 4; k++ {
			if cells[k] != fmt.Sprintf("1%d", k) {
				t.Fatalf("%s cell %d = %s", out, k, cells[k])
			}
		}
	}

	// A disagreeing duplicate across formats is still fatal.
	badShard := writeShard(t, dir, "bad.json", fp, map[int]string{1: `999`})
	if _, err := MergeCheckpoints(filepath.Join(dir, "m2.gz"), fp, 4, []string{jsonShard, gzShard, badShard}); err == nil ||
		!strings.Contains(err.Error(), "differs between") {
		t.Fatalf("disagreeing duplicate: %v", err)
	}
}

func TestMergeStreamOutputDeterministic(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep det-merge"
	s0 := writeShard(t, dir, "s0.json", fp, map[int]string{0: `0`, 1: `1`})
	s1 := writeShard(t, dir, "s1.json", fp, map[int]string{2: `2`, 3: `3`})
	outA := filepath.Join(dir, "a.gz")
	outB := filepath.Join(dir, "b.gz")
	if _, err := MergeCheckpoints(outA, fp, 4, []string{s0, s1}); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(outB, fp, 4, []string{s0, s1}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(outA)
	b, _ := os.ReadFile(outB)
	if !bytes.Equal(a, b) {
		t.Fatal("re-merging identical shards wrote different bytes")
	}
}
