package serialize

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"saga/internal/runner"
)

// writeShard builds a shard store at dir/name holding the given cells
// under the given fingerprint.
func writeShard(t *testing.T, dir, name, fingerprint string, cells map[int]string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	ck := NewCheckpoint(path)
	ck.SetFingerprint(fingerprint)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	ck.SetFlushEvery(len(cells) + 1)
	for k, v := range cells {
		if err := ck.Store(k, json.RawMessage(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeCheckpointsCombinesShards(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep seed=1"
	// 6 cells striped over 2 shards, runner.ShardSpec style.
	even := writeShard(t, dir, "s0.json", fp, map[int]string{0: `10`, 2: `12`, 4: `14`})
	odd := writeShard(t, dir, "s1.json", fp, map[int]string{1: `11`, 3: `13`, 5: `15`})
	out := filepath.Join(dir, "merged.json")
	n, err := MergeCheckpoints(out, fp, 6, []string{even, odd})
	if err != nil || n != 6 {
		t.Fatalf("merge: %d, %v", n, err)
	}
	merged := NewCheckpoint(out)
	merged.SetFingerprint(fp)
	cells, err := merged.Load()
	if err != nil || len(cells) != 6 {
		t.Fatalf("merged store: %v, %v", cells, err)
	}
	for k := 0; k < 6; k++ {
		if string(cells[k]) != fmt.Sprintf("1%d", k) {
			t.Fatalf("cell %d = %s", k, cells[k])
		}
	}
	// The merged store carries the sweep fingerprint, so a resume with
	// different parameters still refuses it.
	other := NewCheckpoint(out)
	other.SetFingerprint("sweep seed=2")
	if _, err := other.Load(); err == nil {
		t.Fatal("merged store accepted under a different fingerprint")
	}
}

func TestMergeCheckpointsReportsMissingCells(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep"
	only := writeShard(t, dir, "s0.json", fp, map[int]string{0: `1`, 2: `1`, 5: `1`})
	_, err := MergeCheckpoints(filepath.Join(dir, "m.json"), fp, 6, []string{only})
	if err == nil {
		t.Fatal("partial coverage accepted")
	}
	// The missing cells are named by index so the operator knows which
	// shards to re-run.
	for _, idx := range []string{"1", "3", "4"} {
		if !strings.Contains(err.Error(), idx) {
			t.Fatalf("missing cell %s not reported: %v", idx, err)
		}
	}
}

// TestMergeCheckpointsTruncatesMissingList pins the satellite fix: a
// near-empty shard of a huge sweep reports the first few missing
// indices plus a count, never an error string enumerating every absent
// cell of a 100k-cell grid.
func TestMergeCheckpointsTruncatesMissingList(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep"
	const total = 100_000
	only := writeShard(t, dir, "s0.json", fp, map[int]string{7: `1`, 99_999: `1`})
	_, err := MergeCheckpoints(filepath.Join(dir, "m.json"), fp, total, []string{only})
	if err == nil {
		t.Fatal("partial coverage accepted")
	}
	msg := err.Error()
	if len(msg) > 512 {
		t.Fatalf("missing-cells diagnostic is %d bytes — the list is not truncated:\n%.200s…", len(msg), msg)
	}
	for _, want := range []string{"99998 of 100000 cells missing", "0, 1, 2", "… 99978 more"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic %q missing %q", msg, want)
		}
	}
}

func TestMergeCheckpointsRejectsConflictingDuplicates(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep"
	a := writeShard(t, dir, "a.json", fp, map[int]string{0: `1`, 1: `2`})
	b := writeShard(t, dir, "b.json", fp, map[int]string{1: `999`})
	if _, err := MergeCheckpoints(filepath.Join(dir, "m.json"), fp, 2, []string{a, b}); err == nil {
		t.Fatal("conflicting duplicate cell accepted")
	}
}

func TestMergeCheckpointsAllowsIdenticalDuplicates(t *testing.T) {
	// AppSpecificRun's benchmarking phase runs unsharded in every worker
	// (the PISA perturbation ranges need all of it), so shard stores
	// legitimately overlap there — with byte-identical cells.
	dir := t.TempDir()
	const fp = "sweep"
	a := writeShard(t, dir, "a.json", fp, map[int]string{0: `7`, 1: `8`})
	b := writeShard(t, dir, "b.json", fp, map[int]string{0: `7`, 1: `8`, 2: `9`})
	n, err := MergeCheckpoints(filepath.Join(dir, "m.json"), fp, 3, []string{a, b})
	if err != nil || n != 3 {
		t.Fatalf("identical duplicates rejected: %d, %v", n, err)
	}
}

func TestMergeCheckpointsRejectsForeignStores(t *testing.T) {
	dir := t.TempDir()
	a := writeShard(t, dir, "a.json", "sweep seed=1", map[int]string{0: `1`})
	// Wrong fingerprint.
	if _, err := MergeCheckpoints(filepath.Join(dir, "m.json"), "sweep seed=2", 1, []string{a}); err == nil {
		t.Fatal("foreign fingerprint accepted")
	}
	// Mistyped path must fail loudly, not shrink the merge.
	if _, err := MergeCheckpoints(filepath.Join(dir, "m.json"), "sweep seed=1", 1,
		[]string{a, filepath.Join(dir, "typo.json")}); err == nil {
		t.Fatal("absent shard store accepted")
	}
	// A cell beyond the sweep's size means the parameters are wrong.
	big := writeShard(t, dir, "big.json", "sweep seed=1", map[int]string{7: `1`})
	if _, err := MergeCheckpoints(filepath.Join(dir, "m.json"), "sweep seed=1", 2, []string{a, big}); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	// No shards, or shards with no cells at all, are operator errors.
	if _, err := MergeCheckpoints(filepath.Join(dir, "m.json"), "sweep", 0, nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

// TestMergeCheckpointsAcceptsEmptyShardStore covers a shard that owns
// zero cells (more shards than cells): `saga worker` leaves behind a
// fingerprinted empty store via Touch, and the merge must accept it as
// long as the other shards cover the sweep.
func TestMergeCheckpointsAcceptsEmptyShardStore(t *testing.T) {
	dir := t.TempDir()
	const fp = "sweep"
	full := writeShard(t, dir, "full.json", fp, map[int]string{0: `1`, 1: `2`})
	empty := filepath.Join(dir, "empty.json")
	ck := NewCheckpoint(empty)
	ck.SetFingerprint(fp)
	if err := ck.Touch(); err != nil {
		t.Fatal(err)
	}
	// Touch is idempotent and never truncates an existing store.
	if err := ck.Touch(); err != nil {
		t.Fatal(err)
	}
	n, err := MergeCheckpoints(filepath.Join(dir, "m.json"), fp, 2, []string{full, empty})
	if err != nil || n != 2 {
		t.Fatalf("empty shard store rejected: %d, %v", n, err)
	}
	// The empty store still carries the fingerprint: a foreign merge
	// refuses it.
	if _, err := MergeCheckpoints(filepath.Join(dir, "m2.json"), "other sweep", 2, []string{empty}); err == nil {
		t.Fatal("empty store accepted under a foreign fingerprint")
	}
}

// TestOffsetCheckpointWindows pins the multiplexing contract of
// runner.OffsetCheckpoint over one serialize.Checkpoint store: disjoint
// windows round-trip independently, and overlapping windows collide
// (last write wins) — which is why AppSpecificRun gives each phase a
// disjoint index range.
func TestOffsetCheckpointWindows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.json")
	ck := NewCheckpoint(path)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	w1 := runner.OffsetCheckpoint(ck, 0)
	w2 := runner.OffsetCheckpoint(ck, 4)
	for k := 0; k < 4; k++ {
		if err := w1.Store(k, json.RawMessage(fmt.Sprintf("%d", 100+k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 2; k++ {
		if err := w2.Store(k, json.RawMessage(fmt.Sprintf("%d", 200+k))); err != nil {
			t.Fatal(err)
		}
	}

	// Each window sees its own cells at local indices; the other
	// window's cells land outside [0, n) and are skipped by runner.Map's
	// stale-cell filter.
	cells, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(cells[0]) != "200" || string(cells[1]) != "201" {
		t.Fatalf("window 2 cells: %v", cells)
	}
	if string(cells[-4]) != "100" {
		t.Fatalf("window 1 cell not visible at shifted index: %v", cells)
	}

	// An overlapping window writes into window 1's range: local cell 0
	// at offset 2 is parent cell 2 — a collision, silently overwriting.
	overlap := runner.OffsetCheckpoint(ck, 2)
	if err := overlap.Store(0, json.RawMessage(`999`)); err != nil {
		t.Fatal(err)
	}
	cells, err = w1.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(cells[2]) != "999" {
		t.Fatalf("overlapping window did not collide: cell 2 = %s", cells[2])
	}
}
