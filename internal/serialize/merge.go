package serialize

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// MergeCheckpoints combines the per-shard checkpoint stores of a
// distributed sweep (runner.ShardSpec) into one complete store at
// outPath, which any single-process run of the same sweep can then
// resume from — loading every cell and recomputing nothing.
//
// Every shard store must carry the given fingerprint (the one the
// unsharded sweep would use — shard identity lives in the file path, not
// the fingerprint), so shards of a differently-parameterized sweep are
// refused exactly as a stale resume would be. Cells present in more than
// one store must be byte-identical — shards are deterministic, so any
// disagreement means the stores belong to different sweeps. When total
// is positive the merged store must cover every cell index in
// [0, total); missing cells are reported by index so the operator knows
// which shard to re-run, and cells outside the range are rejected as
// belonging to a different sweep shape.
//
// It returns the number of cells written to the merged store.
func MergeCheckpoints(outPath, fingerprint string, total int, shardPaths []string) (int, error) {
	if len(shardPaths) == 0 {
		return 0, fmt.Errorf("serialize: merge: no shard stores given")
	}
	merged := map[int]json.RawMessage{}
	owner := map[int]string{}
	matched := "" // first store whose fingerprint matched, for diagnostics
	for _, path := range shardPaths {
		if _, err := os.Stat(path); err != nil {
			// Load treats an absent file as an empty store (right for
			// resuming, wrong here: a mistyped shard path must not
			// silently shrink the merge).
			return 0, fmt.Errorf("serialize: merge: shard store %s: %w", path, err)
		}
		// Check the fingerprint before loading so a mismatch names both
		// sweeps and both files: the operator's question is never "is
		// this store wrong" but "which shard came from the wrong sweep",
		// and answering it needs the offending path, the expected
		// fingerprint's provenance, and both fingerprint strings in full.
		got, err := PeekFingerprint(path)
		if err != nil {
			return 0, fmt.Errorf("serialize: merge: %w", err)
		}
		if got != fingerprint {
			source := "the sweep flags given to the merge"
			if matched != "" {
				source = fmt.Sprintf("%s (and the sweep flags)", matched)
			}
			return 0, fmt.Errorf("serialize: merge: fingerprint mismatch: %s was written by sweep\n  %q\nbut %s identifies sweep\n  %q\n— this shard belongs to a different sweep; re-run it with matching flags or drop it from the merge",
				path, got, source, fingerprint)
		}
		matched = path
		ck := NewCheckpoint(path)
		ck.SetFingerprint(fingerprint)
		cells, err := ck.Load()
		if err != nil {
			return 0, fmt.Errorf("serialize: merge: %w", err)
		}
		for k, raw := range cells {
			if total > 0 && (k < 0 || k >= total) {
				return 0, fmt.Errorf("serialize: merge: %s holds cell %d outside the sweep's %d cells — wrong sweep parameters?",
					path, k, total)
			}
			if prev, dup := merged[k]; dup {
				if !bytes.Equal(prev, raw) {
					return 0, fmt.Errorf("serialize: merge: cell %d differs between %s and %s — shards of different sweeps?",
						k, owner[k], path)
				}
				continue
			}
			merged[k] = raw
			owner[k] = path
		}
	}
	if len(merged) == 0 {
		return 0, fmt.Errorf("serialize: merge: shard stores hold no cells")
	}
	if total > 0 && len(merged) < total {
		// Collect only the indices that will be printed: a near-empty
		// shard of a 100k-cell sweep is missing almost everything, and
		// materializing (or rendering) the full index list would turn the
		// diagnostic into a megabyte error string.
		const maxMissingListed = 20
		missing := make([]int, 0, maxMissingListed)
		for k := 0; k < total && len(missing) < maxMissingListed; k++ {
			if _, ok := merged[k]; !ok {
				missing = append(missing, k)
			}
		}
		count := total - len(merged)
		return 0, fmt.Errorf("serialize: merge: %d of %d cells missing (indices %s) — re-run the shards owning them",
			count, total, formatIndices(missing, count))
	}

	out := NewCheckpoint(outPath)
	out.SetFingerprint(fingerprint)
	out.SetFlushEvery(len(merged) + 1) // one atomic write below, not one per cell
	keys := make([]int, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if err := out.Store(k, merged[k]); err != nil {
			return 0, err
		}
	}
	if err := out.Flush(); err != nil {
		return 0, err
	}
	return len(merged), nil
}

// formatIndices renders the listed indices, noting how many of the
// total are elided. The caller bounds ks itself (first N + count), so
// the rendered diagnostic stays small no matter how many cells the
// sweep is missing.
func formatIndices(ks []int, total int) string {
	var b bytes.Buffer
	for i, k := range ks {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", k)
	}
	if rest := total - len(ks); rest > 0 {
		fmt.Fprintf(&b, ", … %d more", rest)
	}
	return b.String()
}
