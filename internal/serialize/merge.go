package serialize

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// mergeCell is the merge's per-index bookkeeping: a content hash for
// duplicate agreement checks and the first shard that supplied the
// cell. Holding hashes instead of payloads keeps the merge's memory
// O(cells · 32 bytes) regardless of cell size, so 10k-cell scale-tier
// stores merge without materializing any shard.
type mergeCell struct {
	hash  [sha256.Size]byte
	owner string
}

// MergeCheckpoints combines the per-shard checkpoint stores of a
// distributed sweep (runner.ShardSpec) into one complete store at
// outPath, which any single-process run of the same sweep can then
// resume from — loading every cell and recomputing nothing. Shards may
// be legacy JSON stores or stream-format (.gz) stores in any mix; the
// output format follows outPath's suffix (".gz" streams, anything else
// writes the legacy JSON object byte-identically to prior releases).
//
// Every shard store must carry the given fingerprint (the one the
// unsharded sweep would use — shard identity lives in the file path, not
// the fingerprint), so shards of a differently-parameterized sweep are
// refused exactly as a stale resume would be. Cells present in more than
// one store must be byte-identical — shards are deterministic, so any
// disagreement means the stores belong to different sweeps. When total
// is positive the merged store must cover every cell index in
// [0, total); missing cells are reported by index so the operator knows
// which shard to re-run, and cells outside the range are rejected as
// belonging to a different sweep shape.
//
// The merge streams shards twice: a first pass verifies fingerprints,
// ranges, and duplicate agreement against content hashes; the second
// pass writes each index's first-seen cell to the output. Cell payloads
// are only ever held one at a time (plus the whole map for a JSON
// output, which that format requires).
//
// It returns the number of cells written to the merged store.
func MergeCheckpoints(outPath, fingerprint string, total int, shardPaths []string) (int, error) {
	if len(shardPaths) == 0 {
		return 0, fmt.Errorf("serialize: merge: no shard stores given")
	}
	seen := map[int]mergeCell{}
	matched := "" // first store whose fingerprint matched, for diagnostics
	for _, path := range shardPaths {
		if _, err := os.Stat(path); err != nil {
			// Iter treats an absent file as an open error already, but the
			// stat keeps the mistyped-path diagnostic first and explicit.
			return 0, fmt.Errorf("serialize: merge: shard store %s: %w", path, err)
		}
		// Check the fingerprint before streaming cells so a mismatch names
		// both sweeps and both files: the operator's question is never "is
		// this store wrong" but "which shard came from the wrong sweep",
		// and answering it needs the offending path, the expected
		// fingerprint's provenance, and both fingerprint strings in full.
		got, err := PeekFingerprint(path)
		if err != nil {
			return 0, fmt.Errorf("serialize: merge: %w", err)
		}
		if got != fingerprint {
			source := "the sweep flags given to the merge"
			if matched != "" {
				source = fmt.Sprintf("%s (and the sweep flags)", matched)
			}
			return 0, fmt.Errorf("serialize: merge: fingerprint mismatch: %s was written by sweep\n  %q\nbut %s identifies sweep\n  %q\n— this shard belongs to a different sweep; re-run it with matching flags or drop it from the merge",
				path, got, source, fingerprint)
		}
		matched = path
		_, err = Iter(path, func(k int, raw json.RawMessage) error {
			if total > 0 && (k < 0 || k >= total) {
				return fmt.Errorf("serialize: merge: %s holds cell %d outside the sweep's %d cells — wrong sweep parameters?",
					path, k, total)
			}
			h := sha256.Sum256(raw)
			if prev, dup := seen[k]; dup {
				if prev.hash != h {
					return fmt.Errorf("serialize: merge: cell %d differs between %s and %s — shards of different sweeps?",
						k, prev.owner, path)
				}
				return nil
			}
			seen[k] = mergeCell{hash: h, owner: path}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	if len(seen) == 0 {
		return 0, fmt.Errorf("serialize: merge: shard stores hold no cells")
	}
	if total > 0 && len(seen) < total {
		// Collect only the indices that will be printed: a near-empty
		// shard of a 100k-cell sweep is missing almost everything, and
		// materializing (or rendering) the full index list would turn the
		// diagnostic into a megabyte error string.
		const maxMissingListed = 20
		missing := make([]int, 0, maxMissingListed)
		for k := 0; k < total && len(missing) < maxMissingListed; k++ {
			if _, ok := seen[k]; !ok {
				missing = append(missing, k)
			}
		}
		count := total - len(seen)
		return 0, fmt.Errorf("serialize: merge: %d of %d cells missing (indices %s) — re-run the shards owning them",
			count, total, formatIndices(missing, count))
	}

	if strings.HasSuffix(outPath, streamSuffix) {
		return len(seen), mergeStreamOut(outPath, fingerprint, seen, shardPaths)
	}
	return len(seen), mergeJSONOut(outPath, fingerprint, seen, shardPaths)
}

// mergeStreamOut writes the merged store in stream format: shards are
// re-streamed in order and each index's first-seen cell (its recorded
// owner) is appended, so no more than one cell payload is resident at
// a time. Output bytes are deterministic for a fixed shard list.
func mergeStreamOut(outPath, fingerprint string, seen map[int]mergeCell, shardPaths []string) error {
	// Write to a temp path and rename, matching the atomicity of every
	// other store write.
	tmp := outPath + ".merge.tmp"
	os.Remove(tmp)
	w, err := NewStoreWriter(tmp, fingerprint)
	if err != nil {
		return err
	}
	for _, path := range shardPaths {
		_, err := Iter(path, func(k int, raw json.RawMessage) error {
			if seen[k].owner != path {
				return nil // a later duplicate; the owner already wrote it
			}
			return w.Append(k, raw)
		})
		if err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, outPath)
}

// mergeJSONOut writes the merged store as the legacy JSON object —
// byte-identical to the pre-streaming merge, which the coordinator's
// byte-equality harnesses compare against. The format stores one object,
// so this path necessarily materializes the merged cells.
func mergeJSONOut(outPath, fingerprint string, seen map[int]mergeCell, shardPaths []string) error {
	merged := make(map[int]json.RawMessage, len(seen))
	for _, path := range shardPaths {
		_, err := Iter(path, func(k int, raw json.RawMessage) error {
			if seen[k].owner == path {
				merged[k] = append(json.RawMessage(nil), raw...)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	out := NewCheckpoint(outPath)
	out.SetFingerprint(fingerprint)
	out.SetFlushEvery(len(merged) + 1) // one atomic write below, not one per cell
	keys := make([]int, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if err := out.Store(k, merged[k]); err != nil {
			return err
		}
	}
	return out.Flush()
}

// formatIndices renders the listed indices, noting how many of the
// total are elided. The caller bounds ks itself (first N + count), so
// the rendered diagnostic stays small no matter how many cells the
// sweep is missing.
func formatIndices(ks []int, total int) string {
	var b bytes.Buffer
	for i, k := range ks {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", k)
	}
	if rest := total - len(ks); rest > 0 {
		fmt.Fprintf(&b, ", … %d more", rest)
	}
	return b.String()
}
