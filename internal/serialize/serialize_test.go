package serialize

import (
	"math"
	"path/filepath"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

func instancesEqual(a, b *graph.Instance) bool {
	if a.Graph.NumTasks() != b.Graph.NumTasks() || a.Graph.NumDeps() != b.Graph.NumDeps() {
		return false
	}
	for i := range a.Graph.Tasks {
		if a.Graph.Tasks[i] != b.Graph.Tasks[i] {
			return false
		}
	}
	for _, d := range a.Graph.Deps() {
		ca, _ := a.Graph.DepCost(d[0], d[1])
		cb, ok := b.Graph.DepCost(d[0], d[1])
		if !ok || ca != cb {
			return false
		}
	}
	if a.Net.NumNodes() != b.Net.NumNodes() {
		return false
	}
	for v := range a.Net.Speeds {
		if a.Net.Speeds[v] != b.Net.Speeds[v] {
			return false
		}
	}
	for u := range a.Net.Links {
		for v := range a.Net.Links[u] {
			la, lb := a.Net.Links[u][v], b.Net.Links[u][v]
			if la != lb && !(math.IsInf(la, 1) && math.IsInf(lb, 1)) {
				return false
			}
		}
	}
	return true
}

func TestInstanceRoundTripRandom(t *testing.T) {
	r := rng.New(201)
	for i := 0; i < 25; i++ {
		inst := datasets.InitialPISAInstance(r.Split())
		data, err := MarshalInstance(inst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalInstance(data)
		if err != nil {
			t.Fatal(err)
		}
		if !instancesEqual(inst, got) {
			t.Fatalf("round trip changed instance %d", i)
		}
	}
}

func TestInstanceRoundTripInfiniteLinks(t *testing.T) {
	g, err := datasets.New("montage") // Chameleon networks: infinite links
	if err != nil {
		t.Fatal(err)
	}
	inst := g.Generate(rng.New(7))
	data, err := MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if !instancesEqual(inst, got) {
		t.Fatal("infinite-link round trip changed the instance")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalInstance([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Structurally invalid: cycle.
	bad := `{"tasks":[{"name":"a","cost":1},{"name":"b","cost":1}],
		"deps":[{"from":0,"to":1,"cost":1},{"from":1,"to":0,"cost":1}],
		"speeds":[1],"links":[]}`
	if _, err := UnmarshalInstance([]byte(bad)); err == nil {
		t.Fatal("cyclic instance accepted")
	}
	// Out-of-range link.
	bad2 := `{"tasks":[{"name":"a","cost":1}],"deps":[],
		"speeds":[1,1],"links":[{"u":0,"v":9,"strength":1}]}`
	if _, err := UnmarshalInstance([]byte(bad2)); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestSaveLoadInstanceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	inst := datasets.Fig1Instance()
	if err := SaveInstance(path, inst); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if !instancesEqual(inst, got) {
		t.Fatal("file round trip changed the instance")
	}
	if _, err := LoadInstance(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	inst := datasets.Fig1Instance()
	s, err := scheduler.New("HEFT")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSchedule(sch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != sch.NumNodes || len(got.ByTask) != len(sch.ByTask) {
		t.Fatal("schedule round trip changed shape")
	}
	for i := range sch.ByTask {
		if got.ByTask[i] != sch.ByTask[i] {
			t.Fatalf("assignment %d changed: %+v vs %+v", i, got.ByTask[i], sch.ByTask[i])
		}
	}
	if !graph.ApproxEq(got.Makespan(), sch.Makespan()) {
		t.Fatal("makespan changed in round trip")
	}
}

func TestUnmarshalScheduleGarbage(t *testing.T) {
	if _, err := UnmarshalSchedule([]byte("[")); err == nil {
		t.Fatal("garbage schedule accepted")
	}
}
