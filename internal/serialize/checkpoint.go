package serialize

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// errStopIter halts an Iter pass that only needed the header.
var errStopIter = errors.New("serialize: stop iteration")

// Checkpoint is a file-backed store of per-cell sweep results — the
// persistence side of runner's checkpoint/resume hook. Completed cells
// are kept as raw JSON keyed by cell index; the file is rewritten
// atomically (write-to-temp, rename) so a killed sweep never leaves a
// truncated store behind.
//
// The zero value is not usable; construct with NewCheckpoint.
type Checkpoint struct {
	path string

	mu          sync.Mutex
	fingerprint string
	cells       map[int]json.RawMessage
	// pending counts cells stored since the last write; Store rewrites
	// the file every flushEvery cells, and Flush always rewrites when
	// anything is pending.
	pending    int
	flushEvery int
}

// NewCheckpoint returns a checkpoint store persisted at path. Cells are
// written through on every Store; see SetFlushEvery to batch writes for
// sweeps with many cheap cells.
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, flushEvery: 1}
}

// SetFingerprint binds the store to one specific sweep. The fingerprint
// — typically the sweep's parameters rendered as a string — is written
// into the file, and Load refuses a store whose fingerprint differs:
// without this, resuming with changed options (seed, iterations, grid
// contents of the same size) would silently mix stale cells into the
// new result. Set it before Load.
func (c *Checkpoint) SetFingerprint(fp string) {
	c.mu.Lock()
	c.fingerprint = fp
	c.mu.Unlock()
}

// SetFlushEvery makes Store rewrite the file only every n-th stored cell
// (Flush still always persists). n < 1 is treated as 1.
func (c *Checkpoint) SetFlushEvery(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.flushEvery = n
	c.mu.Unlock()
}

// checkpointFile is the on-disk format: cell indices as JSON object keys.
type checkpointFile struct {
	Fingerprint string                     `json:"fingerprint,omitempty"`
	Cells       map[string]json.RawMessage `json:"cells"`
}

// Load implements runner.Checkpoint: it reads the store from disk (an
// absent file is an empty store) and returns the cells by index.
func (c *Checkpoint) Load() (map[int]json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		c.cells = map[int]json.RawMessage{}
		return map[int]json.RawMessage{}, nil
	}
	if err != nil {
		return nil, err
	}
	if isGzip(data) {
		// Stream-format store (see stream.go): decode record by record,
		// then serve the same map shape the JSON path produces.
		cells, err := loadStream(c.path, c.fingerprint)
		if err != nil {
			return nil, err
		}
		c.cells = cells
		out := make(map[int]json.RawMessage, len(cells))
		for k, raw := range cells {
			out[k] = raw
		}
		return out, nil
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		// Atomic rename makes a torn write unlikely, but stores can still
		// arrive truncated or corrupt (a crash mid-copy between machines,
		// a full disk, a worker killed while streaming its store over the
		// network). Name the file and say what to do — never let a bad
		// store surface as a bare decode failure three layers up.
		return nil, fmt.Errorf("serialize: checkpoint %s is corrupt or truncated (%d bytes): %w — a crash mid-write? delete it (or restore it from the worker that wrote it) and re-run",
			c.path, len(data), err)
	}
	if cf.Fingerprint != c.fingerprint {
		return nil, fmt.Errorf("serialize: checkpoint %s was written by a different sweep (%q, want %q) — delete it or pass a fresh path",
			c.path, cf.Fingerprint, c.fingerprint)
	}
	c.cells = make(map[int]json.RawMessage, len(cf.Cells))
	out := make(map[int]json.RawMessage, len(cf.Cells))
	for key, raw := range cf.Cells {
		k, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("serialize: checkpoint %s: bad cell key %q", c.path, key)
		}
		c.cells[k] = raw
		out[k] = raw
	}
	return out, nil
}

// Store implements runner.Checkpoint: it records one completed cell and
// persists the store according to the flush policy.
func (c *Checkpoint) Store(index int, cell json.RawMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cells == nil {
		c.cells = map[int]json.RawMessage{}
	}
	c.cells[index] = cell
	c.pending++
	if c.pending >= c.flushEvery {
		return c.writeLocked()
	}
	return nil
}

// StoreDedup records one completed cell, tolerating duplicate
// completions: a cell already present with byte-identical content is a
// no-op (stored = false), while a cell present with *different* bytes
// is an error — the sweep is deterministic, so a disagreeing duplicate
// means the result came from a different sweep (or a corrupted worker)
// and must never silently overwrite the committed value. This is the
// commit primitive of the coordinator protocol (internal/coord), where
// reclaimed leases and duplicated deliveries make redundant completions
// routine.
func (c *Checkpoint) StoreDedup(index int, cell json.RawMessage) (stored bool, err error) {
	c.mu.Lock()
	if prev, ok := c.cells[index]; ok {
		c.mu.Unlock()
		if !bytes.Equal(prev, cell) {
			return false, fmt.Errorf("serialize: checkpoint %s: duplicate completion of cell %d disagrees with the committed value (%d vs %d bytes) — results from a different sweep?",
				c.path, index, len(cell), len(prev))
		}
		return false, nil
	}
	c.mu.Unlock()
	return true, c.Store(index, cell)
}

// PeekFingerprint reads only the fingerprint of the store at path,
// without binding a Checkpoint to it or validating its cells. Merge
// uses it to diagnose mixed-sweep shards with both fingerprints in
// hand; an unreadable or corrupt store fails with the same per-file
// diagnostics Load gives.
func PeekFingerprint(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	if isGzip(data) {
		// Stream-format store: the fingerprint is the header record, so
		// only the first member's first value is decoded.
		fp, err := Iter(path, func(int, json.RawMessage) error { return errStopIter })
		if err != nil && err != errStopIter {
			return "", err
		}
		return fp, nil
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return "", fmt.Errorf("serialize: checkpoint %s is corrupt or truncated (%d bytes): %w — a crash mid-write? delete it (or restore it from the worker that wrote it) and re-run",
			path, len(data), err)
	}
	return cf.Fingerprint, nil
}

// Flush implements runner.Checkpoint: it persists any cells not yet on
// disk.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == 0 {
		return nil
	}
	return c.writeLocked()
}

// Touch persists the store even when it holds no cells (Store/Flush
// only write when something is pending). A shard of a distributed sweep
// that owns zero cells still must leave a fingerprinted empty store
// behind, or the merge would refuse the "missing" file despite the
// other shards covering every cell.
func (c *Checkpoint) Touch() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := os.Stat(c.path); err == nil {
		return nil
	}
	return c.writeLocked()
}

// Remove deletes the store from disk — call it after a sweep completes
// so a finished checkpoint is not mistaken for a resumable one.
func (c *Checkpoint) Remove() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells = nil
	c.pending = 0
	err := os.Remove(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// writeLocked rewrites the store atomically. Callers hold c.mu. Paths
// ending in ".gz" opt into the stream format (stream.go); everything
// else writes the legacy JSON object, byte-identical to prior releases.
func (c *Checkpoint) writeLocked() error {
	if strings.HasSuffix(c.path, streamSuffix) {
		if err := writeStreamLocked(c.path, c.fingerprint, c.cells); err != nil {
			return err
		}
		c.pending = 0
		return nil
	}
	cf := checkpointFile{
		Fingerprint: c.fingerprint,
		Cells:       make(map[string]json.RawMessage, len(c.cells)),
	}
	for k, raw := range c.cells {
		cf.Cells[strconv.Itoa(k)] = raw
	}
	data, err := json.Marshal(cf)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.pending = 0
	return nil
}
