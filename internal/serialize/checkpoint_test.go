package serialize

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.ckpt")
	ck := NewCheckpoint(path)
	if cells, err := ck.Load(); err != nil || len(cells) != 0 {
		t.Fatalf("fresh store: %v, %v", cells, err)
	}
	if err := ck.Store(3, json.RawMessage(`{"ratio":1.5}`)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Store(0, json.RawMessage(`{"ratio":2.25}`)); err != nil {
		t.Fatal(err)
	}
	cells, err := NewCheckpoint(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || string(cells[3]) != `{"ratio":1.5}` || string(cells[0]) != `{"ratio":2.25}` {
		t.Fatalf("round trip lost cells: %v", cells)
	}
}

func TestCheckpointFlushEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batched.ckpt")
	ck := NewCheckpoint(path)
	ck.SetFlushEvery(10)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if err := ck.Store(k, json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("batched store written before flush threshold")
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	cells, err := NewCheckpoint(path).Load()
	if err != nil || len(cells) != 5 {
		t.Fatalf("flush lost cells: %v, %v", cells, err)
	}
}

func TestCheckpointFingerprintGuardsSweepIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ckpt")
	ck := NewCheckpoint(path)
	ck.SetFingerprint("fig4 seed=1 iters=100")
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Store(0, json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	// Same fingerprint resumes.
	same := NewCheckpoint(path)
	same.SetFingerprint("fig4 seed=1 iters=100")
	if cells, err := same.Load(); err != nil || len(cells) != 1 {
		t.Fatalf("same-sweep resume failed: %v, %v", cells, err)
	}
	// Changed options must refuse, not silently mix stale cells in.
	other := NewCheckpoint(path)
	other.SetFingerprint("fig4 seed=1 iters=500")
	if _, err := other.Load(); err == nil {
		t.Fatal("stale checkpoint accepted by a differently-parameterized sweep")
	}
	// So must a fingerprint-less caller reading a fingerprinted store.
	if _, err := NewCheckpoint(path).Load(); err == nil {
		t.Fatal("fingerprinted store accepted by an unfingerprinted sweep")
	}
}

func TestCheckpointRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCheckpoint(path).Load(); err == nil {
		t.Fatal("corrupt store accepted")
	}
	if err := os.WriteFile(path, []byte(`{"cells":{"x":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCheckpoint(path).Load(); err == nil {
		t.Fatal("non-integer cell key accepted")
	}
}
