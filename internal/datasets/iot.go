package datasets

import (
	"fmt"
	"math"

	"saga/internal/graph"
	"saga/internal/rng"
)

// IoTNames lists the four RIoTBench-based IoT datasets of Table II.
var IoTNames = []string{"etl", "predict", "stats", "train"}

func init() {
	for _, name := range IoTNames {
		name := name
		Register(name, func() Generator {
			return GeneratorFunc{DatasetName: name, Fn: func(r *rng.RNG) *graph.Instance {
				g, err := IoTRecipe(name, r)
				if err != nil {
					panic(err)
				}
				return graph.NewInstance(g, EdgeFogCloudNetwork(r))
			}}
		})
	}
}

// EdgeFogCloudNetwork builds the Section IV-B Edge/Fog/Cloud network:
// 75-125 edge nodes with CPU speed 1, 3-7 fog nodes with speed 6, and
// 1-10 cloud nodes with speed 50. Edge↔fog links have strength 60,
// fog↔cloud and fog↔fog links 100, edge↔cloud links 60, and cloud↔cloud
// links are infinite (no communication delay). Edge↔edge links, which
// the paper leaves implicit, use the edge-tier strength 60.
func EdgeFogCloudNetwork(r *rng.RNG) *graph.Network {
	nEdge := r.IntBetween(75, 125)
	nFog := r.IntBetween(3, 7)
	nCloud := r.IntBetween(1, 10)
	total := nEdge + nFog + nCloud
	net := graph.NewNetwork(total)
	tier := make([]int, total) // 0 = edge, 1 = fog, 2 = cloud
	for v := 0; v < total; v++ {
		switch {
		case v < nEdge:
			tier[v], net.Speeds[v] = 0, 1
		case v < nEdge+nFog:
			tier[v], net.Speeds[v] = 1, 6
		default:
			tier[v], net.Speeds[v] = 2, 50
		}
	}
	for u := 0; u < total; u++ {
		for v := u + 1; v < total; v++ {
			var s float64
			switch {
			case tier[u] == 2 && tier[v] == 2:
				s = math.Inf(1)
			case tier[u] == 1 || tier[v] == 1:
				// Any link touching fog: edge-fog 60, fog-fog and
				// fog-cloud 100.
				if tier[u] == 0 || tier[v] == 0 {
					s = 60
				} else {
					s = 100
				}
			default:
				// edge-edge and edge-cloud.
				s = 60
			}
			net.SetLink(u, v, s)
		}
	}
	return net
}

// iotStage describes one operator in a RIoTBench dataflow: its name, and
// the ratio of its output data size to its input data size (the paper
// derives edge weights from the application input size and the known
// input/output ratios of the tasks).
type iotStage struct {
	name     string
	outRatio float64
}

// iotBuild assembles a task graph from a RIoTBench-style stage DAG. Node
// weights are drawn from the paper's clipped gaussian (mean 35, sd 25/3,
// [10, 60]); the application input size from clipped gaussian (mean 1000,
// sd 500/3, [500, 1500]); each edge carries its source stage's output
// size, propagated through the stage out-ratios along a longest path in
// stage order.
func iotBuild(r *rng.RNG, stages []iotStage, edges [][2]int) *graph.TaskGraph {
	g := graph.NewTaskGraph()
	ids := make([]int, len(stages))
	for i, s := range stages {
		ids[i] = g.AddTask(s.name, r.ClippedGaussian(35, 25.0/3, 10, 60))
	}
	input := r.ClippedGaussian(1000, 500.0/3, 500, 1500)
	// Propagate data sizes in index order (stage lists are topologically
	// ordered by construction): a stage's input is the largest of its
	// predecessors' outputs (the application input for sources) and its
	// output is that input scaled by the stage's I/O ratio.
	in := make([]float64, len(stages))
	out := make([]float64, len(stages))
	hasPred := make([]bool, len(stages))
	for _, e := range edges {
		hasPred[e[1]] = true
	}
	for i, s := range stages {
		if !hasPred[i] {
			in[i] = input
		}
		out[i] = in[i] * s.outRatio
		for _, e := range edges {
			if e[0] == i && out[i] > in[e[1]] {
				in[e[1]] = out[i]
			}
		}
	}
	for _, e := range edges {
		g.MustAddDep(ids[e[0]], ids[e[1]], out[e[0]])
	}
	return g
}

// IoTRecipe builds the task graph of one of the four RIoTBench IoT
// applications. The dataflow shapes follow the RIoTBench paper's ETL,
// STATS, PREDICT and TRAIN topologies (DESIGN.md, substitution 4).
func IoTRecipe(name string, r *rng.RNG) (*graph.TaskGraph, error) {
	switch name {
	case "etl":
		// Linear extract-transform-load with a two-way filter branch.
		stages := []iotStage{
			{"source", 1.0}, {"senml_parse", 0.9}, {"range_filter", 0.8},
			{"bloom_filter", 0.8}, {"interpolate", 1.0}, {"join", 1.1},
			{"annotate", 1.2}, {"csv_to_senml", 1.0}, {"mqtt_publish", 0.6},
			{"sink", 0.1},
		}
		edges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5},
			{5, 6}, {6, 7}, {7, 8}, {8, 9}}
		return iotBuild(r, stages, edges), nil
	case "stats":
		// Fan-out to three statistical branches joined by a plotter.
		stages := []iotStage{
			{"source", 1.0}, {"senml_parse", 0.9},
			{"average", 0.5}, {"kalman_filter", 0.9}, {"sliding_window", 0.7},
			{"distinct_count", 0.4}, {"group_viz", 1.3}, {"sink", 0.1},
		}
		edges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {1, 5},
			{2, 6}, {4, 6}, {5, 6}, {6, 7}}
		return iotBuild(r, stages, edges), nil
	case "predict":
		// Parallel model evaluation paths averaged and published.
		stages := []iotStage{
			{"source", 1.0}, {"mqtt_subscribe", 0.9}, {"senml_parse", 0.9},
			{"decision_tree_classify", 0.6}, {"linear_reg_predict", 0.6},
			{"average", 0.5}, {"error_estimate", 0.5}, {"mqtt_publish", 0.6},
			{"sink", 0.1},
		}
		edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5},
			{4, 6}, {5, 7}, {6, 7}, {7, 8}}
		return iotBuild(r, stages, edges), nil
	case "train":
		// Periodic model retraining: fetch, train two models, write both.
		stages := []iotStage{
			{"timer_source", 1.0}, {"table_read", 1.5},
			{"multi_var_linear_reg_train", 0.8}, {"decision_tree_train", 0.8},
			{"model_blob_write_lr", 0.5}, {"model_blob_write_dt", 0.5},
			{"mqtt_publish", 0.4}, {"sink", 0.1},
		}
		edges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6},
			{5, 6}, {6, 7}}
		return iotBuild(r, stages, edges), nil
	}
	return nil, fmt.Errorf("datasets: unknown IoT application %q", name)
}
