// Package datasets implements the 16 dataset generators of Table II in
// the PISA paper: three randomized-structure datasets (in_trees,
// out_trees, chains) paired with randomly weighted networks, nine
// scientific-workflow datasets (blast, bwa, cycles, epigenomics, genome,
// montage, seismology, soykb, srasearch) paired with Chameleon-inspired
// networks, and four IoT datasets (etl, predict, stats, train) paired
// with Edge/Fog/Cloud networks.
//
// The paper generates scientific workflows with the WfCommons synthetic
// generator and fits network speed distributions to real execution
// traces; offline, this package encodes each workflow's published
// topology as a parameterized recipe and samples speeds from clipped
// gaussians covering the same role (DESIGN.md, substitutions 2-4).
package datasets

import (
	"fmt"
	"sort"

	"saga/internal/graph"
	"saga/internal/rng"
)

// minNetWeight floors sampled network speeds and link strengths. The
// paper's clipped gaussians clip at zero, but a zero compute speed or
// link strength makes execution/communication time undefined, so
// generated (and perturbed) network weights are floored here instead.
const minNetWeight = 0.01

// Generator produces random problem instances of one dataset family.
type Generator interface {
	Name() string
	// Generate draws one instance using the provided source of
	// randomness.
	Generate(r *rng.RNG) *graph.Instance
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc struct {
	DatasetName string
	Fn          func(r *rng.RNG) *graph.Instance
}

// Name implements Generator.
func (g GeneratorFunc) Name() string { return g.DatasetName }

// Generate implements Generator.
func (g GeneratorFunc) Generate(r *rng.RNG) *graph.Instance { return g.Fn(r) }

var registry = map[string]func() Generator{}

// Register adds a dataset generator factory. It panics on duplicates.
func Register(name string, factory func() Generator) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("datasets: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New instantiates a registered dataset generator by name.
func New(name string) (Generator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return f(), nil
}

// Names returns all registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableII lists the 16 datasets in the order the paper's Fig 2 y-axis
// uses (alphabetical groups as printed, bottom-to-top reversed here to
// read top-down).
var TableII = []string{
	"train", "stats", "srasearch", "soykb", "seismology", "predict",
	"out_trees", "montage", "in_trees", "genome", "etl", "epigenomics",
	"cycles", "chains", "bwa", "blast",
}

// Dataset draws n instances from the named generator, using independent
// sub-streams so instance i is reproducible regardless of batch size.
func Dataset(name string, n int, seed uint64) ([]*graph.Instance, error) {
	g, err := New(name)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	out := make([]*graph.Instance, n)
	for i := range out {
		out[i] = g.Generate(r.Split())
	}
	return out, nil
}

// clampNet floors a sampled network weight.
func clampNet(w float64) float64 {
	if w < minNetWeight {
		return minNetWeight
	}
	return w
}
