package datasets

import (
	"fmt"

	"saga/internal/graph"
	"saga/internal/rng"
)

// InitialPISAInstance builds the Section VI starting point for the
// adversarial search: a complete network with 3-5 nodes and uniform
// [0, 1] node/link weights (self-links infinite), and a simple chain task
// graph with 3-5 tasks and uniform [0, 1] task/dependency weights.
// Network weights are floored at the package minimum (see package
// comment).
func InitialPISAInstance(r *rng.RNG) *graph.Instance {
	nNodes := r.IntBetween(3, 5)
	net := graph.NewNetwork(nNodes)
	for v := 0; v < nNodes; v++ {
		net.Speeds[v] = clampNet(r.Float64())
		for u := v + 1; u < nNodes; u++ {
			net.SetLink(v, u, clampNet(r.Float64()))
		}
	}
	nTasks := r.IntBetween(3, 5)
	g := graph.NewTaskGraph()
	prev := -1
	for i := 0; i < nTasks; i++ {
		t := g.AddTask(fmt.Sprintf("t%d", i), r.Float64())
		if prev >= 0 {
			g.MustAddDep(prev, t, r.Float64())
		}
		prev = t
	}
	return graph.NewInstance(g, net)
}

// Fig7Instance builds one sample from the Section VI-B fork-join family
// on which HEFT performs poorly against CPoP: tasks A and D have cost 1,
// B and C have cost ~N(10, 10/3) clipped at 0; dependencies A→B, A→C and
// B→D have cost 1 while C→D has cost ~N(100, 100/3) clipped at 0. The
// network is completely homogeneous (paper: "for simplicity"), with
// three unit-speed nodes and unit link strengths.
func Fig7Instance(r *rng.RNG) *graph.Instance {
	g := graph.NewTaskGraph()
	a := g.AddTask("A", 1)
	b := g.AddTask("B", r.PositiveClippedGaussian(10, 10.0/3, 0))
	c := g.AddTask("C", r.PositiveClippedGaussian(10, 10.0/3, 0))
	d := g.AddTask("D", 1)
	g.MustAddDep(a, b, 1)
	g.MustAddDep(a, c, r.PositiveClippedGaussian(100, 100.0/3, 0))
	g.MustAddDep(b, d, 1)
	g.MustAddDep(c, d, 1)
	return graph.NewInstance(g, graph.NewNetwork(3))
}

// Fig8Instance builds one sample from the Section VI-B wide-fork family
// on which CPoP performs poorly against HEFT: start task A fans out to
// inner tasks B..J, which all feed final task K. Every task cost is
// ~N(1, 1/3); fork dependencies (A→inner) cost ~N(1, 1/3) while join
// dependencies (inner→K) cost ~N(10, 10/3) — the join is ten times more
// communication-expensive than the fork. The network has four nodes: the
// fastest has speed 3 and the other speeds are ~N(1, 1/3); the link
// between the fastest and second-fastest node is weak (~N(1, 1/3)
// strength) while every other link is strong (~N(10, 5/3)). All draws
// clip at 0 (floored at the package minimum for network weights).
func Fig8Instance(r *rng.RNG) *graph.Instance {
	g := graph.NewTaskGraph()
	inner := 9 // tasks B through J
	a := g.AddTask("A", r.PositiveClippedGaussian(1, 1.0/3, 0))
	k := g.AddTask("K", r.PositiveClippedGaussian(1, 1.0/3, 0))
	for i := 0; i < inner; i++ {
		t := g.AddTask(fmt.Sprintf("%c", 'B'+i), r.PositiveClippedGaussian(1, 1.0/3, 0))
		g.MustAddDep(a, t, r.PositiveClippedGaussian(1, 1.0/3, 0))
		g.MustAddDep(t, k, r.PositiveClippedGaussian(10, 10.0/3, 0))
	}

	net := graph.NewNetwork(4)
	net.Speeds[0] = 3
	second := 1
	for v := 1; v < 4; v++ {
		net.Speeds[v] = clampNet(r.PositiveClippedGaussian(1, 1.0/3, 0))
		if net.Speeds[v] > net.Speeds[second] {
			second = v
		}
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if u == 0 && v == second {
				// The weak link between the two fastest nodes.
				net.SetLink(u, v, clampNet(r.PositiveClippedGaussian(1, 1.0/3, 0)))
			} else {
				net.SetLink(u, v, clampNet(r.PositiveClippedGaussian(10, 5.0/3, 0)))
			}
		}
	}
	return graph.NewInstance(g, net)
}

// Fig1Instance returns the worked example of the paper's Fig 1: a
// four-task diamond graph and a three-node network with the exact weights
// printed in the figure.
func Fig1Instance() *graph.Instance {
	g := graph.NewTaskGraph()
	t1 := g.AddTask("t1", 1.7)
	t2 := g.AddTask("t2", 1.2)
	t3 := g.AddTask("t3", 2.2)
	t4 := g.AddTask("t4", 0.8)
	g.MustAddDep(t1, t2, 0.6)
	g.MustAddDep(t1, t3, 0.5)
	g.MustAddDep(t2, t4, 1.3)
	g.MustAddDep(t3, t4, 1.6)

	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 1.0, 1.2, 1.5
	net.SetLink(0, 1, 0.5)
	net.SetLink(0, 2, 1.0)
	net.SetLink(1, 2, 1.2)
	return graph.NewInstance(g, net)
}

// Fig3Instance returns the Section V illustrative instance: a two-level
// fork-join task graph (Fig 3a) over the three-node unit network (Fig
// 3b). If modified is true, one node's communication links are weakened
// to 0.5 (Fig 3c) — the small change that flips the HEFT/CPoP ordering.
// The paper weakens "node 3"; because all nodes are identical, which node
// is weakened is a pure relabeling, and this reconstruction weakens node
// index 0 — the node our deterministic HEFT tie-breaking places the
// entry task on — so the figure's behavior (HEFT commits the entry task
// to the soon-to-be-weak node and pays for it) is preserved.
func Fig3Instance(modified bool) *graph.Instance {
	g := graph.NewTaskGraph()
	t1 := g.AddTask("1", 3)
	t2 := g.AddTask("2", 3)
	t3 := g.AddTask("3", 3)
	t4 := g.AddTask("4", 3)
	t5 := g.AddTask("5", 3)
	g.MustAddDep(t1, t2, 2)
	g.MustAddDep(t1, t3, 2)
	g.MustAddDep(t1, t4, 2)
	g.MustAddDep(t2, t5, 3)
	g.MustAddDep(t3, t5, 3)
	g.MustAddDep(t4, t5, 3)

	net := graph.NewNetwork(3)
	if modified {
		// The weakened node keeps unit speed but its links halve.
		net.SetLink(0, 1, 0.5)
		net.SetLink(0, 2, 0.5)
	}
	return graph.NewInstance(g, net)
}

// Fig5Instance returns the case-study instance of Fig 5, where HEFT
// performs ≈1.55 times worse than CPoP (this reconstruction: ≈1.548).
// Source task B fans out to A and C; the critical path is B→C (the B→C
// dependency carries the data), so CPoP runs C on the fast node and A in
// parallel elsewhere, while HEFT ranks A ahead of C and serializes
// everything on the fast node.
func Fig5Instance() *graph.Instance {
	g := graph.NewTaskGraph()
	a := g.AddTask("A", 0.8)
	b := g.AddTask("B", 0.0)
	c := g.AddTask("C", 0.8)
	g.MustAddDep(b, a, 0.0)
	g.MustAddDep(b, c, 0.8)

	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 0.3, 0.7, 0.5
	net.SetLink(0, 1, 0.6)
	net.SetLink(0, 2, 0.1)
	net.SetLink(1, 2, 0.4)
	return graph.NewInstance(g, net)
}

// Fig6Instance returns the case-study instance of Fig 6, where CPoP
// performs ≈2.83 times worse than HEFT: the critical path is B→C, so
// CPoP commits C to the fastest node even though C's input from A makes
// it far cheaper to finish where A ran. Task and dependency costs are
// the figure's printed values; the network weights (only partially
// legible in the source) are reconstructed so the published ratio is
// reproduced exactly (CPoP/HEFT ≈ 2.826).
func Fig6Instance() *graph.Instance {
	g := graph.NewTaskGraph()
	a := g.AddTask("A", 0.8)
	b := g.AddTask("B", 0.9)
	c := g.AddTask("C", 0.6)
	g.MustAddDep(a, c, 0.7)
	g.MustAddDep(b, c, 0.2)

	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 0.9, 0.1, 0.9
	net.SetLink(0, 1, 1.0)
	net.SetLink(0, 2, 0.01)
	net.SetLink(1, 2, 0.3)
	return graph.NewInstance(g, net)
}
