package datasets

import (
	"math"
	"strings"
	"testing"

	"saga/internal/graph"
	"saga/internal/rng"
)

func TestAllGeneratorsProduceValidInstances(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(17)
			for i := 0; i < 5; i++ {
				inst := g.Generate(r.Split())
				if err := inst.Validate(); err != nil {
					t.Fatalf("instance %d invalid: %v", i, err)
				}
				if inst.Graph.NumTasks() == 0 {
					t.Fatalf("instance %d has no tasks", i)
				}
			}
		})
	}
}

func TestTableIIRosterComplete(t *testing.T) {
	if len(TableII) != 16 {
		t.Fatalf("Table II lists %d datasets, want 16", len(TableII))
	}
	for _, name := range TableII {
		if _, err := New(name); err != nil {
			t.Errorf("Table II dataset %s not registered: %v", name, err)
		}
	}
}

func TestDatasetReproducible(t *testing.T) {
	a, err := Dataset("chains", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dataset("chains", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Graph.NumTasks() != b[i].Graph.NumTasks() {
			t.Fatal("same seed produced different instances")
		}
		for tk := range a[i].Graph.Tasks {
			if a[i].Graph.Tasks[tk].Cost != b[i].Graph.Tasks[tk].Cost {
				t.Fatal("same seed produced different task costs")
			}
		}
	}
	if _, err := Dataset("no-such", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetPrefixStable(t *testing.T) {
	// Instance i is identical regardless of how many instances follow it.
	a, _ := Dataset("in_trees", 2, 7)
	b, _ := Dataset("in_trees", 5, 7)
	for i := range a {
		if a[i].Graph.NumTasks() != b[i].Graph.NumTasks() ||
			a[i].Graph.Tasks[0].Cost != b[i].Graph.Tasks[0].Cost {
			t.Fatal("dataset prefix not stable across batch sizes")
		}
	}
}

func TestRandomNetworkShape(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		net := RandomNetwork(r.Split())
		if n := net.NumNodes(); n < 3 || n > 5 {
			t.Fatalf("network size %d outside [3,5]", n)
		}
		for _, s := range net.Speeds {
			if s < minNetWeight || s > 2 {
				t.Fatalf("speed %v outside [%v, 2]", s, minNetWeight)
			}
		}
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTreeShapes(t *testing.T) {
	r := rng.New(9)
	for i := 0; i < 30; i++ {
		in := randTree(r.Split(), true)
		out := randTree(r.Split(), false)
		// In-trees have exactly one sink (the root); out-trees one source.
		if sinks := in.Sinks(); len(sinks) != 1 {
			t.Fatalf("in-tree has %d sinks", len(sinks))
		}
		if srcs := out.Sources(); len(srcs) != 1 {
			t.Fatalf("out-tree has %d sources", len(srcs))
		}
		// Tree: |D| = |T| - 1.
		if in.NumDeps() != in.NumTasks()-1 {
			t.Fatalf("in-tree with %d tasks has %d deps", in.NumTasks(), in.NumDeps())
		}
		for _, tk := range in.Tasks {
			if tk.Cost < 0 || tk.Cost > 2 {
				t.Fatalf("tree task cost %v outside [0,2]", tk.Cost)
			}
		}
	}
}

func TestParallelChainsShape(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 30; i++ {
		g := parallelChains(r.Split())
		// Chains have equal numbers of sources and sinks, and every task
		// has at most one predecessor and successor.
		if len(g.Sources()) != len(g.Sinks()) {
			t.Fatal("chain sources != sinks")
		}
		nc := len(g.Sources())
		if nc < 2 || nc > 5 {
			t.Fatalf("%d chains outside [2,5]", nc)
		}
		for tk := range g.Tasks {
			if len(g.Succ[tk]) > 1 || len(g.Pred[tk]) > 1 {
				t.Fatal("chain task has branching")
			}
		}
	}
}

func TestChameleonNetworkInfiniteLinks(t *testing.T) {
	r := rng.New(13)
	net := ChameleonNetwork(r)
	for u := 0; u < net.NumNodes(); u++ {
		for v := 0; v < net.NumNodes(); v++ {
			if u != v && !math.IsInf(net.Links[u][v], 1) {
				t.Fatalf("Chameleon link (%d,%d) = %v, want +Inf", u, v, net.Links[u][v])
			}
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeFogCloudNetwork(t *testing.T) {
	r := rng.New(15)
	for i := 0; i < 10; i++ {
		net := EdgeFogCloudNetwork(r.Split())
		var nEdge, nFog, nCloud int
		for _, s := range net.Speeds {
			switch s {
			case 1:
				nEdge++
			case 6:
				nFog++
			case 50:
				nCloud++
			default:
				t.Fatalf("unexpected speed %v", s)
			}
		}
		if nEdge < 75 || nEdge > 125 {
			t.Fatalf("edge count %d outside [75,125]", nEdge)
		}
		if nFog < 3 || nFog > 7 {
			t.Fatalf("fog count %d outside [3,7]", nFog)
		}
		if nCloud < 1 || nCloud > 10 {
			t.Fatalf("cloud count %d outside [1,10]", nCloud)
		}
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
		// Spot-check tier link strengths: edge-fog 60, fog-cloud 100,
		// cloud-cloud infinite.
		firstFog := nEdge
		firstCloud := nEdge + nFog
		if net.Links[0][firstFog] != 60 {
			t.Fatalf("edge-fog link = %v, want 60", net.Links[0][firstFog])
		}
		if net.Links[firstFog][firstCloud] != 100 {
			t.Fatalf("fog-cloud link = %v, want 100", net.Links[firstFog][firstCloud])
		}
		if nCloud >= 2 && !math.IsInf(net.Links[firstCloud][firstCloud+1], 1) {
			t.Fatal("cloud-cloud link not infinite")
		}
		if nFog >= 2 && net.Links[firstFog][firstFog+1] != 100 {
			t.Fatalf("fog-fog link = %v, want 100", net.Links[firstFog][firstFog+1])
		}
		if net.Links[0][1] != 60 {
			t.Fatalf("edge-edge link = %v, want 60", net.Links[0][1])
		}
		if net.Links[0][firstCloud] != 60 {
			t.Fatalf("edge-cloud link = %v, want 60", net.Links[0][firstCloud])
		}
	}
}

func TestIoTNodeWeightRanges(t *testing.T) {
	r := rng.New(21)
	for _, name := range IoTNames {
		g, err := IoTRecipe(name, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range g.Tasks {
			if tk.Cost < 10 || tk.Cost > 60 {
				t.Fatalf("%s task cost %v outside [10,60]", name, tk.Cost)
			}
		}
		// Every dependency size derives from the input size scaled by
		// positive ratios; it must be positive and bounded by input x
		// cumulative growth.
		for _, succ := range g.Succ {
			for _, d := range succ {
				if d.Cost <= 0 {
					t.Fatalf("%s dependency cost %v not positive", name, d.Cost)
				}
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := IoTRecipe("bogus", r); err == nil {
		t.Fatal("unknown IoT recipe accepted")
	}
}

func TestBlastStructure(t *testing.T) {
	r := rng.New(23)
	g := blastGraph(r)
	srcs := g.Sources()
	if len(srcs) != 1 || !strings.HasPrefix(g.Tasks[srcs[0]].Name, "split") {
		t.Fatalf("blast sources = %v", srcs)
	}
	sinks := g.Sinks()
	if len(sinks) != 2 {
		t.Fatalf("blast has %d sinks, want 2 (Fig 9b)", len(sinks))
	}
	// Every middle task: one pred (split), two succs (both gathers).
	for tk := range g.Tasks {
		if strings.HasPrefix(g.Tasks[tk].Name, "blastall") {
			if len(g.Pred[tk]) != 1 || len(g.Succ[tk]) != 2 {
				t.Fatalf("blastall task has %d preds, %d succs", len(g.Pred[tk]), len(g.Succ[tk]))
			}
		}
	}
}

func TestSrasearchStructure(t *testing.T) {
	r := rng.New(25)
	g := srasearchGraph(r)
	// Fig 9a: 4n+4 tasks, single source t0, single sink t_{4n+3}.
	n := (g.NumTasks() - 4) / 4
	if g.NumTasks() != 4*n+4 {
		t.Fatalf("srasearch task count %d not of form 4n+4", g.NumTasks())
	}
	if srcs := g.Sources(); len(srcs) != 1 || g.Tasks[srcs[0]].Name != "t0" {
		t.Fatalf("srasearch sources = %v", srcs)
	}
	if sinks := g.Sinks(); len(sinks) != 1 {
		t.Fatalf("srasearch has %d sinks, want 1", len(sinks))
	}
}

func TestSeismologyStructure(t *testing.T) {
	r := rng.New(27)
	g := seismologyGraph(r)
	if sinks := g.Sinks(); len(sinks) != 1 {
		t.Fatalf("seismology sinks = %d, want 1", len(sinks))
	}
	if srcs := g.Sources(); len(srcs) != g.NumTasks()-1 {
		t.Fatalf("seismology sources = %d, want %d (all deconvolutions)", len(g.Sources()), g.NumTasks()-1)
	}
}

func TestMontageStructure(t *testing.T) {
	r := rng.New(29)
	g := montageGraph(r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The tail chain ends in a single sink (mJPEG).
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Tasks[sinks[0]].Name != "mJPEG" {
		t.Fatalf("montage sinks = %v", sinks)
	}
	// mDiffFit tasks each have exactly two projection predecessors.
	for tk := range g.Tasks {
		if strings.HasPrefix(g.Tasks[tk].Name, "mDiffFit") && len(g.Pred[tk]) != 2 {
			t.Fatalf("mDiffFit with %d preds", len(g.Pred[tk]))
		}
	}
}

func TestWorkflowRecipeUnknown(t *testing.T) {
	if _, err := WorkflowRecipe("nope", rng.New(1)); err == nil {
		t.Fatal("unknown workflow accepted")
	}
}

func TestWorkflowNamesAllBuild(t *testing.T) {
	r := rng.New(31)
	for _, name := range WorkflowNames {
		g, err := WorkflowRecipe(name, r.Split())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumTasks() < 5 {
			t.Fatalf("%s produced only %d tasks", name, g.NumTasks())
		}
	}
}

func TestSetHomogeneousCCR(t *testing.T) {
	r := rng.New(33)
	for _, target := range []float64{0.2, 0.5, 1, 2, 5} {
		g, err := WorkflowRecipe("blast", r.Split())
		if err != nil {
			t.Fatal(err)
		}
		net := graph.NewNetwork(4)
		rr := r.Split()
		for v := range net.Speeds {
			net.Speeds[v] = rr.ClippedGaussian(1, 1.0/3, 0.2, 2)
		}
		inst := graph.NewInstance(g, net)
		SetHomogeneousCCR(inst, target)
		// The paper's CCR definition (avg data / strength over avg exec)
		// uses means; our Instance.CCR averages per-edge comm times over
		// pairs, which coincides for homogeneous links up to the
		// data-size distribution. Verify via the definitional form.
		strength := inst.Net.Links[0][1]
		meanExec := 0.0
		for tk := range inst.Graph.Tasks {
			meanExec += inst.AvgExecTime(tk)
		}
		meanExec /= float64(inst.Graph.NumTasks())
		got := (inst.Graph.MeanDepCost() / strength) / meanExec
		if math.Abs(got-target) > 1e-9 {
			t.Fatalf("CCR = %v, want %v", got, target)
		}
	}
}

func TestSetHomogeneousCCRNoDeps(t *testing.T) {
	g := graph.NewTaskGraph()
	g.AddTask("a", 1)
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	SetHomogeneousCCR(inst, 2) // must not panic or change anything
	if inst.Net.Links[0][1] != 1 {
		t.Fatal("CCR setter modified a dependency-free instance")
	}
}

func TestInitialPISAInstanceShape(t *testing.T) {
	r := rng.New(35)
	for i := 0; i < 50; i++ {
		inst := InitialPISAInstance(r.Split())
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		nt := inst.Graph.NumTasks()
		if nt < 3 || nt > 5 {
			t.Fatalf("chain length %d outside [3,5]", nt)
		}
		if inst.Graph.NumDeps() != nt-1 {
			t.Fatalf("chain with %d tasks has %d deps", nt, inst.Graph.NumDeps())
		}
		nn := inst.Net.NumNodes()
		if nn < 3 || nn > 5 {
			t.Fatalf("network size %d outside [3,5]", nn)
		}
	}
}

func TestFig7InstanceShape(t *testing.T) {
	r := rng.New(37)
	inst := Fig7Instance(r)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Graph.NumTasks() != 4 || inst.Graph.NumDeps() != 4 {
		t.Fatal("Fig 7 family is a 4-task diamond")
	}
	// A and D cost exactly 1; the C→D... rather A→C dependency is heavy.
	if inst.Graph.Tasks[0].Cost != 1 || inst.Graph.Tasks[3].Cost != 1 {
		t.Fatal("Fig 7 endpoints must cost 1")
	}
	for _, s := range inst.Net.Speeds {
		if s != 1 {
			t.Fatal("Fig 7 network must be homogeneous")
		}
	}
}

func TestFig8InstanceShape(t *testing.T) {
	r := rng.New(39)
	inst := Fig8Instance(r)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Graph.NumTasks() != 11 {
		t.Fatalf("Fig 8 family has %d tasks, want 11 (A..K)", inst.Graph.NumTasks())
	}
	if inst.Net.Speeds[0] != 3 {
		t.Fatal("Fig 8 fastest node must have speed 3")
	}
}

func TestFigureInstancesFrozenRatios(t *testing.T) {
	// Structural freeze of the worked examples; scheduler-level ratio
	// assertions live in the experiments tests.
	for _, c := range []struct {
		name  string
		inst  *graph.Instance
		tasks int
	}{
		{"fig1", Fig1Instance(), 4},
		{"fig3", Fig3Instance(false), 5},
		{"fig5", Fig5Instance(), 3},
		{"fig6", Fig6Instance(), 3},
	} {
		if err := c.inst.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if c.inst.Graph.NumTasks() != c.tasks {
			t.Errorf("%s: %d tasks, want %d", c.name, c.inst.Graph.NumTasks(), c.tasks)
		}
	}
}

func TestDescribe(t *testing.T) {
	instances, err := Dataset("chains", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := Describe("chains", instances)
	if d.Instances != 10 || d.Name != "chains" {
		t.Fatalf("description header: %+v", d)
	}
	// Parallel chains: 2-5 chains of 2-5 tasks each → 4-25 tasks.
	if d.Tasks.Min < 4 || d.Tasks.Max > 25 {
		t.Fatalf("task summary out of family range: %+v", d.Tasks)
	}
	if d.Nodes.Min < 3 || d.Nodes.Max > 5 {
		t.Fatalf("node summary out of range: %+v", d.Nodes)
	}
	out := d.String()
	for _, want := range []string{"chains: 10 instances", "tasks", "CCR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("description missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeDepthMatchesStructure(t *testing.T) {
	// Seismology is a two-level fork-join: depth exactly 2 everywhere.
	instances, err := Dataset("seismology", 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	d := Describe("seismology", instances)
	if d.Depth.Min != 2 || d.Depth.Max != 2 {
		t.Fatalf("seismology depth summary: %+v", d.Depth)
	}
}
