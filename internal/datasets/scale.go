package datasets

import (
	"fmt"

	"saga/internal/graph"
	"saga/internal/rng"
)

// The scale tier: dataset families sized for the 1k–10k-task regime the
// edge-sparse Tables layout exists for. Table II's instances top out
// near a hundred tasks; these generators keep the same weight
// methodology (clipped gaussian(1, 1/3, [0, 2]) weights) but grow the
// graphs two orders of magnitude, with dependency counts O(|V|) so the
// instances exercise sparse storage rather than defeating it.
//
// Two structures cover the regime's extremes: layered DAGs (wide, short
// — heavy ready-set pressure, ~3 dependencies per task) and parallel
// chains (narrow, deep — 100-task chains stress iterative traversal and
// insertion). Both pair with ScaleNetwork, a clustered machine model
// whose link matrix is one shared default strength plus O(|V|) stronger
// intra-cluster exceptions — the shape the sparse Tables layout stores
// in O(exceptions) instead of O(nodes²).

// ScaleSizes maps the scale-tier size suffixes to task counts.
var ScaleSizes = map[string]int{"1k": 1000, "5k": 5000, "10k": 10000}

// scaleNetNodes and scaleClusterSize fix the scale-tier network shape:
// scaleNetNodes machines in clusters of scaleClusterSize, every
// cross-cluster link at one shared default strength.
const (
	scaleNetNodes    = 32
	scaleClusterSize = 4
)

// ScaleNetwork builds the scale-tier network: scaleNetNodes machines
// with clipped-gaussian speeds, every cross-cluster link at a single
// shared base strength, and intra-cluster links boosted 2-4× above it.
// The exception count is clusters · C(scaleClusterSize, 2) pairs —
// linear in the node count — so edge-sparse Tables store the whole link
// structure in O(|V|) entries.
func ScaleNetwork(r *rng.RNG) *graph.Network {
	n := scaleNetNodes
	base := clampNet(gauss2(r))
	net := graph.NewNetwork(n)
	for v := 0; v < n; v++ {
		net.Speeds[v] = r.ClippedGaussian(1, 1.0/3, 0.2, 2)
		for u := v + 1; u < n; u++ {
			if u/scaleClusterSize == v/scaleClusterSize {
				net.SetLink(v, u, clampNet(base*r.Uniform(2, 4)))
			} else {
				net.SetLink(v, u, base)
			}
		}
	}
	return net
}

// scaleLayered builds a layered DAG with n tasks: tasks fill layers of
// 16-64 tasks, and every task past the first layer depends on 2-4
// distinct tasks of the previous layer, giving |D| ≈ 3|V|.
func scaleLayered(r *rng.RNG, n int) *graph.TaskGraph {
	g := graph.NewTaskGraph()
	var prev []int
	id := 0
	for id < n {
		width := r.IntBetween(16, 64)
		if id+width > n {
			width = n - id
		}
		layer := make([]int, width)
		for i := range layer {
			t := g.AddTask(fmt.Sprintf("t%d", id), gauss2(r))
			id++
			layer[i] = t
			if len(prev) == 0 {
				continue
			}
			k := r.IntBetween(2, 4)
			if k > len(prev) {
				k = len(prev)
			}
			// Draw k distinct predecessors; with layers ≥16 wide and k ≤ 4,
			// rejection terminates almost immediately.
			chosen := make(map[int]bool, k)
			for len(chosen) < k {
				p := prev[r.Intn(len(prev))]
				if !chosen[p] {
					chosen[p] = true
					g.MustAddDep(p, t, gauss2(r))
				}
			}
		}
		prev = layer
	}
	return g
}

// scaleChains builds n/100 independent chains of exactly 100 tasks each
// — the deep, narrow counterpart to scaleLayered.
func scaleChains(r *rng.RNG, n int) *graph.TaskGraph {
	const depth = 100
	g := graph.NewTaskGraph()
	id := 0
	for c := 0; c < n/depth; c++ {
		prev := -1
		for i := 0; i < depth; i++ {
			t := g.AddTask(fmt.Sprintf("t%d", id), gauss2(r))
			id++
			if prev >= 0 {
				g.MustAddDep(prev, t, gauss2(r))
			}
			prev = t
		}
	}
	return g
}

func init() {
	for suffix, n := range ScaleSizes {
		n := n
		layered := "scale_layered_" + suffix
		Register(layered, func() Generator {
			return GeneratorFunc{DatasetName: layered, Fn: func(r *rng.RNG) *graph.Instance {
				return graph.NewInstance(scaleLayered(r, n), ScaleNetwork(r))
			}}
		})
		chains := "scale_chains_" + suffix
		Register(chains, func() Generator {
			return GeneratorFunc{DatasetName: chains, Fn: func(r *rng.RNG) *graph.Instance {
				return graph.NewInstance(scaleChains(r, n), ScaleNetwork(r))
			}}
		})
	}
}
