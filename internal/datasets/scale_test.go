package datasets

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/rng"
)

func TestScaleFamilyShapes(t *testing.T) {
	for suffix, n := range ScaleSizes {
		for _, prefix := range []string{"scale_layered_", "scale_chains_"} {
			name := prefix + suffix
			g, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			inst := g.Generate(rng.New(3))
			if inst.Graph.NumTasks() != n {
				t.Errorf("%s: %d tasks, want %d", name, inst.Graph.NumTasks(), n)
			}
			deps := inst.Graph.NumDeps()
			switch prefix {
			case "scale_layered_":
				// Every task past the first layer has 2-4 predecessors.
				if deps < 2*(n-64) || deps > 4*n {
					t.Errorf("%s: %d deps, want ≈3·|V| (layered)", name, deps)
				}
			case "scale_chains_":
				if want := n - n/100; deps != want {
					t.Errorf("%s: %d deps, want %d (chains)", name, deps, want)
				}
			}
			if inst.Net.NumNodes() != scaleNetNodes {
				t.Errorf("%s: %d nodes, want %d", name, inst.Net.NumNodes(), scaleNetNodes)
			}
		}
	}
}

func TestScaleNetworkStaysSparse(t *testing.T) {
	// The clustered network's whole link structure must land in O(|V|)
	// table entries: clusters of scaleClusterSize contribute
	// C(size, 2)·clusters exception pairs, stored symmetrically.
	r := rng.New(11)
	for i := 0; i < 5; i++ {
		net := ScaleNetwork(r.Split())
		g := graph.NewTaskGraph()
		a := g.AddTask("a", 1)
		b := g.AddTask("b", 1)
		g.MustAddDep(a, b, 1)
		var tb graph.Tables
		tb.Build(graph.NewInstance(g, net))
		pairs := scaleNetNodes / scaleClusterSize * scaleClusterSize * (scaleClusterSize - 1) / 2
		if got := tb.LinkExceptions(); got > 2*pairs {
			t.Fatalf("ScaleNetwork stores %d link exceptions, want ≤ %d (2·intra-cluster pairs)", got, 2*pairs)
		}
	}
}

func TestScaleFamilyDeterministic(t *testing.T) {
	a, err := Dataset("scale_layered_1k", 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dataset("scale_layered_1k", 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Graph.NumDeps() != b[i].Graph.NumDeps() ||
			a[i].Graph.Tasks[500].Cost != b[i].Graph.Tasks[500].Cost ||
			a[i].Net.Links[0][31] != b[i].Net.Links[0][31] {
			t.Fatal("same seed produced different scale instances")
		}
	}
}

func TestWfcFamilyRegistered(t *testing.T) {
	for _, name := range WorkflowNames {
		g, err := New("wfc_" + name)
		if err != nil {
			t.Fatal(err)
		}
		inst := g.Generate(rng.New(5))
		if err := inst.Validate(); err != nil {
			t.Fatalf("wfc_%s: %v", name, err)
		}
		// The interchange round trip carries the machine list into a
		// finite network — unlike the Chameleon families' infinite links.
		if inst.Net == nil || inst.Net.NumNodes() < 4 {
			t.Fatalf("wfc_%s: network %+v", name, inst.Net)
		}
	}
}
