package datasets

import (
	"fmt"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/wfc"
)

// The wfc_* dataset family promotes WfCommons interchange instances to
// first-class registered datasets: each draws a workflow recipe, exports
// it as a wfformat document with a sampled machine list, and builds the
// scheduling instance by re-ingesting that document through wfc.Parse —
// the same reader path real .json/.json.gz WfCommons traces enter by.
// The round trip is deliberate: every generated instance doubles as a
// regression check that the interchange format preserves the scheduling
// model, and the family's instances are exactly what an operator gets
// from `saga convert` on a wfcommons file.
//
// Unlike the plain workflow datasets (Chameleon networks, infinite
// links), the wfc_* family carries the document's machine list into a
// finite-bandwidth network normalized to CCR 1 via SetHomogeneousCCR —
// the Section VII-A configuration.

// wfcInstance generates one wfc_* instance by round-tripping the named
// recipe through the wfformat interchange.
func wfcInstance(name string, r *rng.RNG) *graph.Instance {
	g, err := WorkflowRecipe(name, r)
	if err != nil {
		panic(err)
	}
	doc := wfc.FromTaskGraph(name, g)
	n := r.IntBetween(4, 10)
	for v := 0; v < n; v++ {
		doc.Workflow.Machines = append(doc.Workflow.Machines, wfc.Machine{
			NodeName: fmt.Sprintf("m%d", v+1),
			Speed:    r.ClippedGaussian(1, 1.0/3, 0.2, 2),
		})
	}
	data, err := doc.Marshal()
	if err != nil {
		panic(err)
	}
	parsed, err := wfc.Parse(data)
	if err != nil {
		panic(err)
	}
	g2, err := parsed.ToTaskGraph()
	if err != nil {
		panic(err)
	}
	inst := graph.NewInstance(g2, parsed.ToNetwork(1))
	SetHomogeneousCCR(inst, 1)
	return inst
}

func init() {
	for _, name := range WorkflowNames {
		name := name
		full := "wfc_" + name
		Register(full, func() Generator {
			return GeneratorFunc{DatasetName: full, Fn: func(r *rng.RNG) *graph.Instance {
				return wfcInstance(name, r)
			}}
		})
	}
}
