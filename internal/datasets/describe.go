package datasets

import (
	"fmt"
	"strings"

	"saga/internal/graph"
	"saga/internal/stats"
)

// Description summarizes a batch of problem instances: the structural
// and weight statistics a user checks before trusting a benchmark on a
// dataset (Table II reports exactly these kinds of parameters).
type Description struct {
	Name      string
	Instances int
	Tasks     stats.Summary
	Deps      stats.Summary
	Nodes     stats.Summary
	Depth     stats.Summary
	Width     stats.Summary
	CCR       stats.Summary
}

// Describe computes batch statistics for a slice of instances.
func Describe(name string, instances []*graph.Instance) Description {
	var tasks, deps, nodes, depth, width, ccr []float64
	for _, in := range instances {
		tasks = append(tasks, float64(in.Graph.NumTasks()))
		deps = append(deps, float64(in.Graph.NumDeps()))
		nodes = append(nodes, float64(in.Net.NumNodes()))
		depth = append(depth, float64(in.Graph.Depth()))
		width = append(width, float64(in.Graph.Width()))
		ccr = append(ccr, in.CCR())
	}
	return Description{
		Name:      name,
		Instances: len(instances),
		Tasks:     stats.Summarize(tasks),
		Deps:      stats.Summarize(deps),
		Nodes:     stats.Summarize(nodes),
		Depth:     stats.Summarize(depth),
		Width:     stats.Summarize(width),
		CCR:       stats.Summarize(ccr),
	}
}

// String renders the description as an aligned table.
func (d Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d instances\n", d.Name, d.Instances)
	row := func(label string, s stats.Summary) {
		fmt.Fprintf(&b, "  %-7s min %8.2f  median %8.2f  mean %8.2f  max %8.2f\n",
			label, s.Min, s.Median, s.Mean, s.Max)
	}
	row("tasks", d.Tasks)
	row("deps", d.Deps)
	row("nodes", d.Nodes)
	row("depth", d.Depth)
	row("width", d.Width)
	row("CCR", d.CCR)
	return b.String()
}
