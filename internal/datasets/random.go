package datasets

import (
	"fmt"
	"math"

	"saga/internal/graph"
	"saga/internal/rng"
)

func init() {
	Register("in_trees", func() Generator {
		return GeneratorFunc{DatasetName: "in_trees", Fn: func(r *rng.RNG) *graph.Instance {
			return graph.NewInstance(randTree(r, true), RandomNetwork(r))
		}}
	})
	Register("out_trees", func() Generator {
		return GeneratorFunc{DatasetName: "out_trees", Fn: func(r *rng.RNG) *graph.Instance {
			return graph.NewInstance(randTree(r, false), RandomNetwork(r))
		}}
	})
	Register("chains", func() Generator {
		return GeneratorFunc{DatasetName: "chains", Fn: func(r *rng.RNG) *graph.Instance {
			return graph.NewInstance(parallelChains(r), RandomNetwork(r))
		}}
	})
}

// gauss2 draws the Section IV-B random-dataset weight: a clipped gaussian
// with mean 1, standard deviation 1/3, clipped to [0, 2].
func gauss2(r *rng.RNG) float64 { return r.ClippedGaussian(1, 1.0/3, 0, 2) }

// RandomNetwork builds the paper's "randomly weighted" network: a
// complete graph with 3-5 nodes whose speeds and link strengths are drawn
// from the clipped gaussian(1, 1/3, [0, 2]) distribution (floored at
// minNetWeight — see the package comment). Self-links are infinite.
func RandomNetwork(r *rng.RNG) *graph.Network {
	n := r.IntBetween(3, 5)
	net := graph.NewNetwork(n)
	for v := 0; v < n; v++ {
		net.Speeds[v] = clampNet(gauss2(r))
		for u := v + 1; u < n; u++ {
			net.SetLink(v, u, clampNet(gauss2(r)))
		}
	}
	return net
}

// randTree builds an in-tree (edges point from leaves toward the root)
// or out-tree (root toward leaves) with 2-4 levels and branching factor 2
// or 3, weights from the clipped gaussian(1, 1/3, [0, 2]) distribution —
// the methodology of Section IV-B.
func randTree(r *rng.RNG, inTree bool) *graph.TaskGraph {
	levels := r.IntBetween(2, 4)
	branch := r.IntBetween(2, 3)
	g := graph.NewTaskGraph()
	root := g.AddTask("t0", gauss2(r))
	frontier := []int{root}
	id := 1
	for l := 1; l < levels; l++ {
		var next []int
		for _, parent := range frontier {
			for k := 0; k < branch; k++ {
				t := g.AddTask(fmt.Sprintf("t%d", id), gauss2(r))
				id++
				if inTree {
					// Children feed the parent.
					g.MustAddDep(t, parent, gauss2(r))
				} else {
					g.MustAddDep(parent, t, gauss2(r))
				}
				next = append(next, t)
			}
		}
		frontier = next
	}
	return g
}

// parallelChains builds the Section IV-B parallel-chains task graph: 2-5
// independent chains, each 2-5 tasks long, weights from the clipped
// gaussian(1, 1/3, [0, 2]) distribution.
func parallelChains(r *rng.RNG) *graph.TaskGraph {
	chains := r.IntBetween(2, 5)
	g := graph.NewTaskGraph()
	id := 0
	for c := 0; c < chains; c++ {
		length := r.IntBetween(2, 5)
		prev := -1
		for i := 0; i < length; i++ {
			t := g.AddTask(fmt.Sprintf("t%d", id), gauss2(r))
			id++
			if prev >= 0 {
				g.MustAddDep(prev, t, gauss2(r))
			}
			prev = t
		}
	}
	return g
}

// ChameleonNetwork builds the Chameleon-cloud-inspired network used by
// the scientific-workflow datasets: 4-10 machines whose speeds are drawn
// from a clipped gaussian fitted in role to the WfCommons trace data
// (mean 1, sd 1/3, clipped to [0.2, 2]), with *infinite* link strengths —
// Chameleon uses a shared filesystem, so the paper absorbs communication
// into computation and treats links as infinitely strong.
func ChameleonNetwork(r *rng.RNG) *graph.Network {
	n := r.IntBetween(4, 10)
	net := graph.NewNetwork(n)
	for v := 0; v < n; v++ {
		net.Speeds[v] = r.ClippedGaussian(1, 1.0/3, 0.2, 2)
		for u := v + 1; u < n; u++ {
			net.SetLink(v, u, math.Inf(1))
		}
	}
	return net
}
