package datasets

import (
	"fmt"

	"saga/internal/graph"
	"saga/internal/rng"
)

// WorkflowNames lists the nine scientific-workflow datasets in Table II.
var WorkflowNames = []string{
	"blast", "bwa", "cycles", "epigenomics", "genome",
	"montage", "seismology", "soykb", "srasearch",
}

// WorkflowRecipe builds a task graph with the named workflow's topology.
// The recipes encode the published structures of the WfCommons/Pegasus
// applications (blast and srasearch exactly as in the paper's Fig 9);
// see DESIGN.md, substitution 2.
func WorkflowRecipe(name string, r *rng.RNG) (*graph.TaskGraph, error) {
	switch name {
	case "blast":
		return blastGraph(r), nil
	case "bwa":
		return bwaGraph(r), nil
	case "cycles":
		return cyclesGraph(r), nil
	case "epigenomics":
		return epigenomicsGraph(r), nil
	case "genome":
		return genomeGraph(r), nil
	case "montage":
		return montageGraph(r), nil
	case "seismology":
		return seismologyGraph(r), nil
	case "soykb":
		return soykbGraph(r), nil
	case "srasearch":
		return srasearchGraph(r), nil
	}
	return nil, fmt.Errorf("datasets: unknown workflow %q", name)
}

func init() {
	for _, name := range WorkflowNames {
		name := name
		Register(name, func() Generator {
			return GeneratorFunc{DatasetName: name, Fn: func(r *rng.RNG) *graph.Instance {
				g, err := WorkflowRecipe(name, r)
				if err != nil {
					panic(err)
				}
				return graph.NewInstance(g, ChameleonNetwork(r))
			}}
		})
	}
}

// wcost draws a task runtime or data size around mean: a clipped gaussian
// with sd mean/3 clipped to [mean/10, 3·mean] — heterogeneous but
// type-centered, the role the WfCommons trace distributions play.
func wcost(r *rng.RNG, mean float64) float64 {
	return r.ClippedGaussian(mean, mean/3, mean/10, 3*mean)
}

// SetHomogeneousCCR replaces every (finite) link strength of the
// instance's network with the single strength that makes the instance's
// average CCR — average data size over communication strength, relative
// to average execution time (Section VII-A) — equal target. Instances
// with no dependencies or zero computation are left unchanged.
func SetHomogeneousCCR(inst *graph.Instance, target float64) {
	meanData := inst.Graph.MeanDepCost()
	if meanData == 0 || target <= 0 {
		return
	}
	meanExec := 0.0
	for t := range inst.Graph.Tasks {
		meanExec += inst.AvgExecTime(t)
	}
	meanExec /= float64(len(inst.Graph.Tasks))
	if meanExec == 0 {
		return
	}
	strength := meanData / (target * meanExec)
	for u := 0; u < inst.Net.NumNodes(); u++ {
		for v := u + 1; v < inst.Net.NumNodes(); v++ {
			inst.Net.SetLink(u, v, strength)
		}
	}
}

// blastGraph is the paper's Fig 9b structure: a split task fans out to n
// blastall tasks, all of which feed two gather tasks (cat_blast and cat).
func blastGraph(r *rng.RNG) *graph.TaskGraph {
	n := r.IntBetween(10, 30)
	g := graph.NewTaskGraph()
	split := g.AddTask("split_fasta", wcost(r, 5))
	catBlast := -1
	blasts := make([]int, n)
	for i := range blasts {
		blasts[i] = g.AddTask(fmt.Sprintf("blastall_%d", i+1), wcost(r, 100))
		g.MustAddDep(split, blasts[i], wcost(r, 10))
	}
	catBlast = g.AddTask("cat_blast", wcost(r, 8))
	cat := g.AddTask("cat", wcost(r, 4))
	for _, b := range blasts {
		g.MustAddDep(b, catBlast, wcost(r, 10))
		g.MustAddDep(b, cat, wcost(r, 5))
	}
	return g
}

// bwaGraph: a reference-index task fans out to n bwa alignment tasks
// joined by two concatenation tasks (the Makeflow bwa example's shape).
func bwaGraph(r *rng.RNG) *graph.TaskGraph {
	n := r.IntBetween(10, 30)
	g := graph.NewTaskGraph()
	index := g.AddTask("bwa_index", wcost(r, 20))
	concat1 := g.AddTask("cat_sai", wcost(r, 6))
	concat2 := g.AddTask("cat_sam", wcost(r, 6))
	for i := 0; i < n; i++ {
		align := g.AddTask(fmt.Sprintf("bwa_aln_%d", i+1), wcost(r, 60))
		g.MustAddDep(index, align, wcost(r, 15))
		g.MustAddDep(align, concat1, wcost(r, 8))
		g.MustAddDep(align, concat2, wcost(r, 8))
	}
	return g
}

// cyclesGraph: the agroecosystem model — independent crop blocks, each a
// baseline simulation fanning out to k cycles simulations gathered by a
// per-block output parser; a final summary joins all blocks.
func cyclesGraph(r *rng.RNG) *graph.TaskGraph {
	blocks := r.IntBetween(2, 4)
	g := graph.NewTaskGraph()
	summary := g.AddTask("cycles_plots", wcost(r, 10))
	for b := 0; b < blocks; b++ {
		base := g.AddTask(fmt.Sprintf("baseline_cycles_%d", b+1), wcost(r, 30))
		parser := g.AddTask(fmt.Sprintf("output_parser_%d", b+1), wcost(r, 8))
		k := r.IntBetween(3, 8)
		for i := 0; i < k; i++ {
			sim := g.AddTask(fmt.Sprintf("cycles_%d_%d", b+1, i+1), wcost(r, 40))
			g.MustAddDep(base, sim, wcost(r, 5))
			g.MustAddDep(sim, parser, wcost(r, 6))
		}
		g.MustAddDep(parser, summary, wcost(r, 4))
	}
	return g
}

// epigenomicsGraph: m sequencing lanes, each splitting into k parallel
// four-stage pipelines (filter → sol2sanger → fast2bfq → map) merged per
// lane, then a global merge followed by an index/pileup chain.
func epigenomicsGraph(r *rng.RNG) *graph.TaskGraph {
	lanes := r.IntBetween(1, 3)
	g := graph.NewTaskGraph()
	global := g.AddTask("mapMergeAll", wcost(r, 15))
	for l := 0; l < lanes; l++ {
		split := g.AddTask(fmt.Sprintf("fastQSplit_%d", l+1), wcost(r, 10))
		merge := g.AddTask(fmt.Sprintf("mapMerge_%d", l+1), wcost(r, 12))
		k := r.IntBetween(2, 5)
		for i := 0; i < k; i++ {
			stageMeans := []float64{8, 5, 5, 80}
			stageNames := []string{"filterContams", "sol2sanger", "fast2bfq", "map"}
			prev := split
			for s := range stageNames {
				t := g.AddTask(fmt.Sprintf("%s_%d_%d", stageNames[s], l+1, i+1), wcost(r, stageMeans[s]))
				g.MustAddDep(prev, t, wcost(r, 10))
				prev = t
			}
			g.MustAddDep(prev, merge, wcost(r, 10))
		}
		g.MustAddDep(merge, global, wcost(r, 12))
	}
	sort := g.AddTask("maqIndex", wcost(r, 10))
	pileup := g.AddTask("pileup", wcost(r, 20))
	g.MustAddDep(global, sort, wcost(r, 15))
	g.MustAddDep(sort, pileup, wcost(r, 15))
	return g
}

// genomeGraph: the 1000genome reconstruction — per chromosome block, n
// individuals tasks merged, a sifting task, then p analysis pairs
// (mutation_overlap, frequency) each needing the merge and the sifting
// output.
func genomeGraph(r *rng.RNG) *graph.TaskGraph {
	blocks := r.IntBetween(1, 3)
	g := graph.NewTaskGraph()
	for b := 0; b < blocks; b++ {
		n := r.IntBetween(4, 8)
		merge := g.AddTask(fmt.Sprintf("individuals_merge_%d", b+1), wcost(r, 20))
		for i := 0; i < n; i++ {
			ind := g.AddTask(fmt.Sprintf("individuals_%d_%d", b+1, i+1), wcost(r, 50))
			g.MustAddDep(ind, merge, wcost(r, 20))
		}
		sift := g.AddTask(fmt.Sprintf("sifting_%d", b+1), wcost(r, 15))
		p := r.IntBetween(2, 4)
		for i := 0; i < p; i++ {
			mo := g.AddTask(fmt.Sprintf("mutation_overlap_%d_%d", b+1, i+1), wcost(r, 25))
			fr := g.AddTask(fmt.Sprintf("frequency_%d_%d", b+1, i+1), wcost(r, 35))
			g.MustAddDep(merge, mo, wcost(r, 25))
			g.MustAddDep(sift, mo, wcost(r, 5))
			g.MustAddDep(merge, fr, wcost(r, 25))
			g.MustAddDep(sift, fr, wcost(r, 5))
		}
	}
	return g
}

// montageGraph: the astronomy mosaic pipeline — mProject per image,
// mDiffFit per overlapping pair, mConcatFit → mBgModel, mBackground per
// image, then the mImgtbl → mAdd → mShrink → mJPEG tail chain.
func montageGraph(r *rng.RNG) *graph.TaskGraph {
	n := r.IntBetween(6, 14)
	g := graph.NewTaskGraph()
	projects := make([]int, n)
	for i := range projects {
		projects[i] = g.AddTask(fmt.Sprintf("mProject_%d", i+1), wcost(r, 30))
	}
	concat := g.AddTask("mConcatFit", wcost(r, 8))
	for i := 0; i+1 < n; i++ {
		diff := g.AddTask(fmt.Sprintf("mDiffFit_%d", i+1), wcost(r, 6))
		g.MustAddDep(projects[i], diff, wcost(r, 12))
		g.MustAddDep(projects[i+1], diff, wcost(r, 12))
		g.MustAddDep(diff, concat, wcost(r, 2))
	}
	bgModel := g.AddTask("mBgModel", wcost(r, 12))
	g.MustAddDep(concat, bgModel, wcost(r, 2))
	imgtbl := g.AddTask("mImgtbl", wcost(r, 6))
	for i := range projects {
		bg := g.AddTask(fmt.Sprintf("mBackground_%d", i+1), wcost(r, 8))
		g.MustAddDep(projects[i], bg, wcost(r, 12))
		g.MustAddDep(bgModel, bg, wcost(r, 2))
		g.MustAddDep(bg, imgtbl, wcost(r, 12))
	}
	add := g.AddTask("mAdd", wcost(r, 25))
	shrink := g.AddTask("mShrink", wcost(r, 6))
	jpeg := g.AddTask("mJPEG", wcost(r, 4))
	g.MustAddDep(imgtbl, add, wcost(r, 20))
	g.MustAddDep(add, shrink, wcost(r, 15))
	g.MustAddDep(shrink, jpeg, wcost(r, 8))
	return g
}

// seismologyGraph: n parallel sG1IterDecon deconvolutions joined by a
// single siftSTFByMisfit wrapper — the real application's two-level
// shape.
func seismologyGraph(r *rng.RNG) *graph.TaskGraph {
	n := r.IntBetween(10, 40)
	g := graph.NewTaskGraph()
	join := g.AddTask("wrapper_siftSTFByMisfit", wcost(r, 10))
	for i := 0; i < n; i++ {
		t := g.AddTask(fmt.Sprintf("sG1IterDecon_%d", i+1), wcost(r, 15))
		g.MustAddDep(t, join, wcost(r, 5))
	}
	return g
}

// soykbGraph: per-sample six-stage genomics chains forking into k
// haplotype callers merged per sample, then the global
// combine → select → filter tail.
func soykbGraph(r *rng.RNG) *graph.TaskGraph {
	samples := r.IntBetween(2, 5)
	g := graph.NewTaskGraph()
	combine := g.AddTask("combine_variants", wcost(r, 12))
	stages := []string{"align_to_ref", "sort_sam", "dedup", "add_replace", "realign_creator", "indel_realign"}
	means := []float64{60, 10, 10, 8, 20, 30}
	for s := 0; s < samples; s++ {
		prev := -1
		for i, st := range stages {
			t := g.AddTask(fmt.Sprintf("%s_%d", st, s+1), wcost(r, means[i]))
			if prev >= 0 {
				g.MustAddDep(prev, t, wcost(r, 15))
			}
			prev = t
		}
		merge := g.AddTask(fmt.Sprintf("genotype_gvcfs_%d", s+1), wcost(r, 15))
		k := r.IntBetween(2, 4)
		for i := 0; i < k; i++ {
			hc := g.AddTask(fmt.Sprintf("haplotype_caller_%d_%d", s+1, i+1), wcost(r, 40))
			g.MustAddDep(prev, hc, wcost(r, 15))
			g.MustAddDep(hc, merge, wcost(r, 10))
		}
		g.MustAddDep(merge, combine, wcost(r, 10))
	}
	sel := g.AddTask("select_variants", wcost(r, 8))
	filt := g.AddTask("filter_variants", wcost(r, 8))
	g.MustAddDep(combine, sel, wcost(r, 10))
	g.MustAddDep(sel, filt, wcost(r, 8))
	return g
}

// srasearchGraph is the paper's Fig 9a structure: n columns of four-task
// chains fed by nothing, two gather tasks collecting every column, and a
// final task t_{4n+3}; an initial task t0 fans out to every column head.
func srasearchGraph(r *rng.RNG) *graph.TaskGraph {
	n := r.IntBetween(4, 12)
	g := graph.NewTaskGraph()
	t0 := g.AddTask("t0", wcost(r, 5))
	stageMeans := []float64{20, 40, 15, 10}
	lasts := make([]int, n)
	for c := 0; c < n; c++ {
		prev := t0
		for s := 0; s < 4; s++ {
			t := g.AddTask(fmt.Sprintf("t%d", 1+s*n+c), wcost(r, stageMeans[s]))
			g.MustAddDep(prev, t, wcost(r, 12))
			prev = t
		}
		lasts[c] = prev
	}
	g1 := g.AddTask(fmt.Sprintf("t%d", 4*n+1), wcost(r, 8))
	g2 := g.AddTask(fmt.Sprintf("t%d", 4*n+2), wcost(r, 8))
	for _, t := range lasts {
		g.MustAddDep(t, g1, wcost(r, 8))
		g.MustAddDep(t, g2, wcost(r, 8))
	}
	final := g.AddTask(fmt.Sprintf("t%d", 4*n+3), wcost(r, 5))
	g.MustAddDep(g1, final, wcost(r, 4))
	g.MustAddDep(g2, final, wcost(r, 4))
	return g
}
