package sim

import (
	"container/heap"
	"fmt"
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// ElasticOptions configures ExecuteElastic.
type ElasticOptions struct {
	// LinkContention serializes concurrent transfers on each directed
	// link (FIFO in request order). The paper's model — and every
	// scheduler here — assumes contention-free links; enabling this
	// shows how a schedule degrades on a platform with single-channel
	// links, a realism gap the robustness extension quantifies.
	LinkContention bool
}

// ExecuteElastic replays a schedule keeping only its decisions — node
// assignments and per-node execution order — and recomputing all times
// operationally: a task starts as soon as its node reaches it in order
// and its inputs have arrived; a transfer starts when its producer
// finishes (and, under LinkContention, when the link frees). Unlike
// Execute it never fails on late inputs; lateness simply propagates.
// The returned Result's Events log includes the transfer arrivals.
func ExecuteElastic(inst *graph.Instance, s *schedule.Schedule, opts ElasticOptions) (*Result, error) {
	g, net := inst.Graph, inst.Net
	n := g.NumTasks()
	if len(s.ByTask) != n {
		return nil, fmt.Errorf("sim: schedule covers %d tasks, instance has %d", len(s.ByTask), n)
	}
	if s.NumNodes != net.NumNodes() {
		return nil, fmt.Errorf("sim: schedule targets %d nodes, network has %d", s.NumNodes, net.NumNodes())
	}

	// Per-node order from the planned start times.
	order := make([][]int, net.NumNodes())
	for _, a := range s.Assignments() {
		if a.Node < 0 || a.Node >= net.NumNodes() {
			return nil, fmt.Errorf("sim: task %d assigned to invalid node %d", a.Task, a.Node)
		}
		order[a.Node] = append(order[a.Node], a.Task)
	}

	res := &Result{
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		NodeBusy: make([]float64, net.NumNodes()),
		LinkBusy: make([][]float64, net.NumNodes()),
	}
	for v := range res.LinkBusy {
		res.LinkBusy[v] = make([]float64, net.NumNodes())
	}

	delivered := make([]int, n)
	arrivedAt := make([]float64, n) // latest input arrival
	done := make([]bool, n)
	pos := make([]int, net.NumNodes()) // next index into order[v]
	nodeFree := make([]float64, net.NumNodes())
	linkFree := make([][]float64, net.NumNodes())
	for u := range linkFree {
		linkFree[u] = make([]float64, net.NumNodes())
	}

	var h eventHeap
	seq := 0
	push := func(e Event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}

	// tryStart fires the next task on node v if it is ready.
	tryStart := func(v int, now float64) {
		for pos[v] < len(order[v]) {
			t := order[v][pos[v]]
			if delivered[t] != len(g.Pred[t]) {
				return
			}
			start := math.Max(now, math.Max(nodeFree[v], arrivedAt[t]))
			exec := inst.ExecTime(t, v)
			pos[v]++
			nodeFree[v] = start + exec
			res.Start[t] = start
			res.NodeBusy[v] += exec
			push(Event{Time: start, Kind: EventTaskStart, Task: t, Src: -1, Node: v})
			push(Event{Time: start + exec, Kind: EventTaskFinish, Task: t, Src: -1, Node: v})
			now = nodeFree[v]
		}
	}

	for v := range order {
		tryStart(v, 0)
	}

	completed := 0
	for h.Len() > 0 {
		e := heap.Pop(&h).(Event)
		res.Events = append(res.Events, e)
		switch e.Kind {
		case EventTaskFinish:
			t := e.Task
			if done[t] {
				return nil, fmt.Errorf("sim: task %d finished twice", t)
			}
			done[t] = true
			res.Finish[t] = e.Time
			if e.Time > res.Makespan {
				res.Makespan = e.Time
			}
			completed++
			for _, d := range g.Succ[t] {
				dst := s.ByTask[d.To].Node
				delay := inst.CommTime(t, d.To, e.Node, dst)
				arrive := e.Time + delay
				if dst != e.Node && delay > 0 {
					if opts.LinkContention {
						begin := math.Max(e.Time, linkFree[e.Node][dst])
						arrive = begin + delay
						linkFree[e.Node][dst] = arrive
					}
					res.Messages++
					res.LinkBusy[e.Node][dst] += delay
				}
				push(Event{Time: arrive, Kind: EventMessageArrive, Task: d.To, Src: t, Node: dst})
			}
			tryStart(e.Node, e.Time)

		case EventMessageArrive:
			delivered[e.Task]++
			if e.Time > arrivedAt[e.Task] {
				arrivedAt[e.Task] = e.Time
			}
			tryStart(e.Node, e.Time)

		case EventTaskStart:
			// Informational: start decisions are made in tryStart.
		}
	}
	if completed != n {
		return nil, fmt.Errorf("sim: only %d of %d tasks completed (order/precedence deadlock)", completed, n)
	}
	return res, nil
}
