// Package sim is a discrete-event executor for schedules: it replays a
// schedule on a simulated platform — compute nodes processing one task
// at a time, point-to-point links carrying task outputs — and reports
// when every task and message actually started and finished.
//
// The analytic model of package schedule computes the same quantities in
// closed form; this simulator derives them operationally from an event
// queue. Running both and comparing (see the differential tests in
// package schedulers and here) independently validates every scheduler:
// a schedule is executable exactly as written if and only if the
// simulation can fire every task at its scheduled start with all inputs
// already delivered and its node idle.
//
// The simulator follows the paper's platform assumptions: a node
// executes one task at a time at fixed speed; every ordered node pair
// has a dedicated link (no contention); a transfer of c(t, t') over link
// (v, v') takes c(t, t')/s(v, v'); local transfers are instantaneous.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// EventKind enumerates simulation events.
type EventKind int

// Event kinds. The numeric order is the tie-break order at equal
// timestamps: deliveries and completions release resources before new
// work begins.
const (
	// EventMessageArrive delivers one task output to one node.
	EventMessageArrive EventKind = iota
	// EventTaskFinish completes a task and emits its output messages.
	EventTaskFinish
	// EventTaskStart begins a task's execution on its node.
	EventTaskStart
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventMessageArrive:
		return "message-arrive"
	case EventTaskFinish:
		return "task-finish"
	case EventTaskStart:
		return "task-start"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one timestamped simulation event. For message events, Src is
// the producing task and Task the consuming one; otherwise Src is -1.
// Node is where the event takes place (the destination node for
// messages).
type Event struct {
	Time float64
	Kind EventKind
	Task int
	Src  int
	Node int
	seq  int // insertion order, the final tie-break
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Kind != h[j].Kind {
		return h[i].Kind < h[j].Kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// Result is the outcome of executing a schedule.
type Result struct {
	// Start and Finish are the simulated per-task times; for a feasible
	// schedule they equal the schedule's own Start/End fields.
	Start, Finish []float64
	// Makespan is the simulated completion time of the last task.
	Makespan float64
	// Events is the full event log in processing order.
	Events []Event
	// Messages counts remote transfers (local deliveries excluded).
	Messages int
	// NodeBusy[v] is the total execution time on node v; LinkBusy[u][v]
	// the total transfer time on the directed link u→v. Together they
	// give platform utilization.
	NodeBusy []float64
	LinkBusy [][]float64
}

// Utilization returns the fraction of node-time spent executing over the
// makespan (1 = perfectly packed). Zero-makespan schedules report 0.
func (r *Result) Utilization() float64 {
	if r.Makespan == 0 {
		return 0
	}
	busy := 0.0
	for _, b := range r.NodeBusy {
		busy += b
	}
	return busy / (r.Makespan * float64(len(r.NodeBusy)))
}

// Execute replays the schedule on the instance's platform. It returns an
// error if the schedule is not operationally executable: a task's start
// event fires while an input is undelivered or its node is still busy,
// or the schedule is structurally inconsistent with the instance.
func Execute(inst *graph.Instance, s *schedule.Schedule) (*Result, error) {
	g, net := inst.Graph, inst.Net
	n := g.NumTasks()
	if len(s.ByTask) != n {
		return nil, fmt.Errorf("sim: schedule covers %d tasks, instance has %d", len(s.ByTask), n)
	}
	if s.NumNodes != net.NumNodes() {
		return nil, fmt.Errorf("sim: schedule targets %d nodes, network has %d", s.NumNodes, net.NumNodes())
	}

	res := &Result{
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		NodeBusy: make([]float64, net.NumNodes()),
		LinkBusy: make([][]float64, net.NumNodes()),
	}
	for v := range res.LinkBusy {
		res.LinkBusy[v] = make([]float64, net.NumNodes())
	}

	delivered := make([]int, n) // inputs available at the task's node
	running := make([]bool, n)  // task currently executing
	nodeFree := make([]float64, net.NumNodes())
	nodeIdle := make([]bool, net.NumNodes())
	for v := range nodeIdle {
		nodeIdle[v] = true
	}

	var h eventHeap
	seq := 0
	push := func(e Event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}
	for t, a := range s.ByTask {
		if a.Node < 0 || a.Node >= net.NumNodes() {
			return nil, fmt.Errorf("sim: task %d assigned to invalid node %d", t, a.Node)
		}
		push(Event{Time: a.Start, Kind: EventTaskStart, Task: t, Src: -1, Node: a.Node})
	}

	completed := 0
	for h.Len() > 0 {
		e := heap.Pop(&h).(Event)
		res.Events = append(res.Events, e)
		switch e.Kind {
		case EventTaskStart:
			t := e.Task
			if delivered[t] != len(g.Pred[t]) {
				return nil, fmt.Errorf("sim: task %d starts at %v with %d of %d inputs delivered",
					t, e.Time, delivered[t], len(g.Pred[t]))
			}
			if !nodeIdle[e.Node] && nodeFree[e.Node] > e.Time+graph.Eps {
				return nil, fmt.Errorf("sim: task %d starts at %v on node %d, busy until %v",
					t, e.Time, e.Node, nodeFree[e.Node])
			}
			exec := inst.ExecTime(t, e.Node)
			running[t] = true
			nodeIdle[e.Node] = false
			nodeFree[e.Node] = e.Time + exec
			res.Start[t] = e.Time
			res.NodeBusy[e.Node] += exec
			push(Event{Time: e.Time + exec, Kind: EventTaskFinish, Task: t, Src: -1, Node: e.Node})

		case EventTaskFinish:
			t := e.Task
			if !running[t] {
				return nil, fmt.Errorf("sim: finish event for non-running task %d", t)
			}
			running[t] = false
			nodeIdle[e.Node] = true
			res.Finish[t] = e.Time
			if e.Time > res.Makespan {
				res.Makespan = e.Time
			}
			completed++
			// Emit output messages toward every successor's node.
			for _, d := range g.Succ[t] {
				dst := s.ByTask[d.To].Node
				delay := inst.CommTime(t, d.To, e.Node, dst)
				if dst != e.Node && !math.IsInf(net.Links[e.Node][dst], 1) {
					res.Messages++
					res.LinkBusy[e.Node][dst] += delay
				}
				push(Event{Time: e.Time + delay, Kind: EventMessageArrive, Task: d.To, Src: t, Node: dst})
			}

		case EventMessageArrive:
			delivered[e.Task]++
		}
	}
	if completed != n {
		return nil, fmt.Errorf("sim: only %d of %d tasks completed", completed, n)
	}
	return res, nil
}
