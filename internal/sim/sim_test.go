package sim

import (
	"strings"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
)

// TestDifferentialAllSchedulers is the cross-check this package exists
// for: for every algorithm and a spread of random instances, the
// discrete-event execution must succeed and reproduce the analytic
// start/finish times exactly.
func TestDifferentialAllSchedulers(t *testing.T) {
	r := rng.New(0x51D)
	var instances []*graph.Instance
	for i := 0; i < 15; i++ {
		instances = append(instances, datasets.InitialPISAInstance(r.Split()))
	}
	// Add structured instances: workflows and figure examples.
	instances = append(instances, datasets.Fig1Instance(), datasets.Fig3Instance(true))
	for _, wf := range []string{"blast", "montage", "genome"} {
		g, err := datasets.WorkflowRecipe(wf, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		net := graph.NewNetwork(4)
		net.Speeds[1] = 2
		instances = append(instances, graph.NewInstance(g, net))
	}

	for _, s := range schedulers.Experimental() {
		for i, inst := range instances {
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("%s on instance %d: %v", s.Name(), i, err)
			}
			res, err := Execute(inst, sch)
			if err != nil {
				t.Fatalf("%s on instance %d: simulation rejected schedule: %v", s.Name(), i, err)
			}
			for tk, a := range sch.ByTask {
				if res.Start[tk] != a.Start || res.Finish[tk] != a.End {
					t.Fatalf("%s instance %d task %d: simulated [%v,%v], analytic [%v,%v]",
						s.Name(), i, tk, res.Start[tk], res.Finish[tk], a.Start, a.End)
				}
			}
			if !graph.ApproxEq(res.Makespan, sch.Makespan()) {
				t.Fatalf("%s instance %d: simulated makespan %v != analytic %v",
					s.Name(), i, res.Makespan, sch.Makespan())
			}
		}
	}
}

func fig1Schedule(t *testing.T, name string) (*graph.Instance, *schedule.Schedule) {
	t.Helper()
	inst := datasets.Fig1Instance()
	s, err := scheduler.New(name)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	return inst, sch
}

func TestExecuteRejectsEarlyStart(t *testing.T) {
	inst, sch := fig1Schedule(t, "HEFT")
	// Pull a non-source task earlier than its inputs can arrive.
	for tk := range sch.ByTask {
		if len(inst.Graph.Pred[tk]) > 0 {
			d := sch.ByTask[tk].End - sch.ByTask[tk].Start
			sch.ByTask[tk].Start = 0
			sch.ByTask[tk].End = d
			break
		}
	}
	if _, err := Execute(inst, sch); err == nil {
		t.Fatal("early start accepted")
	} else if !strings.Contains(err.Error(), "inputs delivered") && !strings.Contains(err.Error(), "busy") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestExecuteRejectsNodeOverlap(t *testing.T) {
	// Two independent tasks forced onto one node at the same time.
	g := graph.NewTaskGraph()
	g.AddTask("a", 2)
	g.AddTask("b", 2)
	inst := graph.NewInstance(g, graph.NewNetwork(1))
	sch := &schedule.Schedule{
		NumNodes: 1,
		ByTask: []schedule.Assignment{
			{Task: 0, Node: 0, Start: 0, End: 2},
			{Task: 1, Node: 0, Start: 1, End: 3},
		},
	}
	if _, err := Execute(inst, sch); err == nil {
		t.Fatal("overlapping execution accepted")
	}
}

func TestExecuteRejectsShapeMismatches(t *testing.T) {
	inst, sch := fig1Schedule(t, "HEFT")
	bad := &schedule.Schedule{NumNodes: sch.NumNodes}
	if _, err := Execute(inst, bad); err == nil {
		t.Fatal("task-count mismatch accepted")
	}
	sch2 := &schedule.Schedule{NumNodes: 99, ByTask: sch.ByTask}
	if _, err := Execute(inst, sch2); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	sch3 := &schedule.Schedule{NumNodes: sch.NumNodes, ByTask: append([]schedule.Assignment(nil), sch.ByTask...)}
	sch3.ByTask[0].Node = -1
	if _, err := Execute(inst, sch3); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestMessageCounting(t *testing.T) {
	// Chain a→b across two nodes: exactly one remote message; same node:
	// zero.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddDep(a, b, 2)
	net := graph.NewNetwork(2)
	net.SetLink(0, 1, 1)
	inst := graph.NewInstance(g, net)

	remote := &schedule.Schedule{NumNodes: 2, ByTask: []schedule.Assignment{
		{Task: 0, Node: 0, Start: 0, End: 1},
		{Task: 1, Node: 1, Start: 3, End: 4}, // 1 + 2/1 = 3 arrival
	}}
	res, err := Execute(inst, remote)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 {
		t.Fatalf("Messages = %d, want 1", res.Messages)
	}
	if res.LinkBusy[0][1] != 2 {
		t.Fatalf("LinkBusy = %v, want 2", res.LinkBusy[0][1])
	}

	local := &schedule.Schedule{NumNodes: 2, ByTask: []schedule.Assignment{
		{Task: 0, Node: 0, Start: 0, End: 1},
		{Task: 1, Node: 0, Start: 1, End: 2},
	}}
	res2, err := Execute(inst, local)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Messages != 0 {
		t.Fatalf("local Messages = %d, want 0", res2.Messages)
	}
}

func TestUtilization(t *testing.T) {
	// FastestNode on a single-node network: utilization 1 (no idle).
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 3)
	g.MustAddDep(a, b, 1)
	inst := graph.NewInstance(g, graph.NewNetwork(1))
	s, _ := scheduler.New("FastestNode")
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(inst, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(res.Utilization(), 1) {
		t.Fatalf("utilization = %v, want 1", res.Utilization())
	}
}

func TestEventLogOrdering(t *testing.T) {
	inst, sch := fig1Schedule(t, "CPoP")
	res, err := Execute(inst, sch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Time < res.Events[i-1].Time-graph.Eps {
			t.Fatalf("event log out of order at %d: %v after %v",
				i, res.Events[i].Time, res.Events[i-1].Time)
		}
	}
	// Every task contributes exactly one start and one finish.
	starts, finishes := 0, 0
	for _, e := range res.Events {
		switch e.Kind {
		case EventTaskStart:
			starts++
		case EventTaskFinish:
			finishes++
		}
	}
	if starts != inst.Graph.NumTasks() || finishes != inst.Graph.NumTasks() {
		t.Fatalf("starts=%d finishes=%d, want %d each", starts, finishes, inst.Graph.NumTasks())
	}
}

func TestEventKindString(t *testing.T) {
	if EventTaskStart.String() != "task-start" ||
		EventTaskFinish.String() != "task-finish" ||
		EventMessageArrive.String() != "message-arrive" {
		t.Fatal("EventKind.String broken")
	}
	if EventKind(42).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

// TestSimulatedAnnealingInstancesExecutable closes the loop with PISA:
// adversarial instances found by the annealer yield schedules that the
// simulator executes with matching makespans.
func TestSimulatedAnnealingInstancesExecutable(t *testing.T) {
	r := rng.New(0xADA)
	for i := 0; i < 10; i++ {
		inst := datasets.InitialPISAInstance(r.Split())
		for _, name := range []string{"HEFT", "CPoP", "FastestNode"} {
			s, _ := scheduler.New(name)
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Execute(inst, sch)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !graph.ApproxEq(res.Makespan, sch.Makespan()) {
				t.Fatalf("%s: %v != %v", name, res.Makespan, sch.Makespan())
			}
		}
	}
}
