package sim

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/schedulers"
)

// TestElasticNeverWorseThanPlanWithoutContention: with contention off,
// keeping a schedule's assignments and per-node order but starting
// everything as early as possible can only tighten the makespan.
func TestElasticNeverWorseThanPlanWithoutContention(t *testing.T) {
	r := rng.New(0xE1A)
	for i := 0; i < 10; i++ {
		inst := datasets.InitialPISAInstance(r.Split())
		for _, s := range schedulers.Experimental() {
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ExecuteElastic(inst, sch, ElasticOptions{})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if res.Makespan > sch.Makespan()+graph.Eps {
				t.Fatalf("%s: elastic %v worse than planned %v",
					s.Name(), res.Makespan, sch.Makespan())
			}
		}
	}
}

// TestElasticMatchesStrictForBuilderSchedules: builder schedules start
// every task at its earliest feasible time already, so the elastic
// replay reproduces the planned makespan exactly (not just <=).
func TestElasticMatchesStrictForBuilderSchedules(t *testing.T) {
	inst := datasets.Fig1Instance()
	for _, name := range []string{"HEFT", "CPoP", "MCT", "FastestNode"} {
		s := mustNew(t, name)
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExecuteElastic(inst, sch, ElasticOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.ApproxEq(res.Makespan, sch.Makespan()) {
			t.Fatalf("%s: elastic %v != planned %v", name, res.Makespan, sch.Makespan())
		}
	}
}

func TestElasticContentionSerializesTransfers(t *testing.T) {
	// Two producers on node 0 finish at the same time and both send
	// 1-second transfers to node 1. Contention-free: both consumers'
	// inputs arrive at t=2. With contention the second transfer waits:
	// arrivals at 2 and 3.
	g := graph.NewTaskGraph()
	p1 := g.AddTask("p1", 1)
	p2 := g.AddTask("p2", 1)
	c1 := g.AddTask("c1", 1)
	c2 := g.AddTask("c2", 1)
	g.MustAddDep(p1, c1, 1)
	g.MustAddDep(p2, c2, 1)
	net := graph.NewNetwork(3)
	net.SetLink(0, 1, 1)
	net.SetLink(0, 2, 1)
	net.SetLink(1, 2, 1)
	inst := graph.NewInstance(g, net)

	// Plan: p1 and p2 back-to-back on node 0? They must finish at the
	// same time to contend; put them on nodes 0 and... both transfers
	// must share the SAME directed link, so run both producers on node 0
	// sequentially and both consumers on node 1.
	plan := &schedule.Schedule{NumNodes: 3, ByTask: []schedule.Assignment{
		{Task: p1, Node: 0, Start: 0, End: 1},
		{Task: p2, Node: 0, Start: 1, End: 2},
		{Task: c1, Node: 1, Start: 2, End: 3},
		{Task: c2, Node: 1, Start: 3, End: 4},
	}}
	free, err := ExecuteElastic(inst, plan, ElasticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	contended, err := ExecuteElastic(inst, plan, ElasticOptions{LinkContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if contended.Makespan < free.Makespan-graph.Eps {
		t.Fatalf("contention improved the makespan: %v < %v", contended.Makespan, free.Makespan)
	}
	// Transfers here never overlap (producers finish 1 apart, transfers
	// take 1), so both modes agree. Force an actual clash: shrink p2 so
	// its transfer wants the link while p1's is still in flight, and
	// shrink c1 so node 1's own serialization doesn't mask the effect.
	inst.Graph.Tasks[p2].Cost = 0.2
	inst.Graph.Tasks[c1].Cost = 0.1
	plan2 := &schedule.Schedule{NumNodes: 3, ByTask: []schedule.Assignment{
		{Task: p1, Node: 0, Start: 0, End: 1},
		{Task: p2, Node: 0, Start: 1, End: 1.2},
		{Task: c1, Node: 1, Start: 2, End: 3},
		{Task: c2, Node: 1, Start: 3, End: 4},
	}}
	free2, err := ExecuteElastic(inst, plan2, ElasticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cont2, err := ExecuteElastic(inst, plan2, ElasticOptions{LinkContention: true})
	if err != nil {
		t.Fatal(err)
	}
	// Contention-free: p2's transfer arrives at 2.2 and c1 is done by
	// 2.1, so c2 starts at 2.2. Contended: the link is busy with p1's
	// transfer until 2, so p2's data arrives at 3.
	if !graph.ApproxEq(free2.Start[c2], 2.2) {
		t.Fatalf("free c2 start = %v, want 2.2", free2.Start[c2])
	}
	if cont2.Start[c2] < 3-graph.Eps {
		t.Fatalf("contended c2 start = %v, want >= 3 (serialized transfer)", cont2.Start[c2])
	}
	if cont2.Makespan < free2.Makespan-graph.Eps {
		t.Fatal("contention cannot shorten the makespan")
	}
}

func TestElasticContentionNeverFaster(t *testing.T) {
	r := rng.New(0xC0DE)
	for i := 0; i < 10; i++ {
		inst := datasets.InitialPISAInstance(r.Split())
		for _, name := range []string{"HEFT", "MinMin", "OLB"} {
			s := mustNew(t, name)
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			free, err := ExecuteElastic(inst, sch, ElasticOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cont, err := ExecuteElastic(inst, sch, ElasticOptions{LinkContention: true})
			if err != nil {
				t.Fatal(err)
			}
			if cont.Makespan < free.Makespan-graph.Eps {
				t.Fatalf("%s: contended %v faster than free %v",
					name, cont.Makespan, free.Makespan)
			}
		}
	}
}

func TestElasticShapeErrors(t *testing.T) {
	inst := datasets.Fig1Instance()
	if _, err := ExecuteElastic(inst, &schedule.Schedule{NumNodes: 3}, ElasticOptions{}); err == nil {
		t.Fatal("task-count mismatch accepted")
	}
}

func mustNew(t *testing.T, name string) interface {
	Schedule(*graph.Instance) (*schedule.Schedule, error)
	Name() string
} {
	t.Helper()
	for _, s := range schedulers.Experimental() {
		if s.Name() == name {
			return s
		}
	}
	t.Fatalf("unknown scheduler %s", name)
	return nil
}
