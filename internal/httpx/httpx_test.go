package httpx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type payload struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func TestWriteReadRoundTrip(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in payload
		if !ReadJSON(w, r, &in) {
			return
		}
		in.N++
		WriteJSON(w, in)
	}))
	defer srv.Close()

	var out payload
	err := PostJSON(context.Background(), http.DefaultClient, srv.URL, payload{Name: "x", N: 1}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "x" || out.N != 2 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestWriteJSONFraming(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, payload{Name: "a", N: 7})
	// The single response-encoding path: compact JSON plus exactly one
	// trailing newline — the framing the serve byte-identity suite
	// builds its expectations on.
	if got, want := rec.Body.String(), `{"name":"a","n":7}`+"\n"; got != want {
		t.Fatalf("framing: %q, want %q", got, want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in payload
		if !ReadJSON(w, r, &in) {
			return
		}
		WriteJSON(w, in)
	}))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/json", strings.NewReader(`{"name": `))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestDoJSONStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot refuses", http.StatusTeapot)
	}))
	defer srv.Close()

	var out payload
	err := GetJSON(context.Background(), http.DefaultClient, srv.URL+"/brew", &out)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T), want *StatusError", err, err)
	}
	if se.Code != http.StatusTeapot || se.Body != "teapot refuses" || se.Path != "/brew" || se.Method != "GET" {
		t.Fatalf("status error fields: %+v", se)
	}
	if msg := se.Error(); !strings.Contains(msg, "teapot refuses") || !strings.Contains(msg, "/brew") {
		t.Fatalf("error text drops context: %q", msg)
	}
	if IsConnErr(err) {
		t.Fatal("a non-200 answer is not a connection error")
	}
}

func TestIsConnErr(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // gone: dials now fail

	var out payload
	err := GetJSON(context.Background(), http.DefaultClient, srv.URL, &out)
	if err == nil {
		t.Fatal("GET against a closed server succeeded")
	}
	if !IsConnErr(err) {
		t.Fatalf("refused connection not recognized: %v", err)
	}
	if IsConnErr(io.EOF) != true {
		t.Fatal("io.EOF (server died mid-response) must count as a connection error")
	}
	if IsConnErr(fmt.Errorf("some app error")) {
		t.Fatal("plain errors must not count as connection errors")
	}
	if IsConnErr(nil) {
		t.Fatal("nil is not a connection error")
	}
}
