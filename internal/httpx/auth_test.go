package httpx

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestCheckBearer(t *testing.T) {
	req := func(header string) *http.Request {
		r := httptest.NewRequest("GET", "/", nil)
		if header != "" {
			r.Header.Set("Authorization", header)
		}
		return r
	}
	cases := []struct {
		name   string
		header string
		token  string
		want   bool
	}{
		{"empty token admits everyone", "", "", true},
		{"empty token ignores headers", "Bearer whatever", "", true},
		{"matching token", "Bearer s3cret", "s3cret", true},
		{"missing header", "", "s3cret", false},
		{"wrong token", "Bearer nope", "s3cret", false},
		{"wrong scheme", "Basic s3cret", "s3cret", false},
		{"token is a prefix", "Bearer s3cret-and-more", "s3cret", false},
		{"header is a prefix", "Bearer s3c", "s3cret", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckBearer(req(tc.header), tc.token); got != tc.want {
				t.Fatalf("CheckBearer(%q, %q) = %v, want %v", tc.header, tc.token, got, tc.want)
			}
		})
	}
}

func TestNewBearerClientAttachesToken(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !CheckBearer(r, "s3cret") {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		WriteJSON(w, map[string]bool{"ok": true})
	}))
	defer srv.Close()

	var out map[string]bool
	if err := GetJSON(context.Background(), NewBearerClient(nil, "s3cret"), srv.URL, &out); err != nil || !out["ok"] {
		t.Fatalf("authed call: %v %v", out, err)
	}
	if err := GetJSON(context.Background(), NewBearerClient(nil, ""), srv.URL, &out); err == nil {
		t.Fatal("tokenless client passed a guarded endpoint")
	}
}

func TestNewBearerClientEmptyTokenReturnsBase(t *testing.T) {
	base := &http.Client{}
	if got := NewBearerClient(base, ""); got != base {
		t.Fatal("empty token should return the base client unchanged")
	}
	if got := NewBearerClient(nil, ""); got != http.DefaultClient {
		t.Fatal("nil base + empty token should be http.DefaultClient")
	}
}

func TestBearerTransportDoesNotMutateRequest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, map[string]bool{"ok": true})
	}))
	defer srv.Close()
	req, err := http.NewRequest("GET", srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewBearerClient(nil, "tok").Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if req.Header.Get("Authorization") != "" {
		t.Fatal("RoundTrip mutated the caller's request headers")
	}
}
