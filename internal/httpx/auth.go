package httpx

import (
	"crypto/subtle"
	"net/http"
)

// Bearer auth is the repo's first authentication step (ROADMAP
// "TLS/auth"): a single shared secret, presented as an
// `Authorization: Bearer <token>` header, checked in constant time on
// both the coordinator and the daemon. It keeps a stray client on a
// shared network from submitting work or reading results; it is not a
// substitute for TLS when the token must cross an untrusted link.

// CheckBearer reports whether r carries the expected bearer token. An
// empty token disables the check (every request passes). The comparison
// is constant-time so the token cannot be guessed byte by byte.
func CheckBearer(r *http.Request, token string) bool {
	if token == "" {
		return true
	}
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) < len(prefix) || h[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(token)) == 1
}

// NewBearerClient returns a client that attaches the bearer token to
// every request. A nil base starts from http.DefaultClient; an empty
// token returns base (or the default client) unchanged.
func NewBearerClient(base *http.Client, token string) *http.Client {
	if base == nil {
		base = http.DefaultClient
	}
	if token == "" {
		return base
	}
	c := *base
	rt := c.Transport
	if rt == nil {
		rt = http.DefaultTransport
	}
	c.Transport = &bearerTransport{token: token, next: rt}
	return &c
}

type bearerTransport struct {
	token string
	next  http.RoundTripper
}

func (t *bearerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Per RoundTripper contract the request is not mutated in place.
	r2 := req.Clone(req.Context())
	r2.Header.Set("Authorization", "Bearer "+t.token)
	return t.next.RoundTrip(r2)
}
