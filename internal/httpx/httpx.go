// Package httpx holds the small JSON-over-HTTP helpers shared by the
// repo's network-facing layers: the sweep coordinator (internal/coord)
// and the scheduling daemon (internal/serve). Both speak the same plain
// dialect — JSON request bodies, JSON responses, errors as non-200
// statuses with a plain-text body — and centralizing the encode/decode
// plumbing keeps the two protocols byte-compatible in how they frame
// payloads and bound request sizes.
//
// The key invariant: a handler answers exactly one of (200 + JSON body)
// or (non-200 + plain-text error), and every body — request or response
// — is capped at MaxBodyBytes so an untrusted peer cannot balloon
// server memory.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
)

// MaxBodyBytes caps request and response bodies (64 MiB — generous for
// instance JSON at the scales the repo targets, small enough that a
// hostile peer cannot exhaust memory with one request).
const MaxBodyBytes = 64 << 20

// WriteJSON encodes v as the JSON response body. It is the single
// response-encoding path of every handler, so response bytes are
// deterministic: json.Marshal framing plus the encoder's trailing
// newline.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// ReadJSON decodes the request body into v, answering 400 with the
// decode error and returning false on malformed input. The body is
// capped at MaxBodyBytes.
func ReadJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// GetJSON issues a GET and decodes the JSON response into out.
func GetJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return DoJSON(client, req, out)
}

// PostJSON issues a POST with in as the JSON body and decodes the JSON
// response into out.
func PostJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return DoJSON(client, req, out)
}

// DoJSON executes req and decodes the JSON response into out. A non-200
// status is an answer, not an outage: it becomes an error carrying the
// status and the server's plain-text body.
func DoJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Status: resp.Status,
			Method: req.Method, Path: req.URL.Path, Body: strings.TrimSpace(string(data))}
	}
	return json.Unmarshal(data, out)
}

// StatusError is a non-200 answer: the peer was reachable and said no.
// Callers branch on Code (the daemon's thin clients distinguish 400
// from 503) while the message keeps the server's own words.
type StatusError struct {
	Code   int
	Status string
	Method string
	Path   string
	Body   string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("%s %s: %s: %s", e.Method, e.Path, e.Status, e.Body)
}

// IsConnErr recognizes connection-level failures a vanished peer
// produces (refused, reset, dial errors) that do not implement
// net.Error, plus those that do. Retry loops use it to tell "the
// process is gone" from "the process answered an error".
func IsConnErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	var se *os.SyscallError
	return errors.As(err, &se)
}
