package httpx

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestDelayScheduleGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: 800 * time.Millisecond, Jitter: -1}
	wants := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, want := range wants {
		if got := p.Delay(i); got != want*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
}

func TestDelayJitterIsDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.25, Seed: 7}
	for i := 0; i < 5; i++ {
		d1, d2 := p.Delay(i), p.Delay(i)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", i, d1, d2)
		}
		base := RetryPolicy{Base: p.Base, Cap: p.Cap, Jitter: -1}.Delay(i)
		if d1 < base || d1 >= base+time.Duration(0.25*float64(base))+time.Nanosecond {
			t.Fatalf("Delay(%d) = %v outside [%v, %v·1.25)", i, d1, base, base)
		}
	}
	// Different seeds spread the fleet: at least one attempt differs.
	q := p
	q.Seed = 8
	same := true
	for i := 0; i < 5; i++ {
		if p.Delay(i) != q.Delay(i) {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced an identical backoff schedule; no de-stampeding")
	}
}

func TestDoRetriesOutagesNotAnswers(t *testing.T) {
	noSleep := func(ctx context.Context, d time.Duration) error { return nil }

	// A connection error is retried until the budget runs out...
	calls := 0
	p := RetryPolicy{Attempts: 3, sleep: noSleep} // default Retryable: IsConnErr
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return &net.OpError{Op: "dial", Err: errors.New("connection refused")}
	})
	if calls != 3 || err == nil {
		t.Fatalf("outage: %d calls (want 3), err %v", calls, err)
	}

	// ...an HTTP answer is final on the first try.
	calls = 0
	err = p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return &StatusError{Code: http.StatusConflict, Status: "409"}
	})
	var se *StatusError
	if calls != 1 || !errors.As(err, &se) {
		t.Fatalf("answer retried: %d calls, err %v", calls, err)
	}

	// ...and success stops immediately.
	calls = 0
	if err := p.Do(context.Background(), func(ctx context.Context) error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("success: %d calls, err %v", calls, err)
	}
}

func TestDoPerTryTimeoutBoundsAHungPeer(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-r.Context().Done() // hang until the per-try timeout fires
	}))
	defer srv.Close()

	p := RetryPolicy{
		Attempts: 2, PerTry: 50 * time.Millisecond,
		sleep: func(ctx context.Context, d time.Duration) error { return nil },
	}
	start := time.Now()
	var out struct{}
	err := p.Do(context.Background(), func(ctx context.Context) error {
		return GetJSON(ctx, http.DefaultClient, srv.URL, &out)
	})
	if err == nil {
		t.Fatal("hung peer reported success")
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("hung peer tried %d times, want 2", got)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("per-try timeout did not bound the hang: %v elapsed", e)
	}
}

func TestDoCancelledMidBackoffReturnsLastRealError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{
		Attempts:  5,
		Retryable: func(error) bool { return true },
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	opErr := errors.New("the real failure")
	err := p.Do(ctx, func(ctx context.Context) error { return opErr })
	if !errors.Is(err, opErr) {
		t.Fatalf("cancellation hid the real failure: %v", err)
	}
}
