package httpx

import (
	"context"
	"time"
)

// RetryPolicy paces retries of idempotent JSON calls against a peer that
// may be mid-restart: each attempt gets its own timeout, and failed
// attempts back off exponentially with deterministic jitter so a fleet
// of clients does not re-dial a recovering coordinator in lockstep.
// Every daemon↔coordinator hop in the dispatch path runs under one of
// these — a hung peer costs PerTry, never an unbounded wait, and the
// parent context bounds the whole call (cancel the request, cancel the
// retry loop).
//
// The zero value is usable: Do applies the documented defaults.
type RetryPolicy struct {
	// Attempts is the maximum number of tries (default 3).
	Attempts int
	// PerTry bounds each individual attempt (default 2s). Values <= 0
	// leave only the parent context's deadline in force.
	PerTry time.Duration
	// Base is the delay before the second attempt (default 100ms); each
	// further delay doubles, capped at Cap (default 2s).
	Base time.Duration
	// Cap is the backoff ceiling (default 2s).
	Cap time.Duration
	// Jitter widens each delay by a uniform fraction in [0, Jitter)
	// (default 0.25). Negative disables; the stream is seeded by Seed,
	// so a test with a fixed Seed observes fixed delays.
	Jitter float64
	// Seed seeds the jitter stream (default 1).
	Seed uint64
	// Retryable decides whether an error is worth another attempt
	// (default IsConnErr: retry outages, never answers — a 4xx/5xx is
	// the peer's decision, not a transport failure).
	Retryable func(error) bool

	// sleep is a test seam; nil means time.Sleep via a timer that
	// honors ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.PerTry == 0 {
		p.PerTry = 2 * time.Second
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.25
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Retryable == nil {
		p.Retryable = IsConnErr
	}
	if p.sleep == nil {
		p.sleep = ctxSleep
	}
	return p
}

// Delay returns the backoff before attempt i (0-based: Delay(0) is the
// pause after the first failure): Base·2^i capped at Cap, widened by the
// policy's jitter fraction. Exposed so tests can pin the schedule.
func (p RetryPolicy) Delay(i int) time.Duration {
	p = p.withDefaults()
	d := p.Base
	for ; i > 0 && d < p.Cap; i-- {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	if p.Jitter > 0 {
		// splitmix64 over (Seed, attempt) — deterministic per policy, no
		// shared state, so concurrent Do calls never contend.
		u := splitmix64(p.Seed + uint64(i)*0x9e3779b97f4a7c15)
		frac := float64(u>>11) / float64(1<<53)
		d += time.Duration(frac * p.Jitter * float64(d))
	}
	return d
}

// Do runs op with per-attempt timeouts until it succeeds, exhausts
// Attempts, returns a non-retryable error, or ctx is cancelled. The last
// error is returned unwrapped so callers can classify it (IsConnErr,
// StatusError); ctx cancellation wins over a retryable failure.
func (p RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var err error
	for i := 0; i < p.Attempts; i++ {
		if i > 0 {
			if serr := p.sleep(ctx, p.Delay(i-1)); serr != nil {
				return err // cancelled mid-backoff: report the last real failure
			}
		}
		attempt := ctx
		cancel := context.CancelFunc(func() {})
		if p.PerTry > 0 {
			attempt, cancel = context.WithTimeout(ctx, p.PerTry)
		}
		err = op(attempt)
		cancel()
		if err == nil || !p.Retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
