package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() && s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams appear identical")
	}
	// Splits are reproducible.
	r2 := New(7)
	t1 := r2.Split()
	if New(7).Split().Uint64() != t1.Uint64() {
		t.Fatal("split not reproducible from the same parent seed")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(7) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntBetween(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween(3,5) out of range: %d", v)
		}
	}
	if got := r.IntBetween(9, 9); got != 9 {
		t.Fatalf("IntBetween(9,9) = %d", got)
	}
}

func TestIntBetweenPanicsWhenInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntBetween(5,3) did not panic")
		}
	}()
	New(1).IntBetween(5, 3)
}

func TestUniform(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform(-2,3) out of range: %v", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(8)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Gaussian(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("gaussian mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("gaussian stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestClippedGaussianBounds(t *testing.T) {
	r := New(9)
	clippedLo, clippedHi := false, false
	for i := 0; i < 100000; i++ {
		v := r.ClippedGaussian(1, 1.0/3, 0, 2)
		if v < 0 || v > 2 {
			t.Fatalf("ClippedGaussian out of [0,2]: %v", v)
		}
		if v == 0 {
			clippedLo = true
		}
		if v == 2 {
			clippedHi = true
		}
	}
	// With sd = 1/3 around 1, 3-sigma clipping happens but rarely; make
	// sure the clamp path is actually exercised with a wide sd.
	for i := 0; i < 1000; i++ {
		v := r.ClippedGaussian(1, 5, 0, 2)
		if v == 0 {
			clippedLo = true
		}
		if v == 2 {
			clippedHi = true
		}
	}
	if !clippedLo || !clippedHi {
		t.Error("clamp paths never exercised")
	}
}

func TestPositiveClippedGaussian(t *testing.T) {
	r := New(10)
	for i := 0; i < 100000; i++ {
		if v := r.PositiveClippedGaussian(1, 5, 0); v < 0 {
			t.Fatalf("PositiveClippedGaussian below 0: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsZeroWeights(t *testing.T) {
	r := New(12)
	w := []float64{0, 1, 0, 2}
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("Choice selected zero-weight index: %v", counts)
	}
	if counts[3] < counts[1] {
		t.Errorf("weight-2 index drawn less than weight-1 index: %v", counts)
	}
}

func TestChoicePanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with zero total did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: %v", xs)
	}
}

func TestUniformQuickProperty(t *testing.T) {
	r := New(14)
	err := quick.Check(func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi || math.IsInf(hi-lo, 0) {
			// Spans beyond float range overflow; out of scope for Uniform.
			return true
		}
		v := r.Uniform(lo, hi)
		return v >= lo && v <= hi
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
