// Package rng provides a small, deterministic pseudo-random number
// generator and the weight distributions used throughout the SAGA/PISA
// reproduction.
//
// Experiments in the paper depend on randomized problem-instance
// generation (Section IV-B) and on randomized perturbation and acceptance
// inside the PISA annealer (Section VI). To make every figure
// reproducible bit-for-bit, all randomness in this repository flows
// through this package: a PCG-XSH-RR 64/32 generator with explicit
// seeding and cheap sub-stream derivation.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (PCG-XSH-RR
// 64/32). The zero value is not valid; use New.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed + r.inc
	r.next()
	return r
}

// Reseed resets r to the exact state New(seed) would produce, reusing
// the receiver — the allocation-free counterpart of New for hot loops
// that re-run a fixed-seed stream (WBA's construction rounds).
func (r *RNG) Reseed(seed uint64) {
	r.inc = (seed << 1) | 1
	r.state = seed + r.inc
	r.next()
}

// Split derives an independent sub-stream from r. It advances r by one
// draw, so derived streams are reproducible given the order of Split
// calls. Use it to give each experiment, dataset instance, or annealing
// restart its own generator.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	r.SplitInto(child)
	return child
}

// SplitInto is Split writing into a caller-owned generator: child is
// reseeded with the same derivation Split uses, so the streams are
// identical, without allocating.
func (r *RNG) SplitInto(child *RNG) {
	child.Reseed(uint64(r.next())<<32 | uint64(r.next()))
}

func (r *RNG) next() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next())<<32 | uint64(r.next())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling on 32 bits when the
	// bound fits; fall back to 64-bit modulo rejection otherwise.
	if n <= math.MaxInt32 {
		bound := uint32(n)
		threshold := -bound % bound
		for {
			v := r.next()
			m := uint64(v) * uint64(bound)
			if uint32(m) >= threshold {
				return int(m >> 32)
			}
		}
	}
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// IntBetween returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("rng: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ClippedGaussian draws from N(mean, stddev) clipped to [min, max]. This
// is the weight distribution used by every randomized dataset in the
// paper (Section IV-B): values outside the range are clamped, not
// redrawn, matching SAGA's numpy.clip usage.
func (r *RNG) ClippedGaussian(mean, stddev, min, max float64) float64 {
	v := r.Gaussian(mean, stddev)
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// PositiveClippedGaussian draws from N(mean, stddev) clipped below at min
// with no upper bound (used by the Fig 7/8 family generators, which clip
// only at 0).
func (r *RNG) PositiveClippedGaussian(mean, stddev, min float64) float64 {
	v := r.Gaussian(mean, stddev)
	if v < min {
		return min
	}
	return v
}

// Shuffle permutes the first n indices via swap using Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Choice returns a uniformly random index weighted by the given
// non-negative weights. It panics if weights is empty or sums to zero.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: Choice with empty or zero weights")
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}
