package schedule

import (
	"fmt"
	"math"
	"sort"

	"saga/internal/graph"
)

// Builder incrementally constructs a schedule. It tracks per-node
// timelines so schedulers can query earliest feasible start times — with
// or without insertion into idle gaps — and data-ready times implied by
// already-placed prerequisites.
type Builder struct {
	inst      *graph.Instance
	byTask    []Assignment
	placed    []bool
	timelines [][]Assignment // per node, sorted by Start
	nPlaced   int
}

// NewBuilder returns an empty builder for the instance.
func NewBuilder(inst *graph.Instance) *Builder {
	n := inst.Graph.NumTasks()
	return &Builder{
		inst:      inst,
		byTask:    make([]Assignment, n),
		placed:    make([]bool, n),
		timelines: make([][]Assignment, inst.Net.NumNodes()),
	}
}

// Instance returns the instance the builder schedules.
func (b *Builder) Instance() *graph.Instance { return b.inst }

// Placed reports whether task t has been scheduled.
func (b *Builder) Placed(t int) bool { return b.placed[t] }

// NumPlaced returns how many tasks have been scheduled so far.
func (b *Builder) NumPlaced() int { return b.nPlaced }

// Assignment returns the assignment of task t; it panics if t has not
// been placed.
func (b *Builder) Assignment(t int) Assignment {
	if !b.placed[t] {
		panic(fmt.Sprintf("schedule: task %d not placed", t))
	}
	return b.byTask[t]
}

// NodeAvailable returns the finish time of the last task on node v (0 if
// idle).
func (b *Builder) NodeAvailable(v int) float64 {
	tl := b.timelines[v]
	if len(tl) == 0 {
		return 0
	}
	return tl[len(tl)-1].End
}

// ReadyTime returns the earliest time all of t's inputs can be available
// on node v, i.e. max over placed predecessors u of end(u) + comm(u→t).
// ok is false if some predecessor of t is not yet placed.
func (b *Builder) ReadyTime(t, v int) (ready float64, ok bool) {
	for _, d := range b.inst.Graph.Pred[t] {
		u := d.To
		if !b.placed[u] {
			return 0, false
		}
		au := b.byTask[u]
		arrive := au.End + b.inst.CommTime(u, t, au.Node, v)
		if arrive > ready {
			ready = arrive
		}
	}
	return ready, true
}

// EnablingPredecessor returns the placed predecessor whose data arrives
// last at node v (the "enabling" task in FCP/FLB terminology) and its
// arrival time. ok is false if t has no predecessors or one is unplaced.
func (b *Builder) EnablingPredecessor(t, v int) (pred int, arrive float64, ok bool) {
	pred = -1
	for _, d := range b.inst.Graph.Pred[t] {
		u := d.To
		if !b.placed[u] {
			return -1, 0, false
		}
		au := b.byTask[u]
		at := au.End + b.inst.CommTime(u, t, au.Node, v)
		if at > arrive || pred == -1 {
			arrive, pred = at, u
		}
	}
	if pred == -1 {
		return -1, 0, false
	}
	return pred, arrive, true
}

// EarliestStart returns the earliest time >= ready at which a block of
// the given duration fits on node v. With insertion enabled it scans idle
// gaps between already-placed tasks (the HEFT insertion policy);
// otherwise it returns max(ready, node available time).
func (b *Builder) EarliestStart(v int, ready, duration float64, insertion bool) float64 {
	tl := b.timelines[v]
	if !insertion {
		return math.Max(ready, b.NodeAvailable(v))
	}
	start := ready
	for _, a := range tl {
		// Gap before a: [start, a.Start). The fit test is exact, not
		// epsilon-tolerant: a block that only fits within Eps would
		// overlap the next task by that epsilon, which the validator
		// (correctly) rejects on instances whose weights span many
		// orders of magnitude.
		if start+duration <= a.Start {
			return start
		}
		if a.End > start {
			start = a.End
		}
	}
	return start
}

// EFT returns the earliest start and finish of task t on node v under the
// given insertion policy. ok is false if a predecessor of t is unplaced.
func (b *Builder) EFT(t, v int, insertion bool) (start, finish float64, ok bool) {
	ready, ok := b.ReadyTime(t, v)
	if !ok {
		return 0, 0, false
	}
	dur := b.inst.ExecTime(t, v)
	start = b.EarliestStart(v, ready, dur, insertion)
	return start, start + dur, true
}

// Place records task t on node v at the given start time. It panics if t
// is already placed; schedulers are expected to pass feasible starts
// (validation happens once at the end via Validate).
func (b *Builder) Place(t, v int, start float64) Assignment {
	if b.placed[t] {
		panic(fmt.Sprintf("schedule: task %d placed twice", t))
	}
	a := Assignment{Task: t, Node: v, Start: start, End: start + b.inst.ExecTime(t, v)}
	b.byTask[t] = a
	b.placed[t] = true
	b.nPlaced++
	tl := b.timelines[v]
	i := sort.Search(len(tl), func(i int) bool { return tl[i].Start >= a.Start })
	tl = append(tl, Assignment{})
	copy(tl[i+1:], tl[i:])
	tl[i] = a
	b.timelines[v] = tl
	return a
}

// PlaceEFT schedules task t on node v at its earliest finish time and
// returns the assignment. It panics if a predecessor is unplaced.
func (b *Builder) PlaceEFT(t, v int, insertion bool) Assignment {
	start, _, ok := b.EFT(t, v, insertion)
	if !ok {
		panic(fmt.Sprintf("schedule: task %d has unplaced predecessors", t))
	}
	return b.Place(t, v, start)
}

// BestEFTNode returns the node minimizing t's earliest finish time and
// the corresponding start. Ties break toward the lower node index.
func (b *Builder) BestEFTNode(t int, insertion bool) (node int, start float64) {
	bestNode, bestStart, bestFinish := -1, 0.0, math.Inf(1)
	for v := 0; v < b.inst.Net.NumNodes(); v++ {
		s, f, ok := b.EFT(t, v, insertion)
		if !ok {
			panic(fmt.Sprintf("schedule: task %d has unplaced predecessors", t))
		}
		if f < bestFinish-graph.Eps {
			bestNode, bestStart, bestFinish = v, s, f
		}
	}
	return bestNode, bestStart
}

// Clone returns a deep copy of the builder sharing the (immutable)
// instance. Backtracking searches use it to branch.
func (b *Builder) Clone() *Builder {
	c := &Builder{
		inst:      b.inst,
		byTask:    append([]Assignment(nil), b.byTask...),
		placed:    append([]bool(nil), b.placed...),
		timelines: make([][]Assignment, len(b.timelines)),
		nPlaced:   b.nPlaced,
	}
	for i, tl := range b.timelines {
		c.timelines[i] = append([]Assignment(nil), tl...)
	}
	return c
}

// Makespan returns the current partial makespan.
func (b *Builder) Makespan() float64 {
	m := 0.0
	for v := range b.timelines {
		if a := b.NodeAvailable(v); a > m {
			m = a
		}
	}
	return m
}

// Schedule finalizes the builder. It returns an error if any task remains
// unplaced.
func (b *Builder) Schedule() (*Schedule, error) {
	for t, p := range b.placed {
		if !p {
			return nil, fmt.Errorf("schedule: task %d never placed", t)
		}
	}
	return &Schedule{
		NumNodes: b.inst.Net.NumNodes(),
		ByTask:   append([]Assignment(nil), b.byTask...),
	}, nil
}
