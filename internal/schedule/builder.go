package schedule

import (
	"fmt"
	"math"

	"saga/internal/graph"
)

// Builder incrementally constructs a schedule. It tracks per-node
// timelines so schedulers can query earliest feasible start times — with
// or without insertion into idle gaps — and data-ready times implied by
// already-placed prerequisites.
//
// A Builder is reusable: Reset rebinds it to an instance while keeping
// every slice it has ever grown, so a warm builder runs a full
// scheduling pass without allocating (the per-worker Scratch in package
// scheduler owns one for exactly that purpose).
type Builder struct {
	inst      *graph.Instance
	speeds    []float64   // inst.Net.Speeds, cached to skip pointer chains
	links     [][]float64 // inst.Net.Links
	exec      []float64   // optional graph.Tables.Exec matrix (nil = divide)
	byTask    []Assignment
	placed    []bool
	timelines [][]Assignment // per node, sorted by Start
	nPlaced   int
}

// NewBuilder returns an empty builder for the instance.
func NewBuilder(inst *graph.Instance) *Builder {
	b := &Builder{}
	b.Reset(inst)
	return b
}

// Reset rebinds the builder to inst and clears all placements, reusing
// the builder's existing storage. It leaves byTask contents stale —
// placed gates every read — so the reset cost is O(|T| + |V|).
func (b *Builder) Reset(inst *graph.Instance) {
	b.ResetTables(inst, nil)
}

// ResetTables is Reset with precomputed tables: execution times come
// from the dense Exec matrix instead of a per-query division. Each
// matrix entry is the identical division done once at table-build time,
// so the two paths are bit-equal; tab must have been built for inst.
func (b *Builder) ResetTables(inst *graph.Instance, tab *graph.Tables) {
	n := inst.Graph.NumTasks()
	nv := inst.Net.NumNodes()
	b.inst = inst
	b.speeds = inst.Net.Speeds
	b.links = inst.Net.Links
	b.exec = nil
	if tab != nil {
		b.exec = tab.Exec
	}
	if cap(b.byTask) < n {
		b.byTask = make([]Assignment, n)
	} else {
		b.byTask = b.byTask[:n]
	}
	if cap(b.placed) < n {
		b.placed = make([]bool, n)
	} else {
		b.placed = b.placed[:n]
		for t := range b.placed {
			b.placed[t] = false
		}
	}
	if cap(b.timelines) < nv {
		grown := make([][]Assignment, nv)
		copy(grown, b.timelines[:cap(b.timelines)])
		b.timelines = grown
	} else {
		b.timelines = b.timelines[:nv]
	}
	for v := range b.timelines {
		b.timelines[v] = b.timelines[v][:0]
	}
	b.nPlaced = 0
}

// Instance returns the instance the builder schedules.
func (b *Builder) Instance() *graph.Instance { return b.inst }

// Placed reports whether task t has been scheduled.
func (b *Builder) Placed(t int) bool { return b.placed[t] }

// NumPlaced returns how many tasks have been scheduled so far.
func (b *Builder) NumPlaced() int { return b.nPlaced }

// Assignment returns the assignment of task t; it panics if t has not
// been placed.
func (b *Builder) Assignment(t int) Assignment {
	if !b.placed[t] {
		panic(fmt.Sprintf("schedule: task %d not placed", t))
	}
	return b.byTask[t]
}

// NodeAvailable returns the finish time of the last task on node v (0 if
// idle).
func (b *Builder) NodeAvailable(v int) float64 {
	tl := b.timelines[v]
	if len(tl) == 0 {
		return 0
	}
	return tl[len(tl)-1].End
}

// commTime is the builder-local fast path of Instance.CommTime for an
// edge whose data size is already at hand (adjacency lists carry the
// cost in both directions, so the per-call successor-list scan
// Instance.CommTime does is pure overhead here). The arithmetic is
// bit-identical: same-node and zero-size transfers are free, everything
// else is cost divided by the raw link strength.
func (b *Builder) commTime(cost float64, from, to int) float64 {
	if from == to || cost == 0 {
		return 0
	}
	return cost / b.links[from][to]
}

// ReadyTime returns the earliest time all of t's inputs can be available
// on node v, i.e. max over placed predecessors u of end(u) + comm(u→t).
// ok is false if some predecessor of t is not yet placed.
func (b *Builder) ReadyTime(t, v int) (ready float64, ok bool) {
	for _, d := range b.inst.Graph.Pred[t] {
		u := d.To
		if !b.placed[u] {
			return 0, false
		}
		au := b.byTask[u]
		arrive := au.End + b.commTime(d.Cost, au.Node, v)
		if arrive > ready {
			ready = arrive
		}
	}
	return ready, true
}

// EnablingPredecessor returns the placed predecessor whose data arrives
// last at node v (the "enabling" task in FCP/FLB terminology) and its
// arrival time. ok is false if t has no predecessors or one is unplaced.
func (b *Builder) EnablingPredecessor(t, v int) (pred int, arrive float64, ok bool) {
	pred = -1
	for _, d := range b.inst.Graph.Pred[t] {
		u := d.To
		if !b.placed[u] {
			return -1, 0, false
		}
		au := b.byTask[u]
		at := au.End + b.commTime(d.Cost, au.Node, v)
		if at > arrive || pred == -1 {
			arrive, pred = at, u
		}
	}
	if pred == -1 {
		return -1, 0, false
	}
	return pred, arrive, true
}

// EarliestStart returns the earliest time >= ready at which a block of
// the given duration fits on node v. With insertion enabled it scans idle
// gaps between already-placed tasks (the HEFT insertion policy);
// otherwise it returns max(ready, node available time).
func (b *Builder) EarliestStart(v int, ready, duration float64, insertion bool) float64 {
	tl := b.timelines[v]
	if !insertion {
		return math.Max(ready, b.NodeAvailable(v))
	}
	start := ready
	for _, a := range tl {
		// Gap before a: [start, a.Start). The fit test is exact, not
		// epsilon-tolerant: a block that only fits within Eps would
		// overlap the next task by that epsilon, which the validator
		// (correctly) rejects on instances whose weights span many
		// orders of magnitude.
		if start+duration <= a.Start {
			return start
		}
		if a.End > start {
			start = a.End
		}
	}
	return start
}

// execTime returns c(t)/s(v), from the dense table when one is bound.
func (b *Builder) execTime(t, v int) float64 {
	if b.exec != nil {
		return b.exec[t*len(b.speeds)+v]
	}
	return b.inst.Graph.Tasks[t].Cost / b.speeds[v]
}

// EFT returns the earliest start and finish of task t on node v under the
// given insertion policy. ok is false if a predecessor of t is unplaced.
func (b *Builder) EFT(t, v int, insertion bool) (start, finish float64, ok bool) {
	ready, ok := b.ReadyTime(t, v)
	if !ok {
		return 0, 0, false
	}
	dur := b.execTime(t, v)
	start = b.EarliestStart(v, ready, dur, insertion)
	return start, start + dur, true
}

// Place records task t on node v at the given start time. It panics if t
// is already placed; schedulers are expected to pass feasible starts
// (validation happens once at the end via Validate).
func (b *Builder) Place(t, v int, start float64) Assignment {
	if b.placed[t] {
		panic(fmt.Sprintf("schedule: task %d placed twice", t))
	}
	a := Assignment{Task: t, Node: v, Start: start, End: start + b.execTime(t, v)}
	b.byTask[t] = a
	b.placed[t] = true
	b.nPlaced++
	tl := b.timelines[v]
	// Binary search for the insertion point (a hand-rolled sort.Search so
	// the hot path carries no closure).
	lo, hi := 0, len(tl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tl[mid].Start < a.Start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	tl = append(tl, Assignment{})
	copy(tl[lo+1:], tl[lo:])
	tl[lo] = a
	b.timelines[v] = tl
	return a
}

// PlaceEFT schedules task t on node v at its earliest finish time and
// returns the assignment. It panics if a predecessor is unplaced.
func (b *Builder) PlaceEFT(t, v int, insertion bool) Assignment {
	start, _, ok := b.EFT(t, v, insertion)
	if !ok {
		panic(fmt.Sprintf("schedule: task %d has unplaced predecessors", t))
	}
	return b.Place(t, v, start)
}

// BestEFTNode returns the node minimizing t's earliest finish time and
// the corresponding start. Ties break toward the lower node index.
func (b *Builder) BestEFTNode(t int, insertion bool) (node int, start float64) {
	bestNode, bestStart, bestFinish := -1, 0.0, math.Inf(1)
	for v := 0; v < len(b.speeds); v++ {
		s, f, ok := b.EFT(t, v, insertion)
		if !ok {
			panic(fmt.Sprintf("schedule: task %d has unplaced predecessors", t))
		}
		if f < bestFinish-graph.Eps {
			bestNode, bestStart, bestFinish = v, s, f
		}
	}
	return bestNode, bestStart
}

// Unplace reverses Place(t, ·, ·): the assignment leaves node t's
// timeline and t becomes placeable again. It panics if t is not placed.
// Backtracking searches (package exact) pair every Place with an
// Unplace in LIFO order, which keeps one shared builder per search
// instead of a clone per branch — the clone-per-frame approach holds
// O(depth·|T|) live memory and is infeasible at 10k-task depths.
func (b *Builder) Unplace(t int) {
	if !b.placed[t] {
		panic(fmt.Sprintf("schedule: task %d not placed", t))
	}
	a := b.byTask[t]
	tl := b.timelines[a.Node]
	// LIFO discipline means the assignment is near the end of the
	// timeline; scan backwards.
	for i := len(tl) - 1; i >= 0; i-- {
		if tl[i].Task == t {
			copy(tl[i:], tl[i+1:])
			b.timelines[a.Node] = tl[:len(tl)-1]
			break
		}
	}
	b.placed[t] = false
	b.nPlaced--
}

// Clone returns a deep copy of the builder sharing the (immutable)
// instance. Backtracking searches use it to branch.
func (b *Builder) Clone() *Builder {
	c := &Builder{
		inst:      b.inst,
		speeds:    b.speeds,
		links:     b.links,
		exec:      b.exec,
		byTask:    append([]Assignment(nil), b.byTask...),
		placed:    append([]bool(nil), b.placed...),
		timelines: make([][]Assignment, len(b.timelines)),
		nPlaced:   b.nPlaced,
	}
	for i, tl := range b.timelines {
		c.timelines[i] = append([]Assignment(nil), tl...)
	}
	return c
}

// Makespan returns the current partial makespan.
func (b *Builder) Makespan() float64 {
	m := 0.0
	for v := range b.timelines {
		if a := b.NodeAvailable(v); a > m {
			m = a
		}
	}
	return m
}

// ScheduleInto finalizes the builder into out, reusing out's assignment
// slice. It returns an error if any task remains unplaced.
func (b *Builder) ScheduleInto(out *Schedule) error {
	for t, p := range b.placed {
		if !p {
			return fmt.Errorf("schedule: task %d never placed", t)
		}
	}
	out.NumNodes = len(b.speeds)
	out.ByTask = append(out.ByTask[:0], b.byTask...)
	return nil
}

// Schedule finalizes the builder. It returns an error if any task remains
// unplaced.
func (b *Builder) Schedule() (*Schedule, error) {
	out := &Schedule{}
	if err := b.ScheduleInto(out); err != nil {
		return nil, err
	}
	return out, nil
}
