package schedule

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"saga/internal/graph"
)

// placementPlan is a quick.Generator producing a random instance plus a
// random (but precedence-respecting) placement plan: for each task in
// topological order, a node choice and whether to use insertion.
type placementPlan struct {
	inst      *graph.Instance
	nodes     []int
	insertion []bool
}

// Generate implements quick.Generator.
func (placementPlan) Generate(r *rand.Rand, size int) reflect.Value {
	nTasks := r.Intn(8) + 1
	nNodes := r.Intn(4) + 1
	g := graph.NewTaskGraph()
	for i := 0; i < nTasks; i++ {
		g.AddTask("t", r.Float64()*5)
	}
	for i := 0; i < nTasks; i++ {
		for j := i + 1; j < nTasks; j++ {
			if r.Intn(4) == 0 {
				g.MustAddDep(i, j, r.Float64()*5)
			}
		}
	}
	net := graph.NewNetwork(nNodes)
	for v := 0; v < nNodes; v++ {
		net.Speeds[v] = 0.2 + r.Float64()*3
		for u := v + 1; u < nNodes; u++ {
			net.SetLink(v, u, 0.2+r.Float64()*3)
		}
	}
	p := placementPlan{inst: graph.NewInstance(g, net)}
	for i := 0; i < nTasks; i++ {
		p.nodes = append(p.nodes, r.Intn(nNodes))
		p.insertion = append(p.insertion, r.Intn(2) == 0)
	}
	return reflect.ValueOf(p)
}

// TestQuickBuilderAlwaysValid is the builder's core invariant: placing
// every task via PlaceEFT — any node, any insertion policy, topological
// order — always yields a schedule that passes the Section II validator.
func TestQuickBuilderAlwaysValid(t *testing.T) {
	property := func(p placementPlan) bool {
		if err := p.inst.Validate(); err != nil {
			return false
		}
		b := NewBuilder(p.inst)
		order, err := p.inst.Graph.TopoOrder()
		if err != nil {
			return false
		}
		for _, task := range order {
			b.PlaceEFT(task, p.nodes[task], p.insertion[task])
		}
		s, err := b.Schedule()
		if err != nil {
			return false
		}
		return Validate(p.inst, s) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertionNeverLater: for the same placement sequence, the
// insertion policy can only give each task an earlier-or-equal start
// than appending, never later.
func TestQuickInsertionNeverLater(t *testing.T) {
	property := func(p placementPlan) bool {
		order, err := p.inst.Graph.TopoOrder()
		if err != nil {
			return false
		}
		withIns := NewBuilder(p.inst)
		without := NewBuilder(p.inst)
		for _, task := range order {
			// Same node choice in both builders; the partial schedules
			// may diverge, so compare the locally-offered start given
			// identical prior placements only on the first divergence.
			si, _, ok1 := withIns.EFT(task, p.nodes[task], true)
			sa, _, ok2 := without.EFT(task, p.nodes[task], false)
			if !ok1 || !ok2 {
				return false
			}
			// Only sound while both builders hold identical placements.
			if si > sa+graph.Eps {
				return false
			}
			if si != sa {
				// Divergence point reached; the comparison was still
				// valid here, stop before the states drift.
				return true
			}
			withIns.Place(task, p.nodes[task], si)
			without.Place(task, p.nodes[task], sa)
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMakespanEqualsMaxEnd: the builder's running makespan always
// equals the maximum assignment end.
func TestQuickMakespanEqualsMaxEnd(t *testing.T) {
	property := func(p placementPlan) bool {
		b := NewBuilder(p.inst)
		order, err := p.inst.Graph.TopoOrder()
		if err != nil {
			return false
		}
		maxEnd := 0.0
		for _, task := range order {
			a := b.PlaceEFT(task, p.nodes[task], p.insertion[task])
			if a.End > maxEnd {
				maxEnd = a.End
			}
			if !graph.ApproxEq(b.Makespan(), maxEnd) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
