// Package schedule represents and validates task schedules (Section II of
// the PISA paper) and provides the shared machinery list schedulers use to
// place tasks: per-node timelines, data-ready times, and earliest-finish
// slot search with and without insertion.
//
// The key invariant is the Builder arena lifecycle: every slice a
// Builder owns survives Reset/ResetTables, so a warm builder schedules
// without heap allocation. Hot paths never construct builders — they
// borrow the one owned by a scheduler.Scratch and finalize with
// ScheduleInto, which reuses the caller's Schedule (see EXPERIMENTS.md,
// "Hot-path memory discipline").
package schedule

import (
	"fmt"
	"math"
	"slices"

	"saga/internal/graph"
)

// Assignment records one scheduled task: the node it runs on and its
// start/end times. End - Start always equals c(t)/s(v).
type Assignment struct {
	Task  int
	Node  int
	Start float64
	End   float64
}

// Schedule is a complete mapping of tasks to (node, start) tuples.
// ByTask is indexed by task id. NumNodes records the size of the network
// the schedule targets so it can be validated and rendered standalone.
type Schedule struct {
	NumNodes int
	ByTask   []Assignment
}

// Makespan returns the time at which the last task finishes, or 0 for an
// empty schedule.
func (s *Schedule) Makespan() float64 {
	m := 0.0
	for _, a := range s.ByTask {
		if a.End > m {
			m = a.End
		}
	}
	return m
}

// CopyFrom makes s a deep copy of src, reusing s's assignment slice.
// Ensemble-style schedulers use it to keep a best-so-far schedule
// without per-candidate allocation.
func (s *Schedule) CopyFrom(src *Schedule) {
	s.NumNodes = src.NumNodes
	s.ByTask = append(s.ByTask[:0], src.ByTask...)
}

// cmpGantt orders assignments by (node, start, task) — the order a Gantt
// chart draws them in. It is a typed comparison so hot paths sorting
// with it stay closure- and reflection-free.
func cmpGantt(a, b Assignment) int {
	switch {
	case a.Node != b.Node:
		if a.Node < b.Node {
			return -1
		}
		return 1
	case a.Start != b.Start:
		if a.Start < b.Start {
			return -1
		}
		return 1
	case a.Task < b.Task:
		return -1
	case a.Task > b.Task:
		return 1
	}
	return 0
}

// Assignments returns all assignments sorted by (node, start) — the order
// a Gantt chart draws them in.
func (s *Schedule) Assignments() []Assignment {
	out := append([]Assignment(nil), s.ByTask...)
	slices.SortFunc(out, cmpGantt)
	return out
}

// Validate checks the Section II validity conditions of s against the
// instance it was produced for:
//
//  1. every task is scheduled exactly once;
//  2. each task's duration equals c(t)/s(v);
//  3. no two tasks overlap on a node;
//  4. a task starts only after every prerequisite has finished and its
//     output has arrived: r_u + c(u)/s(v_u) + c(u,t)/s(v_u,v_t) <= r_t.
func Validate(inst *graph.Instance, s *Schedule) error {
	g, net := inst.Graph, inst.Net
	if s == nil {
		return fmt.Errorf("schedule: nil schedule")
	}
	if len(s.ByTask) != g.NumTasks() {
		return fmt.Errorf("schedule: %d assignments for %d tasks", len(s.ByTask), g.NumTasks())
	}
	if s.NumNodes != net.NumNodes() {
		return fmt.Errorf("schedule: schedule targets %d nodes, network has %d", s.NumNodes, net.NumNodes())
	}
	perNode := make([][]Assignment, net.NumNodes())
	for t, a := range s.ByTask {
		if a.Task != t {
			return fmt.Errorf("schedule: assignment at index %d records task %d", t, a.Task)
		}
		if a.Node < 0 || a.Node >= net.NumNodes() {
			return fmt.Errorf("schedule: task %d assigned to invalid node %d", t, a.Node)
		}
		if a.Start < -graph.Eps || math.IsNaN(a.Start) || math.IsInf(a.Start, 0) {
			return fmt.Errorf("schedule: task %d has invalid start %v", t, a.Start)
		}
		want := inst.ExecTime(t, a.Node)
		if !graph.ApproxEq(a.End-a.Start, want) {
			return fmt.Errorf("schedule: task %d on node %d has duration %v, want %v",
				t, a.Node, a.End-a.Start, want)
		}
		perNode[a.Node] = append(perNode[a.Node], a)
	}
	for v, as := range perNode {
		// Full (start, end, task) order: deterministic under ties, and
		// zero-duration tasks sharing a start sort before the block that
		// occupies the instant, which is the permissive reading.
		slices.SortFunc(as, func(a, b Assignment) int {
			switch {
			case a.Start < b.Start:
				return -1
			case a.Start > b.Start:
				return 1
			case a.End < b.End:
				return -1
			case a.End > b.End:
				return 1
			}
			return a.Task - b.Task
		})
		for i := 1; i < len(as); i++ {
			if !graph.ApproxLE(as[i-1].End, as[i].Start) {
				return fmt.Errorf("schedule: tasks %d and %d overlap on node %d",
					as[i-1].Task, as[i].Task, v)
			}
		}
	}
	for u, succ := range g.Succ {
		au := s.ByTask[u]
		for _, d := range succ {
			at := s.ByTask[d.To]
			arrive := au.End + inst.CommTime(u, d.To, au.Node, at.Node)
			if !graph.ApproxLE(arrive, at.Start) {
				return fmt.Errorf("schedule: task %d starts at %v before input from %d arrives at %v",
					d.To, at.Start, u, arrive)
			}
		}
	}
	return nil
}

// MakespanRatio returns m(a)/m(b), the paper's makespan-ratio metric for
// schedule a against baseline b. Degenerate zero-makespan baselines yield
// 1 when a is also zero, +Inf otherwise.
func MakespanRatio(a, b *Schedule) float64 {
	ma, mb := a.Makespan(), b.Makespan()
	if mb == 0 {
		if ma == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return ma / mb
}
