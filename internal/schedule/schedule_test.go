package schedule

import (
	"math"
	"testing"

	"saga/internal/graph"
)

// chainInstance builds a 3-task chain on a 2-node network: speeds (1, 2),
// link strength 0.5.
func chainInstance() *graph.Instance {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 2)
	c := g.AddTask("c", 2)
	g.MustAddDep(a, b, 1)
	g.MustAddDep(b, c, 1)
	n := graph.NewNetwork(2)
	n.Speeds[0], n.Speeds[1] = 1, 2
	n.SetLink(0, 1, 0.5)
	return graph.NewInstance(g, n)
}

func TestBuilderPlaceAndMakespan(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	b.Place(0, 1, 0) // exec 1
	if got := b.NodeAvailable(1); !graph.ApproxEq(got, 1) {
		t.Fatalf("NodeAvailable = %v, want 1", got)
	}
	b.Place(1, 1, 1)
	b.Place(2, 1, 2)
	if m := b.Makespan(); !graph.ApproxEq(m, 3) {
		t.Fatalf("Makespan = %v, want 3", m)
	}
	s, err := b.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, s); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReadyTime(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	if _, ok := b.ReadyTime(1, 0); ok {
		t.Fatal("ReadyTime reported ok with unplaced predecessor")
	}
	b.Place(0, 0, 0) // ends at 2 on node 0
	// Task 1 on node 0: data local, ready at 2.
	if r, ok := b.ReadyTime(1, 0); !ok || !graph.ApproxEq(r, 2) {
		t.Fatalf("ReadyTime local = %v (%v), want 2", r, ok)
	}
	// Task 1 on node 1: 2 + 1/0.5 = 4.
	if r, ok := b.ReadyTime(1, 1); !ok || !graph.ApproxEq(r, 4) {
		t.Fatalf("ReadyTime remote = %v (%v), want 4", r, ok)
	}
}

func TestBuilderEFTAndBestNode(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	b.Place(0, 0, 0)
	// Node 0: ready 2, exec 2 → finish 4. Node 1: ready 4, exec 1 → 5.
	node, start := b.BestEFTNode(1, false)
	if node != 0 || !graph.ApproxEq(start, 2) {
		t.Fatalf("BestEFTNode = (%d, %v), want (0, 2)", node, start)
	}
}

func TestInsertionFindsGap(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	// Occupy [0,1) and [3,4) on node 1; a duration-1 block ready at 0
	// should slot into the [1,3) gap with insertion, or go to 4 without.
	b.Place(0, 1, 0)
	b.Place(2, 1, 3) // place the sink early (no validity needed mid-build)
	if s := b.EarliestStart(1, 0, 1, true); !graph.ApproxEq(s, 1) {
		t.Fatalf("insertion start = %v, want 1", s)
	}
	if s := b.EarliestStart(1, 0, 1, false); !graph.ApproxEq(s, 4) {
		t.Fatalf("append start = %v, want 4", s)
	}
}

func TestInsertionRespectsReadyTime(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	b.Place(0, 1, 0)
	b.Place(2, 1, 5)
	// Gap is [1,5); ready at 2 → start 2.
	if s := b.EarliestStart(1, 2, 1, true); !graph.ApproxEq(s, 2) {
		t.Fatalf("insertion start = %v, want 2", s)
	}
	// Duration 4 doesn't fit [2,5) → goes after the last task.
	if s := b.EarliestStart(1, 2, 4, true); !graph.ApproxEq(s, 6) {
		t.Fatalf("insertion start for long task = %v, want 6", s)
	}
}

func TestPlaceTwicePanics(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	b.Place(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double placement did not panic")
		}
	}()
	b.Place(0, 1, 5)
}

func TestScheduleIncomplete(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	b.Place(0, 0, 0)
	if _, err := b.Schedule(); err == nil {
		t.Fatal("incomplete schedule finalized without error")
	}
}

func TestBuilderClone(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	b.Place(0, 0, 0)
	c := b.Clone()
	c.Place(1, 0, 2)
	if b.Placed(1) {
		t.Fatal("clone placement leaked into original")
	}
	if !c.Placed(1) || !c.Placed(0) {
		t.Fatal("clone lost state")
	}
}

func TestEnablingPredecessor(t *testing.T) {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b2 := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddDep(a, c, 10) // heavy input
	g.MustAddDep(b2, c, 1)
	n := graph.NewNetwork(2)
	n.SetLink(0, 1, 1)
	in := graph.NewInstance(g, n)
	bld := NewBuilder(in)
	bld.Place(0, 0, 0)
	bld.Place(1, 0, 1)
	pred, arrive, ok := bld.EnablingPredecessor(2, 1)
	if !ok || pred != 0 {
		t.Fatalf("enabling pred = %d (%v), want 0", pred, ok)
	}
	if !graph.ApproxEq(arrive, 11) { // end 1 + 10/1
		t.Fatalf("arrival = %v, want 11", arrive)
	}
	if _, _, ok := bld.EnablingPredecessor(0, 0); ok {
		t.Fatal("entry task reported an enabling predecessor")
	}
}

func validSchedule(in *graph.Instance) *Schedule {
	b := NewBuilder(in)
	order, _ := in.Graph.TopoOrder()
	for _, t := range order {
		b.PlaceEFT(t, 0, false)
	}
	s, _ := b.Schedule()
	return s
}

func TestValidateAcceptsValid(t *testing.T) {
	in := chainInstance()
	if err := Validate(in, validSchedule(in)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNil(t *testing.T) {
	if err := Validate(chainInstance(), nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

func TestValidateRejectsWrongDuration(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	s.ByTask[0].End += 1
	if err := Validate(in, s); err == nil {
		t.Fatal("wrong duration accepted")
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	// Shift task 1 to overlap task 0 on the same node (keep duration).
	d := s.ByTask[1].End - s.ByTask[1].Start
	s.ByTask[1].Start = s.ByTask[0].Start + 0.1
	s.ByTask[1].End = s.ByTask[1].Start + d
	if err := Validate(in, s); err == nil {
		t.Fatal("overlap accepted")
	}
}

func TestValidateRejectsPrecedenceViolation(t *testing.T) {
	in := chainInstance()
	b := NewBuilder(in)
	// Put task 1 on node 1 starting before task 0's output can arrive.
	b.Place(0, 0, 0)   // ends 2 on node 0
	b.Place(1, 1, 2.5) // needs ready 4 on node 1
	b.Place(2, 1, b.Makespan()+10)
	s, err := b.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, s); err == nil {
		t.Fatal("precedence violation accepted")
	}
}

func TestValidateRejectsInvalidNode(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	s.ByTask[2].Node = 9
	if err := Validate(in, s); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestValidateRejectsNegativeStart(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	d := s.ByTask[0].End - s.ByTask[0].Start
	s.ByTask[0].Start = -1
	s.ByTask[0].End = -1 + d
	if err := Validate(in, s); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestValidateRejectsNodeCountMismatch(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	s.NumNodes = 7
	if err := Validate(in, s); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestAssignmentsSorted(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	as := s.Assignments()
	for i := 1; i < len(as); i++ {
		if as[i-1].Node > as[i].Node {
			t.Fatal("assignments not sorted by node")
		}
		if as[i-1].Node == as[i].Node && as[i-1].Start > as[i].Start {
			t.Fatal("assignments not sorted by start within node")
		}
	}
}

func TestMakespanRatio(t *testing.T) {
	in := chainInstance()
	s := validSchedule(in)
	if r := MakespanRatio(s, s); !graph.ApproxEq(r, 1) {
		t.Fatalf("self ratio = %v, want 1", r)
	}
	empty := &Schedule{NumNodes: 2}
	if r := MakespanRatio(s, empty); !math.IsInf(r, 1) {
		t.Fatalf("ratio against zero baseline = %v, want +Inf", r)
	}
	if r := MakespanRatio(empty, empty); r != 1 {
		t.Fatalf("zero/zero ratio = %v, want 1", r)
	}
}
