package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestStdDev(t *testing.T) {
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if s := StdDev([]float64{5}); s != 0 {
		t.Fatalf("StdDev single = %v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation: P10 of {0, 10} = 1.
	if got := Percentile([]float64{0, 10}, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("interpolated percentile = %v, want 1", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 8}
	if Min(xs) != -2 || Max(xs) != 8 {
		t.Fatal("Min/Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinels wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", s.Q1, s.Q3)
	}
}

func TestQuickOrderInvariants(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			// Keep magnitudes where the mean cannot overflow.
			if !math.IsNaN(v) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}
