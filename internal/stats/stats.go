// Package stats provides the small set of summary statistics the
// experiment drivers report: means, standard deviations, percentiles and
// five-number summaries for the makespan distributions of Figs 7 and 8.
//
// Every function is a pure fold over its input in index order — no
// sorting side effects on the caller's slice, no randomness — so
// summaries inherit the bit-for-bit determinism of the sweeps that feed
// them.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when
// fewer than two values are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Summary is a five-number summary plus mean, the data behind a box plot.
type Summary struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		Min:    Min(xs),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Max(xs),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}
