package serve

// Satellite: the scratch-leasing concurrency drill. Many goroutines
// hammer /v1/schedule with a handful of distinct instances; every
// response must byte-equal that instance's precomputed expected bytes.
// Any cross-request state bleed — a scratch carrying another instance's
// tables into a result, a cache entry handing out the wrong instance —
// shows up as a byte mismatch, and the race detector (this package is
// in `make test-race`) catches unsynchronized access on top.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"saga/internal/scheduler"
	"saga/internal/serialize"
)

func TestConcurrentScheduleNoStateBleed(t *testing.T) {
	const nInstances = 6
	const iters = 25

	// The cache is deliberately smaller than the instance set, and the
	// admission bound smaller than the client count, so the test also
	// exercises eviction, re-parse, and queueing under contention.
	s := New(Options{
		MaxConcurrent: 4,
		CacheEntries:  nInstances - 2,
		QueueTimeout:  0, // default 2s: ample for queued requests to drain
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	schedNames := []string{"HEFT", "CPoP"}
	type testCase struct {
		body []byte
		want []byte
	}
	var cases []testCase
	for seed := uint64(1); seed <= nInstances; seed++ {
		instRaw := testInstance(t, seed)
		inst, err := serialize.UnmarshalInstance(instRaw)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range schedNames {
			sched, err := scheduler.New(name)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := sched.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			rawSched, err := serialize.MarshalSchedule(direct)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(ScheduleResponse{
				Scheduler: sched.Name(),
				Makespan:  direct.Makespan(),
				Schedule:  rawSched,
			})
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, testCase{
				body: mustMarshal(t, ScheduleRequest{Scheduler: name, Instance: instRaw}),
				want: append(want, '\n'),
			})
		}
	}

	clients := runtime.GOMAXPROCS(0) * 4
	if clients < 8 {
		clients = 8
	}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Deterministic per-goroutine walk over the cases, each
				// goroutine starting at a different offset so distinct
				// instances are in flight simultaneously.
				tc := cases[(c+i)%len(cases)]
				resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(tc.body))
				if err != nil {
					errc <- err
					return
				}
				var buf bytes.Buffer
				_, err = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d iter %d: status %d: %s", c, i, resp.StatusCode, buf.Bytes())
					return
				}
				if !bytes.Equal(tc.want, buf.Bytes()) {
					t.Errorf("client %d iter %d: response bytes diverged under concurrency\nwant: %s\ngot:  %s",
						c, i, tc.want, buf.Bytes())
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Sanity on the ledger: every request leased exactly one scratch,
	// and the pool never minted more scratches than the admission bound
	// plus the parked-per-entry budget allows.
	snap := metricsSnapshot(t, ts.URL)
	wantLeases := uint64(clients * iters)
	if snap.Pool.Leases != wantLeases {
		t.Fatalf("leases = %d, want %d", snap.Pool.Leases, wantLeases)
	}
	if snap.Cache.Hits+snap.Cache.Misses != wantLeases {
		t.Fatalf("cache lookups %d+%d don't account for %d requests",
			snap.Cache.Hits, snap.Cache.Misses, wantLeases)
	}
	if snap.Cache.TableReuses == 0 {
		t.Fatal("no table reuses recorded; the parked-scratch fast path never fired")
	}
	if snap.Pool.FreshScratches >= wantLeases/2 {
		t.Fatalf("pool minted %d fresh scratches for %d leases; scratch reuse is not happening",
			snap.Pool.FreshScratches, wantLeases)
	}
}
