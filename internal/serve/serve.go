// Package serve is the scheduling-as-a-service daemon behind `saga
// serve`: a long-running HTTP server that accepts a DAG + network (or a
// WfCommons wfformat instance) and answers with a schedule, a portfolio
// recommendation, or a PISA robustness report. The batch CLIs stay
// intact as the library path; `saga schedule/portfolio/robustness
// -server URL` become thin clients of this daemon.
//
// The request path leans on the repo's established ownership rules
// (ARCHITECTURE invariant 8):
//
//   - Per-request Scratch leasing. Every schedule request leases one
//     scheduler.Scratch — from the instance cache when the instance was
//     seen before (tables prebuilt, zero graph.Tables work), else from a
//     sync.Pool — and owns it exclusively until the response is
//     written. Cross-request bleed is impossible by construction: every
//     memoized value in a Scratch is keyed on (instance pointer, table
//     generation).
//   - Content-hash instance caching. Submissions are keyed by the hash
//     of their compacted payload bytes; a hit shares the parsed
//     instance pointer (read-only from then on) and skips parse,
//     validation, and table builds.
//   - Bounded admission. At most MaxConcurrent requests compute at
//     once; excess requests wait up to QueueTimeout, then are refused
//     with 503 — load sheds at the door instead of thrashing the
//     scheduler.
//   - Observability. GET /metrics reports request counts, latency
//     quantiles, cache hit rates, scratch-pool stats, and admission
//     counters as JSON.
//
// Responses are byte-identical to direct in-process library calls on
// the same input for all three request kinds — the identity suite and
// the serve-smoke e2e drill both enforce it.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/experiments"
	"saga/internal/graph"
	"saga/internal/httpx"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/serialize"
	"saga/internal/wfc"
)

// Options tunes the daemon. The zero value is usable: every field has a
// default.
type Options struct {
	// MaxConcurrent bounds how many requests compute at once (default
	// GOMAXPROCS). Admission is the daemon's only queue; each admitted
	// request runs its experiment with Workers sequential workers.
	MaxConcurrent int
	// QueueTimeout is how long an over-admission request waits for a
	// slot before being refused with 503 (default 2s).
	QueueTimeout time.Duration
	// CacheEntries bounds the instance cache (default 64 entries, LRU).
	CacheEntries int
	// Workers is the runner worker count inside one portfolio or
	// robustness request (default 1: concurrent requests are the
	// parallelism axis; results are identical at any value).
	Workers int
	// MaxRobustnessN caps RobustnessRequest.N (default 100000).
	MaxRobustnessN int
	// MaxPISAIters caps PortfolioRequest.Iters (default 100000).
	MaxPISAIters int
	// Coordinator, when non-empty, is the base URL of a coordinator hub
	// (`saga coordinate -hub`): portfolio and robustness requests are
	// dispatched to the attached worker fleet as coordinator sweeps
	// instead of computing locally, with graceful degradation back to
	// local execution when the dispatch side fails (see dispatch.go).
	Coordinator string
	// DegradeWindow bounds how long a dispatched sweep may sit with no
	// worker contact and no progress — or the hub stay unreachable —
	// before the daemon falls back to local execution (default 3s).
	DegradeWindow time.Duration
	// DispatchPoll is the dispatched-sweep status poll cadence (default
	// 100ms).
	DispatchPoll time.Duration
	// Token, when non-empty, requires `Authorization: Bearer <Token>` on
	// every endpoint except /healthz; rejected requests are counted in
	// /metrics.
	Token string
	// CoordinatorToken authenticates the daemon's own calls to the hub
	// (the hub's -token). Defaults to Token in cmd/saga, not here.
	CoordinatorToken string
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 2 * time.Second
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 64
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxRobustnessN <= 0 {
		o.MaxRobustnessN = 100000
	}
	if o.MaxPISAIters <= 0 {
		o.MaxPISAIters = 100000
	}
	if o.DegradeWindow <= 0 {
		o.DegradeWindow = 3 * time.Second
	}
	if o.DispatchPoll <= 0 {
		o.DispatchPoll = 100 * time.Millisecond
	}
	return o
}

// Server is the daemon. It is an http.Handler; serve it wherever
// convenient (net/http behind `saga serve`, httptest in the suites).
type Server struct {
	opts    Options
	pool    scheduler.ScratchPool
	cache   *instanceCache
	metrics *Metrics
	disp    *dispatcher
	sem     chan struct{}
	leases  atomic.Uint64
	mux     *http.ServeMux
}

// New builds a daemon with the given options.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   newInstanceCache(opts.CacheEntries, opts.MaxConcurrent),
		metrics: newMetrics(),
		sem:     make(chan struct{}, opts.MaxConcurrent),
		mux:     http.NewServeMux(),
	}
	if opts.Coordinator != "" {
		s.disp = newDispatcher(opts, s.metrics, s.logf)
	}
	s.mux.HandleFunc("POST /v1/schedule", s.track("schedule", s.handleSchedule))
	s.mux.HandleFunc("POST /v1/portfolio", s.track("portfolio", s.handlePortfolio))
	s.mux.HandleFunc("POST /v1/robustness", s.track("robustness", s.handleRobustness))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, map[string]bool{"ok": true})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/healthz" && !httpx.CheckBearer(r, s.opts.Token) {
		s.metrics.authReject()
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// statusRecorder lets the admission wrapper see whether the handler
// answered an error status, for the per-endpoint error counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// track wraps a handler with observability: the inflight gauge, the
// per-endpoint count/error/latency record, and the request log line.
// Admission slots are no longer taken here — handlers call acquire
// around local compute only, so a dispatched request that spends its
// life waiting on the coordinator never pins one of the MaxConcurrent
// compute slots.
func (s *Server) track(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.addInflight(1)
		defer s.metrics.addInflight(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		s.metrics.record(name, d, rec.status != http.StatusOK)
		s.logf("serve: %s %d %s", name, rec.status, d)
	}
}

// acquire takes one of the MaxConcurrent admission slots, waiting at
// most QueueTimeout, refusing with 503 when the daemon is saturated.
// On ok the caller must invoke release exactly once.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
	default:
		t := time.NewTimer(s.opts.QueueTimeout)
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
		case <-t.C:
			s.metrics.reject()
			http.Error(w, fmt.Sprintf("server saturated: %d requests in flight, none finished within %s",
				s.opts.MaxConcurrent, s.opts.QueueTimeout), http.StatusServiceUnavailable)
			return nil, false
		case <-r.Context().Done():
			s.metrics.reject()
			http.Error(w, "client gave up while queued", http.StatusServiceUnavailable)
			return nil, false
		}
	}
	return func() { <-s.sem }, true
}

// dispatch runs the named sweep through the coordinator hub and returns
// a checkpoint pre-populated with every cell, or nil when the handler
// should compute locally (no coordinator configured, or the dispatch
// side degraded — logged and counted, never a client error). The error
// return is non-nil only when the client itself is gone.
func (s *Server) dispatch(r *http.Request, endpoint, sweep string, params experiments.SweepParams) (runner.Checkpoint, error) {
	if s.disp == nil {
		return nil, nil
	}
	cells, err := s.disp.run(r.Context(), sweep, params)
	switch {
	case err == nil:
		s.metrics.dispatchDone()
		return &premadeStore{cells: cells}, nil
	case r.Context().Err() != nil:
		return nil, r.Context().Err()
	default:
		reason := "error"
		var de *degradeError
		if errors.As(err, &de) {
			reason = de.reason
		}
		s.metrics.dispatchDegraded(reason)
		s.logf("serve: %s: %v; running locally", endpoint, err)
		return nil, nil
	}
}

// instanceFor resolves a request's instance: cache hit, or parse +
// validate + insert. The returned scratch is non-nil only on a cache
// hit that also had a parked scratch (tables prebuilt); the caller
// still owns releasing whatever scratch it ends up using.
func (s *Server) instanceFor(w http.ResponseWriter, instRaw, wfcRaw json.RawMessage, link, ccr float64, nodes int) (*cacheEntry, *scheduler.Scratch, bool) {
	var key string
	switch {
	case len(instRaw) > 0 && len(wfcRaw) > 0:
		http.Error(w, "instance and wfc are mutually exclusive", http.StatusBadRequest)
		return nil, nil, false
	case len(instRaw) > 0:
		key = hashKey(compactBytes(instRaw))
	case len(wfcRaw) > 0:
		key = hashKey(compactBytes(wfcRaw),
			[]byte(strconv.FormatFloat(link, 'g', -1, 64)),
			[]byte(strconv.FormatFloat(ccr, 'g', -1, 64)),
			[]byte(strconv.Itoa(nodes)))
	default:
		http.Error(w, "one of instance or wfc is required", http.StatusBadRequest)
		return nil, nil, false
	}
	if entry, scr := s.cache.lookup(key); entry != nil {
		return entry, scr, true
	}
	var inst *graph.Instance
	var err error
	if len(instRaw) > 0 {
		inst, err = serialize.UnmarshalInstance(instRaw)
	} else {
		inst, err = instanceFromWfC(wfcRaw, link, ccr, nodes)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad instance: %v", err), http.StatusBadRequest)
		return nil, nil, false
	}
	return s.cache.insert(key, inst), nil, true
}

// compactBytes canonicalizes JSON payload whitespace so the cache key
// survives re-indentation of the same document.
func compactBytes(raw json.RawMessage) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}

// instanceFromWfC imports a wfformat document exactly as `saga convert
// -from-wfc` does: uniform link strength, machines from the trace or a
// unit network of the given size, optional homogeneous-CCR override.
func instanceFromWfC(raw []byte, link, ccr float64, nodes int) (*graph.Instance, error) {
	doc, err := wfc.Parse(raw)
	if err != nil {
		return nil, err
	}
	g, err := doc.ToTaskGraph()
	if err != nil {
		return nil, err
	}
	if link <= 0 {
		link = 1
	}
	if nodes <= 0 {
		nodes = 4
	}
	net := doc.ToNetwork(link)
	if net == nil {
		net = graph.NewNetwork(nodes)
		for u := 0; u < nodes; u++ {
			for v := u + 1; v < nodes; v++ {
				net.SetLink(u, v, link)
			}
		}
	}
	inst := graph.NewInstance(g, net)
	if ccr > 0 {
		datasets.SetHomogeneousCCR(inst, ccr)
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// releaseScratch parks the request's scratch with its instance's cache
// entry (so the next hit schedules with prebuilt tables) or, when the
// entry is gone or full, returns it to the global pool.
func (s *Server) releaseScratch(entry *cacheEntry, scr *scheduler.Scratch) {
	if entry != nil && s.cache.release(entry, scr) {
		return
	}
	s.pool.Put(scr)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	var req ScheduleRequest
	if !httpx.ReadJSON(w, r, &req) {
		return
	}
	sched, err := scheduler.New(req.Scheduler)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	entry, scr, ok := s.instanceFor(w, req.Instance, req.WfC, req.Link, req.CCR, req.Nodes)
	if !ok {
		return
	}
	s.leases.Add(1)
	if scr == nil {
		scr = s.pool.Get()
	}
	defer s.releaseScratch(entry, scr)
	out := scr.AcquireSchedule()
	defer scr.ReleaseSchedule(out)
	if err := scheduler.ScheduleInto(sched, entry.inst, scr, out); err != nil {
		http.Error(w, fmt.Sprintf("schedule: %v", err), http.StatusBadRequest)
		return
	}
	raw, err := serialize.MarshalSchedule(out)
	if err != nil {
		http.Error(w, fmt.Sprintf("encode schedule: %v", err), http.StatusInternalServerError)
		return
	}
	httpx.WriteJSON(w, ScheduleResponse{
		Scheduler: sched.Name(),
		Makespan:  out.Makespan(),
		Schedule:  raw,
	})
}

func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	var req PortfolioRequest
	if !httpx.ReadJSON(w, r, &req) {
		return
	}
	if len(req.Schedulers) < 2 || len(req.Schedulers) > 32 {
		http.Error(w, fmt.Sprintf("portfolio needs 2..32 schedulers, got %d", len(req.Schedulers)), http.StatusBadRequest)
		return
	}
	if req.K <= 0 || req.K > len(req.Schedulers) {
		http.Error(w, fmt.Sprintf("k %d outside [1, %d]", req.K, len(req.Schedulers)), http.StatusBadRequest)
		return
	}
	if req.Iters == 0 {
		req.Iters = 250
	}
	if req.Restarts == 0 {
		req.Restarts = 2
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Iters < 0 || req.Iters > s.opts.MaxPISAIters || req.Restarts < 0 || req.Restarts > 100 {
		http.Error(w, fmt.Sprintf("iters %d / restarts %d outside the server's budget (iters ≤ %d, restarts ≤ 100)",
			req.Iters, req.Restarts, s.opts.MaxPISAIters), http.StatusBadRequest)
		return
	}
	var scheds []scheduler.Scheduler
	for _, n := range req.Schedulers {
		sc, err := scheduler.New(n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		scheds = append(scheds, sc)
	}
	opts := core.DefaultOptions()
	opts.MaxIters = req.Iters
	opts.Restarts = req.Restarts
	opts.Seed = req.Seed
	// SweepParams.Anneal() builds exactly these options, which is what
	// keeps a dispatched grid's fingerprint honest: workers compute the
	// cells this handler would.
	store, cerr := s.dispatch(r, "portfolio", "pairwise", experiments.SweepParams{
		Iters: req.Iters, Restarts: req.Restarts, Seed: req.Seed, Schedulers: req.Schedulers,
	})
	if cerr != nil {
		http.Error(w, "client canceled", http.StatusServiceUnavailable)
		return
	}
	ro := runner.Options{Workers: s.opts.Workers, Context: r.Context(), Checkpoint: store}
	if store == nil {
		// Local compute holds an admission slot; replaying dispatched
		// cells (store != nil) computes nothing and does not.
		release, ok := s.acquire(w, r)
		if !ok {
			return
		}
		defer release()
	}
	res, err := experiments.PairwisePISARun(scheds, experiments.PairwiseOptions{Anneal: opts}, ro)
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "client canceled", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, fmt.Sprintf("portfolio grid: %v", err), http.StatusInternalServerError)
		return
	}
	p, err := experiments.SelectPortfolioParallel(res.Schedulers, res.Ratios, req.K, s.opts.Workers)
	if err != nil {
		http.Error(w, fmt.Sprintf("portfolio selection: %v", err), http.StatusInternalServerError)
		return
	}
	httpx.WriteJSON(w, PortfolioResponse{
		Schedulers: res.Schedulers,
		Ratios:     res.Ratios,
		Members:    p.Members,
		WorstRatio: p.WorstRatio,
	})
}

func (s *Server) handleRobustness(w http.ResponseWriter, r *http.Request) {
	var req RobustnessRequest
	if !httpx.ReadJSON(w, r, &req) {
		return
	}
	sched, err := scheduler.New(req.Scheduler)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Sigma == 0 {
		req.Sigma = 0.2
	}
	if req.N == 0 {
		req.N = 100
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Sigma < 0 || req.Sigma > 10 {
		http.Error(w, fmt.Sprintf("sigma %g outside [0, 10]", req.Sigma), http.StatusBadRequest)
		return
	}
	if req.N < 1 || req.N > s.opts.MaxRobustnessN {
		http.Error(w, fmt.Sprintf("n %d outside [1, %d]", req.N, s.opts.MaxRobustnessN), http.StatusBadRequest)
		return
	}
	entry, scr, ok := s.instanceFor(w, req.Instance, req.WfC, req.Link, req.CCR, req.Nodes)
	if !ok {
		return
	}
	if scr != nil {
		// The robustness driver owns per-worker scratches internally; a
		// parked scratch stays parked for the schedule path.
		s.releaseScratch(entry, scr)
	}
	// A dispatched robustness sweep is identified by the exact instance
	// bytes. Raw submissions use the client's bytes verbatim; WfC
	// imports re-marshal the parsed instance (float64 JSON round-trips
	// exactly, so the worker's parse is bit-equal to entry.inst).
	instRaw := []byte(req.Instance)
	if len(instRaw) == 0 && s.disp != nil {
		var merr error
		if instRaw, merr = serialize.MarshalInstance(entry.inst); merr != nil {
			instRaw = nil // dispatch impossible; compute locally
		}
	}
	var store runner.Checkpoint
	if len(instRaw) > 0 {
		var cerr error
		store, cerr = s.dispatch(r, "robustness", "robustness", experiments.SweepParams{
			N: req.N, Seed: req.Seed, Scheduler: req.Scheduler, Sigma: req.Sigma, InstanceRaw: instRaw,
		})
		if cerr != nil {
			http.Error(w, "client canceled", http.StatusServiceUnavailable)
			return
		}
	}
	ro := runner.Options{Workers: s.opts.Workers, Context: r.Context(), Checkpoint: store}
	if store == nil {
		release, ok := s.acquire(w, r)
		if !ok {
			return
		}
		defer release()
	}
	res, err := experiments.RobustnessRun(entry.inst, sched, req.Sigma, req.N, req.Seed, ro)
	if err != nil {
		if r.Context().Err() != nil {
			http.Error(w, "client canceled", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, fmt.Sprintf("robustness: %v", err), http.StatusBadRequest)
		return
	}
	httpx.WriteJSON(w, RobustnessResponse{
		Scheduler: res.Scheduler,
		Nominal:   res.Nominal,
		Static:    res.Static,
		Adaptive:  res.Adaptive,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	endpoints, rejected, inflight, uptime := s.metrics.snapshot()
	dispatch, authRejected := s.metrics.dispatchSnapshot()
	httpx.WriteJSON(w, MetricsSnapshot{
		UptimeSeconds: uptime,
		Endpoints:     endpoints,
		Cache:         s.cache.stats(),
		Pool: PoolStats{
			FreshScratches: s.pool.Fresh(),
			Leases:         s.leases.Load(),
		},
		Admission: AdmissionStats{
			MaxConcurrent: s.opts.MaxConcurrent,
			Inflight:      inflight,
			Rejected:      rejected,
		},
		Dispatch:     dispatch,
		AuthRejected: authRejected,
	})
}
