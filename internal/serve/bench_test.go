package serve

// The daemon load harness behind BENCH_serve.json: N concurrent
// clients (≥8) hammer a live server over real localhost HTTP with a
// schedule-heavy mix over a handful of distinct instances, every
// response is verified byte-identical to the direct library path, and
// client-observed latency quantiles (p50/p90/p99) plus throughput and
// the server's own /metrics ledger are reported. Opted in via
// SERVE_BENCH_GATE=1 (wired up as `make bench-serve`, part of `make
// verify`); SERVE_BENCH_OUT=<path> additionally writes the JSON
// artifact committed as BENCH_serve.json — see EXPERIMENTS.md for the
// re-measure protocol.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"saga/internal/scheduler"
	"saga/internal/serialize"
)

type loadResults struct {
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ErrorCount    int     `json:"errors"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanMS        float64 `json:"mean_ms"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

type loadArtifact struct {
	Benchmark string           `json:"benchmark"`
	Workload  string           `json:"workload"`
	Method    string           `json:"method"`
	Host      string           `json:"host"`
	Results   loadResults      `json:"results"`
	Server    *MetricsSnapshot `json:"server_metrics"`
}

func TestServeLoadGate(t *testing.T) {
	if os.Getenv("SERVE_BENCH_GATE") != "1" {
		t.Skip("set SERVE_BENCH_GATE=1 to run the daemon load harness")
	}
	clients := 8
	if v := os.Getenv("SERVE_BENCH_CLIENTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SERVE_BENCH_CLIENTS %q", v)
		}
		clients = n
	}
	const perClient = 50

	// QueueTimeout is generous: under a saturating load test every
	// request should queue and finish, not shed.
	s := New(Options{MaxConcurrent: 4, QueueTimeout: 60 * time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Four distinct instances, expected bytes precomputed: the harness
	// verifies while it measures.
	type testCase struct {
		body []byte
		want []byte
	}
	var cases []testCase
	for seed := uint64(1); seed <= 4; seed++ {
		instRaw := testInstance(t, seed)
		inst, err := serialize.UnmarshalInstance(instRaw)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := scheduler.New("HEFT")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sched.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		rawSched, err := serialize.MarshalSchedule(direct)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(ScheduleResponse{
			Scheduler: sched.Name(),
			Makespan:  direct.Makespan(),
			Schedule:  rawSched,
		})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, testCase{
			body: mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: instRaw}),
			want: append(want, '\n'),
		})
	}

	latencies := make([][]time.Duration, clients)
	errs := make([]int, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < perClient; i++ {
				tc := cases[(c+i)%len(cases)]
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(tc.body))
				if err != nil {
					errs[c]++
					continue
				}
				var buf bytes.Buffer
				_, rerr := buf.ReadFrom(resp.Body)
				resp.Body.Close()
				d := time.Since(t0)
				if rerr != nil || resp.StatusCode != http.StatusOK || !bytes.Equal(tc.want, buf.Bytes()) {
					errs[c]++
					continue
				}
				latencies[c] = append(latencies[c], d)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	errCount := 0
	for c := 0; c < clients; c++ {
		all = append(all, latencies[c]...)
		errCount += errs[c]
	}
	if errCount > 0 {
		t.Fatalf("%d of %d requests failed or returned wrong bytes under load", errCount, clients*perClient)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Microseconds()) / 1000.0
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	res := loadResults{
		Clients:       clients,
		Requests:      len(all),
		ErrorCount:    errCount,
		P50MS:         q(0.50),
		P90MS:         q(0.90),
		P99MS:         q(0.99),
		MeanMS:        float64(sum.Microseconds()) / float64(len(all)) / 1000.0,
		WallSeconds:   wall.Seconds(),
		ThroughputRPS: float64(len(all)) / wall.Seconds(),
	}
	t.Logf("serve load: %d clients x %d requests, p50 %.3fms p90 %.3fms p99 %.3fms mean %.3fms, %.0f req/s",
		clients, perClient, res.P50MS, res.P90MS, res.P99MS, res.MeanMS, res.ThroughputRPS)

	// The gate itself is correctness plus a pathological-regression
	// ceiling: these are sub-millisecond schedules — if the p99 of a
	// local round trip crosses whole seconds, admission or caching broke.
	if res.P99MS > 5000 {
		t.Fatalf("p99 %.1fms: daemon latency pathologically regressed", res.P99MS)
	}
	snap := metricsSnapshot(t, ts.URL)
	wantReqs := uint64(clients * perClient)
	if snap.Endpoints["schedule"].Count != wantReqs || snap.Endpoints["schedule"].Errors != 0 {
		t.Fatalf("server ledger disagrees with the harness: %+v (want %d clean requests)",
			snap.Endpoints["schedule"], wantReqs)
	}
	if snap.Cache.Hits+snap.Cache.Misses != wantReqs || snap.Cache.Hits < wantReqs/2 {
		t.Fatalf("cache ledger implausible for a 4-instance load: %+v", snap.Cache)
	}

	if out := os.Getenv("SERVE_BENCH_OUT"); out != "" {
		artifact := loadArtifact{
			Benchmark: "TestServeLoadGate (internal/serve)",
			Workload:  fmt.Sprintf("%d concurrent clients x %d requests each against a live daemon (httptest over localhost TCP, MaxConcurrent=4): POST /v1/schedule with HEFT over 4 distinct chains instances round-robin, every response byte-verified against the direct library call; cache-hot after the first 4 requests", clients, perClient),
			Method:    "SERVE_BENCH_GATE=1 SERVE_BENCH_OUT=BENCH_serve.json go test -run TestServeLoadGate -count 1 -v ./internal/serve/ (make bench-serve runs the same gate without writing)",
			Host:      fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; single-core shared VM this session — client-observed latency includes queueing behind the %d-slot admission pool on one core, so quantiles measure the admission path honestly but throughput does not scale", runtime.GOMAXPROCS(0), runtime.NumCPU(), 4),
			Results:   res,
			Server:    snap,
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
