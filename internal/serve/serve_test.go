package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"saga/internal/datasets"
	"saga/internal/rng"
	_ "saga/internal/schedulers" // register the scheduler names requests use
	"saga/internal/serialize"
)

// testInstance renders a small chains instance to its serialize JSON.
func testInstance(t *testing.T, seed uint64) []byte {
	t.Helper()
	g, err := datasets.New("chains")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := serialize.MarshalInstance(g.Generate(rng.New(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func postRaw(t *testing.T, url, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScheduleEndpointAndCache(t *testing.T) {
	s := New(Options{MaxConcurrent: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	inst := testInstance(t, 7)
	body := mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: inst})

	resp, first := postRaw(t, ts.URL, "/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, first)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(first, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Scheduler != "HEFT" || sr.Makespan <= 0 || len(sr.Schedule) == 0 {
		t.Fatalf("implausible response: %+v", sr)
	}
	if _, err := serialize.UnmarshalSchedule(sr.Schedule); err != nil {
		t.Fatalf("response schedule does not round-trip: %v", err)
	}

	// The identical submission again: byte-identical answer, cache hit,
	// and the parked scratch's tables reused.
	resp, second := postRaw(t, ts.URL, "/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated submission changed the response bytes:\n%s\nvs\n%s", first, second)
	}
	// Same instance re-indented: still one cache entry (compacted key).
	var indented bytes.Buffer
	if err := json.Indent(&indented, inst, "", "    "); err != nil {
		t.Fatal(err)
	}
	resp, third := postRaw(t, ts.URL, "/v1/schedule",
		mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: indented.Bytes()}))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(first, third) {
		t.Fatalf("re-indented submission diverged (status %d)", resp.StatusCode)
	}

	st := s.cache.stats()
	if st.Entries != 1 {
		t.Fatalf("want 1 cache entry, got %+v", st)
	}
	if st.Hits < 2 || st.TableReuses < 1 {
		t.Fatalf("cache hits/table reuses not counted: %+v", st)
	}
}

func TestWfCommonsSubmission(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	wfcDoc := []byte(`{
		"name": "diamond",
		"schemaVersion": "1.4",
		"workflow": {
			"tasks": [
				{"name": "a", "id": "a", "runtimeInSeconds": 1, "parents": []},
				{"name": "b", "id": "b", "runtimeInSeconds": 2, "parents": ["a"]},
				{"name": "c", "id": "c", "runtimeInSeconds": 3, "parents": ["a"]},
				{"name": "d", "id": "d", "runtimeInSeconds": 1, "parents": ["b", "c"]}
			],
			"machines": [
				{"nodeName": "m0", "speed": 1},
				{"nodeName": "m1", "speed": 2}
			]
		}
	}`)
	resp, body := postRaw(t, ts.URL, "/v1/schedule",
		mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", WfC: wfcDoc, Link: 1}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Makespan <= 0 {
		t.Fatalf("wfc import produced makespan %v", sr.Makespan)
	}
}

// TestRequestErrorPaths is the table-driven reject suite: every
// client-attributable defect answers 400 (or the method/path statuses
// the mux owns), never a 500 and never a hang.
func TestRequestErrorPaths(t *testing.T) {
	s := New(Options{MaxRobustnessN: 1000, MaxPISAIters: 1000})
	ts := httptest.NewServer(s)
	defer ts.Close()
	inst := testInstance(t, 1)

	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"malformed json", "/v1/schedule", `{"scheduler": "HEFT", `, http.StatusBadRequest},
		{"no instance", "/v1/schedule", `{"scheduler": "HEFT"}`, http.StatusBadRequest},
		{"unknown scheduler", "/v1/schedule", fmt.Sprintf(`{"scheduler": "NOPE", "instance": %s}`, inst), http.StatusBadRequest},
		{"instance and wfc both", "/v1/schedule", fmt.Sprintf(`{"scheduler": "HEFT", "instance": %s, "wfc": {"workflow":{}}}`, inst), http.StatusBadRequest},
		{"bad instance payload", "/v1/schedule", `{"scheduler": "HEFT", "instance": {"tasks": "nope"}}`, http.StatusBadRequest},
		{"bad wfc payload", "/v1/schedule", `{"scheduler": "HEFT", "wfc": {"workflow": {"tasks": []}}}`, http.StatusBadRequest},
		{"portfolio too few schedulers", "/v1/portfolio", `{"schedulers": ["HEFT"], "k": 1}`, http.StatusBadRequest},
		{"portfolio k out of range", "/v1/portfolio", `{"schedulers": ["HEFT", "CPoP"], "k": 3}`, http.StatusBadRequest},
		{"portfolio unknown member", "/v1/portfolio", `{"schedulers": ["HEFT", "NOPE"], "k": 1}`, http.StatusBadRequest},
		{"portfolio over iters budget", "/v1/portfolio", `{"schedulers": ["HEFT", "CPoP"], "k": 1, "iters": 100000}`, http.StatusBadRequest},
		{"robustness malformed", "/v1/robustness", `]`, http.StatusBadRequest},
		{"robustness unknown scheduler", "/v1/robustness", fmt.Sprintf(`{"scheduler": "NOPE", "instance": %s}`, inst), http.StatusBadRequest},
		{"robustness sigma out of range", "/v1/robustness", fmt.Sprintf(`{"scheduler": "HEFT", "instance": %s, "sigma": 99}`, inst), http.StatusBadRequest},
		{"robustness n over budget", "/v1/robustness", fmt.Sprintf(`{"scheduler": "HEFT", "instance": %s, "n": 99999}`, inst), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRaw(t, ts.URL, tc.path, []byte(tc.body))
			if resp.StatusCode != tc.status {
				t.Fatalf("want %d, got %d: %s", tc.status, resp.StatusCode, body)
			}
		})
	}

	t.Run("unknown path", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL, "/v1/nonsense", []byte(`{}`))
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("want 404, got %d", resp.StatusCode)
		}
	})
	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/schedule")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("want 405, got %d", resp.StatusCode)
		}
	})
}

// TestAdmissionSaturation proves the bounded pool sheds load: with the
// single slot held, a request waits QueueTimeout and is refused with
// 503; once the slot frees, the identical request succeeds.
func TestAdmissionSaturation(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: testInstance(t, 3)})

	s.sem <- struct{}{} // occupy the only slot
	start := time.Now()
	resp, msg := postRaw(t, ts.URL, "/v1/schedule", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 while saturated, got %d: %s", resp.StatusCode, msg)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Fatalf("refused after %v without honoring the queue timeout", waited)
	}
	if !strings.Contains(string(msg), "saturated") {
		t.Fatalf("503 body should say why: %q", msg)
	}
	<-s.sem

	resp, _ = postRaw(t, ts.URL, "/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after slot freed: status %d", resp.StatusCode)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.Admission.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", snap.Admission.Rejected)
	}
	if snap.Admission.MaxConcurrent != 1 {
		t.Fatalf("max_concurrent = %d, want 1", snap.Admission.MaxConcurrent)
	}
}

func metricsSnapshot(t *testing.T, url string) *MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

func TestMetricsSnapshotShape(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: testInstance(t, 5)})
	for i := 0; i < 3; i++ {
		if resp, _ := postRaw(t, ts.URL, "/v1/schedule", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	postRaw(t, ts.URL, "/v1/schedule", []byte(`{`)) // one malformed → error counter

	snap := metricsSnapshot(t, ts.URL)
	es, ok := snap.Endpoints["schedule"]
	if !ok {
		t.Fatalf("no schedule endpoint stats: %+v", snap)
	}
	if es.Count != 4 || es.Errors != 1 {
		t.Fatalf("schedule stats count=%d errors=%d, want 4/1", es.Count, es.Errors)
	}
	if es.P50MS <= 0 || es.P99MS < es.P50MS {
		t.Fatalf("latency quantiles implausible: %+v", es)
	}
	if snap.Pool.Leases != 3 {
		t.Fatalf("pool leases = %d, want 3 (malformed request leases nothing)", snap.Pool.Leases)
	}
	if snap.Cache.Misses != 1 || snap.Cache.Hits != 2 {
		t.Fatalf("cache stats: %+v", snap.Cache)
	}
	if snap.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", snap.UptimeSeconds)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestCacheEviction fills the cache beyond its budget and checks LRU
// eviction keeps it bounded while every response stays correct.
func TestCacheEviction(t *testing.T) {
	s := New(Options{CacheEntries: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	for seed := uint64(1); seed <= 5; seed++ {
		body := mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: testInstance(t, seed)})
		if resp, msg := postRaw(t, ts.URL, "/v1/schedule", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, msg)
		}
	}
	st := s.cache.stats()
	if st.Entries > 2 {
		t.Fatalf("cache grew past its budget: %+v", st)
	}
	if st.Evictions < 3 {
		t.Fatalf("expected ≥3 evictions, got %+v", st)
	}
}
