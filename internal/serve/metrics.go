package serve

import (
	"sync"
	"time"
)

// latencyBuckets is the number of power-of-two microsecond histogram
// buckets: bucket i counts requests with latency < 2^i microseconds,
// the last bucket is the overflow. 2^26 µs ≈ 67 s, far beyond any
// admission-timeout-bounded request.
const latencyBuckets = 27

// endpointMetrics is one endpoint's counters. Latencies go into a
// fixed-size log2 histogram, so recording is O(1), lock-cheap, and the
// snapshot can answer quantiles without retaining samples.
type endpointMetrics struct {
	count   uint64
	errors  uint64
	buckets [latencyBuckets]uint64
	totalUS uint64
}

func (m *endpointMetrics) record(d time.Duration, failed bool) {
	m.count++
	if failed {
		m.errors++
	}
	us := uint64(d.Microseconds())
	m.totalUS += us
	b := 0
	for v := us; v > 0 && b < latencyBuckets-1; v >>= 1 {
		b++
	}
	m.buckets[b]++
}

// quantile returns the upper bound (in milliseconds) of the histogram
// bucket where the cumulative count crosses q — an upper estimate with
// at most 2x resolution error, plenty for p50/p99 dashboards.
func (m *endpointMetrics) quantile(q float64) float64 {
	if m.count == 0 {
		return 0
	}
	want := uint64(q * float64(m.count))
	if want < 1 {
		want = 1
	}
	var cum uint64
	for i, n := range m.buckets {
		cum += n
		if cum >= want {
			return float64(uint64(1)<<uint(i)) / 1000.0
		}
	}
	return float64(uint64(1)<<uint(latencyBuckets-1)) / 1000.0
}

// Metrics aggregates the daemon's observability counters. One mutex
// guards everything: request recording is a few integer ops, far off
// the scheduling hot path.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointMetrics
	rejected  uint64
	inflight  int

	authRejected uint64
	dispatched   uint64
	reregistered uint64
	dispCanceled uint64
	degraded     map[string]uint64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: map[string]*endpointMetrics{}, degraded: map[string]uint64{}}
}

func (m *Metrics) record(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[endpoint] = em
	}
	em.record(d, failed)
}

func (m *Metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *Metrics) addInflight(delta int) {
	m.mu.Lock()
	m.inflight += delta
	m.mu.Unlock()
}

func (m *Metrics) authReject() {
	m.mu.Lock()
	m.authRejected++
	m.mu.Unlock()
}

func (m *Metrics) dispatchDone() {
	m.mu.Lock()
	m.dispatched++
	m.mu.Unlock()
}

func (m *Metrics) dispatchDegraded(reason string) {
	m.mu.Lock()
	m.degraded[reason]++
	m.mu.Unlock()
}

func (m *Metrics) dispatchReregistered() {
	m.mu.Lock()
	m.reregistered++
	m.mu.Unlock()
}

func (m *Metrics) dispatchCanceled() {
	m.mu.Lock()
	m.dispCanceled++
	m.mu.Unlock()
}

func (m *Metrics) dispatchSnapshot() (DispatchStats, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := DispatchStats{
		Dispatched:   m.dispatched,
		Reregistered: m.reregistered,
		Canceled:     m.dispCanceled,
	}
	if len(m.degraded) > 0 {
		d.Degraded = make(map[string]uint64, len(m.degraded))
		for k, v := range m.degraded {
			d.Degraded[k] = v
		}
	}
	return d, m.authRejected
}

// EndpointStats is one endpoint's snapshot.
type EndpointStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// CacheStats is the instance cache's snapshot.
type CacheStats struct {
	Entries     int    `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	TableReuses uint64 `json:"table_reuses"`
}

// PoolStats is the scratch pool's snapshot.
type PoolStats struct {
	FreshScratches uint64 `json:"fresh_scratches"`
	Leases         uint64 `json:"leases"`
}

// AdmissionStats is the bounded-worker-pool snapshot.
type AdmissionStats struct {
	MaxConcurrent int    `json:"max_concurrent"`
	Inflight      int    `json:"inflight"`
	Rejected      uint64 `json:"rejected"`
}

// DispatchStats is the coordinator-dispatch snapshot: how many requests
// were answered from coordinator-computed cells, how many fell back to
// local execution (keyed by reason — "no-workers", "unreachable",
// "poisoned", "short"), how often a coordinator restart forced a sweep
// re-registration, and how many dispatched requests the client
// abandoned.
type DispatchStats struct {
	Dispatched   uint64            `json:"dispatched"`
	Degraded     map[string]uint64 `json:"degraded,omitempty"`
	Reregistered uint64            `json:"reregistered"`
	Canceled     uint64            `json:"canceled"`
}

// MetricsSnapshot is the GET /metrics payload.
type MetricsSnapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	Cache         CacheStats               `json:"cache"`
	Pool          PoolStats                `json:"pool"`
	Admission     AdmissionStats           `json:"admission"`
	Dispatch      DispatchStats            `json:"dispatch"`
	AuthRejected  uint64                   `json:"auth_rejected"`
}

func (m *Metrics) snapshot() (out map[string]EndpointStats, rejected uint64, inflight int, uptime float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out = make(map[string]EndpointStats, len(m.endpoints))
	for name, em := range m.endpoints {
		es := EndpointStats{
			Count:  em.count,
			Errors: em.errors,
			P50MS:  em.quantile(0.50),
			P90MS:  em.quantile(0.90),
			P99MS:  em.quantile(0.99),
		}
		if em.count > 0 {
			es.MeanMS = float64(em.totalUS) / float64(em.count) / 1000.0
		}
		out[name] = es
	}
	return out, m.rejected, m.inflight, time.Since(m.start).Seconds()
}
