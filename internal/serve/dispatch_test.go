package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"saga/internal/coord"
	"saga/internal/coord/faultinject"
)

// --- dispatch harness --------------------------------------------------

func startHub(t *testing.T, opts coord.HubOptions) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(coord.NewHub(opts))
	t.Cleanup(srv.Close)
	return srv
}

// startWorker runs one persistent fleet member until ctx is cancelled
// (or its fault plan kills it — both are expected exits here).
func startWorker(ctx context.Context, wg *sync.WaitGroup, hubURL, name string, plan faultinject.Plan) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = coord.RunWorker(ctx, hubURL, coord.WorkerOptions{
			Name:         name,
			Workers:      1,
			Persist:      true,
			PollInterval: 10 * time.Millisecond,
			Client:       &http.Client{Transport: plan.Transport(nil)},
			OnCellStored: plan.Hook(),
		})
	}()
}

func hubStatus(t *testing.T, hubURL string) coord.Status {
	t.Helper()
	resp, err := http.Get(hubURL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st coord.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitHub(t *testing.T, hubURL string, ok func(coord.Status) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := hubStatus(t, hubURL); ok(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub never reached %s: %+v", what, hubStatus(t, hubURL))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postResult is a goroutine-safe postRaw: no t.Fatal off the test
// goroutine.
type postResult struct {
	status int
	body   []byte
	err    error
}

func postAsync(url, path string, body []byte) <-chan postResult {
	ch := make(chan postResult, 1)
	go func() {
		resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
		if err != nil {
			ch <- postResult{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, err = buf.ReadFrom(resp.Body)
		ch <- postResult{status: resp.StatusCode, body: buf.Bytes(), err: err}
	}()
	return ch
}

var wfcFixture = json.RawMessage(`{
	"name": "diamond",
	"schemaVersion": "1.4",
	"workflow": {
		"tasks": [
			{"name": "a", "id": "a", "runtimeInSeconds": 1, "parents": []},
			{"name": "b", "id": "b", "runtimeInSeconds": 2, "parents": ["a"]},
			{"name": "c", "id": "c", "runtimeInSeconds": 3, "parents": ["a"]},
			{"name": "d", "id": "d", "runtimeInSeconds": 1, "parents": ["b", "c"]}
		],
		"machines": [
			{"nodeName": "m0", "speed": 1},
			{"nodeName": "m1", "speed": 2}
		]
	}
}`)

// --- the suite ---------------------------------------------------------

// TestDispatchByteIdentity is the tentpole contract: a daemon wired to
// a coordinator hub with a live fleet answers portfolio and robustness
// requests (raw-instance and WfCommons alike) byte-for-byte identically
// to a local-only daemon — while holding zero admission slots, since
// the cells are computed by the fleet.
func TestDispatchByteIdentity(t *testing.T) {
	hub := startHub(t, coord.HubOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	startWorker(ctx, &wg, hub.URL, "w0", faultinject.Plan{})
	startWorker(ctx, &wg, hub.URL, "w1", faultinject.Plan{})

	disp := New(Options{MaxConcurrent: 1, Coordinator: hub.URL,
		DispatchPoll: 10 * time.Millisecond, DegradeWindow: 30 * time.Second})
	dispTS := httptest.NewServer(disp)
	defer dispTS.Close()
	local := New(Options{})
	localTS := httptest.NewServer(local)
	defer localTS.Close()

	// Occupy the dispatch daemon's only compute slot for the whole test:
	// dispatched requests must not need it.
	disp.sem <- struct{}{}
	defer func() { <-disp.sem }()

	reqs := []struct {
		name, path string
		body       []byte
	}{
		{"portfolio", "/v1/portfolio", mustMarshal(t, PortfolioRequest{
			Schedulers: []string{"HEFT", "CPoP", "MinMin"}, K: 2, Iters: 40, Restarts: 1, Seed: 7})},
		{"robustness-instance", "/v1/robustness", mustMarshal(t, RobustnessRequest{
			Scheduler: "HEFT", Instance: testInstance(t, 11), Sigma: 0.3, N: 24, Seed: 9})},
		{"robustness-wfc", "/v1/robustness", mustMarshal(t, RobustnessRequest{
			Scheduler: "CPoP", WfC: wfcFixture, Link: 1, Sigma: 0.2, N: 16, Seed: 4})},
	}
	for _, rq := range reqs {
		t.Run(rq.name, func(t *testing.T) {
			wantResp, want := postRaw(t, localTS.URL, rq.path, rq.body)
			if wantResp.StatusCode != http.StatusOK {
				t.Fatalf("local twin: status %d: %s", wantResp.StatusCode, want)
			}
			gotResp, got := postRaw(t, dispTS.URL, rq.path, rq.body)
			if gotResp.StatusCode != http.StatusOK {
				t.Fatalf("dispatched: status %d: %s", gotResp.StatusCode, got)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("dispatched response diverged from local:\nlocal      %s\ndispatched %s", want, got)
			}
		})
	}

	snap := metricsSnapshot(t, dispTS.URL)
	if snap.Dispatch.Dispatched != uint64(len(reqs)) {
		t.Fatalf("dispatched = %d, want %d", snap.Dispatch.Dispatched, len(reqs))
	}
	if len(snap.Dispatch.Degraded) != 0 {
		t.Fatalf("healthy fleet degraded: %v", snap.Dispatch.Degraded)
	}
	// Every sweep reference was released once its cells were fetched.
	waitHub(t, hub.URL, func(st coord.Status) bool { return st.Sweeps == 0 }, "0 sweeps")
}

// TestDispatchChaosSurvivesFleetAndCoordinatorFailure drives concurrent
// requests through every failure mode the dispatch layer claims to
// survive: the coordinator restarts (losing all state) mid-request, one
// worker is killed mid-lease, one drops every heartbeat, one delivers
// every completion twice — and each response must still be
// byte-identical to local execution, with zero degradations.
func TestDispatchChaosSurvivesFleetAndCoordinatorFailure(t *testing.T) {
	hubOpts := coord.HubOptions{Sweep: coord.Options{LeaseSize: 2, LeaseTTL: 500 * time.Millisecond}}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hubURL := "http://" + addr
	srv1 := &http.Server{Handler: coord.NewHub(hubOpts)}
	go srv1.Serve(ln)

	disp := New(Options{Coordinator: hubURL,
		DispatchPoll: 10 * time.Millisecond, DegradeWindow: 30 * time.Second})
	dispTS := httptest.NewServer(disp)
	defer dispTS.Close()
	local := New(Options{})
	localTS := httptest.NewServer(local)
	defer localTS.Close()

	reqs := []struct {
		name, path string
		body       []byte
	}{
		{"portfolio-a", "/v1/portfolio", mustMarshal(t, PortfolioRequest{
			Schedulers: []string{"HEFT", "CPoP", "MinMin"}, K: 2, Iters: 60, Restarts: 1, Seed: 13})},
		{"portfolio-b", "/v1/portfolio", mustMarshal(t, PortfolioRequest{
			Schedulers: []string{"HEFT", "CPoP", "ETF"}, K: 2, Iters: 60, Restarts: 1, Seed: 29})},
		{"robustness-a", "/v1/robustness", mustMarshal(t, RobustnessRequest{
			Scheduler: "HEFT", Instance: testInstance(t, 17), Sigma: 0.25, N: 60, Seed: 3})},
		{"robustness-b", "/v1/robustness", mustMarshal(t, RobustnessRequest{
			Scheduler: "MinMin", Instance: testInstance(t, 23), Sigma: 0.4, N: 60, Seed: 5})},
	}
	// Reference answers first, from the untouched local twin.
	want := make([][]byte, len(reqs))
	for i, rq := range reqs {
		resp, body := postRaw(t, localTS.URL, rq.path, rq.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("local twin %s: status %d: %s", rq.name, resp.StatusCode, body)
		}
		want[i] = body
	}

	// Fire all requests concurrently with no fleet attached: the sweeps
	// mount and sit pending, guaranteeing the restart below happens
	// mid-request.
	results := make([]<-chan postResult, len(reqs))
	for i, rq := range reqs {
		results[i] = postAsync(dispTS.URL, rq.path, rq.body)
	}
	waitHub(t, hubURL, func(st coord.Status) bool { return st.Sweeps >= 1 }, "mounted sweeps")

	// Coordinator crash: close the hub, rebind the same address with a
	// brand-new (empty) one. The daemons' status polls answer 404 and
	// they must re-register onto the same content-hash ids.
	srv1.Close()
	var ln2 net.Listener
	rebind := time.Now().Add(10 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(rebind) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := &http.Server{Handler: coord.NewHub(hubOpts)}
	go srv2.Serve(ln2)
	defer srv2.Close()
	waitHub(t, hubURL, func(st coord.Status) bool { return st.Sweeps >= 1 }, "re-registered sweeps")

	// Now attach the misbehaving fleet: one worker dies after two cells,
	// one never heartbeats (its leases expire and reassign), one delivers
	// everything twice, one is healthy. Delays shuffle deliveries.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	startWorker(ctx, &wg, hubURL, "w-kill", faultinject.Plan{Seed: 1, MaxDelay: 2 * time.Millisecond, KillAfterCells: 2})
	startWorker(ctx, &wg, hubURL, "w-mute", faultinject.Plan{Seed: 2, MaxDelay: 2 * time.Millisecond, DropHeartbeats: true})
	startWorker(ctx, &wg, hubURL, "w-dup", faultinject.Plan{Seed: 3, MaxDelay: 2 * time.Millisecond, DuplicateCompletions: true})
	startWorker(ctx, &wg, hubURL, "w-ok", faultinject.Plan{})

	for i, rq := range reqs {
		res := <-results[i]
		if res.err != nil {
			t.Fatalf("%s: %v", rq.name, res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", rq.name, res.status, res.body)
		}
		if !bytes.Equal(res.body, want[i]) {
			t.Fatalf("%s diverged under chaos:\nlocal      %s\ndispatched %s", rq.name, want[i], res.body)
		}
	}

	snap := metricsSnapshot(t, dispTS.URL)
	if snap.Dispatch.Dispatched != uint64(len(reqs)) {
		t.Fatalf("dispatched = %d, want %d (degraded: %v)", snap.Dispatch.Dispatched, len(reqs), snap.Dispatch.Degraded)
	}
	if len(snap.Dispatch.Degraded) != 0 {
		t.Fatalf("chaos forced degradation: %v", snap.Dispatch.Degraded)
	}
	if snap.Dispatch.Reregistered < 1 {
		t.Fatal("coordinator restart went unnoticed: no re-registrations")
	}
	waitHub(t, hubURL, func(st coord.Status) bool { return st.Sweeps == 0 }, "0 sweeps after drain")
}

// TestDispatchClientDisconnectReleasesSweep: cancellation propagates
// from the client's socket to the hub — the sweep is released so
// workers' heartbeats answer 404 and the cells are dropped, and the
// daemon's gauges return to idle.
func TestDispatchClientDisconnectReleasesSweep(t *testing.T) {
	hub := startHub(t, coord.HubOptions{})
	disp := New(Options{Coordinator: hub.URL,
		DispatchPoll: 10 * time.Millisecond, DegradeWindow: 30 * time.Second})
	dispTS := httptest.NewServer(disp)
	defer dispTS.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := mustMarshal(t, PortfolioRequest{
		Schedulers: []string{"HEFT", "CPoP", "MinMin"}, K: 2, Iters: 50, Restarts: 1, Seed: 21})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, dispTS.URL+"/v1/portfolio", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// No workers exist, so the sweep sits mounted until the client walks
	// away mid-request.
	waitHub(t, hub.URL, func(st coord.Status) bool { return st.Sweeps == 1 }, "1 mounted sweep")
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request reported success")
	}

	waitHub(t, hub.URL, func(st coord.Status) bool { return st.Sweeps == 0 }, "sweep released after disconnect")
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := metricsSnapshot(t, dispTS.URL)
		if snap.Dispatch.Canceled == 1 && snap.Admission.Inflight == 0 {
			if snap.Dispatch.Dispatched != 0 || len(snap.Dispatch.Degraded) != 0 {
				t.Fatalf("cancellation misclassified: %+v", snap.Dispatch)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never settled after disconnect: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDispatchDegradesToLocalWhenNoWorkers: a capacity drought is never
// a client error — after DegradeWindow with no worker contact the
// daemon computes locally, answers identically, counts the fallback,
// and gives the sweep back.
func TestDispatchDegradesToLocalWhenNoWorkers(t *testing.T) {
	hub := startHub(t, coord.HubOptions{})
	disp := New(Options{Coordinator: hub.URL,
		DispatchPoll: 20 * time.Millisecond, DegradeWindow: 150 * time.Millisecond})
	dispTS := httptest.NewServer(disp)
	defer dispTS.Close()
	local := New(Options{})
	localTS := httptest.NewServer(local)
	defer localTS.Close()

	body := mustMarshal(t, PortfolioRequest{
		Schedulers: []string{"HEFT", "CPoP"}, K: 1, Iters: 30, Restarts: 1, Seed: 2})
	_, want := postRaw(t, localTS.URL, "/v1/portfolio", body)
	resp, got := postRaw(t, dispTS.URL, "/v1/portfolio", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request failed the client: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("degraded response diverged from local:\nlocal    %s\ndegraded %s", want, got)
	}

	snap := metricsSnapshot(t, dispTS.URL)
	if snap.Dispatch.Degraded["no-workers"] != 1 || snap.Dispatch.Dispatched != 0 {
		t.Fatalf("degradation not accounted: %+v", snap.Dispatch)
	}
	waitHub(t, hub.URL, func(st coord.Status) bool { return st.Sweeps == 0 }, "sweep released after degrade")
}

// TestDispatchDegradesToLocalWhenHubUnreachable: same contract when the
// coordinator address answers to nobody at all.
func TestDispatchDegradesToLocalWhenHubUnreachable(t *testing.T) {
	disp := New(Options{Coordinator: "http://127.0.0.1:1",
		DispatchPoll: 10 * time.Millisecond, DegradeWindow: 100 * time.Millisecond})
	dispTS := httptest.NewServer(disp)
	defer dispTS.Close()
	local := New(Options{})
	localTS := httptest.NewServer(local)
	defer localTS.Close()

	body := mustMarshal(t, RobustnessRequest{
		Scheduler: "HEFT", Instance: testInstance(t, 31), Sigma: 0.2, N: 12, Seed: 6})
	_, want := postRaw(t, localTS.URL, "/v1/robustness", body)
	resp, got := postRaw(t, dispTS.URL, "/v1/robustness", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unreachable hub failed the client: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("response diverged:\nlocal %s\ngot   %s", want, got)
	}
	snap := metricsSnapshot(t, dispTS.URL)
	if snap.Dispatch.Degraded["unreachable"] != 1 {
		t.Fatalf("unreachable fallback not accounted: %+v", snap.Dispatch)
	}
}

// TestDaemonBearerAuth: with -token set, every endpoint except /healthz
// refuses tokenless callers, rejections are counted, and the thin
// client's Token field opens the door.
func TestDaemonBearerAuth(t *testing.T) {
	s := New(Options{Token: "hunter2"})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postRaw(t, ts.URL, "/v1/schedule",
		mustMarshal(t, ScheduleRequest{Scheduler: "HEFT", Instance: testInstance(t, 2)}))
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless schedule: status %d: %s", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless metrics: status %d", mresp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz must stay open for probes: status %d", hresp.StatusCode)
	}

	c := &Client{BaseURL: ts.URL, Token: "hunter2"}
	out, err := c.Schedule(context.Background(), ScheduleRequest{Scheduler: "HEFT", Instance: testInstance(t, 2)})
	if err != nil || out.Makespan <= 0 {
		t.Fatalf("authed client: %+v, %v", out, err)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.AuthRejected != 2 {
		t.Fatalf("auth_rejected = %d, want 2", snap.AuthRejected)
	}
}

// TestAdmissionSaturationShedsAndDrains is the sweep-endpoint twin of
// TestAdmissionSaturation: with every compute slot held, local
// portfolio and robustness requests queue, shed with 503 after
// QueueTimeout, and once the slot frees the daemon drains back to a
// zero inflight gauge.
func TestAdmissionSaturationShedsAndDrains(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	portfolio := mustMarshal(t, PortfolioRequest{Schedulers: []string{"HEFT", "CPoP"}, K: 1, Iters: 20, Restarts: 1, Seed: 8})
	robustness := mustMarshal(t, RobustnessRequest{Scheduler: "HEFT", Instance: testInstance(t, 7), Sigma: 0.2, N: 10, Seed: 3})

	s.sem <- struct{}{} // saturate the only compute slot
	shed := []<-chan postResult{
		postAsync(ts.URL, "/v1/portfolio", portfolio),
		postAsync(ts.URL, "/v1/robustness", robustness),
	}
	for i, ch := range shed {
		res := <-ch
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		if res.status != http.StatusServiceUnavailable {
			t.Fatalf("request %d admitted past a full pool: status %d: %s", i, res.status, res.body)
		}
		if !bytes.Contains(res.body, []byte("saturated")) {
			t.Fatalf("request %d 503 body should say why: %s", i, res.body)
		}
	}
	<-s.sem

	for _, rq := range []struct {
		path string
		body []byte
	}{
		{"/v1/portfolio", portfolio}, {"/v1/robustness", robustness},
	} {
		if resp, body := postRaw(t, ts.URL, rq.path, rq.body); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after drain: status %d: %s", rq.path, resp.StatusCode, body)
		}
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.Admission.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", snap.Admission.Rejected)
	}
	if snap.Admission.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d after drain", snap.Admission.Inflight)
	}
}
