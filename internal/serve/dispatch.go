package serve

// The dispatch path: with Options.Coordinator set, portfolio and
// robustness requests are registered as sweeps on a coordinator hub
// (internal/coord.Hub) and computed by whatever `saga worker
// -coordinator <hub> -persist` fleet is attached, instead of pinning a
// local admission slot for the whole run. The daemon then replays the
// fetched cells through the NORMAL local code path (the sweep drivers
// load every cell from a pre-populated checkpoint and compute nothing),
// so a dispatched response is byte-for-byte the local response — the
// dispatch layer can only ever change where cells are computed, never
// what the client reads.
//
// Robustness is graceful degradation: every failure of the dispatch
// side — hub unreachable, no workers heartbeating within the window, a
// poisoned cell, a short fetch — falls back to local in-process
// execution. Degradation is logged and counted in /metrics, and is
// never an error to the client. The one non-local failure that
// propagates is the client's own disappearance: cancellation flows from
// the request context to the hub (sweep released → workers' heartbeats
// answer 404 → leases dropped) and the handler unwinds.
//
// Coordinator crashes are survived by identity, not state: the sweep id
// is the content hash of its fingerprint, so when a status poll answers
// 404 (hub restarted, empty) the daemon re-registers and lands on the
// same id; workers re-deliver into the fresh incarnation and StoreDedup
// makes any replayed completion a no-op.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"saga/internal/coord"
	"saga/internal/experiments"
	"saga/internal/httpx"
)

// degradeError explains why a dispatched request fell back to local
// execution. It is consumed by the handlers (logged + counted), never
// surfaced to the client.
type degradeError struct {
	reason string // metrics key: "no-workers", "unreachable", "poisoned", "short", "refused"
	err    error
}

func (e *degradeError) Error() string {
	if e.err != nil {
		return fmt.Sprintf("dispatch degraded (%s): %v", e.reason, e.err)
	}
	return fmt.Sprintf("dispatch degraded (%s)", e.reason)
}

func (e *degradeError) Unwrap() error { return e.err }

// dispatcher talks to one coordinator hub on behalf of the daemon.
type dispatcher struct {
	base    string
	client  *http.Client
	retry   httpx.RetryPolicy
	window  time.Duration // no-worker / unreachable degradation budget
	poll    time.Duration // status poll cadence
	metrics *Metrics
	logf    func(format string, args ...any)
}

func newDispatcher(opts Options, metrics *Metrics, logf func(string, ...any)) *dispatcher {
	return &dispatcher{
		base:    opts.Coordinator,
		client:  httpx.NewBearerClient(nil, opts.CoordinatorToken),
		retry:   httpx.RetryPolicy{Attempts: 3, PerTry: 2 * time.Second, Base: 100 * time.Millisecond, Cap: time.Second},
		window:  opts.DegradeWindow,
		poll:    opts.DispatchPoll,
		metrics: metrics,
		logf:    logf,
	}
}

// run registers the sweep and shepherds it to completion, returning the
// committed cells. Errors are either a *degradeError (fall back to
// local — the caller must still answer the client correctly) or the
// request context's error (the client is gone; stop).
func (d *dispatcher) run(ctx context.Context, name string, params experiments.SweepParams) (map[int]json.RawMessage, error) {
	reg, err := d.register(ctx, name, params)
	if err != nil {
		return nil, err
	}
	d.logf("serve: dispatch: sweep %s (%s, %d cells) registered on %s", reg.ID, name, reg.Cells, d.base)

	start := time.Now()
	lastActivity := start // last sign of worker life or progress
	lastContact := start  // last successful hub answer
	lastCommitted := -1
	for {
		select {
		case <-ctx.Done():
			// The client disconnected (or its deadline passed): release the
			// sweep so the hub reaps the leases and workers drop the cells.
			d.release(reg.ID)
			d.metrics.dispatchCanceled()
			d.logf("serve: dispatch: sweep %s canceled by client; released", reg.ID)
			return nil, ctx.Err()
		case <-time.After(d.poll):
		}

		var st coord.Status
		err := d.getJSON(ctx, d.base+"/sweeps/"+reg.ID+"/status", &st)
		now := time.Now()
		switch {
		case err == nil:
			lastContact = now
		case isStatusCode(err, http.StatusNotFound):
			// The hub restarted and lost the sweep. Same params → same
			// content-hash id: re-register and keep going. Workers
			// re-deliver; StoreDedup absorbs any replay.
			if _, rerr := d.register(ctx, name, params); rerr != nil {
				return nil, rerr
			}
			d.metrics.dispatchReregistered()
			d.logf("serve: dispatch: sweep %s vanished (coordinator restart?); re-registered", reg.ID)
			lastContact = now
			lastActivity = now
			lastCommitted = -1
			continue
		default:
			if ctx.Err() != nil {
				continue // let the ctx.Done branch clean up
			}
			if now.Sub(lastContact) > d.window {
				d.release(reg.ID)
				return nil, &degradeError{reason: "unreachable", err: err}
			}
			continue
		}

		if st.Done {
			if st.Poisoned > 0 {
				// Some cell fails deterministically. Local execution
				// reproduces that failure faithfully — the client gets the
				// same answer a local-only daemon would give.
				d.release(reg.ID)
				return nil, &degradeError{reason: "poisoned", err: fmt.Errorf("%d poisoned cells", st.Poisoned)}
			}
			var cells CellsResponse
			if err := d.retry.Do(ctx, func(ctx context.Context) error {
				return httpx.GetJSON(ctx, d.client, d.base+"/sweeps/"+reg.ID+"/cells", &cells)
			}); err != nil {
				if isStatusCode(err, http.StatusNotFound) {
					continue // re-registration path will pick it up next poll
				}
				d.release(reg.ID)
				return nil, &degradeError{reason: "unreachable", err: err}
			}
			d.release(reg.ID)
			if len(cells.Cells) != reg.Cells {
				return nil, &degradeError{reason: "short",
					err: fmt.Errorf("fetched %d of %d cells", len(cells.Cells), reg.Cells)}
			}
			return cells.Cells, nil
		}

		if st.Committed != lastCommitted {
			lastCommitted = st.Committed
			lastActivity = now
		} else if st.ActiveWorkers > 0 {
			lastActivity = now
		}
		if now.Sub(lastActivity) > d.window {
			// Nobody is working this sweep. Give the cells back and run
			// locally — capacity drought must never become a client error.
			d.release(reg.ID)
			return nil, &degradeError{reason: "no-workers"}
		}
	}
}

// register mounts (or re-joins) the sweep on the hub.
func (d *dispatcher) register(ctx context.Context, name string, params experiments.SweepParams) (coord.RegisterResponse, error) {
	var reg coord.RegisterResponse
	err := d.retry.Do(ctx, func(ctx context.Context) error {
		return httpx.PostJSON(ctx, d.client, d.base+"/sweeps",
			coord.RegisterRequest{Name: name, Params: params}, &reg)
	})
	switch {
	case err == nil:
		return reg, nil
	case ctx.Err() != nil:
		return reg, ctx.Err()
	case httpx.IsConnErr(err):
		return reg, &degradeError{reason: "unreachable", err: err}
	default:
		// The hub answered and said no (auth, validation skew…). Local
		// execution still owes the client its answer.
		return reg, &degradeError{reason: "refused", err: err}
	}
}

// release drops the daemon's reference to the sweep, best-effort: the
// client context may already be dead, and an unreachable hub GCs the
// sweep by TTL anyway.
func (d *dispatcher) release(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, d.base+"/sweeps/"+id, nil)
	if err != nil {
		return
	}
	var out map[string]bool
	_ = httpx.DoJSON(d.client, req, &out)
}

// getJSON is a single status-poll attempt with a per-hop timeout (the
// poll loop is its own retry).
func (d *dispatcher) getJSON(ctx context.Context, url string, out any) error {
	perTry, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	return httpx.GetJSON(perTry, d.client, url, out)
}

// isStatusCode reports whether err is an HTTP answer with the given
// status code.
func isStatusCode(err error, code int) bool {
	var se *httpx.StatusError
	return errors.As(err, &se) && se.Code == code
}

// CellsResponse aliases the hub's cell-fetch payload.
type CellsResponse = coord.CellsResponse

// premadeStore adapts fetched cells to runner.Checkpoint: the sweep
// drivers load every cell and compute nothing, which is exactly how a
// resumed-from-complete-store run works — the assembly of the response
// is the local code path, so the bytes are the local bytes.
type premadeStore struct {
	cells map[int]json.RawMessage
}

func (p *premadeStore) Load() (map[int]json.RawMessage, error) { return p.cells, nil }
func (p *premadeStore) Store(int, json.RawMessage) error       { return nil }
func (p *premadeStore) Flush() error                           { return nil }
