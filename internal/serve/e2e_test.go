package serve

// TestServeSmokeE2E is the process-level drill for the daemon: build
// the real saga binary, boot `saga serve` on a free port, fire
// concurrent requests of all three kinds (plus one malformed, which
// must be refused without disturbing the rest), assert every response
// byte-identical to direct in-process library calls, then deliver
// SIGTERM mid-request and verify graceful shutdown: the in-flight
// request drains to a full 200, new connections are refused, and the
// process exits 0. Forks processes, so it only runs when SERVE_SMOKE=1
// (wired up as `make serve-smoke`, part of `make verify`).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"saga/internal/core"
	"saga/internal/experiments"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/serialize"
)

func TestServeSmokeE2E(t *testing.T) {
	if os.Getenv("SERVE_SMOKE") != "1" {
		t.Skip("set SERVE_SMOKE=1 to run the process-level daemon smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "saga")
	build := exec.Command("go", "build", "-o", bin, "saga/cmd/saga")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build saga: %v\n%s", err, out)
	}

	proc := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-max-concurrent", "4")
	stdout, err := proc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	proc.Stderr = os.Stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()

	// The daemon prints its bound address.
	urlRe := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	var baseURL string
	var outBuf bytes.Buffer
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		outBuf.WriteString(sc.Text() + "\n")
		if m := urlRe.FindStringSubmatch(sc.Text()); m != nil {
			baseURL = m[1]
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("daemon never printed its address (scan error: %v)", sc.Err())
	}
	var outMu sync.Mutex
	go func() {
		for sc.Scan() {
			outMu.Lock()
			outBuf.WriteString(sc.Text() + "\n")
			outMu.Unlock()
		}
	}()

	// Phase 1: concurrent mixed traffic, every response checked against
	// the direct library path byte for byte.
	do := func(path string, reqBody []byte) (int, []byte, error) {
		resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return 0, nil, err
		}
		return resp.StatusCode, buf.Bytes(), nil
	}
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	encode := func(v any) []byte { return append(marshal(v), '\n') }

	type call struct {
		name       string
		path       string
		body       []byte
		wantStatus int
		want       []byte // nil: status check only
	}
	var calls []call

	// Three schedule requests over distinct instances.
	for seed := uint64(1); seed <= 3; seed++ {
		instRaw := testInstance(t, seed)
		inst, err := serialize.UnmarshalInstance(instRaw)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := scheduler.New("HEFT")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sched.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		rawSched, err := serialize.MarshalSchedule(direct)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call{
			name:       fmt.Sprintf("schedule-%d", seed),
			path:       "/v1/schedule",
			body:       marshal(ScheduleRequest{Scheduler: "HEFT", Instance: instRaw}),
			wantStatus: 200,
			want: encode(ScheduleResponse{
				Scheduler: sched.Name(),
				Makespan:  direct.Makespan(),
				Schedule:  rawSched,
			}),
		})
	}

	// One portfolio request.
	{
		names := []string{"HEFT", "CPoP", "MinMin"}
		var scheds []scheduler.Scheduler
		for _, n := range names {
			sc, err := scheduler.New(n)
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, sc)
		}
		opts := core.DefaultOptions()
		opts.MaxIters = 15
		opts.Restarts = 1
		opts.Seed = 5
		res, err := experiments.PairwisePISARun(scheds, experiments.PairwiseOptions{Anneal: opts},
			runner.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		p, err := experiments.SelectPortfolioParallel(res.Schedulers, res.Ratios, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call{
			name:       "portfolio",
			path:       "/v1/portfolio",
			body:       marshal(PortfolioRequest{Schedulers: names, K: 2, Iters: 15, Restarts: 1, Seed: 5}),
			wantStatus: 200,
			want: encode(PortfolioResponse{
				Schedulers: res.Schedulers,
				Ratios:     res.Ratios,
				Members:    p.Members,
				WorstRatio: p.WorstRatio,
			}),
		})
	}

	// One robustness request.
	{
		instRaw := testInstance(t, 4)
		inst, err := serialize.UnmarshalInstance(instRaw)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := scheduler.New("CPoP")
		if err != nil {
			t.Fatal(err)
		}
		res, err := experiments.RobustnessRun(inst, sched, 0.2, 30, 3, runner.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call{
			name:       "robustness",
			path:       "/v1/robustness",
			body:       marshal(RobustnessRequest{Scheduler: "CPoP", Instance: instRaw, Sigma: 0.2, N: 30, Seed: 3}),
			wantStatus: 200,
			want: encode(RobustnessResponse{
				Scheduler: res.Scheduler,
				Nominal:   res.Nominal,
				Static:    res.Static,
				Adaptive:  res.Adaptive,
			}),
		})
	}

	// And one malformed request riding along: refused with 400, nothing
	// else disturbed.
	calls = append(calls, call{
		name:       "malformed",
		path:       "/v1/schedule",
		body:       []byte(`{"scheduler": "HEFT", "instance": [broken`),
		wantStatus: 400,
	})

	var wg sync.WaitGroup
	for _, c := range calls {
		wg.Add(1)
		go func(c call) {
			defer wg.Done()
			status, got, err := do(c.path, c.body)
			if err != nil {
				t.Errorf("%s: %v", c.name, err)
				return
			}
			if status != c.wantStatus {
				t.Errorf("%s: status %d, want %d: %s", c.name, status, c.wantStatus, got)
				return
			}
			if c.want != nil && !bytes.Equal(c.want, got) {
				t.Errorf("%s: daemon bytes diverged from direct library call\nwant: %s\ngot:  %s", c.name, c.want, got)
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("mixed-traffic phase failed; skipping shutdown phase")
	}

	// Phase 2: graceful shutdown. Put a slow robustness request in
	// flight, SIGTERM the daemon, and demand three things: the in-flight
	// request drains to a full correct 200, new connections are refused,
	// and the process exits 0.
	slowBody := marshal(RobustnessRequest{Scheduler: "HEFT", Instance: testInstance(t, 4), Sigma: 0.2, N: 20000, Seed: 9})
	type result struct {
		status int
		body   []byte
		err    error
	}
	slowc := make(chan result, 1)
	go func() {
		status, body, err := do("/v1/robustness", slowBody)
		slowc <- result{status, body, err}
	}()

	// Wait until the daemon reports the request in flight.
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/metrics")
		inflight := 0
		if err == nil {
			var snap MetricsSnapshot
			if json.NewDecoder(resp.Body).Decode(&snap) == nil {
				inflight = snap.Admission.Inflight
			}
			resp.Body.Close()
		}
		if inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never showed up in /metrics inflight")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// New connections must start failing while the in-flight request
	// drains (Shutdown closes the listener first).
	refusedBy := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			break // refused: the door is closed
		}
		resp.Body.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("daemon still accepting new connections after SIGTERM")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight request still completes, correctly.
	slow := <-slowc
	if slow.err != nil {
		t.Fatalf("in-flight request was dropped during drain: %v", slow.err)
	}
	if slow.status != 200 {
		t.Fatalf("in-flight request status %d during drain: %s", slow.status, slow.body)
	}
	var rr RobustnessResponse
	if err := json.Unmarshal(slow.body, &rr); err != nil || rr.Static.N != 20000 {
		t.Fatalf("drained response implausible (err %v): %s", err, slow.body)
	}

	if err := proc.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after graceful drain: %v", err)
	}
	outMu.Lock()
	defer outMu.Unlock()
	if !bytes.Contains(outBuf.Bytes(), []byte("drained, exiting")) {
		t.Fatalf("daemon never logged the drain:\n%s", outBuf.String())
	}
}
