package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"saga/internal/graph"
	"saga/internal/scheduler"
)

// cacheEntry is one cached instance plus the scratches whose tables are
// currently built for it. The instance is shared by every request that
// hits the entry and is strictly read-only from then on — scheduling
// never mutates an instance, and the robustness driver jitters copies —
// so concurrent requests may hold the same pointer. The scratch list is
// the part that makes a cache hit skip graph.Tables builds: a scratch
// parked here was released by a request that scheduled this exact
// instance pointer, so Scratch.Tables recognizes it and serves the
// prebuilt tables (and with them every memoized rank vector).
type cacheEntry struct {
	key       string
	inst      *graph.Instance
	scratches []*scheduler.Scratch
	lastUsed  uint64
}

// instanceCache maps the content hash of a submitted instance to its
// parsed, validated form. Keys hash the compacted request bytes (plus
// the import knobs for WfCommons submissions), so repeated submissions
// of the same payload — the "millions of users resubmitting the same
// workflow" case the daemon exists for — parse and build tables once.
// Eviction is least-recently-used over a fixed entry budget.
type instanceCache struct {
	mu      sync.Mutex
	cap     int
	maxPark int // scratches parked per entry
	clock   uint64
	entries map[string]*cacheEntry

	hits, misses, evictions, tableReuses uint64
}

func newInstanceCache(capEntries, maxPark int) *instanceCache {
	if capEntries < 1 {
		capEntries = 1
	}
	if maxPark < 1 {
		maxPark = 1
	}
	return &instanceCache{cap: capEntries, maxPark: maxPark, entries: map[string]*cacheEntry{}}
}

// hashKey derives the cache key for a request payload.
func hashKey(parts ...[]byte) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lookup returns the cached entry for key, or nil. On a hit it also
// leases a parked scratch when one is available; scr is non-nil only on
// a hit, and its tables are already built for entry.inst.
func (c *instanceCache) lookup(key string) (entry *cacheEntry, scr *scheduler.Scratch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, nil
	}
	c.hits++
	c.clock++
	e.lastUsed = c.clock
	if n := len(e.scratches); n > 0 {
		scr = e.scratches[n-1]
		e.scratches = e.scratches[:n-1]
		c.tableReuses++
	}
	return e, scr
}

// insert adds inst under key, evicting the least-recently-used entry
// when the cache is full. If another request raced the parse and
// inserted first, the winner's entry is returned so both requests share
// one instance pointer.
func (c *instanceCache) insert(key string, inst *graph.Instance) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.clock++
		e.lastUsed = c.clock
		return e
	}
	for len(c.entries) >= c.cap {
		var victim *cacheEntry
		for _, e := range c.entries {
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		delete(c.entries, victim.key)
		c.evictions++
		// The victim's parked scratches are simply dropped from the entry;
		// they were only a table-reuse fast path, and any still-leased
		// scratch returns through release, which tolerates a gone entry.
	}
	c.clock++
	e := &cacheEntry{key: key, inst: inst, lastUsed: c.clock}
	c.entries[key] = e
	return e
}

// release parks a scratch whose tables are built for entry.inst, so the
// next hit on the entry schedules without a table rebuild. When the
// entry was evicted while the request ran, or the park budget is full,
// ok is false and the caller sends the scratch back to the global pool.
func (c *instanceCache) release(entry *cacheEntry, scr *scheduler.Scratch) (ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[entry.key] != entry || len(entry.scratches) >= c.maxPark {
		return false
	}
	entry.scratches = append(entry.scratches, scr)
	return true
}

func (c *instanceCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     len(c.entries),
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		TableReuses: c.tableReuses,
	}
}
