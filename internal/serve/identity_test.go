package serve

// The byte-identity suite: for every request kind the daemon serves,
// the HTTP response body must equal — byte for byte — the encoding of
// the result a direct in-process library call produces on the same
// input. This is the contract that lets `saga schedule -server` print
// exactly what `saga schedule` prints, and it holds by construction:
// one response-encoding path (httpx.WriteJSON) and computation that is
// already proven bit-identical across scratch reuse and worker counts
// (ARCHITECTURE invariants 6 and 8).

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"saga/internal/core"
	"saga/internal/experiments"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/serialize"
)

// encodeLikeDaemon mirrors httpx.WriteJSON: json.Marshal plus the
// trailing newline json.Encoder emits.
func encodeLikeDaemon(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestScheduleByteIdentity(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, name := range []string{"HEFT", "CPoP", "MinMin", "ETF"} {
		for seed := uint64(1); seed <= 3; seed++ {
			instRaw := testInstance(t, seed)

			// Direct library path.
			inst, err := serialize.UnmarshalInstance(instRaw)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := scheduler.New(name)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := sched.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			rawSched, err := serialize.MarshalSchedule(direct)
			if err != nil {
				t.Fatal(err)
			}
			want := encodeLikeDaemon(t, ScheduleResponse{
				Scheduler: sched.Name(),
				Makespan:  direct.Makespan(),
				Schedule:  rawSched,
			})

			// Daemon path, twice: cold (parse + table build) and warm
			// (cache hit, parked scratch) must both match.
			body := mustMarshal(t, ScheduleRequest{Scheduler: name, Instance: instRaw})
			for pass, label := range []string{"cold", "warm"} {
				resp, got := postRaw(t, ts.URL, "/v1/schedule", body)
				if resp.StatusCode != 200 {
					t.Fatalf("%s seed %d %s: status %d: %s", name, seed, label, resp.StatusCode, got)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s seed %d %s pass %d: daemon response diverged from direct call\nwant: %s\ngot:  %s",
						name, seed, label, pass, want, got)
				}
			}
		}
	}
}

func TestPortfolioByteIdentity(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	names := []string{"HEFT", "CPoP", "MinMin"}
	req := PortfolioRequest{Schedulers: names, K: 2, Iters: 20, Restarts: 1, Seed: 42}

	// Direct library path, deliberately run with a different worker
	// count than the daemon's: invariant 6 makes the grid identical, so
	// identity here also re-proves worker-count independence.
	var scheds []scheduler.Scheduler
	for _, n := range names {
		sc, err := scheduler.New(n)
		if err != nil {
			t.Fatal(err)
		}
		scheds = append(scheds, sc)
	}
	opts := core.DefaultOptions()
	opts.MaxIters = req.Iters
	opts.Restarts = req.Restarts
	opts.Seed = req.Seed
	res, err := experiments.PairwisePISARun(scheds, experiments.PairwiseOptions{Anneal: opts},
		runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := experiments.SelectPortfolioParallel(res.Schedulers, res.Ratios, req.K, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeLikeDaemon(t, PortfolioResponse{
		Schedulers: res.Schedulers,
		Ratios:     res.Ratios,
		Members:    p.Members,
		WorstRatio: p.WorstRatio,
	})

	resp, got := postRaw(t, ts.URL, "/v1/portfolio", mustMarshal(t, req))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("portfolio response diverged from direct call\nwant: %s\ngot:  %s", want, got)
	}
}

func TestRobustnessByteIdentity(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	instRaw := testInstance(t, 9)
	req := RobustnessRequest{Scheduler: "HEFT", Instance: instRaw, Sigma: 0.3, N: 25, Seed: 7}

	inst, err := serialize.UnmarshalInstance(instRaw)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.New(req.Scheduler)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RobustnessRun(inst, sched, req.Sigma, req.N, req.Seed,
		runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeLikeDaemon(t, RobustnessResponse{
		Scheduler: res.Scheduler,
		Nominal:   res.Nominal,
		Static:    res.Static,
		Adaptive:  res.Adaptive,
	})

	// Cold and warm: the robustness path shares the instance cache with
	// the schedule path, so the second submission replays off the cached
	// instance pointer and must still match exactly.
	for _, label := range []string{"cold", "warm"} {
		resp, got := postRaw(t, ts.URL, "/v1/robustness", mustMarshal(t, req))
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", label, resp.StatusCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: robustness response diverged from direct call\nwant: %s\ngot:  %s", label, want, got)
		}
	}
}
