package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"saga/internal/coord"
)

// TestChaosSmokeE2E is the process-level chaos drill for the dispatch
// layer: a real `saga serve -coordinator` daemon farming requests
// through a real `saga coordinate -hub` to three real `saga worker
// -persist` processes — with the hub SIGKILLed and restarted on the
// same port mid-request, one worker SIGKILLed mid-sweep, and bearer
// tokens on every coordinator hop. Every response must be
// byte-identical to in-process local execution, nothing may degrade,
// and a SIGTERM must drain each process to a clean exit 0. It builds
// the saga binary and forks processes, so it only runs when
// CHAOS_SMOKE=1 (wired up as `make chaos-smoke`, part of
// `make verify`).
func TestChaosSmokeE2E(t *testing.T) {
	if os.Getenv("CHAOS_SMOKE") != "1" {
		t.Skip("set CHAOS_SMOKE=1 to run the process-level dispatch chaos drill")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "saga")
	build := exec.Command("go", "build", "-o", bin, "saga/cmd/saga")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build saga: %v\n%s", err, out)
	}
	const token = "chaos-secret"
	urlRe := regexp.MustCompile(`on (http://[0-9.:]+)`)

	// start launches a process and scrapes the "… on http://host:port"
	// line from its stdout, draining the rest in the background.
	start := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		var url string
		for sc.Scan() {
			if m := urlRe.FindStringSubmatch(sc.Text()); m != nil {
				url = m[1]
				break
			}
		}
		if url == "" {
			cmd.Process.Kill()
			t.Fatalf("%v never printed its address (scan error: %v)", args, sc.Err())
		}
		go func() {
			for sc.Scan() {
			}
		}()
		return cmd, url
	}

	hubArgs := []string{"coordinate", "-hub", "-token", token, "-lease", "4", "-lease-ttl", "1s"}
	hub1, hubURL := start(append(hubArgs, "-addr", "127.0.0.1:0")...)
	defer hub1.Process.Kill()
	hubAddr := strings.TrimPrefix(hubURL, "http://")

	daemon, daemonURL := start("serve", "-addr", "127.0.0.1:0",
		"-coordinator", hubURL, "-coordinator-token", token, "-degrade-window", "60s")
	defer daemon.Process.Kill()

	// In-process local twin: the byte-identity reference.
	local := httptest.NewServer(New(Options{}))
	defer local.Close()

	reqs := []struct {
		name, path string
		body       []byte
	}{
		{"portfolio-a", "/v1/portfolio", mustMarshal(t, PortfolioRequest{
			Schedulers: []string{"HEFT", "CPoP", "MinMin"}, K: 2, Iters: 120, Restarts: 1, Seed: 41})},
		{"portfolio-b", "/v1/portfolio", mustMarshal(t, PortfolioRequest{
			Schedulers: []string{"HEFT", "CPoP", "ETF"}, K: 2, Iters: 120, Restarts: 1, Seed: 43})},
		{"robustness-a", "/v1/robustness", mustMarshal(t, RobustnessRequest{
			Scheduler: "HEFT", Instance: testInstance(t, 61), Sigma: 0.3, N: 400, Seed: 11})},
		{"robustness-b", "/v1/robustness", mustMarshal(t, RobustnessRequest{
			Scheduler: "CPoP", Instance: testInstance(t, 67), Sigma: 0.2, N: 400, Seed: 13})},
	}
	want := make([][]byte, len(reqs))
	for i, rq := range reqs {
		resp, body := postRaw(t, local.URL, rq.path, rq.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("local twin %s: status %d: %s", rq.name, resp.StatusCode, body)
		}
		want[i] = body
	}

	// Fire every request before any worker exists: the sweeps mount on
	// the hub and sit pending, so the restart below is guaranteed to
	// land mid-request.
	results := make([]<-chan postResult, len(reqs))
	for i, rq := range reqs {
		results[i] = postAsync(daemonURL, rq.path, rq.body)
	}
	hubStatusAuthed := func() coord.Status {
		var st coord.Status
		req, err := http.NewRequest(http.MethodGet, "http://"+hubAddr+"/status", nil)
		if err != nil {
			return st
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return st
		}
		defer resp.Body.Close()
		json.NewDecoder(resp.Body).Decode(&st)
		return st
	}
	deadline := time.Now().Add(time.Minute)
	for hubStatusAuthed().Sweeps < 1 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never registered its sweeps on the hub")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Coordinator crash: SIGKILL the hub and restart it on the same
	// port, state gone. The daemon's status polls answer 404 and it
	// re-registers onto the same content-hash sweep ids.
	hub1.Process.Kill()
	hub1.Wait()
	t.Log("SIGKILLed the hub mid-request; restarting on", hubAddr)
	var hub2 *exec.Cmd
	restart := time.Now().Add(30 * time.Second)
	for {
		cmd := exec.Command(bin, append(hubArgs, "-addr", hubAddr)...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		if cmd.ProcessState == nil && hubStatusAuthed().Name == "hub" {
			hub2 = cmd
			break
		}
		cmd.Process.Kill()
		cmd.Wait()
		if time.Now().After(restart) {
			t.Fatalf("could not restart the hub on %s", hubAddr)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer hub2.Process.Kill()
	deadline = time.Now().Add(time.Minute)
	for hubStatusAuthed().Sweeps < 1 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never re-registered after the hub restart")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Now attach the fleet and let it chew; once the grid is moving,
	// SIGKILL one worker outright — its leases expire and the survivors
	// reclaim the cells.
	workers := make([]*exec.Cmd, 3)
	for i := range workers {
		workers[i] = exec.Command(bin, "worker", "-coordinator", "http://"+hubAddr,
			"-token", token, "-persist", "-name", fmt.Sprintf("chaos-w%d", i))
		workers[i].Stdout = os.Stderr
		workers[i].Stderr = os.Stderr
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer workers[i].Process.Kill()
	}
	deadline = time.Now().Add(2 * time.Minute)
	for {
		st := hubStatusAuthed()
		if st.Committed >= 8 || st.Sweeps == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never made progress: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	workers[0].Process.Kill()
	workers[0].Wait()
	t.Log("SIGKILLed worker chaos-w0 mid-sweep")

	for i, rq := range reqs {
		res := <-results[i]
		if res.err != nil {
			t.Fatalf("%s: %v", rq.name, res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", rq.name, res.status, res.body)
		}
		if !bytes.Equal(res.body, want[i]) {
			t.Fatalf("%s diverged from local under chaos (%d vs %d bytes)", rq.name, len(res.body), len(want[i]))
		}
	}
	snap := metricsSnapshot(t, daemonURL)
	if snap.Dispatch.Dispatched != uint64(len(reqs)) || len(snap.Dispatch.Degraded) != 0 {
		t.Fatalf("chaos broke the dispatch path: %+v", snap.Dispatch)
	}
	if snap.Dispatch.Reregistered < 1 {
		t.Fatal("hub restart went unnoticed: no re-registrations")
	}

	// Graceful drains: SIGTERM must walk every process out with exit 0.
	drain := func(name string, cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM %s: %v", name, err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited dirty after SIGTERM: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
	drain("daemon", daemon)
	for i, w := range workers[1:] {
		drain(fmt.Sprintf("worker-%d", i+1), w)
	}
	drain("hub", hub2)
}
