package serve

import (
	"context"
	"encoding/json"
	"net/http"

	"saga/internal/httpx"
	"saga/internal/stats"
)

// ScheduleRequest asks the daemon to schedule one instance. The
// instance arrives either in the repo's serialize format (Instance) or
// as a WfCommons wfformat document (WfC) with the same import knobs as
// `saga convert`: a uniform link strength, an optional homogeneous CCR
// override, and a fallback network size when the trace lists no
// machines. Exactly one of Instance and WfC must be set.
type ScheduleRequest struct {
	Scheduler string          `json:"scheduler"`
	Instance  json.RawMessage `json:"instance,omitempty"`
	WfC       json.RawMessage `json:"wfc,omitempty"`
	Link      float64         `json:"link,omitempty"`
	CCR       float64         `json:"ccr,omitempty"`
	Nodes     int             `json:"nodes,omitempty"`
}

// ScheduleResponse carries the schedule in the serialize format, so a
// thin client renders exactly what a local `saga schedule` would. The
// body is byte-identical to one built from a direct in-process
// Schedule() call on the same input — the identity suite enforces it.
type ScheduleResponse struct {
	Scheduler string          `json:"scheduler"`
	Makespan  float64         `json:"makespan"`
	Schedule  json.RawMessage `json:"schedule"`
}

// PortfolioRequest asks for a pairwise PISA grid over the named
// schedulers and the best k-subset portfolio drawn from it. Iters,
// Restarts and Seed parameterize the per-pair annealing exactly as
// `saga portfolio` does; results are independent of how many workers
// the daemon runs the grid with (ARCHITECTURE invariant 6).
type PortfolioRequest struct {
	Schedulers []string `json:"schedulers"`
	K          int      `json:"k"`
	Iters      int      `json:"iters,omitempty"`
	Restarts   int      `json:"restarts,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
}

// PortfolioResponse is the grid plus the selected portfolio. Ratios is
// row-major with base schedulers as rows and analyzed schedulers as
// columns; unknown cells (the diagonal) are -1, matching
// experiments.PairwiseResult.
type PortfolioResponse struct {
	Schedulers []string    `json:"schedulers"`
	Ratios     [][]float64 `json:"ratios"`
	Members    []string    `json:"members"`
	WorstRatio float64     `json:"worst_ratio"`
}

// RobustnessRequest asks for a PISA robustness report: n jittered
// replays of the scheduler's committed schedule versus clairvoyant
// re-planning, with relative cost jitter sigma. The instance arrives
// like ScheduleRequest's.
type RobustnessRequest struct {
	Scheduler string          `json:"scheduler"`
	Instance  json.RawMessage `json:"instance,omitempty"`
	WfC       json.RawMessage `json:"wfc,omitempty"`
	Link      float64         `json:"link,omitempty"`
	CCR       float64         `json:"ccr,omitempty"`
	Nodes     int             `json:"nodes,omitempty"`
	Sigma     float64         `json:"sigma,omitempty"`
	N         int             `json:"n,omitempty"`
	Seed      uint64          `json:"seed,omitempty"`
}

// RobustnessResponse mirrors experiments.RobustnessResult.
type RobustnessResponse struct {
	Scheduler string        `json:"scheduler"`
	Nominal   float64       `json:"nominal"`
	Static    stats.Summary `json:"static"`
	Adaptive  stats.Summary `json:"adaptive"`
}

// Client is the thin client the CLI subcommands (and the e2e/load
// harnesses) speak to a running daemon with. The zero HTTPClient means
// http.DefaultClient; Token, when set, is presented as a bearer token
// on every call (the daemon's -token).
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	Token      string
}

func (c *Client) client() *http.Client {
	return httpx.NewBearerClient(c.HTTPClient, c.Token)
}

// Schedule submits a ScheduleRequest.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var resp ScheduleResponse
	if err := httpx.PostJSON(ctx, c.client(), c.BaseURL+"/v1/schedule", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Portfolio submits a PortfolioRequest.
func (c *Client) Portfolio(ctx context.Context, req PortfolioRequest) (*PortfolioResponse, error) {
	var resp PortfolioResponse
	if err := httpx.PostJSON(ctx, c.client(), c.BaseURL+"/v1/portfolio", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Robustness submits a RobustnessRequest.
func (c *Client) Robustness(ctx context.Context, req RobustnessRequest) (*RobustnessResponse, error) {
	var resp RobustnessResponse
	if err := httpx.PostJSON(ctx, c.client(), c.BaseURL+"/v1/robustness", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the daemon's /metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var snap MetricsSnapshot
	if err := httpx.GetJSON(ctx, c.client(), c.BaseURL+"/metrics", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
