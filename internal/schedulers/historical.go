package schedulers

import (
	"math"
	"slices"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("LMT", func() scheduler.Scheduler { return LMT{} })
	scheduler.Register("ERT", func() scheduler.Scheduler { return ERT{} })
	scheduler.Register("MH", func() scheduler.Scheduler { return MH{} })
}

// The three schedulers in this file are the historical baselines the
// HEFT/CPoP and FCP/FLB papers compared against, referenced in the PISA
// paper's related-work discussion (Section IV-A): Levelized Min Time,
// ERT (Lee, Hwang, Chow & Anger), and the Mapping Heuristic of El-Rewini
// & Lewis ("similar to HEFT without insertion"). They are extensions
// beyond Table I — registered and fully tested, but excluded from the
// paper-reproducing experiment rosters.

// LMT is Levelized Min Time: the task graph is partitioned into
// precedence levels (longest path from an entry task, in hops); levels
// are scheduled in order, and within a level — whose tasks are mutually
// independent — tasks are taken largest-average-execution-first and each
// is placed on the node minimizing its completion time. The original
// publication is lost to time (the PISA paper notes the same), so this
// follows the description in the HEFT paper's evaluation section.
type LMT struct{}

// Name implements scheduler.Scheduler.
func (LMT) Name() string { return "LMT" }

// lmtScratch is LMT's per-worker extension state: the level index and
// level buckets.
type lmtScratch struct {
	level   []int
	byLevel [][]int
}

// Schedule implements scheduler.Scheduler.
func (l LMT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(l, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (LMT) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	g := inst.Graph
	tab := scr.Tables(inst)
	if tab.TopoErr != nil {
		return tab.TopoErr
	}
	ls := scr.Ext("LMT", func() any { return &lmtScratch{} }).(*lmtScratch)
	if cap(ls.level) < g.NumTasks() {
		ls.level = make([]int, g.NumTasks())
	}
	ls.level = ls.level[:g.NumTasks()]
	for t := range ls.level {
		ls.level[t] = 0
	}
	maxLevel := 0
	for _, t := range tab.Topo {
		for _, d := range g.Pred[t] {
			if ls.level[d.To]+1 > ls.level[t] {
				ls.level[t] = ls.level[d.To] + 1
			}
		}
		if ls.level[t] > maxLevel {
			maxLevel = ls.level[t]
		}
	}
	if cap(ls.byLevel) < maxLevel+1 {
		grown := make([][]int, maxLevel+1)
		copy(grown, ls.byLevel[:cap(ls.byLevel)])
		ls.byLevel = grown
	} else {
		ls.byLevel = ls.byLevel[:maxLevel+1]
	}
	for l := range ls.byLevel {
		ls.byLevel[l] = ls.byLevel[l][:0]
	}
	for t := 0; t < g.NumTasks(); t++ {
		ls.byLevel[ls.level[t]] = append(ls.byLevel[ls.level[t]], t)
	}

	b := scr.Builder(inst)
	for _, tasks := range ls.byLevel {
		// (cost desc, index asc) is a total order over the distinct task
		// indices, so the typed unstable sort is deterministic.
		slices.SortFunc(tasks, func(x, y int) int {
			cx, cy := g.Tasks[x].Cost, g.Tasks[y].Cost
			switch {
			case cx > cy:
				return -1
			case cx < cy:
				return 1
			}
			return x - y
		})
		for _, t := range tasks {
			v, start := b.BestEFTNode(t, false)
			b.Place(t, v, start)
		}
	}
	return b.ScheduleInto(out)
}

// ERT is the Earliest Ready Task heuristic of Lee, Hwang, Chow & Anger
// (the FCP/FLB papers' comparison baseline): at each step, over all
// (ready task, node) pairs, commit the pair whose *data-ready time* —
// the moment the task's last input can arrive at the node, ignoring the
// node's queue — is earliest, breaking ties toward the earlier actual
// start and then the lower task index. Like ETF it is start-oriented
// rather than finish-oriented, but it ignores node availability when
// ranking options.
type ERT struct{}

// Name implements scheduler.Scheduler.
func (ERT) Name() string { return "ERT" }

// Schedule implements scheduler.Scheduler.
func (e ERT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(e, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (ERT) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestReady, bestStart := math.Inf(1), math.Inf(1)
		for _, t := range rs.Ready() {
			for v := 0; v < inst.Net.NumNodes(); v++ {
				ready, ok := b.ReadyTime(t, v)
				if !ok {
					panic("schedulers: ERT ready task with unplaced predecessor")
				}
				start := b.EarliestStart(v, ready, inst.ExecTime(t, v), false)
				better := bestTask == -1 || ready < bestReady-graph.Eps
				if !better && graph.ApproxEq(ready, bestReady) {
					better = start < bestStart-graph.Eps
				}
				if better {
					bestTask, bestNode, bestReady, bestStart = t, v, ready, start
				}
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.ScheduleInto(out)
}

// MH is the Mapping Heuristic of El-Rewini & Lewis, which the HEFT paper
// describes as "similar to HEFT without insertion": tasks are ordered by
// static level (communication-free upward rank) and each is assigned to
// the node minimizing its completion time, appending after the node's
// last task rather than searching idle gaps.
type MH struct{}

// Name implements scheduler.Scheduler.
func (MH) Name() string { return "MH" }

// Schedule implements scheduler.Scheduler.
func (m MH) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(m, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (MH) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	sl := scr.StaticLevel(inst)
	b := scr.Builder(inst)
	for _, t := range scr.TopoOrderByPriority(inst.Graph, sl) {
		v, start := b.BestEFTNode(t, false)
		b.Place(t, v, start)
	}
	return b.ScheduleInto(out)
}
