package schedulers

import (
	"math"
	"sort"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("LMT", func() scheduler.Scheduler { return LMT{} })
	scheduler.Register("ERT", func() scheduler.Scheduler { return ERT{} })
	scheduler.Register("MH", func() scheduler.Scheduler { return MH{} })
}

// The three schedulers in this file are the historical baselines the
// HEFT/CPoP and FCP/FLB papers compared against, referenced in the PISA
// paper's related-work discussion (Section IV-A): Levelized Min Time,
// ERT (Lee, Hwang, Chow & Anger), and the Mapping Heuristic of El-Rewini
// & Lewis ("similar to HEFT without insertion"). They are extensions
// beyond Table I — registered and fully tested, but excluded from the
// paper-reproducing experiment rosters.

// LMT is Levelized Min Time: the task graph is partitioned into
// precedence levels (longest path from an entry task, in hops); levels
// are scheduled in order, and within a level — whose tasks are mutually
// independent — tasks are taken largest-average-execution-first and each
// is placed on the node minimizing its completion time. The original
// publication is lost to time (the PISA paper notes the same), so this
// follows the description in the HEFT paper's evaluation section.
type LMT struct{}

// Name implements scheduler.Scheduler.
func (LMT) Name() string { return "LMT" }

// Schedule implements scheduler.Scheduler.
func (LMT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	g := inst.Graph
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	level := make([]int, g.NumTasks())
	maxLevel := 0
	for _, t := range order {
		for _, d := range g.Pred[t] {
			if level[d.To]+1 > level[t] {
				level[t] = level[d.To] + 1
			}
		}
		if level[t] > maxLevel {
			maxLevel = level[t]
		}
	}
	byLevel := make([][]int, maxLevel+1)
	for t := 0; t < g.NumTasks(); t++ {
		byLevel[level[t]] = append(byLevel[level[t]], t)
	}

	b := schedule.NewBuilder(inst)
	for _, tasks := range byLevel {
		sort.SliceStable(tasks, func(i, j int) bool {
			ci, cj := g.Tasks[tasks[i]].Cost, g.Tasks[tasks[j]].Cost
			if ci != cj {
				return ci > cj
			}
			return tasks[i] < tasks[j]
		})
		for _, t := range tasks {
			v, start := b.BestEFTNode(t, false)
			b.Place(t, v, start)
		}
	}
	return b.Schedule()
}

// ERT is the Earliest Ready Task heuristic of Lee, Hwang, Chow & Anger
// (the FCP/FLB papers' comparison baseline): at each step, over all
// (ready task, node) pairs, commit the pair whose *data-ready time* —
// the moment the task's last input can arrive at the node, ignoring the
// node's queue — is earliest, breaking ties toward the earlier actual
// start and then the lower task index. Like ETF it is start-oriented
// rather than finish-oriented, but it ignores node availability when
// ranking options.
type ERT struct{}

// Name implements scheduler.Scheduler.
func (ERT) Name() string { return "ERT" }

// Schedule implements scheduler.Scheduler.
func (ERT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	b := schedule.NewBuilder(inst)
	rs := scheduler.NewReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestReady, bestStart := math.Inf(1), math.Inf(1)
		for _, t := range rs.Ready() {
			for v := 0; v < inst.Net.NumNodes(); v++ {
				ready, ok := b.ReadyTime(t, v)
				if !ok {
					panic("schedulers: ERT ready task with unplaced predecessor")
				}
				start := b.EarliestStart(v, ready, inst.ExecTime(t, v), false)
				better := bestTask == -1 || ready < bestReady-graph.Eps
				if !better && graph.ApproxEq(ready, bestReady) {
					better = start < bestStart-graph.Eps
				}
				if better {
					bestTask, bestNode, bestReady, bestStart = t, v, ready, start
				}
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.Schedule()
}

// MH is the Mapping Heuristic of El-Rewini & Lewis, which the HEFT paper
// describes as "similar to HEFT without insertion": tasks are ordered by
// static level (communication-free upward rank) and each is assigned to
// the node minimizing its completion time, appending after the node's
// last task rather than searching idle gaps.
type MH struct{}

// Name implements scheduler.Scheduler.
func (MH) Name() string { return "MH" }

// Schedule implements scheduler.Scheduler.
func (MH) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	b := schedule.NewBuilder(inst)
	sl := scheduler.StaticLevel(inst)
	for _, t := range scheduler.TopoOrderByPriority(inst.Graph, sl) {
		v, start := b.BestEFTNode(t, false)
		b.Place(t, v, start)
	}
	return b.Schedule()
}
