package schedulers

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func TestEnsembleNoWorseThanMembers(t *testing.T) {
	e := NewEnsemble("test-ens", "HEFT", "CPoP", "FastestNode")
	for _, inst := range randomInstances(t, 20, 0xE5) {
		es, err := e.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(inst, es); err != nil {
			t.Fatal(err)
		}
		for _, m := range e.Members() {
			ms, err := m.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			if es.Makespan() > ms.Makespan()+graph.Eps {
				t.Fatalf("ensemble %v worse than member %s %v",
					es.Makespan(), m.Name(), ms.Makespan())
			}
		}
	}
}

func TestEnsembleRegistered(t *testing.T) {
	s, err := scheduler.New("Ensemble")
	if err != nil {
		t.Fatal(err)
	}
	inst := randomInstances(t, 1, 0xE6)[0]
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(inst, sch); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleNotInExperimentalRoster(t *testing.T) {
	// The paper's experiments use exactly the 15 Table I polynomial
	// algorithms; Ensemble is an extension and must not leak in.
	for _, n := range ExperimentalNames {
		if n == "Ensemble" {
			t.Fatal("Ensemble leaked into the experimental roster")
		}
	}
}

func TestNewEnsemblePanicsOnUnknownMember(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown member did not panic")
		}
	}()
	NewEnsemble("bad", "NoSuchScheduler")
}

func TestNewEnsemblePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ensemble did not panic")
		}
	}()
	NewEnsemble("empty")
}

func TestEnsembleEqualsDuplexForMinMinMaxMin(t *testing.T) {
	// Duplex is the two-member special case of Ensemble.
	e := NewEnsemble("duplex-equiv", "MinMin", "MaxMin")
	duplex, _ := scheduler.New("Duplex")
	for _, inst := range randomInstances(t, 10, 0xE7) {
		a, err := e.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := duplex.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.ApproxEq(a.Makespan(), b.Makespan()) {
			t.Fatalf("ensemble(MinMin,MaxMin) %v != Duplex %v", a.Makespan(), b.Makespan())
		}
	}
}
