package schedulers

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// table1 freezes the full Table I roster with each algorithm's Section
// VI homogeneity requirements. The parallel experiment drivers
// re-instantiate schedulers from the registry by name in every worker,
// so a registration or requirements regression silently corrupts whole
// sweeps — this test is the tripwire.
var table1 = []struct {
	name  string
	nodes bool // designed for homogeneous node speeds
	links bool // designed for homogeneous link strengths
}{
	{"BIL", false, true},
	{"BruteForce", false, false},
	{"CPoP", false, false},
	{"Duplex", false, false},
	{"ETF", true, false},
	{"FCP", true, true},
	{"FLB", true, true},
	{"FastestNode", false, false},
	{"GDL", false, true},
	{"HEFT", false, false},
	{"MCT", false, false},
	{"MET", false, false},
	{"MaxMin", false, false},
	{"MinMin", false, false},
	{"OLB", false, false},
	{"SMT", false, false},
	{"WBA", false, false},
}

func TestRegistryResolvesTable1(t *testing.T) {
	if len(table1) != 17 {
		t.Fatalf("frozen roster has %d entries, want 17", len(table1))
	}
	for _, row := range table1 {
		s, err := scheduler.New(row.name)
		if err != nil {
			t.Errorf("scheduler.New(%q): %v", row.name, err)
			continue
		}
		if s.Name() != row.name {
			t.Errorf("scheduler.New(%q).Name() = %q", row.name, s.Name())
		}
		req := scheduler.RequirementsOf(s)
		if req.HomogeneousNodes != row.nodes || req.HomogeneousLinks != row.links {
			t.Errorf("%s requirements = %+v, want nodes=%v links=%v",
				row.name, req, row.nodes, row.links)
		}
	}
	// The registry also carries extensions beyond Table I (the
	// historical baselines and the Ensemble meta-scheduler), but never
	// fewer than the paper's 17.
	registered := map[string]bool{}
	for _, n := range scheduler.Names() {
		registered[n] = true
	}
	for _, row := range table1 {
		if !registered[row.name] {
			t.Errorf("Table I algorithm %s missing from the registry", row.name)
		}
	}
}

func TestRostersStayInPaperOrder(t *testing.T) {
	wantExperimental := []string{
		"BIL", "CPoP", "Duplex", "ETF", "FCP", "FLB", "FastestNode",
		"GDL", "HEFT", "MCT", "MET", "MaxMin", "MinMin", "OLB", "WBA",
	}
	if len(ExperimentalNames) != len(wantExperimental) {
		t.Fatalf("ExperimentalNames has %d entries, want %d", len(ExperimentalNames), len(wantExperimental))
	}
	for i, name := range wantExperimental {
		if ExperimentalNames[i] != name {
			t.Fatalf("ExperimentalNames[%d] = %q, want %q (paper figure order)",
				i, ExperimentalNames[i], name)
		}
	}
	wantAppSpecific := []string{"CPoP", "FastestNode", "HEFT", "MaxMin", "MinMin", "WBA"}
	if len(AppSpecificNames) != len(wantAppSpecific) {
		t.Fatalf("AppSpecificNames has %d entries, want %d", len(AppSpecificNames), len(wantAppSpecific))
	}
	experimental := map[string]bool{}
	for _, name := range ExperimentalNames {
		experimental[name] = true
	}
	for i, name := range wantAppSpecific {
		if AppSpecificNames[i] != name {
			t.Fatalf("AppSpecificNames[%d] = %q, want %q (paper order)", i, AppSpecificNames[i], name)
		}
		if !experimental[name] {
			t.Fatalf("app-specific scheduler %q not in the experimental roster", name)
		}
	}
}

func TestRequirementsHonoredOnHomogeneousInstances(t *testing.T) {
	// Every constrained algorithm must produce a valid schedule on an
	// instance satisfying its declared requirements — the instances PISA
	// restricts its search to (Section VI). Run each on a homogeneous
	// variant of the Fig 1 instance (unit speeds, unit links).
	inst := datasets.Fig1Instance()
	homog := inst.Clone()
	for v := range homog.Net.Speeds {
		homog.Net.Speeds[v] = 1
	}
	for u := 0; u < homog.Net.NumNodes(); u++ {
		for v := u + 1; v < homog.Net.NumNodes(); v++ {
			homog.Net.SetLink(u, v, 1)
		}
	}
	for _, row := range table1 {
		if !row.nodes && !row.links {
			continue
		}
		s, err := scheduler.New(row.name)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := s.Schedule(homog)
		if err != nil {
			t.Errorf("%s on its designed-for homogeneous instance: %v", row.name, err)
			continue
		}
		if err := schedule.Validate(homog, sch); err != nil {
			t.Errorf("%s produced an invalid schedule: %v", row.name, err)
		}
	}
}

func TestRegistryReturnsFreshInstances(t *testing.T) {
	// Parallel workers rely on scheduler.New handing out independent
	// values: mutating one copy's configuration must not leak into
	// another (WBA is the configurable one today).
	a, err := scheduler.New("WBA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := scheduler.New("WBA")
	if err != nil {
		t.Fatal(err)
	}
	wa, ok := a.(WBA)
	if !ok {
		t.Fatalf("WBA registered as %T", a)
	}
	wb := b.(WBA)
	wa.Rounds = 99
	if wb.Rounds == 99 {
		t.Fatal("registry copies share configuration")
	}
	if wa.Seed != wb.Seed {
		t.Fatal("registry copies must start from the same fixed seed for determinism")
	}
}
