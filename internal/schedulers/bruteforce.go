package schedulers

import (
	"fmt"

	"saga/internal/exact"
	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("BruteForce", func() scheduler.Scheduler { return BruteForce{} })
	scheduler.Register("SMT", func() scheduler.Scheduler { return SMT{} })
}

// BruteForce tries every placement order and node assignment (with
// branch-and-bound pruning) and returns a schedule with minimum makespan.
// Like the paper's BruteForce it runs in exponential time and is excluded
// from the benchmarking and adversarial experiments; it exists as an
// optimality reference for tiny instances. Instances beyond MaxTasks
// tasks are rejected up front.
type BruteForce struct {
	// MaxTasks bounds accepted instances (default 10).
	MaxTasks int
	// Budget caps explored search nodes (default per package exact).
	Budget int64
}

// Name implements scheduler.Scheduler.
func (BruteForce) Name() string { return "BruteForce" }

// Schedule implements scheduler.Scheduler.
func (bf BruteForce) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	max := bf.MaxTasks
	if max <= 0 {
		max = 10
	}
	if n := inst.Graph.NumTasks(); n > max {
		return nil, fmt.Errorf("schedulers: BruteForce accepts at most %d tasks, got %d", max, n)
	}
	return exact.Solve(inst, exact.Options{MaxNodes: bf.Budget})
}

// SMT reproduces the paper's SMT-driven binary search scheduler: binary
// search over a makespan deadline, with an exact decision procedure
// answering "does a schedule with makespan <= M exist?", converging to a
// (1+ε)-optimal schedule. The paper's decision procedure is an external
// SMT solver; here it is the branch-and-bound feasibility search of
// package exact (DESIGN.md, substitution 1). Like BruteForce it is
// exponential and excluded from the paper's experiments.
type SMT struct {
	// Epsilon is the relative optimality gap ε (default 0.01).
	Epsilon float64
	// MaxTasks bounds accepted instances (default 10).
	MaxTasks int
	// Budget caps explored search nodes per decision (default per
	// package exact).
	Budget int64
}

// Name implements scheduler.Scheduler.
func (SMT) Name() string { return "SMT" }

// Schedule implements scheduler.Scheduler.
func (s SMT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	eps := s.Epsilon
	if eps <= 0 {
		eps = 0.01
	}
	max := s.MaxTasks
	if max <= 0 {
		max = 10
	}
	if n := inst.Graph.NumTasks(); n > max {
		return nil, fmt.Errorf("schedulers: SMT accepts at most %d tasks, got %d", max, n)
	}

	// Upper bound: any heuristic schedule. HEFT is cheap and good.
	best, err := (HEFT{}).Schedule(inst)
	if err != nil {
		return nil, err
	}
	lo, hi := exact.LowerBound(inst), best.Makespan()
	opts := exact.Options{MaxNodes: s.Budget}
	for hi-lo > eps*lo+graph.Eps {
		mid := (lo + hi) / 2
		sch, ok, err := exact.Feasible(inst, mid, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			best = sch
			hi = sch.Makespan()
		} else {
			lo = mid
		}
	}
	return best, nil
}
