package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("FCP", func() scheduler.Scheduler { return FCP{} })
	scheduler.Register("FLB", func() scheduler.Scheduler { return FLB{} })
}

// candidateNodes returns the FCP/FLB restricted processor set for ready
// task t: the node that becomes idle earliest and the enabling processor
// (the node running the predecessor whose message would arrive last —
// placing t there makes that transfer free). The two may coincide;
// second is -1 when only the earliest-idle node applies (entry tasks),
// so the pair needs no per-call slice.
func candidateNodes(b *schedule.Builder, t int) (first, second int) {
	idle, idleAt := 0, math.Inf(1)
	for v := 0; v < b.Instance().Net.NumNodes(); v++ {
		if a := b.NodeAvailable(v); a < idleAt-graph.Eps {
			idle, idleAt = v, a
		}
	}
	second = -1
	// The enabling processor is defined relative to receiving the data on
	// the earliest-idle node.
	if pred, _, ok := b.EnablingPredecessor(t, idle); ok {
		ep := b.Assignment(pred).Node
		if ep != idle {
			second = ep
		}
	}
	return idle, second
}

// bestCandidateEFT returns, among t's candidate nodes, the one with the
// earliest finish time.
func bestCandidateEFT(b *schedule.Builder, t int) (node int, start, finish float64) {
	node, start, finish = -1, 0, math.Inf(1)
	c1, c2 := candidateNodes(b, t)
	for _, v := range [2]int{c1, c2} {
		if v < 0 {
			continue
		}
		s, f, ok := b.EFT(t, v, false)
		if !ok {
			panic("schedulers: FCP/FLB ready task with unplaced predecessor")
		}
		if f < finish-graph.Eps {
			node, start, finish = v, s, f
		}
	}
	return node, start, finish
}

// FCP is Fast Critical Path (Radulescu & van Gemund). It keeps the ready
// tasks in a priority queue ordered by static upward rank and, rather
// than scanning every processor, considers only two candidates per task:
// the processor that becomes idle first and the enabling processor (the
// source of the task's last-arriving message). The task is placed on
// whichever candidate finishes it earlier. This restriction is what gives
// FCP its O(|T| log |V| + |D|) schedule-generation time.
//
// FCP was designed for heterogeneous task graphs but homogeneous
// processors and links; PISA pins both node speeds and link strengths to
// 1 when analyzing it (Section VI).
type FCP struct{}

// Name implements scheduler.Scheduler.
func (FCP) Name() string { return "FCP" }

// Requirements implements scheduler.Constrained: fully homogeneous
// network.
func (FCP) Requirements() scheduler.Requirements {
	return scheduler.Requirements{HomogeneousNodes: true, HomogeneousLinks: true}
}

// Schedule implements scheduler.Scheduler.
func (f FCP) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(f, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (FCP) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	rank := scr.UpwardRank(inst)
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		// Pop the highest-priority ready task.
		ready := rs.Ready()
		t := ready[0]
		for _, x := range ready[1:] {
			if rank[x] > rank[t]+graph.Eps {
				t = x
			}
		}
		v, start, _ := bestCandidateEFT(b, t)
		b.Place(t, v, start)
		rs.Complete(t)
	}
	return b.ScheduleInto(out)
}

// FLB is Fast Load Balancing (Radulescu & van Gemund), FCP's companion
// algorithm from the same paper. It uses the same two-candidate processor
// restriction but selects, at each step, the ready task whose restricted
// earliest finish time is smallest — balancing load instead of following
// the critical path. Its schedule-generation time is likewise
// O(|T| log |V| + |D|).
//
// Like FCP it targets homogeneous processors and links, and PISA pins
// both to 1 when analyzing it (Section VI).
type FLB struct{}

// Name implements scheduler.Scheduler.
func (FLB) Name() string { return "FLB" }

// Requirements implements scheduler.Constrained: fully homogeneous
// network.
func (FLB) Requirements() scheduler.Requirements {
	return scheduler.Requirements{HomogeneousNodes: true, HomogeneousLinks: true}
}

// Schedule implements scheduler.Scheduler.
func (f FLB) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(f, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (FLB) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestStart, bestFinish := 0.0, math.Inf(1)
		for _, t := range rs.Ready() {
			v, s, f := bestCandidateEFT(b, t)
			if f < bestFinish-graph.Eps {
				bestTask, bestNode, bestStart, bestFinish = t, v, s, f
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.ScheduleInto(out)
}
