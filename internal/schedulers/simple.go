package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("FastestNode", func() scheduler.Scheduler { return FastestNode{} })
	scheduler.Register("OLB", func() scheduler.Scheduler { return OLB{} })
	scheduler.Register("MCT", func() scheduler.Scheduler { return MCT{} })
	scheduler.Register("MET", func() scheduler.Scheduler { return MET{} })
}

// FastestNode is the serial baseline from the paper: every task executes,
// in topological order, on the single fastest compute node. No
// inter-node communication ever occurs, which is exactly why PISA finds
// instances where over-parallelizing heuristics lose to it (Section
// VI-A). Scheduling complexity is O(|T| + |D| + |V|).
type FastestNode struct{}

// Name implements scheduler.Scheduler.
func (FastestNode) Name() string { return "FastestNode" }

// Schedule implements scheduler.Scheduler.
func (f FastestNode) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(f, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (FastestNode) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	tab := scr.Tables(inst)
	if tab.TopoErr != nil {
		return tab.TopoErr
	}
	b := scr.Builder(inst)
	v := inst.Net.FastestNode()
	for _, t := range tab.Topo {
		b.PlaceEFT(t, v, false)
	}
	return b.ScheduleInto(out)
}

// OLB is Opportunistic Load Balancing (Armstrong, Hensgen & Kidd): tasks
// are taken in arbitrary (here: topological) order and assigned to the
// node that becomes available earliest, regardless of execution or
// communication time. Scheduling complexity is O(|T| |V|). It is a
// baseline; the paper notes it performs significantly worse than MET,
// MCT and LBA.
type OLB struct{}

// Name implements scheduler.Scheduler.
func (OLB) Name() string { return "OLB" }

// Schedule implements scheduler.Scheduler.
func (o OLB) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(o, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (OLB) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	tab := scr.Tables(inst)
	if tab.TopoErr != nil {
		return tab.TopoErr
	}
	b := scr.Builder(inst)
	for _, t := range tab.Topo {
		best, bestAvail := 0, math.Inf(1)
		for v := 0; v < inst.Net.NumNodes(); v++ {
			if a := b.NodeAvailable(v); a < bestAvail-graph.Eps {
				best, bestAvail = v, a
			}
		}
		b.PlaceEFT(t, best, false)
	}
	return b.ScheduleInto(out)
}

// MCT is Minimum Completion Time (Armstrong, Hensgen & Kidd): tasks are
// taken in arbitrary (here: topological) order and assigned to the node
// minimizing their completion time given previous decisions — HEFT
// without its priority function or insertion. Scheduling complexity is
// O(|T|^2 |V|).
type MCT struct{}

// Name implements scheduler.Scheduler.
func (MCT) Name() string { return "MCT" }

// Schedule implements scheduler.Scheduler.
func (m MCT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(m, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (MCT) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	tab := scr.Tables(inst)
	if tab.TopoErr != nil {
		return tab.TopoErr
	}
	b := scr.Builder(inst)
	for _, t := range tab.Topo {
		v, start := b.BestEFTNode(t, false)
		b.Place(t, v, start)
	}
	return b.ScheduleInto(out)
}

// MET is Minimum Execution Time (Armstrong, Hensgen & Kidd): each task,
// in arbitrary (here: topological) order, is assigned to the node with
// the smallest execution time for it, ignoring node availability and
// communication entirely. Under the related machines model every task
// picks the fastest node. Scheduling complexity is O(|T| |V|).
type MET struct{}

// Name implements scheduler.Scheduler.
func (MET) Name() string { return "MET" }

// Schedule implements scheduler.Scheduler.
func (m MET) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(m, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (MET) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	tab := scr.Tables(inst)
	if tab.TopoErr != nil {
		return tab.TopoErr
	}
	b := scr.Builder(inst)
	for _, t := range tab.Topo {
		best, bestExec := 0, math.Inf(1)
		for v := 0; v < inst.Net.NumNodes(); v++ {
			if e := inst.ExecTime(t, v); e < bestExec-graph.Eps {
				best, bestExec = v, e
			}
		}
		b.PlaceEFT(t, best, false)
	}
	return b.ScheduleInto(out)
}
