package schedulers

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// quickInstance wraps a problem instance so testing/quick can generate
// random ones: random DAG (edges only from lower to higher index),
// random positive weights, random network.
type quickInstance struct {
	inst *graph.Instance
}

// Generate implements quick.Generator.
func (quickInstance) Generate(r *rand.Rand, size int) reflect.Value {
	nTasks := r.Intn(7) + 1
	nNodes := r.Intn(4) + 1
	g := graph.NewTaskGraph()
	for i := 0; i < nTasks; i++ {
		g.AddTask("t", r.Float64()*10)
	}
	for i := 0; i < nTasks; i++ {
		for j := i + 1; j < nTasks; j++ {
			if r.Intn(3) == 0 {
				g.MustAddDep(i, j, r.Float64()*10)
			}
		}
	}
	net := graph.NewNetwork(nNodes)
	for v := 0; v < nNodes; v++ {
		net.Speeds[v] = 0.1 + r.Float64()*5
		for u := v + 1; u < nNodes; u++ {
			net.SetLink(v, u, 0.1+r.Float64()*5)
		}
	}
	return reflect.ValueOf(quickInstance{inst: graph.NewInstance(g, net)})
}

// TestQuickAllSchedulersValid drives every polynomial algorithm through
// testing/quick-generated instances: the Section II validity conditions
// are the invariant.
func TestQuickAllSchedulersValid(t *testing.T) {
	scheds := Experimental()
	property := func(qi quickInstance) bool {
		if err := qi.inst.Validate(); err != nil {
			return false
		}
		for _, s := range scheds {
			sch, err := s.Schedule(qi.inst)
			if err != nil {
				return false
			}
			if err := schedule.Validate(qi.inst, sch); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMakespanLowerBounds: no schedule can beat the
// total-work-over-total-speed bound or the best-speed critical path.
func TestQuickMakespanLowerBounds(t *testing.T) {
	heft, _ := scheduler.New("HEFT")
	property := func(qi quickInstance) bool {
		inst := qi.inst
		sch, err := heft.Schedule(inst)
		if err != nil {
			return false
		}
		work, sumSpeed := 0.0, 0.0
		for _, tk := range inst.Graph.Tasks {
			work += tk.Cost
		}
		for _, sp := range inst.Net.Speeds {
			sumSpeed += sp
		}
		return sch.Makespan() >= work/sumSpeed-graph.Eps
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScaleInvariance: multiplying every task and dependency cost
// by a constant k scales every list schedule's makespan by exactly k
// (the model is linear in costs).
func TestQuickScaleInvariance(t *testing.T) {
	heft, _ := scheduler.New("HEFT")
	cpop, _ := scheduler.New("CPoP")
	property := func(qi quickInstance, kRaw uint8) bool {
		k := 1 + float64(kRaw%50)
		scaled := qi.inst.Clone()
		for i := range scaled.Graph.Tasks {
			scaled.Graph.Tasks[i].Cost *= k
		}
		for _, d := range scaled.Graph.Deps() {
			c, _ := scaled.Graph.DepCost(d[0], d[1])
			scaled.Graph.SetDepCost(d[0], d[1], c*k)
		}
		for _, s := range []scheduler.Scheduler{heft, cpop} {
			a, err := s.Schedule(qi.inst)
			if err != nil {
				return false
			}
			b, err := s.Schedule(scaled)
			if err != nil {
				return false
			}
			// Relative comparison: scaling can hit float noise, so use a
			// relative epsilon.
			if diff := b.Makespan() - k*a.Makespan(); diff > 1e-6*(1+k*a.Makespan()) || -diff > 1e-6*(1+k*a.Makespan()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpeedScaling: multiplying every node speed by k divides a
// communication-free schedule's makespan by k. (Communication times are
// unaffected by node speeds, so restrict to zero-data graphs.)
func TestQuickSpeedScaling(t *testing.T) {
	heft, _ := scheduler.New("HEFT")
	property := func(qi quickInstance, kRaw uint8) bool {
		k := 2 + float64(kRaw%10)
		base := qi.inst.Clone()
		for _, d := range base.Graph.Deps() {
			base.Graph.SetDepCost(d[0], d[1], 0)
		}
		fast := base.Clone()
		for v := range fast.Net.Speeds {
			fast.Net.Speeds[v] *= k
		}
		a, err := heft.Schedule(base)
		if err != nil {
			return false
		}
		b, err := heft.Schedule(fast)
		if err != nil {
			return false
		}
		diff := a.Makespan()/k - b.Makespan()
		return diff < 1e-6*(1+b.Makespan()) && -diff < 1e-6*(1+b.Makespan())
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
