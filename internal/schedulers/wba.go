package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("WBA", func() scheduler.Scheduler { return NewWBA(0x57BA, 10) })
}

// WBA is the Workflow-Based Application scheduler of Blythe et al.,
// developed for scientific-workflow management in grid/cloud
// environments and designed for the fully heterogeneous model. It is a
// stochastic greedy (GRASP-style) constructor: tasks are assigned one at
// a time, and for each ready task the candidate (task, node) options are
// scored by how much they would increase the current schedule makespan;
// an option is drawn uniformly from the restricted candidate list of
// options whose increase is within Alpha of the span between the best and
// worst option. The whole construction is repeated Rounds times and the
// best schedule kept. The paper bounds its scheduling complexity by
// O(|T| |D| |V|).
//
// WBA is randomized; the seed is fixed at construction so results are
// reproducible run-to-run (matching SAGA, which seeds Python's RNG).
type WBA struct {
	Seed   uint64
	Rounds int
	// Alpha is the restricted-candidate-list width in [0, 1]: 0 accepts
	// only minimum-increase options (pure greedy), 1 accepts anything.
	Alpha float64
}

// NewWBA returns a WBA scheduler with the given seed and construction
// rounds and the conventional GRASP width of 0.5.
func NewWBA(seed uint64, rounds int) WBA {
	return WBA{Seed: seed, Rounds: rounds, Alpha: 0.5}
}

// Name implements scheduler.Scheduler.
func (WBA) Name() string { return "WBA" }

// Schedule implements scheduler.Scheduler.
func (w WBA) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(w, inst)
}

// wbaScratch is WBA's per-worker extension state: the root and per-round
// generators and the candidate-option buffer, reused across calls.
type wbaScratch struct {
	root, round rng.RNG
	options     []wbaOption
}

// ScheduleScratch implements scheduler.ScratchScheduler. Each
// construction round builds into the scratch builder; the best round is
// copied into out, so a warm call allocates nothing while drawing the
// exact random streams of the reference implementation.
func (w WBA) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	rounds := w.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	ws := scr.Ext("WBA", func() any { return &wbaScratch{} }).(*wbaScratch)
	ws.root.Reseed(w.Seed)
	bestSet := false
	bestMakespan := 0.0
	for i := 0; i < rounds; i++ {
		ws.root.SplitInto(&ws.round)
		b, err := w.construct(inst, &ws.round, scr, ws)
		if err != nil {
			return err
		}
		if m := b.Makespan(); !bestSet || m < bestMakespan {
			if err := b.ScheduleInto(out); err != nil {
				return err
			}
			bestSet, bestMakespan = true, m
		}
	}
	return nil
}

type wbaOption struct {
	task, node int
	start      float64
	increase   float64
}

func (w WBA) construct(inst *graph.Instance, r *rng.RNG, scr *scheduler.Scratch, ws *wbaScratch) (*schedule.Builder, error) {
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	options := ws.options[:0]
	for !rs.Empty() {
		options = options[:0]
		current := b.Makespan()
		minInc, maxInc := math.Inf(1), math.Inf(-1)
		for _, t := range rs.Ready() {
			for v := 0; v < inst.Net.NumNodes(); v++ {
				s, f, ok := b.EFT(t, v, false)
				if !ok {
					panic("schedulers: WBA ready task with unplaced predecessor")
				}
				inc := math.Max(f-current, 0)
				options = append(options, wbaOption{task: t, node: v, start: s, increase: inc})
				if inc < minInc {
					minInc = inc
				}
				if inc > maxInc {
					maxInc = inc
				}
			}
		}
		// Restricted candidate list: options within Alpha of the span.
		cut := minInc + w.Alpha*(maxInc-minInc) + graph.Eps
		n := 0
		for _, o := range options {
			if o.increase <= cut {
				options[n] = o
				n++
			}
		}
		pick := options[r.Intn(n)]
		b.Place(pick.task, pick.node, pick.start)
		rs.Complete(pick.task)
	}
	ws.options = options[:0]
	return b, nil
}
