package schedulers

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

var historicalNames = []string{"LMT", "ERT", "MH"}

func TestHistoricalSchedulersValid(t *testing.T) {
	instances := randomInstances(t, 30, 0x4157)
	for _, name := range historicalNames {
		s, err := scheduler.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, inst := range instances {
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("%s instance %d: %v", name, i, err)
			}
			if err := schedule.Validate(inst, sch); err != nil {
				t.Fatalf("%s instance %d: %v", name, i, err)
			}
		}
	}
}

func TestHistoricalNotInPaperRosters(t *testing.T) {
	for _, name := range historicalNames {
		for _, n := range ExperimentalNames {
			if n == name {
				t.Fatalf("%s leaked into the Table I experimental roster", name)
			}
		}
		for _, n := range AppSpecificNames {
			if n == name {
				t.Fatalf("%s leaked into the Section VII roster", name)
			}
		}
	}
}

func TestLMTLevelOrdering(t *testing.T) {
	// Two-level diamond: entry at level 0, middles at level 1, sink at
	// level 2. LMT must never start a level-k task before every
	// level-(k-1) task it depends on, which Validate covers, but also
	// schedules larger middle tasks first: on a 2-node homogeneous net
	// the largest middle task starts at the entry's finish.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	big := g.AddTask("big", 10)
	small := g.AddTask("small", 1)
	d := g.AddTask("d", 1)
	g.MustAddDep(a, big, 0)
	g.MustAddDep(a, small, 0)
	g.MustAddDep(big, d, 0)
	g.MustAddDep(small, d, 0)
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	s, _ := scheduler.New("LMT")
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(inst, sch); err != nil {
		t.Fatal(err)
	}
	if sch.ByTask[big].Start > sch.ByTask[small].Start+graph.Eps {
		t.Fatalf("LMT scheduled the small task (%v) before the big one (%v)",
			sch.ByTask[small].Start, sch.ByTask[big].Start)
	}
}

func TestMHMatchesHEFTOrderWithoutInsertion(t *testing.T) {
	// On communication-free graphs, static level equals upward rank, so
	// MH differs from HEFT only by insertion. Without gaps to insert
	// into (a pure chain), their makespans must agree.
	g := graph.NewTaskGraph()
	prev := -1
	for i := 0; i < 6; i++ {
		tk := g.AddTask("t", float64(i+1))
		if prev >= 0 {
			g.MustAddDep(prev, tk, 0)
		}
		prev = tk
	}
	net := graph.NewNetwork(3)
	net.Speeds[1] = 2
	inst := graph.NewInstance(g, net)
	mh, _ := scheduler.New("MH")
	heft, _ := scheduler.New("HEFT")
	a, err := mh.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := heft.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(a.Makespan(), b.Makespan()) {
		t.Fatalf("MH %v != HEFT %v on a chain", a.Makespan(), b.Makespan())
	}
}

func TestERTPrefersDataLocality(t *testing.T) {
	// One producer with a large output: the consumer's ready time is
	// earliest on the producer's node, so ERT keeps them together even
	// though another node is idle.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddDep(a, b, 100)
	net := graph.NewNetwork(2)
	net.SetLink(0, 1, 0.1)
	inst := graph.NewInstance(g, net)
	s, _ := scheduler.New("ERT")
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sch.ByTask[a].Node != sch.ByTask[b].Node {
		t.Fatal("ERT split a heavy producer/consumer pair across a weak link")
	}
}

func TestHistoricalOnExtremes(t *testing.T) {
	for _, inst := range extremeInstances() {
		for _, name := range historicalNames {
			s, _ := scheduler.New(name)
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := schedule.Validate(inst, sch); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}
