package schedulers

import (
	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("HEFT", func() scheduler.Scheduler { return HEFT{} })
}

// HEFT is the Heterogeneous Earliest Finish Time list scheduler of
// Topcuoglu, Hariri & Wu. Tasks are prioritized by upward rank — the
// length, in average execution and communication time, of the longest
// chain from the task to a sink — and greedily placed, in decreasing
// rank order, on the node that minimizes their earliest finish time,
// considering insertion into idle gaps. Scheduling complexity is
// O(|T|^2 |V|).
type HEFT struct{}

// Name implements scheduler.Scheduler.
func (HEFT) Name() string { return "HEFT" }

// Schedule implements scheduler.Scheduler.
func (h HEFT) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(h, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (HEFT) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	rank := scr.UpwardRank(inst)
	b := scr.Builder(inst)
	for _, t := range scr.TopoOrderByPriority(inst.Graph, rank) {
		v, start := b.BestEFTNode(t, true)
		b.Place(t, v, start)
	}
	return b.ScheduleInto(out)
}
