package schedulers

import (
	"testing"

	"saga/internal/graph"
)

// bilChain builds a two-task chain a→b (costs 2 and 4, data 6) on two
// nodes with speeds 1 and 2 and link strength 3, for which the BIL
// levels are hand-computable.
func bilChain() *graph.Instance {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 4)
	g.MustAddDep(a, b, 6)
	net := graph.NewNetwork(2)
	net.Speeds[0], net.Speeds[1] = 1, 2
	net.SetLink(0, 1, 3)
	return graph.NewInstance(g, net)
}

func TestBILLevelsHandComputed(t *testing.T) {
	inst := bilChain()
	var tab graph.Tables
	tab.Build(inst)
	// The flat level matrix is row-major with stride |V| = 2.
	bil := bilLevels(inst, &tab, make([]float64, inst.Graph.NumTasks()*2))
	// Sink b: BIL(b, v) = exec(b, v).
	if !graph.ApproxEq(bil[1*2+0], 4) || !graph.ApproxEq(bil[1*2+1], 2) {
		t.Fatalf("BIL(b) = %v, want [4 2]", bil[2:4])
	}
	// a on node 0: exec 2 + max over succ of
	//   min(BIL(b,0)=4 stay, BIL(b,1)+comm(6/3)=2+2=4 move) = 4 → 6.
	if !graph.ApproxEq(bil[0*2+0], 6) {
		t.Fatalf("BIL(a,0) = %v, want 6", bil[0])
	}
	// a on node 1: exec 1 + min(BIL(b,1)=2 stay, BIL(b,0)+2=6 move) = 2 → 3.
	if !graph.ApproxEq(bil[0*2+1], 3) {
		t.Fatalf("BIL(a,1) = %v, want 3", bil[1])
	}
}

func TestBILOptimalOnLinearGraphs(t *testing.T) {
	// Oh & Ha prove BIL optimal for linear task graphs. Cross-check
	// against the exact solver on random chains.
	for seed := uint64(1); seed <= 12; seed++ {
		inst := randomInstances(t, 1, 0xB11+seed)[0]
		// Strip to a pure chain (the generator starts from chains but
		// the test harness may have densified; rebuild explicitly).
		g := graph.NewTaskGraph()
		prev := -1
		for i := 0; i < inst.Graph.NumTasks(); i++ {
			tk := g.AddTask("t", inst.Graph.Tasks[i].Cost)
			if prev >= 0 {
				g.MustAddDep(prev, tk, float64(seed%3))
			}
			prev = tk
		}
		chain := graph.NewInstance(g, inst.Net)
		bilSched := BIL{}
		got, err := bilSched.Schedule(chain)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := (BruteForce{}).Schedule(chain)
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan() > opt.Makespan()+graph.Eps {
			t.Fatalf("seed %d: BIL %v not optimal on a chain (opt %v)",
				seed, got.Makespan(), opt.Makespan())
		}
	}
}

func TestBILLoadAdjustmentSpreadsReadyTasks(t *testing.T) {
	// Many independent equal tasks, more than nodes: the k/|V| BIM*
	// adjustment must keep BIL from piling everything onto the fastest
	// node. With 6 tasks on 2 equal nodes the makespan must be that of a
	// balanced split (3 tasks per node), not 6 on one node.
	g := graph.NewTaskGraph()
	for i := 0; i < 6; i++ {
		g.AddTask("t", 1)
	}
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	sched, err := (BIL{}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sched.Makespan(), 3) {
		t.Fatalf("BIL makespan = %v, want 3 (balanced)", sched.Makespan())
	}
}
