package schedulers

import (
	"fmt"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// allNames lists every Table I algorithm, including the exponential ones.
var allNames = append(append([]string{}, ExperimentalNames...), "BruteForce", "SMT")

// randomInstances draws a mix of small instances from the PISA
// initial-instance generator plus structural perturbations, covering
// chains, forks and random DAGs.
func randomInstances(t *testing.T, n int, seed uint64) []*graph.Instance {
	t.Helper()
	r := rng.New(seed)
	out := make([]*graph.Instance, 0, n)
	for i := 0; i < n; i++ {
		inst := datasets.InitialPISAInstance(r.Split())
		// Randomly densify some instances so non-chain structure is
		// covered too.
		rr := r.Split()
		for j := 0; j < rr.Intn(4); j++ {
			nt := inst.Graph.NumTasks()
			u, v := rr.Intn(nt), rr.Intn(nt)
			if u != v && !inst.Graph.HasDep(u, v) && !inst.Graph.Reaches(v, u) {
				inst.Graph.MustAddDep(u, v, rr.Float64())
			}
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("generator produced invalid instance: %v", err)
		}
		out = append(out, inst)
	}
	return out
}

// TestAllSchedulersProduceValidSchedules is the central correctness
// property: every algorithm, on every random instance, yields a schedule
// satisfying all Section II validity constraints.
func TestAllSchedulersProduceValidSchedules(t *testing.T) {
	instances := randomInstances(t, 40, 0xBEEF)
	for _, name := range allNames {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := scheduler.New(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, inst := range instances {
				sch, err := s.Schedule(inst)
				if err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
				if err := schedule.Validate(inst, sch); err != nil {
					t.Fatalf("instance %d: invalid schedule: %v", i, err)
				}
			}
		})
	}
}

// TestSchedulersValidOnDatasets runs the 15 experimental algorithms on
// one instance of every Table II dataset — covering large networks
// (Edge/Fog/Cloud), infinite links (Chameleon) and every workflow
// topology.
func TestSchedulersValidOnDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset sweep in -short mode")
	}
	for _, ds := range datasets.TableII {
		instances, err := datasets.Dataset(ds, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		inst := instances[0]
		for _, s := range Experimental() {
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), ds, err)
			}
			if err := schedule.Validate(inst, sch); err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), ds, err)
			}
		}
	}
}

func TestSchedulersDeterministic(t *testing.T) {
	instances := randomInstances(t, 5, 0xD0)
	for _, name := range allNames {
		s1, _ := scheduler.New(name)
		s2, _ := scheduler.New(name)
		for i, inst := range instances {
			a, err := s1.Schedule(inst)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, err := s2.Schedule(inst)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !graph.ApproxEq(a.Makespan(), b.Makespan()) {
				t.Fatalf("%s not deterministic on instance %d: %v vs %v",
					name, i, a.Makespan(), b.Makespan())
			}
		}
	}
}

func TestFastestNodeIsSerialOnFastestNode(t *testing.T) {
	for _, inst := range randomInstances(t, 10, 0xFA) {
		s, _ := scheduler.New("FastestNode")
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		fast := inst.Net.FastestNode()
		total := 0.0
		for _, a := range sch.ByTask {
			if a.Node != fast {
				t.Fatalf("task %d on node %d, want fastest node %d", a.Task, a.Node, fast)
			}
			total += a.End - a.Start
		}
		// Serial execution with no communication: makespan equals the sum
		// of execution times (no gaps are ever needed on one node).
		if !graph.ApproxEq(sch.Makespan(), total) {
			t.Fatalf("FastestNode makespan %v != total exec %v", sch.Makespan(), total)
		}
	}
}

func TestMETPicksFastestUnderRelatedMachines(t *testing.T) {
	// Under related machines every task's minimum execution time is on
	// the fastest node, so MET's placements coincide with FastestNode's.
	for _, inst := range randomInstances(t, 10, 0x3E) {
		met, _ := scheduler.New("MET")
		sch, err := met.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		fast := inst.Net.FastestNode()
		for _, a := range sch.ByTask {
			if inst.Net.Speeds[a.Node] != inst.Net.Speeds[fast] {
				t.Fatalf("MET placed task %d on non-fastest node %d", a.Task, a.Node)
			}
		}
	}
}

func TestDuplexNoWorseThanMinMinAndMaxMin(t *testing.T) {
	for _, inst := range randomInstances(t, 20, 0xDD) {
		duplex, _ := scheduler.New("Duplex")
		minmin, _ := scheduler.New("MinMin")
		maxmin, _ := scheduler.New("MaxMin")
		d, err := duplex.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		mn, err := minmin.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		mx, err := maxmin.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		best := mn.Makespan()
		if mx.Makespan() < best {
			best = mx.Makespan()
		}
		if !graph.ApproxEq(d.Makespan(), best) {
			t.Fatalf("Duplex %v != min(MinMin %v, MaxMin %v)",
				d.Makespan(), mn.Makespan(), mx.Makespan())
		}
	}
}

func TestBruteForceOptimalAmongHeuristics(t *testing.T) {
	bf, _ := scheduler.New("BruteForce")
	for _, inst := range randomInstances(t, 8, 0xB0) {
		opt, err := bf.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range Experimental() {
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			if sch.Makespan() < opt.Makespan()-graph.Eps {
				t.Fatalf("%s beat BruteForce: %v < %v", s.Name(), sch.Makespan(), opt.Makespan())
			}
		}
	}
}

func TestBruteForceRejectsLargeInstances(t *testing.T) {
	g := graph.NewTaskGraph()
	for i := 0; i < 30; i++ {
		g.AddTask(fmt.Sprintf("t%d", i), 1)
	}
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	bf, _ := scheduler.New("BruteForce")
	if _, err := bf.Schedule(inst); err == nil {
		t.Fatal("BruteForce accepted a 30-task instance")
	}
	smt, _ := scheduler.New("SMT")
	if _, err := smt.Schedule(inst); err == nil {
		t.Fatal("SMT accepted a 30-task instance")
	}
}

func TestSMTWithinEpsilonOfBruteForce(t *testing.T) {
	bf := BruteForce{}
	smt := SMT{Epsilon: 0.01}
	for _, inst := range randomInstances(t, 8, 0x57) {
		opt, err := bf.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		near, err := smt.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if near.Makespan() > opt.Makespan()*1.01+graph.Eps {
			t.Fatalf("SMT makespan %v exceeds (1+eps) x optimal %v",
				near.Makespan(), opt.Makespan())
		}
		if near.Makespan() < opt.Makespan()-graph.Eps {
			t.Fatalf("SMT makespan %v below optimal %v", near.Makespan(), opt.Makespan())
		}
	}
}

func TestHEFTKnownInstance(t *testing.T) {
	// The Fig 1 example: frozen expected makespans, hand-checked against
	// the schedule in the paper's Fig 1c (HEFT uses nodes 2 and 3 and
	// finishes shortly after t4).
	inst := datasets.Fig1Instance()
	heft, _ := scheduler.New("HEFT")
	sch, err := heft.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sch.Makespan(), 4.25) {
		t.Fatalf("HEFT on Fig 1 = %v, want 4.25", sch.Makespan())
	}
}

func TestCPoPPinsCriticalPathToOneNode(t *testing.T) {
	// On a pure chain every task is on the critical path, so CPoP must
	// serialize the whole chain on a single node — the one minimizing
	// total execution (the fastest).
	g := graph.NewTaskGraph()
	prev := -1
	for i := 0; i < 5; i++ {
		t := g.AddTask(fmt.Sprintf("t%d", i), 1+float64(i))
		if prev >= 0 {
			g.MustAddDep(prev, t, 1)
		}
		prev = t
	}
	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 1, 3, 2
	inst := graph.NewInstance(g, net)
	cpop, _ := scheduler.New("CPoP")
	sch, err := cpop.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sch.ByTask {
		if a.Node != 1 {
			t.Fatalf("critical-path task %d on node %d, want fastest node 1", a.Task, a.Node)
		}
	}
}

func TestETFIgnoresInsertionAndUsesEarliestStart(t *testing.T) {
	// Two ready tasks, two idle identical nodes: ETF must start both at
	// time 0 on different nodes (earliest start first).
	g := graph.NewTaskGraph()
	g.AddTask("a", 5)
	g.AddTask("b", 1)
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	etf, _ := scheduler.New("ETF")
	sch, err := etf.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sch.ByTask[0].Start != 0 || sch.ByTask[1].Start != 0 {
		t.Fatalf("ETF did not start both ready tasks at 0: %+v", sch.ByTask)
	}
	if sch.ByTask[0].Node == sch.ByTask[1].Node {
		t.Fatal("ETF serialized two ready tasks on idle network")
	}
}

func TestOLBUsesEarliestAvailableNode(t *testing.T) {
	// Three independent tasks, two nodes with different speeds: OLB
	// ignores speed, so tasks alternate by availability.
	g := graph.NewTaskGraph()
	g.AddTask("a", 4)
	g.AddTask("b", 4)
	g.AddTask("c", 1)
	net := graph.NewNetwork(2)
	net.Speeds[0], net.Speeds[1] = 1, 100
	inst := graph.NewInstance(g, net)
	olb, _ := scheduler.New("OLB")
	sch, err := olb.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	// a goes to node 0 (both idle, lowest index). b must go to node 1
	// (still idle). c goes to whichever is free sooner — node 1.
	if sch.ByTask[0].Node != 0 || sch.ByTask[1].Node != 1 {
		t.Fatalf("OLB placements: %+v", sch.ByTask)
	}
	if sch.ByTask[2].Node != 1 {
		t.Fatalf("OLB third task on node %d, want 1 (earliest available)", sch.ByTask[2].Node)
	}
}

func TestMCTBeatsOLBOnHeterogeneousSpeeds(t *testing.T) {
	// MCT considers completion time, so on a strongly heterogeneous
	// network it should never lose to OLB on independent equal tasks.
	g := graph.NewTaskGraph()
	for i := 0; i < 6; i++ {
		g.AddTask(fmt.Sprintf("t%d", i), 10)
	}
	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 1, 10, 10
	inst := graph.NewInstance(g, net)
	mct, _ := scheduler.New("MCT")
	olb, _ := scheduler.New("OLB")
	a, err := mct.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := olb.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan() > b.Makespan()+graph.Eps {
		t.Fatalf("MCT (%v) worse than OLB (%v) on heterogeneous speeds",
			a.Makespan(), b.Makespan())
	}
}

func TestWBASeededReproducible(t *testing.T) {
	inst := randomInstances(t, 1, 0x5EED)[0]
	a, err := NewWBA(123, 10).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWBA(123, 10).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan() != b.Makespan() {
		t.Fatal("WBA with equal seeds diverged")
	}
}

func TestWBAMoreRoundsNoWorse(t *testing.T) {
	// Rounds are independent constructions with the best kept, and round
	// streams are prefix-stable (Split order), so 20 rounds can only
	// improve on the first 5.
	inst := randomInstances(t, 1, 0x5EED)[0]
	few, err := NewWBA(9, 5).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewWBA(9, 20).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if many.Makespan() > few.Makespan()+graph.Eps {
		t.Fatalf("more WBA rounds made it worse: %v > %v", many.Makespan(), few.Makespan())
	}
}

func TestRequirementsMatchPaper(t *testing.T) {
	// Section VI: node weights pinned for ETF, FCP, FLB; link weights
	// pinned for BIL, GDL, FCP, FLB.
	wantNodes := map[string]bool{"ETF": true, "FCP": true, "FLB": true}
	wantLinks := map[string]bool{"BIL": true, "GDL": true, "FCP": true, "FLB": true}
	for _, name := range ExperimentalNames {
		s, _ := scheduler.New(name)
		req := scheduler.RequirementsOf(s)
		if req.HomogeneousNodes != wantNodes[name] {
			t.Errorf("%s HomogeneousNodes = %v, want %v", name, req.HomogeneousNodes, wantNodes[name])
		}
		if req.HomogeneousLinks != wantLinks[name] {
			t.Errorf("%s HomogeneousLinks = %v, want %v", name, req.HomogeneousLinks, wantLinks[name])
		}
	}
}

func TestTable1Roster(t *testing.T) {
	// All 17 Table I algorithms are registered.
	for _, name := range allNames {
		if _, err := scheduler.New(name); err != nil {
			t.Errorf("Table I algorithm %s not registered: %v", name, err)
		}
	}
	if len(allNames) != 17 {
		t.Fatalf("roster has %d algorithms, want 17", len(allNames))
	}
	if len(ExperimentalNames) != 15 {
		t.Fatalf("experimental roster has %d algorithms, want 15", len(ExperimentalNames))
	}
	if len(AppSpecificNames) != 6 {
		t.Fatalf("app-specific roster has %d algorithms, want 6", len(AppSpecificNames))
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	// Every scheduler must handle a single-node network (all tasks
	// serial, no communication).
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 2)
	g.MustAddDep(a, b, 5)
	inst := graph.NewInstance(g, graph.NewNetwork(1))
	for _, name := range allNames {
		s, _ := scheduler.New(name)
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s on single node: %v", name, err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("%s on single node: %v", name, err)
		}
		if !graph.ApproxEq(sch.Makespan(), 3) {
			t.Fatalf("%s single-node makespan = %v, want 3", name, sch.Makespan())
		}
	}
}

func TestSingleTaskGraph(t *testing.T) {
	g := graph.NewTaskGraph()
	g.AddTask("only", 6)
	net := graph.NewNetwork(3)
	net.Speeds[2] = 2
	inst := graph.NewInstance(g, net)
	for _, name := range allNames {
		s, _ := scheduler.New(name)
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s on single task: %v", name, err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("%s on single task: %v", name, err)
		}
	}
}

func TestZeroCostTasksHandled(t *testing.T) {
	// PISA perturbations can drive task and dependency costs to exactly
	// zero (Fig 5's task B); schedulers must stay valid.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 0)
	b := g.AddTask("b", 0)
	c := g.AddTask("c", 1)
	g.MustAddDep(a, b, 0)
	g.MustAddDep(b, c, 0)
	net := graph.NewNetwork(2)
	net.Speeds[1] = 2
	inst := graph.NewInstance(g, net)
	for _, name := range allNames {
		s, _ := scheduler.New(name)
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s on zero-cost tasks: %v", name, err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("%s on zero-cost tasks: %v", name, err)
		}
	}
}

func TestDisconnectedGraphHandled(t *testing.T) {
	g := graph.NewTaskGraph()
	g.AddTask("a", 1)
	g.AddTask("b", 2)
	g.AddTask("c", 3)
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	for _, name := range allNames {
		s, _ := scheduler.New(name)
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s on independent tasks: %v", name, err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("%s on independent tasks: %v", name, err)
		}
	}
}
