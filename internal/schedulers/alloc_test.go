package schedulers

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// TestScheduleScratchZeroAlloc is the allocation-regression gate for the
// scheduling hot path: after warm-up, a full ScheduleScratch call on the
// Fig 1 instance must allocate nothing. HEFT and CPoP are the paper's
// headline pair and the acceptance bar; the other list schedulers ride
// along so a regression in any shared primitive (builder, ready set,
// rank buffers, tables) fails loudly with the algorithm's name attached.
func TestScheduleScratchZeroAlloc(t *testing.T) {
	inst := datasets.Fig1Instance()
	names := []string{
		"HEFT", "CPoP", "BIL", "ETF", "FCP", "FLB", "FastestNode",
		"GDL", "MCT", "MET", "MaxMin", "MinMin", "OLB", "WBA",
		"LMT", "ERT", "MH", "Duplex", "Ensemble",
	}
	for _, name := range names {
		s, err := scheduler.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ss, ok := s.(scheduler.ScratchScheduler)
		if !ok {
			t.Fatalf("%s does not implement ScratchScheduler", name)
		}
		scr := scheduler.NewScratch()
		var out schedule.Schedule
		// Warm up: grow every arena (builder, timelines, rank buffers,
		// extension state) to steady-state capacity.
		for i := 0; i < 3; i++ {
			if err := ss.ScheduleScratch(inst, scr, &out); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := ss.ScheduleScratch(inst, scr, &out); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per warm Schedule, want 0", name, allocs)
		}
	}
}
