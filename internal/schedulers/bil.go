package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("BIL", func() scheduler.Scheduler { return BIL{} })
}

// BIL is the Best Imaginary Level scheduler of Oh & Ha, designed for the
// unrelated machines model (strictly more general than the related
// machines model studied here) and proven optimal on linear graphs.
//
// The best imaginary level of task t on node v is computed bottom-up:
//
//	BIL(t, v) = exec(t, v) + max over successors s of
//	            min( BIL(s, v),
//	                 min over v'≠v ( BIL(s, v') + comm(t, s, v, v') ) )
//
// i.e. the optimistic remaining makespan if t runs on v and each
// successor chain either stays on v (no communication) or moves once.
//
// At each step the ready task with the highest criticality — here the
// maximum over nodes of its best imaginary makespan
// BIM(t, v) = EST(t, v) + BIL(t, v) — is selected, and placed on the node
// minimizing the revised measure
//
//	BIM*(t, v) = BIM(t, v) + exec(t, v) · max(k/|V| − 1, 0)
//
// where k is the number of currently ready tasks; the adjustment penalizes
// hoarding fast nodes when more tasks are ready than nodes exist, per the
// original paper. Scheduling complexity is O(|T|^2 |V| log |V|).
//
// BIL was analyzed by PISA with homogeneous communication links (link
// strengths pinned to 1, Section VI).
type BIL struct{}

// Name implements scheduler.Scheduler.
func (BIL) Name() string { return "BIL" }

// Requirements implements scheduler.Constrained: homogeneous links.
func (BIL) Requirements() scheduler.Requirements {
	return scheduler.Requirements{HomogeneousLinks: true}
}

// bilLevels computes BIL(t, v) for every task and node, bottom-up in
// reverse topological order, into the flat row-major dst (stride nNodes)
// so a warm scratch buffer serves every call. The communication term
// divides the edge cost by the raw link strength exactly as
// Instance.CommTime does.
func bilLevels(inst *graph.Instance, tab *graph.Tables, dst []float64) []float64 {
	g := inst.Graph
	nNodes := inst.Net.NumNodes()
	bil := dst
	if tab.TopoErr != nil {
		panic("schedulers: BIL on cyclic graph: " + tab.TopoErr.Error())
	}
	order := tab.Topo
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		for v := 0; v < nNodes; v++ {
			level := 0.0
			for _, d := range g.Succ[t] {
				s := d.To
				best := bil[s*nNodes+v] // stay on v: no communication
				cost := d.Cost
				for v2 := 0; v2 < nNodes; v2++ {
					if v2 == v {
						continue
					}
					comm := 0.0
					if cost != 0 {
						comm = cost / tab.Link(v, v2)
					}
					cand := bil[s*nNodes+v2] + comm
					if cand < best {
						best = cand
					}
				}
				if best > level {
					level = best
				}
			}
			bil[t*nNodes+v] = inst.ExecTime(t, v) + level
		}
	}
	return bil
}

// Schedule implements scheduler.Scheduler.
func (s BIL) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(s, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (BIL) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	nNodes := inst.Net.NumNodes()
	tab := scr.Tables(inst)
	bil := bilLevels(inst, tab, scr.Floats(inst.Graph.NumTasks()*nNodes))
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		ready := rs.Ready()
		k := float64(len(ready))

		// Select the ready task with the highest criticality: the largest
		// best imaginary makespan over nodes.
		bestTask, bestCrit := -1, math.Inf(-1)
		for _, t := range ready {
			crit := math.Inf(-1)
			for v := 0; v < nNodes; v++ {
				s, _, ok := b.EFT(t, v, false)
				if !ok {
					panic("schedulers: BIL ready task with unplaced predecessor")
				}
				if bim := s + bil[t*nNodes+v]; bim > crit {
					crit = bim
				}
			}
			if crit > bestCrit+graph.Eps {
				bestTask, bestCrit = t, crit
			}
		}

		// Place it on the node minimizing the revised imaginary makespan.
		adjust := math.Max(k/float64(nNodes)-1, 0)
		bestNode, bestStart, bestBIM := -1, 0.0, math.Inf(1)
		for v := 0; v < nNodes; v++ {
			s, _, _ := b.EFT(bestTask, v, false)
			bim := s + bil[bestTask*nNodes+v] + inst.ExecTime(bestTask, v)*adjust
			if bim < bestBIM-graph.Eps {
				bestNode, bestStart, bestBIM = v, s, bim
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.ScheduleInto(out)
}
