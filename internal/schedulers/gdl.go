package schedulers

import (
	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("GDL", func() scheduler.Scheduler { return GDL{} })
}

// GDL is the Generalized Dynamic Level scheduler (Sih & Lee's DLS).
// Task priorities are recomputed each time a task is scheduled: the
// dynamic level of a ready task t on node v is
//
//	DL(t, v) = SL(t) − EST(t, v) + Δ(t, v)
//
// where SL is the communication-free static level, EST the earliest start
// time of t on v given prior decisions, and Δ(t, v) = E*(t) − c(t)/s(v)
// is the speed-advantage adjustment (E* the average execution time over
// nodes). Each iteration commits the (ready task, node) pair with the
// maximum dynamic level. The per-iteration rescan makes the complexity
// O(|V|^3 |T|) in the original formulation — a factor |V| above
// HEFT/CPoP, as the paper notes.
//
// GDL was designed for networks with heterogeneous processors but was
// analyzed by PISA with homogeneous communication links (link strengths
// pinned to 1, Section VI).
type GDL struct{}

// Name implements scheduler.Scheduler.
func (GDL) Name() string { return "GDL" }

// Requirements implements scheduler.Constrained: homogeneous links.
func (GDL) Requirements() scheduler.Requirements {
	return scheduler.Requirements{HomogeneousLinks: true}
}

// Schedule implements scheduler.Scheduler.
func (g GDL) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(g, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (GDL) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	tab := scr.Tables(inst)
	sl := scr.StaticLevel(inst)
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestStart, bestDL := 0.0, 0.0
		for _, t := range rs.Ready() {
			avg := tab.AvgExec[t]
			for v := 0; v < inst.Net.NumNodes(); v++ {
				s, _, ok := b.EFT(t, v, false)
				if !ok {
					panic("schedulers: GDL ready task with unplaced predecessor")
				}
				dl := sl[t] - s + (avg - inst.ExecTime(t, v))
				if bestTask == -1 || dl > bestDL+graph.Eps {
					bestTask, bestNode, bestStart, bestDL = t, v, s, dl
				}
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.ScheduleInto(out)
}
