package schedulers

import (
	"math"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// TestFig1FrozenMakespans pins every experimental algorithm's makespan
// on the paper's Fig 1 instance. These values were produced by this
// implementation and hand-sanity-checked (FastestNode = serial on the
// speed-1.5 node = (1.7+1.2+2.2+0.8)/1.5 = 3.9333; OLB ignores speeds
// and communication and pays for it; BruteForce/SMT confirm 3.9333 is
// optimal). Any behavioural change to a scheduler shows up here first.
func TestFig1FrozenMakespans(t *testing.T) {
	want := map[string]float64{
		"BIL":         4.25,
		"CPoP":        4.25,
		"Duplex":      4.05,
		"ETF":         5.2,
		"FCP":         6.0333333333,
		"FLB":         6.1666666667,
		"FastestNode": 3.9333333333,
		"GDL":         4.25,
		"HEFT":        4.25,
		"MCT":         4.05,
		"MET":         3.9333333333,
		"MaxMin":      4.25,
		"MinMin":      4.05,
		"OLB":         7.3,
		"WBA":         4.0333333333,
	}
	inst := datasets.Fig1Instance()
	for _, s := range Experimental() {
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if w := want[s.Name()]; math.Abs(sch.Makespan()-w) > 1e-9 {
			t.Errorf("%s makespan = %.10f, want %.10f", s.Name(), sch.Makespan(), w)
		}
	}
}

// TestFig1OptimumIsFastestNode freezes the optimality fact the quickstart
// example surfaces: on Fig 1, serializing on the fastest node is optimal
// (3.9333...), and HEFT's 4.25 is a real 8% over-parallelization loss.
func TestFig1OptimumIsFastestNode(t *testing.T) {
	inst := datasets.Fig1Instance()
	bf, _ := scheduler.New("BruteForce")
	opt, err := bf.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(opt.Makespan(), 5.9/1.5) {
		t.Fatalf("Fig 1 optimum = %v, want %v", opt.Makespan(), 5.9/1.5)
	}
}

// extremeInstances exercises numerically hostile weights: huge and tiny
// costs, strong/weak links, mixed magnitudes.
func extremeInstances() []*graph.Instance {
	var out []*graph.Instance

	// Huge task costs, tiny speeds.
	g1 := graph.NewTaskGraph()
	a := g1.AddTask("a", 1e9)
	b := g1.AddTask("b", 1e9)
	g1.MustAddDep(a, b, 1e9)
	n1 := graph.NewNetwork(3)
	for v := range n1.Speeds {
		n1.Speeds[v] = 1e-3
	}
	out = append(out, graph.NewInstance(g1, n1))

	// Tiny costs on fast nodes with weak links.
	g2 := graph.NewTaskGraph()
	c := g2.AddTask("c", 1e-9)
	d := g2.AddTask("d", 1e-9)
	e := g2.AddTask("e", 1e-9)
	g2.MustAddDep(c, d, 1e-9)
	g2.MustAddDep(c, e, 1e-9)
	n2 := graph.NewNetwork(2)
	n2.Speeds[0], n2.Speeds[1] = 1e6, 1e6
	n2.SetLink(0, 1, 1e-6)
	out = append(out, graph.NewInstance(g2, n2))

	// Mixed magnitudes: one enormous task among trivial ones.
	g3 := graph.NewTaskGraph()
	f := g3.AddTask("f", 1e-6)
	h := g3.AddTask("h", 1e6)
	i := g3.AddTask("i", 1e-6)
	g3.MustAddDep(f, h, 1)
	g3.MustAddDep(f, i, 1)
	n3 := graph.NewNetwork(3)
	n3.Speeds[1] = 1e3
	out = append(out, graph.NewInstance(g3, n3))

	return out
}

// TestSchedulersSurviveExtremeWeights is failure injection for numeric
// robustness: every algorithm must stay valid (no NaN/Inf starts, no
// overlap) across nine orders of magnitude of weights.
func TestSchedulersSurviveExtremeWeights(t *testing.T) {
	for _, inst := range extremeInstances() {
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, name := range allNames {
			s, _ := scheduler.New(name)
			sch, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("%s on extreme instance: %v", name, err)
			}
			if err := schedule.Validate(inst, sch); err != nil {
				t.Fatalf("%s on extreme instance: %v", name, err)
			}
			if math.IsNaN(sch.Makespan()) || math.IsInf(sch.Makespan(), 0) {
				t.Fatalf("%s produced non-finite makespan %v", name, sch.Makespan())
			}
		}
	}
}

// TestSchedulersOnWideGraph exercises a high-fanout graph (one source,
// 60 children) where per-iteration rescans are most stressed.
func TestSchedulersOnWideGraph(t *testing.T) {
	g := graph.NewTaskGraph()
	src := g.AddTask("src", 1)
	for i := 0; i < 60; i++ {
		c := g.AddTask("c", 1)
		g.MustAddDep(src, c, 0.5)
	}
	net := graph.NewNetwork(4)
	net.Speeds[3] = 3
	inst := graph.NewInstance(g, net)
	for _, s := range Experimental() {
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// TestSchedulersOnDeepChain exercises a 200-task chain (worst case for
// rank recursion depth and serial dependencies).
func TestSchedulersOnDeepChain(t *testing.T) {
	g := graph.NewTaskGraph()
	prev := -1
	for i := 0; i < 200; i++ {
		tk := g.AddTask("t", 1)
		if prev >= 0 {
			g.MustAddDep(prev, tk, 1)
		}
		prev = tk
	}
	net := graph.NewNetwork(3)
	net.Speeds[2] = 2
	inst := graph.NewInstance(g, net)
	for _, s := range Experimental() {
		sch, err := s.Schedule(inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// A chain cannot finish faster than serial on the fastest node.
		if sch.Makespan() < 200.0/2-graph.Eps {
			t.Fatalf("%s beat the chain lower bound: %v", s.Name(), sch.Makespan())
		}
	}
}
