package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("CPoP", func() scheduler.Scheduler { return CPoP{} })
}

// CPoP is the Critical Path on Processor list scheduler of Topcuoglu,
// Hariri & Wu, proposed alongside HEFT. Task priority is
// rank_u(t) + rank_d(t): the length of the longest average-time path
// through the task. Tasks whose priority equals the critical-path length
// form the critical-path set and are all committed to the single node
// that minimizes the total execution time of the set — under the related
// machines model, the fastest node (paper footnote 3). All other tasks
// are placed on their earliest-finish-time node with insertion, in
// decreasing priority order among ready tasks. Scheduling complexity is
// O(|T|^2 |V|).
type CPoP struct{}

// Name implements scheduler.Scheduler.
func (CPoP) Name() string { return "CPoP" }

// Schedule implements scheduler.Scheduler.
func (c CPoP) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(c, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (CPoP) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	g := inst.Graph
	up := scr.UpwardRank(inst)
	down := scr.DownwardRank(inst)
	prio := scr.Floats(g.NumTasks())
	cpLen := 0.0
	for t := range prio {
		prio[t] = up[t] + down[t]
		if prio[t] > cpLen {
			cpLen = prio[t]
		}
	}

	// The critical path is every task whose through-path length equals
	// the longest path length.
	onCP := scr.Bools(g.NumTasks())
	for t := range prio {
		onCP[t] = graph.ApproxEq(prio[t], cpLen)
	}

	// Pick the node minimizing the summed execution time of critical-path
	// tasks. Under related machines this is the fastest node, but
	// computing the sum keeps the definition faithful.
	cpNode, bestSum := 0, math.Inf(1)
	for v := 0; v < inst.Net.NumNodes(); v++ {
		sum := 0.0
		for t := range onCP {
			if onCP[t] {
				sum += inst.ExecTime(t, v)
			}
		}
		if sum < bestSum-graph.Eps {
			cpNode, bestSum = v, sum
		}
	}

	b := scr.Builder(inst)
	for _, t := range scr.TopoOrderByPriority(g, prio) {
		if onCP[t] {
			b.PlaceEFT(t, cpNode, true)
			continue
		}
		v, start := b.BestEFTNode(t, true)
		b.Place(t, v, start)
	}
	return b.ScheduleInto(out)
}
