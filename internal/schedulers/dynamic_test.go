package schedulers

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/scheduler"
)

// Behavioral tests for the dynamic-selection schedulers: ETF, GDL,
// FCP/FLB and the MinMin/MaxMin pair. Each pins the published property
// that distinguishes the algorithm from its neighbours.

func TestETFStartOrientedVsHEFTFinishOriented(t *testing.T) {
	// One ready task, two nodes: slow node idle (start 0), fast node
	// busy until 1. Starting at 0 on the slow node finishes at 10;
	// waiting for the fast node finishes at 1 + 10/10 = 2. ETF picks the
	// earliest *start* (slow node), HEFT the earliest *finish* (fast
	// node) — the exact difference Section IV-A highlights.
	build := func() (*graph.Instance, int, int) {
		g := graph.NewTaskGraph()
		blocker := g.AddTask("blocker", 10) // occupies the fast node
		task := g.AddTask("task", 10)
		net := graph.NewNetwork(2)
		net.Speeds[1] = 10 // blocker runs 1s there
		return graph.NewInstance(g, net), blocker, task
	}

	inst, blocker, task := build()
	etf, _ := scheduler.New("ETF")
	// ETF is pinned to homogeneous nodes by PISA but handles
	// heterogeneous ones; this test uses heterogeneity deliberately.
	es, err := etf.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	// ETF places both at start 0 on different nodes (both have EST 0).
	if es.ByTask[blocker].Start != 0 || es.ByTask[task].Start != 0 {
		t.Fatalf("ETF starts: blocker %v, task %v — both should be 0",
			es.ByTask[blocker].Start, es.ByTask[task].Start)
	}

	inst2, blocker2, task2 := build()
	heft, _ := scheduler.New("HEFT")
	hs, err := heft.Schedule(inst2)
	if err != nil {
		t.Fatal(err)
	}
	// HEFT puts both on the fast node (finish-time greedy): blocker
	// first (higher rank), then task at 1.
	if hs.ByTask[blocker2].Node != 1 || hs.ByTask[task2].Node != 1 {
		t.Fatalf("HEFT nodes: blocker %d, task %d — both should be the fast node",
			hs.ByTask[blocker2].Node, hs.ByTask[task2].Node)
	}
}

func TestGDLSpeedAdvantageTerm(t *testing.T) {
	// Two idle nodes with speeds 1 and 4, one unit task: both ESTs are
	// 0, so the Δ(t, v) = E*(t) − exec(t, v) term must steer GDL to the
	// fast node.
	g := graph.NewTaskGraph()
	tk := g.AddTask("t", 1)
	net := graph.NewNetwork(2)
	net.Speeds[1] = 4
	inst := graph.NewInstance(g, net)
	gdl, _ := scheduler.New("GDL")
	gs, err := gdl.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ByTask[tk].Node != 1 {
		t.Fatalf("GDL ignored the speed-advantage term (node %d)", gs.ByTask[tk].Node)
	}
}

func TestGDLPrioritizesHighStaticLevel(t *testing.T) {
	// A long chain head and an isolated task are both ready; the chain
	// head has the larger static level and must be committed first on a
	// single-node network.
	g := graph.NewTaskGraph()
	head := g.AddTask("head", 1)
	mid := g.AddTask("mid", 1)
	tail := g.AddTask("tail", 1)
	g.MustAddDep(head, mid, 0)
	g.MustAddDep(mid, tail, 0)
	iso := g.AddTask("iso", 1)
	inst := graph.NewInstance(g, graph.NewNetwork(1))
	gdl, _ := scheduler.New("GDL")
	gs, err := gdl.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ByTask[head].Start > gs.ByTask[iso].Start+graph.Eps {
		t.Fatalf("GDL ran the isolated task (%v) before the chain head (%v)",
			gs.ByTask[iso].Start, gs.ByTask[head].Start)
	}
}

func TestFCPRestrictedProcessorChoice(t *testing.T) {
	// Three nodes; a producer on node 0 with a heavy output. The
	// consumer's candidates are only {earliest-idle node, enabling node
	// 0}. Make node 2 globally best but neither earliest-idle nor
	// enabling: FCP must not discover it. Homogeneous speeds/links per
	// FCP's design; we force the earliest-idle node to be node 1 by
	// pre-loading node 2 via an independent task.
	g := graph.NewTaskGraph()
	prod := g.AddTask("prod", 1)
	pad := g.AddTask("pad", 2) // occupies some node early
	cons := g.AddTask("cons", 1)
	g.MustAddDep(prod, cons, 5)
	inst := graph.NewInstance(g, graph.NewNetwork(3))

	fcp, _ := scheduler.New("FCP")
	fs, err := fcp.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	consNode := fs.ByTask[cons].Node
	prodNode := fs.ByTask[prod].Node
	padNode := fs.ByTask[pad].Node
	// The consumer must sit on the enabling node (data locality) or the
	// earliest-idle node — with three nodes and two other tasks, the one
	// node holding neither prod nor pad is earliest-idle.
	earliestIdle := 3 - prodNode - padNode
	if consNode != prodNode && consNode != earliestIdle {
		t.Fatalf("FCP used node %d outside its candidate set {%d, %d}",
			consNode, prodNode, earliestIdle)
	}
}

func TestFLBPicksSmallestEFTReadyTask(t *testing.T) {
	// Two ready tasks, one tiny and one huge, single node: FLB (load
	// balancing) commits the task with the earliest finish first — the
	// tiny one — where FCP (critical path) runs the huge one first.
	g := graph.NewTaskGraph()
	huge := g.AddTask("huge", 10)
	tiny := g.AddTask("tiny", 1)
	inst := graph.NewInstance(g, graph.NewNetwork(1))

	flb, _ := scheduler.New("FLB")
	ls, err := flb.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if ls.ByTask[tiny].Start > ls.ByTask[huge].Start+graph.Eps {
		t.Fatal("FLB did not run the earliest-finishing ready task first")
	}

	fcp, _ := scheduler.New("FCP")
	fs, err := fcp.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if fs.ByTask[huge].Start > fs.ByTask[tiny].Start+graph.Eps {
		t.Fatal("FCP did not follow the higher upward rank first")
	}
}

func TestMinMinMaxMinSelectionOrder(t *testing.T) {
	// Independent tasks with costs 1, 5, 9 on one node. MinMin commits
	// smallest-MCT first: 1, 5, 9. MaxMin commits largest first: 9, 5, 1.
	g := graph.NewTaskGraph()
	t1 := g.AddTask("t1", 1)
	t5 := g.AddTask("t5", 5)
	t9 := g.AddTask("t9", 9)
	inst := graph.NewInstance(g, graph.NewNetwork(1))

	mn, _ := scheduler.New("MinMin")
	ms, err := mn.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !(ms.ByTask[t1].Start < ms.ByTask[t5].Start && ms.ByTask[t5].Start < ms.ByTask[t9].Start) {
		t.Fatalf("MinMin order: %v, %v, %v", ms.ByTask[t1].Start, ms.ByTask[t5].Start, ms.ByTask[t9].Start)
	}

	mx, _ := scheduler.New("MaxMin")
	xs, err := mx.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !(xs.ByTask[t9].Start < xs.ByTask[t5].Start && xs.ByTask[t5].Start < xs.ByTask[t1].Start) {
		t.Fatalf("MaxMin order: %v, %v, %v", xs.ByTask[t9].Start, xs.ByTask[t5].Start, xs.ByTask[t1].Start)
	}
}

func TestWBAZeroAlphaIsGreedy(t *testing.T) {
	// With Alpha = 0 the restricted candidate list holds only
	// minimum-increase options, so WBA becomes deterministic greedy up
	// to ties; across seeds the makespan must not vary on a tie-free
	// instance.
	g := graph.NewTaskGraph()
	g.AddTask("a", 3)
	g.AddTask("b", 5)
	net := graph.NewNetwork(2)
	net.Speeds[1] = 2
	inst := graph.NewInstance(g, net)
	var first float64
	for seed := uint64(1); seed <= 5; seed++ {
		w := WBA{Seed: seed, Rounds: 1, Alpha: 0}
		s, err := w.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if seed == 1 {
			first = s.Makespan()
			continue
		}
		if s.Makespan() != first {
			t.Fatalf("greedy WBA varied across seeds: %v vs %v", s.Makespan(), first)
		}
	}
}
