package schedulers

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// This file proves the zero-allocation hot path produces schedules
// BIT-IDENTICAL (==, not approximately equal) to the pre-optimization
// implementations. refBuilder and the ref* functions below are verbatim
// copies of the code the precomputed-table/scratch rewrite replaced:
// they recompute averages through Instance.AvgExecTime/AvgCommTime,
// rescan successor lists through Instance.CommTime, and allocate fresh
// state per call — exactly the arithmetic path the old schedulers took.

// refBuilder is the pre-optimization schedule.Builder: per-call
// allocation, Instance.CommTime (successor-list scan) for data-ready
// times, sort.Search for timeline insertion.
type refBuilder struct {
	inst      *graph.Instance
	byTask    []schedule.Assignment
	placed    []bool
	timelines [][]schedule.Assignment
}

func newRefBuilder(inst *graph.Instance) *refBuilder {
	return &refBuilder{
		inst:      inst,
		byTask:    make([]schedule.Assignment, inst.Graph.NumTasks()),
		placed:    make([]bool, inst.Graph.NumTasks()),
		timelines: make([][]schedule.Assignment, inst.Net.NumNodes()),
	}
}

func (b *refBuilder) nodeAvailable(v int) float64 {
	tl := b.timelines[v]
	if len(tl) == 0 {
		return 0
	}
	return tl[len(tl)-1].End
}

func (b *refBuilder) readyTime(t, v int) float64 {
	ready := 0.0
	for _, d := range b.inst.Graph.Pred[t] {
		u := d.To
		au := b.byTask[u]
		arrive := au.End + b.inst.CommTime(u, t, au.Node, v)
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

func (b *refBuilder) earliestStart(v int, ready, duration float64, insertion bool) float64 {
	tl := b.timelines[v]
	if !insertion {
		return math.Max(ready, b.nodeAvailable(v))
	}
	start := ready
	for _, a := range tl {
		if start+duration <= a.Start {
			return start
		}
		if a.End > start {
			start = a.End
		}
	}
	return start
}

func (b *refBuilder) eft(t, v int, insertion bool) (start, finish float64) {
	ready := b.readyTime(t, v)
	dur := b.inst.ExecTime(t, v)
	start = b.earliestStart(v, ready, dur, insertion)
	return start, start + dur
}

func (b *refBuilder) place(t, v int, start float64) {
	a := schedule.Assignment{Task: t, Node: v, Start: start, End: start + b.inst.ExecTime(t, v)}
	b.byTask[t] = a
	b.placed[t] = true
	tl := b.timelines[v]
	i := sort.Search(len(tl), func(i int) bool { return tl[i].Start >= a.Start })
	tl = append(tl, schedule.Assignment{})
	copy(tl[i+1:], tl[i:])
	tl[i] = a
	b.timelines[v] = tl
}

func (b *refBuilder) bestEFTNode(t int, insertion bool) (node int, start float64) {
	bestNode, bestStart, bestFinish := -1, 0.0, math.Inf(1)
	for v := 0; v < b.inst.Net.NumNodes(); v++ {
		s, f := b.eft(t, v, insertion)
		if f < bestFinish-graph.Eps {
			bestNode, bestStart, bestFinish = v, s, f
		}
	}
	return bestNode, bestStart
}

// refUpwardRank is the pre-optimization scheduler.UpwardRank.
func refUpwardRank(inst *graph.Instance) []float64 {
	g := inst.Graph
	rank := make([]float64, g.NumTasks())
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, d := range g.Succ[t] {
			v := inst.AvgCommTime(t, d.To) + rank[d.To]
			if v > best {
				best = v
			}
		}
		rank[t] = inst.AvgExecTime(t) + best
	}
	return rank
}

// refDownwardRank is the pre-optimization scheduler.DownwardRank.
func refDownwardRank(inst *graph.Instance) []float64 {
	g := inst.Graph
	rank := make([]float64, g.NumTasks())
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	for _, t := range order {
		best := 0.0
		for _, d := range g.Pred[t] {
			u := d.To
			v := rank[u] + inst.AvgExecTime(u) + inst.AvgCommTime(u, t)
			if v > best {
				best = v
			}
		}
		rank[t] = best
	}
	return rank
}

// refTopoOrderByPriority is the pre-optimization
// scheduler.TopoOrderByPriority, with its own frontier bookkeeping.
func refTopoOrderByPriority(g *graph.TaskGraph, priority []float64) []int {
	pending := make([]int, g.NumTasks())
	var ready []int
	for t := 0; t < g.NumTasks(); t++ {
		pending[t] = len(g.Pred[t])
		if pending[t] == 0 {
			ready = append(ready, t)
		}
	}
	order := make([]int, 0, g.NumTasks())
	for len(ready) > 0 {
		best := ready[0]
		for _, t := range ready[1:] {
			if priority[t] > priority[best] {
				best = t
			}
		}
		order = append(order, best)
		for i, x := range ready {
			if x == best {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		for _, d := range g.Succ[best] {
			pending[d.To]--
			if pending[d.To] == 0 {
				i := sort.SearchInts(ready, d.To)
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = d.To
			}
		}
	}
	return order
}

// refHEFT is the pre-optimization HEFT.Schedule.
func refHEFT(inst *graph.Instance) []schedule.Assignment {
	b := newRefBuilder(inst)
	rank := refUpwardRank(inst)
	for _, t := range refTopoOrderByPriority(inst.Graph, rank) {
		v, start := b.bestEFTNode(t, true)
		b.place(t, v, start)
	}
	return b.byTask
}

// refCPoP is the pre-optimization CPoP.Schedule.
func refCPoP(inst *graph.Instance) []schedule.Assignment {
	g := inst.Graph
	up := refUpwardRank(inst)
	down := refDownwardRank(inst)
	prio := make([]float64, g.NumTasks())
	cpLen := 0.0
	for t := range prio {
		prio[t] = up[t] + down[t]
		if prio[t] > cpLen {
			cpLen = prio[t]
		}
	}
	onCP := make([]bool, g.NumTasks())
	for t := range prio {
		onCP[t] = graph.ApproxEq(prio[t], cpLen)
	}
	cpNode, bestSum := 0, math.Inf(1)
	for v := 0; v < inst.Net.NumNodes(); v++ {
		sum := 0.0
		for t := range onCP {
			if onCP[t] {
				sum += inst.ExecTime(t, v)
			}
		}
		if sum < bestSum-graph.Eps {
			cpNode, bestSum = v, sum
		}
	}
	b := newRefBuilder(inst)
	for _, t := range refTopoOrderByPriority(g, prio) {
		if onCP[t] {
			s, _ := b.eft(t, cpNode, true)
			b.place(t, cpNode, s)
			continue
		}
		v, start := b.bestEFTNode(t, true)
		b.place(t, v, start)
	}
	return b.byTask
}

// determinismCorpus builds a varied instance set: the paper's worked
// examples, random trees/chains over heterogeneous networks, and
// perturbation-style variants with zero-cost tasks and zero-size
// dependencies (the rank-tie cases PISA's weight moves create).
func determinismCorpus(t *testing.T) []*graph.Instance {
	t.Helper()
	insts := []*graph.Instance{
		datasets.Fig1Instance(),
		datasets.Fig3Instance(false),
		datasets.Fig3Instance(true),
		datasets.Fig5Instance(),
		datasets.Fig6Instance(),
	}
	for _, name := range []string{"chains", "in_trees", "out_trees"} {
		gen, err := datasets.New(name)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(0xD37)
		for i := 0; i < 8; i++ {
			insts = append(insts, gen.Generate(r.Split()))
		}
	}
	// Zero-weight variants: kill a task cost and an edge cost so rank
	// ties and free communications are exercised.
	r := rng.New(0xD38)
	for _, name := range []string{"chains", "in_trees"} {
		gen, err := datasets.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			inst := gen.Generate(r.Split())
			inst.Graph.Tasks[r.Intn(inst.Graph.NumTasks())].Cost = 0
			if deps := inst.Graph.Deps(); len(deps) > 0 {
				d := deps[r.Intn(len(deps))]
				inst.Graph.SetDepCost(d[0], d[1], 0)
			}
			insts = append(insts, inst)
		}
	}
	return insts
}

// assertSameAssignments requires exact (==) equality of every
// assignment's node, start and end.
func assertSameAssignments(t *testing.T, label string, i int, want []schedule.Assignment, got *schedule.Schedule) {
	t.Helper()
	if len(want) != len(got.ByTask) {
		t.Fatalf("%s inst %d: %d vs %d assignments", label, i, len(want), len(got.ByTask))
	}
	for tk := range want {
		w, g := want[tk], got.ByTask[tk]
		if w.Node != g.Node || w.Start != g.Start || w.End != g.End {
			t.Fatalf("%s inst %d task %d: reference (node %d, %v..%v) vs optimized (node %d, %v..%v)",
				label, i, tk, w.Node, w.Start, w.End, g.Node, g.Start, g.End)
		}
	}
}

// TestScratchBitIdenticalToReference proves the tentpole's contract: the
// table-driven, scratch-reusing HEFT and CPoP produce bit-identical
// schedules to the pre-optimization implementations over the corpus, on
// both the plain Schedule path and a shared warm scratch.
func TestScratchBitIdenticalToReference(t *testing.T) {
	scr := scheduler.NewScratch()
	var out schedule.Schedule
	for i, inst := range determinismCorpus(t) {
		wantHEFT := append([]schedule.Assignment(nil), refHEFT(inst)...)
		wantCPoP := append([]schedule.Assignment(nil), refCPoP(inst)...)

		sch, err := HEFT{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAssignments(t, "HEFT/plain", i, wantHEFT, sch)
		if err := (HEFT{}).ScheduleScratch(inst, scr, &out); err != nil {
			t.Fatal(err)
		}
		assertSameAssignments(t, "HEFT/scratch", i, wantHEFT, &out)

		sch, err = CPoP{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAssignments(t, "CPoP/plain", i, wantCPoP, sch)
		if err := (CPoP{}).ScheduleScratch(inst, scr, &out); err != nil {
			t.Fatal(err)
		}
		assertSameAssignments(t, "CPoP/scratch", i, wantCPoP, &out)
	}
}

// TestScratchMatchesPlainForAllSchedulers closes the loop for the rest
// of the roster: a warm shared scratch must reproduce the plain Schedule
// path bit-for-bit for every registered scratch-aware algorithm (the
// plain path itself is pinned by TestFig1FrozenMakespans and the
// reference comparison above).
func TestScratchMatchesPlainForAllSchedulers(t *testing.T) {
	names := append([]string{"Ensemble", "LMT", "ERT", "MH"}, ExperimentalNames...)
	corpus := determinismCorpus(t)
	for _, name := range names {
		s, err := scheduler.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ss, ok := s.(scheduler.ScratchScheduler)
		if !ok {
			t.Fatalf("%s does not implement ScratchScheduler", name)
		}
		scr := scheduler.NewScratch()
		var out schedule.Schedule
		for i, inst := range corpus {
			want, err := s.Schedule(inst)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := ss.ScheduleScratch(inst, scr, &out); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			assertSameAssignments(t, fmt.Sprintf("%s/scratch-vs-plain", name), i, want.ByTask, &out)
		}
	}
}
