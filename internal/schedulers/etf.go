package schedulers

import (
	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("ETF", func() scheduler.Scheduler { return ETF{} })
}

// ETF is Earliest Task First (Hwang, Chow, Anger & Lee), one of the few
// algorithms here with a formal bound: makespan at most
// (2 - 1/n)·ω_opt^(i) + C on homogeneous processors, where ω_opt^(i) is
// the communication-free optimum and C a terminal-chain communication
// bound. Each iteration picks, over all (ready task, node) pairs, the
// pair with the earliest possible *start* time — note, start, not finish,
// which is the key difference from HEFT/CPoP the paper highlights — and
// commits it. Ties break toward the higher static upward rank, then the
// lower task index. Scheduling complexity is O(|T| |V|^2).
//
// ETF was designed for homogeneous compute nodes; PISA therefore pins
// node speeds to 1 when analyzing it (Section VI).
type ETF struct{}

// Name implements scheduler.Scheduler.
func (ETF) Name() string { return "ETF" }

// Requirements implements scheduler.Constrained: homogeneous node speeds.
func (ETF) Requirements() scheduler.Requirements {
	return scheduler.Requirements{HomogeneousNodes: true}
}

// Schedule implements scheduler.Scheduler.
func (e ETF) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(e, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (ETF) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	rank := scr.UpwardRank(inst)
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestStart := 0.0
		for _, t := range rs.Ready() {
			for v := 0; v < inst.Net.NumNodes(); v++ {
				s, _, ok := b.EFT(t, v, false)
				if !ok {
					panic("schedulers: ETF ready task with unplaced predecessor")
				}
				better := bestTask == -1 || s < bestStart-graph.Eps
				if !better && graph.ApproxEq(s, bestStart) {
					// Tie-break: prefer the more critical task.
					better = rank[t] > rank[bestTask]+graph.Eps
				}
				if better {
					bestTask, bestNode, bestStart = t, v, s
				}
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.ScheduleInto(out)
}
