package schedulers

import (
	"fmt"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	// The default ensemble bundles the strongest general-purpose
	// heuristics; Duplex is the degenerate two-member special case
	// already in Table I.
	scheduler.Register("Ensemble", func() scheduler.Scheduler {
		return NewEnsemble("Ensemble", "HEFT", "CPoP", "MinMin", "MaxMin", "FastestNode")
	})
}

// Ensemble runs several member algorithms on the instance and returns the
// schedule with the smallest makespan. The paper's conclusion proposes
// exactly this ("running multiple algorithms and choosing the best
// schedule") as a direction for future work, and its Duplex entry is the
// two-member special case. An ensemble's makespan ratio against any of
// its members is at most 1 on every instance, which makes it a useful
// upper-bound baseline in PISA grids.
type Ensemble struct {
	name    string
	members []scheduler.Scheduler
}

// NewEnsemble builds an ensemble over the named registered schedulers.
// It panics on unknown names (registration-time programming error).
func NewEnsemble(name string, members ...string) *Ensemble {
	if len(members) == 0 {
		panic("schedulers: ensemble needs at least one member")
	}
	e := &Ensemble{name: name}
	for _, m := range members {
		s, err := scheduler.New(m)
		if err != nil {
			panic(fmt.Sprintf("schedulers: ensemble member %q: %v", m, err))
		}
		e.members = append(e.members, s)
	}
	return e
}

// Members returns the member schedulers (shared, not copied).
func (e *Ensemble) Members() []scheduler.Scheduler { return e.members }

// Name implements scheduler.Scheduler.
func (e *Ensemble) Name() string { return e.name }

// Schedule implements scheduler.Scheduler: the best member schedule by
// makespan (ties go to the earlier member).
func (e *Ensemble) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(e, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler: every member
// runs against the shared scratch (scratch-aware members allocation-free,
// plain members through their Schedule fallback), and the incumbent best
// is kept in out.
func (e *Ensemble) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	tmp := scr.AcquireSchedule()
	defer scr.ReleaseSchedule(tmp)
	first := true
	for _, m := range e.members {
		if err := scheduler.ScheduleInto(m, inst, scr, tmp); err != nil {
			return fmt.Errorf("schedulers: ensemble member %s: %w", m.Name(), err)
		}
		if first || tmp.Makespan() < out.Makespan()-graph.Eps {
			out.CopyFrom(tmp)
			first = false
		}
	}
	return nil
}
