package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("MinMin", func() scheduler.Scheduler { return MinMin{} })
	scheduler.Register("MaxMin", func() scheduler.Scheduler { return MaxMin{} })
	scheduler.Register("Duplex", func() scheduler.Scheduler { return Duplex{} })
}

// minCompletion returns, for ready task t, the node minimizing its
// completion time given previous decisions, the corresponding start time,
// and that minimum completion time.
func minCompletion(b *schedule.Builder, t int) (node int, start, finish float64) {
	node, start, finish = -1, 0, math.Inf(1)
	for v := 0; v < b.Instance().Net.NumNodes(); v++ {
		s, f, ok := b.EFT(t, v, false)
		if !ok {
			panic("schedulers: minCompletion on non-ready task")
		}
		if f < finish-graph.Eps {
			node, start, finish = v, s, f
		}
	}
	return node, start, finish
}

// minMinSchedule runs the MinMin/MaxMin iteration: repeatedly compute
// each ready task's minimum completion time over all nodes, then commit
// the task selected by pickMax (largest MCT for MaxMin, smallest for
// MinMin) to its minimizing node.
func minMinSchedule(inst *graph.Instance, scr *scheduler.Scratch, pickMax bool, out *schedule.Schedule) error {
	b := scr.Builder(inst)
	rs := scr.ReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestStart, bestMCT := 0.0, 0.0
		for _, t := range rs.Ready() {
			v, s, f := minCompletion(b, t)
			better := bestTask == -1
			if !better {
				if pickMax {
					better = f > bestMCT+graph.Eps
				} else {
					better = f < bestMCT-graph.Eps
				}
			}
			if better {
				bestTask, bestNode, bestStart, bestMCT = t, v, s, f
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.ScheduleInto(out)
}

// MinMin (Braun et al.) iteratively selects, among ready tasks, the one
// with the smallest minimum completion time and assigns it to the
// corresponding node. Scheduling complexity is O(|T|^2 |V|).
type MinMin struct{}

// Name implements scheduler.Scheduler.
func (MinMin) Name() string { return "MinMin" }

// Schedule implements scheduler.Scheduler.
func (m MinMin) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(m, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (MinMin) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	return minMinSchedule(inst, scr, false, out)
}

// MaxMin (Braun et al.) iteratively selects, among ready tasks, the one
// with the largest minimum completion time and assigns it to the
// corresponding node. Scheduling complexity is O(|T|^2 |V|).
type MaxMin struct{}

// Name implements scheduler.Scheduler.
func (MaxMin) Name() string { return "MaxMin" }

// Schedule implements scheduler.Scheduler.
func (m MaxMin) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(m, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler.
func (MaxMin) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	return minMinSchedule(inst, scr, true, out)
}

// Duplex (Braun et al.) runs both MinMin and MaxMin and returns whichever
// schedule has the smaller makespan.
type Duplex struct{}

// Name implements scheduler.Scheduler.
func (Duplex) Name() string { return "Duplex" }

// Schedule implements scheduler.Scheduler.
func (d Duplex) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return scheduler.RunScratch(d, inst)
}

// ScheduleScratch implements scheduler.ScratchScheduler. MinMin's
// schedule lands in out first; MaxMin replaces it only on a strict
// improvement, matching the reference tie-break toward MinMin.
func (Duplex) ScheduleScratch(inst *graph.Instance, scr *scheduler.Scratch, out *schedule.Schedule) error {
	if err := minMinSchedule(inst, scr, false, out); err != nil {
		return err
	}
	tmp := scr.AcquireSchedule()
	defer scr.ReleaseSchedule(tmp)
	if err := minMinSchedule(inst, scr, true, tmp); err != nil {
		return err
	}
	if tmp.Makespan() < out.Makespan() {
		out.CopyFrom(tmp)
	}
	return nil
}
