package schedulers

import (
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

func init() {
	scheduler.Register("MinMin", func() scheduler.Scheduler { return MinMin{} })
	scheduler.Register("MaxMin", func() scheduler.Scheduler { return MaxMin{} })
	scheduler.Register("Duplex", func() scheduler.Scheduler { return Duplex{} })
}

// minCompletion returns, for ready task t, the node minimizing its
// completion time given previous decisions, the corresponding start time,
// and that minimum completion time.
func minCompletion(b *schedule.Builder, t int) (node int, start, finish float64) {
	node, start, finish = -1, 0, math.Inf(1)
	for v := 0; v < b.Instance().Net.NumNodes(); v++ {
		s, f, ok := b.EFT(t, v, false)
		if !ok {
			panic("schedulers: minCompletion on non-ready task")
		}
		if f < finish-graph.Eps {
			node, start, finish = v, s, f
		}
	}
	return node, start, finish
}

// minMinSchedule runs the MinMin/MaxMin iteration: repeatedly compute
// each ready task's minimum completion time over all nodes, then commit
// the task selected by pickMax (largest MCT for MaxMin, smallest for
// MinMin) to its minimizing node.
func minMinSchedule(inst *graph.Instance, pickMax bool) (*schedule.Schedule, error) {
	b := schedule.NewBuilder(inst)
	rs := scheduler.NewReadySet(inst.Graph)
	for !rs.Empty() {
		bestTask, bestNode := -1, -1
		bestStart, bestMCT := 0.0, 0.0
		for _, t := range rs.Ready() {
			v, s, f := minCompletion(b, t)
			better := bestTask == -1
			if !better {
				if pickMax {
					better = f > bestMCT+graph.Eps
				} else {
					better = f < bestMCT-graph.Eps
				}
			}
			if better {
				bestTask, bestNode, bestStart, bestMCT = t, v, s, f
			}
		}
		b.Place(bestTask, bestNode, bestStart)
		rs.Complete(bestTask)
	}
	return b.Schedule()
}

// MinMin (Braun et al.) iteratively selects, among ready tasks, the one
// with the smallest minimum completion time and assigns it to the
// corresponding node. Scheduling complexity is O(|T|^2 |V|).
type MinMin struct{}

// Name implements scheduler.Scheduler.
func (MinMin) Name() string { return "MinMin" }

// Schedule implements scheduler.Scheduler.
func (MinMin) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return minMinSchedule(inst, false)
}

// MaxMin (Braun et al.) iteratively selects, among ready tasks, the one
// with the largest minimum completion time and assigns it to the
// corresponding node. Scheduling complexity is O(|T|^2 |V|).
type MaxMin struct{}

// Name implements scheduler.Scheduler.
func (MaxMin) Name() string { return "MaxMin" }

// Schedule implements scheduler.Scheduler.
func (MaxMin) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	return minMinSchedule(inst, true)
}

// Duplex (Braun et al.) runs both MinMin and MaxMin and returns whichever
// schedule has the smaller makespan.
type Duplex struct{}

// Name implements scheduler.Scheduler.
func (Duplex) Name() string { return "Duplex" }

// Schedule implements scheduler.Scheduler.
func (Duplex) Schedule(inst *graph.Instance) (*schedule.Schedule, error) {
	a, err := minMinSchedule(inst, false)
	if err != nil {
		return nil, err
	}
	b, err := minMinSchedule(inst, true)
	if err != nil {
		return nil, err
	}
	if b.Makespan() < a.Makespan() {
		return b, nil
	}
	return a, nil
}
