// Package schedulers implements the 17 task scheduling algorithms listed
// in Table I of the PISA paper: BIL, BruteForce, CPoP, Duplex, ETF,
// FastestNode, FCP, FLB, GDL, HEFT, MaxMin, MCT, MET, MinMin, OLB, SMT,
// and WBA.
//
// Every algorithm implements scheduler.Scheduler and registers itself
// with the scheduler registry under its paper abbreviation. The 15
// polynomial-time algorithms used in the paper's experiments are
// available through Experimental; BruteForce and SMT (exponential time)
// are registered but excluded, exactly as in the paper.
//
// Scratch-aware algorithms (scheduler.ScratchScheduler) read the
// precomputed graph.Tables through the scratch and must treat them as
// authoritative for the instance's current state: the PISA annealer
// mutates instances in place and patches the tables incrementally (the
// staleness contract in graph/tables.go) rather than rebuilding, so a
// scheduler must never cache table-derived values across Schedule calls
// or read the Instance where a table entry exists — the table IS the
// coherent view. scratch_determinism_test.go pins every algorithm
// bit-identical to its table-free reference implementation.
//
// Cross-call memoization is the scratch's job, not the scheduler's: the
// rank accessors (Scratch.UpwardRank/DownwardRank/StaticLevel) are
// memoized per (instance, Tables.Generation), so the baseline scheduler
// of a PISA pair reuses the target's rank computation for free. A new
// scheduler that derives its own priority vector from the tables and
// wants the same reuse must key it on Tables.Generation the same way —
// never on the instance pointer alone, and never by assuming "the
// instance looks unchanged" (in-place perturbation makes that
// undetectable; the generation stamp is the only reliable signal).
package schedulers

import "saga/internal/scheduler"

// ExperimentalNames lists, in the paper's figure order, the 15 algorithms
// used in the benchmarking (Fig 2) and adversarial (Fig 4) experiments.
var ExperimentalNames = []string{
	"BIL", "CPoP", "Duplex", "ETF", "FCP", "FLB", "FastestNode",
	"GDL", "HEFT", "MCT", "MET", "MaxMin", "MinMin", "OLB", "WBA",
}

// AppSpecificNames lists the 6 schedulers used in the Section VII
// application-specific experiments (Figs 10-19).
var AppSpecificNames = []string{
	"CPoP", "FastestNode", "HEFT", "MaxMin", "MinMin", "WBA",
}

// Experimental instantiates the 15 experiment algorithms in paper order.
func Experimental() []scheduler.Scheduler {
	return instantiate(ExperimentalNames)
}

// AppSpecific instantiates the 6 Section VII algorithms.
func AppSpecific() []scheduler.Scheduler {
	return instantiate(AppSpecificNames)
}

func instantiate(names []string) []scheduler.Scheduler {
	out := make([]scheduler.Scheduler, len(names))
	for i, n := range names {
		s, err := scheduler.New(n)
		if err != nil {
			panic(err)
		}
		out[i] = s
	}
	return out
}
