package schedulers

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/scheduler"
)

func TestHEFTInsertionImprovesOverAppend(t *testing.T) {
	// Construct a gap HEFT's insertion can exploit: a high-rank long
	// task and a low-rank short task whose inputs arrive early, with a
	// hole on the fast node before the long task's data arrives. MH uses
	// the same greedy EFT but appends; HEFT must be at least as good
	// here and strictly better on the crafted instance.
	g := graph.NewTaskGraph()
	src := g.AddTask("src", 1)
	long := g.AddTask("long", 4)
	short := g.AddTask("short", 1)
	sink := g.AddTask("sink", 1)
	g.MustAddDep(src, long, 8) // long's data is slow to arrive remotely
	g.MustAddDep(src, short, 0)
	g.MustAddDep(long, sink, 0)
	g.MustAddDep(short, sink, 0)
	net := graph.NewNetwork(2)
	net.SetLink(0, 1, 1)
	inst := graph.NewInstance(g, net)

	heft, _ := scheduler.New("HEFT")
	hs, err := heft.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The short task must have been inserted into an idle gap: it runs
	// in parallel with (or before) the long task rather than after it.
	if hs.ByTask[short].Start >= hs.ByTask[long].End-graph.Eps &&
		hs.ByTask[short].Node == hs.ByTask[long].Node {
		t.Fatalf("HEFT appended instead of inserting: short [%v,%v], long [%v,%v]",
			hs.ByTask[short].Start, hs.ByTask[short].End,
			hs.ByTask[long].Start, hs.ByTask[long].End)
	}
}

func TestHEFTSchedulesByRankOrder(t *testing.T) {
	// Independent tasks with distinct costs: upward rank = avg exec, so
	// HEFT must place the most expensive task first (it gets the time-0
	// slot on the fastest node).
	g := graph.NewTaskGraph()
	small := g.AddTask("small", 1)
	big := g.AddTask("big", 10)
	mid := g.AddTask("mid", 5)
	net := graph.NewNetwork(1)
	inst := graph.NewInstance(g, net)
	heft, _ := scheduler.New("HEFT")
	hs, err := heft.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !(hs.ByTask[big].Start < hs.ByTask[mid].Start &&
		hs.ByTask[mid].Start < hs.ByTask[small].Start) {
		t.Fatalf("HEFT order wrong: big %v, mid %v, small %v",
			hs.ByTask[big].Start, hs.ByTask[mid].Start, hs.ByTask[small].Start)
	}
}

func TestCPoPCriticalPathWithTies(t *testing.T) {
	// Two identical chains: both are critical (tie within Eps). All four
	// tasks are then CP tasks and must share the CP node — CPoP
	// serializes both chains.
	g := graph.NewTaskGraph()
	a1 := g.AddTask("a1", 2)
	b1 := g.AddTask("b1", 2)
	a2 := g.AddTask("a2", 2)
	b2 := g.AddTask("b2", 2)
	g.MustAddDep(a1, b1, 1)
	g.MustAddDep(a2, b2, 1)
	net := graph.NewNetwork(2)
	net.Speeds[1] = 2
	inst := graph.NewInstance(g, net)
	cpop, _ := scheduler.New("CPoP")
	cs, err := cpop.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	for tk := range cs.ByTask {
		if cs.ByTask[tk].Node != 1 {
			t.Fatalf("tied critical-path task %d not on the CP node", tk)
		}
	}
}

func TestCPoPNonCriticalTasksMaySpread(t *testing.T) {
	// A critical chain plus a cheap independent task: the cheap task is
	// off the critical path and should use EFT placement — with the CP
	// node busy, it lands elsewhere.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddDep(a, b, 1)
	cheap := g.AddTask("cheap", 1)
	net := graph.NewNetwork(2)
	net.Speeds[0] = 2 // CP node
	inst := graph.NewInstance(g, net)
	cpop, _ := scheduler.New("CPoP")
	cs, err := cpop.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ByTask[a].Node != 0 || cs.ByTask[b].Node != 0 {
		t.Fatal("critical chain not on the fastest node")
	}
	if cs.ByTask[cheap].Node == 0 && cs.ByTask[cheap].Start > graph.Eps {
		t.Fatalf("off-path task queued on the CP node at %v instead of using the idle node",
			cs.ByTask[cheap].Start)
	}
}

func TestHEFTvsCPoPBothDirectionsExist(t *testing.T) {
	// The Section VI-B premise: neither algorithm dominates. The frozen
	// case-study instances witness both directions.
	heft, _ := scheduler.New("HEFT")
	cpop, _ := scheduler.New("CPoP")

	type tc struct {
		inst       *graph.Instance
		worse      scheduler.Scheduler
		better     scheduler.Scheduler
		worseLabel string
	}
	// Reuse the datasets package's frozen instances indirectly via the
	// experiments tests; here, build minimal fresh witnesses.
	fork := graph.NewTaskGraph()
	b := fork.AddTask("B", 0)
	a := fork.AddTask("A", 0.8)
	c := fork.AddTask("C", 0.8)
	fork.MustAddDep(b, a, 0.0)
	fork.MustAddDep(b, c, 0.8)
	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 0.3, 0.7, 0.5
	net.SetLink(0, 1, 0.6)
	net.SetLink(0, 2, 0.1)
	net.SetLink(1, 2, 0.4)
	heftLoses := graph.NewInstance(fork, net)

	for _, c2 := range []tc{{inst: heftLoses, worse: heft, better: cpop, worseLabel: "HEFT"}} {
		ws, err := c2.worse.Schedule(c2.inst)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := c2.better.Schedule(c2.inst)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Makespan() <= bs.Makespan()+graph.Eps {
			t.Fatalf("%s was expected to lose: %v vs %v", c2.worseLabel, ws.Makespan(), bs.Makespan())
		}
	}
	_ = a
}
