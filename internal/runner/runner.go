// Package runner is the bounded deterministic worker pool behind every
// experiment sweep. The paper's evaluation grids — the (dataset ×
// scheduler) benchmarking of Fig 2, the (target × base) PISA grids of
// Figs 4 and 10-19, the family and robustness sampling loops — are
// embarrassingly parallel, but trustworthy parallel evaluation must be
// provably identical to the sequential reference. runner guarantees that
// by construction:
//
//   - results are written by cell position, never by completion order;
//   - random seeds are derived from cell position (CellSeed), so the
//     stream a cell consumes does not depend on scheduling;
//   - workers only contend for the next index, never for cell data.
//
// Consequently Map and Grid return bit-identical results for any worker
// count, including 1, which the determinism suite in package experiments
// asserts against the hand-written sequential drivers.
//
// Long sweeps can persist completed cells through the Checkpoint hook
// (implemented by serialize.Checkpoint): each finished cell is stored as
// JSON, and a resumed run skips every cell already on disk.
//
// Sweeps also scale past one process: Options.Shard restricts a run to
// the cells with k % Count == Index while seeds stay derived from the
// global cell position, so the union of the shards' checkpoint stores
// (serialize.MergeCheckpoints) is bit-identical to a single-process run.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
)

// Options configures a Map or Grid sweep.
type Options struct {
	// Workers bounds the number of concurrent goroutines. 0 (or any
	// non-positive value) means GOMAXPROCS; 1 runs the cells strictly in
	// order on the calling pattern of a sequential loop.
	Workers int
	// Progress, when non-nil, is called after every completed cell with
	// the running completion count and the total cell count. Calls are
	// serialized and done is strictly increasing.
	Progress func(done, total int)
	// Checkpoint, when non-nil, persists completed cells and seeds a
	// resumed sweep: cells found in the store are decoded instead of
	// recomputed. Cell results must round-trip through encoding/json.
	Checkpoint Checkpoint
	// Shard, when enabled, restricts the sweep to this process's slice of
	// the cells (see ShardSpec). The zero value runs every cell.
	Shard ShardSpec
	// Include, when non-nil, further restricts the sweep to the cells for
	// which it returns true — the dynamic counterpart of Shard, used by
	// the coordinator protocol (internal/coord) to run exactly one leased
	// cell set. Like sharding, it never changes what an included cell
	// computes: indices and seeds stay global, so a leased cell is
	// bit-identical to the same cell of a full run. Excluded cells keep
	// their zero values (unless the checkpoint store supplies them) and
	// are not counted in Progress totals.
	Include func(index int) bool
	// Context, when non-nil, aborts the sweep on cancellation: no new
	// cells are dispatched once the context is done, in-flight cells run
	// to completion (and are still checkpointed — a cancelled run leaves
	// a resumable store, never a corrupt one), and Map returns the
	// context's error. Cancellation is how a dispatched sweep propagates
	// a client disconnect down to the cell loop: the daemon cancels, the
	// worker's lease context fires, and the worker stops mid-lease
	// without delivering partial work it no longer owns.
	Context context.Context
	// OnCellError, when non-nil, turns per-cell failures from sweep
	// aborts into reports: a failing cell (error or recovered panic) is
	// passed to the callback, keeps its zero value, is not checkpointed,
	// and counts toward Progress; the sweep continues. Calls are
	// serialized by the pool. Checkpoint I/O failures still abort the
	// sweep — they are infrastructure errors, not cell results.
	OnCellError func(index int, err error)
}

// Owns reports whether this run computes cell k: the cell must belong
// to the shard and pass the Include filter. Drivers use it to tell a
// legitimately absent cell (another shard's, or outside the lease) from
// a missing result.
func (o Options) Owns(k int) bool {
	return o.Shard.Owns(k) && (o.Include == nil || o.Include(k))
}

// ShardSpec assigns one process its slice of a distributed sweep: a
// shard runs only the cells whose index k satisfies k % Count == Index.
// Cell indices — and with them CellSeed and the checkpoint keys — stay
// global, so every shard computes exactly the cells (and bit-exact
// values) the single-process run would, and the union of all Count
// shards covers the sweep with no overlap. The zero value disables
// sharding.
//
// A sharded Map returns a partial result: non-owned cells hold zero
// values (unless the checkpoint store already supplied them). Shards are
// combined through their checkpoint stores — run each shard with its own
// store, merge with serialize.MergeCheckpoints, and resume any complete
// run from the merged store.
type ShardSpec struct {
	Index int
	Count int
}

// Enabled reports whether the spec restricts the sweep (Count > 0).
// Count == 1 is a valid degenerate shard owning every cell.
func (s ShardSpec) Enabled() bool { return s.Count > 0 }

// Owns reports whether cell k belongs to this shard. A disabled spec
// owns every cell.
func (s ShardSpec) Owns(k int) bool { return !s.Enabled() || k%s.Count == s.Index }

// Validate rejects malformed specs (negative Count, Index outside
// [0, Count) when enabled).
func (s ShardSpec) Validate() error {
	if s.Count < 0 {
		return fmt.Errorf("runner: shard count %d is negative", s.Count)
	}
	if s.Enabled() && (s.Index < 0 || s.Index >= s.Count) {
		return fmt.Errorf("runner: shard index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

// String renders the spec in the I/C form ParseShard accepts.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShard parses the "index/count" form used by CLI -shard flags
// (e.g. "2/8" is the third of eight shards) into a validated, enabled
// spec.
func ParseShard(text string) (ShardSpec, error) {
	idx, cnt, ok := strings.Cut(text, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("runner: shard %q is not of the form index/count (e.g. 2/8)", text)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("runner: shard index %q: %v", idx, err)
	}
	c, err := strconv.Atoi(cnt)
	if err != nil {
		return ShardSpec{}, fmt.Errorf("runner: shard count %q: %v", cnt, err)
	}
	s := ShardSpec{Index: i, Count: c}
	if c == 0 {
		return ShardSpec{}, fmt.Errorf("runner: shard count must be at least 1")
	}
	if err := s.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return s, nil
}

// Checkpoint is the persistence hook behind Options.Checkpoint.
// serialize.Checkpoint is the file-backed implementation.
type Checkpoint interface {
	// Load returns the previously stored cells, keyed by cell index. A
	// store that does not exist yet returns an empty (or nil) map.
	Load() (map[int]json.RawMessage, error)
	// Store records one completed cell. It may be called concurrently.
	Store(index int, cell json.RawMessage) error
	// Flush makes every stored cell durable.
	Flush() error
}

// OffsetCheckpoint returns a view of parent whose cell k is stored at
// parent index offset+k. It lets one physical store serve a driver that
// runs several sweeps in sequence (AppSpecificRun's benchmarking and
// PISA phases): give each sweep a disjoint index window and the cells
// never collide. Load returns every parent cell shifted by -offset;
// cells belonging to other windows land outside [0, n) and are skipped
// by Map's stale-cell filter.
func OffsetCheckpoint(parent Checkpoint, offset int) Checkpoint {
	return &offsetCheckpoint{parent: parent, offset: offset}
}

type offsetCheckpoint struct {
	parent Checkpoint
	offset int
}

func (c *offsetCheckpoint) Load() (map[int]json.RawMessage, error) {
	cells, err := c.parent.Load()
	if err != nil {
		return nil, err
	}
	out := make(map[int]json.RawMessage, len(cells))
	for k, raw := range cells {
		out[k-c.offset] = raw
	}
	return out, nil
}

func (c *offsetCheckpoint) Store(index int, cell json.RawMessage) error {
	return c.parent.Store(index+c.offset, cell)
}

func (c *offsetCheckpoint) Flush() error { return c.parent.Flush() }

// CellError reports the failure of one cell of a sweep. With more than
// one worker several cells may fail before the pool stops; Map returns
// the failure with the lowest cell index, which for one worker is
// exactly the error the sequential loop would have returned.
type CellError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *CellError) Error() string { return fmt.Sprintf("runner: cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cell failure to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// CellSeed derives a cell's random seed from the sweep's base seed and
// the cell's sequential position. It matches the seed sequence of the
// sequential drivers (base+1 for the first cell, base+2 for the second,
// ...), which is what makes parallel grids bit-identical to them.
func CellSeed(base uint64, index int) uint64 {
	return base + uint64(index) + 1
}

// OffDiagonal maps a sequential position k to the k-th off-diagonal cell
// (i, j) of an n×n grid in row-major order — the enumeration every PISA
// grid uses (the diagonal pits a scheduler against itself and is
// skipped). There are n·(n-1) such cells.
func OffDiagonal(k, n int) (i, j int) {
	i = k / (n - 1)
	j = k % (n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// Map evaluates fn for every cell index in [0, n) using a bounded worker
// pool and returns the results in index order. Panics inside fn are
// recovered and reported as that cell's error. After the first failure
// no new cells are dispatched; the lowest-indexed failure is returned as
// a *CellError. Results are independent of Options.Workers.
func Map[T any](n int, opts Options, fn func(index int) (T, error)) ([]T, error) {
	return MapState(n, opts,
		func() struct{} { return struct{}{} },
		func(index int, _ struct{}) (T, error) { return fn(index) })
}

// MapState is Map with per-worker state: newState runs once in each
// worker goroutine and the value it returns is passed to every cell that
// worker executes. It exists so sweeps can reuse expensive per-worker
// buffers — a scheduler.Scratch, arena allocations — with zero
// cross-worker sharing by construction (each worker owns its state; no
// cell ever sees another worker's). State must not influence results:
// cells still receive position-derived seeds, so output remains
// bit-identical for every worker count.
func MapState[T, S any](n int, opts Options, newState func() S, fn func(index int, state S) (T, error)) ([]T, error) {
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}

	// done marks cells this process will not compute: another shard's
	// (or another lease's) cells up front, then everything the checkpoint
	// already holds. total counts the cells this run owns — the
	// denominator Progress reports.
	done := make([]bool, n)
	completed := 0
	total := n
	if opts.Shard.Enabled() || opts.Include != nil {
		for k := 0; k < n; k++ {
			if !opts.Owns(k) {
				done[k] = true
				total--
			}
		}
	}
	if opts.Checkpoint != nil {
		cells, err := opts.Checkpoint.Load()
		if err != nil {
			return nil, fmt.Errorf("runner: checkpoint load: %w", err)
		}
		for k, raw := range cells {
			if k < 0 || k >= n {
				continue // a stale store from a differently-sized sweep
			}
			// Cells outside this shard still decode (a merged store must
			// yield the full result) but never count as shard progress.
			if err := json.Unmarshal(raw, &out[k]); err != nil {
				return nil, fmt.Errorf("runner: checkpoint cell %d: %w", k, err)
			}
			if !done[k] {
				done[k] = true
				completed++
			}
		}
	}
	// The baseline call: every sweep with owned cells reports its
	// starting position exactly once before any cell computes — the cells
	// a resumed run loaded from the store, or a bare 0. Consumers
	// (ProgressPrinter, LeaseProgress) rely on the first call of a sweep
	// being this baseline, never a computed cell.
	if opts.Progress != nil && total > 0 {
		opts.Progress(completed, total)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int
		errs []*CellError
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				if opts.Context != nil && opts.Context.Err() != nil {
					return
				}
				mu.Lock()
				for next < n && done[next] {
					next++
				}
				if len(errs) > 0 || next >= n {
					mu.Unlock()
					return
				}
				k := next
				next++
				mu.Unlock()

				v, err := runCell(k, state, fn)
				if err != nil && opts.OnCellError != nil {
					// Graceful degradation: the failure is reported, the
					// cell stays zero-valued and unstored, and the sweep
					// keeps going. The cell still counts as handled so a
					// lease's progress can reach its total.
					mu.Lock()
					opts.OnCellError(k, err)
					completed++
					if opts.Progress != nil {
						opts.Progress(completed, total)
					}
					mu.Unlock()
					continue
				}
				if err == nil && opts.Checkpoint != nil {
					var raw json.RawMessage
					if raw, err = json.Marshal(v); err == nil {
						err = opts.Checkpoint.Store(k, raw)
					}
				}
				mu.Lock()
				if err != nil {
					errs = append(errs, &CellError{Index: k, Err: err})
					mu.Unlock()
					return
				}
				out[k] = v
				completed++
				if opts.Progress != nil {
					opts.Progress(completed, total)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if opts.Checkpoint != nil {
		if err := opts.Checkpoint.Flush(); err != nil && len(errs) == 0 {
			return nil, fmt.Errorf("runner: checkpoint flush: %w", err)
		}
	}
	if len(errs) > 0 {
		first := errs[0]
		for _, e := range errs[1:] {
			if e.Index < first.Index {
				first = e
			}
		}
		return nil, first
	}
	if opts.Context != nil {
		if err := opts.Context.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runCell invokes fn for one cell, converting a panic into an error so a
// single misbehaving cell cannot take down the whole sweep (or leak the
// pool's other workers).
func runCell[T, S any](k int, state S, fn func(int, S) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return fn(k, state)
}

// Grid evaluates fn over every (row, col) cell of a rows×cols grid and
// returns the results as a row-major matrix. The flat index k passed to
// fn is the cell's sequential position, ready for CellSeed.
func Grid[T any](rows, cols int, opts Options, fn func(row, col, k int) (T, error)) ([][]T, error) {
	flat, err := Map(rows*cols, opts, func(k int) (T, error) {
		return fn(k/cols, k%cols, k)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, rows)
	for i := range out {
		out[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out, nil
}
