package runner

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestParseShard(t *testing.T) {
	good := map[string]ShardSpec{
		"0/1": {Index: 0, Count: 1},
		"2/8": {Index: 2, Count: 8},
		"7/8": {Index: 7, Count: 8},
	}
	for text, want := range good {
		got, err := ParseShard(text)
		if err != nil || got != want {
			t.Fatalf("ParseShard(%q) = %v, %v; want %v", text, got, err, want)
		}
		if got.String() != text {
			t.Fatalf("ParseShard(%q).String() = %q", text, got.String())
		}
	}
	for _, text := range []string{"", "3", "a/b", "1.5/4", "-1/4", "4/4", "8/4", "0/0", "0/-2"} {
		if s, err := ParseShard(text); err == nil {
			t.Fatalf("ParseShard(%q) accepted as %v", text, s)
		}
	}
}

func TestShardSpecOwnership(t *testing.T) {
	var whole ShardSpec
	if whole.Enabled() {
		t.Fatal("zero ShardSpec is enabled")
	}
	for k := 0; k < 10; k++ {
		if !whole.Owns(k) {
			t.Fatalf("disabled shard does not own cell %d", k)
		}
	}
	// Every cell is owned by exactly one of the Count shards.
	const n, count = 23, 4
	owners := make([]int, n)
	for i := 0; i < count; i++ {
		s := ShardSpec{Index: i, Count: count}
		for k := 0; k < n; k++ {
			if s.Owns(k) {
				owners[k]++
			}
		}
	}
	for k, c := range owners {
		if c != 1 {
			t.Fatalf("cell %d owned by %d shards", k, c)
		}
	}
}

func TestMapRejectsInvalidShard(t *testing.T) {
	for _, s := range []ShardSpec{{Index: -1, Count: 4}, {Index: 4, Count: 4}, {Index: 0, Count: -1}} {
		_, err := Map(8, Options{Shard: s}, func(k int) (int, error) { return k, nil })
		if err == nil {
			t.Fatalf("shard %v accepted", s)
		}
	}
}

func TestMapShardedRunsOnlyOwnedCells(t *testing.T) {
	const n, count = 17, 3
	for index := 0; index < count; index++ {
		shard := ShardSpec{Index: index, Count: count}
		var mu sync.Mutex
		ran := map[int]bool{}
		out, err := Map(n, Options{Workers: 4, Shard: shard}, func(k int) (float64, error) {
			mu.Lock()
			ran[k] = true
			mu.Unlock()
			return cellValue(k), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if ran[k] != shard.Owns(k) {
				t.Fatalf("shard %v: cell %d ran=%v owns=%v", shard, k, ran[k], shard.Owns(k))
			}
			want := 0.0
			if shard.Owns(k) {
				want = cellValue(k) // global position seed, not shard-local
			}
			if out[k] != want {
				t.Fatalf("shard %v: cell %d = %v, want %v", shard, k, out[k], want)
			}
		}
	}
}

// TestMapShardedProgressCountsOwnedCells pins the Progress contract for
// shards: the total is the shard's cell count, not the sweep's.
func TestMapShardedProgressCountsOwnedCells(t *testing.T) {
	const n = 10
	shard := ShardSpec{Index: 1, Count: 4} // owns cells 1, 5, 9
	var calls [][2]int
	_, err := Map(n, Options{Workers: 1, Shard: shard, Progress: func(done, total int) {
		calls = append(calls, [2]int{done, total})
	}}, func(k int) (int, error) { return k, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 3}, {1, 3}, {2, 3}, {3, 3}} // baseline, then one per owned cell
	if len(calls) != len(want) {
		t.Fatalf("progress calls %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("progress calls %v, want %v", calls, want)
		}
	}
}

// TestMapShardedProgressPrinterTotals wires the real ProgressPrinter —
// exactly as the CLIs' -progress flags do — into a sharded Map and pins
// the printed totals end to end: every line must report the shard's
// owned-cell count as its denominator, never the full sweep's. (The
// runner already computes the shard-local total; this guards the whole
// callback path a worker actually runs through.)
func TestMapShardedProgressPrinterTotals(t *testing.T) {
	const n = 10
	shard := ShardSpec{Index: 1, Count: 4} // owns cells 1, 5, 9
	var buf bytes.Buffer
	_, err := Map(n, Options{
		Workers:  2,
		Shard:    shard,
		Progress: ProgressPrinter(&buf, "worker test "+shard.String()),
	}, func(k int) (int, error) { return k, nil })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// The printer rate-limits mid-sweep lines, so the exact count depends
	// on how fast the cells land; the baseline and the completion line
	// always survive, and 4 (baseline + one per owned cell) is the cap.
	if len(lines) < 2 || len(lines) > 4 {
		t.Fatalf("printed %d lines, want 2-4 (baseline + rate-limited cells + completion):\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "worker test 1/4: ") {
			t.Fatalf("line %d missing label: %q", i, line)
		}
		if !strings.Contains(line, "/3 cells") {
			t.Fatalf("line %d does not count against the shard's 3 owned cells: %q", i, line)
		}
		if strings.Contains(line, "/10") {
			t.Fatalf("line %d reports the unsharded total: %q", i, line)
		}
	}
	if lines[0] != "worker test 1/4: 0/3 cells" {
		t.Fatalf("baseline = %q, want the shard's starting position", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "3/3 cells") || !strings.Contains(last, "done in") {
		t.Fatalf("final line %q does not report completion", last)
	}
}

// TestMapShardUnionResumesComplete is the in-process model of the
// distributed protocol: shards write disjoint cells to their stores, the
// union store resumes a full run without recomputing anything, and the
// result is bit-identical to the unsharded reference.
func TestMapShardUnionResumesComplete(t *testing.T) {
	const n, count = 29, 4
	want, err := Map(n, Options{Workers: 1}, func(k int) (float64, error) {
		return cellValue(k), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	union := newMemCheckpoint()
	for index := 0; index < count; index++ {
		ck := newMemCheckpoint()
		_, err := Map(n, Options{Workers: 3, Shard: ShardSpec{Index: index, Count: count}, Checkpoint: ck},
			func(k int) (float64, error) { return cellValue(k), nil })
		if err != nil {
			t.Fatal(err)
		}
		shard := ShardSpec{Index: index, Count: count}
		for k, raw := range ck.cells {
			if !shard.Owns(k) {
				t.Fatalf("shard %v stored foreign cell %d", shard, k)
			}
			if _, dup := union.cells[k]; dup {
				t.Fatalf("cell %d stored by two shards", k)
			}
			union.cells[k] = raw
		}
	}
	if len(union.cells) != n {
		t.Fatalf("union covers %d of %d cells", len(union.cells), n)
	}

	recomputed := false
	got, err := Map(n, Options{Workers: 2, Checkpoint: union}, func(k int) (float64, error) {
		recomputed = true
		return cellValue(k), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed {
		t.Fatal("resume from the union store recomputed cells")
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("cell %d = %v, want %v", k, got[k], want[k])
		}
	}
}

// TestMapShardedResumeFromMergedStore checks the reverse direction: a
// sharded run handed a complete (merged) store decodes even cells it
// does not own, so resuming a finished sweep is a no-op for any shard.
func TestMapShardedResumeFromMergedStore(t *testing.T) {
	const n = 12
	full := newMemCheckpoint()
	for k := 0; k < n; k++ {
		raw, _ := json.Marshal(cellValue(k))
		full.cells[k] = raw
	}
	ran := false
	out, err := Map(n, Options{Shard: ShardSpec{Index: 0, Count: 3}, Checkpoint: full},
		func(k int) (float64, error) { ran = true; return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("complete store still recomputed cells")
	}
	for k := 0; k < n; k++ {
		if out[k] != cellValue(k) {
			t.Fatalf("cell %d = %v, want %v", k, out[k], cellValue(k))
		}
	}
}

func TestMapShardOwningNothing(t *testing.T) {
	// A shard past the cell count owns nothing and must return cleanly.
	out, err := Map(3, Options{Shard: ShardSpec{Index: 7, Count: 8}}, func(k int) (int, error) {
		t.Fatalf("cell %d ran", k)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v != 0 {
			t.Fatalf("cell %d = %d", k, v)
		}
	}
}

func TestShardErrorMentionsForm(t *testing.T) {
	_, err := ParseShard("nope")
	if err == nil || !strings.Contains(err.Error(), "index/count") {
		t.Fatalf("unhelpful parse error: %v", err)
	}
}
