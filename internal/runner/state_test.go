package runner

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// memCheckpoint is an in-memory Checkpoint for tests.
type memCheckpoint struct {
	mu    sync.Mutex
	cells map[int]json.RawMessage
}

func newMemCheckpoint() *memCheckpoint {
	return &memCheckpoint{cells: map[int]json.RawMessage{}}
}

func (m *memCheckpoint) Load() (map[int]json.RawMessage, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]json.RawMessage, len(m.cells))
	for k, v := range m.cells {
		out[k] = v
	}
	return out, nil
}

func (m *memCheckpoint) Store(index int, cell json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[index] = cell
	return nil
}

func (m *memCheckpoint) Flush() error { return nil }

// TestMapStatePerWorkerState proves every worker goroutine receives its
// own state value and that state reuse does not leak across cells of
// different workers: each state records the cells it served, and the
// union must partition [0, n).
func TestMapStatePerWorkerState(t *testing.T) {
	type state struct{ cells []int }
	var mu sync.Mutex
	var states []*state
	n := 64
	out, err := MapState(n, Options{Workers: 4},
		func() *state {
			s := &state{}
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
			return s
		},
		func(k int, s *state) (int, error) {
			s.cells = append(s.cells, k)
			return k * k, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v != k*k {
			t.Fatalf("cell %d = %d, want %d", k, v, k*k)
		}
	}
	if len(states) != 4 {
		t.Fatalf("newState ran %d times, want once per worker (4)", len(states))
	}
	seen := make([]bool, n)
	for _, s := range states {
		for _, k := range s.cells {
			if seen[k] {
				t.Fatalf("cell %d served by two workers", k)
			}
			seen[k] = true
		}
	}
	for k, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never served", k)
		}
	}
}

// TestOffsetCheckpointPartitionsOneStore drives two sweeps of different
// sizes against one physical store through disjoint index windows — the
// AppSpecificRun layout — and checks that neither sweep sees the other's
// cells and both resume from their own.
func TestOffsetCheckpointPartitionsOneStore(t *testing.T) {
	store := newMemCheckpoint()
	nA, nB := 5, 12
	runs := 0
	// First sweep (window [0, nA)) completes fully.
	a1, err := Map(nA, Options{Workers: 1, Checkpoint: OffsetCheckpoint(store, 0)},
		func(k int) (int, error) { runs++; return 100 + k, nil })
	if err != nil {
		t.Fatal(err)
	}
	if runs != nA {
		t.Fatalf("sweep A ran %d cells, want %d", runs, nA)
	}
	// Second sweep (window [nA, nA+nB)) must not decode sweep A's cells.
	runs = 0
	b1, err := Map(nB, Options{Workers: 1, Checkpoint: OffsetCheckpoint(store, nA)},
		func(k int) (int, error) { runs++; return 200 + k, nil })
	if err != nil {
		t.Fatal(err)
	}
	if runs != nB {
		t.Fatalf("sweep B ran %d cells, want %d (A's cells leaked in)", runs, nB)
	}
	// Resume both sweeps: every cell must come from the store.
	a2, err := Map(nA, Options{Workers: 1, Checkpoint: OffsetCheckpoint(store, 0)},
		func(k int) (int, error) { return 0, fmt.Errorf("cell %d recomputed on resume", k) })
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Map(nB, Options{Workers: 1, Checkpoint: OffsetCheckpoint(store, nA)},
		func(k int) (int, error) { return 0, fmt.Errorf("cell %d recomputed on resume", k) })
	if err != nil {
		t.Fatal(err)
	}
	for k := range a1 {
		if a1[k] != a2[k] {
			t.Fatalf("sweep A cell %d: %d resumed as %d", k, a1[k], a2[k])
		}
	}
	for k := range b1 {
		if b1[k] != b2[k] {
			t.Fatalf("sweep B cell %d: %d resumed as %d", k, b1[k], b2[k])
		}
	}
}
