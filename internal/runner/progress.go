package runner

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// LeaseProgress pins progress totals for dynamically leased work: a
// coordinator worker (internal/coord) runs one small Map per lease, but
// its operator wants one monotonic count against the sweep's full cell
// total — not a fresh 0/leaseSize readout per lease, and no
// double-counting when a lease resumes cells the worker already
// computed (or when a multi-phase driver reloads a shared store).
//
// Construct one per worker session with the sweep's total, then pass a
// fresh Sweep() callback into every Map run (every lease). Each inner
// sweep's first callback is its baseline — Map guarantees the first
// call reports the load/restriction state before any cell computes —
// and only cells completed past that baseline advance the pinned
// counter. A mid-sweep regression of done re-baselines, mirroring
// ProgressPrinter's multi-phase treatment, so drivers that multiplex
// several Maps through one Options (AppSpecificRun) stay counted
// correctly too.
type LeaseProgress struct {
	mu    sync.Mutex
	total int
	done  int
	p     func(done, total int)
}

// NewLeaseProgress wraps p — typically a ProgressPrinter — so every
// report carries the pinned total and the cumulative count of cells
// this worker computed across all its leases.
func NewLeaseProgress(total int, p func(done, total int)) *LeaseProgress {
	return &LeaseProgress{total: total, p: p}
}

// Done returns the cumulative number of cells counted so far.
func (lp *LeaseProgress) Done() int {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.done
}

// Sweep returns a Progress callback for one inner sweep (one lease).
// Do not share one callback across sweeps: the baseline is per-sweep.
func (lp *LeaseProgress) Sweep() func(done, total int) {
	started := false
	last := 0
	return func(done, _ int) {
		lp.mu.Lock()
		defer lp.mu.Unlock()
		if !started || done < last {
			// Baseline: the sweep's opening report (loaded cells, or 0),
			// or a new phase of a multi-Map driver. Nothing new computed.
			started = true
			last = done
			lp.p(lp.done, lp.total)
			return
		}
		lp.done += done - last
		last = done
		lp.p(lp.done, lp.total)
	}
}

// ProgressPrinter returns a Progress callback that reports each
// completed cell to w with completion count, throughput, and a
// wall-clock ETA:
//
//	fig4: 120/380 cells (14.2 cells/s, ETA 18s)
//
// The first callback only establishes the measurement baseline and
// prints the bare count — for a resumed sweep that first call reports
// the cells loaded from the checkpoint store in one burst, so folding
// it into the rate would wreck the ETA. Every later line therefore
// reports the throughput of the cells this process actually computed.
// cmd/figures and cmd/saga share this one implementation, so every CLI
// reports progress identically.
func ProgressPrinter(w io.Writer, label string) func(done, total int) {
	return progressPrinter(w, label, time.Now)
}

// progressPrinter is ProgressPrinter with an injectable clock for
// tests.
//
// A rate exists only once this process has both computed at least one
// cell past the baseline and let measurable wall clock pass
// (minRateElapsed); until then the line carries "ETA --:--" instead of
// the NaN, +Inf, or astronomically scaled figures that a zero-cell or
// zero-elapsed division would print (cells routinely land within the
// clock's resolution, and a resumed sweep's first computed cell can
// tick before the clock does).
//
// Output is rate-limited to one line per maxLineInterval: a scale-tier
// sweep completes thousands of cheap cells per second, and printing
// each one turns the progress report into megabytes of scrollback (and
// a measurable cost when the writer is a terminal or a log shipper).
// Two kinds of line bypass the limiter — baselines, because they anchor
// the phase a reader (and LeaseProgress) interprets everything else
// against, and completion lines (done ≥ total), because the final state
// of a sweep must always land.
func progressPrinter(w io.Writer, label string, now func() time.Time) func(done, total int) {
	const minRateElapsed = 1e-6 // seconds; below this the clock hasn't meaningfully ticked
	const maxLineInterval = 100 * time.Millisecond
	base, baseTotal, lastDone := 0, 0, 0
	var baseT, lastPrint time.Time
	baseSet := false
	return func(done, total int) {
		// Re-baseline when the sweep evidently changed under the same
		// callback: done is strictly increasing within one sweep, so a
		// regression — or a different total — means a new phase started
		// (AppSpecificRun drives its benchmark and PISA sweeps through one
		// Options, and consecutive phases can even share a total), and
		// folding the previous phase's cells or elapsed time into the
		// rate would corrupt every line of the new one.
		if baseSet && (done < lastDone || total != baseTotal) {
			baseSet = false
		}
		lastDone = done
		if !baseSet {
			base, baseTotal, baseT, baseSet = done, total, now(), true
			lastPrint = baseT
			fmt.Fprintf(w, "%s: %d/%d cells\n", label, done, total)
			return
		}
		t := now()
		if done < total && t.Sub(lastPrint) < maxLineInterval {
			return // rate-limited; the next surviving line carries the count
		}
		lastPrint = t
		elapsed := t.Sub(baseT).Seconds()
		computed := done - base
		haveRate := computed > 0 && elapsed >= minRateElapsed
		if done >= total {
			if !haveRate {
				fmt.Fprintf(w, "%s: %d/%d cells (done in %s)\n",
					label, done, total, formatDuration(math.Max(elapsed, 0)))
				return
			}
			fmt.Fprintf(w, "%s: %d/%d cells (%.1f cells/s, done in %s)\n",
				label, done, total, float64(computed)/elapsed, formatDuration(elapsed))
			return
		}
		if !haveRate {
			fmt.Fprintf(w, "%s: %d/%d cells (ETA --:--)\n", label, done, total)
			return
		}
		rate := float64(computed) / elapsed
		eta := float64(total-done) / rate
		if math.IsNaN(eta) || math.IsInf(eta, 0) {
			fmt.Fprintf(w, "%s: %d/%d cells (ETA --:--)\n", label, done, total)
			return
		}
		fmt.Fprintf(w, "%s: %d/%d cells (%.1f cells/s, ETA %s)\n",
			label, done, total, rate, formatDuration(eta))
	}
}

// formatDuration renders seconds as a compact h/m/s duration ("42s",
// "3m05s", "2h07m"). Sub-second remainders round up so an ETA never
// reads "0s" while work remains.
func formatDuration(seconds float64) string {
	s := int(seconds + 0.999999)
	if s < 0 {
		s = 0
	}
	switch {
	case s >= 3600:
		return fmt.Sprintf("%dh%02dm", s/3600, (s%3600)/60)
	case s >= 60:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%ds", s)
	}
}
