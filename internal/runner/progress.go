package runner

import (
	"fmt"
	"io"
	"time"
)

// ProgressPrinter returns a Progress callback that reports each
// completed cell to w with completion count, throughput, and a
// wall-clock ETA:
//
//	fig4: 120/380 cells (14.2 cells/s, ETA 18s)
//
// The first callback only establishes the measurement baseline and
// prints the bare count — for a resumed sweep that first call reports
// the cells loaded from the checkpoint store in one burst, so folding
// it into the rate would wreck the ETA. Every later line therefore
// reports the throughput of the cells this process actually computed.
// cmd/figures and cmd/saga share this one implementation, so every CLI
// reports progress identically.
func ProgressPrinter(w io.Writer, label string) func(done, total int) {
	return progressPrinter(w, label, time.Now)
}

// progressPrinter is ProgressPrinter with an injectable clock for
// tests.
func progressPrinter(w io.Writer, label string, now func() time.Time) func(done, total int) {
	base := 0
	var baseT time.Time
	baseSet := false
	return func(done, total int) {
		if !baseSet {
			base, baseT, baseSet = done, now(), true
			fmt.Fprintf(w, "%s: %d/%d cells\n", label, done, total)
			return
		}
		elapsed := now().Sub(baseT).Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9 // cells can land within the clock's resolution
		}
		rate := float64(done-base) / elapsed
		if done >= total {
			fmt.Fprintf(w, "%s: %d/%d cells (%.1f cells/s, done in %s)\n",
				label, done, total, rate, formatDuration(elapsed))
			return
		}
		if rate <= 0 {
			fmt.Fprintf(w, "%s: %d/%d cells\n", label, done, total)
			return
		}
		eta := float64(total-done) / rate
		fmt.Fprintf(w, "%s: %d/%d cells (%.1f cells/s, ETA %s)\n",
			label, done, total, rate, formatDuration(eta))
	}
}

// formatDuration renders seconds as a compact h/m/s duration ("42s",
// "3m05s", "2h07m"). Sub-second remainders round up so an ETA never
// reads "0s" while work remains.
func formatDuration(seconds float64) string {
	s := int(seconds + 0.999999)
	if s < 0 {
		s = 0
	}
	switch {
	case s >= 3600:
		return fmt.Sprintf("%dh%02dm", s/3600, (s%3600)/60)
	case s >= 60:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%ds", s)
	}
}
