package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"saga/internal/rng"
	"saga/internal/serialize"
)

// cellValue is a deterministic function of the cell position, so any
// scheduling-dependent result assignment shows up as a mismatch.
func cellValue(k int) float64 {
	return rng.New(CellSeed(42, k)).Float64()
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 100
	want, err := Map(n, Options{Workers: 1}, func(k int) (float64, error) {
		return cellValue(k), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0, n + 7} {
		got, err := Map(n, Options{Workers: workers}, func(k int) (float64, error) {
			return cellValue(k), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("workers=%d: cell %d = %v, want %v", workers, k, got[k], want[k])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, Options{}, func(k int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(50, Options{Workers: 4}, func(k int) (int, error) {
		if k >= 20 {
			return 0, boom
		}
		return k, nil
	})
	if out != nil {
		t.Fatal("failed Map returned results")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CellError", err)
	}
	if ce.Index < 20 {
		t.Fatalf("failing cell %d cannot fail", ce.Index)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestMapSequentialErrorIsFirst(t *testing.T) {
	// With one worker the error must be exactly the one a sequential
	// loop would return: the lowest failing index, nothing after it run.
	var ran []int
	_, err := Map(10, Options{Workers: 1}, func(k int) (int, error) {
		ran = append(ran, k)
		if k >= 3 {
			return 0, fmt.Errorf("cell %d", k)
		}
		return k, nil
	})
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 3 {
		t.Fatalf("got %v, want cell 3 failure", err)
	}
	if len(ran) != 4 {
		t.Fatalf("ran cells %v after the failure", ran)
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	// After a failure no NEW cells may start, regardless of worker count.
	var mu sync.Mutex
	started := map[int]bool{}
	_, err := Map(1000, Options{Workers: 8}, func(k int) (int, error) {
		mu.Lock()
		started[k] = true
		mu.Unlock()
		if k == 5 {
			return 0, errors.New("early failure")
		}
		return k, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(started) == 1000 {
		t.Fatal("dispatch never stopped after the failure")
	}
}

func TestMapPanicBecomesCellError(t *testing.T) {
	_, err := Map(20, Options{Workers: 4}, func(k int) (int, error) {
		if k == 7 {
			panic("worker exploded")
		}
		return k, nil
	})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("panic not converted: %v", err)
	}
	if !strings.Contains(err.Error(), "worker exploded") {
		t.Fatalf("panic message lost: %v", err)
	}
}

func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := Map(64, Options{Workers: 8}, func(k int) (int, error) {
			return k * k, nil
		}); err != nil {
			t.Fatal(err)
		}
		// Error and panic paths must also drain the pool.
		Map(64, Options{Workers: 8}, func(k int) (int, error) {
			if k == 10 {
				panic("leak check")
			}
			return k, nil
		})
	}
	// Workers exit via wg.Wait before Map returns, but give the runtime
	// a moment to retire them before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestMapStress(t *testing.T) {
	// Many tiny cells with maximum contention on the dispatch lock. This
	// is the stress case `make test-race` (part of `make verify`) runs
	// under the race detector across the concurrent packages.
	const n = 5000
	out, err := Map(n, Options{Workers: 2 * runtime.GOMAXPROCS(0)}, func(k int) (int, error) {
		return k, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v != k {
			t.Fatalf("cell %d = %d", k, v)
		}
	}
}

func TestMapProgressMonotonic(t *testing.T) {
	var calls []int
	total := 0
	_, err := Map(30, Options{Workers: 4, Progress: func(done, n int) {
		calls = append(calls, done) // serialized by the pool's mutex
		total = n
	}}, func(k int) (int, error) { return k, nil })
	if err != nil {
		t.Fatal(err)
	}
	if total != 30 || len(calls) != 31 { // baseline 0, then one call per cell
		t.Fatalf("progress called %d times with total %d", len(calls), total)
	}
	for i, d := range calls {
		if d != i {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}
}

func TestGridShapeAndSeeding(t *testing.T) {
	grid, err := Grid(3, 5, Options{Workers: 4}, func(i, j, k int) ([3]int, error) {
		return [3]int{i, j, k}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 {
		t.Fatalf("rows = %d", len(grid))
	}
	for i := range grid {
		if len(grid[i]) != 5 {
			t.Fatalf("row %d has %d cols", i, len(grid[i]))
		}
		for j, c := range grid[i] {
			if c != [3]int{i, j, i*5 + j} {
				t.Fatalf("cell (%d,%d) = %v", i, j, c)
			}
		}
	}
}

func TestOffDiagonalEnumeration(t *testing.T) {
	// The k-th off-diagonal cell must match the row-major double loop
	// that the sequential PISA drivers run.
	for _, n := range []int{2, 3, 5, 15} {
		k := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				gi, gj := OffDiagonal(k, n)
				if gi != i || gj != j {
					t.Fatalf("n=%d k=%d: got (%d,%d), want (%d,%d)", n, k, gi, gj, i, j)
				}
				k++
			}
		}
	}
}

func TestCellSeedMatchesSequentialConvention(t *testing.T) {
	// Sequential drivers seed cell k with base+k+1 (the first cell
	// increments the base seed before running).
	if CellSeed(10, 0) != 11 || CellSeed(10, 4) != 15 {
		t.Fatal("CellSeed deviates from the sequential seed sequence")
	}
}

// countingCheckpoint wraps serialize.Checkpoint to count stores.
type countingCheckpoint struct {
	*serialize.Checkpoint
	mu     sync.Mutex
	stores int
}

func (c *countingCheckpoint) Store(k int, cell json.RawMessage) error {
	c.mu.Lock()
	c.stores++
	c.mu.Unlock()
	return c.Checkpoint.Store(k, cell)
}

func TestMapCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck := &countingCheckpoint{Checkpoint: serialize.NewCheckpoint(path)}

	// First run dies at cell 12: everything computed so far is durable.
	_, err := Map(20, Options{Workers: 1, Checkpoint: ck}, func(k int) (float64, error) {
		if k == 12 {
			return 0, errors.New("simulated crash")
		}
		return cellValue(k), nil
	})
	if err == nil {
		t.Fatal("crash swallowed")
	}
	firstStores := ck.stores
	if firstStores != 12 {
		t.Fatalf("first run stored %d cells, want 12", firstStores)
	}

	// Resume with a fresh store handle on the same file: the 12 finished
	// cells must be loaded, not recomputed, and the result must be
	// identical to an uncheckpointed run.
	resumed := &countingCheckpoint{Checkpoint: serialize.NewCheckpoint(path)}
	var mu sync.Mutex
	recomputed := map[int]bool{}
	out, err := Map(20, Options{Workers: 4, Checkpoint: resumed}, func(k int) (float64, error) {
		mu.Lock()
		recomputed[k] = true
		mu.Unlock()
		return cellValue(k), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		if recomputed[k] {
			t.Fatalf("cell %d recomputed despite checkpoint", k)
		}
	}
	for k := 0; k < 20; k++ {
		if out[k] != cellValue(k) {
			t.Fatalf("cell %d = %v, want %v", k, out[k], cellValue(k))
		}
	}
	if err := resumed.Remove(); err != nil {
		t.Fatal(err)
	}
	// A removed store is an empty store.
	cells, err := serialize.NewCheckpoint(path).Load()
	if err != nil || len(cells) != 0 {
		t.Fatalf("store not removed: %v, %v", cells, err)
	}
}

func TestMapCheckpointIgnoresOutOfRangeCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.ckpt")
	ck := serialize.NewCheckpoint(path)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Store(99, json.RawMessage(`1.5`)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := Map(3, Options{Checkpoint: serialize.NewCheckpoint(path)}, func(k int) (float64, error) {
		return float64(k), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v != float64(k) {
			t.Fatalf("cell %d = %v", k, v)
		}
	}
}
