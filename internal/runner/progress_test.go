package runner

import (
	"strings"
	"testing"
	"time"
)

func TestProgressPrinterRateAndETA(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "fig4", now)

	cb(10, 100) // baseline: bare count, no rate yet
	clock = clock.Add(10 * time.Second)
	cb(30, 100) // 20 cells in 10s = 2 cells/s, 70 left → 35s
	clock = clock.Add(30 * time.Second)
	cb(70, 100) // 60 cells in 40s = 1.5 cells/s, 30 left → 20s
	clock = clock.Add(20 * time.Second)
	cb(100, 100)

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if want := "fig4: 10/100 cells"; lines[0] != want {
		t.Fatalf("line 1 = %q, want %q", lines[0], want)
	}
	if want := "fig4: 30/100 cells (2.0 cells/s, ETA 35s)"; lines[1] != want {
		t.Fatalf("line 2 = %q, want %q", lines[1], want)
	}
	if want := "fig4: 70/100 cells (1.5 cells/s, ETA 20s)"; lines[2] != want {
		t.Fatalf("line 3 = %q, want %q", lines[2], want)
	}
	if want := "fig4: 100/100 cells (1.5 cells/s, done in 1m00s)"; lines[3] != want {
		t.Fatalf("line 4 = %q, want %q", lines[3], want)
	}
}

// TestProgressPrinterResumedSweep pins the checkpoint-resume behavior:
// the restored-cell burst the runner reports first must not pollute the
// computed-cell throughput.
func TestProgressPrinterResumedSweep(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "fig4", now)

	cb(198, 210) // restored from store, before any compute
	clock = clock.Add(4 * time.Second)
	cb(202, 210) // 4 computed in 4s = 1 cell/s, 8 left → 8s

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := "fig4: 198/210 cells"; lines[0] != want {
		t.Fatalf("line 1 = %q, want %q", lines[0], want)
	}
	if want := "fig4: 202/210 cells (1.0 cells/s, ETA 8s)"; lines[1] != want {
		t.Fatalf("line 2 = %q, want %q (restored cells leaked into the rate?)", lines[1], want)
	}
}

func TestProgressPrinterZeroElapsed(t *testing.T) {
	var out strings.Builder
	now := func() time.Time { return time.Unix(1000, 0) } // frozen clock
	cb := progressPrinter(&out, "x", now)
	cb(1, 3)
	cb(2, 3) // zero elapsed: must not divide by zero or print NaN/Inf
	lines := out.String()
	if strings.Contains(lines, "NaN") || strings.Contains(lines, "Inf") {
		t.Fatalf("degenerate output: %q", lines)
	}
	if !strings.Contains(lines, "x: 2/3 cells (ETA --:--)") {
		t.Fatalf("zero-elapsed tick should print the --:-- placeholder, got %q", lines)
	}
}

// TestProgressPrinterNoRateYet pins the satellite fix: until a rate
// exists — cells computed past the baseline AND measurable elapsed
// time — the ETA prints as --:-- rather than NaN, +Inf, or a
// clock-resolution artifact.
func TestProgressPrinterNoRateYet(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "x", now)

	cb(5, 100) // baseline
	cb(5, 100) // no time passed, zero cells computed: no rate
	clock = clock.Add(200 * time.Nanosecond)
	cb(7, 100) // cells computed within the clock's resolution: still no honest rate
	clock = clock.Add(20*time.Second - 200*time.Nanosecond)
	cb(25, 100) // 20 cells over exactly 20s: a real rate at last

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if want := "x: 5/100 cells"; lines[0] != want {
		t.Fatalf("line 1 = %q, want %q", lines[0], want)
	}
	for i, line := range lines[1:3] {
		if want := "cells (ETA --:--)"; !strings.HasSuffix(line, want) {
			t.Fatalf("line %d = %q, want suffix %q", i+2, line, want)
		}
		if strings.Contains(line, "cells/s") {
			t.Fatalf("line %d = %q reports a rate before one exists", i+2, line)
		}
	}
	if want := "x: 25/100 cells (1.0 cells/s, ETA 1m15s)"; lines[3] != want {
		t.Fatalf("line 4 = %q, want %q", lines[3], want)
	}
}

// TestProgressPrinterRebaselinesAcrossPhases pins the multi-sweep fix:
// AppSpecificRun drives two sequential sweeps (benchmarking, then the
// PISA grid) through one Options and therefore one printer closure.
// When done regresses or the total changes, the printer must start a
// fresh baseline instead of folding the previous phase's cells and
// elapsed time into the new phase's rate.
func TestProgressPrinterRebaselinesAcrossPhases(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "app", now)

	cb(1, 20) // benchmark phase baseline
	clock = clock.Add(10 * time.Second)
	cb(20, 20) // benchmark phase completes
	clock = clock.Add(5 * time.Second)
	cb(1, 36) // PISA phase begins: done regressed, total changed
	clock = clock.Add(10 * time.Second)
	cb(11, 36) // 10 cells in 10s — must not see the benchmark phase's clock or cells

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if want := "app: 1/36 cells"; lines[2] != want {
		t.Fatalf("phase-2 baseline = %q, want %q", lines[2], want)
	}
	if want := "app: 11/36 cells (1.0 cells/s, ETA 25s)"; lines[3] != want {
		t.Fatalf("phase-2 rate line = %q, want %q (previous phase leaked into the rate?)", lines[3], want)
	}

	// A third phase with the SAME total as the second must still
	// re-baseline — detection is by done regressing, not total changing.
	clock = clock.Add(5 * time.Second)
	cb(1, 36)
	clock = clock.Add(8 * time.Second)
	cb(17, 36) // 16 cells in 8s = 2 cells/s, 19 left
	lines = strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := "app: 1/36 cells"; lines[4] != want {
		t.Fatalf("phase-3 baseline = %q, want %q", lines[4], want)
	}
	if want := "app: 17/36 cells (2.0 cells/s, ETA 10s)"; lines[5] != want {
		t.Fatalf("phase-3 rate line = %q, want %q (same-total phase not re-baselined?)", lines[5], want)
	}
}

// TestProgressPrinterCompletionWithoutRate pins the final line when the
// whole sweep lands inside the clock's resolution: completion is still
// reported, just without an invented throughput figure.
func TestProgressPrinterCompletionWithoutRate(t *testing.T) {
	var out strings.Builder
	now := func() time.Time { return time.Unix(1000, 0) }
	cb := progressPrinter(&out, "x", now)
	cb(0, 2)
	cb(2, 2)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := "x: 2/2 cells (done in 0s)"; lines[len(lines)-1] != want {
		t.Fatalf("final line = %q, want %q", lines[len(lines)-1], want)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{0.2, "1s"}, // rounds up: never "0s" while work remains
		{42, "42s"},
		{185, "3m05s"},
		{7620, "2h07m"},
	}
	for _, c := range cases {
		if got := formatDuration(c.in); got != c.want {
			t.Errorf("formatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestProgressPrinterThroughRunner wires the printer into a real Map
// sweep: every line must parse, and the final line must report
// completion.
func TestProgressPrinterThroughRunner(t *testing.T) {
	var out strings.Builder
	_, err := Map(16, Options{Workers: 4, Progress: ProgressPrinter(&out, "sweep")}, func(k int) (int, error) {
		return k, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 17 { // the 0/16 baseline plus one line per cell
		t.Fatalf("got %d progress lines, want 17", len(lines))
	}
	if lines[0] != "sweep: 0/16 cells" {
		t.Fatalf("baseline line = %q, want the sweep's starting position", lines[0])
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "sweep: ") || !strings.Contains(line, "cells") {
			t.Fatalf("line %d malformed: %q", i, line)
		}
	}
	if !strings.Contains(lines[16], "16/16 cells") || !strings.Contains(lines[16], "done in") {
		t.Fatalf("final line %q does not report completion", lines[16])
	}
}
