package runner

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestProgressPrinterRateAndETA(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "fig4", now)

	cb(10, 100) // baseline: bare count, no rate yet
	clock = clock.Add(10 * time.Second)
	cb(30, 100) // 20 cells in 10s = 2 cells/s, 70 left → 35s
	clock = clock.Add(30 * time.Second)
	cb(70, 100) // 60 cells in 40s = 1.5 cells/s, 30 left → 20s
	clock = clock.Add(20 * time.Second)
	cb(100, 100)

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if want := "fig4: 10/100 cells"; lines[0] != want {
		t.Fatalf("line 1 = %q, want %q", lines[0], want)
	}
	if want := "fig4: 30/100 cells (2.0 cells/s, ETA 35s)"; lines[1] != want {
		t.Fatalf("line 2 = %q, want %q", lines[1], want)
	}
	if want := "fig4: 70/100 cells (1.5 cells/s, ETA 20s)"; lines[2] != want {
		t.Fatalf("line 3 = %q, want %q", lines[2], want)
	}
	if want := "fig4: 100/100 cells (1.5 cells/s, done in 1m00s)"; lines[3] != want {
		t.Fatalf("line 4 = %q, want %q", lines[3], want)
	}
}

// TestProgressPrinterResumedSweep pins the checkpoint-resume behavior:
// the restored-cell burst the runner reports first must not pollute the
// computed-cell throughput.
func TestProgressPrinterResumedSweep(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "fig4", now)

	cb(198, 210) // restored from store, before any compute
	clock = clock.Add(4 * time.Second)
	cb(202, 210) // 4 computed in 4s = 1 cell/s, 8 left → 8s

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := "fig4: 198/210 cells"; lines[0] != want {
		t.Fatalf("line 1 = %q, want %q", lines[0], want)
	}
	if want := "fig4: 202/210 cells (1.0 cells/s, ETA 8s)"; lines[1] != want {
		t.Fatalf("line 2 = %q, want %q (restored cells leaked into the rate?)", lines[1], want)
	}
}

func TestProgressPrinterZeroComputed(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "x", now)
	cb(1, 3)
	clock = clock.Add(200 * time.Millisecond)
	cb(1, 3) // time passed, nothing computed: must not divide by zero or print NaN/Inf
	lines := out.String()
	if strings.Contains(lines, "NaN") || strings.Contains(lines, "Inf") {
		t.Fatalf("degenerate output: %q", lines)
	}
	if !strings.Contains(lines, "x: 1/3 cells (ETA --:--)") {
		t.Fatalf("zero-computed tick should print the --:-- placeholder, got %q", lines)
	}
}

// TestProgressPrinterNoRateYet pins the satellite fix: until a rate
// exists — cells computed past the baseline AND measurable elapsed
// time — the ETA prints as --:-- rather than NaN, +Inf, or a
// clock-resolution artifact. (Sub-resolution mid-sweep ticks are now
// absorbed by the rate limiter before the rate logic ever sees them;
// the zero-computed branch remains reachable and is pinned here.)
func TestProgressPrinterNoRateYet(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "x", now)

	cb(5, 100) // baseline
	clock = clock.Add(10 * time.Second)
	cb(5, 100) // time passed, zero cells computed: no rate
	clock = clock.Add(10 * time.Second)
	cb(25, 100) // 20 cells over 20s: a real rate at last

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if want := "x: 5/100 cells"; lines[0] != want {
		t.Fatalf("line 1 = %q, want %q", lines[0], want)
	}
	if want := "x: 5/100 cells (ETA --:--)"; lines[1] != want {
		t.Fatalf("line 2 = %q, want %q", lines[1], want)
	}
	if want := "x: 25/100 cells (1.0 cells/s, ETA 1m15s)"; lines[2] != want {
		t.Fatalf("line 3 = %q, want %q", lines[2], want)
	}
}

// TestProgressPrinterRateLimited pins the scale-tier satellite: a sweep
// completing cells faster than 10/s must not print a line per cell.
// Only ticks ≥100ms after the last printed line survive; the baseline
// and the completion line always print.
func TestProgressPrinterRateLimited(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "x", now)

	cb(0, 100) // baseline
	for i := 1; i <= 50; i++ {
		clock = clock.Add(10 * time.Millisecond)
		cb(i, 100) // 100 ticks/s: only every 10th may print
	}
	clock = clock.Add(100 * time.Millisecond)
	cb(100, 100) // completion always prints

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Baseline + one line per elapsed 100ms window (5 over the 500ms of
	// ticks) + the completion line.
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7 (is the limiter off?):\n%s", len(lines), out.String())
	}
	if want := "x: 0/100 cells"; lines[0] != want {
		t.Fatalf("baseline = %q, want %q", lines[0], want)
	}
	for i, line := range lines[1:6] {
		if want := fmt.Sprintf("x: %d/100 cells", (i+1)*10); !strings.HasPrefix(line, want) {
			t.Fatalf("surviving line %d = %q, want prefix %q", i+1, line, want)
		}
	}
	last := lines[6]
	if !strings.Contains(last, "100/100 cells") || !strings.Contains(last, "done in") {
		t.Fatalf("final line %q does not report completion", last)
	}
}

// TestProgressPrinterRebaselinesAcrossPhases pins the multi-sweep fix:
// AppSpecificRun drives two sequential sweeps (benchmarking, then the
// PISA grid) through one Options and therefore one printer closure.
// When done regresses or the total changes, the printer must start a
// fresh baseline instead of folding the previous phase's cells and
// elapsed time into the new phase's rate.
func TestProgressPrinterRebaselinesAcrossPhases(t *testing.T) {
	var out strings.Builder
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	cb := progressPrinter(&out, "app", now)

	cb(1, 20) // benchmark phase baseline
	clock = clock.Add(10 * time.Second)
	cb(20, 20) // benchmark phase completes
	clock = clock.Add(5 * time.Second)
	cb(1, 36) // PISA phase begins: done regressed, total changed
	clock = clock.Add(10 * time.Second)
	cb(11, 36) // 10 cells in 10s — must not see the benchmark phase's clock or cells

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if want := "app: 1/36 cells"; lines[2] != want {
		t.Fatalf("phase-2 baseline = %q, want %q", lines[2], want)
	}
	if want := "app: 11/36 cells (1.0 cells/s, ETA 25s)"; lines[3] != want {
		t.Fatalf("phase-2 rate line = %q, want %q (previous phase leaked into the rate?)", lines[3], want)
	}

	// A third phase with the SAME total as the second must still
	// re-baseline — detection is by done regressing, not total changing.
	clock = clock.Add(5 * time.Second)
	cb(1, 36)
	clock = clock.Add(8 * time.Second)
	cb(17, 36) // 16 cells in 8s = 2 cells/s, 19 left
	lines = strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := "app: 1/36 cells"; lines[4] != want {
		t.Fatalf("phase-3 baseline = %q, want %q", lines[4], want)
	}
	if want := "app: 17/36 cells (2.0 cells/s, ETA 10s)"; lines[5] != want {
		t.Fatalf("phase-3 rate line = %q, want %q (same-total phase not re-baselined?)", lines[5], want)
	}
}

// TestProgressPrinterCompletionWithoutRate pins the final line when the
// whole sweep lands inside the clock's resolution: completion is still
// reported, just without an invented throughput figure.
func TestProgressPrinterCompletionWithoutRate(t *testing.T) {
	var out strings.Builder
	now := func() time.Time { return time.Unix(1000, 0) }
	cb := progressPrinter(&out, "x", now)
	cb(0, 2)
	cb(2, 2)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := "x: 2/2 cells (done in 0s)"; lines[len(lines)-1] != want {
		t.Fatalf("final line = %q, want %q", lines[len(lines)-1], want)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{0.2, "1s"}, // rounds up: never "0s" while work remains
		{42, "42s"},
		{185, "3m05s"},
		{7620, "2h07m"},
	}
	for _, c := range cases {
		if got := formatDuration(c.in); got != c.want {
			t.Errorf("formatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestProgressPrinterThroughRunner wires the printer into a real Map
// sweep: every line must parse, the baseline must come first, and the
// final line must report completion. The rate limiter makes the exact
// line count timing-dependent (fast cells are absorbed), so only the
// bounds are pinned.
func TestProgressPrinterThroughRunner(t *testing.T) {
	var out strings.Builder
	_, err := Map(16, Options{Workers: 4, Progress: ProgressPrinter(&out, "sweep")}, func(k int) (int, error) {
		return k, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 || len(lines) > 17 {
		t.Fatalf("got %d progress lines, want 2-17 (baseline + rate-limited cells + completion):\n%s",
			len(lines), out.String())
	}
	if lines[0] != "sweep: 0/16 cells" {
		t.Fatalf("baseline line = %q, want the sweep's starting position", lines[0])
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "sweep: ") || !strings.Contains(line, "cells") {
			t.Fatalf("line %d malformed: %q", i, line)
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "16/16 cells") || !strings.Contains(last, "done in") {
		t.Fatalf("final line %q does not report completion", last)
	}
}
