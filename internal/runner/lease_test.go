package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestMapIncludeRunsOnlySelectedCells pins the dynamic-lease filter:
// only included cells run (with their global position, so values match
// the full run's), the rest stay zero, and Include composes with Shard
// by intersection.
func TestMapIncludeRunsOnlySelectedCells(t *testing.T) {
	const n = 12
	lease := map[int]bool{2: true, 5: true, 9: true, 11: true}
	var mu sync.Mutex
	ran := map[int]bool{}
	out, err := Map(n, Options{Workers: 3, Include: func(k int) bool { return lease[k] }},
		func(k int) (float64, error) {
			mu.Lock()
			ran[k] = true
			mu.Unlock()
			return cellValue(k), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if ran[k] != lease[k] {
			t.Fatalf("cell %d ran=%v leased=%v", k, ran[k], lease[k])
		}
		want := 0.0
		if lease[k] {
			want = cellValue(k) // global position seed, not lease-local
		}
		if out[k] != want {
			t.Fatalf("cell %d = %v, want %v", k, out[k], want)
		}
	}

	// Shard ∩ Include: only cells both own run.
	shard := ShardSpec{Index: 1, Count: 2} // odd cells
	ran = map[int]bool{}
	_, err = Map(n, Options{Shard: shard, Include: func(k int) bool { return lease[k] }},
		func(k int) (float64, error) {
			mu.Lock()
			ran[k] = true
			mu.Unlock()
			return cellValue(k), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := lease[k] && shard.Owns(k)
		if ran[k] != want {
			t.Fatalf("cell %d ran=%v, want %v (shard ∩ lease)", k, ran[k], want)
		}
	}
}

// TestOptionsOwns pins the helper drivers use to tell legitimately
// absent cells from missing results.
func TestOptionsOwns(t *testing.T) {
	all := Options{}
	leased := Options{Include: func(k int) bool { return k == 1 }}
	sharded := Options{Shard: ShardSpec{Index: 0, Count: 2}, Include: func(k int) bool { return k < 3 }}
	for k := 0; k < 4; k++ {
		if !all.Owns(k) {
			t.Fatalf("unrestricted options do not own cell %d", k)
		}
		if leased.Owns(k) != (k == 1) {
			t.Fatalf("leased.Owns(%d) = %v", k, leased.Owns(k))
		}
		if sharded.Owns(k) != (k%2 == 0 && k < 3) {
			t.Fatalf("sharded.Owns(%d) = %v", k, sharded.Owns(k))
		}
	}
}

// TestMapOnCellErrorContinues pins graceful degradation: failing cells
// are reported (not returned), stay out of the checkpoint store, keep
// zero values, count as progress, and never stop the other cells.
func TestMapOnCellErrorContinues(t *testing.T) {
	const n = 10
	boom := errors.New("boom")
	ck := newMemCheckpoint()
	var mu sync.Mutex
	failed := map[int]error{}
	var progress [][2]int
	out, err := Map(n, Options{
		Workers:    2,
		Checkpoint: ck,
		OnCellError: func(k int, err error) {
			failed[k] = err // serialized by the pool
		},
		Progress: func(done, total int) {
			progress = append(progress, [2]int{done, total})
		},
	}, func(k int) (float64, error) {
		if k == 3 {
			return 0, boom
		}
		if k == 7 {
			panic("cell 7 exploded")
		}
		mu.Lock()
		mu.Unlock()
		return cellValue(k), nil
	})
	if err != nil {
		t.Fatalf("sweep aborted despite OnCellError: %v", err)
	}
	if len(failed) != 2 || !errors.Is(failed[3], boom) || failed[7] == nil {
		t.Fatalf("failures reported: %v", failed)
	}
	if !strings.Contains(failed[7].Error(), "panic") {
		t.Fatalf("panic not converted: %v", failed[7])
	}
	for k := 0; k < n; k++ {
		_, stored := ck.cells[k]
		if k == 3 || k == 7 {
			if out[k] != 0 || stored {
				t.Fatalf("failed cell %d: value %v, stored %v", k, out[k], stored)
			}
			continue
		}
		if out[k] != cellValue(k) || !stored {
			t.Fatalf("cell %d: value %v, stored %v", k, out[k], stored)
		}
	}
	last := progress[len(progress)-1]
	if last != [2]int{n, n} {
		t.Fatalf("failed cells do not count as handled: final progress %v", last)
	}
}

// TestMapOnCellErrorStillAbortsOnStoreFailure pins the boundary: cell
// failures degrade gracefully, checkpoint I/O failures are
// infrastructure errors and abort regardless.
func TestMapOnCellErrorStillAbortsOnStoreFailure(t *testing.T) {
	ck := &failingCheckpoint{}
	_, err := Map(4, Options{
		Checkpoint:  ck,
		OnCellError: func(k int, err error) { t.Fatalf("store failure routed to OnCellError: %v", err) },
	}, func(k int) (int, error) { return k, nil })
	if err == nil {
		t.Fatal("store failure did not abort the sweep")
	}
}

type failingCheckpoint struct{ memCheckpoint }

func (f *failingCheckpoint) Store(index int, cell json.RawMessage) error {
	return errors.New("disk full")
}

// TestLeaseProgressPinnedTotals is the dynamic-lease extension of the
// PR 6 shard-totals treatment: a worker runs one Map per lease against
// one shared store, and every printed line must report the pinned
// sweep-wide total with a cumulative count that never double-counts
// cells reloaded from earlier leases.
func TestLeaseProgressPinnedTotals(t *testing.T) {
	const n = 9
	store := newMemCheckpoint()
	var calls [][2]int
	lp := NewLeaseProgress(n, func(done, total int) {
		calls = append(calls, [2]int{done, total})
	})
	leases := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	for _, lease := range leases {
		set := map[int]bool{}
		for _, k := range lease {
			set[k] = true
		}
		_, err := Map(n, Options{
			Checkpoint: store, // later leases reload earlier cells
			Include:    func(k int) bool { return set[k] },
			Progress:   lp.Sweep(), // fresh per-sweep baseline
		}, func(k int) (float64, error) { return cellValue(k), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if lp.Done() != n {
		t.Fatalf("counted %d cells across leases, want %d (double-counted reloads?)", lp.Done(), n)
	}
	for i, c := range calls {
		if c[1] != n {
			t.Fatalf("call %d reported total %d, want the pinned sweep total %d", i, c[1], n)
		}
	}
	// done must be non-decreasing across lease boundaries — reassignment
	// or a new lease must never appear as a progress regression.
	for i := 1; i < len(calls); i++ {
		if calls[i][0] < calls[i-1][0] {
			t.Fatalf("pinned progress regressed: %v", calls)
		}
	}
	if last := calls[len(calls)-1]; last != [2]int{n, n} {
		t.Fatalf("final call %v, want [%d %d]", last, n, n)
	}

	// A re-leased cell the worker already computed (stolen, then handed
	// back) arrives via the store's load burst and must not count again.
	lp2calls := 0
	lp2 := NewLeaseProgress(n, func(done, total int) {
		lp2calls++
		if done > 0 {
			t.Fatalf("re-leased cells counted as fresh work: done=%d", done)
		}
	})
	set := map[int]bool{0: true, 1: true}
	_, err := Map(n, Options{
		Checkpoint: store,
		Include:    func(k int) bool { return set[k] },
		Progress:   lp2.Sweep(),
	}, func(k int) (float64, error) {
		t.Fatalf("cell %d recomputed despite the store", k)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lp2calls == 0 {
		t.Fatal("baseline call missing")
	}
}

// TestLeaseProgressWithPrinter wires LeaseProgress into the real
// ProgressPrinter, the composition the coordinate worker CLI runs, and
// checks every line counts against the pinned sweep total.
func TestLeaseProgressWithPrinter(t *testing.T) {
	const n = 6
	var buf strings.Builder
	store := newMemCheckpoint()
	lp := NewLeaseProgress(n, ProgressPrinter(&buf, "worker w1 fig4"))
	for _, lease := range [][]int{{0, 1, 2}, {3, 4, 5}} {
		set := map[int]bool{}
		for _, k := range lease {
			set[k] = true
		}
		_, err := Map(n, Options{
			Checkpoint: store,
			Include:    func(k int) bool { return set[k] },
			Progress:   lp.Sweep(),
		}, func(k int) (float64, error) { return cellValue(k), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i, line := range lines {
		if !strings.Contains(line, fmt.Sprintf("/%d cells", n)) {
			t.Fatalf("line %d not pinned to the sweep total: %q", i, line)
		}
	}
	if !strings.Contains(lines[len(lines)-1], fmt.Sprintf("%d/%d cells", n, n)) {
		t.Fatalf("final line %q does not report sweep completion", lines[len(lines)-1])
	}
}
