package runner

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

// memStore is a minimal in-memory Checkpoint for the cancellation tests.
type memStore struct {
	mu    sync.Mutex
	cells map[int]json.RawMessage
}

func (s *memStore) Load() (map[int]json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]json.RawMessage, len(s.cells))
	for k, v := range s.cells {
		out[k] = v
	}
	return out, nil
}

func (s *memStore) Store(index int, cell json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cells == nil {
		s.cells = map[int]json.RawMessage{}
	}
	s.cells[index] = cell
	return nil
}

func (s *memStore) Flush() error { return nil }

func TestMapPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := Map(8, Options{Workers: 2, Context: ctx}, func(k int) (int, error) {
		ran++
		return k, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map on a dead context: %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d cells ran after cancellation", ran)
	}
}

func TestMapCancellationStopsDispatchKeepsCompletedCells(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	store := &memStore{}
	var mu sync.Mutex
	ran := 0
	_, err := Map(n, Options{Workers: 1, Context: ctx, Checkpoint: store}, func(k int) (int, error) {
		mu.Lock()
		ran++
		if ran == 3 {
			cancel() // cancel mid-sweep; the in-flight cell still completes
		}
		mu.Unlock()
		return k * k, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Map returned %v, want context.Canceled", err)
	}
	if ran >= n {
		t.Fatalf("cancellation did not stop dispatch: all %d cells ran", n)
	}
	// Completed cells were checkpointed — a cancelled run leaves a
	// resumable store, never a corrupt one.
	cells, _ := store.Load()
	if len(cells) != ran {
		t.Fatalf("store holds %d cells, %d completed", len(cells), ran)
	}
	// Resuming the same sweep on the same store computes only the rest,
	// and the merged result equals an uncancelled run.
	ran2 := 0
	out, err := Map(n, Options{Workers: 1, Checkpoint: store}, func(k int) (int, error) {
		ran2++
		return k * k, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran2 != n-ran {
		t.Fatalf("resume recomputed %d cells, want %d", ran2, n-ran)
	}
	for k, v := range out {
		if v != k*k {
			t.Fatalf("cell %d = %d after resume, want %d", k, v, k*k)
		}
	}
}

func TestMapNilContextUnchanged(t *testing.T) {
	out, err := Map(4, Options{Workers: 2}, func(k int) (int, error) { return k + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v != k+1 {
			t.Fatalf("cell %d = %d", k, v)
		}
	}
}
