package core

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/rng"
)

// TestPerturbPreservesValidity is the key safety property of the search:
// any number of perturbations leaves the instance valid (acyclic graph,
// positive network weights, symmetric links).
func TestPerturbPreservesValidity(t *testing.T) {
	r := rng.New(101)
	p := DefaultPerturb().withDefaults()
	inst := datasets.InitialPISAInstance(r.Split())
	for i := 0; i < 3000; i++ {
		perturb(inst, r, p)
		if i%200 == 0 {
			if err := inst.Validate(); err != nil {
				t.Fatalf("after %d perturbations: %v", i, err)
			}
		}
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbKeepsWeightsInRange(t *testing.T) {
	r := rng.New(103)
	p := DefaultPerturb().withDefaults()
	inst := datasets.InitialPISAInstance(r.Split())
	for i := 0; i < 2000; i++ {
		perturb(inst, r, p)
	}
	for _, tk := range inst.Graph.Tasks {
		if tk.Cost < 0 || tk.Cost > 1 {
			t.Fatalf("task cost %v outside [0,1]", tk.Cost)
		}
	}
	for _, succ := range inst.Graph.Succ {
		for _, d := range succ {
			if d.Cost < 0 || d.Cost > 1 {
				t.Fatalf("dep cost %v outside [0,1]", d.Cost)
			}
		}
	}
	for _, s := range inst.Net.Speeds {
		if s < p.MinNetWeight || s > 1 {
			t.Fatalf("speed %v outside [%v,1]", s, p.MinNetWeight)
		}
	}
	for u := 0; u < inst.Net.NumNodes(); u++ {
		for v := u + 1; v < inst.Net.NumNodes(); v++ {
			if l := inst.Net.Links[u][v]; l < p.MinNetWeight || l > 1 {
				t.Fatalf("link %v outside [%v,1]", l, p.MinNetWeight)
			}
		}
	}
}

func TestPerturbCustomRanges(t *testing.T) {
	r := rng.New(105)
	p := PerturbOptions{
		Step:         0.1,
		TaskCost:     [2]float64{5, 50},
		DepCost:      [2]float64{2, 20},
		Speed:        [2]float64{0.5, 3},
		Link:         [2]float64{1, 10},
		FixStructure: true,
	}.withDefaults()
	inst := datasets.InitialPISAInstance(r.Split())
	// Start weights inside the ranges so clamping semantics are clean.
	for i := range inst.Graph.Tasks {
		inst.Graph.Tasks[i].Cost = 10
	}
	for _, d := range inst.Graph.Deps() {
		inst.Graph.SetDepCost(d[0], d[1], 10)
	}
	for v := range inst.Net.Speeds {
		inst.Net.Speeds[v] = 1
	}
	for i := 0; i < 2000; i++ {
		perturb(inst, r, p)
	}
	for _, tk := range inst.Graph.Tasks {
		if tk.Cost < 5 || tk.Cost > 50 {
			t.Fatalf("task cost %v escaped [5,50]", tk.Cost)
		}
	}
	for _, succ := range inst.Graph.Succ {
		for _, d := range succ {
			if d.Cost < 2 || d.Cost > 20 {
				t.Fatalf("dep cost %v escaped [2,20]", d.Cost)
			}
		}
	}
	for _, s := range inst.Net.Speeds {
		if s < 0.5 || s > 3 {
			t.Fatalf("speed %v escaped [0.5,3]", s)
		}
	}
}

func TestEnabledOpsRespectFlags(t *testing.T) {
	all := enabledOps(DefaultPerturb())
	if len(all) != 6 {
		t.Fatalf("default ops = %d, want 6", len(all))
	}
	p := DefaultPerturb()
	p.FixSpeeds = true
	p.FixLinks = true
	p.FixStructure = true
	restricted := enabledOps(p)
	if len(restricted) != 2 { // task weight + dep weight only
		t.Fatalf("restricted ops = %d, want 2", len(restricted))
	}
}

func TestPerturbFixedStructureNeverChangesTopology(t *testing.T) {
	r := rng.New(107)
	p := DefaultPerturb()
	p.FixStructure = true
	pp := p.withDefaults()
	inst := datasets.InitialPISAInstance(r.Split())
	deps := inst.Graph.NumDeps()
	for i := 0; i < 2000; i++ {
		perturb(inst, r, pp)
	}
	if inst.Graph.NumDeps() != deps {
		t.Fatalf("dependency count changed: %d -> %d", deps, inst.Graph.NumDeps())
	}
}

func TestPerturbAddRemoveChangesTopologyEventually(t *testing.T) {
	r := rng.New(109)
	p := DefaultPerturb().withDefaults()
	inst := datasets.InitialPISAInstance(r.Split())
	initial := inst.Graph.NumDeps()
	changed := false
	for i := 0; i < 500 && !changed; i++ {
		perturb(inst, r, p)
		if inst.Graph.NumDeps() != initial {
			changed = true
		}
	}
	if !changed {
		t.Fatal("structural operators never fired in 500 perturbations")
	}
}

func TestWithDefaultsFillsZeroValues(t *testing.T) {
	p := PerturbOptions{}.withDefaults()
	if p.Step != 0.1 || p.TaskCost != [2]float64{0, 1} || p.MinNetWeight != 0.01 {
		t.Fatalf("withDefaults = %+v", p)
	}
	// Explicit values survive.
	q := PerturbOptions{Step: 0.3, TaskCost: [2]float64{1, 2}}.withDefaults()
	if q.Step != 0.3 || q.TaskCost != [2]float64{1, 2} {
		t.Fatalf("withDefaults overwrote explicit values: %+v", q)
	}
}
