package core

import (
	"math"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// This file retains the copy-and-rebuild annealing loop verbatim as the
// bit-identity oracle for the incremental inner loop in pisa.go: every
// iteration copies the current instance into a candidate buffer,
// perturbs the copy, and rebuilds the full cost tables before
// evaluating. RunReference must consume the identical RNG stream and
// produce byte-identical Results to Run — incremental_test.go asserts
// it per perturbation mode and scheduler pair, and BenchmarkPISARun
// measures the speedup against it (BENCH_pisa.json). Do not "improve"
// this code; its value is that it does not share the mutate-in-place
// machinery it checks.

// RunReference executes PISA with the pre-incremental evaluation
// strategy: one full Instance copy and one full Tables rebuild per
// candidate. Results are bit-identical to Run; only the speed and
// allocation profile differ.
func RunReference(target, baseline scheduler.Scheduler, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	p := opts.Perturb.withDefaults()
	root := rng.New(opts.Seed)
	ev := newEvaluator(target, baseline, opts.Scratch)
	// The oracle evaluates without rank memoization: it rebuilds the full
	// tables per candidate anyway, and keeping the cache out of this loop
	// makes the bit-identity suite a genuine proof that the memoized path
	// (Run) changes nothing — and keeps the benchmark baseline honest.
	defer ev.scr.SetEvalCache(ev.scr.SetEvalCache(false))

	res := &Result{BestRatio: math.Inf(-1)}
	// One candidate and one incumbent-best buffer serve every annealing
	// chain: each iteration copies the current state into the candidate,
	// and pointer swaps implement acceptance. Only the returned
	// Result.Best is ever cloned out of the buffers.
	var cand, best *graph.Instance
	for restart := 0; restart < opts.Restarts; restart++ {
		r := root.Split()
		cur := prepare(opts.InitialInstance(r), p)
		curRatio, err := ev.ratio(cur)
		if err != nil {
			return nil, err
		}
		res.Evaluations++

		if best == nil {
			best = cur.Clone()
		} else {
			best.CopyFrom(cur)
		}
		bestRatio := curRatio
		if cand == nil {
			cand = cur.Clone()
		}
		temp := opts.TMax
		for iter := 0; temp > opts.TMin && iter < opts.MaxIters; iter++ {
			cand.CopyFrom(cur)
			refPerturb(cand, r, p)
			candRatio, err := ev.ratio(cand)
			if err != nil {
				return nil, err
			}
			res.Evaluations++

			accepted := false
			if candRatio > bestRatio {
				best.CopyFrom(cand)
				bestRatio = candRatio
				cur, cand = cand, cur
				curRatio = candRatio
				accepted = true
				if opts.OnImprove != nil {
					opts.OnImprove(iter, bestRatio)
				}
			} else {
				// Algorithm 1 line 9: accept a non-improving candidate
				// with probability exp(−(M'/M_best)/T).
				if r.Float64() < math.Exp(-(candRatio/bestRatio)/temp) {
					cur, cand = cand, cur
					curRatio = candRatio
					accepted = true
				}
			}
			if opts.RecordTrace {
				res.Trace = append(res.Trace, TracePoint{
					Restart:     restart,
					Iteration:   iter,
					Temperature: temp,
					Ratio:       candRatio,
					Best:        bestRatio,
					Accepted:    accepted,
				})
			}
			temp *= opts.Alpha
		}
		res.RestartRatios = append(res.RestartRatios, bestRatio)
		if bestRatio > res.BestRatio {
			res.Best, res.BestRatio = best.Clone(), bestRatio
		}
	}
	_ = res.Best.Validate() // best-effort sanity; instances stay valid by construction
	return res, nil
}

// refPerturb applies one randomly chosen perturbation to the instance
// in place — the original allocating implementation (Deps() slices,
// allocating reachability) whose RNG draw sequence the in-place
// operators in perturb.go must reproduce exactly.
func refPerturb(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	ops := enabledOps(p)
	op := ops[r.Intn(len(ops))]
	switch op {
	case opNodeWeight:
		refPerturbNodeWeight(inst, r, p)
	case opLinkWeight:
		if !refPerturbLinkWeight(inst, r, p) {
			refPerturbNodeWeight(inst, r, p)
		}
	case opTaskWeight:
		refPerturbTaskWeight(inst, r, p)
	case opDepWeight:
		if !refPerturbDepWeight(inst, r, p) {
			refPerturbTaskWeight(inst, r, p)
		}
	case opAddDep:
		if !refPerturbAddDep(inst, r, p) {
			refPerturbTaskWeight(inst, r, p)
		}
	case opRemoveDep:
		if !refPerturbRemoveDep(inst, r) {
			refPerturbTaskWeight(inst, r, p)
		}
	}
}

func refPerturbNodeWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	v := r.Intn(inst.Net.NumNodes())
	inst.Net.Speeds[v] = clampRange(inst.Net.Speeds[v]+step(p, p.Speed, r), p.Speed, p.MinNetWeight)
}

func refPerturbLinkWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) bool {
	n := inst.Net.NumNodes()
	if n < 2 {
		return false
	}
	u := r.Intn(n)
	v := r.Intn(n - 1)
	if v >= u {
		v++
	}
	cur := inst.Net.Links[u][v]
	inst.Net.SetLink(u, v, clampRange(cur+step(p, p.Link, r), p.Link, p.MinNetWeight))
	return true
}

func refPerturbTaskWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	t := r.Intn(inst.Graph.NumTasks())
	inst.Graph.Tasks[t].Cost = clampRange(inst.Graph.Tasks[t].Cost+step(p, p.TaskCost, r), p.TaskCost, 0)
}

func refPerturbDepWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) bool {
	deps := inst.Graph.Deps()
	if len(deps) == 0 {
		return false
	}
	d := deps[r.Intn(len(deps))]
	cur, _ := inst.Graph.DepCost(d[0], d[1])
	inst.Graph.SetDepCost(d[0], d[1], clampRange(cur+step(p, p.DepCost, r), p.DepCost, 0))
	return true
}

func refPerturbAddDep(inst *graph.Instance, r *rng.RNG, p PerturbOptions) bool {
	g := inst.Graph
	n := g.NumTasks()
	if n < 2 {
		return false
	}
	const tries = 16
	for i := 0; i < tries; i++ {
		t := r.Intn(n)
		t2 := r.Intn(n - 1)
		if t2 >= t {
			t2++
		}
		if g.HasDep(t, t2) || g.Reaches(t2, t) {
			continue
		}
		g.MustAddDep(t, t2, r.Uniform(p.DepCost[0], p.DepCost[1]))
		return true
	}
	return false
}

func refPerturbRemoveDep(inst *graph.Instance, r *rng.RNG) bool {
	deps := inst.Graph.Deps()
	if len(deps) == 0 {
		return false
	}
	d := deps[r.Intn(len(deps))]
	return inst.Graph.RemoveDep(d[0], d[1])
}
