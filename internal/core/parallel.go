package core

import (
	"math"
	"sync"
	"sync/atomic"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// Intra-cell parallelism.
//
// The sweeps are parallel across cells (runner.Map) and each cell's
// inner loop is incremental and cached, but a single Run or RunGA was
// still strictly sequential. This file closes that gap without giving
// up determinism-by-construction: results are bit-identical for every
// Workers value, proven against the sequential loops and the retained
// reference implementations by parallel_test.go.
//
// Ownership rule (the PR 2 scratch rule, extended): every chain/worker
// owns its scheduling state outright — a scheduler.Scratch from the
// pool below, the perturbState parked in that scratch, an evaluator,
// and an incumbent-best instance buffer. Nothing mutable is shared
// between worker goroutines; the only cross-goroutine writes are to
// disjoint per-restart (or per-offspring) slots of preallocated result
// slices, and every worker is joined before the merge reads them.
//
// Determinism rule: all RNG consumption that the sequential loop
// performs on one stream stays on the calling goroutine, in the
// sequential order (the per-restart root.Split()s; the GA's selection,
// crossover and mutation draws). Workers only consume per-chain
// sub-streams or no randomness at all. The merge is canonical: chains
// fold in restart order with the sequential loop's exact comparison
// (strict improvement, so ties keep the lowest restart index), errors
// surface from the lowest-indexed failing chain, and buffered
// OnImprove calls replay in restart order on the calling goroutine.

// workerPoolExtKey parks the per-worker scratch pool in the parent
// scratch's extension state, so repeated parallel Runs through one
// sweep-worker scratch reuse warm tables instead of reallocating.
const workerPoolExtKey = "core.workers"

type workerPool struct{ scratches []*scheduler.Scratch }

// workerScratches returns n scratches for worker goroutines. With a
// parent scratch the pool lives (and grows lazily) in the parent's Ext
// state and follows its one-per-worker ownership: only the goroutine
// owning the parent may call this, and the returned scratches must not
// outlive the call's workers — both hold because Run/RunGA join every
// worker before returning. A nil parent gets fresh scratches.
func workerScratches(parent *scheduler.Scratch, n int) []*scheduler.Scratch {
	if parent == nil {
		out := make([]*scheduler.Scratch, n)
		for i := range out {
			out[i] = scheduler.NewScratch()
		}
		return out
	}
	pool := parent.Ext(workerPoolExtKey, func() any { return new(workerPool) }).(*workerPool)
	for len(pool.scratches) < n {
		pool.scratches = append(pool.scratches, scheduler.NewScratch())
	}
	return pool.scratches[:n]
}

// improvePoint buffers one OnImprove call for ordered replay.
type improvePoint struct {
	iter  int
	ratio float64
}

// chainOutcome is one restart's result slot, written only by the worker
// that ran the chain and read only after the join.
type chainOutcome struct {
	ratio    float64
	evals    int
	trace    []TracePoint
	improves []improvePoint
	err      error
}

// runParallel is Run's Workers > 1 path: restart chains anneal
// concurrently and merge canonically. See the file comment for the
// ownership and determinism rules it implements.
func runParallel(target, baseline scheduler.Scheduler, opts Options, p PerturbOptions, root *rng.RNG, workers int) (*Result, error) {
	// Pre-split every per-restart stream in restart order on this
	// goroutine: chain k consumes exactly the stream the sequential
	// loop's k-th root.Split() yields, regardless of which worker runs
	// it or when.
	streams := make([]*rng.RNG, opts.Restarts)
	for i := range streams {
		streams[i] = root.Split()
	}
	outcomes := make([]chainOutcome, opts.Restarts)
	scratches := workerScratches(opts.Scratch, workers)

	// Each worker folds its own chains as the sequential loop would:
	// strict improvement over increasing restart indices, so the
	// worker-local winner is the lowest-indexed maximum it saw. best and
	// the chainState's buffer are swapped (not copied) on improvement.
	type workerBest struct {
		ratio   float64
		restart int
		inst    *graph.Instance
	}
	bests := make([]workerBest, workers)

	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs := newChainState(newEvaluator(target, baseline, scratches[w]), p)
			wb := &bests[w]
			wb.ratio, wb.restart = math.Inf(-1), -1
			for {
				k := int(atomic.AddInt64(&next, 1))
				if k >= opts.Restarts {
					return
				}
				out := &outcomes[k]
				var trace []TracePoint
				if opts.RecordTrace {
					trace = make([]TracePoint, 0, opts.MaxIters)
				}
				var onImprove func(int, float64)
				if opts.OnImprove != nil {
					onImprove = func(iter int, ratio float64) {
						out.improves = append(out.improves, improvePoint{iter, ratio})
					}
				}
				out.ratio, out.evals, out.trace, out.err = cs.runChain(opts, p, k, streams[k], trace, onImprove)
				if out.err == nil && out.ratio > wb.ratio {
					wb.ratio, wb.restart = out.ratio, k
					wb.inst, cs.best = cs.best, wb.inst
				}
			}
		}(w)
	}
	wg.Wait()

	// Canonical merge, all on the calling goroutine: fold outcomes in
	// restart order — replay buffered improvements, surface the lowest-
	// indexed chain error (the one the sequential loop would have hit
	// first), and accumulate counts, ratios and trace exactly as the
	// sequential fold does.
	res := &Result{
		BestRatio:     math.Inf(-1),
		RestartRatios: make([]float64, 0, opts.Restarts),
	}
	if opts.RecordTrace {
		res.Trace = make([]TracePoint, 0, tracePrealloc(opts.Restarts, opts.MaxIters))
	}
	for k := range outcomes {
		out := &outcomes[k]
		if opts.OnImprove != nil {
			for _, im := range out.improves {
				opts.OnImprove(im.iter, im.ratio)
			}
		}
		res.Evaluations += out.evals
		if out.err != nil {
			return nil, out.err
		}
		res.Trace = append(res.Trace, out.trace...)
		res.RestartRatios = append(res.RestartRatios, out.ratio)
	}
	var winner *workerBest
	for w := range bests {
		wb := &bests[w]
		if wb.restart < 0 {
			continue
		}
		if winner == nil || wb.ratio > winner.ratio ||
			(wb.ratio == winner.ratio && wb.restart < winner.restart) {
			winner = wb
		}
	}
	if winner != nil {
		res.Best, res.BestRatio = winner.inst.Clone(), winner.ratio
	}
	_ = res.Best.Validate() // best-effort sanity; instances stay valid by construction
	return res, nil
}

// gaPool runs the GA's fitness fan-out: one evaluator per worker, kept
// for the whole RunGA so schedule buffers and tables stay warm across
// generations.
type gaPool struct {
	evs []*evaluator
}

func newGAPool(target, baseline scheduler.Scheduler, scratches []*scheduler.Scratch) *gaPool {
	evs := make([]*evaluator, len(scratches))
	for i, scr := range scratches {
		evs[i] = newEvaluator(target, baseline, scr)
	}
	return &gaPool{evs: evs}
}

// forEach runs fn(w, k) for every k in [lo, hi) across the pool's
// workers, k handed out dynamically. fn must confine its writes to
// index-k slots; forEach joins every worker before returning.
func (gp *gaPool) forEach(lo, hi int, fn func(w, k int)) {
	next := int64(lo) - 1
	var wg sync.WaitGroup
	for w := range gp.evs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1))
				if k >= hi {
					return
				}
				fn(w, k)
			}
		}(w)
	}
	wg.Wait()
}

// firstErr returns the lowest-indexed error in errs[lo:hi] — the one
// the sequential loop would have returned first.
func firstErr(errs []error, lo, hi int) error {
	for k := lo; k < hi; k++ {
		if errs[k] != nil {
			return errs[k]
		}
	}
	return nil
}

// runGAParallel is RunGA's Workers > 1 path. Each generation splits in
// two: every RNG draw — tournaments, crossover mixing, the mutation
// decision, the mutation operator itself — happens on this goroutine in
// the sequential loop's exact order (the table build the sequential
// loop interleaves between the mutation decision and the mutation
// consumes no randomness, so hoisting the draws changes no stream);
// then fitness fans out across the worker pool, each worker fully
// rebuilding its child's tables. The full rebuild is bit-identical to
// the sequential loop's build-then-delta-patch by the graph.Tables
// incremental contract, so ratios — and therefore selection, ordering
// and the final winner — match the sequential run bit for bit.
func runGAParallel(target, baseline scheduler.Scheduler, opts GAOptions, p PerturbOptions, r *rng.RNG, workers int) (*Result, error) {
	scr := opts.Scratch
	if scr == nil {
		scr = scheduler.NewScratch()
	}
	ps := scr.Ext(pisaExtKey, func() any { return new(perturbState) }).(*perturbState)
	ps.ops = append(ps.ops[:0], enabledOps(p)...)
	pool := newGAPool(target, baseline, workerScratches(scr, workers))
	res := &Result{}

	n := opts.PopulationSize
	ratios := make([]float64, n)
	errs := make([]error, n)

	// Initial population: the per-individual sub-stream splits happen
	// here in population order (identical draws to the sequential loop);
	// generation and evaluation fan out. InitialInstance must be safe
	// for concurrent calls, as in the annealer's parallel path.
	subs := make([]*rng.RNG, n)
	for i := range subs {
		subs[i] = r.Split()
	}
	pop := make([]individual, n)
	pool.forEach(0, n, func(w, k int) {
		inst := prepare(opts.InitialInstance(subs[k]), p)
		pop[k].inst = inst
		ratios[k], errs[k] = pool.evs[w].ratio(inst)
	})
	if err := firstErr(errs, 0, n); err != nil {
		return nil, err
	}
	for i := range pop {
		pop[i].ratio = ratios[i]
		res.Evaluations++
	}

	byFitness := func() { sortByFitness(pop) }
	byFitness()

	tournament := func() individual {
		best := pop[r.Intn(len(pop))]
		for k := 1; k < opts.TournamentK; k++ {
			c := pop[r.Intn(len(pop))]
			if c.ratio > best.ratio {
				best = c
			}
		}
		return best
	}

	// The same two ping-pong banks as the sequential loop; the spare
	// bank doubles as the per-offspring slot array the workers write
	// through (disjoint indices, joined before any read).
	next := make([]individual, n)
	spare := make([]*graph.Instance, n)

	for gen := 0; gen < opts.Generations; gen++ {
		m := 0
		for ; m < opts.Elite; m++ {
			spare[m] = copyInto(spare[m], pop[m].inst)
			next[m] = individual{inst: spare[m], ratio: pop[m].ratio}
		}
		// Phase 1 — all randomness, sequentially.
		for ; m < n; m++ {
			a, b := tournament(), tournament()
			spare[m] = crossoverInto(spare[m], a, b, r)
			if r.Float64() < opts.MutationRate {
				perturbInPlace(spare[m], r, p, ps)
			}
		}
		// Phase 2 — fitness, fanned out.
		pool.forEach(opts.Elite, n, func(w, k int) {
			ratios[k], errs[k] = pool.evs[w].ratio(spare[k])
		})
		if err := firstErr(errs, opts.Elite, n); err != nil {
			return nil, err
		}
		for k := opts.Elite; k < n; k++ {
			res.Evaluations++
			next[k] = individual{inst: spare[k], ratio: ratios[k]}
		}
		for i := range pop {
			spare[i] = pop[i].inst
		}
		pop, next = next, pop
		byFitness()
	}

	res.Best = pop[0].inst.Clone()
	res.BestRatio = pop[0].ratio
	res.RestartRatios = []float64{pop[0].ratio}
	return res, nil
}
