package core

import (
	"fmt"
	"math"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

func benchSched(b *testing.B, name string) scheduler.Scheduler {
	b.Helper()
	s, err := scheduler.New(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// pisaBenchInstances are the annealing workloads BenchmarkPISAIteration
// sweeps. The candidate-generation overhead the incremental loop
// removes — instance copy, link-table rebuild, per-edge average pair
// loops — grows with the network (O(|V|²) and O(|D|·|V|²) terms) while
// scheduling grows roughly linearly in |V|, so the speedup rises with
// node count: the Section VI chain (3-5 nodes) measures the paper's
// pairwise grid, the fog/cloud scales measure the repo's edge-fog-cloud
// scenarios (datasets.EdgeFogCloudNetwork is ~100 nodes). wide64 is the
// task-heavy counterpart — a 64-task layered DAG over 8 nodes, the
// BENCH_hotpath workload shape — where the per-candidate rank and topo
// computations (the work rank memoization and the incremental Kahn
// repair deduplicate) carry a visible share of the iteration.
func pisaBenchInstances() map[string]*graph.Instance {
	r := rng.New(0x90a)
	chainOn := func(net *graph.Network) *graph.Instance {
		g := graph.NewTaskGraph()
		prev := -1
		for i := 0; i < 5; i++ {
			t := g.AddTask(fmt.Sprintf("t%d", i), r.Float64())
			if prev >= 0 {
				g.MustAddDep(prev, t, r.Float64())
			}
			prev = t
		}
		return graph.NewInstance(g, net)
	}
	wide := graph.NewNetwork(48)
	for v := range wide.Speeds {
		wide.Speeds[v] = 0.01 + r.Float64()
		for u := v + 1; u < wide.NumNodes(); u++ {
			wide.SetLink(v, u, 0.01+r.Float64())
		}
	}
	layered := func(net *graph.Network) *graph.Instance {
		g := graph.NewTaskGraph()
		const layers, width = 8, 8
		for l := 0; l < layers; l++ {
			for w := 0; w < width; w++ {
				t := g.AddTask(fmt.Sprintf("t%d_%d", l, w), 0.1+r.Float64())
				if l > 0 {
					for k := 0; k < 1+r.Intn(3); k++ {
						p := (l-1)*width + r.Intn(width)
						if !g.HasDep(p, t) {
							g.MustAddDep(p, t, 0.1+r.Float64())
						}
					}
				}
			}
		}
		return graph.NewInstance(g, net)
	}
	eight := graph.NewNetwork(8)
	for v := range eight.Speeds {
		eight.Speeds[v] = 0.01 + r.Float64()
		for u := v + 1; u < eight.NumNodes(); u++ {
			eight.SetLink(v, u, 0.01+r.Float64())
		}
	}
	return map[string]*graph.Instance{
		"chain":  datasets.InitialPISAInstance(r.Split()),
		"fog48":  chainOn(wide),
		"wide64": layered(eight),
		"cloud":  chainOn(datasets.EdgeFogCloudNetwork(r.Split())),
	}
}

var pisaBenchScales = []string{"chain", "fog48", "wide64", "cloud"}

// runIncrementalIteration is the steady-state incremental annealing
// cycle for the HEFT-vs-CPoP pair — perturb in place, delta-patch the
// tables, evaluate both schedulers through the shared (memoized)
// scratch, accept or roll back — shared by BenchmarkPISAIteration and
// the TestPISAIterationMemoizationGate timing gate.
func runIncrementalIteration(b *testing.B, inst0 *graph.Instance) {
	p := DefaultPerturb().withDefaults()
	r := rng.New(0xbe7c)
	cur := inst0.Clone()
	ev := newEvaluator(benchSched(b, "HEFT"), benchSched(b, "CPoP"), nil)
	ps := &perturbState{ops: enabledOps(p)}
	tab := ev.prepare(cur)
	best := cur.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perturbInPlace(cur, r, p, ps)
		applyTables(tab, ps)
		ratio, err := ev.ratioPrepared(cur)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(ratio) {
			b.Fatal("NaN ratio")
		}
		if i%3 == 0 {
			best.CopyFrom(cur) // accept + new incumbent
		} else {
			revert(cur, tab, ps) // reject
		}
	}
}

// runReferenceIteration is the copy-and-rebuild counterpart with rank
// memoization disabled — the PR 4 baseline exactly as RunReference
// executes it (full Instance copy + full Tables rebuild + uncached
// ranks per candidate).
func runReferenceIteration(b *testing.B, inst0 *graph.Instance) {
	p := DefaultPerturb().withDefaults()
	r := rng.New(0xbe7c)
	cur := inst0.Clone()
	scr := scheduler.NewScratch()
	scr.SetEvalCache(false)
	ev := newEvaluator(benchSched(b, "HEFT"), benchSched(b, "CPoP"), scr)
	cand := cur.Clone()
	best := cur.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cand.CopyFrom(cur)
		refPerturb(cand, r, p)
		ratio, err := ev.ratio(cand)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(ratio) {
			b.Fatal("NaN ratio")
		}
		if i%3 == 0 {
			best.CopyFrom(cand)
			cur, cand = cand, cur
		}
	}
}

// BenchmarkPISAIteration measures one steady-state annealing iteration
// for the HEFT-vs-CPoP pair — perturb, evaluate both schedulers, and
// accept (incumbent copy) or reject (roll back) — comparing the
// incremental inner loop (mutate in place, undo log, delta Tables
// updates, rank memoization across the scheduler pair) against the
// retained copy-and-rebuild reference (full Instance copy + full Tables
// rebuild + uncached ranks per candidate) across the workload scales of
// pisaBenchInstances. Run with -benchmem: the incremental cycle must
// report 0 allocs/op once warm at every scale (`make bench-pisa` gates
// it, and TestPISASteadyStateZeroAlloc asserts it exactly); the
// incremental/reference ratio is gated at ≥1.3× by
// TestPISAIterationMemoizationGate. Committed numbers live in
// BENCH_pisa.json.
func BenchmarkPISAIteration(b *testing.B) {
	for _, scale := range pisaBenchScales {
		inst0 := pisaBenchInstances()[scale]
		b.Run(scale+"/incremental", func(b *testing.B) { runIncrementalIteration(b, inst0) })
		b.Run(scale+"/reference", func(b *testing.B) { runReferenceIteration(b, inst0) })
	}
}

// BenchmarkPISACandidateGen isolates exactly the work the incremental
// rewrite replaced — producing one candidate from the current state and
// undoing a rejection, with no scheduler evaluation: perturb-in-place +
// delta table patch + undo-log rollback, versus full Instance.CopyFrom
// + full Tables rebuild (the per-edge averages included, as every
// rank-reading scheduler forces them). The per-iteration evaluation
// cost that remains in BenchmarkPISAIteration is identical on both
// sides.
func BenchmarkPISACandidateGen(b *testing.B) {
	p := DefaultPerturb().withDefaults()
	for _, scale := range pisaBenchScales {
		inst0 := pisaBenchInstances()[scale]

		b.Run(scale+"/incremental", func(b *testing.B) {
			r := rng.New(0xbe7c)
			cur := inst0.Clone()
			ps := &perturbState{ops: enabledOps(p)}
			var tab graph.Tables
			tab.Build(cur)
			tab.EnsureAvgComm()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				perturbInPlace(cur, r, p, ps)
				applyTables(&tab, ps)
				tab.EnsureAvgComm() // what a rank-reading scheduler would force
				revert(cur, &tab, ps)
			}
		})

		b.Run(scale+"/reference", func(b *testing.B) {
			r := rng.New(0xbe7c)
			cur := inst0.Clone()
			cand := cur.Clone()
			var tab graph.Tables
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cand.CopyFrom(cur)
				refPerturb(cand, r, p)
				tab.Build(cand)
				tab.EnsureAvgComm()
			}
		})
	}
}
