package core

import (
	"fmt"
	"math"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

func benchSched(b *testing.B, name string) scheduler.Scheduler {
	b.Helper()
	s, err := scheduler.New(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// pisaBenchInstances are the annealing workloads BenchmarkPISAIteration
// sweeps. The candidate-generation overhead the incremental loop
// removes — instance copy, link-table rebuild, per-edge average pair
// loops — grows with the network (O(|V|²) and O(|D|·|V|²) terms) while
// scheduling grows roughly linearly in |V|, so the speedup rises with
// node count: the Section VI chain (3-5 nodes) measures the paper's
// pairwise grid, the fog/cloud scales measure the repo's edge-fog-cloud
// scenarios (datasets.EdgeFogCloudNetwork is ~100 nodes).
func pisaBenchInstances() map[string]*graph.Instance {
	r := rng.New(0x90a)
	chainOn := func(net *graph.Network) *graph.Instance {
		g := graph.NewTaskGraph()
		prev := -1
		for i := 0; i < 5; i++ {
			t := g.AddTask(fmt.Sprintf("t%d", i), r.Float64())
			if prev >= 0 {
				g.MustAddDep(prev, t, r.Float64())
			}
			prev = t
		}
		return graph.NewInstance(g, net)
	}
	wide := graph.NewNetwork(48)
	for v := range wide.Speeds {
		wide.Speeds[v] = 0.01 + r.Float64()
		for u := v + 1; u < wide.NumNodes(); u++ {
			wide.SetLink(v, u, 0.01+r.Float64())
		}
	}
	return map[string]*graph.Instance{
		"chain": datasets.InitialPISAInstance(r.Split()),
		"fog48": chainOn(wide),
		"cloud": chainOn(datasets.EdgeFogCloudNetwork(r.Split())),
	}
}

// BenchmarkPISAIteration measures one steady-state annealing iteration
// for the HEFT-vs-CPoP pair — perturb, evaluate both schedulers, and
// accept (incumbent copy) or reject (roll back) — comparing the
// incremental inner loop (mutate in place, undo log, delta Tables
// updates) against the retained copy-and-rebuild reference (full
// Instance copy + full Tables rebuild per candidate) across the
// workload scales of pisaBenchInstances. Run with -benchmem: the
// incremental cycle must report 0 allocs/op once warm at every scale
// (`make bench-pisa` gates it, and TestPISASteadyStateZeroAlloc asserts
// it exactly). Committed numbers live in BENCH_pisa.json.
func BenchmarkPISAIteration(b *testing.B) {
	p := DefaultPerturb().withDefaults()
	for _, scale := range []string{"chain", "fog48", "cloud"} {
		inst0 := pisaBenchInstances()[scale]

		b.Run(scale+"/incremental", func(b *testing.B) {
			r := rng.New(0xbe7c)
			cur := inst0.Clone()
			ev := newEvaluator(benchSched(b, "HEFT"), benchSched(b, "CPoP"), nil)
			ps := &perturbState{ops: enabledOps(p)}
			tab := ev.prepare(cur)
			best := cur.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				perturbInPlace(cur, r, p, ps)
				applyTables(tab, ps)
				ratio, err := ev.ratioPrepared(cur)
				if err != nil {
					b.Fatal(err)
				}
				if math.IsNaN(ratio) {
					b.Fatal("NaN ratio")
				}
				if i%3 == 0 {
					best.CopyFrom(cur) // accept + new incumbent
				} else {
					revert(cur, tab, ps) // reject
				}
			}
		})

		b.Run(scale+"/reference", func(b *testing.B) {
			r := rng.New(0xbe7c)
			cur := inst0.Clone()
			ev := newEvaluator(benchSched(b, "HEFT"), benchSched(b, "CPoP"), nil)
			cand := cur.Clone()
			best := cur.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cand.CopyFrom(cur)
				refPerturb(cand, r, p)
				ratio, err := ev.ratio(cand)
				if err != nil {
					b.Fatal(err)
				}
				if math.IsNaN(ratio) {
					b.Fatal("NaN ratio")
				}
				if i%3 == 0 {
					best.CopyFrom(cand)
					cur, cand = cand, cur
				}
			}
		})
	}
}

// BenchmarkPISACandidateGen isolates exactly the work this rewrite
// replaced — producing one candidate from the current state and undoing
// a rejection, with no scheduler evaluation: perturb-in-place + delta
// table patch + undo-log rollback, versus full Instance.CopyFrom + full
// Tables rebuild (the per-edge averages included, as every rank-reading
// scheduler forces them). The per-iteration evaluation cost that
// remains in BenchmarkPISAIteration is identical on both sides.
func BenchmarkPISACandidateGen(b *testing.B) {
	p := DefaultPerturb().withDefaults()
	for _, scale := range []string{"chain", "fog48", "cloud"} {
		inst0 := pisaBenchInstances()[scale]

		b.Run(scale+"/incremental", func(b *testing.B) {
			r := rng.New(0xbe7c)
			cur := inst0.Clone()
			ps := &perturbState{ops: enabledOps(p)}
			var tab graph.Tables
			tab.Build(cur)
			tab.EnsureAvgComm()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				perturbInPlace(cur, r, p, ps)
				applyTables(&tab, ps)
				tab.EnsureAvgComm() // what a rank-reading scheduler would force
				revert(cur, &tab, ps)
			}
		})

		b.Run(scale+"/reference", func(b *testing.B) {
			r := rng.New(0xbe7c)
			cur := inst0.Clone()
			cand := cur.Clone()
			var tab graph.Tables
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cand.CopyFrom(cur)
				refPerturb(cand, r, p)
				tab.Build(cand)
				tab.EnsureAvgComm()
			}
		})
	}
}
