package core

import (
	"math"
	"strings"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

func mustSched(t *testing.T, name string) scheduler.Scheduler {
	t.Helper()
	s, err := scheduler.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testOptions(seed uint64) Options {
	o := DefaultOptions()
	o.MaxIters = 120
	o.Restarts = 2
	o.Seed = seed
	o.InitialInstance = datasets.InitialPISAInstance
	return o
}

func TestRunFindsAdversarialInstance(t *testing.T) {
	res, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best instance returned")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("best instance invalid: %v", err)
	}
	if res.BestRatio <= 1 {
		t.Fatalf("PISA found no instance where HEFT loses to CPoP (ratio %v)", res.BestRatio)
	}
	if len(res.RestartRatios) != 2 {
		t.Fatalf("restart count = %d, want 2", len(res.RestartRatios))
	}
}

func TestRunBestRatioMatchesSchedulers(t *testing.T) {
	target, base := mustSched(t, "MinMin"), mustSched(t, "MaxMin")
	res, err := Run(target, base, testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	st, err := target.Schedule(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := base.Schedule(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Makespan() / sb.Makespan(); !graph.ApproxEq(got, res.BestRatio) {
		t.Fatalf("reported ratio %v, re-evaluated %v", res.BestRatio, got)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(mustSched(t, "HEFT"), mustSched(t, "FastestNode"), testOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mustSched(t, "HEFT"), mustSched(t, "FastestNode"), testOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRatio != b.BestRatio {
		t.Fatalf("same seed, different results: %v vs %v", a.BestRatio, b.BestRatio)
	}
}

func TestRunRespectsSpeedConstraint(t *testing.T) {
	opts := testOptions(9)
	opts.Perturb = DefaultPerturb()
	opts.Perturb.FixSpeeds = true
	res, err := Run(mustSched(t, "ETF"), mustSched(t, "HEFT"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Best.Net.Speeds {
		if s != 1 {
			t.Fatalf("pinned speed changed to %v", s)
		}
	}
}

func TestRunRespectsLinkConstraint(t *testing.T) {
	opts := testOptions(11)
	opts.Perturb = DefaultPerturb()
	opts.Perturb.FixLinks = true
	res, err := Run(mustSched(t, "GDL"), mustSched(t, "HEFT"), opts)
	if err != nil {
		t.Fatal(err)
	}
	net := res.Best.Net
	for u := 0; u < net.NumNodes(); u++ {
		for v := u + 1; v < net.NumNodes(); v++ {
			if net.Links[u][v] != 1 {
				t.Fatalf("pinned link changed to %v", net.Links[u][v])
			}
		}
	}
}

func TestRunStructureFixedKeepsTopology(t *testing.T) {
	opts := testOptions(13)
	opts.Perturb = DefaultPerturb()
	opts.Perturb.FixStructure = true
	base := datasets.InitialPISAInstance(rng.New(99))
	wantTasks := base.Graph.NumTasks()
	wantDeps := base.Graph.NumDeps()
	opts.InitialInstance = func(r *rng.RNG) *graph.Instance { return base.Clone() }
	res, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Graph.NumTasks() != wantTasks || res.Best.Graph.NumDeps() != wantDeps {
		t.Fatalf("structure changed under FixStructure: %d tasks / %d deps, want %d / %d",
			res.Best.Graph.NumTasks(), res.Best.Graph.NumDeps(), wantTasks, wantDeps)
	}
	for _, d := range base.Graph.Deps() {
		if !res.Best.Graph.HasDep(d[0], d[1]) {
			t.Fatalf("dependency (%d,%d) vanished under FixStructure", d[0], d[1])
		}
	}
}

func TestRunOnImproveMonotonic(t *testing.T) {
	opts := testOptions(15)
	last, lastIter := 0.0, -1
	opts.OnImprove = func(iter int, ratio float64) {
		if iter <= lastIter {
			// New restart: the incumbent best resets.
			last = 0
		}
		lastIter = iter
		if ratio < last {
			t.Fatalf("OnImprove ratio decreased within a restart: %v after %v", ratio, last)
		}
		last = ratio
	}
	if _, err := Run(mustSched(t, "MCT"), mustSched(t, "HEFT"), opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	good := testOptions(1)
	nan := math.NaN()
	cases := []func(*Options){
		func(o *Options) { o.InitialInstance = nil },
		func(o *Options) { o.MaxIters = 0 },
		func(o *Options) { o.Restarts = 0 },
		func(o *Options) { o.Alpha = 1.5 },
		func(o *Options) { o.Alpha = nan },
		func(o *Options) { o.TMin = -1 },
		func(o *Options) { o.TMax = 0.05 },                       // below TMin
		func(o *Options) { o.TMax = math.Inf(1) },                // never cools
		func(o *Options) { o.Perturb.Step = -0.1 },               // inverted step
		func(o *Options) { o.Perturb.Step = nan },                //
		func(o *Options) { o.Perturb.Link = [2]float64{1, 0.2} }, // inverted range
		func(o *Options) { o.Perturb.TaskCost = [2]float64{nan, 1} },
		func(o *Options) { o.Perturb.DepCost = [2]float64{0, math.Inf(1)} }, // infinite bound
		func(o *Options) { o.Perturb.MinNetWeight = -5 },
		func(o *Options) { o.Perturb.MinNetWeight = math.Inf(1) },
	}
	for i, mutate := range cases {
		o := good
		mutate(&o)
		_, errRun := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), o)
		_, errRef := RunReference(mustSched(t, "HEFT"), mustSched(t, "CPoP"), o)
		if errRun == nil || errRef == nil {
			t.Errorf("case %d: invalid options accepted (run=%v, ref=%v)", i, errRun, errRef)
			continue
		}
		if errRun.Error() != errRef.Error() {
			t.Errorf("case %d: Run and RunReference reject differently:\n%v\n%v", i, errRun, errRef)
		}
	}
}

// TestTracePreallocCapped pins the satellite fix for pathological
// budgets: the up-front trace capacity is overflow-safe and bounded by
// maxTracePrealloc, while sane budgets still get their exact product
// (TestRunTracePreallocated asserts the hot loop relies on that).
func TestTracePreallocCapped(t *testing.T) {
	cases := []struct {
		restarts, maxIters, want int
	}{
		{2, 120, 240},
		{5, 1000, 5000},
		{1, maxTracePrealloc, maxTracePrealloc},
		{2, maxTracePrealloc, maxTracePrealloc},              // over the cap
		{1 << 31, 1 << 31, maxTracePrealloc},                 // product overflows on 32-bit int
		{math.MaxInt / 2, math.MaxInt / 2, maxTracePrealloc}, // product overflows everywhere
	}
	for _, c := range cases {
		if got := tracePrealloc(c.restarts, c.maxIters); got != c.want {
			t.Errorf("tracePrealloc(%d, %d) = %d, want %d", c.restarts, c.maxIters, got, c.want)
		}
	}
}

func TestRunKeepPinnedWeights(t *testing.T) {
	opts := testOptions(17)
	opts.Perturb = DefaultPerturb()
	opts.Perturb.FixLinks = true
	opts.Perturb.KeepPinnedWeights = true
	// Initial instance with distinctive link strength 0.42.
	opts.InitialInstance = func(r *rng.RNG) *graph.Instance {
		inst := datasets.InitialPISAInstance(r)
		for u := 0; u < inst.Net.NumNodes(); u++ {
			for v := u + 1; v < inst.Net.NumNodes(); v++ {
				inst.Net.SetLink(u, v, 0.42)
			}
		}
		return inst
	}
	res, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	net := res.Best.Net
	for u := 0; u < net.NumNodes(); u++ {
		for v := u + 1; v < net.NumNodes(); v++ {
			if net.Links[u][v] != 0.42 {
				t.Fatalf("KeepPinnedWeights lost the initial link strength: %v", net.Links[u][v])
			}
		}
	}
}

func TestEvaluateInfiniteRatio(t *testing.T) {
	// A zero-makespan baseline (all-zero costs on FastestNode) yields an
	// infinite ratio rather than NaN.
	g := graph.NewTaskGraph()
	g.AddTask("a", 0)
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	zero := mustSched(t, "FastestNode")
	r, err := evaluate(zero, zero, inst)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("0/0 ratio = %v, want 1", r)
	}
}

func TestRunRecordTrace(t *testing.T) {
	opts := testOptions(23)
	opts.RecordTrace = true
	res, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// One point per candidate evaluation minus the initial evaluations.
	if len(res.Trace) != res.Evaluations-opts.Restarts {
		t.Fatalf("trace length %d, evaluations %d, restarts %d",
			len(res.Trace), res.Evaluations, opts.Restarts)
	}
	// Within each restart: temperature strictly decreasing, best
	// non-decreasing, iterations increasing.
	for i := 1; i < len(res.Trace); i++ {
		p, q := res.Trace[i-1], res.Trace[i]
		if q.Restart == p.Restart {
			if q.Temperature >= p.Temperature {
				t.Fatal("temperature not cooling")
			}
			if q.Iteration != p.Iteration+1 {
				t.Fatal("iterations not consecutive")
			}
			if q.Best < p.Best {
				t.Fatal("incumbent best decreased within a restart")
			}
		}
	}
	csv := res.TraceCSV()
	if !strings.HasPrefix(csv, "restart,iteration,temperature,ratio,best,accepted\n") {
		t.Fatalf("trace CSV header wrong:\n%.80s", csv)
	}
	if strings.Count(csv, "\n") != len(res.Trace)+1 {
		t.Fatal("trace CSV row count wrong")
	}
}

func TestRunTraceOffByDefault(t *testing.T) {
	res, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), testOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Fatal("trace recorded without RecordTrace")
	}
}
