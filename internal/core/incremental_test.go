package core

import (
	"bytes"
	"math"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
	"saga/internal/serialize"
)

// fingerprint is the byte identity used throughout these tests: the
// deterministic JSON serialization covers every weight, the adjacency
// order, and the network, so equal bytes mean equal instances.
func fingerprint(t *testing.T, inst *graph.Instance) []byte {
	t.Helper()
	data, err := serialize.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// incrementalModes are the perturbation configurations the bit-identity
// suite sweeps: together they exercise all six operators (general), the
// homogeneity-pinned subsets, and the Section VII application-specific
// restriction (no structure changes, links pinned and kept).
func incrementalModes() map[string]PerturbOptions {
	appSpecific := DefaultPerturb()
	appSpecific.FixStructure = true
	appSpecific.FixLinks = true
	appSpecific.KeepPinnedWeights = true
	fixSpeeds := DefaultPerturb()
	fixSpeeds.FixSpeeds = true
	fixLinks := DefaultPerturb()
	fixLinks.FixLinks = true
	return map[string]PerturbOptions{
		"general":     DefaultPerturb(),
		"fixSpeeds":   fixSpeeds,
		"fixLinks":    fixLinks,
		"appSpecific": appSpecific,
	}
}

// TestRunBitIdenticalToReference is the acceptance gate of the
// incremental inner loop: for a panel of scheduler pairs and every
// perturbation mode, the mutate-in-place annealer (undo log + delta
// Tables updates) must produce byte-identical Results — best-instance
// serialization, exact ratios, trace, evaluation counts — to the
// retained copy-and-rebuild reference implementation.
func TestRunBitIdenticalToReference(t *testing.T) {
	pairs := [][2]string{
		{"HEFT", "CPoP"},
		{"MinMin", "MaxMin"},
		{"ETF", "HEFT"},
		{"GDL", "BIL"},
		{"HEFT", "FastestNode"},
	}
	for mode, p := range incrementalModes() {
		for _, pair := range pairs {
			t.Run(mode+"/"+pair[0]+"-vs-"+pair[1], func(t *testing.T) {
				opts := testOptions(uint64(len(mode) + len(pair[0])*31))
				opts.Perturb = p
				opts.RecordTrace = true
				inc, err := Run(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := RunReference(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, inc, ref)
			})
		}
	}
}

// TestRunBitIdenticalSharedScratch re-runs one pair with an explicit
// per-caller scratch on both sides (the parallel drivers' calling
// convention) — scratch reuse must not perturb results either.
func TestRunBitIdenticalSharedScratch(t *testing.T) {
	opts := testOptions(41)
	opts.RecordTrace = true
	opts.Scratch = scheduler.NewScratch()
	inc, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Scratch = scheduler.NewScratch()
	ref, err := RunReference(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, inc, ref)
}

func assertResultsIdentical(t *testing.T, inc, ref *Result) {
	t.Helper()
	if inc.BestRatio != ref.BestRatio {
		t.Fatalf("BestRatio diverged: incremental %v, reference %v", inc.BestRatio, ref.BestRatio)
	}
	if inc.Evaluations != ref.Evaluations {
		t.Fatalf("Evaluations diverged: incremental %d, reference %d", inc.Evaluations, ref.Evaluations)
	}
	if len(inc.RestartRatios) != len(ref.RestartRatios) {
		t.Fatalf("RestartRatios length diverged: %d vs %d", len(inc.RestartRatios), len(ref.RestartRatios))
	}
	for i := range inc.RestartRatios {
		if inc.RestartRatios[i] != ref.RestartRatios[i] {
			t.Fatalf("RestartRatios[%d] diverged: %v vs %v", i, inc.RestartRatios[i], ref.RestartRatios[i])
		}
	}
	if !bytes.Equal(fingerprint(t, inc.Best), fingerprint(t, ref.Best)) {
		t.Fatal("best-instance serialization diverged")
	}
	if len(inc.Trace) != len(ref.Trace) {
		t.Fatalf("trace length diverged: %d vs %d", len(inc.Trace), len(ref.Trace))
	}
	for i := range inc.Trace {
		if inc.Trace[i] != ref.Trace[i] {
			t.Fatalf("trace point %d diverged:\nincremental %+v\nreference   %+v", i, inc.Trace[i], ref.Trace[i])
		}
	}
}

// TestRunTracePreallocated pins the satellite requirement that tracing
// never grows the trace slice inside the hot loop: the capacity is
// exactly the preallocated Restarts×MaxIters (append growth would have
// replaced it with a larger block).
func TestRunTracePreallocated(t *testing.T) {
	opts := testOptions(27)
	opts.RecordTrace = true
	res, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := opts.Restarts * opts.MaxIters
	if cap(res.Trace) != want {
		t.Fatalf("trace capacity %d; want the preallocated %d (append growth fired in the hot loop)", cap(res.Trace), want)
	}
	if len(res.Trace) == 0 || len(res.Trace) > want {
		t.Fatalf("trace length %d outside (0, %d]", len(res.Trace), want)
	}
}

// TestPISASteadyStateZeroAlloc gates the steady-state accept/reject
// cycle at zero heap allocations: perturb in place, patch tables,
// evaluate both schedulers, record a trace point into a preallocated
// buffer, and roll back (reject) or keep and copy into the incumbent
// (accept). A long mixed-operator warm-up first drives every buffer to
// its high-water mark, exactly as a real annealing chain does.
func TestPISASteadyStateZeroAlloc(t *testing.T) {
	p := DefaultPerturb().withDefaults()
	r := rng.New(0x5eed)
	cur := prepare(datasets.InitialPISAInstance(r.Split()), p)
	scr := scheduler.NewScratch()
	ev := newEvaluator(mustSched(t, "HEFT"), mustSched(t, "CPoP"), scr)
	ps := &perturbState{ops: enabledOps(p)}
	tab := ev.prepare(cur)
	best := cur.Clone()
	trace := make([]TracePoint, 0, 4096)

	cycle := func(accept bool) {
		perturbInPlace(cur, r, p, ps)
		applyTables(tab, ps)
		ratio, err := ev.ratioPrepared(cur)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(ratio) {
			t.Fatal("NaN ratio")
		}
		if accept {
			best.CopyFrom(cur)
		} else {
			revert(cur, tab, ps)
		}
		if len(trace) == cap(trace) {
			trace = trace[:0]
		}
		trace = append(trace, TracePoint{Ratio: ratio, Accepted: accept})
	}

	for i := 0; i < 3000; i++ {
		cycle(i%3 == 0)
	}
	allocs := testing.AllocsPerRun(400, func() {
		cycle(false)
		cycle(true)
	})
	if allocs != 0 {
		t.Fatalf("steady-state accept/reject cycle allocates %.2f times per op; want 0", allocs)
	}
}
