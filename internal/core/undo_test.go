package core

import (
	"bytes"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

// forceOp drives one specific operator (with its fallback chain) the
// way perturbInPlace would, bypassing the random operator pick.
func forceOp(op perturbOp, inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) {
	ps.log = ps.log[:0]
	switch op {
	case opNodeWeight:
		applyNodeWeight(inst, r, p, ps)
	case opLinkWeight:
		if !applyLinkWeight(inst, r, p, ps) {
			applyNodeWeight(inst, r, p, ps)
		}
	case opTaskWeight:
		applyTaskWeight(inst, r, p, ps)
	case opDepWeight:
		if !applyDepWeight(inst, r, p, ps) {
			applyTaskWeight(inst, r, p, ps)
		}
	case opAddDep:
		if !applyAddDep(inst, r, p, ps) {
			applyTaskWeight(inst, r, p, ps)
		}
	case opRemoveDep:
		if !applyRemoveDep(inst, r, ps) {
			applyTaskWeight(inst, r, p, ps)
		}
	}
}

var opNames = map[perturbOp]string{
	opNodeWeight: "NodeWeight",
	opLinkWeight: "LinkWeight",
	opTaskWeight: "TaskWeight",
	opDepWeight:  "DepWeight",
	opAddDep:     "AddDep",
	opRemoveDep:  "RemoveDep",
}

// TestPerturbUndoRoundTrip is the per-operator apply→undo property:
// for every operator — including the structural AddDep/RemoveDep — and
// a panel of randomized instances, applying the perturbation and then
// reverting the undo log restores the instance byte-identically
// (serialization fingerprints equal) and leaves the incrementally
// patched tables bit-identical to a fresh rebuild.
func TestPerturbUndoRoundTrip(t *testing.T) {
	p := DefaultPerturb().withDefaults()
	for op, name := range opNames {
		op := op
		t.Run(name, func(t *testing.T) {
			r := rng.New(0xabc + uint64(op))
			for trial := 0; trial < 50; trial++ {
				inst := datasets.InitialPISAInstance(r.Split())
				ps := &perturbState{ops: enabledOps(p)}
				var tab graph.Tables
				tab.Build(inst)
				tab.EnsureAvgComm()
				// Several rounds per instance so the operator also hits
				// states it created itself (e.g. removing an edge it added).
				for round := 0; round < 20; round++ {
					before := fingerprint(t, inst)
					forceOp(op, inst, r, p, ps)
					applyTables(&tab, ps)
					revert(inst, &tab, ps)
					after := fingerprint(t, inst)
					if !bytes.Equal(before, after) {
						t.Fatalf("trial %d round %d: apply→undo changed the instance\nbefore: %s\nafter:  %s",
							trial, round, before, after)
					}
					assertTablesMatchRebuild(t, &tab, inst)
					// Now let the mutation stand so later rounds start
					// from a perturbed state.
					forceOp(op, inst, r, p, ps)
					applyTables(&tab, ps)
				}
				if err := inst.Validate(); err != nil {
					t.Fatalf("trial %d: instance invalid after perturbations: %v", trial, err)
				}
			}
		})
	}
}

// TestPerturbUndoRoundTripMixed is the whole-loop form of the property:
// a long random operator sequence where every application is undone,
// finishing with the original instance bytes.
func TestPerturbUndoRoundTripMixed(t *testing.T) {
	for mode, p := range incrementalModes() {
		t.Run(mode, func(t *testing.T) {
			pp := p.withDefaults()
			r := rng.New(0xdef)
			inst := prepare(datasets.InitialPISAInstance(r.Split()), pp)
			ps := &perturbState{ops: enabledOps(pp)}
			var tab graph.Tables
			tab.Build(inst)
			before := fingerprint(t, inst)
			for i := 0; i < 2000; i++ {
				perturbInPlace(inst, r, pp, ps)
				applyTables(&tab, ps)
				if i%100 == 0 {
					tab.EnsureAvgComm() // exercise the patched-while-built path
				}
				revert(inst, &tab, ps)
			}
			if !bytes.Equal(before, fingerprint(t, inst)) {
				t.Fatal("2000 undone perturbations drifted the instance")
			}
			assertTablesMatchRebuild(t, &tab, inst)
		})
	}
}

// assertTablesMatchRebuild compares an incrementally maintained Tables
// against a fresh Build for the same instance, bit for bit, through the
// scheduling-relevant surface: the rank inputs (which read every exec
// average, edge average, and the topological order) and the full
// link-accessor surface.
func assertTablesMatchRebuild(t *testing.T, tab *graph.Tables, inst *graph.Instance) {
	t.Helper()
	var fresh graph.Tables
	fresh.Build(inst)
	fresh.EnsureAvgComm()
	tab.EnsureAvgComm()
	if tab.NTasks != fresh.NTasks || tab.NNodes != fresh.NNodes {
		t.Fatalf("table shape diverged: (%d,%d) vs (%d,%d)", tab.NTasks, tab.NNodes, fresh.NTasks, fresh.NNodes)
	}
	assertF64Equal(t, "InvSpeed", tab.InvSpeed, fresh.InvSpeed)
	for u := 0; u < tab.NNodes; u++ {
		for v := 0; v < tab.NNodes; v++ {
			if tab.Link(u, v) != fresh.Link(u, v) {
				t.Fatalf("Link(%d,%d) diverged: %v vs %v", u, v, tab.Link(u, v), fresh.Link(u, v))
			}
			if tab.CommFree(u, v) != fresh.CommFree(u, v) {
				t.Fatalf("CommFree(%d,%d) diverged: %v vs %v", u, v, tab.CommFree(u, v), fresh.CommFree(u, v))
			}
		}
	}
	assertF64Equal(t, "AvgExec", tab.AvgExec, fresh.AvgExec)
	assertF64Equal(t, "Exec", tab.Exec, fresh.Exec)
	if len(tab.Topo) != len(fresh.Topo) {
		t.Fatalf("Topo length diverged: %d vs %d", len(tab.Topo), len(fresh.Topo))
	}
	for i := range tab.Topo {
		if tab.Topo[i] != fresh.Topo[i] {
			t.Fatalf("Topo[%d] diverged: %d vs %d", i, tab.Topo[i], fresh.Topo[i])
		}
	}
	g := inst.Graph
	for u := 0; u < g.NumTasks(); u++ {
		for i := range g.Succ[u] {
			if tab.AvgCommSucc(u, i) != fresh.AvgCommSucc(u, i) {
				t.Fatalf("AvgCommSucc(%d,%d) diverged: %v vs %v", u, i, tab.AvgCommSucc(u, i), fresh.AvgCommSucc(u, i))
			}
		}
		for i := range g.Pred[u] {
			if tab.AvgCommPred(u, i) != fresh.AvgCommPred(u, i) {
				t.Fatalf("AvgCommPred(%d,%d) diverged: %v vs %v", u, i, tab.AvgCommPred(u, i), fresh.AvgCommPred(u, i))
			}
		}
	}
}

func assertF64Equal(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s length diverged: %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] diverged: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestPerturbStateLivesInScratch pins where the undo machinery's state
// is owned: two Runs threading the same scratch reuse one perturbState
// (no per-run state leaks into globals), and distinct scratches never
// share one.
func TestPerturbStateLivesInScratch(t *testing.T) {
	scr := scheduler.NewScratch()
	opts := testOptions(51)
	opts.Scratch = scr
	if _, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts); err != nil {
		t.Fatal(err)
	}
	ps := scr.Ext(pisaExtKey, func() any { return new(perturbState) }).(*perturbState)
	if len(ps.ops) == 0 {
		t.Fatal("Run left no perturbState in the scratch it was given")
	}
	other := scheduler.NewScratch()
	ps2 := other.Ext(pisaExtKey, func() any { return new(perturbState) }).(*perturbState)
	if ps2 == ps {
		t.Fatal("distinct scratches share one perturbState")
	}
}
