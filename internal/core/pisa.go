// Package core implements PISA — Problem-instance Identification using
// Simulated Annealing — the paper's primary contribution (Section VI).
//
// Given a target scheduler A and a baseline scheduler B, PISA searches
// the space of problem instances for one that maximizes the makespan
// ratio m(S_A)/m(S_B), i.e. an instance on which A maximally
// under-performs B. The search is the simulated annealing loop of
// Algorithm 1: perturb the instance, keep it if the ratio improved,
// otherwise keep it with a temperature-controlled probability, and cool.
//
// Six perturbation operators match Section VI; the application-specific
// mode of Section VII restricts them (no structural changes, weights
// rescaled to observed ranges, links pinned) so the search stays inside a
// family of realistic instances.
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// DefaultOptions returns the paper's annealing parameters: Tmax = 10,
// Tmin = 0.1, α = 0.99, Imax = 1000, 5 restarts.
func DefaultOptions() Options {
	return Options{
		TMax:     10,
		TMin:     0.1,
		Alpha:    0.99,
		MaxIters: 1000,
		Restarts: 5,
		Seed:     1,
	}
}

// Options configures a PISA run.
type Options struct {
	// TMax, TMin and Alpha control the cooling schedule; MaxIters caps
	// iterations per restart.
	TMax, TMin, Alpha float64
	MaxIters          int
	// Restarts is the number of independent annealing runs, each from a
	// freshly generated initial instance.
	Restarts int
	// Seed drives all randomness (restart sub-streams are derived).
	Seed uint64
	// InitialInstance, if non-nil, generates the starting instance for
	// each restart. Nil means datasets.InitialPISAInstance-style chains
	// must be supplied by the caller via this hook.
	InitialInstance func(r *rng.RNG) *graph.Instance
	// Perturb configures the perturbation operators. Zero value =
	// Section VI defaults via DefaultPerturb.
	Perturb PerturbOptions
	// OnImprove, if non-nil, is called whenever the best ratio improves
	// (useful for tracing).
	OnImprove func(iteration int, ratio float64)
	// RecordTrace, when set, captures one TracePoint per candidate
	// evaluation into Result.Trace — the data behind annealing-curve
	// plots and convergence analysis.
	RecordTrace bool
	// Workers bounds how many restart chains anneal concurrently. 0 or 1
	// runs the classic sequential loop — the right choice inside an
	// already-parallel sweep (runner.Map gives each cell one goroutine;
	// nesting more would oversubscribe). Values above Restarts are
	// clamped. Results are bit-identical for every value: each chain
	// consumes the per-restart RNG stream the sequential loop's k-th
	// root.Split() would yield, owns private scheduling state, and the
	// chains merge canonically in restart order (argmax ratio, ties to
	// the lowest restart index — exactly the sequential fold). With
	// Workers > 1, InitialInstance must be safe for concurrent calls
	// (the stock dataset generators are pure); OnImprove is never called
	// concurrently — improvements are buffered per chain and replayed in
	// restart order on the calling goroutine.
	Workers int
	// Scratch, when non-nil, is the reusable per-worker scheduling state
	// (builder, precomputed tables, rank buffers) threaded through every
	// candidate evaluation. Nil allocates a private one per Run. Parallel
	// sweeps pass one scratch per worker (runner.MapState) so nothing is
	// shared across goroutines; the scratch never affects results.
	Scratch *scheduler.Scratch
}

// TracePoint is one step of the annealing search.
type TracePoint struct {
	Restart     int
	Iteration   int
	Temperature float64
	Ratio       float64 // the candidate's makespan ratio
	Best        float64 // incumbent best after this step
	Accepted    bool    // candidate became the current state
}

// PerturbOptions bounds the perturbation operators.
type PerturbOptions struct {
	// Step is the maximum absolute weight change per perturbation
	// (paper: 0.1 — one tenth of the weight range).
	Step float64
	// TaskCost, DepCost, Speed and Link are the [min, max] ranges weights
	// are clamped to. The paper's Section VI search uses [0, 1] for all.
	TaskCost, DepCost, Speed, Link [2]float64
	// FixSpeeds pins node speeds (set for schedulers designed for
	// homogeneous nodes: ETF, FCP, FLB).
	FixSpeeds bool
	// FixLinks pins link strengths (set for schedulers designed for
	// homogeneous links: BIL, GDL, FCP, FLB — and for the Section VII
	// application-specific mode, which fixes links to enforce a CCR).
	FixLinks bool
	// FixStructure disables the add/remove-dependency operators
	// (Section VII application-specific mode).
	FixStructure bool
	// KeepPinnedWeights keeps the initial instance's pinned speeds/links
	// as generated instead of resetting them to 1. Section VI resets
	// pinned weights to 1 (the zero value); the Section VII
	// application-specific mode sets this so the CCR-derived link
	// strengths survive.
	KeepPinnedWeights bool
	// MinNetWeight floors network weights so speeds and strengths stay
	// positive; defaults to 0.01.
	MinNetWeight float64
}

// DefaultPerturb returns the Section VI perturbation configuration:
// step 0.1, all weights in [0, 1], full structural freedom.
func DefaultPerturb() PerturbOptions {
	return PerturbOptions{
		Step:     0.1,
		TaskCost: [2]float64{0, 1},
		DepCost:  [2]float64{0, 1},
		Speed:    [2]float64{0, 1},
		Link:     [2]float64{0, 1},
	}
}

func (p PerturbOptions) withDefaults() PerturbOptions {
	if p.Step == 0 {
		p.Step = 0.1
	}
	zero := [2]float64{}
	if p.TaskCost == zero {
		p.TaskCost = [2]float64{0, 1}
	}
	if p.DepCost == zero {
		p.DepCost = [2]float64{0, 1}
	}
	if p.Speed == zero {
		p.Speed = [2]float64{0, 1}
	}
	if p.Link == zero {
		p.Link = [2]float64{0, 1}
	}
	if p.MinNetWeight == 0 {
		p.MinNetWeight = 0.01
	}
	return p
}

// Result is the outcome of a PISA run.
type Result struct {
	// Best is the instance maximizing the makespan ratio of the target
	// over the baseline; BestRatio is that ratio.
	Best      *graph.Instance
	BestRatio float64
	// RestartRatios records the best ratio achieved by each restart.
	RestartRatios []float64
	// Evaluations counts scheduler invocations (two per candidate).
	Evaluations int
	// Trace holds per-candidate annealing steps when
	// Options.RecordTrace is set.
	Trace []TracePoint
}

// TraceCSV renders the recorded trace as CSV (one row per candidate).
func (r *Result) TraceCSV() string {
	var b strings.Builder
	b.WriteString("restart,iteration,temperature,ratio,best,accepted\n")
	for _, p := range r.Trace {
		fmt.Fprintf(&b, "%d,%d,%.6f,%.6f,%.6f,%t\n",
			p.Restart, p.Iteration, p.Temperature, p.Ratio, p.Best, p.Accepted)
	}
	return b.String()
}

// pisaExtKey is the scheduler.Scratch.Ext key under which Run (and
// RunGA, which shares the same perturbation machinery) keeps its
// per-worker perturbState (undo log, enabled-op set, reachability
// buffers), following the PR 2 ownership rule: per-worker state lives
// in the worker's Scratch, never in shared or global storage.
const pisaExtKey = "core.pisa"

// maxTracePrealloc caps the up-front Result.Trace capacity at 2^20
// trace points (~56 MB of TracePoints). Preallocating Restarts×MaxIters
// keeps the hot loop's appends growth-free for every sane budget, but
// the product is caller-controlled: absurd flag values must not turn
// into a multi-gigabyte allocation (or an int overflow) before the
// first iteration runs. Beyond the cap, append grows the slice the
// ordinary way — correct, just not allocation-free.
const maxTracePrealloc = 1 << 20

// tracePrealloc returns the overflow-safe Trace capacity for a budget;
// both arguments must already be validated positive.
func tracePrealloc(restarts, maxIters int) int {
	if restarts > maxTracePrealloc/maxIters {
		return maxTracePrealloc
	}
	return restarts * maxIters
}

// checkOptions validates an annealing configuration; Run and
// RunReference share it so the two loops reject identical inputs with
// identical errors.
func checkOptions(opts Options) error {
	if opts.InitialInstance == nil {
		return errors.New("core: Options.InitialInstance is required")
	}
	if opts.MaxIters <= 0 || opts.Restarts <= 0 {
		return errors.New("core: MaxIters and Restarts must be positive")
	}
	if !(opts.Alpha > 0 && opts.Alpha < 1) || !(opts.TMax > opts.TMin) || opts.TMin <= 0 ||
		math.IsInf(opts.TMax, 0) {
		return fmt.Errorf("core: invalid cooling schedule (TMax=%v, TMin=%v, Alpha=%v)",
			opts.TMax, opts.TMin, opts.Alpha)
	}
	return checkPerturb(opts.Perturb)
}

// checkPerturb validates perturbation bounds (shared with the GA):
// non-finite or negative steps, inverted weight ranges, and NaN floors
// previously produced silently degenerate searches — weights stuck at a
// clamp boundary, or NaN ratios poisoning every comparison.
func checkPerturb(p PerturbOptions) error {
	if p.Step < 0 || math.IsNaN(p.Step) || math.IsInf(p.Step, 0) {
		return fmt.Errorf("core: invalid perturbation step %v", p.Step)
	}
	ranges := [...]struct {
		name string
		r    [2]float64
	}{
		{"TaskCost", p.TaskCost}, {"DepCost", p.DepCost},
		{"Speed", p.Speed}, {"Link", p.Link},
	}
	for _, x := range ranges {
		if math.IsNaN(x.r[0]) || math.IsNaN(x.r[1]) ||
			math.IsInf(x.r[0], 0) || math.IsInf(x.r[1], 0) || x.r[0] > x.r[1] {
			return fmt.Errorf("core: invalid %s range [%v, %v]", x.name, x.r[0], x.r[1])
		}
	}
	if p.MinNetWeight < 0 || math.IsNaN(p.MinNetWeight) || math.IsInf(p.MinNetWeight, 0) {
		return fmt.Errorf("core: invalid MinNetWeight %v", p.MinNetWeight)
	}
	return nil
}

// Run executes PISA for target scheduler A against baseline B. The
// result's Best instance maximizes m(S_A)/m(S_B) over the search.
//
// The inner loop mutates the current instance in place: each iteration
// applies one perturbation operator directly to cur, patches the
// scratch's precomputed cost tables incrementally (graph.Tables
// Update*/AddDep/RemoveDep — never a full rebuild), evaluates, and on
// rejection rolls the mutation back through the undo log. Results are
// bit-identical to the retained copy-and-rebuild implementation
// (RunReference); incremental_test.go proves it across perturbation
// modes and scheduler pairs. Once warm, the steady-state accept/reject
// cycle performs zero heap allocations.
func Run(target, baseline scheduler.Scheduler, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	p := opts.Perturb.withDefaults()
	root := rng.New(opts.Seed)
	if w := chainWorkers(opts); w > 1 {
		return runParallel(target, baseline, opts, p, root, w)
	}
	cs := newChainState(newEvaluator(target, baseline, opts.Scratch), p)

	res := &Result{
		BestRatio:     math.Inf(-1),
		RestartRatios: make([]float64, 0, opts.Restarts),
	}
	if opts.RecordTrace {
		// The full capacity up front (capped — see maxTracePrealloc): for
		// every sane budget the hot loop's appends never trigger growth
		// (each would copy the whole trace so far).
		res.Trace = make([]TracePoint, 0, tracePrealloc(opts.Restarts, opts.MaxIters))
	}
	for restart := 0; restart < opts.Restarts; restart++ {
		bestRatio, evals, trace, err := cs.runChain(opts, p, restart, root.Split(), res.Trace, opts.OnImprove)
		res.Evaluations += evals
		if err != nil {
			return nil, err
		}
		res.Trace = trace
		res.RestartRatios = append(res.RestartRatios, bestRatio)
		if bestRatio > res.BestRatio {
			res.Best, res.BestRatio = cs.best.Clone(), bestRatio
		}
	}
	_ = res.Best.Validate() // best-effort sanity; instances stay valid by construction
	return res, nil
}

// chainWorkers resolves Options.Workers to an effective chain count:
// 0 and 1 mean sequential, anything larger is clamped to Restarts
// (chains beyond the restart budget would sit idle).
func chainWorkers(opts Options) int {
	w := opts.Workers
	if w > opts.Restarts {
		w = opts.Restarts
	}
	return w
}

// chainState is the per-worker annealing machinery one goroutine owns:
// the evaluator (scratch, tables, schedule buffers), the perturbation
// undo state parked in that scratch, and the incumbent-best buffer every
// chain it runs reuses. One chainState serves the whole sequential Run;
// the parallel path builds one per worker.
type chainState struct {
	ev   *evaluator
	ps   *perturbState
	best *graph.Instance
}

func newChainState(ev *evaluator, p PerturbOptions) *chainState {
	ps := ev.scr.Ext(pisaExtKey, func() any { return new(perturbState) }).(*perturbState)
	ps.ops = append(ps.ops[:0], enabledOps(p)...)
	return &chainState{ev: ev, ps: ps}
}

// runChain anneals one restart — the body of Algorithm 1 for a single
// chain: generate the initial instance from the chain's own sub-stream,
// then the in-place perturb/patch/evaluate/accept-or-revert loop. The
// chain's best lands in cs.best; the returned trace is the input slice
// with this chain's points appended (the sequential loop threads one
// shared slice through every restart, parallel chains pass private
// ones). onImprove, when non-nil, sees every incumbent improvement
// exactly as the sequential loop reports it. The returned count covers
// successful evaluations only (a failed candidate is not counted),
// matching the sequential loop's bookkeeping.
func (cs *chainState) runChain(opts Options, p PerturbOptions, restart int, r *rng.RNG,
	trace []TracePoint, onImprove func(iteration int, ratio float64)) (float64, int, []TracePoint, error) {
	ev, ps := cs.ev, cs.ps
	cur := prepare(opts.InitialInstance(r), p)
	tab := ev.prepare(cur)
	initRatio, err := ev.ratioPrepared(cur)
	if err != nil {
		return 0, 0, trace, err
	}
	evals := 1

	// One incumbent-best buffer serves every chain this state runs; only
	// the merged Result.Best is ever cloned out of it. There is no
	// candidate buffer — the candidate IS cur, mutated in place and
	// rolled back on rejection.
	if cs.best == nil {
		cs.best = cur.Clone()
	} else {
		cs.best.CopyFrom(cur)
	}
	bestRatio := initRatio
	temp := opts.TMax
	for iter := 0; temp > opts.TMin && iter < opts.MaxIters; iter++ {
		perturbInPlace(cur, r, p, ps)
		applyTables(tab, ps)
		candRatio, err := ev.ratioPrepared(cur)
		if err != nil {
			return 0, evals, trace, err
		}
		evals++

		accepted := false
		if candRatio > bestRatio {
			cs.best.CopyFrom(cur)
			bestRatio = candRatio
			accepted = true
			if onImprove != nil {
				onImprove(iter, bestRatio)
			}
		} else if r.Float64() < math.Exp(-(candRatio/bestRatio)/temp) {
			// Algorithm 1 line 9: accept a non-improving candidate
			// with probability exp(−(M'/M_best)/T).
			accepted = true
		} else {
			revert(cur, tab, ps)
		}
		if opts.RecordTrace {
			trace = append(trace, TracePoint{
				Restart:     restart,
				Iteration:   iter,
				Temperature: temp,
				Ratio:       candRatio,
				Best:        bestRatio,
				Accepted:    accepted,
			})
		}
		temp *= opts.Alpha
	}
	return bestRatio, evals, trace, nil
}

// evaluator computes makespan ratios through the allocation-free
// scheduling path: one scratch and one schedule pair reused for every
// candidate, with the scratch's EvalCache letting the baseline
// scheduler reuse the target's rank computation on each candidate's
// identical tables. Two calling modes differ only in who keeps the
// scratch tables honest: ratio rebuilds them per call (safe for
// arbitrary instances — initial populations, one-shot evaluations),
// while ratioPrepared trusts the caller to have patched them
// incrementally after each in-place mutation (the annealer's inner
// loop, the GA's mutated offspring).
type evaluator struct {
	target, baseline scheduler.Scheduler
	scr              *scheduler.Scratch
	st, sb           schedule.Schedule
}

func newEvaluator(target, baseline scheduler.Scheduler, scr *scheduler.Scratch) *evaluator {
	if scr == nil {
		scr = scheduler.NewScratch()
	}
	return &evaluator{target: target, baseline: baseline, scr: scr}
}

// ratio returns the makespan ratio of the target over the baseline on
// the instance, rebuilding the cost tables first.
func (e *evaluator) ratio(inst *graph.Instance) (float64, error) {
	e.scr.Prepare(inst)
	return e.ratioPrepared(inst)
}

// prepare builds the scratch tables for inst and hands them to the
// caller for incremental maintenance: every in-place mutation of inst
// must be mirrored through the tables' Update*/AddDep/RemoveDep methods
// before the next ratioPrepared call (the graph.Tables staleness
// contract).
func (e *evaluator) prepare(inst *graph.Instance) *graph.Tables {
	e.scr.Prepare(inst)
	return e.scr.Tables(inst)
}

// ratioPrepared is ratio without the table rebuild: the scratch must
// already hold tables for inst (via prepare) that reflect its current
// weights and structure.
func (e *evaluator) ratioPrepared(inst *graph.Instance) (float64, error) {
	if err := scheduler.ScheduleInto(e.target, inst, e.scr, &e.st); err != nil {
		return 0, fmt.Errorf("core: target %s failed: %w", e.target.Name(), err)
	}
	if err := scheduler.ScheduleInto(e.baseline, inst, e.scr, &e.sb); err != nil {
		return 0, fmt.Errorf("core: baseline %s failed: %w", e.baseline.Name(), err)
	}
	mt, mb := e.st.Makespan(), e.sb.Makespan()
	if mb == 0 {
		if mt == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	return mt / mb, nil
}

// evaluate is the one-shot form of evaluator.ratio, kept for callers
// outside the annealing loop (the GA seeds one evaluator instead).
func evaluate(target, baseline scheduler.Scheduler, inst *graph.Instance) (float64, error) {
	return newEvaluator(target, baseline, nil).ratio(inst)
}

// prepare enforces the homogeneity constraints on a fresh initial
// instance: pinned speeds or links are reset to 1, matching the paper's
// setup ("we set all node weights to be 1 initially and do not allow
// them to be changed").
func prepare(inst *graph.Instance, p PerturbOptions) *graph.Instance {
	if p.KeepPinnedWeights {
		return inst
	}
	if p.FixSpeeds {
		for v := range inst.Net.Speeds {
			inst.Net.Speeds[v] = 1
		}
	}
	if p.FixLinks {
		n := inst.Net.NumNodes()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				inst.Net.SetLink(u, v, 1)
			}
		}
	}
	return inst
}
