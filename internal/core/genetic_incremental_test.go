package core

import (
	"bytes"
	"testing"

	"saga/internal/datasets"
	"saga/internal/rng"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

// TestRunGABitIdenticalToReference is the GA analogue of
// TestRunBitIdenticalToReference: for a panel of scheduler pairs and
// every perturbation mode, the incremental GA (recycled instance banks,
// in-place crossover, delta-patched tables, memoized ranks) must
// produce byte-identical Results — best-instance serialization, exact
// ratios, evaluation counts — to the retained clone-and-full-Prepare
// reference implementation running with rank memoization disabled.
func TestRunGABitIdenticalToReference(t *testing.T) {
	pairs := [][2]string{
		{"HEFT", "CPoP"},
		{"MinMin", "MaxMin"},
		{"ETF", "HEFT"},
		{"GDL", "BIL"},
	}
	for mode, p := range incrementalModes() {
		for _, pair := range pairs {
			t.Run(mode+"/"+pair[0]+"-vs-"+pair[1], func(t *testing.T) {
				opts := gaTestOptions(uint64(len(mode)*17 + len(pair[0])*31))
				opts.Perturb = p
				inc, err := RunGA(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := RunGAReference(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, inc, ref)
			})
		}
	}
}

// TestRunGABitIdenticalSharedScratch re-runs one pair with an explicit
// per-caller scratch on both sides (the parallel drivers' calling
// convention) — scratch reuse must not perturb GA results either.
func TestRunGABitIdenticalSharedScratch(t *testing.T) {
	opts := gaTestOptions(77)
	opts.Scratch = scheduler.NewScratch()
	inc, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Scratch = scheduler.NewScratch()
	ref, err := RunGAReference(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, inc, ref)
}

// TestRunGAReferenceRejectsSameOptions pins that the two entry points
// validate identically (same error text for the same bad input).
func TestRunGAReferenceRejectsSameOptions(t *testing.T) {
	bads := []func(*GAOptions){
		func(o *GAOptions) { o.InitialInstance = nil },
		func(o *GAOptions) { o.PopulationSize = 1 },
		func(o *GAOptions) { o.Generations = 0 },
		func(o *GAOptions) { o.MutationRate = 1.5 },
		func(o *GAOptions) { o.Perturb.Step = -0.5 },
		func(o *GAOptions) { o.Perturb.Speed = [2]float64{1, 0} },
	}
	for i, mutate := range bads {
		a := gaTestOptions(1)
		mutate(&a)
		_, errInc := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), a)
		_, errRef := RunGAReference(mustSched(t, "HEFT"), mustSched(t, "CPoP"), a)
		if errInc == nil || errRef == nil {
			t.Fatalf("case %d: invalid GA options accepted (inc=%v, ref=%v)", i, errInc, errRef)
		}
		if errInc.Error() != errRef.Error() {
			t.Fatalf("case %d: divergent validation errors:\nincremental %v\nreference   %v", i, errInc, errRef)
		}
	}
}

// TestRunGABestOwnsItsInstance pins that the incremental loop's bank
// recycling never leaks a reused buffer into the result: mutating the
// returned best instance must not be observable through a second
// identical run.
func TestRunGABestOwnsItsInstance(t *testing.T) {
	opts := gaTestOptions(31)
	a, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, a.Best)
	a.Best.Graph.Tasks[0].Cost = 1e6 // scribble on the returned instance
	b, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, fingerprint(t, b.Best)) {
		t.Fatal("second identical run returned a different best — results share state")
	}
}

// TestCrossoverIntoMatchesCrossover drives the in-place crossover and
// the allocating reference through identical RNG streams over many
// random parent pairs (compatible and not) and asserts byte-identical
// children — the core equivalence the GA bit-identity rests on.
func TestCrossoverIntoMatchesCrossover(t *testing.T) {
	r1 := rng.New(0xc0de)
	r2 := rng.New(0xc0de)
	for trial := 0; trial < 60; trial++ {
		pa := datasets.InitialPISAInstance(r1.Split())
		r2.Split() // keep streams aligned
		pb := datasets.InitialPISAInstance(r1.Split())
		r2.Split()
		a := individual{inst: pa, ratio: r1.Float64()}
		b := individual{inst: pb, ratio: r2.Float64()}
		if a.ratio != b.ratio {
			t.Fatal("test harness RNG streams desynchronized")
		}
		want := crossover(a, b, r1)
		got := crossoverInto(nil, a, b, r2)
		if !bytes.Equal(fingerprint(t, want), fingerprint(t, got)) {
			t.Fatalf("trial %d: crossoverInto diverged from crossover", trial)
		}
		// And again into a warm (dirty) buffer.
		got2 := crossoverInto(got, b, a, r2)
		want2 := crossover(b, a, r1)
		if !bytes.Equal(fingerprint(t, want2), fingerprint(t, got2)) {
			t.Fatalf("trial %d: warm-buffer crossoverInto diverged", trial)
		}
	}
}
