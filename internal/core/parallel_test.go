package core

import (
	"bytes"
	"runtime"
	"testing"

	"saga/internal/datasets"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

// workerCounts is the satellite-mandated panel: sequential, two
// workers, and NumCPU (plus an over-provisioned count to exercise the
// clamp). Byte-identity must hold for every entry.
func workerCounts() []int {
	return []int{1, 2, runtime.NumCPU(), 64}
}

// improveLog captures the OnImprove call sequence for comparison: the
// parallel path buffers per chain and replays in restart order, so the
// observed sequence must equal the sequential one's exactly.
type improveLog []improvePoint

func (l *improveLog) hook() func(int, float64) {
	return func(iter int, ratio float64) { *l = append(*l, improvePoint{iter, ratio}) }
}

func assertSameImproves(t *testing.T, got, want improveLog) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("OnImprove call count diverged: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("OnImprove[%d] diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestRunParallelByteIdentical is the tentpole gate: for several
// scheduler pairs, Run with every worker count produces byte-identical
// Results — fingerprint, trace, restart ratios, evaluation counts, and
// the OnImprove sequence — to sequential Run and to the cache-disabled
// copy-and-rebuild reference.
func TestRunParallelByteIdentical(t *testing.T) {
	pairs := [][2]string{{"HEFT", "CPoP"}, {"MinMin", "MaxMin"}}
	for _, pair := range pairs {
		t.Run(pair[0]+"-vs-"+pair[1], func(t *testing.T) {
			opts := testOptions(uint64(41 + len(pair[0])))
			opts.Restarts = 4
			opts.RecordTrace = true
			var seqImp improveLog
			opts.OnImprove = seqImp.hook()
			seq, err := Run(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.OnImprove = nil
			ref, err := RunReference(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, seq, ref)
			for _, w := range workerCounts() {
				opts.Workers = w
				var parImp improveLog
				opts.OnImprove = parImp.hook()
				par, err := Run(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				assertResultsIdentical(t, par, seq)
				assertSameImproves(t, parImp, seqImp)
			}
		})
	}
}

// TestRunParallelSharedScratchReuse re-runs the parallel path twice
// through one caller scratch (the sweep-worker calling convention): the
// pooled per-worker scratches are reused, and reuse must not perturb
// results.
func TestRunParallelSharedScratchReuse(t *testing.T) {
	opts := testOptions(97)
	opts.Restarts = 3
	opts.RecordTrace = true
	seq, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Scratch = scheduler.NewScratch()
	opts.Workers = 3
	for i := 0; i < 3; i++ {
		par, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, par, seq)
	}
}

// TestRunParallelSingleProc pins determinism under GOMAXPROCS=1: with
// only one OS thread the chains interleave cooperatively in whatever
// order the runtime schedules them, and the canonical merge must still
// reproduce the sequential result bit for bit.
func TestRunParallelSingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	opts := testOptions(7)
	opts.Restarts = 4
	opts.RecordTrace = true
	seq, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := Run(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, par, seq)
}

// TestRunParallelTieBreaksToLowestRestart forces every chain to the
// same best ratio — an identical scheduler as its own baseline pins
// every candidate to ratio 1 — so the merged winner is decided purely
// by the tie rule. The sequential fold's strict improvement keeps
// restart 0's instance; the parallel merge must return the identical
// fingerprint for every worker count (a last-wins or racy merge would
// surface some other restart's initial instance).
func TestRunParallelTieBreaksToLowestRestart(t *testing.T) {
	opts := testOptions(13)
	opts.Restarts = 4
	seq, err := Run(mustSched(t, "HEFT"), mustSched(t, "HEFT"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestRatio != 1 {
		t.Fatalf("self-pair best ratio = %v, want exactly 1", seq.BestRatio)
	}
	for _, ratio := range seq.RestartRatios {
		if ratio != 1 {
			t.Fatalf("restart ratios %v not all tied at 1", seq.RestartRatios)
		}
	}
	// The tie must be decided in favor of restart 0: its chain's best is
	// its initial instance, which differs from every other restart's.
	r0opts := opts
	r0opts.Restarts = 1
	r0, err := Run(mustSched(t, "HEFT"), mustSched(t, "HEFT"), r0opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, seq.Best), fingerprint(t, r0.Best)) {
		t.Fatal("sequential tie-break did not keep restart 0's instance")
	}
	for _, w := range workerCounts() {
		opts.Workers = w
		par, err := Run(mustSched(t, "HEFT"), mustSched(t, "HEFT"), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertResultsIdentical(t, par, seq)
	}
}

// TestRunGAParallelByteIdentical is the GA half of the tentpole gate:
// RunGA with every worker count must match sequential RunGA and the
// clone-and-full-Prepare reference bit for bit. This is also the proof
// that the parallel path's full table rebuild equals the sequential
// build-then-delta-patch (the graph.Tables incremental contract applied
// in reverse).
func TestRunGAParallelByteIdentical(t *testing.T) {
	opts := gaTestOptions(59)
	seq, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunGAReference(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, seq, ref)
	for _, w := range workerCounts() {
		opts.Workers = w
		par, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertResultsIdentical(t, par, seq)
	}
}

// TestRunGAParallelSingleProc is the GA analogue of the GOMAXPROCS=1
// determinism pin.
func TestRunGAParallelSingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	opts := gaTestOptions(61)
	seq, err := RunGA(mustSched(t, "ETF"), mustSched(t, "HEFT"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = runtime.NumCPU() + 2
	par, err := RunGA(mustSched(t, "ETF"), mustSched(t, "HEFT"), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, par, seq)
}

// TestRunGAParallelSharedScratchReuse mirrors the annealer's pooled
// scratch reuse test for the GA path.
func TestRunGAParallelSharedScratchReuse(t *testing.T) {
	opts := gaTestOptions(67)
	seq, err := RunGA(mustSched(t, "GDL"), mustSched(t, "BIL"), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Scratch = scheduler.NewScratch()
	opts.Workers = 4
	for i := 0; i < 3; i++ {
		par, err := RunGA(mustSched(t, "GDL"), mustSched(t, "BIL"), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, par, seq)
	}
}

// TestRunParallelModesAndPairs sweeps the full perturbation-mode ×
// scheduler-pair panel of the incremental suite through the parallel
// path at one representative worker count, anchoring parallel ==
// reference across every operator family.
func TestRunParallelModesAndPairs(t *testing.T) {
	pairs := [][2]string{{"ETF", "HEFT"}, {"GDL", "BIL"}, {"HEFT", "FastestNode"}}
	for mode, p := range incrementalModes() {
		for _, pair := range pairs {
			t.Run(mode+"/"+pair[0]+"-vs-"+pair[1], func(t *testing.T) {
				opts := testOptions(uint64(len(mode) + len(pair[0])*31))
				opts.Restarts = 3
				opts.Perturb = p
				opts.InitialInstance = datasets.InitialPISAInstance
				ref, err := RunReference(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Workers = 2
				par, err := Run(mustSched(t, pair[0]), mustSched(t, pair[1]), opts)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsIdentical(t, par, ref)
			})
		}
	}
}
