package core

import (
	"sort"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// This file retains the clone-and-full-Prepare GA loop verbatim as the
// bit-identity oracle for the incremental RunGA in genetic.go,
// mirroring the RunReference/Run split of the annealer: every offspring
// is a fresh Clone (of the fitter parent, weight-mixed by crossover),
// mutation is the one-shot allocating perturb, and every fitness
// evaluation rebuilds the full cost tables with rank memoization
// disabled. RunGAReference must consume the identical RNG stream and
// produce byte-identical Results to RunGA —
// genetic_incremental_test.go asserts it per perturbation mode and
// scheduler pair, and BenchmarkGAAdversarial measures the speedup
// against it. Do not "improve" this code; its value is that it shares
// none of the buffer-recycling machinery it checks.

// RunGAReference executes the genetic search with the pre-incremental
// evaluation strategy: one Clone per offspring and one full Tables
// rebuild per fitness evaluation. Results are bit-identical to RunGA;
// only the speed and allocation profile differ.
func RunGAReference(target, baseline scheduler.Scheduler, opts GAOptions) (*Result, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	p := opts.Perturb.withDefaults()
	r := rng.New(opts.Seed)
	ev := newEvaluator(target, baseline, opts.Scratch)
	// Uncached oracle, exactly like RunReference: the full rebuild per
	// evaluation is the baseline being measured and proven against.
	defer ev.scr.SetEvalCache(ev.scr.SetEvalCache(false))
	res := &Result{}

	pop := make([]individual, opts.PopulationSize)
	for i := range pop {
		inst := prepare(opts.InitialInstance(r.Split()), p)
		ratio, err := ev.ratio(inst)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		pop[i] = individual{inst: inst, ratio: ratio}
	}

	byFitness := func() {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].ratio > pop[b].ratio })
	}
	byFitness()

	tournament := func() individual {
		best := pop[r.Intn(len(pop))]
		for k := 1; k < opts.TournamentK; k++ {
			c := pop[r.Intn(len(pop))]
			if c.ratio > best.ratio {
				best = c
			}
		}
		return best
	}

	for gen := 0; gen < opts.Generations; gen++ {
		next := make([]individual, 0, opts.PopulationSize)
		for i := 0; i < opts.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < opts.PopulationSize {
			a, b := tournament(), tournament()
			child := crossover(a, b, r)
			if r.Float64() < opts.MutationRate {
				perturb(child, r, p)
			}
			ratio, err := ev.ratio(child)
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			next = append(next, individual{inst: child, ratio: ratio})
		}
		pop = next
		byFitness()
	}

	res.Best = pop[0].inst
	res.BestRatio = pop[0].ratio
	res.RestartRatios = []float64{pop[0].ratio}
	return res, nil
}

// crossover combines two parent instances, allocating the child — the
// original implementation whose RNG draw sequence crossoverInto must
// reproduce exactly. When the parents have the same task count, node
// count and dependency set, the child takes each task cost, dependency
// cost, node speed and link strength from a uniformly random parent
// (uniform crossover on the weight vector). Structurally incompatible
// parents — possible because mutation can add or remove dependencies —
// yield a clone of the fitter parent.
func crossover(a, b individual, r *rng.RNG) *graph.Instance {
	fitter, other := a, b
	if b.ratio > a.ratio {
		fitter, other = b, a
	}
	if !compatible(fitter.inst, other.inst) {
		return fitter.inst.Clone()
	}
	child := fitter.inst.Clone()
	for t := range child.Graph.Tasks {
		if r.Float64() < 0.5 {
			child.Graph.Tasks[t].Cost = other.inst.Graph.Tasks[t].Cost
		}
	}
	for _, d := range child.Graph.Deps() {
		if r.Float64() < 0.5 {
			c, _ := other.inst.Graph.DepCost(d[0], d[1])
			child.Graph.SetDepCost(d[0], d[1], c)
		}
	}
	for v := range child.Net.Speeds {
		if r.Float64() < 0.5 {
			child.Net.Speeds[v] = other.inst.Net.Speeds[v]
		}
	}
	for u := 0; u < child.Net.NumNodes(); u++ {
		for v := u + 1; v < child.Net.NumNodes(); v++ {
			if r.Float64() < 0.5 {
				child.Net.SetLink(u, v, other.inst.Net.Links[u][v])
			}
		}
	}
	return child
}
