package core

import (
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
)

func gaTestOptions(seed uint64) GAOptions {
	o := DefaultGAOptions()
	o.PopulationSize = 10
	o.Generations = 15
	o.Seed = seed
	o.InitialInstance = datasets.InitialPISAInstance
	return o
}

func TestRunGAFindsAdversarialInstance(t *testing.T) {
	res, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), gaTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best instance")
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("GA produced invalid instance: %v", err)
	}
	if res.BestRatio <= 1 {
		t.Fatalf("GA found no instance where HEFT loses to CPoP (ratio %v)", res.BestRatio)
	}
	if res.Evaluations < 10 {
		t.Fatalf("suspiciously few evaluations: %d", res.Evaluations)
	}
}

func TestRunGADeterministic(t *testing.T) {
	a, err := RunGA(mustSched(t, "MinMin"), mustSched(t, "MaxMin"), gaTestOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGA(mustSched(t, "MinMin"), mustSched(t, "MaxMin"), gaTestOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestRatio != b.BestRatio {
		t.Fatalf("same seed, different GA results: %v vs %v", a.BestRatio, b.BestRatio)
	}
}

func TestRunGAReportedRatioMatches(t *testing.T) {
	target, base := mustSched(t, "MCT"), mustSched(t, "HEFT")
	res, err := RunGA(target, base, gaTestOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := evaluate(target, base, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(got, res.BestRatio) {
		t.Fatalf("reported %v, re-evaluated %v", res.BestRatio, got)
	}
}

func TestRunGARejectsBadOptions(t *testing.T) {
	good := gaTestOptions(1)
	cases := []func(*GAOptions){
		func(o *GAOptions) { o.InitialInstance = nil },
		func(o *GAOptions) { o.PopulationSize = 1 },
		func(o *GAOptions) { o.Generations = 0 },
	}
	for i, mutate := range cases {
		o := good
		mutate(&o)
		if _, err := RunGA(mustSched(t, "HEFT"), mustSched(t, "CPoP"), o); err == nil {
			t.Errorf("case %d: invalid GA options accepted", i)
		}
	}
}

func TestCrossoverCompatibleParents(t *testing.T) {
	r := rng.New(11)
	base := datasets.InitialPISAInstance(r.Split())
	a := individual{inst: base.Clone(), ratio: 2}
	b := individual{inst: base.Clone(), ratio: 1}
	// Make the parents' weights distinguishable.
	for t2 := range a.inst.Graph.Tasks {
		a.inst.Graph.Tasks[t2].Cost = 0.25
		b.inst.Graph.Tasks[t2].Cost = 0.75
	}
	child := crossover(a, b, r)
	if err := child.Validate(); err != nil {
		t.Fatal(err)
	}
	if child.Graph.NumTasks() != base.Graph.NumTasks() {
		t.Fatal("crossover changed structure")
	}
	for t2 := range child.Graph.Tasks {
		c := child.Graph.Tasks[t2].Cost
		if c != 0.25 && c != 0.75 {
			t.Fatalf("child cost %v came from neither parent", c)
		}
	}
}

func TestCrossoverIncompatibleParentsClonesFitter(t *testing.T) {
	r := rng.New(13)
	a := individual{inst: datasets.InitialPISAInstance(rng.New(1)), ratio: 1}
	b := individual{inst: datasets.InitialPISAInstance(rng.New(2)), ratio: 3}
	for !compatible(a.inst, b.inst) || a.inst.Graph.NumTasks() == b.inst.Graph.NumTasks() {
		break // instances from different seeds may or may not match; force incompatibility below
	}
	// Force incompatibility: add an extra dependency to b if possible,
	// otherwise a differs already.
	if compatible(a.inst, b.inst) {
		g := b.inst.Graph
		added := false
		for u := 0; u < g.NumTasks() && !added; u++ {
			for v := 0; v < g.NumTasks() && !added; v++ {
				if u != v && !g.HasDep(u, v) && !g.Reaches(v, u) {
					g.MustAddDep(u, v, 0.5)
					added = true
				}
			}
		}
	}
	child := crossover(a, b, r)
	// Fitter parent is b; the clone must match b's structure.
	if child.Graph.NumTasks() != b.inst.Graph.NumTasks() ||
		child.Graph.NumDeps() != b.inst.Graph.NumDeps() {
		t.Fatal("incompatible crossover did not clone the fitter parent")
	}
	// And must be an independent copy.
	child.Graph.Tasks[0].Cost = 12345
	if b.inst.Graph.Tasks[0].Cost == 12345 {
		t.Fatal("crossover returned a shared instance")
	}
}

func TestGAComparableToSAOnSamePair(t *testing.T) {
	// Not a performance assertion — both searches must simply find a
	// ratio > 1 for a pair known to have adversarial instances in both
	// directions (HEFT vs CPoP, Section VI-B).
	sa, err := Run(mustSched(t, "CPoP"), mustSched(t, "HEFT"), testOptions(21))
	if err != nil {
		t.Fatal(err)
	}
	gaOpts := gaTestOptions(21)
	gaOpts.PopulationSize = 16
	gaOpts.Generations = 50
	ga, err := RunGA(mustSched(t, "CPoP"), mustSched(t, "HEFT"), gaOpts)
	if err != nil {
		t.Fatal(err)
	}
	if sa.BestRatio <= 1 || ga.BestRatio <= 1 {
		t.Fatalf("SA ratio %v, GA ratio %v — both should exceed 1", sa.BestRatio, ga.BestRatio)
	}
}
