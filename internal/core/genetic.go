package core

import (
	"errors"
	"sort"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// GAOptions configures the genetic adversarial instance finder — the
// "other meta-heuristics (e.g., genetic algorithms)" direction the
// paper's conclusion proposes for future work. The search space and
// objective are identical to PISA's: problem instances, scored by the
// makespan ratio of the target scheduler over the baseline; only the
// search strategy differs (population + tournament selection + crossover
// + perturbation-as-mutation instead of one annealed trajectory).
type GAOptions struct {
	// PopulationSize is the number of instances per generation.
	PopulationSize int
	// Generations is the number of evolution steps.
	Generations int
	// TournamentK is the tournament-selection size.
	TournamentK int
	// Elite is how many best instances survive unchanged per generation.
	Elite int
	// MutationRate is the probability each offspring is perturbed
	// (using the same operators as PISA).
	MutationRate float64
	// Seed drives all randomness.
	Seed uint64
	// InitialInstance generates the initial population (required).
	InitialInstance func(r *rng.RNG) *graph.Instance
	// Perturb configures the mutation operators; zero value = Section VI
	// defaults.
	Perturb PerturbOptions
}

// DefaultGAOptions returns a configuration comparable in evaluation
// budget to the paper's annealing run (≈2300 evaluations): population 20
// over 100 generations.
func DefaultGAOptions() GAOptions {
	return GAOptions{
		PopulationSize: 20,
		Generations:    100,
		TournamentK:    3,
		Elite:          2,
		MutationRate:   0.9,
		Seed:           1,
	}
}

type individual struct {
	inst  *graph.Instance
	ratio float64
}

// RunGA evolves adversarial instances for the target scheduler against
// the baseline and returns the best found. Crossover between two parent
// instances swaps weight vectors where the parents are structurally
// compatible and otherwise clones the fitter parent; mutation applies
// one PISA perturbation.
func RunGA(target, baseline scheduler.Scheduler, opts GAOptions) (*Result, error) {
	if opts.InitialInstance == nil {
		return nil, errors.New("core: GAOptions.InitialInstance is required")
	}
	if opts.PopulationSize < 2 || opts.Generations <= 0 {
		return nil, errors.New("core: GA needs PopulationSize >= 2 and Generations > 0")
	}
	if opts.TournamentK <= 0 {
		opts.TournamentK = 3
	}
	if opts.Elite < 0 || opts.Elite >= opts.PopulationSize {
		opts.Elite = 1
	}
	p := opts.Perturb.withDefaults()
	r := rng.New(opts.Seed)
	ev := newEvaluator(target, baseline, nil)
	res := &Result{}

	pop := make([]individual, opts.PopulationSize)
	for i := range pop {
		inst := prepare(opts.InitialInstance(r.Split()), p)
		ratio, err := ev.ratio(inst)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		pop[i] = individual{inst: inst, ratio: ratio}
	}

	byFitness := func() {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].ratio > pop[b].ratio })
	}
	byFitness()

	tournament := func() individual {
		best := pop[r.Intn(len(pop))]
		for k := 1; k < opts.TournamentK; k++ {
			c := pop[r.Intn(len(pop))]
			if c.ratio > best.ratio {
				best = c
			}
		}
		return best
	}

	for gen := 0; gen < opts.Generations; gen++ {
		next := make([]individual, 0, opts.PopulationSize)
		for i := 0; i < opts.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < opts.PopulationSize {
			a, b := tournament(), tournament()
			child := crossover(a, b, r)
			if r.Float64() < opts.MutationRate {
				perturb(child, r, p)
			}
			ratio, err := ev.ratio(child)
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			next = append(next, individual{inst: child, ratio: ratio})
		}
		pop = next
		byFitness()
	}

	res.Best = pop[0].inst
	res.BestRatio = pop[0].ratio
	res.RestartRatios = []float64{pop[0].ratio}
	return res, nil
}

// crossover combines two parent instances. When the parents have the
// same task count, node count and dependency set, the child takes each
// task cost, dependency cost, node speed and link strength from a
// uniformly random parent (uniform crossover on the weight vector).
// Structurally incompatible parents — possible because mutation can add
// or remove dependencies — yield a clone of the fitter parent.
func crossover(a, b individual, r *rng.RNG) *graph.Instance {
	fitter, other := a, b
	if b.ratio > a.ratio {
		fitter, other = b, a
	}
	if !compatible(fitter.inst, other.inst) {
		return fitter.inst.Clone()
	}
	child := fitter.inst.Clone()
	for t := range child.Graph.Tasks {
		if r.Float64() < 0.5 {
			child.Graph.Tasks[t].Cost = other.inst.Graph.Tasks[t].Cost
		}
	}
	for _, d := range child.Graph.Deps() {
		if r.Float64() < 0.5 {
			c, _ := other.inst.Graph.DepCost(d[0], d[1])
			child.Graph.SetDepCost(d[0], d[1], c)
		}
	}
	for v := range child.Net.Speeds {
		if r.Float64() < 0.5 {
			child.Net.Speeds[v] = other.inst.Net.Speeds[v]
		}
	}
	for u := 0; u < child.Net.NumNodes(); u++ {
		for v := u + 1; v < child.Net.NumNodes(); v++ {
			if r.Float64() < 0.5 {
				child.Net.SetLink(u, v, other.inst.Net.Links[u][v])
			}
		}
	}
	return child
}

// compatible reports whether two instances share a structure (task and
// node counts, identical dependency sets), making weight-level crossover
// meaningful.
func compatible(a, b *graph.Instance) bool {
	if a.Graph.NumTasks() != b.Graph.NumTasks() ||
		a.Net.NumNodes() != b.Net.NumNodes() ||
		a.Graph.NumDeps() != b.Graph.NumDeps() {
		return false
	}
	for _, d := range a.Graph.Deps() {
		if !b.Graph.HasDep(d[0], d[1]) {
			return false
		}
	}
	return true
}
