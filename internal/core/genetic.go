package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/scheduler"
)

// GAOptions configures the genetic adversarial instance finder — the
// "other meta-heuristics (e.g., genetic algorithms)" direction the
// paper's conclusion proposes for future work. The search space and
// objective are identical to PISA's: problem instances, scored by the
// makespan ratio of the target scheduler over the baseline; only the
// search strategy differs (population + tournament selection + crossover
// + perturbation-as-mutation instead of one annealed trajectory).
type GAOptions struct {
	// PopulationSize is the number of instances per generation.
	PopulationSize int
	// Generations is the number of evolution steps.
	Generations int
	// TournamentK is the tournament-selection size.
	TournamentK int
	// Elite is how many best instances survive unchanged per generation.
	Elite int
	// MutationRate is the probability each offspring is perturbed
	// (using the same operators as PISA).
	MutationRate float64
	// Seed drives all randomness.
	Seed uint64
	// InitialInstance generates the initial population (required).
	InitialInstance func(r *rng.RNG) *graph.Instance
	// Perturb configures the mutation operators; zero value = Section VI
	// defaults.
	Perturb PerturbOptions
	// Scratch, when non-nil, is the reusable per-worker scheduling state
	// threaded through every fitness evaluation, exactly like
	// Options.Scratch in the annealer. Nil allocates a private one per
	// run; the scratch never affects results.
	Scratch *scheduler.Scratch
	// Workers bounds how many offspring fitness evaluations run
	// concurrently. 0 or 1 keeps the classic sequential loop (the right
	// choice inside an already-parallel sweep); values above
	// PopulationSize are clamped. Results are bit-identical for every
	// value: all randomness — selection, crossover, the mutation
	// decision and the mutation itself — stays on the calling goroutine
	// in the sequential order, and only the deterministic fitness
	// evaluations fan out (see runGAParallel). With Workers > 1,
	// InitialInstance must be safe for concurrent calls.
	Workers int
}

// DefaultGAOptions returns a configuration comparable in evaluation
// budget to the paper's annealing run (≈2300 evaluations): population 20
// over 100 generations.
func DefaultGAOptions() GAOptions {
	return GAOptions{
		PopulationSize: 20,
		Generations:    100,
		TournamentK:    3,
		Elite:          2,
		MutationRate:   0.9,
		Seed:           1,
	}
}

// normalized validates the configuration and applies the historical
// clamps (TournamentK, Elite); RunGA and RunGAReference share it so
// both loops reject identical inputs with identical errors.
func (o GAOptions) normalized() (GAOptions, error) {
	if o.InitialInstance == nil {
		return o, errors.New("core: GAOptions.InitialInstance is required")
	}
	if o.PopulationSize < 2 || o.Generations <= 0 {
		return o, errors.New("core: GA needs PopulationSize >= 2 and Generations > 0")
	}
	if o.MutationRate < 0 || o.MutationRate > 1 || math.IsNaN(o.MutationRate) {
		return o, fmt.Errorf("core: MutationRate %v outside [0, 1]", o.MutationRate)
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	if o.Elite < 0 || o.Elite >= o.PopulationSize {
		o.Elite = 1
	}
	if err := checkPerturb(o.Perturb); err != nil {
		return o, err
	}
	return o, nil
}

type individual struct {
	inst  *graph.Instance
	ratio float64
}

// RunGA evolves adversarial instances for the target scheduler against
// the baseline and returns the best found. Crossover between two parent
// instances swaps weight vectors where the parents are structurally
// compatible and otherwise copies the fitter parent; mutation applies
// one PISA perturbation.
//
// The loop runs on the incremental machinery the annealer introduced:
// two instance banks ping-pong between generations, so every offspring
// is a CopyFrom into a recycled buffer (crossoverInto) instead of a
// Clone; mutation is perturbInPlace against the per-worker
// perturbState in scratch extension state, with the already-built cost
// tables patched through the graph.Tables delta methods
// (applyTables) rather than rebuilt; and each candidate's
// target/baseline evaluation pair shares one rank computation through
// the scratch's EvalCache. Results are bit-identical to the retained
// clone-and-full-Prepare implementation (RunGAReference, the analogue
// of RunReference); genetic_incremental_test.go proves it across
// perturbation modes and scheduler pairs.
func RunGA(target, baseline scheduler.Scheduler, opts GAOptions) (*Result, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	p := opts.Perturb.withDefaults()
	r := rng.New(opts.Seed)
	if w := gaWorkers(opts); w > 1 {
		return runGAParallel(target, baseline, opts, p, r, w)
	}
	ev := newEvaluator(target, baseline, opts.Scratch)
	ps := ev.scr.Ext(pisaExtKey, func() any { return new(perturbState) }).(*perturbState)
	ps.ops = append(ps.ops[:0], enabledOps(p)...)
	res := &Result{}

	pop := make([]individual, opts.PopulationSize)
	for i := range pop {
		inst := prepare(opts.InitialInstance(r.Split()), p)
		ratio, err := ev.ratio(inst)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		pop[i] = individual{inst: inst, ratio: ratio}
	}

	byFitness := func() { sortByFitness(pop) }
	byFitness()

	tournament := func() individual {
		best := pop[r.Intn(len(pop))]
		for k := 1; k < opts.TournamentK; k++ {
			c := pop[r.Intn(len(pop))]
			if c.ratio > best.ratio {
				best = c
			}
		}
		return best
	}

	// Two instance banks ping-pong across generations: the current
	// population lives in one, elites and offspring are copied/built into
	// the spare, and after the swap the outgoing generation's buffers
	// become the next spare bank. Steady state clones nothing.
	next := make([]individual, opts.PopulationSize)
	spare := make([]*graph.Instance, opts.PopulationSize)

	for gen := 0; gen < opts.Generations; gen++ {
		n := 0
		for ; n < opts.Elite; n++ {
			spare[n] = copyInto(spare[n], pop[n].inst)
			next[n] = individual{inst: spare[n], ratio: pop[n].ratio}
		}
		for ; n < opts.PopulationSize; n++ {
			a, b := tournament(), tournament()
			spare[n] = crossoverInto(spare[n], a, b, r)
			child := spare[n]
			mutate := r.Float64() < opts.MutationRate
			// Crossover rewrites weights wholesale, so the child needs one
			// full table build; the mutation on top is a single operator
			// and rides the delta-patch path, leaving the tables current
			// for ratioPrepared without a second build.
			tab := ev.prepare(child)
			if mutate {
				perturbInPlace(child, r, p, ps)
				applyTables(tab, ps)
			}
			ratio, err := ev.ratioPrepared(child)
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			next[n] = individual{inst: child, ratio: ratio}
		}
		for i := range pop {
			spare[i] = pop[i].inst
		}
		pop, next = next, pop
		byFitness()
	}

	// The winner lives in a recycled bank buffer; clone it out so the
	// result owns its instance (mirroring Run's handling of Best).
	res.Best = pop[0].inst.Clone()
	res.BestRatio = pop[0].ratio
	res.RestartRatios = []float64{pop[0].ratio}
	return res, nil
}

// gaWorkers resolves GAOptions.Workers to an effective worker count:
// 0 and 1 mean sequential, anything larger is clamped to the population
// size (the widest fitness fan-out a generation offers).
func gaWorkers(opts GAOptions) int {
	w := opts.Workers
	if w > opts.PopulationSize {
		w = opts.PopulationSize
	}
	return w
}

// sortByFitness is the shared generation ordering: stable descending by
// ratio, so equal-fitness individuals keep their construction order and
// the sequential and parallel loops sort identically.
func sortByFitness(pop []individual) {
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].ratio > pop[b].ratio })
}

// copyInto deep-copies src into dst's storage, allocating dst only on
// first use (cold bank slot).
func copyInto(dst, src *graph.Instance) *graph.Instance {
	if dst == nil {
		return src.Clone()
	}
	dst.CopyFrom(src)
	return dst
}

// crossoverInto is crossover writing into a caller-owned buffer: the
// identical draw sequence and weight selection, with dst.CopyFrom
// replacing the Clone. The dependency loop walks the successor lists
// directly — the same edge order Deps() materializes — so the RNG
// stream matches the reference bit for bit without allocating the edge
// slice.
func crossoverInto(dst *graph.Instance, a, b individual, r *rng.RNG) *graph.Instance {
	fitter, other := a, b
	if b.ratio > a.ratio {
		fitter, other = b, a
	}
	dst = copyInto(dst, fitter.inst)
	if !compatible(fitter.inst, other.inst) {
		return dst
	}
	og := other.inst.Graph
	for t := range dst.Graph.Tasks {
		if r.Float64() < 0.5 {
			dst.Graph.Tasks[t].Cost = og.Tasks[t].Cost
		}
	}
	for u := range dst.Graph.Succ {
		succ := dst.Graph.Succ[u]
		for i := range succ {
			if r.Float64() < 0.5 {
				c, _ := og.DepCost(u, succ[i].To)
				dst.Graph.SetDepCost(u, succ[i].To, c)
			}
		}
	}
	for v := range dst.Net.Speeds {
		if r.Float64() < 0.5 {
			dst.Net.Speeds[v] = other.inst.Net.Speeds[v]
		}
	}
	for u := 0; u < dst.Net.NumNodes(); u++ {
		for v := u + 1; v < dst.Net.NumNodes(); v++ {
			if r.Float64() < 0.5 {
				dst.Net.SetLink(u, v, other.inst.Net.Links[u][v])
			}
		}
	}
	return dst
}

// compatible reports whether two instances share a structure (task and
// node counts, identical dependency sets), making weight-level crossover
// meaningful.
func compatible(a, b *graph.Instance) bool {
	if a.Graph.NumTasks() != b.Graph.NumTasks() ||
		a.Net.NumNodes() != b.Net.NumNodes() ||
		a.Graph.NumDeps() != b.Graph.NumDeps() {
		return false
	}
	for _, d := range a.Graph.Deps() {
		if !b.Graph.HasDep(d[0], d[1]) {
			return false
		}
	}
	return true
}
