package core

import (
	"os"
	"testing"
)

// TestPISAIterationMemoizationGate is the enforced (not merely
// measured) form of BenchmarkPISAIteration: the incremental inner loop
// — in-place perturbations, delta table patches, and rank memoization
// across the scheduler pair — must beat the copy-and-rebuild,
// cache-disabled reference by at least minIterationSpeedup on the
// network-heavy scales, and its steady state must stay allocation-free.
// The measured margin is ~2× (BENCH_pisa.json), so 1.3× tolerates a
// noisy shared-VM host without letting a real regression through.
//
// Timing gates do not belong in plain `go test ./...`; `make
// bench-pisa` (part of `make verify`) opts in via PISA_BENCH_GATE=1.
func TestPISAIterationMemoizationGate(t *testing.T) {
	if os.Getenv("PISA_BENCH_GATE") == "" {
		t.Skip("timing gate; run via `make bench-pisa` (PISA_BENCH_GATE=1)")
	}
	const minIterationSpeedup = 1.3
	insts := pisaBenchInstances()
	for _, scale := range []string{"fog48", "cloud"} {
		inst := insts[scale]
		inc := testing.Benchmark(func(b *testing.B) { runIncrementalIteration(b, inst) })
		ref := testing.Benchmark(func(b *testing.B) { runReferenceIteration(b, inst) })
		if inc.NsPerOp() <= 0 || ref.NsPerOp() <= 0 {
			t.Fatalf("%s: degenerate measurement (inc=%v, ref=%v)", scale, inc, ref)
		}
		ratio := float64(ref.NsPerOp()) / float64(inc.NsPerOp())
		t.Logf("%s: incremental %d ns/op, reference %d ns/op — %.2fx", scale, inc.NsPerOp(), ref.NsPerOp(), ratio)
		if ratio < minIterationSpeedup {
			t.Errorf("%s: incremental iteration only %.2fx faster than the reference; gate is %.1fx",
				scale, ratio, minIterationSpeedup)
		}
		if allocs := inc.AllocsPerOp(); allocs != 0 {
			t.Errorf("%s: incremental iteration allocates %d/op once warm; want 0", scale, allocs)
		}
	}
}
