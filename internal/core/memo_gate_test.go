package core

import (
	"os"
	"runtime"
	"testing"

	"saga/internal/datasets"
)

// TestPISAIterationMemoizationGate is the enforced (not merely
// measured) form of BenchmarkPISAIteration: the incremental inner loop
// — in-place perturbations, delta table patches, and rank memoization
// across the scheduler pair — must beat the copy-and-rebuild,
// cache-disabled reference by at least minIterationSpeedup on the
// network-heavy scales, and its steady state must stay allocation-free.
// The measured margin is ~2× (BENCH_pisa.json), so 1.3× tolerates a
// noisy shared-VM host without letting a real regression through.
//
// Timing gates do not belong in plain `go test ./...`; `make
// bench-pisa` (part of `make verify`) opts in via PISA_BENCH_GATE=1.
//
// Each side is measured as the best of three rounds: on a loaded or
// shared host a single testing.Benchmark round can catch a scheduling
// hiccup on either side and flake the ratio; the minimum across rounds
// approximates the undisturbed cost, which is what the gate is about.
func TestPISAIterationMemoizationGate(t *testing.T) {
	if os.Getenv("PISA_BENCH_GATE") == "" {
		t.Skip("timing gate; run via `make bench-pisa` (PISA_BENCH_GATE=1)")
	}
	const minIterationSpeedup = 1.3
	insts := pisaBenchInstances()
	for _, scale := range []string{"fog48", "cloud"} {
		inst := insts[scale]
		inc := bestOfRounds(3, func(b *testing.B) { runIncrementalIteration(b, inst) })
		ref := bestOfRounds(3, func(b *testing.B) { runReferenceIteration(b, inst) })
		if inc.NsPerOp() <= 0 || ref.NsPerOp() <= 0 {
			t.Fatalf("%s: degenerate measurement (inc=%v, ref=%v)", scale, inc, ref)
		}
		ratio := float64(ref.NsPerOp()) / float64(inc.NsPerOp())
		t.Logf("%s: incremental %d ns/op, reference %d ns/op — %.2fx", scale, inc.NsPerOp(), ref.NsPerOp(), ratio)
		if ratio < minIterationSpeedup {
			t.Errorf("%s: incremental iteration only %.2fx faster than the reference; gate is %.1fx",
				scale, ratio, minIterationSpeedup)
		}
		if allocs := inc.AllocsPerOp(); allocs != 0 {
			t.Errorf("%s: incremental iteration allocates %d/op once warm; want 0", scale, allocs)
		}
	}
}

// bestOfRounds runs a benchmark function n times and returns the round
// with the lowest ns/op — the anti-flake measurement both timing gates
// share.
func bestOfRounds(n int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for round := 1; round < n; round++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// TestPISAParallelSpeedupGate enforces that intra-cell parallelism
// actually buys wall-clock on a multi-core host: full Run at the
// chain_500x2-equivalent budget with Workers=NumCPU must beat
// sequential Run by the scaling the core count supports (conservative
// gate: 1.5× at ≥2 cores, where perfect scaling on 2 restarts would be
// 2×). On a single-core host the comparison is physically meaningless —
// the chains time-slice one core and the parallel path can only add
// overhead — so the gate skips with an explicit log; byte-identity at
// every worker count is enforced unconditionally by parallel_test.go
// regardless of core count.
func TestPISAParallelSpeedupGate(t *testing.T) {
	if os.Getenv("PISA_BENCH_GATE") == "" {
		t.Skip("timing gate; run via `make bench-pisa` (PISA_BENCH_GATE=1)")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("single-core host (GOMAXPROCS=%d): parallel wall-clock speedup is unmeasurable here; determinism is still gated by parallel_test.go", procs)
	}
	const minParallelSpeedup = 1.5
	opts := DefaultOptions()
	opts.MaxIters = 500
	opts.Restarts = 2 * procs // enough chains to keep every core busy
	opts.InitialInstance = datasets.InitialPISAInstance
	target, baseline := mustSched(t, "HEFT"), mustSched(t, "CPoP")
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			o := opts
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				o.Seed = uint64(i + 1)
				if _, err := Run(target, baseline, o); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	seq := bestOfRounds(3, run(1))
	par := bestOfRounds(3, run(procs))
	ratio := float64(seq.NsPerOp()) / float64(par.NsPerOp())
	t.Logf("run/chain_500x%d: sequential %d ns/op, workers=%d %d ns/op — %.2fx",
		opts.Restarts, seq.NsPerOp(), procs, par.NsPerOp(), ratio)
	if ratio < minParallelSpeedup {
		t.Errorf("parallel Run only %.2fx faster than sequential on %d cores; gate is %.1fx",
			ratio, procs, minParallelSpeedup)
	}
}
