package core

import (
	"saga/internal/graph"
	"saga/internal/rng"
)

// perturbOp enumerates the six Section VI perturbation operators.
type perturbOp int

const (
	opNodeWeight perturbOp = iota
	opLinkWeight
	opTaskWeight
	opDepWeight
	opAddDep
	opRemoveDep
)

// enabledOps returns the operators permitted by the configuration.
func enabledOps(p PerturbOptions) []perturbOp {
	ops := []perturbOp{opTaskWeight}
	if !p.FixSpeeds {
		ops = append(ops, opNodeWeight)
	}
	if !p.FixLinks {
		ops = append(ops, opLinkWeight)
	}
	ops = append(ops, opDepWeight)
	if !p.FixStructure {
		ops = append(ops, opAddDep, opRemoveDep)
	}
	return ops
}

// perturb applies one randomly chosen perturbation to the instance in
// place, per Section VI: weight changes move a uniformly chosen weight by
// a uniform amount in ±Step (clamped to the configured range; network
// weights additionally floored at MinNetWeight), Add Dependency inserts a
// random acyclic edge, Remove Dependency deletes a random edge.
// Operators that cannot apply (no edges to remove, graph already
// transitively closed) fall through to a weight perturbation so every
// call changes something.
func perturb(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	ops := enabledOps(p)
	op := ops[r.Intn(len(ops))]
	switch op {
	case opNodeWeight:
		perturbNodeWeight(inst, r, p)
	case opLinkWeight:
		if !perturbLinkWeight(inst, r, p) {
			perturbNodeWeight(inst, r, p)
		}
	case opTaskWeight:
		perturbTaskWeight(inst, r, p)
	case opDepWeight:
		if !perturbDepWeight(inst, r, p) {
			perturbTaskWeight(inst, r, p)
		}
	case opAddDep:
		if !perturbAddDep(inst, r, p) {
			perturbTaskWeight(inst, r, p)
		}
	case opRemoveDep:
		if !perturbRemoveDep(inst, r) {
			perturbTaskWeight(inst, r, p)
		}
	}
}

func clampRange(v float64, rng [2]float64, floor float64) float64 {
	if v < rng[0] {
		v = rng[0]
	}
	if v > rng[1] {
		v = rng[1]
	}
	if v < floor {
		v = floor
	}
	return v
}

// step scales the perturbation magnitude to the weight range: the paper
// moves weights by ±1/10 on a [0, 1] range, i.e. a tenth of the span.
func step(p PerturbOptions, rng [2]float64, r *rng.RNG) float64 {
	span := rng[1] - rng[0]
	if span <= 0 {
		span = 1
	}
	return r.Uniform(-p.Step, p.Step) * span
}

func perturbNodeWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	v := r.Intn(inst.Net.NumNodes())
	inst.Net.Speeds[v] = clampRange(inst.Net.Speeds[v]+step(p, p.Speed, r), p.Speed, p.MinNetWeight)
}

func perturbLinkWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) bool {
	n := inst.Net.NumNodes()
	if n < 2 {
		return false
	}
	u := r.Intn(n)
	v := r.Intn(n - 1)
	if v >= u {
		v++
	}
	cur := inst.Net.Links[u][v]
	inst.Net.SetLink(u, v, clampRange(cur+step(p, p.Link, r), p.Link, p.MinNetWeight))
	return true
}

func perturbTaskWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	t := r.Intn(inst.Graph.NumTasks())
	inst.Graph.Tasks[t].Cost = clampRange(inst.Graph.Tasks[t].Cost+step(p, p.TaskCost, r), p.TaskCost, 0)
}

func perturbDepWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions) bool {
	deps := inst.Graph.Deps()
	if len(deps) == 0 {
		return false
	}
	d := deps[r.Intn(len(deps))]
	cur, _ := inst.Graph.DepCost(d[0], d[1])
	inst.Graph.SetDepCost(d[0], d[1], clampRange(cur+step(p, p.DepCost, r), p.DepCost, 0))
	return true
}

// perturbAddDep picks a task uniformly at random and adds a dependency to
// another uniformly random task such that the edge is new and acyclic,
// with a uniform weight in the dependency range. It tries a bounded
// number of random pairs before giving up.
func perturbAddDep(inst *graph.Instance, r *rng.RNG, p PerturbOptions) bool {
	g := inst.Graph
	n := g.NumTasks()
	if n < 2 {
		return false
	}
	const tries = 16
	for i := 0; i < tries; i++ {
		t := r.Intn(n)
		t2 := r.Intn(n - 1)
		if t2 >= t {
			t2++
		}
		if g.HasDep(t, t2) || g.Reaches(t2, t) {
			continue
		}
		g.MustAddDep(t, t2, r.Uniform(p.DepCost[0], p.DepCost[1]))
		return true
	}
	return false
}

func perturbRemoveDep(inst *graph.Instance, r *rng.RNG) bool {
	deps := inst.Graph.Deps()
	if len(deps) == 0 {
		return false
	}
	d := deps[r.Intn(len(deps))]
	return inst.Graph.RemoveDep(d[0], d[1])
}
