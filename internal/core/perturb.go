package core

import (
	"saga/internal/graph"
	"saga/internal/rng"
)

// perturbOp enumerates the six Section VI perturbation operators.
type perturbOp int

const (
	opNodeWeight perturbOp = iota
	opLinkWeight
	opTaskWeight
	opDepWeight
	opAddDep
	opRemoveDep
)

// enabledOps returns the operators permitted by the configuration.
func enabledOps(p PerturbOptions) []perturbOp {
	ops := []perturbOp{opTaskWeight}
	if !p.FixSpeeds {
		ops = append(ops, opNodeWeight)
	}
	if !p.FixLinks {
		ops = append(ops, opLinkWeight)
	}
	ops = append(ops, opDepWeight)
	if !p.FixStructure {
		ops = append(ops, opAddDep, opRemoveDep)
	}
	return ops
}

// undoRec records one applied perturbation so a rejected candidate can
// be rolled back in place: which operator actually fired (after
// fallbacks), where, and what it overwrote. For opRemoveDep the record
// also keeps the removed edge's adjacency positions — undo must restore
// slice order, not just membership, or Deps/DepAt indexing (and with it
// the RNG-driven edge picks of later iterations) would drift from the
// copy-based reference.
type undoRec struct {
	op     perturbOp
	a, b   int     // node index, task index, or edge endpoints (a → b)
	old    float64 // overwritten weight; removed edge's weight for opRemoveDep
	si, pi int     // adjacency positions of a removed edge
	// avg/avgOK hold the edge's pre-patch per-edge average (opDepWeight)
	// so revert restores it in O(1); snapOK records that applyTables
	// took an avgComm snapshot (opLinkWeight) into perturbState.avgSnap
	// so revert skips the O(|D|·|V|²) rebuild.
	avg    float64
	avgOK  bool
	snapOK bool
}

// perturbState is the per-worker mutable state behind the in-place
// annealing loop: the enabled-operator set, the undo log of the current
// candidate, and the reachability buffers the structural operators
// reuse. It lives in scheduler.Scratch extension state (see pisaState
// in pisa.go) so ownership follows the one-scratch-per-worker rule and
// the steady-state accept/reject cycle stays allocation-free.
type perturbState struct {
	ops     []perturbOp
	log     []undoRec
	reach   graph.ReachScratch
	avgSnap []float64 // avgComm snapshot buffer for link-op undo
}

func (ps *perturbState) push(u undoRec) { ps.log = append(ps.log, u) }

// perturb applies one randomly chosen perturbation to the instance in
// place, per Section VI: weight changes move a uniformly chosen weight
// by a uniform amount in ±Step (clamped to the configured range;
// network weights additionally floored at MinNetWeight), Add Dependency
// inserts a random acyclic edge, Remove Dependency deletes a random
// edge. Operators that cannot apply (no edges to remove, graph already
// transitively closed) fall through to a weight perturbation so every
// call changes something.
//
// The one-shot form for callers outside the annealing loop (the GA's
// mutation step, the property tests); the undo log is discarded.
func perturb(inst *graph.Instance, r *rng.RNG, p PerturbOptions) {
	ps := &perturbState{ops: enabledOps(p)}
	perturbInPlace(inst, r, p, ps)
}

// perturbInPlace is perturb against caller-owned state: the applied
// operator lands on ps.log (reset first) so revert can roll it back,
// and ps's buffers make the call allocation-free once warm. The RNG
// draw sequence is identical to refPerturb's for every graph state —
// that equivalence is what makes the in-place loop bit-identical to
// the copy-and-rebuild reference.
func perturbInPlace(inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) {
	ps.log = ps.log[:0]
	op := ps.ops[r.Intn(len(ps.ops))]
	switch op {
	case opNodeWeight:
		applyNodeWeight(inst, r, p, ps)
	case opLinkWeight:
		if !applyLinkWeight(inst, r, p, ps) {
			applyNodeWeight(inst, r, p, ps)
		}
	case opTaskWeight:
		applyTaskWeight(inst, r, p, ps)
	case opDepWeight:
		if !applyDepWeight(inst, r, p, ps) {
			applyTaskWeight(inst, r, p, ps)
		}
	case opAddDep:
		if !applyAddDep(inst, r, p, ps) {
			applyTaskWeight(inst, r, p, ps)
		}
	case opRemoveDep:
		if !applyRemoveDep(inst, r, ps) {
			applyTaskWeight(inst, r, p, ps)
		}
	}
}

// applyTables patches tab (built for inst) for every mutation on
// ps.log, per the graph.Tables staleness contract. Called once after
// perturbInPlace; it also stashes what revert needs to undo the patch
// cheaply — the pre-patch per-edge average for a dep-weight change, a
// snapshot of the whole built average table before a link change
// invalidates it — so a rejected candidate never re-runs a pair loop
// the accept path would not have run.
func applyTables(tab *graph.Tables, ps *perturbState) {
	for i := range ps.log {
		u := &ps.log[i]
		switch u.op {
		case opNodeWeight:
			tab.UpdateNodeSpeed(u.a)
		case opLinkWeight:
			ps.avgSnap, u.snapOK = tab.SnapshotAvgComm(ps.avgSnap)
			tab.UpdateLinkSpeed(u.a, u.b)
		case opTaskWeight:
			tab.UpdateTaskWeight(u.a)
		case opDepWeight:
			u.avg, u.avgOK = tab.AvgCommOf(u.a, u.b)
			tab.UpdateDepWeight(u.a, u.b)
		case opAddDep:
			tab.AddDep(u.a, u.b)
		case opRemoveDep:
			tab.RemoveDep(u.a, u.b)
		}
	}
}

// revert rolls the instance back across the undo log in reverse order
// and re-patches tab (skipped when nil) so instance and tables agree
// again. After revert the instance is byte-identical to its state
// before the matching perturbInPlace — the round-trip property
// undo_test.go proves per operator.
func revert(inst *graph.Instance, tab *graph.Tables, ps *perturbState) {
	for i := len(ps.log) - 1; i >= 0; i-- {
		u := &ps.log[i]
		switch u.op {
		case opNodeWeight:
			inst.Net.Speeds[u.a] = u.old
			if tab != nil {
				tab.UpdateNodeSpeed(u.a)
			}
		case opLinkWeight:
			inst.Net.SetLink(u.a, u.b, u.old)
			if tab != nil {
				tab.UpdateLinkSpeed(u.a, u.b)
				if u.snapOK {
					// Links are back in the snapshot's exact state; reuse
					// the saved table instead of rebuilding it.
					tab.RestoreAvgComm(ps.avgSnap)
				}
			}
		case opTaskWeight:
			inst.Graph.Tasks[u.a].Cost = u.old
			if tab != nil {
				tab.UpdateTaskWeight(u.a)
			}
		case opDepWeight:
			inst.Graph.SetDepCost(u.a, u.b, u.old)
			if tab != nil {
				if u.avgOK {
					tab.SetAvgComm(u.a, u.b, u.avg)
				} else {
					// The table was unbuilt at apply time; if the
					// evaluation built it since, it holds the perturbed
					// cost — recompute the one edge from the restored
					// instance (a no-op if still unbuilt).
					tab.UpdateDepWeight(u.a, u.b)
				}
			}
		case opAddDep:
			inst.Graph.RemoveDep(u.a, u.b) // the edge sits at the tail; removal restores the old lists
			if tab != nil {
				tab.RemoveDep(u.a, u.b)
			}
		case opRemoveDep:
			inst.Graph.RestoreDep(u.a, u.b, u.old, u.si, u.pi)
			if tab != nil {
				tab.AddDep(u.a, u.b)
			}
		}
	}
}

func clampRange(v float64, rng [2]float64, floor float64) float64 {
	if v < rng[0] {
		v = rng[0]
	}
	if v > rng[1] {
		v = rng[1]
	}
	if v < floor {
		v = floor
	}
	return v
}

// step scales the perturbation magnitude to the weight range: the paper
// moves weights by ±1/10 on a [0, 1] range, i.e. a tenth of the span.
func step(p PerturbOptions, rng [2]float64, r *rng.RNG) float64 {
	span := rng[1] - rng[0]
	if span <= 0 {
		span = 1
	}
	return r.Uniform(-p.Step, p.Step) * span
}

func applyNodeWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) {
	v := r.Intn(inst.Net.NumNodes())
	old := inst.Net.Speeds[v]
	inst.Net.Speeds[v] = clampRange(old+step(p, p.Speed, r), p.Speed, p.MinNetWeight)
	ps.push(undoRec{op: opNodeWeight, a: v, old: old})
}

func applyLinkWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) bool {
	n := inst.Net.NumNodes()
	if n < 2 {
		return false
	}
	u := r.Intn(n)
	v := r.Intn(n - 1)
	if v >= u {
		v++
	}
	old := inst.Net.Links[u][v]
	inst.Net.SetLink(u, v, clampRange(old+step(p, p.Link, r), p.Link, p.MinNetWeight))
	ps.push(undoRec{op: opLinkWeight, a: u, b: v, old: old})
	return true
}

func applyTaskWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) {
	t := r.Intn(inst.Graph.NumTasks())
	old := inst.Graph.Tasks[t].Cost
	inst.Graph.Tasks[t].Cost = clampRange(old+step(p, p.TaskCost, r), p.TaskCost, 0)
	ps.push(undoRec{op: opTaskWeight, a: t, old: old})
}

func applyDepWeight(inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) bool {
	nD := inst.Graph.NumDeps()
	if nD == 0 {
		return false
	}
	// DepAt(k) is Deps()[k] without materializing the slice; the Intn
	// draw matches the reference's deps[r.Intn(len(deps))] bit for bit.
	u, v := inst.Graph.DepAt(r.Intn(nD))
	old, _ := inst.Graph.DepCost(u, v)
	inst.Graph.SetDepCost(u, v, clampRange(old+step(p, p.DepCost, r), p.DepCost, 0))
	ps.push(undoRec{op: opDepWeight, a: u, b: v, old: old})
	return true
}

// applyAddDep picks a task uniformly at random and adds a dependency to
// another uniformly random task such that the edge is new and acyclic,
// with a uniform weight in the dependency range. It tries a bounded
// number of random pairs before giving up.
func applyAddDep(inst *graph.Instance, r *rng.RNG, p PerturbOptions, ps *perturbState) bool {
	g := inst.Graph
	n := g.NumTasks()
	if n < 2 {
		return false
	}
	const tries = 16
	for i := 0; i < tries; i++ {
		t := r.Intn(n)
		t2 := r.Intn(n - 1)
		if t2 >= t {
			t2++
		}
		if g.HasDep(t, t2) || ps.reach.Reaches(g, t2, t) {
			continue
		}
		g.AddDepUnchecked(t, t2, r.Uniform(p.DepCost[0], p.DepCost[1]))
		ps.push(undoRec{op: opAddDep, a: t, b: t2})
		return true
	}
	return false
}

func applyRemoveDep(inst *graph.Instance, r *rng.RNG, ps *perturbState) bool {
	nD := inst.Graph.NumDeps()
	if nD == 0 {
		return false
	}
	u, v := inst.Graph.DepAt(r.Intn(nD))
	cost, si, pi, ok := inst.Graph.TakeDep(u, v)
	if !ok {
		return false
	}
	ps.push(undoRec{op: opRemoveDep, a: u, b: v, old: cost, si: si, pi: pi})
	return true
}
