package coord

// The hub hosts many sweeps behind one address: the coordinator side of
// the daemon dispatch path (internal/serve). A `saga serve -coordinator`
// daemon registers each portfolio/robustness request as a sweep; a fleet
// of `saga worker -coordinator <hub> -persist` processes polls the hub
// and rotates across whatever sweeps need cells.
//
// Sweep identity is the content hash of the sweep's fingerprint, which
// is what makes the dispatch path coordinator-crash recoverable: a
// restarted hub starts empty, the daemon's next status poll answers 404,
// the daemon re-registers, and the hash maps the request to the *same*
// sweep id — so a worker that computed cells against the old incarnation
// delivers into the new one and the results are the results (global
// position-derived seeds; StoreDedup refuses disagreement). Identical
// concurrent requests share one sweep through a refcount; DELETE
// decrements it and the last client's release aborts and unmounts.
//
// Endpoints (all JSON; Options.Token guards every one):
//
//	POST   /sweeps                register (or re-join) a sweep
//	GET    /sweep                 worker poll: which sweep needs cells?
//	GET    /status                aggregate progress for operators
//	GET    /sweeps/{id}/status    one sweep's ledger
//	GET    /sweeps/{id}/cells     the committed cells (the result payload)
//	DELETE /sweeps/{id}           release: last ref aborts + unmounts
//	POST   /sweeps/{id}/lease     ┐
//	POST   /sweeps/{id}/heartbeat │ the PR 7 lease protocol, per sweep
//	POST   /sweeps/{id}/complete  ┘

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"saga/internal/experiments"
	"saga/internal/httpx"
)

// HubOptions tunes the hub. The zero value is usable.
type HubOptions struct {
	// Sweep is the per-sweep coordinator policy (lease size, TTL,
	// retries…). Its Token and Logf fields are ignored — the hub's own
	// Token guards everything and log lines are prefixed per sweep.
	Sweep Options
	// Token, when non-empty, requires bearer auth on every endpoint.
	Token string
	// WorkerTTL is how long after its last contact a worker still counts
	// as active (default 10s). ActiveWorkers drives the daemon's
	// no-worker degradation window.
	WorkerTTL time.Duration
	// SweepTTL unmounts sweeps nobody has touched — no client status
	// poll, no worker lease traffic — for this long (default 15m). It is
	// the leak bound for daemons that crashed between register and
	// release.
	SweepTTL time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
	// Logf, when non-nil, receives one line per hub event.
	Logf func(format string, args ...any)
}

func (o HubOptions) withDefaults() HubOptions {
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = 10 * time.Second
	}
	if o.SweepTTL <= 0 {
		o.SweepTTL = 15 * time.Minute
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// RegisterRequest mounts (or re-joins) a sweep on the hub.
type RegisterRequest struct {
	Name   string                  `json:"name"`
	Params experiments.SweepParams `json:"params"`
}

// RegisterResponse identifies the mounted sweep. Existing reports that
// the sweep was already mounted (an identical concurrent request, or a
// re-registration after the client lost track of it): the caller joined
// it rather than starting fresh.
type RegisterResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
	Existing    bool   `json:"existing,omitempty"`
}

// CellsResponse is the GET /sweeps/{id}/cells payload: every committed
// cell, keyed by global cell index.
type CellsResponse struct {
	Cells map[int]json.RawMessage `json:"cells"`
}

type hubSweep struct {
	id      string
	name    string
	coord   *Coordinator
	store   *MemStore
	refs    int
	touched time.Time
}

// Hub is an http.Handler hosting any number of coordinated sweeps.
type Hub struct {
	opts HubOptions
	mux  *http.ServeMux

	mu           sync.Mutex
	sweeps       map[string]*hubSweep
	order        []string // mount order; GET /sweep scans it
	workers      map[string]time.Time
	authRejected uint64
}

// NewHub builds an empty hub.
func NewHub(opts HubOptions) *Hub {
	h := &Hub{
		opts:    opts.withDefaults(),
		sweeps:  map[string]*hubSweep{},
		workers: map[string]time.Time{},
	}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("POST /sweeps", h.handleRegister)
	h.mux.HandleFunc("GET /sweep", h.handlePick)
	h.mux.HandleFunc("GET /status", h.handleStatus)
	h.mux.HandleFunc("DELETE /sweeps/{id}", h.handleRelease)
	h.mux.HandleFunc("GET /sweeps/{id}/status", h.handleSweepStatus)
	h.mux.HandleFunc("GET /sweeps/{id}/cells", h.handleCells)
	h.mux.HandleFunc("POST /sweeps/{id}/{op}", h.handleProtocol)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !httpx.CheckBearer(r, h.opts.Token) {
		h.mu.Lock()
		h.authRejected++
		h.mu.Unlock()
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	h.mux.ServeHTTP(w, r)
}

func (h *Hub) logf(format string, args ...any) {
	if h.opts.Logf != nil {
		h.opts.Logf(format, args...)
	}
}

// SweepID derives the hub's sweep id from a fingerprint: a short content
// hash, so identical requests — including one replayed after a hub
// restart — always land on the same id.
func SweepID(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return fmt.Sprintf("s%x", sum[:8])
}

// touchWorker records contact from a worker (the ?worker= query workers
// append to their hub requests).
func (h *Hub) touchWorkerLocked(r *http.Request, now time.Time) {
	if name := r.URL.Query().Get("worker"); name != "" {
		h.workers[name] = now
	}
}

// activeWorkersLocked counts (and prunes) workers heard from within
// WorkerTTL.
func (h *Hub) activeWorkersLocked(now time.Time) int {
	for name, t := range h.workers {
		if now.Sub(t) > h.opts.WorkerTTL {
			delete(h.workers, name)
		}
	}
	return len(h.workers)
}

// gcLocked unmounts sweeps whose last touch is older than SweepTTL.
func (h *Hub) gcLocked(now time.Time) {
	for i := 0; i < len(h.order); {
		id := h.order[i]
		hs := h.sweeps[id]
		if now.Sub(hs.touched) > h.opts.SweepTTL {
			hs.coord.Abort()
			delete(h.sweeps, id)
			h.order = append(h.order[:i], h.order[i+1:]...)
			h.logf("hub: sweep %s (%s) expired untouched; unmounted", id, hs.name)
			continue
		}
		i++
	}
}

func (h *Hub) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	// Resolve outside the lock: NewSweep validates and fingerprints.
	sw, err := experiments.NewSweep(req.Name, req.Params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := SweepID(sw.Fingerprint)
	now := h.opts.Now()

	h.mu.Lock()
	defer h.mu.Unlock()
	h.gcLocked(now)
	if hs, ok := h.sweeps[id]; ok {
		hs.refs++
		hs.touched = now
		writeJSON(w, RegisterResponse{ID: id, Fingerprint: sw.Fingerprint, Cells: sw.Cells, Existing: true})
		return
	}
	opts := h.opts.Sweep
	opts.Token = ""
	opts.Logf = nil
	if h.opts.Logf != nil {
		logf := h.opts.Logf
		opts.Logf = func(format string, args ...any) { logf("["+id+"] "+format, args...) }
	}
	store := NewMemStore()
	c, err := New(req.Name, req.Params, store, opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.sweeps[id] = &hubSweep{id: id, name: req.Name, coord: c, store: store, refs: 1, touched: now}
	h.order = append(h.order, id)
	h.logf("hub: mounted sweep %s (%s, %d cells)", id, req.Name, sw.Cells)
	writeJSON(w, RegisterResponse{ID: id, Fingerprint: sw.Fingerprint, Cells: sw.Cells})
}

func (h *Hub) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h.mu.Lock()
	defer h.mu.Unlock()
	hs, ok := h.sweeps[id]
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	hs.refs--
	if hs.refs > 0 {
		writeJSON(w, map[string]bool{"ok": true})
		return
	}
	hs.coord.Abort()
	delete(h.sweeps, id)
	for i, oid := range h.order {
		if oid == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.logf("hub: released sweep %s (%s); unmounted", id, hs.name)
	writeJSON(w, map[string]bool{"ok": true})
}

// handlePick answers a worker's GET /sweep: the first mounted sweep with
// leasable work, else the first unfinished one (its cells may come back
// via reaping or retry), else Idle.
func (h *Hub) handlePick(w http.ResponseWriter, r *http.Request) {
	now := h.opts.Now()
	h.mu.Lock()
	h.touchWorkerLocked(r, now)
	h.gcLocked(now)
	candidates := make([]*hubSweep, 0, len(h.order))
	for _, id := range h.order {
		candidates = append(candidates, h.sweeps[id])
	}
	h.mu.Unlock()

	var fallback *hubSweep
	for _, hs := range candidates {
		st := hs.coord.Status()
		if st.Done {
			continue
		}
		if st.Pending > 0 || st.RetryWait > 0 {
			writeJSON(w, h.sweepInfo(hs))
			return
		}
		if fallback == nil {
			fallback = hs
		}
	}
	if fallback != nil {
		writeJSON(w, h.sweepInfo(fallback))
		return
	}
	writeJSON(w, SweepInfo{Idle: true})
}

func (h *Hub) sweepInfo(hs *hubSweep) SweepInfo {
	info := hs.coord.info
	info.ID = hs.id
	info.Path = "/sweeps/" + hs.id
	return info
}

// lookup fetches a mounted sweep and bumps its touch time.
func (h *Hub) lookup(r *http.Request) (*hubSweep, bool) {
	id := r.PathValue("id")
	now := h.opts.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.touchWorkerLocked(r, now)
	hs, ok := h.sweeps[id]
	if ok {
		hs.touched = now
	}
	return hs, ok
}

func (h *Hub) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	hs, ok := h.lookup(r)
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	st := hs.coord.Status()
	now := h.opts.Now()
	h.mu.Lock()
	st.ActiveWorkers = h.activeWorkersLocked(now)
	h.mu.Unlock()
	writeJSON(w, st)
}

func (h *Hub) handleCells(w http.ResponseWriter, r *http.Request) {
	hs, ok := h.lookup(r)
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	writeJSON(w, CellsResponse{Cells: hs.store.Cells()})
}

// handleProtocol routes lease/heartbeat/complete to the sweep's own
// coordinator, which speaks the unmodified PR 7 protocol.
func (h *Hub) handleProtocol(w http.ResponseWriter, r *http.Request) {
	op := r.PathValue("op")
	if op != "lease" && op != "heartbeat" && op != "complete" {
		http.Error(w, "unknown operation", http.StatusNotFound)
		return
	}
	hs, ok := h.lookup(r)
	if !ok {
		// The sweep is gone — released, aborted, or this hub restarted.
		// 404 tells the worker to drop the cells and re-poll GET /sweep.
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + op
	hs.coord.ServeHTTP(w, r2)
}

// handleStatus aggregates every mounted sweep for operators (`saga
// coordinate -watch`).
func (h *Hub) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := h.opts.Now()
	h.mu.Lock()
	h.gcLocked(now)
	candidates := make([]*hubSweep, 0, len(h.order))
	for _, id := range h.order {
		candidates = append(candidates, h.sweeps[id])
	}
	agg := Status{Name: "hub", Done: true,
		ActiveWorkers: h.activeWorkersLocked(now),
		Sweeps:        len(h.order),
		AuthRejected:  h.authRejected,
	}
	h.mu.Unlock()

	for _, hs := range candidates {
		st := hs.coord.Status()
		agg.Cells += st.Cells
		agg.Committed += st.Committed
		agg.Poisoned += st.Poisoned
		agg.Leased += st.Leased
		agg.Pending += st.Pending
		agg.RetryWait += st.RetryWait
		agg.Done = agg.Done && st.Done
	}
	writeJSON(w, agg)
}

// MemStore is the in-memory Store behind hub sweeps: same dedup
// semantics as serialize.Checkpoint, no file. Results leave through
// GET /sweeps/{id}/cells instead of a checkpoint path.
type MemStore struct {
	mu    sync.Mutex
	cells map[int]json.RawMessage
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{cells: map[int]json.RawMessage{}}
}

// SetFingerprint implements Store (a memory store has no cross-process
// identity to verify; the hub's content-hash id plays that role).
func (m *MemStore) SetFingerprint(fp string) {}

// Load implements Store.
func (m *MemStore) Load() (map[int]json.RawMessage, error) {
	return m.Cells(), nil
}

// Cells returns a snapshot of the committed cells.
func (m *MemStore) Cells() map[int]json.RawMessage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]json.RawMessage, len(m.cells))
	for k, v := range m.cells {
		out[k] = v
	}
	return out
}

// StoreDedup implements Store with serialize.Checkpoint's contract: an
// identical duplicate is a no-op, a disagreeing one an error.
func (m *MemStore) StoreDedup(index int, cell json.RawMessage) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prior, ok := m.cells[index]; ok {
		if string(prior) == string(cell) {
			return false, nil
		}
		return false, fmt.Errorf("coord: cell %d delivered twice with different bytes (determinism violation)", index)
	}
	m.cells[index] = append(json.RawMessage(nil), cell...)
	return true, nil
}

// Flush implements Store (memory is always "durable enough" — the hub's
// recovery story is re-registration + recompute, not disk).
func (m *MemStore) Flush() error { return nil }
