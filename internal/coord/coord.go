// Package coord is the fault-tolerant coordinator behind `saga
// coordinate`: it owns one registered sweep (experiments.NewSweep),
// leases cell ranges to workers over a small HTTP JSON protocol, and
// streams completed cells into the sweep's checkpoint store.
//
// The protocol leans entirely on the repo's determinism-by-construction
// invariants. Cell indices, and with them the position-derived seeds,
// are global; a worker computes a leased cell exactly as a
// single-process run would, so the coordinator is free to reassign
// cells at will — when a worker dies, hangs, or merely misses its
// heartbeats — without ever changing a result. Duplicate completions
// (a reclaimed lease finishing late, a retried delivery) are committed
// through serialize.Checkpoint.StoreDedup, which accepts byte-identical
// duplicates and refuses disagreeing ones: the store can only ever hold
// the one answer the sequential reference would produce.
//
// Failures degrade gracefully. A cell whose evaluation errors is
// retried with capped exponential backoff; after Options.MaxRetries
// attempts it is poisoned — parked, reported, and excluded from further
// leasing — so one bad cell cannot stall the other N-1. Completed cells
// hit the store incrementally, so a crashed coordinator restarted on
// the same store resumes with every committed cell intact.
//
// Endpoints (all JSON):
//
//	GET  /sweep      sweep identity: name, params, fingerprint, cells
//	POST /lease      lease the next cell range (or Wait / Done)
//	POST /heartbeat  renew a lease before its TTL expires
//	POST /complete   deliver computed cells and per-cell failures
//	GET  /status     progress counters for operators and harnesses
package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"saga/internal/experiments"
	"saga/internal/httpx"
	"saga/internal/rng"
)

// Store is the coordinator's commit target. serialize.Checkpoint is the
// durable file-backed implementation behind `saga coordinate`; MemStore
// backs the hub's per-request sweeps, whose results are fetched over
// HTTP and never touch disk. Whatever the backing, StoreDedup carries
// the protocol's core guarantee: identical duplicates are no-ops,
// disagreeing ones are refused.
type Store interface {
	SetFingerprint(fp string)
	Load() (map[int]json.RawMessage, error)
	StoreDedup(index int, cell json.RawMessage) (stored bool, err error)
	Flush() error
}

// ErrAborted is the Wait result of a sweep torn down by Abort — the
// client that registered it went away, not a cell or store failure.
var ErrAborted = errors.New("coord: sweep aborted")

// Options tunes the coordinator's leasing and retry policy. The zero
// value is usable: every field has a default.
type Options struct {
	// LeaseSize is the number of cells granted per lease (default 8).
	LeaseSize int
	// LeaseTTL is how long a lease lives without a heartbeat before its
	// unfinished cells are reclaimed and re-leased (default 30s).
	LeaseTTL time.Duration
	// MaxRetries is how many times a cell's evaluation may fail before
	// the cell is poisoned (default 3).
	MaxRetries int
	// RetryBackoff is the delay before a failed cell becomes leasable
	// again; it doubles per attempt, capped at 64x (default 1s).
	RetryBackoff time.Duration
	// ShuffleSeed, when non-zero, leases cells in a seed-derived random
	// order instead of index order. Results are identical either way —
	// the fault-injection suite sweeps seeds to prove it.
	ShuffleSeed uint64
	// Token, when non-empty, requires `Authorization: Bearer <Token>` on
	// every endpoint; rejected requests are counted in Status.
	Token string
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
	// Logf, when non-nil, receives one line per protocol event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.LeaseSize <= 0 {
		o.LeaseSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// backoff returns the retry delay after the given number of failed
// attempts: RetryBackoff doubled per attempt, capped at 64x so a
// poisoning-bound cell never waits unboundedly between its last tries.
func (o Options) backoff(attempts int) time.Duration {
	shift := attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6
	}
	return o.RetryBackoff << shift
}

// SweepInfo is the GET /sweep payload: everything a worker needs to
// rebuild the sweep locally through experiments.NewSweep and verify it
// agrees with the coordinator (fingerprint, cell count) before
// computing anything.
type SweepInfo struct {
	Name           string                  `json:"name"`
	Params         experiments.SweepParams `json:"params"`
	Fingerprint    string                  `json:"fingerprint"`
	Cells          int                     `json:"cells"`
	LeaseTTLMillis int64                   `json:"lease_ttl_ms"`

	// Hub extensions (see Hub): a hub's GET /sweep points the worker at
	// one mounted sweep via ID and Path (the base path of its
	// lease/heartbeat/complete endpoints), or answers Idle when no sweep
	// needs work right now. A bare single-sweep coordinator leaves all
	// three zero, which is how workers tell the two modes apart.
	ID   string `json:"id,omitempty"`
	Path string `json:"path,omitempty"`
	Idle bool   `json:"idle,omitempty"`
}

// LeaseRequest asks for the next cell range.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a lease, asks the worker to wait (cells are
// leased out or backing off), or reports the sweep finished.
type LeaseResponse struct {
	Lease string `json:"lease,omitempty"`
	Cells []int  `json:"cells,omitempty"`
	Wait  bool   `json:"wait,omitempty"`
	Done  bool   `json:"done,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// HeartbeatResponse acknowledges a renewal. Cancel means the lease is
// no longer held (it expired and was reclaimed): the worker may finish
// and deliver anyway — completions dedup — but should stop renewing.
type HeartbeatResponse struct {
	OK     bool `json:"ok"`
	Cancel bool `json:"cancel,omitempty"`
}

// CompleteRequest delivers a lease's results: the computed cells and
// the per-cell failures. Cells outside the lease are accepted too (the
// appspecific driver computes its benchmark window on every worker and
// delivers it with the first lease).
type CompleteRequest struct {
	Worker string                  `json:"worker"`
	Lease  string                  `json:"lease"`
	Cells  map[int]json.RawMessage `json:"cells,omitempty"`
	Failed map[int]string          `json:"failed,omitempty"`
}

// CompleteResponse acknowledges a delivery. Done piggybacks sweep
// completion so the worker that delivered the last cells learns it is
// finished without racing the coordinator's shutdown on one more
// /lease round trip.
type CompleteResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// Status is the GET /status payload. ActiveWorkers, Sweeps and
// AuthRejected are filled by the hub (a bare coordinator has no worker
// registry); Done on a hub aggregate means every mounted sweep is done.
type Status struct {
	Name          string `json:"name"`
	Cells         int    `json:"cells"`
	Committed     int    `json:"committed"`
	Poisoned      int    `json:"poisoned"`
	Leased        int    `json:"leased"`
	Pending       int    `json:"pending"`
	RetryWait     int    `json:"retry_wait"`
	Done          bool   `json:"done"`
	ActiveWorkers int    `json:"active_workers,omitempty"`
	Sweeps        int    `json:"sweeps,omitempty"`
	AuthRejected  uint64 `json:"auth_rejected,omitempty"`
}

// PoisonedError reports the cells that exhausted their retries. The
// sweep still completed: every other cell is committed, and the store
// holds them all — the operator re-runs only the listed cells after
// fixing whatever poisoned them.
type PoisonedError struct {
	Cells []int          // sorted
	Errs  map[int]string // last failure per poisoned cell
}

// Error implements error.
func (e *PoisonedError) Error() string {
	show := e.Cells
	const max = 10
	suffix := ""
	if len(show) > max {
		suffix = fmt.Sprintf(", … %d more", len(show)-max)
		show = show[:max]
	}
	return fmt.Sprintf("coord: sweep completed with %d poisoned cells (%v%s); last error of cell %d: %s",
		len(e.Cells), show, suffix, e.Cells[0], e.Errs[e.Cells[0]])
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellRetryWait
	cellCommitted
	cellPoisoned
)

type cellInfo struct {
	state     cellState
	attempts  int
	notBefore time.Time // earliest re-lease when state == cellRetryWait
	lease     string    // holding lease when state == cellLeased
	lastErr   string
}

type leaseInfo struct {
	id      string
	worker  string
	cells   []int
	expires time.Time
}

// Coordinator owns one sweep's cell ledger and checkpoint store. It is
// an http.Handler; serve it wherever convenient (net/http, httptest).
type Coordinator struct {
	info  SweepInfo
	store Store
	opts  Options
	mux   *http.ServeMux

	authRejected atomic.Uint64

	mu        sync.Mutex
	cells     []cellInfo
	order     []int // leasing order over cell indices
	leases    map[string]*leaseInfo
	nextLease int
	committed int
	poisoned  int
	aborted   bool
	fatal     error         // store-level failure; ends the run
	done      chan struct{} // closed when committed+poisoned == Cells (or fatal)
	closed    bool
}

// New builds a coordinator for the named registered sweep. The store is
// bound to the sweep's fingerprint and loaded immediately: cells
// already present are committed up front, which is what makes a
// coordinator crash resumable — restart it on the same store and only
// the missing cells are leased out.
func New(name string, params experiments.SweepParams, store Store, opts Options) (*Coordinator, error) {
	sw, err := experiments.NewSweep(name, params)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	store.SetFingerprint(sw.Fingerprint)
	prior, err := store.Load()
	if err != nil {
		return nil, fmt.Errorf("coord: resume: %w", err)
	}
	c := &Coordinator{
		info: SweepInfo{
			Name:           sw.Name,
			Params:         params,
			Fingerprint:    sw.Fingerprint,
			Cells:          sw.Cells,
			LeaseTTLMillis: opts.LeaseTTL.Milliseconds(),
		},
		store:  store,
		opts:   opts,
		cells:  make([]cellInfo, sw.Cells),
		leases: map[string]*leaseInfo{},
		done:   make(chan struct{}),
	}
	for k := range prior {
		if k < 0 || k >= sw.Cells {
			return nil, fmt.Errorf("coord: resume: store holds cell %d outside the sweep's %d cells", k, sw.Cells)
		}
		c.cells[k].state = cellCommitted
		c.committed++
	}
	c.order = make([]int, sw.Cells)
	for i := range c.order {
		c.order[i] = i
	}
	if opts.ShuffleSeed != 0 {
		c.order = rng.New(opts.ShuffleSeed).Perm(sw.Cells)
	}
	c.logf("coordinator: sweep %s, %d cells (%d resumed from store)", sw.Name, sw.Cells, c.committed)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /sweep", c.handleSweep)
	c.mux.HandleFunc("POST /lease", c.handleLease)
	c.mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /complete", c.handleComplete)
	c.mux.HandleFunc("GET /status", c.handleStatus)
	c.mu.Lock()
	c.checkDoneLocked()
	c.mu.Unlock()
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !httpx.CheckBearer(r, c.opts.Token) {
		c.authRejected.Add(1)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	c.mux.ServeHTTP(w, r)
}

// Abort tears the sweep down: outstanding leases are dropped, further
// leases answer Done, completions are acknowledged but not committed,
// and Wait returns ErrAborted. Committed cells stay in the store — an
// aborted sweep re-registered later resumes from them. Safe to call
// more than once and after completion (then a no-op).
func (c *Coordinator) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted || c.closed {
		return
	}
	c.aborted = true
	if c.fatal == nil {
		c.fatal = ErrAborted
	}
	for id := range c.leases {
		delete(c.leases, id)
	}
	for k := range c.cells {
		if c.cells[k].state == cellLeased {
			c.cells[k].state = cellPending
			c.cells[k].lease = ""
		}
	}
	c.logf("coordinator: sweep %s aborted (%d/%d committed)", c.info.Name, c.committed, c.info.Cells)
	c.checkDoneLocked()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Wait blocks until the sweep finishes — every cell committed or
// poisoned — or cancel is closed. It flushes the store and returns nil
// on a clean sweep, a *PoisonedError when cells were poisoned (the
// store still holds every committed cell), or the fatal store error.
func (c *Coordinator) Wait(cancel <-chan struct{}) error {
	select {
	case <-c.done:
	case <-cancel:
		return fmt.Errorf("coord: canceled")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return c.fatal
	}
	if err := c.store.Flush(); err != nil {
		return fmt.Errorf("coord: flush: %w", err)
	}
	if c.poisoned == 0 {
		return nil
	}
	pe := &PoisonedError{Errs: map[int]string{}}
	for k := range c.cells {
		if c.cells[k].state == cellPoisoned {
			pe.Cells = append(pe.Cells, k)
			pe.Errs[k] = c.cells[k].lastErr
		}
	}
	sort.Ints(pe.Cells)
	return pe
}

// Status returns a snapshot of the ledger.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opts.Now())
	s := Status{Name: c.info.Name, Cells: c.info.Cells, Committed: c.committed, Poisoned: c.poisoned,
		AuthRejected: c.authRejected.Load()}
	for k := range c.cells {
		switch c.cells[k].state {
		case cellPending:
			s.Pending++
		case cellLeased:
			s.Leased++
		case cellRetryWait:
			s.RetryWait++
		}
	}
	s.Done = c.committed+c.poisoned == c.info.Cells
	return s
}

// reapLocked expires overdue leases, returning their unfinished cells
// to the pending pool. Expiry is not a failure: the cell's attempt
// count is untouched (the worker may be dead, hung, or merely
// partitioned — none of which says anything about the cell), and
// because seeds derive from the global cell position, whoever computes
// the cell next produces the identical bytes.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		reclaimed := 0
		for _, k := range l.cells {
			if c.cells[k].state == cellLeased && c.cells[k].lease == id {
				c.cells[k].state = cellPending
				c.cells[k].lease = ""
				reclaimed++
			}
		}
		delete(c.leases, id)
		c.logf("coordinator: lease %s (worker %s) expired; reclaimed %d cells", id, l.worker, reclaimed)
	}
}

// checkDoneLocked closes done once no cell can make further progress.
func (c *Coordinator) checkDoneLocked() {
	if !c.closed && (c.fatal != nil || c.committed+c.poisoned == c.info.Cells) {
		c.closed = true
		close(c.done)
	}
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.info)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	if c.fatal != nil || c.committed+c.poisoned == c.info.Cells {
		writeJSON(w, LeaseResponse{Done: true})
		return
	}
	var grant []int
	for _, k := range c.order {
		if len(grant) == c.opts.LeaseSize {
			break
		}
		ci := &c.cells[k]
		leasable := ci.state == cellPending ||
			(ci.state == cellRetryWait && !now.Before(ci.notBefore))
		if leasable {
			grant = append(grant, k)
		}
	}
	if len(grant) == 0 {
		// Everything outstanding is leased out or backing off; the worker
		// polls again. (Done was ruled out above.)
		writeJSON(w, LeaseResponse{Wait: true})
		return
	}
	c.nextLease++
	id := fmt.Sprintf("L%d", c.nextLease)
	l := &leaseInfo{id: id, worker: req.Worker, cells: grant, expires: now.Add(c.opts.LeaseTTL)}
	c.leases[id] = l
	for _, k := range grant {
		c.cells[k].state = cellLeased
		c.cells[k].lease = id
	}
	c.logf("coordinator: lease %s -> worker %s: %d cells %v", id, req.Worker, len(grant), grant)
	writeJSON(w, LeaseResponse{Lease: id, Cells: grant})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[req.Lease]
	if !ok {
		// Expired and reclaimed (or never existed): tell the worker to
		// stop renewing. Its late completion is still welcome — dedup
		// makes redundant delivery harmless.
		writeJSON(w, HeartbeatResponse{Cancel: true})
		return
	}
	l.expires = now.Add(c.opts.LeaseTTL)
	writeJSON(w, HeartbeatResponse{OK: true})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted {
		// The sweep was torn down under the worker: nothing to commit,
		// nothing to retry. Done sends the worker back to its poll loop.
		writeJSON(w, CompleteResponse{OK: false, Done: true})
		return
	}
	c.reapLocked(now)

	// Commit successes first — even from an expired or unknown lease
	// (the worker computed them with global seeds, so the bytes are the
	// bytes), and even for cells some other lease currently holds (the
	// holder's redundant completion will dedup).
	keys := make([]int, 0, len(req.Cells))
	for k := range req.Cells {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if k < 0 || k >= c.info.Cells {
			http.Error(w, fmt.Sprintf("cell %d outside the sweep's %d cells", k, c.info.Cells), http.StatusBadRequest)
			return
		}
		stored, err := c.store.StoreDedup(k, req.Cells[k])
		if err != nil {
			// A disagreeing duplicate is a determinism violation — the one
			// fault no retry can mend. Park the sweep instead of racing to
			// overwrite the committed value.
			c.fatal = fmt.Errorf("coord: worker %s: %w", req.Worker, err)
			c.logf("coordinator: FATAL: %v", c.fatal)
			c.checkDoneLocked()
			http.Error(w, c.fatal.Error(), http.StatusConflict)
			return
		}
		ci := &c.cells[k]
		if ci.state != cellCommitted {
			if ci.state == cellPoisoned {
				// A late success heals a poisoned cell: the result exists
				// now, so there is nothing left to report.
				c.poisoned--
			}
			ci.state = cellCommitted
			ci.lease = ""
			c.committed++
		}
		_ = stored
	}

	// Then failures: retry with backoff until the attempt budget runs
	// out, then poison. A failure report for a committed cell is moot —
	// someone else already produced the result.
	fkeys := make([]int, 0, len(req.Failed))
	for k := range req.Failed {
		fkeys = append(fkeys, k)
	}
	sort.Ints(fkeys)
	for _, k := range fkeys {
		if k < 0 || k >= c.info.Cells {
			http.Error(w, fmt.Sprintf("cell %d outside the sweep's %d cells", k, c.info.Cells), http.StatusBadRequest)
			return
		}
		ci := &c.cells[k]
		if ci.state == cellCommitted || ci.state == cellPoisoned {
			continue
		}
		ci.attempts++
		ci.lastErr = req.Failed[k]
		ci.lease = ""
		if ci.attempts >= c.opts.MaxRetries {
			ci.state = cellPoisoned
			c.poisoned++
			c.logf("coordinator: cell %d poisoned after %d attempts: %s", k, ci.attempts, ci.lastErr)
			continue
		}
		ci.state = cellRetryWait
		ci.notBefore = now.Add(c.opts.backoff(ci.attempts))
		c.logf("coordinator: cell %d failed (attempt %d/%d), retrying after %s: %s",
			k, ci.attempts, c.opts.MaxRetries, c.opts.backoff(ci.attempts), ci.lastErr)
	}

	if l, ok := c.leases[req.Lease]; ok {
		// The lease is settled: anything it still holds that was neither
		// delivered nor failed goes back to pending (a worker that ran a
		// partial lease — or reported a run-level error — never strands
		// cells until the TTL).
		for _, k := range l.cells {
			if c.cells[k].state == cellLeased && c.cells[k].lease == req.Lease {
				c.cells[k].state = cellPending
				c.cells[k].lease = ""
			}
		}
		delete(c.leases, req.Lease)
	}
	c.logf("coordinator: worker %s completed lease %s: %d cells, %d failed (%d/%d committed)",
		req.Worker, req.Lease, len(req.Cells), len(req.Failed), c.committed, c.info.Cells)
	c.checkDoneLocked()
	writeJSON(w, CompleteResponse{OK: true, Done: c.committed+c.poisoned == c.info.Cells})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Status())
}

// writeJSON and readJSON are the shared JSON framing helpers; the
// protocol dialect (200+JSON or non-200+plain text, bounded bodies)
// lives in internal/httpx so the scheduling daemon speaks it too.
func writeJSON(w http.ResponseWriter, v any) { httpx.WriteJSON(w, v) }

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return httpx.ReadJSON(w, r, v)
}
