package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"saga/internal/experiments"
)

// TestCoordSmokeE2E is the process-level twin of the in-process fault
// suite: a real `saga coordinate` process, three real `saga worker
// -coordinator` processes, one of them SIGKILLed mid-sweep, and the
// coordinator's store asserted byte-identical to the sequential
// reference. It builds the saga binary and forks processes, so it only
// runs when COORD_SMOKE=1 (wired up as `make coord-smoke`, part of
// `make verify`).
func TestCoordSmokeE2E(t *testing.T) {
	if os.Getenv("COORD_SMOKE") != "1" {
		t.Skip("set COORD_SMOKE=1 to run the process-level coordinator smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "saga")
	build := exec.Command("go", "build", "-o", bin, "saga/cmd/saga")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build saga: %v\n%s", err, out)
	}

	// The sweep: the full Fig 4 pairwise grid (210 cells) with an
	// annealing budget big enough that killing a worker mid-sweep leaves
	// real leased work for the survivors to reclaim, yet small enough to
	// finish in well under a minute.
	params := experiments.SweepParams{Iters: 150, Restarts: 1, Seed: 4}
	ref := sequentialReference(t, dir, "fig4", params)

	storePath := filepath.Join(dir, "store.json")
	coordProc := exec.Command(bin, "coordinate",
		"-driver", "fig4", "-checkpoint", storePath, "-addr", "127.0.0.1:0",
		"-lease", "4", "-lease-ttl", "1s", "-retry-backoff", "100ms",
		"-iters", "150", "-restarts", "1", "-seed", "4")
	stdout, err := coordProc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coordProc.Stderr = os.Stderr
	if err := coordProc.Start(); err != nil {
		t.Fatal(err)
	}
	defer coordProc.Process.Kill()

	// The coordinator prints its bound address; workers and the status
	// poller need it.
	urlRe := regexp.MustCompile(`on (http://[0-9.:]+)`)
	var baseURL string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if m := urlRe.FindStringSubmatch(sc.Text()); m != nil {
			baseURL = m[1]
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("coordinator never printed its address (scan error: %v)", sc.Err())
	}
	go func() { // drain the rest so the coordinator never blocks on stdout
		for sc.Scan() {
		}
	}()

	workers := make([]*exec.Cmd, 3)
	for i := range workers {
		workers[i] = exec.Command(bin, "worker",
			"-coordinator", baseURL, "-name", fmt.Sprintf("smoke-w%d", i))
		workers[i].Stdout = os.Stderr
		workers[i].Stderr = os.Stderr
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
		defer workers[i].Process.Kill()
	}

	// Let the sweep get underway, then kill one worker outright —
	// SIGKILL, no goodbye — while cells it leased are still outstanding.
	status := func() Status {
		var st Status
		resp, err := http.Get(baseURL + "/status")
		if err != nil {
			return st
		}
		defer resp.Body.Close()
		json.NewDecoder(resp.Body).Decode(&st)
		return st
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := status()
		if st.Committed >= 4 && st.Cells-st.Committed > 20 {
			break
		}
		if st.Done || time.Now().After(deadline) {
			t.Fatalf("no mid-sweep window to kill a worker in (status %+v)", st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := workers[0].Process.Kill(); err != nil {
		t.Fatalf("kill worker: %v", err)
	}
	workers[0].Wait()
	t.Log("killed worker smoke-w0 mid-sweep")

	// The survivors finish the sweep — including the dead worker's
	// reclaimed cells — and the coordinator exits cleanly.
	coordDone := make(chan error, 1)
	go func() { coordDone <- coordProc.Wait() }()
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator exited with %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("coordinator did not finish after the worker kill")
	}
	for _, w := range workers[1:] {
		if err := w.Wait(); err != nil {
			t.Fatalf("surviving worker exited with %v", err)
		}
	}

	got, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("store after worker kill diverged from the sequential reference (%d vs %d bytes)", len(got), len(ref))
	}
}
