package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"saga/internal/experiments"
	"saga/internal/serialize"
)

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testCoord builds a coordinator over the cheap fig7 sweep (cells = N,
// nothing executes — these tests speak the ledger protocol directly).
func testCoord(t *testing.T, n int, opts Options) (*Coordinator, *httptest.Server, string) {
	t.Helper()
	storePath := filepath.Join(t.TempDir(), "coord.ckpt")
	c, err := New("fig7", experiments.SweepParams{N: n, Seed: 1}, serialize.NewCheckpoint(storePath), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	t.Cleanup(srv.Close)
	return c, srv, storePath
}

func post[T any](t *testing.T, srv *httptest.Server, path string, body any) T {
	t.Helper()
	out, status := postStatus[T](t, srv, path, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, status)
	}
	return out
}

func postStatus[T any](t *testing.T, srv *httptest.Server, path string, body any) (T, int) {
	t.Helper()
	var out T
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func get[T any](t *testing.T, srv *httptest.Server, path string) T {
	t.Helper()
	var out T
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func cellJSON(k int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"cell":%d}`, k))
}

func TestSweepEndpointIdentifiesSweep(t *testing.T) {
	_, srv, _ := testCoord(t, 6, Options{})
	info := get[SweepInfo](t, srv, "/sweep")
	sw, err := experiments.NewSweep(info.Name, info.Params)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Fingerprint != info.Fingerprint || sw.Cells != info.Cells || info.Cells != 6 {
		t.Fatalf("sweep info does not rebuild the coordinator's sweep: %+v", info)
	}
	if info.LeaseTTLMillis <= 0 {
		t.Fatalf("lease TTL not advertised: %+v", info)
	}
}

func TestLeaseLifecycleAndReclaim(t *testing.T) {
	clock := newFakeClock()
	ttl := 10 * time.Second
	_, srv, _ := testCoord(t, 6, Options{LeaseSize: 2, LeaseTTL: ttl, Now: clock.Now})

	l1 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if l1.Lease == "" || len(l1.Cells) != 2 {
		t.Fatalf("first lease: %+v", l1)
	}
	l2 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w2"})
	if l2.Lease == l1.Lease || len(l2.Cells) != 2 {
		t.Fatalf("second lease: %+v", l2)
	}
	for _, k := range l2.Cells {
		for _, j := range l1.Cells {
			if k == j {
				t.Fatalf("cell %d leased twice: %+v %+v", k, l1, l2)
			}
		}
	}

	// A live heartbeat keeps the lease past its original TTL.
	clock.Advance(ttl - time.Second)
	hb := post[HeartbeatResponse](t, srv, "/heartbeat", HeartbeatRequest{Worker: "w1", Lease: l1.Lease})
	if !hb.OK || hb.Cancel {
		t.Fatalf("renewal refused: %+v", hb)
	}
	clock.Advance(ttl - time.Second)
	// w1 renewed so its lease survives; w2 never did, so its cells are
	// reclaimed and re-leased to whoever asks next.
	l3 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w3"})
	if len(l3.Cells) != 2 {
		t.Fatalf("reclaim lease: %+v", l3)
	}
	got := map[int]bool{l3.Cells[0]: true, l3.Cells[1]: true}
	for _, k := range l2.Cells {
		if !got[k] {
			t.Fatalf("expired lease's cell %d not re-leased: %+v", k, l3)
		}
	}
	// The dead lease's heartbeat now answers Cancel, not OK.
	hb = post[HeartbeatResponse](t, srv, "/heartbeat", HeartbeatRequest{Worker: "w2", Lease: l2.Lease})
	if hb.OK || !hb.Cancel {
		t.Fatalf("reaped lease heartbeat: %+v", hb)
	}
	// w1's renewed lease was never touched.
	st := get[Status](t, srv, "/status")
	if st.Leased != 4 || st.Pending != 2 || st.Committed != 0 {
		t.Fatalf("status after reclaim: %+v", st)
	}
}

func TestCompleteCommitsIncrementallyAndFinishes(t *testing.T) {
	clock := newFakeClock()
	c, srv, storePath := testCoord(t, 4, Options{LeaseSize: 4, Now: clock.Now})
	l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if len(l.Cells) != 4 {
		t.Fatalf("lease: %+v", l)
	}
	// Deliver half, then check the store already holds it — completed
	// ranges stream into the checkpoint, they do not wait for the end.
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l.Lease,
		Cells: map[int]json.RawMessage{0: cellJSON(0), 1: cellJSON(1)},
	})
	ck := serialize.NewCheckpoint(storePath)
	ck.SetFingerprint(c.info.Fingerprint)
	cells, err := ck.Load()
	if err != nil || len(cells) != 2 {
		t.Fatalf("mid-sweep store: %d cells, %v", len(cells), err)
	}
	// The lease was settled: its unfinished cells went back to pending
	// and are immediately re-leasable, not stranded until the TTL.
	l2 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if len(l2.Cells) != 2 {
		t.Fatalf("re-lease of settled remainder: %+v", l2)
	}
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l2.Lease,
		Cells: map[int]json.RawMessage{2: cellJSON(2), 3: cellJSON(3)},
	})
	if l3 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"}); !l3.Done {
		t.Fatalf("finished sweep still leasing: %+v", l3)
	}
	if err := c.Wait(nil); err != nil {
		t.Fatal(err)
	}
	cells, err = ck.Load()
	if err != nil || len(cells) != 4 {
		t.Fatalf("final store: %d cells, %v", len(cells), err)
	}
}

func TestRetryBackoffAndPoisoning(t *testing.T) {
	clock := newFakeClock()
	backoff := 4 * time.Second
	c, srv, _ := testCoord(t, 2, Options{
		LeaseSize: 2, MaxRetries: 3, RetryBackoff: backoff, Now: clock.Now,
	})
	fail := func(msg string) {
		l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
		if len(l.Cells) != 2 {
			t.Fatalf("lease: %+v", l)
		}
		post[CompleteResponse](t, srv, "/complete", CompleteRequest{
			Worker: "w1", Lease: l.Lease,
			Cells:  map[int]json.RawMessage{1: cellJSON(1)},
			Failed: map[int]string{0: msg},
		})
	}
	fail("transient: attempt 1")
	// Inside the backoff window the cell is not leasable.
	if l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"}); !l.Wait {
		t.Fatalf("cell leased during backoff: %+v", l)
	}
	clock.Advance(backoff)
	l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if len(l.Cells) != 1 || l.Cells[0] != 0 {
		t.Fatalf("retry lease: %+v", l)
	}
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l.Lease, Failed: map[int]string{0: "transient: attempt 2"},
	})
	// Second failure: the backoff doubled, so the original delay is not
	// enough.
	clock.Advance(backoff)
	if l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"}); !l.Wait {
		t.Fatalf("cell leased before doubled backoff elapsed: %+v", l)
	}
	clock.Advance(backoff)
	l = post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if len(l.Cells) != 1 {
		t.Fatalf("third lease: %+v", l)
	}
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l.Lease, Failed: map[int]string{0: "deterministic: attempt 3"},
	})
	// Third failure exhausts MaxRetries: poisoned, and the sweep is done
	// — graceful degradation, not a stall.
	if l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"}); !l.Done {
		t.Fatalf("poisoned sweep still leasing: %+v", l)
	}
	st := get[Status](t, srv, "/status")
	if !st.Done || st.Poisoned != 1 || st.Committed != 1 {
		t.Fatalf("status: %+v", st)
	}
	err := c.Wait(nil)
	pe, ok := err.(*PoisonedError)
	if !ok {
		t.Fatalf("Wait: %v, want *PoisonedError", err)
	}
	if len(pe.Cells) != 1 || pe.Cells[0] != 0 || !strings.Contains(pe.Errs[0], "attempt 3") {
		t.Fatalf("poisoned report: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "1 poisoned cells") {
		t.Fatalf("poisoned error text: %v", pe)
	}
}

func TestTransientFailureRecovers(t *testing.T) {
	clock := newFakeClock()
	c, srv, _ := testCoord(t, 1, Options{MaxRetries: 3, RetryBackoff: time.Second, Now: clock.Now})
	l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l.Lease, Failed: map[int]string{0: "flaky disk"},
	})
	clock.Advance(time.Second)
	l = post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if len(l.Cells) != 1 {
		t.Fatalf("retry lease: %+v", l)
	}
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l.Lease, Cells: map[int]json.RawMessage{0: cellJSON(0)},
	})
	if err := c.Wait(nil); err != nil {
		t.Fatalf("recovered sweep: %v", err)
	}
}

func TestLateCompletionOfReclaimedLease(t *testing.T) {
	clock := newFakeClock()
	ttl := 5 * time.Second
	c, srv, _ := testCoord(t, 2, Options{LeaseSize: 2, LeaseTTL: ttl, Now: clock.Now})
	l1 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "slow"})
	clock.Advance(ttl + time.Second)
	l2 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "fast"})
	if len(l2.Cells) != 2 {
		t.Fatalf("reclaimed lease: %+v", l2)
	}
	// The slow worker's completion lands after its lease died — still
	// committed (the bytes are position-determined, so they are right).
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "slow", Lease: l1.Lease,
		Cells: map[int]json.RawMessage{0: cellJSON(0), 1: cellJSON(1)},
	})
	st := get[Status](t, srv, "/status")
	if st.Committed != 2 || !st.Done {
		t.Fatalf("late completion not committed: %+v", st)
	}
	// The fast worker finishes the same cells: byte-identical, deduped.
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "fast", Lease: l2.Lease,
		Cells: map[int]json.RawMessage{0: cellJSON(0), 1: cellJSON(1)},
	})
	if err := c.Wait(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisagreeingDuplicateIsFatal(t *testing.T) {
	clock := newFakeClock()
	ttl := 5 * time.Second
	c, srv, _ := testCoord(t, 2, Options{LeaseSize: 2, LeaseTTL: ttl, Now: clock.Now})
	l1 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l1.Lease, Cells: map[int]json.RawMessage{0: cellJSON(0)},
	})
	// A different answer for a committed cell can only mean the worker
	// ran different parameters (or corrupted memory): refuse and park.
	_, status := postStatus[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w2", Lease: l1.Lease, Cells: map[int]json.RawMessage{0: json.RawMessage(`{"cell":999}`)},
	})
	if status != http.StatusConflict {
		t.Fatalf("disagreeing duplicate: status %d, want %d", status, http.StatusConflict)
	}
	err := c.Wait(nil)
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("Wait after determinism violation: %v", err)
	}
}

func TestCoordinatorResume(t *testing.T) {
	// A crashed coordinator restarted on its store must lease out only
	// the missing cells.
	dir := t.TempDir()
	storePath := filepath.Join(dir, "resume.ckpt")
	params := experiments.SweepParams{N: 5, Seed: 1}
	sw, err := experiments.NewSweep("fig7", params)
	if err != nil {
		t.Fatal(err)
	}
	ck := serialize.NewCheckpoint(storePath)
	ck.SetFingerprint(sw.Fingerprint)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 2, 4} {
		if err := ck.Store(k, cellJSON(k)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New("fig7", params, serialize.NewCheckpoint(storePath), Options{LeaseSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	defer srv.Close()
	st := get[Status](t, srv, "/status")
	if st.Committed != 3 || st.Pending != 2 {
		t.Fatalf("resumed status: %+v", st)
	}
	l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
	if len(l.Cells) != 2 || l.Cells[0] != 1 || l.Cells[1] != 3 {
		t.Fatalf("resumed lease grants %v, want the missing [1 3]", l.Cells)
	}
	post[CompleteResponse](t, srv, "/complete", CompleteRequest{
		Worker: "w1", Lease: l.Lease,
		Cells: map[int]json.RawMessage{1: cellJSON(1), 3: cellJSON(3)},
	})
	if err := c.Wait(nil); err != nil {
		t.Fatal(err)
	}
	cells, err := serializeLoad(storePath, sw.Fingerprint)
	if err != nil || len(cells) != 5 {
		t.Fatalf("final store: %d cells, %v", len(cells), err)
	}
	// A store from different parameters must refuse to resume.
	if _, err := New("fig7", experiments.SweepParams{N: 5, Seed: 2}, serialize.NewCheckpoint(storePath), Options{}); err == nil {
		t.Fatal("foreign store resumed")
	}
}

func serializeLoad(path, fp string) (map[int]json.RawMessage, error) {
	ck := serialize.NewCheckpoint(path)
	ck.SetFingerprint(fp)
	return ck.Load()
}

func TestShuffledLeaseOrderCoversEveryCell(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		c, srv, _ := testCoord(t, 10, Options{LeaseSize: 3, ShuffleSeed: seed})
		granted := map[int]bool{}
		order := []int{}
		for {
			l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})
			if len(l.Cells) == 0 {
				t.Fatalf("seed %d: lease stalled: %+v", seed, l)
			}
			cells := map[int]json.RawMessage{}
			for _, k := range l.Cells {
				if granted[k] {
					t.Fatalf("seed %d: cell %d granted twice", seed, k)
				}
				granted[k] = true
				order = append(order, k)
				cells[k] = cellJSON(k)
			}
			post[CompleteResponse](t, srv, "/complete", CompleteRequest{Worker: "w1", Lease: l.Lease, Cells: cells})
			if len(granted) == 10 {
				break
			}
		}
		if err := c.Wait(nil); err != nil {
			t.Fatal(err)
		}
		inOrder := true
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				inOrder = false
			}
		}
		if inOrder {
			t.Fatalf("seed %d: shuffled lease order is sequential: %v", seed, order)
		}
	}
}
