package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"saga/internal/datasets"
	"saga/internal/experiments"
	"saga/internal/runner"
	"saga/internal/serialize"
)

func testHub(t *testing.T, opts HubOptions) (*Hub, *httptest.Server) {
	t.Helper()
	h := NewHub(opts)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return h, srv
}

func pairwiseParams() experiments.SweepParams {
	return experiments.SweepParams{Iters: 2, Restarts: 1, Seed: 3, Schedulers: []string{"HEFT", "CPoP", "MinMin"}}
}

func robustnessParams(t *testing.T) experiments.SweepParams {
	t.Helper()
	raw, err := serialize.MarshalInstance(datasets.Fig1Instance())
	if err != nil {
		t.Fatal(err)
	}
	return experiments.SweepParams{N: 8, Seed: 5, Scheduler: "HEFT", Sigma: 0.25, InstanceRaw: raw}
}

// referenceCells computes the sweep in-process, sequentially — the cell
// bytes every hub-coordinated run must reproduce exactly.
func referenceCells(t *testing.T, name string, params experiments.SweepParams) map[int]json.RawMessage {
	t.Helper()
	sw, err := experiments.NewSweep(name, params)
	if err != nil {
		t.Fatal(err)
	}
	collector := &collectStore{}
	if err := sw.Run(runner.Options{Workers: 1, Checkpoint: collector}); err != nil {
		t.Fatal(err)
	}
	cells, err := collector.Load()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func assertSameCells(t *testing.T, want, got map[int]json.RawMessage) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("cell count diverged: want %d, got %d", len(want), len(got))
	}
	for k, w := range want {
		if string(got[k]) != string(w) {
			t.Fatalf("cell %d diverged:\nwant %s\ngot  %s", k, w, got[k])
		}
	}
}

func TestHubRegisterIsIdempotentByContentHash(t *testing.T) {
	_, srv := testHub(t, HubOptions{})
	req := RegisterRequest{Name: "pairwise", Params: pairwiseParams()}

	r1 := post[RegisterResponse](t, srv, "/sweeps", req)
	if r1.ID == "" || r1.Existing || r1.Cells != 6 {
		t.Fatalf("first register: %+v", r1)
	}
	if r1.ID != SweepID(r1.Fingerprint) {
		t.Fatalf("sweep id %q is not the fingerprint's content hash %q", r1.ID, SweepID(r1.Fingerprint))
	}
	// The identical request — a concurrent twin daemon, or this daemon
	// re-registering after a hub restart — joins the same sweep.
	r2 := post[RegisterResponse](t, srv, "/sweeps", req)
	if r2.ID != r1.ID || !r2.Existing {
		t.Fatalf("re-register: %+v, want existing id %s", r2, r1.ID)
	}
	// Different parameters mount a different sweep.
	other := req
	other.Params.Seed = 99
	if r3 := post[RegisterResponse](t, srv, "/sweeps", other); r3.ID == r1.ID {
		t.Fatal("distinct parameters landed on the same sweep id")
	}
	// Invalid parameters are refused before anything mounts.
	if _, status := postStatus[RegisterResponse](t, srv, "/sweeps",
		RegisterRequest{Name: "pairwise", Params: experiments.SweepParams{Schedulers: []string{"HEFT"}}}); status != http.StatusBadRequest {
		t.Fatalf("invalid sweep registered: status %d", status)
	}
}

func TestHubRefcountedRelease(t *testing.T) {
	_, srv := testHub(t, HubOptions{})
	req := RegisterRequest{Name: "pairwise", Params: pairwiseParams()}
	id := post[RegisterResponse](t, srv, "/sweeps", req).ID
	post[RegisterResponse](t, srv, "/sweeps", req) // second ref

	del := func() int {
		r, err := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := del(); status != http.StatusOK {
		t.Fatalf("first release: status %d", status)
	}
	// One ref left: the sweep is still mounted and leasable.
	if l := post[LeaseResponse](t, srv, "/sweeps/"+id+"/lease", LeaseRequest{Worker: "w"}); len(l.Cells) == 0 {
		t.Fatalf("sweep unmounted while a client still holds it: %+v", l)
	}
	if status := del(); status != http.StatusOK {
		t.Fatalf("last release: status %d", status)
	}
	// Gone: protocol calls answer 404, telling workers to drop the cells.
	if _, status := postStatus[HeartbeatResponse](t, srv, "/sweeps/"+id+"/heartbeat",
		HeartbeatRequest{Worker: "w", Lease: "whatever"}); status != http.StatusNotFound {
		t.Fatalf("heartbeat on a released sweep: status %d, want 404", status)
	}
	if _, status := postStatus[CompleteResponse](t, srv, "/sweeps/"+id+"/complete",
		CompleteRequest{Worker: "w", Lease: "whatever"}); status != http.StatusNotFound {
		t.Fatalf("complete on a released sweep: status %d, want 404", status)
	}
	if status := del(); status != http.StatusNotFound {
		t.Fatalf("release of an unmounted sweep: status %d, want 404", status)
	}
}

// TestHubPersistWorkersDrainMultipleSweeps is the hub's end-to-end
// proof: two different sweeps mounted concurrently, a persistent fleet
// rotating across both, and each sweep's committed cells byte-identical
// to its sequential in-process reference.
func TestHubPersistWorkersDrainMultipleSweeps(t *testing.T) {
	_, srv := testHub(t, HubOptions{Sweep: Options{LeaseSize: 2, LeaseTTL: 2 * time.Second}})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(ctx, srv.URL, WorkerOptions{
				Name: fmt.Sprintf("fleet-%d", i), Workers: 1, Persist: true,
				PollInterval: 10 * time.Millisecond,
			})
			if err != nil && ctx.Err() == nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}

	sweeps := []struct {
		name   string
		params experiments.SweepParams
	}{
		{"pairwise", pairwiseParams()},
		{"robustness", robustnessParams(t)},
	}
	for _, sw := range sweeps {
		t.Run(sw.name, func(t *testing.T) {
			want := referenceCells(t, sw.name, sw.params)
			reg := post[RegisterResponse](t, srv, "/sweeps", RegisterRequest{Name: sw.name, Params: sw.params})
			deadline := time.Now().Add(2 * time.Minute)
			for {
				st := get[Status](t, srv, "/sweeps/"+reg.ID+"/status")
				if st.Done {
					if st.Poisoned != 0 {
						t.Fatalf("poisoned cells in a healthy fleet: %+v", st)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("sweep never finished: %+v", st)
				}
				time.Sleep(10 * time.Millisecond)
			}
			got := get[CellsResponse](t, srv, "/sweeps/"+reg.ID+"/cells")
			assertSameCells(t, want, got.Cells)
			// The fleet heartbeats through ?worker=, so the status a
			// dispatching daemon watches must see live workers.
			if st := get[Status](t, srv, "/sweeps/"+reg.ID+"/status"); st.ActiveWorkers < 2 {
				t.Fatalf("ActiveWorkers = %d, want the whole fleet", st.ActiveWorkers)
			}
		})
	}

	cancel()
	wg.Wait()
}

func TestHubBearerAuth(t *testing.T) {
	_, srv := testHub(t, HubOptions{Token: "s3cret"})

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless status: %d, want 401", resp.StatusCode)
	}

	authed := func(path string) *http.Request {
		r, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Header.Set("Authorization", "Bearer s3cret")
		return r
	}
	resp, err = http.DefaultClient.Do(authed("/status"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed status: %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AuthRejected != 1 {
		t.Fatalf("AuthRejected = %d, want 1", st.AuthRejected)
	}
}

func TestHubWorkerLivenessAndSweepGC(t *testing.T) {
	clock := newFakeClock()
	_, srv := testHub(t, HubOptions{WorkerTTL: 10 * time.Second, SweepTTL: time.Minute, Now: clock.Now})
	id := post[RegisterResponse](t, srv, "/sweeps", RegisterRequest{Name: "pairwise", Params: pairwiseParams()}).ID

	// A worker's GET /sweep marks it alive until WorkerTTL passes.
	if info := get[SweepInfo](t, srv, "/sweep?worker=w1"); info.ID != id || info.Path != "/sweeps/"+id {
		t.Fatalf("pick: %+v, want sweep %s", info, id)
	}
	if st := get[Status](t, srv, "/status"); st.ActiveWorkers != 1 || st.Sweeps != 1 {
		t.Fatalf("status after worker contact: %+v", st)
	}
	clock.Advance(11 * time.Second)
	if st := get[Status](t, srv, "/status"); st.ActiveWorkers != 0 {
		t.Fatalf("worker still counted after TTL: %+v", st)
	}

	// Touching the sweep (status polls count) defers the GC…
	clock.Advance(50 * time.Second)
	if st := get[Status](t, srv, "/sweeps/"+id+"/status"); st.Done {
		t.Fatalf("untouched sweep: %+v", st)
	}
	// …but a full SweepTTL of silence unmounts it: the leak bound for
	// daemons that crashed between register and release.
	clock.Advance(61 * time.Second)
	if st := get[Status](t, srv, "/status"); st.Sweeps != 0 {
		t.Fatalf("leaked sweep survived its TTL: %+v", st)
	}
	if info := get[SweepInfo](t, srv, "/sweep"); !info.Idle {
		t.Fatalf("pick after GC: %+v, want idle", info)
	}
}

// TestHubRestartSameIDAbsorbsReplayedCompletion models the coordinator
// crash the dispatch layer survives: a fresh hub (restart = empty
// state) mounts the re-registered sweep on the same content-hash id,
// and a worker's completion computed against the old incarnation —
// delivered twice, even — commits into the new one without complaint.
func TestHubRestartSameIDAbsorbsReplayedCompletion(t *testing.T) {
	params := pairwiseParams()
	ref := referenceCells(t, "pairwise", params)

	_, srv1 := testHub(t, HubOptions{})
	id1 := post[RegisterResponse](t, srv1, "/sweeps", RegisterRequest{Name: "pairwise", Params: params}).ID

	// "Restart": a brand-new hub, same registration.
	_, srv2 := testHub(t, HubOptions{})
	id2 := post[RegisterResponse](t, srv2, "/sweeps", RegisterRequest{Name: "pairwise", Params: params}).ID
	if id1 != id2 {
		t.Fatalf("restarted hub minted a different sweep id: %s vs %s", id1, id2)
	}

	// A lease from the *old* incarnation delivers into the new one: the
	// lease is unknown there, but completions are accepted from unknown
	// leases (the cells are position-determined, so they are right).
	lease := post[LeaseResponse](t, srv1, "/sweeps/"+id1+"/lease", LeaseRequest{Worker: "w"})
	cells := map[int]json.RawMessage{}
	for _, k := range lease.Cells {
		cells[k] = ref[k]
	}
	for i := 0; i < 2; i++ { // delivered twice: StoreDedup absorbs the replay
		ack := post[CompleteResponse](t, srv2, "/sweeps/"+id2+"/complete",
			CompleteRequest{Worker: "w", Lease: lease.Lease, Cells: cells})
		if !ack.OK {
			t.Fatalf("delivery %d refused: %+v", i, ack)
		}
	}
	st := get[Status](t, srv2, "/sweeps/"+id2+"/status")
	if st.Committed != len(cells) {
		t.Fatalf("replayed completion committed %d cells, want %d", st.Committed, len(cells))
	}
}
