package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"saga/internal/experiments"
	"saga/internal/httpx"
	"saga/internal/runner"
)

// ErrCoordinatorGone marks a worker giving up because the coordinator
// stopped answering. A worker holds no durable state — every committed
// cell already lives in the coordinator's store — so when the
// coordinator vanishes (finished and exited, or crashed awaiting a
// restart on its store) the right move is to stop cleanly, not to spin
// or to fail the operator's pipeline. Callers distinguish this from
// real worker failures with errors.Is.
var ErrCoordinatorGone = errors.New("coordinator unreachable")

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in leases and coordinator logs.
	Name string
	// Client issues the HTTP requests (default http.DefaultClient). The
	// fault-injection harness swaps in a misbehaving transport here.
	Client *http.Client
	// Workers bounds the runner pool within each lease (0 = GOMAXPROCS).
	Workers int
	// PollInterval is how long to sleep when the coordinator answers
	// Wait (default 200ms).
	PollInterval time.Duration
	// Progress, when non-nil, receives the worker's cumulative progress
	// pinned to the sweep-wide cell total (runner.LeaseProgress
	// semantics): reassigned or re-leased cells never double-count.
	Progress func(done, total int)
	// OnCellStored, when non-nil, runs after each cell lands in the
	// worker's local collector. An error simulates sudden worker death:
	// RunWorker returns immediately without delivering the lease — the
	// fault-injection harness's kill seam.
	OnCellStored func(index int) error
}

// RunWorker joins the coordinator at baseURL and computes leases until
// the sweep is done. It fetches the sweep identity, rebuilds the sweep
// locally through experiments.NewSweep, and refuses to compute anything
// if the local fingerprint or cell count disagrees with the
// coordinator's — the same stale-parameters guard every checkpoint
// resume applies.
//
// Each lease runs the sweep restricted to the leased cells
// (runner.Options.Include), with a heartbeat goroutine renewing the
// lease. Computed cells accumulate in an in-memory collector that
// persists across leases, so multi-phase drivers (appspecific) compute
// their unleased benchmark window once per worker and reload it from
// then on. Per-cell failures are reported, not fatal: the coordinator
// retries them elsewhere or poisons them. Run-level failures are
// reported as failures of every unfinished leased cell, so a
// deterministic driver error poisons its cells instead of livelocking
// the sweep.
func RunWorker(ctx context.Context, baseURL string, opts WorkerOptions) error {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 200 * time.Millisecond
	}
	baseURL = strings.TrimRight(baseURL, "/")

	var info SweepInfo
	if err := getJSON(ctx, opts.Client, baseURL+"/sweep", &info); err != nil {
		return fmt.Errorf("coord: worker %s: fetch sweep: %w", opts.Name, err)
	}
	sw, err := experiments.NewSweep(info.Name, info.Params)
	if err != nil {
		return fmt.Errorf("coord: worker %s: rebuild sweep: %w", opts.Name, err)
	}
	if sw.Fingerprint != info.Fingerprint {
		return fmt.Errorf("coord: worker %s: fingerprint mismatch: coordinator serves\n  %q\nbut these parameters build\n  %q\n— version skew between worker and coordinator binaries?",
			opts.Name, info.Fingerprint, sw.Fingerprint)
	}
	if sw.Cells != info.Cells {
		return fmt.Errorf("coord: worker %s: cell count mismatch: coordinator %d, local %d",
			opts.Name, info.Cells, sw.Cells)
	}
	heartbeatEvery := time.Duration(info.LeaseTTLMillis) * time.Millisecond / 3
	if heartbeatEvery <= 0 {
		heartbeatEvery = time.Second
	}

	collector := &collectStore{hook: opts.OnCellStored}
	var lp *runner.LeaseProgress
	if opts.Progress != nil {
		lp = runner.NewLeaseProgress(sw.Cells, opts.Progress)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := postJSONRetry(ctx, opts.Client, baseURL+"/lease", LeaseRequest{Worker: opts.Name}, &lease); err != nil {
			return fmt.Errorf("coord: worker %s: lease: %w", opts.Name, err)
		}
		if lease.Done {
			return nil
		}
		if lease.Wait {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(opts.PollInterval):
			}
			continue
		}

		leased := make(map[int]bool, len(lease.Cells))
		for _, k := range lease.Cells {
			leased[k] = true
		}
		var failedMu sync.Mutex
		failed := map[int]string{}

		// Renew the lease while the cells compute. A Cancel answer means
		// the lease was reclaimed; we finish and deliver anyway — the
		// completion dedups — but stop renewing.
		hbCtx, stopHB := context.WithCancel(ctx)
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(heartbeatEvery)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					var hb HeartbeatResponse
					err := postJSON(hbCtx, opts.Client, baseURL+"/heartbeat",
						HeartbeatRequest{Worker: opts.Name, Lease: lease.Lease}, &hb)
					if err != nil || hb.Cancel {
						return
					}
				}
			}
		}()

		ro := runner.Options{
			Workers:    opts.Workers,
			Checkpoint: collector,
			Include:    func(k int) bool { return leased[k] },
			OnCellError: func(k int, err error) {
				failedMu.Lock()
				failed[k] = err.Error()
				failedMu.Unlock()
			},
		}
		if lp != nil {
			ro.Progress = lp.Sweep()
		}
		runErr := sw.Run(ro)
		stopHB()
		hbWG.Wait()

		fresh := collector.drain()
		var ke *killedError
		if errors.As(runErr, &ke) {
			// Simulated sudden death: no completion, no farewell — exactly
			// what a SIGKILL looks like to the coordinator.
			return fmt.Errorf("coord: worker %s killed: %w", opts.Name, ke.err)
		}
		if runErr != nil {
			// A run-level failure (driver setup, an unleased phase) felled
			// every cell this lease still owed. Report them failed so a
			// deterministic error converges to poisoned cells instead of
			// cycling through expiring leases forever.
			for _, k := range lease.Cells {
				if _, ok := fresh[k]; ok {
					continue
				}
				if _, ok := failed[k]; ok {
					continue
				}
				failed[k] = runErr.Error()
			}
		}
		var ack CompleteResponse
		err := postJSONRetry(ctx, opts.Client, baseURL+"/complete",
			CompleteRequest{Worker: opts.Name, Lease: lease.Lease, Cells: fresh, Failed: failed}, &ack)
		if err != nil {
			return fmt.Errorf("coord: worker %s: complete: %w", opts.Name, err)
		}
		if ack.Done {
			// This delivery finished the sweep; exit without another /lease
			// round trip that would race the coordinator's shutdown.
			return nil
		}
	}
}

// collectStore is the worker's in-memory runner.Checkpoint: it keeps
// every cell computed so far (so later leases — and unleased driver
// phases like the appspecific benchmark — reload instead of recompute)
// and tracks which cells are new since the last drain, i.e. what the
// current lease must deliver.
type collectStore struct {
	mu    sync.Mutex
	cells map[int]json.RawMessage
	fresh map[int]json.RawMessage
	hook  func(index int) error
}

func (s *collectStore) Load() (map[int]json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]json.RawMessage, len(s.cells))
	for k, v := range s.cells {
		out[k] = v
	}
	return out, nil
}

func (s *collectStore) Store(index int, cell json.RawMessage) error {
	s.mu.Lock()
	if s.cells == nil {
		s.cells = map[int]json.RawMessage{}
		s.fresh = map[int]json.RawMessage{}
	}
	s.cells[index] = cell
	s.fresh[index] = cell
	hook := s.hook
	s.mu.Unlock()
	if hook != nil {
		if err := hook(index); err != nil {
			return &killedError{err: err}
		}
	}
	return nil
}

func (s *collectStore) Flush() error { return nil }

// drain returns the cells stored since the previous drain.
func (s *collectStore) drain() map[int]json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.fresh
	s.fresh = map[int]json.RawMessage{}
	return out
}

// killedError marks a checkpoint-store failure injected by the
// OnCellStored kill seam, so RunWorker can tell simulated death from a
// real infrastructure error.
type killedError struct{ err error }

func (e *killedError) Error() string { return e.err.Error() }
func (e *killedError) Unwrap() error { return e.err }

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	return httpx.GetJSON(ctx, client, url, out)
}

// postJSONRetry is httpx.PostJSON with a short retry loop for
// network-level failures, wrapping persistent unreachability in
// ErrCoordinatorGone. HTTP-level errors (a non-200 status) are answers,
// not outages, and return immediately.
func postJSONRetry(ctx context.Context, client *http.Client, url string, in, out any) error {
	const attempts = 3
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(150 * time.Millisecond):
			}
		}
		err = httpx.PostJSON(ctx, client, url, in, out)
		if err == nil || !httpx.IsConnErr(err) {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts: %v", ErrCoordinatorGone, attempts, err)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return httpx.PostJSON(ctx, client, url, in, out)
}
