package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"saga/internal/experiments"
	"saga/internal/httpx"
	"saga/internal/runner"
)

// ErrCoordinatorGone marks a worker giving up because the coordinator
// stopped answering. A worker holds no durable state — every committed
// cell already lives in the coordinator's store — so when the
// coordinator vanishes (finished and exited, or crashed awaiting a
// restart on its store) the right move is to stop cleanly, not to spin
// or to fail the operator's pipeline. Callers distinguish this from
// real worker failures with errors.Is. WorkerOptions.Persist trades
// this exit for patience: the fleet outlives coordinator restarts.
var ErrCoordinatorGone = errors.New("coordinator unreachable")

// errSweepGone is the internal signal that the current sweep vanished
// under the worker — released by its client, aborted, or lost to a hub
// restart. The worker drops whatever it computed (nobody owns the
// cells anymore) and returns to the sweep poll.
var errSweepGone = errors.New("sweep gone")

// errSweepRotate asks the outer loop to re-poll the hub: the current
// sweep has nothing leasable while another mounted sweep does.
var errSweepRotate = errors.New("rotate to another sweep")

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in leases and coordinator logs.
	Name string
	// Client issues the HTTP requests (default http.DefaultClient). The
	// fault-injection harness swaps in a misbehaving transport here.
	Client *http.Client
	// Workers bounds the runner pool within each lease (0 = GOMAXPROCS).
	Workers int
	// PollInterval is how long to sleep when the coordinator answers
	// Wait or Idle (default 200ms).
	PollInterval time.Duration
	// Persist keeps the worker alive across sweeps and coordinator
	// outages: an idle hub means "poll again", not "done", and an
	// unreachable coordinator is waited out instead of returned as
	// ErrCoordinatorGone. This is the fleet mode behind
	// `saga worker -coordinator <hub> -persist`.
	Persist bool
	// Progress, when non-nil, receives the worker's cumulative progress
	// pinned to the sweep-wide cell total (runner.LeaseProgress
	// semantics): reassigned or re-leased cells never double-count.
	Progress func(done, total int)
	// OnCellStored, when non-nil, runs after each cell lands in the
	// worker's local collector. An error simulates sudden worker death:
	// RunWorker returns immediately without delivering the lease — the
	// fault-injection harness's kill seam.
	OnCellStored func(index int) error
}

// RunWorker joins the coordinator (or hub) at baseURL and computes
// leases until the sweep is done — or, with Persist, forever. It
// fetches the sweep identity, rebuilds the sweep locally through
// experiments.NewSweep, and refuses to compute anything if the local
// fingerprint or cell count disagrees with the coordinator's — the same
// stale-parameters guard every checkpoint resume applies.
//
// Against a hub, GET /sweep names the mounted sweep that needs work
// (SweepInfo.Path); the worker runs its leases, then polls again,
// rotating across sweeps as requests come and go. A sweep that vanishes
// mid-lease (released by its client, or the hub restarted) answers 404
// to the worker's next heartbeat or delivery: the worker cancels the
// lease's cell loop via context, drops the undelivered cells, and moves
// on — the cells belong to nobody now, and recomputing them elsewhere
// yields identical bytes anyway.
//
// Each lease runs the sweep restricted to the leased cells
// (runner.Options.Include), with a heartbeat goroutine renewing the
// lease. Computed cells accumulate in an in-memory collector that
// persists across the sweep's leases, so multi-phase drivers
// (appspecific) compute their unleased benchmark window once per worker
// and reload it from then on. Per-cell failures are reported, not
// fatal: the coordinator retries them elsewhere or poisons them.
// Run-level failures are reported as failures of every unfinished
// leased cell, so a deterministic driver error poisons its cells
// instead of livelocking the sweep.
func RunWorker(ctx context.Context, baseURL string, opts WorkerOptions) error {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 200 * time.Millisecond
	}
	baseURL = strings.TrimRight(baseURL, "/")
	workerQ := "?worker=" + url.QueryEscape(opts.Name)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var info SweepInfo
		if err := getJSON(ctx, opts.Client, baseURL+"/sweep"+workerQ, &info); err != nil {
			if opts.Persist && httpx.IsConnErr(err) && ctx.Err() == nil {
				if err := sleepCtx(ctx, opts.PollInterval); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("coord: worker %s: fetch sweep: %w", opts.Name, err)
		}
		if info.Idle {
			// A hub with nothing to hand out. Fleets wait for the next
			// request; one-shot workers are done.
			if !opts.Persist {
				return nil
			}
			if err := sleepCtx(ctx, opts.PollInterval); err != nil {
				return err
			}
			continue
		}

		err := runSweep(ctx, baseURL, workerQ, info, opts)
		hub := info.Path != ""
		switch {
		case err == nil:
			if !hub {
				return nil // the one sweep is done
			}
		case errors.Is(err, errSweepGone), errors.Is(err, errSweepRotate):
			// Drop and re-poll; the next GET /sweep says what (if
			// anything) to work on now.
		case errors.Is(err, ErrCoordinatorGone):
			if !opts.Persist {
				return err
			}
			if err := sleepCtx(ctx, opts.PollInterval); err != nil {
				return err
			}
		default:
			return err
		}
	}
}

// runSweep computes one sweep's leases to completion. It returns nil
// when the sweep is done, errSweepGone/errSweepRotate to send the
// worker back to the hub poll, or a terminal error.
func runSweep(ctx context.Context, baseURL, workerQ string, info SweepInfo, opts WorkerOptions) error {
	base := baseURL + info.Path
	hub := info.Path != ""
	ep := func(op string) string {
		u := base + "/" + op
		if hub {
			u += workerQ
		}
		return u
	}

	sw, err := experiments.NewSweep(info.Name, info.Params)
	if err != nil {
		return fmt.Errorf("coord: worker %s: rebuild sweep: %w", opts.Name, err)
	}
	if sw.Fingerprint != info.Fingerprint {
		return fmt.Errorf("coord: worker %s: fingerprint mismatch: coordinator serves\n  %q\nbut these parameters build\n  %q\n— version skew between worker and coordinator binaries?",
			opts.Name, info.Fingerprint, sw.Fingerprint)
	}
	if sw.Cells != info.Cells {
		return fmt.Errorf("coord: worker %s: cell count mismatch: coordinator %d, local %d",
			opts.Name, info.Cells, sw.Cells)
	}
	heartbeatEvery := time.Duration(info.LeaseTTLMillis) * time.Millisecond / 3
	if heartbeatEvery <= 0 {
		heartbeatEvery = time.Second
	}

	collector := &collectStore{hook: opts.OnCellStored}
	var lp *runner.LeaseProgress
	if opts.Progress != nil {
		lp = runner.NewLeaseProgress(sw.Cells, opts.Progress)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := postJSONRetry(ctx, opts.Client, ep("lease"), LeaseRequest{Worker: opts.Name}, &lease); err != nil {
			if isStatus(err, http.StatusNotFound) {
				return errSweepGone
			}
			return fmt.Errorf("coord: worker %s: lease: %w", opts.Name, err)
		}
		if lease.Done {
			return nil
		}
		if lease.Wait {
			if hub {
				// Nothing leasable here right now; ask the hub whether some
				// other sweep needs us before going back to sleep.
				var pick SweepInfo
				if err := getJSON(ctx, opts.Client, baseURL+"/sweep"+workerQ, &pick); err == nil &&
					!pick.Idle && pick.ID != info.ID {
					return errSweepRotate
				}
			}
			if err := sleepCtx(ctx, opts.PollInterval); err != nil {
				return err
			}
			continue
		}

		leased := make(map[int]bool, len(lease.Cells))
		for _, k := range lease.Cells {
			leased[k] = true
		}
		var failedMu sync.Mutex
		failed := map[int]string{}

		// Renew the lease while the cells compute. A Cancel answer means
		// the lease was reclaimed; we finish and deliver anyway — the
		// completion dedups — but stop renewing. A 404 means the sweep
		// itself is gone: cancel the cell loop and drop everything.
		var dropped atomic.Bool
		leaseCtx, cancelLease := context.WithCancel(ctx)
		hbCtx, stopHB := context.WithCancel(ctx)
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(heartbeatEvery)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					var hb HeartbeatResponse
					err := postJSON(hbCtx, opts.Client, ep("heartbeat"),
						HeartbeatRequest{Worker: opts.Name, Lease: lease.Lease}, &hb)
					if isStatus(err, http.StatusNotFound) {
						dropped.Store(true)
						cancelLease()
						return
					}
					if err != nil || hb.Cancel {
						return
					}
				}
			}
		}()

		ro := runner.Options{
			Workers:    opts.Workers,
			Checkpoint: collector,
			Context:    leaseCtx,
			Include:    func(k int) bool { return leased[k] },
			OnCellError: func(k int, err error) {
				failedMu.Lock()
				failed[k] = err.Error()
				failedMu.Unlock()
			},
		}
		if lp != nil {
			ro.Progress = lp.Sweep()
		}
		runErr := sw.Run(ro)
		stopHB()
		hbWG.Wait()
		cancelLease()

		fresh := collector.drain()
		var ke *killedError
		if errors.As(runErr, &ke) {
			// Simulated sudden death: no completion, no farewell — exactly
			// what a SIGKILL looks like to the coordinator.
			return fmt.Errorf("coord: worker %s killed: %w", opts.Name, ke.err)
		}
		if dropped.Load() {
			return errSweepGone
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if runErr != nil && !errors.Is(runErr, context.Canceled) {
			// A run-level failure (driver setup, an unleased phase) felled
			// every cell this lease still owed. Report them failed so a
			// deterministic error converges to poisoned cells instead of
			// cycling through expiring leases forever.
			for _, k := range lease.Cells {
				if _, ok := fresh[k]; ok {
					continue
				}
				if _, ok := failed[k]; ok {
					continue
				}
				failed[k] = runErr.Error()
			}
		}
		var ack CompleteResponse
		err := postJSONRetry(ctx, opts.Client, ep("complete"),
			CompleteRequest{Worker: opts.Name, Lease: lease.Lease, Cells: fresh, Failed: failed}, &ack)
		if err != nil {
			if isStatus(err, http.StatusNotFound) {
				return errSweepGone
			}
			return fmt.Errorf("coord: worker %s: complete: %w", opts.Name, err)
		}
		if ack.Done {
			// This delivery finished the sweep; exit without another /lease
			// round trip that would race the coordinator's shutdown.
			return nil
		}
	}
}

// sleepCtx pauses for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// isStatus reports whether err is an HTTP answer with the given code.
func isStatus(err error, code int) bool {
	var se *httpx.StatusError
	return errors.As(err, &se) && se.Code == code
}

// collectStore is the worker's in-memory runner.Checkpoint: it keeps
// every cell computed so far (so later leases — and unleased driver
// phases like the appspecific benchmark — reload instead of recompute)
// and tracks which cells are new since the last drain, i.e. what the
// current lease must deliver.
type collectStore struct {
	mu    sync.Mutex
	cells map[int]json.RawMessage
	fresh map[int]json.RawMessage
	hook  func(index int) error
}

func (s *collectStore) Load() (map[int]json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]json.RawMessage, len(s.cells))
	for k, v := range s.cells {
		out[k] = v
	}
	return out, nil
}

func (s *collectStore) Store(index int, cell json.RawMessage) error {
	s.mu.Lock()
	if s.cells == nil {
		s.cells = map[int]json.RawMessage{}
		s.fresh = map[int]json.RawMessage{}
	}
	s.cells[index] = cell
	s.fresh[index] = cell
	hook := s.hook
	s.mu.Unlock()
	if hook != nil {
		if err := hook(index); err != nil {
			return &killedError{err: err}
		}
	}
	return nil
}

func (s *collectStore) Flush() error { return nil }

// drain returns the cells stored since the previous drain.
func (s *collectStore) drain() map[int]json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.fresh
	s.fresh = map[int]json.RawMessage{}
	return out
}

// killedError marks a checkpoint-store failure injected by the
// OnCellStored kill seam, so RunWorker can tell simulated death from a
// real infrastructure error.
type killedError struct{ err error }

func (e *killedError) Error() string { return e.err.Error() }
func (e *killedError) Unwrap() error { return e.err }

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	return httpx.GetJSON(ctx, client, url, out)
}

// workerRetry paces the worker's lease/complete calls: per-hop timeouts
// and capped exponential backoff with jitter, so a fleet re-dialing a
// restarting coordinator spreads out instead of stampeding.
var workerRetry = httpx.RetryPolicy{Attempts: 3, Base: 150 * time.Millisecond, Cap: 2 * time.Second, PerTry: 10 * time.Second}

// postJSONRetry is httpx.PostJSON under the worker retry policy,
// wrapping persistent unreachability in ErrCoordinatorGone. HTTP-level
// errors (a non-200 status) are answers, not outages, and return
// immediately.
func postJSONRetry(ctx context.Context, client *http.Client, url string, in, out any) error {
	err := workerRetry.Do(ctx, func(ctx context.Context) error {
		return httpx.PostJSON(ctx, client, url, in, out)
	})
	if err != nil && httpx.IsConnErr(err) {
		return fmt.Errorf("%w after %d attempts: %v", ErrCoordinatorGone, workerRetry.Attempts, err)
	}
	return err
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return httpx.PostJSON(ctx, client, url, in, out)
}
