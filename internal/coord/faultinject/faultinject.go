// Package faultinject misbehaves on purpose: it wraps a worker's HTTP
// transport (and its cell-stored hook) to kill workers mid-lease, drop
// heartbeats so the coordinator reclaims live leases, deliver
// completions twice, and delay requests at random. The coordinator
// protocol (internal/coord) claims all of this is harmless — reclaimed
// cells recompute bit-identically from their position-derived seeds,
// duplicated completions dedup byte-for-byte — and the fault suite uses
// this package to make the protocol prove it: every injected run's
// store must equal the sequential reference exactly.
//
// The package deliberately does not import internal/coord: it speaks
// plain net/http, so it can wrap any client of the protocol (including
// the real saga binary in the end-to-end smoke test's unit-level twin).
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"saga/internal/rng"
)

// Plan describes one worker's misfortunes. The zero value injects
// nothing.
type Plan struct {
	// Seed drives the random delays. Faults must be reproducible — a
	// failing fault-suite run is only debuggable if its seed replays it.
	Seed uint64
	// DropHeartbeats swallows every POST /heartbeat: the injector
	// fabricates a success answer without forwarding, so the worker
	// believes its lease is safe while the coordinator watches it die.
	DropHeartbeats bool
	// DuplicateCompletions delivers every POST /complete twice, back to
	// back — the retried-delivery case StoreDedup exists for.
	DuplicateCompletions bool
	// MaxDelay, when positive, sleeps a seed-derived random duration in
	// [0, MaxDelay) before forwarding each request, reordering deliveries
	// between workers.
	MaxDelay time.Duration
	// KillAfterCells, when positive, makes the Hook return an error once
	// that many cells have been stored — the worker dies mid-lease
	// without delivering (coord.WorkerOptions.OnCellStored).
	KillAfterCells int
}

// Transport wraps base (nil = http.DefaultTransport) with the plan's
// network faults.
func (p Plan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	t := &transport{plan: p, base: base}
	if p.MaxDelay > 0 {
		t.rng = rng.New(p.Seed + 1)
	}
	return t
}

// Hook returns a cell-stored hook implementing KillAfterCells, or nil
// when the plan never kills. Wire it into coord.WorkerOptions.
// OnCellStored.
func (p Plan) Hook() func(index int) error {
	if p.KillAfterCells <= 0 {
		return nil
	}
	var mu sync.Mutex
	stored := 0
	return func(index int) error {
		mu.Lock()
		defer mu.Unlock()
		stored++
		if stored >= p.KillAfterCells {
			return fmt.Errorf("faultinject: killed after storing %d cells (at cell %d)", stored, index)
		}
		return nil
	}
}

type transport struct {
	plan Plan
	base http.RoundTripper

	mu  sync.Mutex
	rng *rng.RNG
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.rng != nil {
		t.mu.Lock()
		delay := time.Duration(t.rng.Float64() * float64(t.plan.MaxDelay))
		t.mu.Unlock()
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	switch {
	case t.plan.DropHeartbeats && strings.HasSuffix(req.URL.Path, "/heartbeat"):
		// Swallow the renewal and forge the acknowledgement the worker
		// expects, so it keeps computing obliviously.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return fakeOK(req, `{"ok":true}`), nil
	case t.plan.DuplicateCompletions && strings.HasSuffix(req.URL.Path, "/complete"):
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		first := req.Clone(req.Context())
		first.Body = io.NopCloser(bytes.NewReader(body))
		resp, err := t.base.RoundTrip(first)
		if err != nil {
			return resp, err
		}
		// Drain and discard the first answer, then deliver again; the
		// caller sees only the duplicate's response.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		second := req.Clone(req.Context())
		second.Body = io.NopCloser(bytes.NewReader(body))
		return t.base.RoundTrip(second)
	}
	return t.base.RoundTrip(req)
}

// fakeOK fabricates a 200 JSON response without any network round trip.
func fakeOK(req *http.Request, body string) *http.Response {
	return &http.Response{
		Status:     "200 OK",
		StatusCode: http.StatusOK,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
}
