package coord

// Satellite: table-driven error-path coverage for the coordinator's
// HTTP handlers. The happy paths and fault schedules live in
// coord_test.go / fault_test.go; this file pins down the protocol's
// refusals — malformed frames, out-of-range cells, determinism
// violations, stale leases — each of which must answer the documented
// status without wedging the ledger.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"saga/internal/experiments"
)

// postBody posts raw bytes (not necessarily valid JSON) and returns the
// status code.
func postBody(t *testing.T, srv *httptest.Server, path, body string) int {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestHandlersRejectMalformedJSON(t *testing.T) {
	_, srv, _ := testCoord(t, 4, Options{})
	for _, path := range []string{"/lease", "/heartbeat", "/complete"} {
		for _, body := range []string{`{"worker": `, `]`, `"just a string"`} {
			if got := postBody(t, srv, path, body); got != http.StatusBadRequest {
				t.Errorf("POST %s %q: status %d, want 400", path, body, got)
			}
		}
	}
	// The ledger must be untouched: a full sweep's worth of cells still
	// leasable.
	lease := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w"})
	if len(lease.Cells) != 4 {
		t.Fatalf("after malformed frames, lease granted %v, want all 4 cells", lease.Cells)
	}
}

func TestCompleteRejectsOutOfRangeCells(t *testing.T) {
	cases := []struct {
		name string
		req  CompleteRequest
	}{
		{"committed cell above range", CompleteRequest{Worker: "w", Cells: map[int]json.RawMessage{99: json.RawMessage(`{}`)}}},
		{"committed cell below range", CompleteRequest{Worker: "w", Cells: map[int]json.RawMessage{-1: json.RawMessage(`{}`)}}},
		{"failed cell above range", CompleteRequest{Worker: "w", Failed: map[int]string{99: "boom"}}},
		{"failed cell below range", CompleteRequest{Worker: "w", Failed: map[int]string{-1: "boom"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, srv, _ := testCoord(t, 4, Options{})
			lease := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w"})
			tc.req.Lease = lease.Lease
			if _, status := postStatus[CompleteResponse](t, srv, "/complete", tc.req); status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", status)
			}
			// A refused delivery is not fatal and commits nothing.
			st := c.Status()
			if st.Committed != 0 || st.Poisoned != 0 || st.Done {
				t.Fatalf("refused delivery moved the ledger: %+v", st)
			}
		})
	}
}

func TestDisagreeingDuplicateCompletionIsFatal409(t *testing.T) {
	c, srv, _ := testCoord(t, 2, Options{})
	lease := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w1"})

	first := CompleteRequest{Worker: "w1", Lease: lease.Lease,
		Cells: map[int]json.RawMessage{0: json.RawMessage(`{"makespan":1}`)}}
	if resp := post[CompleteResponse](t, srv, "/complete", first); !resp.OK {
		t.Fatalf("first delivery refused: %+v", resp)
	}

	// An identical duplicate — late redelivery from a reclaimed lease —
	// dedups to a no-op.
	dup := CompleteRequest{Worker: "w2", Lease: "L-gone",
		Cells: map[int]json.RawMessage{0: json.RawMessage(`{"makespan":1}`)}}
	if _, status := postStatus[CompleteResponse](t, srv, "/complete", dup); status != http.StatusOK {
		t.Fatalf("identical duplicate: status %d, want 200", status)
	}

	// A disagreeing duplicate is a determinism violation: 409, and the
	// sweep parks fatally rather than racing to overwrite.
	bad := CompleteRequest{Worker: "w2", Lease: "L-gone",
		Cells: map[int]json.RawMessage{0: json.RawMessage(`{"makespan":2}`)}}
	if _, status := postStatus[CompleteResponse](t, srv, "/complete", bad); status != http.StatusConflict {
		t.Fatalf("disagreeing duplicate: status %d, want 409", status)
	}

	// Fatal means done: further leases are turned away and Wait surfaces
	// the violation.
	if l := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w3"}); !l.Done {
		t.Fatalf("lease after fatal: %+v, want Done", l)
	}
	err := c.Wait(nil)
	if err == nil || !strings.Contains(err.Error(), "w2") {
		t.Fatalf("Wait after fatal = %v, want the offending worker named", err)
	}
}

func TestHeartbeatStaleLeaseCancels(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	_, srv, _ := testCoord(t, 4, Options{LeaseTTL: 10 * time.Second, Now: clock.Now})

	// Unknown lease id: cancel immediately.
	hb := post[HeartbeatResponse](t, srv, "/heartbeat", HeartbeatRequest{Worker: "w", Lease: "L999"})
	if !hb.Cancel || hb.OK {
		t.Fatalf("unknown lease heartbeat: %+v, want Cancel", hb)
	}

	// A live lease renews…
	lease := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w"})
	hb = post[HeartbeatResponse](t, srv, "/heartbeat", HeartbeatRequest{Worker: "w", Lease: lease.Lease})
	if !hb.OK || hb.Cancel {
		t.Fatalf("live lease heartbeat: %+v, want OK", hb)
	}

	// …until the TTL lapses without one: the lease is reaped and the
	// next heartbeat tells the worker to stop renewing.
	clock.Advance(11 * time.Second)
	hb = post[HeartbeatResponse](t, srv, "/heartbeat", HeartbeatRequest{Worker: "w", Lease: lease.Lease})
	if !hb.Cancel || hb.OK {
		t.Fatalf("expired lease heartbeat: %+v, want Cancel", hb)
	}

	// The reaped cells are leasable again — expiry is not a failure.
	l2 := post[LeaseResponse](t, srv, "/lease", LeaseRequest{Worker: "w2"})
	if len(l2.Cells) != 4 {
		t.Fatalf("cells after reap: %v, want all 4 re-leasable", l2.Cells)
	}
}

func TestWorkerRefusesMismatchedSweep(t *testing.T) {
	// Build the true SweepInfo the way a coordinator would…
	sw, err := experiments.NewSweep("fig7", experiments.SweepParams{N: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	serveInfo := func(info SweepInfo) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /sweep", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, info)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// …then serve it with a skewed fingerprint: the worker must refuse
	// before computing anything.
	srv := serveInfo(SweepInfo{Name: sw.Name, Params: experiments.SweepParams{N: 4, Seed: 1},
		Fingerprint: sw.Fingerprint + "-skewed", Cells: sw.Cells})
	err = RunWorker(ctx, srv.URL, WorkerOptions{Name: "w"})
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("RunWorker against skewed fingerprint = %v, want fingerprint mismatch", err)
	}

	// Cell-count skew is refused the same way.
	srv = serveInfo(SweepInfo{Name: sw.Name, Params: experiments.SweepParams{N: 4, Seed: 1},
		Fingerprint: sw.Fingerprint, Cells: sw.Cells + 1})
	err = RunWorker(ctx, srv.URL, WorkerOptions{Name: "w"})
	if err == nil || !strings.Contains(err.Error(), "cell count mismatch") {
		t.Fatalf("RunWorker against skewed cell count = %v, want cell count mismatch", err)
	}
}
