package coord

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"saga/internal/coord/faultinject"
	"saga/internal/datasets"
	"saga/internal/experiments"
	"saga/internal/runner"
	"saga/internal/serialize"
)

// sequentialReference runs the sweep in one process, one worker — the
// ground truth every faulted coordinator run must reproduce byte for
// byte — and returns the store's bytes.
func sequentialReference(t *testing.T, dir, name string, params experiments.SweepParams) []byte {
	t.Helper()
	sw, err := experiments.NewSweep(name, params)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "reference.ckpt")
	ck := serialize.NewCheckpoint(path)
	ck.SetFingerprint(sw.Fingerprint)
	if _, err := ck.Load(); err != nil {
		t.Fatal(err)
	}
	ck.SetFlushEvery(sw.Cells + 1)
	if err := sw.Run(runner.Options{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// faultedRun drives the full coordinator protocol over HTTP with one
// worker per plan — each wrapped in its plan's faulty transport and
// kill hook — and returns the merged store's bytes after Wait.
func faultedRun(t *testing.T, storePath, name string, params experiments.SweepParams,
	coordOpts Options, plans []faultinject.Plan) []byte {
	t.Helper()
	c, err := New(name, params, serialize.NewCheckpoint(storePath), coordOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i, plan := range plans {
		wg.Add(1)
		go func(i int, plan faultinject.Plan) {
			defer wg.Done()
			err := RunWorker(ctx, srv.URL, WorkerOptions{
				Name:         fmt.Sprintf("w%d", i),
				Client:       &http.Client{Transport: plan.Transport(nil)},
				Workers:      1,
				PollInterval: 20 * time.Millisecond,
				OnCellStored: plan.Hook(),
			})
			// A killed worker's error is the injection working as designed;
			// any other failure is a real protocol bug.
			if err != nil && plan.KillAfterCells <= 0 {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, plan)
	}
	if err := c.Wait(nil); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	data, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// faultScenarios is the common injection matrix: worker kills
// mid-lease, heartbeats silently dropped (the coordinator reclaims a
// live worker's lease), completions delivered twice, deliveries
// reordered by random delays — under both in-order and shuffled lease
// orders. At least one worker per scenario survives unkilled, so the
// sweep always finishes.
func faultScenarios() []struct {
	label string
	opts  Options
	plans []faultinject.Plan
} {
	short := 400 * time.Millisecond
	return []struct {
		label string
		opts  Options
		plans []faultinject.Plan
	}{
		{
			label: "kill+drop",
			opts:  Options{LeaseSize: 3, LeaseTTL: short, RetryBackoff: 20 * time.Millisecond},
			plans: []faultinject.Plan{
				{KillAfterCells: 2},
				{DropHeartbeats: true},
				{},
			},
		},
		{
			label: "shuffle+dup+delay+kill",
			opts:  Options{LeaseSize: 4, LeaseTTL: short, RetryBackoff: 20 * time.Millisecond, ShuffleSeed: 42},
			plans: []faultinject.Plan{
				{Seed: 1, DuplicateCompletions: true, MaxDelay: 15 * time.Millisecond},
				{Seed: 2, KillAfterCells: 5, MaxDelay: 15 * time.Millisecond},
				{Seed: 3, DropHeartbeats: true, DuplicateCompletions: true},
			},
		},
	}
}

// TestFaultInjectedFig4BitIdentity is the tentpole's proof obligation
// for the paper's main experiment: the full Fig 4 roster (every
// off-diagonal scheduler pair), computed under worker kills, dropped
// heartbeats, duplicated completions, and randomized lease orders,
// lands a store byte-identical to the sequential reference.
func TestFaultInjectedFig4BitIdentity(t *testing.T) {
	params := experiments.SweepParams{Iters: 2, Restarts: 1, Seed: 3}
	dir := t.TempDir()
	ref := sequentialReference(t, dir, "fig4", params)
	for i, sc := range faultScenarios() {
		t.Run(sc.label, func(t *testing.T) {
			got := faultedRun(t, filepath.Join(dir, fmt.Sprintf("run-%d.ckpt", i)), "fig4", params, sc.opts, sc.plans)
			if !bytes.Equal(ref, got) {
				t.Fatalf("store diverged from the sequential reference (%d vs %d bytes)", len(got), len(ref))
			}
		})
	}
}

// TestFaultInjectedRobustnessBitIdentity repeats the proof for the
// second registered sweep class (a sampling loop rather than a PISA
// grid), as the acceptance criteria demand two sweeps.
func TestFaultInjectedRobustnessBitIdentity(t *testing.T) {
	raw, err := serialize.MarshalInstance(datasets.Fig1Instance())
	if err != nil {
		t.Fatal(err)
	}
	params := experiments.SweepParams{N: 18, Seed: 5, Scheduler: "HEFT", Sigma: 0.25, InstanceRaw: raw}
	dir := t.TempDir()
	ref := sequentialReference(t, dir, "robustness", params)
	for i, sc := range faultScenarios() {
		t.Run(sc.label, func(t *testing.T) {
			got := faultedRun(t, filepath.Join(dir, fmt.Sprintf("run-%d.ckpt", i)), "robustness", params, sc.opts, sc.plans)
			if !bytes.Equal(ref, got) {
				t.Fatalf("store diverged from the sequential reference (%d vs %d bytes)", len(got), len(ref))
			}
		})
	}
}

// TestCoordinatorCrashResumeBitIdentity crashes the coordinator
// mid-sweep — modeled exactly: a second coordinator starts on a store
// holding roughly half the cells, the state a killed coordinator's
// incremental writes leave behind — and the finished store still
// matches the reference.
func TestCoordinatorCrashResumeBitIdentity(t *testing.T) {
	raw, err := serialize.MarshalInstance(datasets.Fig1Instance())
	if err != nil {
		t.Fatal(err)
	}
	params := experiments.SweepParams{N: 16, Seed: 8, Scheduler: "CPoP", Sigma: 0.2, InstanceRaw: raw}
	dir := t.TempDir()
	ref := sequentialReference(t, dir, "robustness", params)

	sw, err := experiments.NewSweep("robustness", params)
	if err != nil {
		t.Fatal(err)
	}
	refCk := serialize.NewCheckpoint(filepath.Join(dir, "reference.ckpt"))
	refCk.SetFingerprint(sw.Fingerprint)
	cells, err := refCk.Load()
	if err != nil {
		t.Fatal(err)
	}
	partialPath := filepath.Join(dir, "partial.ckpt")
	partial := serialize.NewCheckpoint(partialPath)
	partial.SetFingerprint(sw.Fingerprint)
	if _, err := partial.Load(); err != nil {
		t.Fatal(err)
	}
	for k, rawCell := range cells {
		if k%2 == 0 {
			if err := partial.Store(k, rawCell); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := faultedRun(t, partialPath, "robustness", params,
		Options{LeaseSize: 3, LeaseTTL: 400 * time.Millisecond},
		[]faultinject.Plan{{KillAfterCells: 3}, {}})
	if !bytes.Equal(ref, got) {
		t.Fatalf("resumed store diverged from the sequential reference (%d vs %d bytes)", len(got), len(ref))
	}
}
