package scheduler

import "saga/internal/graph"

// EvalCache memoizes the shared priority vectors — upward rank, downward
// rank, static level — across the Schedule calls one Scratch serves,
// keyed on (instance pointer, graph.Tables.Generation). The second
// scheduler of a PISA target/baseline pair evaluates the identical
// tables the first just ranked (nothing mutates between the two calls
// of one candidate evaluation), so its rank reads become O(1) reuses of
// the first scheduler's computation instead of recomputations.
//
// Safety is by construction, not by discipline: Tables.Generation is
// bumped by Build and by every incremental maintenance method, and the
// cache serves a stored vector only when both the instance pointer and
// the generation match the values recorded when it was computed. A
// stale read would therefore require a table mutation that skipped its
// Generation bump — a violation of the graph.Tables staleness contract
// that internal/graph's TestTablesGenerationBumps pins down. Because
// the memoized vectors are bit-for-bit the ones recomputation would
// produce, caching never changes results (Scratch invariant 3); the
// PISA bit-identity suite proves it by running the memoized loop
// against the cache-disabled reference (core.RunReference).
//
// An EvalCache lives inside a Scratch and follows its one-per-worker
// ownership rule. Hits and Misses count lookups for gates and tests;
// like all scratch state they influence allocation and speed only,
// never results.
type EvalCache struct {
	inst *graph.Instance
	gen  uint64

	upOK, downOK, levelOK bool

	// topoUpOK/topoDownOK/topoLevelOK guard the memoized priority
	// topological orders derived from the matching rank vector (see
	// Scratch.TopoOrderByPriority) — same key, one flag per rank kind.
	topoUpOK, topoDownOK, topoLevelOK bool

	disabled bool

	// Hits and Misses count memoized lookups (rank vectors and priority
	// topo orders) served from / filled into the cache since the scratch
	// was created (disabled lookups count as misses — they recompute).
	Hits, Misses uint64
}

// sync rebinds the cache to (inst, gen), dropping every memo when
// either differs from the stored key.
func (c *EvalCache) sync(inst *graph.Instance, gen uint64) {
	if c.inst != inst || c.gen != gen {
		c.inst, c.gen = inst, gen
		c.upOK, c.downOK, c.levelOK = false, false, false
		c.topoUpOK, c.topoDownOK, c.topoLevelOK = false, false, false
	}
}

// lookup reports whether the vector guarded by ok can be reused for
// (inst, gen), marking it computed otherwise. The caller computes and
// stores the vector exactly when lookup returns false.
func (c *EvalCache) lookup(inst *graph.Instance, gen uint64, ok *bool) bool {
	c.sync(inst, gen)
	if c.disabled {
		c.Misses++
		return false
	}
	if *ok {
		c.Hits++
		return true
	}
	*ok = true
	c.Misses++
	return false
}

// EvalCache exposes the scratch's memoization state — primarily its
// hit/miss counters — for tests and the bench gates.
func (s *Scratch) EvalCache() *EvalCache { return &s.cache }

// SetEvalCache enables or disables rank memoization on the scratch and
// returns the previous setting. Memoization is on by default and never
// affects results; the reference implementations (core.RunReference,
// core.RunGAReference) disable it so they stay faithful uncached
// baselines — which also makes the bit-identity suites a genuine proof
// that the memoized path changes nothing. Disabling only bypasses
// reuse: generation tracking keeps running, so re-enabling is always
// safe.
func (s *Scratch) SetEvalCache(enabled bool) bool {
	prev := !s.cache.disabled
	s.cache.disabled = !enabled
	return prev
}
