package scheduler

import (
	"sync"
	"sync/atomic"
)

// ScratchPool leases Scratch values to short-lived owners — the
// scheduling daemon's request handlers (internal/serve) lease one per
// request the way runner.MapState hands one per worker goroutine. The
// ownership rule is unchanged: between Get and Put the scratch belongs
// to exactly one goroutine; Put transfers ownership back and the caller
// must not touch the scratch again.
//
// Reuse across unrelated owners is safe by construction, not by
// clearing: every memoized value in a Scratch (tables, rank vectors,
// topo orders) is keyed on the instance pointer and table generation it
// was computed for, so a scratch that last served instance A can serve
// instance B next with no bleed — the first Tables call rebuilds, and
// Build bumps the generation that guards every cached rank. The
// concurrency suite in internal/serve hammers exactly this property
// under the race detector.
type ScratchPool struct {
	pool  sync.Pool
	fresh atomic.Uint64
}

// Get leases a scratch, allocating a fresh one when the pool is empty.
func (p *ScratchPool) Get() *Scratch {
	if s, ok := p.pool.Get().(*Scratch); ok {
		return s
	}
	p.fresh.Add(1)
	return NewScratch()
}

// Put returns a leased scratch for reuse. The caller must own s and
// must not use it afterwards.
func (p *ScratchPool) Put(s *Scratch) {
	if s == nil {
		return
	}
	p.pool.Put(s)
}

// Fresh reports how many scratches Get allocated because the pool was
// empty — the daemon's /metrics surfaces it so a steady-state serving
// process can prove its request path stopped allocating scratch state.
func (p *ScratchPool) Fresh() uint64 { return p.fresh.Load() }
