package scheduler

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// heftPaperInstance is a small fork-join instance with known hand-derived
// ranks: three tasks a→{b}→c on a homogeneous 2-node network with link
// strength 1.
func heftPaperInstance() *graph.Instance {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 4)
	c := g.AddTask("c", 2)
	g.MustAddDep(a, b, 1)
	g.MustAddDep(b, c, 3)
	return graph.NewInstance(g, graph.NewNetwork(2))
}

func TestUpwardRank(t *testing.T) {
	in := heftPaperInstance()
	rank := UpwardRank(in)
	// rank(c)=2, rank(b)=4+3+2=9, rank(a)=2+1+9=12.
	want := []float64{12, 9, 2}
	for i, w := range want {
		if !graph.ApproxEq(rank[i], w) {
			t.Errorf("rank_u[%d] = %v, want %v", i, rank[i], w)
		}
	}
}

func TestDownwardRank(t *testing.T) {
	in := heftPaperInstance()
	rank := DownwardRank(in)
	// rank_d(a)=0, rank_d(b)=2+1=3, rank_d(c)=3+4+3=10.
	want := []float64{0, 3, 10}
	for i, w := range want {
		if !graph.ApproxEq(rank[i], w) {
			t.Errorf("rank_d[%d] = %v, want %v", i, rank[i], w)
		}
	}
}

func TestUpDownRankConsistency(t *testing.T) {
	in := heftPaperInstance()
	up := UpwardRank(in)
	down := DownwardRank(in)
	// rank_u + rank_d is the through-path length: constant on a chain.
	total := up[0] + down[0]
	for i := range up {
		if !graph.ApproxEq(up[i]+down[i], total) {
			t.Errorf("through-path at %d = %v, want %v", i, up[i]+down[i], total)
		}
	}
}

func TestStaticLevel(t *testing.T) {
	in := heftPaperInstance()
	sl := StaticLevel(in)
	// Communication-free: sl(c)=2, sl(b)=6, sl(a)=8.
	want := []float64{8, 6, 2}
	for i, w := range want {
		if !graph.ApproxEq(sl[i], w) {
			t.Errorf("sl[%d] = %v, want %v", i, sl[i], w)
		}
	}
}

func TestOrderByPriority(t *testing.T) {
	order := OrderByPriority([]float64{1, 3, 2, 3})
	// Descending, ties by index: 1, 3, 2, 0.
	want := []int{1, 3, 2, 0}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderByPriorityRespectsEdges(t *testing.T) {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 0) // zero-cost: priority ties with successor
	b := g.AddTask("b", 0)
	c := g.AddTask("c", 1)
	g.MustAddDep(a, b, 0)
	g.MustAddDep(b, c, 0)
	// Priorities that a plain sort would order c, a, b — invalid.
	prio := []float64{1, 1, 2}
	order := TopoOrderByPriority(g, prio)
	pos := make([]int, 3)
	for i, task := range order {
		pos[task] = i
	}
	if pos[a] > pos[b] || pos[b] > pos[c] {
		t.Fatalf("TopoOrderByPriority violated precedence: %v", order)
	}
}

func TestRegistry(t *testing.T) {
	Register("test-dummy", func() Scheduler {
		return Func{SchedName: "test-dummy", Fn: func(in *graph.Instance) (*schedule.Schedule, error) {
			return nil, nil
		}}
	})
	s, err := New("test-dummy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "test-dummy" {
		t.Fatalf("Name = %q", s.Name())
	}
	if _, err := New("no-such-scheduler"); err == nil {
		t.Fatal("unknown scheduler did not error")
	}
	found := false
	for _, n := range Names() {
		if n == "test-dummy" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered scheduler missing from Names")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("test-dup", func() Scheduler { return Func{SchedName: "test-dup"} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("test-dup", func() Scheduler { return Func{SchedName: "test-dup"} })
}

func TestRequirementsOfDefault(t *testing.T) {
	s := Func{SchedName: "plain"}
	if r := RequirementsOf(s); r.HomogeneousNodes || r.HomogeneousLinks {
		t.Fatal("plain scheduler reported constraints")
	}
}

func TestReadySetFrontier(t *testing.T) {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	d := g.AddTask("d", 1)
	g.MustAddDep(a, c, 1)
	g.MustAddDep(b, c, 1)
	g.MustAddDep(c, d, 1)
	rs := NewReadySet(g)
	if got := rs.Ready(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("initial frontier = %v, want [a b]", got)
	}
	rs.Complete(a)
	if got := rs.Ready(); len(got) != 1 || got[0] != b {
		t.Fatalf("after a: frontier = %v", got)
	}
	rs.Complete(b)
	if got := rs.Ready(); len(got) != 1 || got[0] != c {
		t.Fatalf("after b: frontier = %v, want [c]", got)
	}
	rs.Complete(c)
	if got := rs.Ready(); len(got) != 1 || got[0] != d {
		t.Fatalf("after c: frontier = %v, want [d]", got)
	}
	rs.Complete(d)
	if !rs.Empty() {
		t.Fatal("frontier not empty at end")
	}
}

func TestReadySetUncomplete(t *testing.T) {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddDep(a, b, 1)
	rs := NewReadySet(g)
	rs.Complete(a)
	if got := rs.Ready(); len(got) != 1 || got[0] != b {
		t.Fatalf("after complete: %v", got)
	}
	rs.Uncomplete(a)
	if got := rs.Ready(); len(got) != 1 || got[0] != a {
		t.Fatalf("after uncomplete: %v, want [a]", got)
	}
	// Redo and make sure state is still consistent.
	rs.Complete(a)
	rs.Complete(b)
	if !rs.Empty() {
		t.Fatal("frontier not empty after redo")
	}
}
